module aos

go 1.22
