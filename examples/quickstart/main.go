// Quickstart: the AOS public API in five minutes.
//
// Builds an AOS-protected system, allocates heap memory (pointers come back
// signed with a PAC and AHC in their upper bits), performs checked accesses,
// triggers a spatial violation, and runs one benchmark profile through the
// timing simulator.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"aos"
)

func main() {
	sys, err := aos.NewSystem(aos.Options{Scheme: aos.AOS})
	if err != nil {
		log.Fatal(err)
	}

	// malloc() returns a signed pointer: the PAC and the 2-bit AHC live in
	// the unused upper bits and travel with the pointer for free.
	buf, err := sys.Malloc(256)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("malloc(256) = %#016x (VA %#x, signed=%v)\n", buf.Raw, buf.VA(), buf.Signed())

	// In-bounds accesses pass the MCU's bounds check transparently.
	if err := sys.StoreU64(buf, 0, 0xC0FFEE); err != nil {
		log.Fatal(err)
	}
	v, err := sys.LoadU64(buf, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("in-bounds store/load round trip: %#x\n", v)

	// Pointer arithmetic keeps the PAC: derived pointers check against the
	// same bounds with no extra instructions.
	mid := sys.PointerArith(buf, 128)
	if err := sys.Load(mid, 0, aos.AccessOpts{}); err != nil {
		log.Fatal(err)
	}
	fmt.Println("derived pointer at +128: access OK")

	// One byte past the end: the hashed bounds table has no covering entry,
	// the MCU raises an AOS exception, and the load is suppressed before
	// it can read anything (precise exceptions).
	if err := sys.Load(buf, 256, aos.AccessOpts{}); err != nil {
		fmt.Println("out-of-bounds load detected:", err)
	}

	// Free clears the bounds but leaves the pointer signed ("locked"):
	// any later use fails its bounds check — temporal safety for free.
	if err := sys.Free(buf); err != nil {
		log.Fatal(err)
	}
	if err := sys.Load(buf, 0, aos.AccessOpts{}); err != nil {
		fmt.Println("use-after-free detected:   ", err)
	}

	fmt.Printf("total violations recorded: %d\n\n", len(sys.Exceptions()))

	// Run a benchmark profile through the full timing simulator.
	w, _ := aos.WorkloadByName("hmmer")
	for _, scheme := range []aos.Scheme{aos.Baseline, aos.AOS} {
		r, err := aos.Run(w, aos.Options{Scheme: scheme, Instructions: 200_000})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8v %-8s cycles=%-8d IPC=%.2f checked=%d BWB=%.0f%%\n",
			scheme, w.Name, r.Cycles, r.IPC(), r.CheckedOps, 100*r.BWB.HitRate())
	}
}
