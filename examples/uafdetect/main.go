// Temporal and spatial safety walk-through: every attack class in the
// adversarial harness's grammar mounted against PA+AOS, plus the
// AHC-forging defense of §VII-C (which the grammar cannot express —
// it needs direct access to the pointer-signing unit).
//
// For each class the generator synthesizes a batch of randomized attack
// programs and this example reports the detection rate — deterministic
// classes come out 20/20, while the PAC-aliasing classes (use-after-free
// and double free, where an exact same-size reuse can re-sign the same
// address with the same bounds) show the probabilistic gap the paper
// discusses in §VII-E.
//
// Run with: go run ./examples/uafdetect
package main

import (
	"fmt"
	"log"

	"aos"
	"aos/internal/attack"
	"aos/internal/pa"
	"aos/internal/security"
)

const programs = 20

func main() {
	fmt.Println("PA+AOS against the full attack grammar")
	fmt.Println()
	fmt.Printf("%-22s %-14s %s\n", "attack class", "model", "detected")

	for _, class := range security.Classes() {
		var detected, bypassed int
		for i := 0; i < programs; i++ {
			p, err := attack.Generate(class, attack.MixSeed(1, class, i))
			if err != nil {
				log.Fatal(err)
			}
			r, err := attack.Run(p, aos.PAAOS)
			if err != nil {
				log.Fatal(err)
			}
			switch r.Verdict {
			case attack.VerdictDetected:
				detected++
			case attack.VerdictBypassed:
				bypassed++
			default:
				log.Fatalf("%v program %d graded %v; the model promised %v",
					class, i, r.Verdict, r.Expected)
			}
		}
		note := ""
		if bypassed > 0 {
			note = "  (PAC aliasing: same-size reuse re-signs the same bounds)"
		}
		fmt.Printf("%-22s %-14s %d/%d%s\n",
			class, security.Expected(aos.PAAOS, class), detected, programs, note)
	}

	// AHC forging (§VII-C): zeroing the AHC to dodge bounds checking is
	// caught by autm's on-load authentication under PA+AOS.
	sys, err := aos.NewSystem(aos.Options{Scheme: aos.PAAOS})
	if err != nil {
		log.Fatal(err)
	}
	victim, err := sys.Malloc(128)
	if err != nil {
		log.Fatal(err)
	}
	forged := aos.Ptr{Raw: victim.Raw &^ (uint64(3) << pa.AHCShift)}
	fmt.Println()
	if err := sys.Machine().AutM(forged); err != nil {
		fmt.Println("AHC-forged pointer (autm): DETECTED:", err)
	} else {
		fmt.Println("AHC-forged pointer (autm): MISSED")
	}
}
