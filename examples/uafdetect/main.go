// Temporal and spatial safety walk-through: every violation class from the
// paper's Fig 12, plus the AHC-forging defense of §VII-C, demonstrated
// against a live AOS system.
//
// Run with: go run ./examples/uafdetect
package main

import (
	"fmt"
	"log"

	"aos"
	"aos/internal/pa"
)

func check(what string, err error) {
	if err != nil {
		fmt.Printf("  DETECTED  %-22s %v\n", what+":", err)
	} else {
		fmt.Printf("  MISSED    %s\n", what)
	}
}

func ok(what string, err error) {
	if err != nil {
		log.Fatalf("%s unexpectedly faulted: %v", what, err)
	}
	fmt.Printf("  allowed   %s\n", what)
}

func main() {
	sys, err := aos.NewSystem(aos.Options{Scheme: aos.PAAOS})
	if err != nil {
		log.Fatal(err)
	}

	const n = 10
	fmt.Println("Fig 12: memory safety violations detected by AOS")

	// Heap allocation: T *ptr = malloc(sizeof(T)*N)
	ptr, err := sys.Malloc(8 * n)
	if err != nil {
		log.Fatal(err)
	}

	// Legitimate use.
	ok("in-bounds ptr[0..N-1]", func() error {
		for i := uint64(0); i < n; i++ {
			if err := sys.Store(ptr, i*8, aos.AccessOpts{}); err != nil {
				return err
			}
		}
		return nil
	}())

	// Heap OOB access: ptr[N+1] (read and write).
	check("OOB read ptr[N+1]", sys.Load(ptr, (n+1)*8, aos.AccessOpts{}))
	check("OOB write ptr[N+1]", sys.Store(ptr, (n+1)*8, aos.AccessOpts{}))

	// Valid free(): bounds cleared, pointer re-signed ("locked").
	ok("valid free(ptr)", sys.Free(ptr))

	// Dangling pointer / use-after-free.
	check("use-after-free read", sys.Load(ptr, 0, aos.AccessOpts{}))

	// Double free: bndclr finds nothing to clear.
	check("double free", sys.Free(ptr))

	// Precise exceptions: an OOB read cannot leak, an OOB write cannot
	// corrupt (§III-C.4).
	secret, _ := sys.Malloc(64)
	if err := sys.StoreU64(secret, 0, 0x5EC12E7); err != nil {
		log.Fatal(err)
	}
	small, _ := sys.Malloc(16)
	off := secret.VA() - small.VA()
	leaked, err := sys.LoadU64(small, off)
	fmt.Printf("  suppressed OOB read through small chunk: value=%#x err=%v\n", leaked, err != nil)
	_ = sys.StoreU64(small, off, 0xBAD)
	v, _ := sys.LoadU64(secret, 0)
	fmt.Printf("  secret after suppressed OOB write: %#x (intact=%v)\n", v, v == 0x5EC12E7)

	// AHC forging (§VII-C): zeroing the AHC to dodge bounds checking is
	// caught by autm's on-load authentication under PA+AOS.
	victim, _ := sys.Malloc(128)
	forged := aos.Ptr{Raw: victim.Raw &^ (uint64(3) << pa.AHCShift)}
	check("AHC-forged pointer (autm)", sys.Machine().AutM(forged))

	fmt.Printf("\ntotal AOS exceptions recorded: %d\n", len(sys.Exceptions()))
	for i, e := range sys.Exceptions() {
		fmt.Printf("  %2d. %v\n", i+1, e)
	}
}
