// Sweep: a miniature version of the paper's Fig 14 — run a selection of
// SPEC 2006 profiles under every protection scheme and print normalized
// execution times, demonstrating the harness the evaluation is built on.
//
// Run with: go run ./examples/sweep [-insts N] [-benchmarks a,b,c]
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"aos"
)

func main() {
	insts := flag.Uint64("insts", 150_000, "program instructions per run")
	list := flag.String("benchmarks", "bzip2,gcc,hmmer,omnetpp", "comma-separated benchmark names")
	flag.Parse()

	names := strings.Split(*list, ",")
	fmt.Printf("%-12s", "benchmark")
	for _, s := range aos.Schemes() {
		fmt.Printf("  %-9v", s)
	}
	fmt.Println()

	for _, name := range names {
		w, okName := aos.WorkloadByName(strings.TrimSpace(name))
		if !okName {
			log.Fatalf("unknown benchmark %q", name)
		}
		var base float64
		fmt.Printf("%-12s", w.Name)
		for _, s := range aos.Schemes() {
			r, err := aos.Run(w, aos.Options{Scheme: s, Instructions: *insts})
			if err != nil {
				log.Fatal(err)
			}
			if s == aos.Baseline {
				base = float64(r.Cycles)
			}
			fmt.Printf("  %-9.3f", float64(r.Cycles)/base)
		}
		fmt.Println()
	}
	fmt.Println("\n(normalized execution time; baseline = 1.0)")
}
