// Package examples holds runnable walk-throughs; this smoke test keeps
// them compiling and exiting cleanly as the APIs they demonstrate move.
package examples

import (
	"os/exec"
	"strings"
	"testing"
)

// TestExamplesRun executes every example end to end with `go run` and
// checks for the one line each demo exists to print. The examples pin
// their seeds, so the greps are deterministic.
func TestExamplesRun(t *testing.T) {
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go binary not on PATH")
	}
	for _, tc := range []struct {
		dir  string
		want []string
	}{
		{"heapexploit", []string{
			"attack fake-free seed=1",
			"bndclr finds no bounds for the forged pointer",
		}},
		{"uafdetect", []string{
			"linear-overflow        deterministic  20/20",
			"AHC-forged pointer (autm): DETECTED",
		}},
		{"quickstart", nil},
	} {
		tc := tc
		t.Run(tc.dir, func(t *testing.T) {
			t.Parallel()
			cmd := exec.Command("go", "run", "./examples/"+tc.dir)
			cmd.Dir = ".."
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("go run ./examples/%s: %v\n%s", tc.dir, err, out)
			}
			for _, want := range tc.want {
				if !strings.Contains(string(out), want) {
					t.Errorf("output missing %q:\n%s", want, out)
				}
			}
		})
	}
}
