package telemetry

import "fmt"

// A Sample is one row of the recorded time series: every registered
// probe's value captured at the same commit cycle. Values holds raw
// probe values in registration order (cumulative for counters and
// histograms, instantaneous for gauges); exporters convert counters
// to per-window deltas.
type Sample struct {
	Cycle  uint64
	Insts  uint64
	Values []uint64
}

// A Slice is a duration episode (an HBT resize/migration drain, a
// store-queue flush) rendered as a Perfetto duration event.
type Slice struct {
	Name  string
	Start uint64 // commit cycle the episode began
	Dur   uint64 // modeled duration in cycles (min 1 for visibility)
	// Args annotate the slice (old/new associativity, bytes moved).
	// Keys follow probe-name style minus the subsystem prefix.
	Args map[string]uint64
}

// Timeline owns a probe registry and records cycle-windowed samples
// of it. The timing core drives Tick from its commit path; Tick is
// written so the disabled case (nil Timeline) and the
// between-samples case cost one comparison each.
//
// A Timeline, like its Registry, is confined to one simulation
// goroutine.
type Timeline struct {
	reg      *Registry
	interval uint64
	next     uint64
	samples  []Sample
	slices   []Slice
}

// DefaultInterval is the sampling cadence (in commit cycles) used
// when a caller enables telemetry without choosing one. 4096 cycles
// keeps a 10M-instruction run around a few thousand rows.
const DefaultInterval uint64 = 4096

// NewTimeline returns a Timeline sampling the registry every
// interval commit cycles (0 means DefaultInterval).
func NewTimeline(reg *Registry, interval uint64) *Timeline {
	if interval == 0 {
		interval = DefaultInterval
	}
	return &Timeline{reg: reg, interval: interval, next: interval}
}

// Registry returns the registry the timeline samples.
func (t *Timeline) Registry() *Registry { return t.reg }

// Interval returns the sampling cadence in commit cycles.
func (t *Timeline) Interval() uint64 { return t.interval }

// Due reports whether the commit cycle has crossed the next sample
// boundary. Integration points call Due before Sample so the
// common (not due) path is one comparison.
func (t *Timeline) Due(cycle uint64) bool { return cycle >= t.next }

// Next returns the next sample-due cycle. The timing core mirrors
// it into a local field so its per-instruction check is a single
// integer compare even while sampling is enabled.
func (t *Timeline) Next() uint64 { return t.next }

// Sample captures one row at the given commit cycle and instruction
// count and advances the next-sample threshold past cycle. The row's
// value slice is freshly allocated (sampling is off the
// zero-allocation contract; only the disabled path is pinned).
func (t *Timeline) Sample(cycle, insts uint64) {
	vals := make([]uint64, len(t.reg.probes))
	for i := range t.reg.probes {
		vals[i] = t.reg.probes[i].value()
	}
	t.samples = append(t.samples, Sample{Cycle: cycle, Insts: insts, Values: vals})
	// Skip windows with no committed instructions (long stalls)
	// rather than emitting a burst of catch-up rows.
	for t.next <= cycle {
		t.next += t.interval
	}
}

// AddSlice records a duration episode. Args is retained, not copied.
func (t *Timeline) AddSlice(name string, start, dur uint64, args map[string]uint64) {
	if dur == 0 {
		dur = 1
	}
	t.slices = append(t.slices, Slice{Name: name, Start: start, Dur: dur, Args: args})
}

// Samples returns the recorded rows in cycle order.
func (t *Timeline) Samples() []Sample { return t.samples }

// Slices returns the recorded duration episodes in record order.
func (t *Timeline) Slices() []Slice { return t.slices }

// Value returns probe name's value in sample row i.
func (t *Timeline) Value(i int, name string) (uint64, error) {
	idx, ok := t.reg.byName[name]
	if !ok {
		return 0, fmt.Errorf("telemetry: no probe %q", name)
	}
	if i < 0 || i >= len(t.samples) {
		return 0, fmt.Errorf("telemetry: sample %d out of range [0,%d)", i, len(t.samples))
	}
	return t.samples[i].Values[idx], nil
}

// Summary condenses a timeline for service-level reporting: sample
// and slice counts plus final cumulative values of every counter and
// the peak of every gauge. Map iteration order never leaks — the
// maps are keyed by probe name and consumers marshal via sorted
// keys.
type Summary struct {
	Interval uint64            `json:"interval_cycles"`
	Samples  int               `json:"samples"`
	Slices   int               `json:"slices"`
	Final    map[string]uint64 `json:"final"` // counters: cumulative total
	Peak     map[string]uint64 `json:"peak"`  // gauges: max sampled level
}

// Summarize folds the timeline into a Summary. Returns nil for a
// nil timeline so callers can pass it straight through.
func (t *Timeline) Summarize() *Summary {
	if t == nil {
		return nil
	}
	s := &Summary{
		Interval: t.interval,
		Samples:  len(t.samples),
		Slices:   len(t.slices),
		Final:    make(map[string]uint64),
		Peak:     make(map[string]uint64),
	}
	for i, p := range t.reg.probes {
		switch p.kind {
		case KindCounter, KindHistogram:
			s.Final[p.name] = p.value()
		case KindGauge:
			peak := uint64(0)
			for _, row := range t.samples {
				if row.Values[i] > peak {
					peak = row.Values[i]
				}
			}
			s.Peak[p.name] = peak
		}
	}
	return s
}
