package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Perfetto/Chrome trace_event export.
//
// The emitted document is the JSON object form of the trace_event
// format understood by https://ui.perfetto.dev and chrome://tracing:
//
//	{"displayTimeUnit":"ms","traceEvents":[...]}
//
// One simulated cycle maps to one microsecond of trace time (the
// "ts" field), so a 4096-cycle sampling window renders as ~4ms.
// Counter probes become "C" (counter) events — one track per probe,
// counters exported as per-window deltas, gauges as levels — and
// recorded Slices become "X" (complete duration) events on a
// dedicated "episodes" thread. Metadata ("M") events name the
// process and threads.
//
// Everything is emitted in deterministic order: metadata, then
// samples in cycle order (probes in registration order within a
// row), then slices in record order.

const (
	tracePID        = 1
	traceTIDCounter = 1 // counter tracks
	traceTIDEpisode = 2 // duration slices (resize/drain episodes)
	traceTIDJobs    = 3 // serving-path job spans (tracespan export)
)

// traceEvent is one entry of traceEvents. Field order here fixes
// the marshaled byte layout.
type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   uint64         `json:"ts"`
	Dur  uint64         `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type traceDoc struct {
	DisplayTimeUnit string       `json:"displayTimeUnit"`
	TraceEvents     []traceEvent `json:"traceEvents"`
}

// SpanEvent is one serving-path span, pre-rendered for the Perfetto
// document: name, start and duration in trace microseconds, and the
// span's attributes. tracespan produces these; this package only draws
// them so job spans and simulator slices share one validated timeline.
type SpanEvent struct {
	Name     string
	TsMicros uint64
	Dur      uint64 // must be positive; the validator rejects dur <= 0
	Args     map[string]any
}

// WriteTraceEvents writes the timeline as a Perfetto-loadable JSON
// document. proc names the traced "process" (e.g. "aossim gcc/AOS").
func (t *Timeline) WriteTraceEvents(w io.Writer, proc string) error {
	if t == nil {
		return fmt.Errorf("telemetry: nil timeline")
	}
	return WriteMergedTrace(w, proc, t, nil)
}

// WriteMergedTrace writes one trace_event document holding both the
// flight recorder's timeline (counter tracks on the probes thread,
// sim/resize slices on the episodes thread) and the serving path's job
// spans (a "jobs" thread). Either half may be absent: tl may be nil
// when a job produced no telemetry, spans may be empty when tracing is
// off — with no spans the output is byte-identical to WriteTraceEvents.
func WriteMergedTrace(w io.Writer, proc string, tl *Timeline, spans []SpanEvent) error {
	if tl == nil && len(spans) == 0 {
		return fmt.Errorf("telemetry: nothing to write (nil timeline, no spans)")
	}
	n := 3 + len(spans)
	if tl != nil {
		n += len(tl.samples)*tl.reg.Len() + len(tl.slices)
	}
	evs := make([]traceEvent, 0, n)
	evs = append(evs,
		traceEvent{Name: "process_name", Ph: "M", PID: tracePID, TID: traceTIDCounter,
			Args: map[string]any{"name": proc}},
		traceEvent{Name: "thread_name", Ph: "M", PID: tracePID, TID: traceTIDCounter,
			Args: map[string]any{"name": "probes"}},
		traceEvent{Name: "thread_name", Ph: "M", PID: tracePID, TID: traceTIDEpisode,
			Args: map[string]any{"name": "episodes"}},
	)
	if len(spans) > 0 {
		evs = append(evs, traceEvent{Name: "thread_name", Ph: "M", PID: tracePID,
			TID: traceTIDJobs, Args: map[string]any{"name": "jobs"}})
	}
	if tl != nil {
		prev := make([]uint64, tl.reg.Len())
		for _, row := range tl.samples {
			for i, p := range tl.reg.probes {
				v := row.Values[i]
				if p.kind != KindGauge {
					v, prev[i] = v-prev[i], v
				}
				evs = append(evs, traceEvent{
					Name: p.name, Ph: "C", Ts: row.Cycle,
					PID: tracePID, TID: traceTIDCounter,
					Args: map[string]any{"value": v},
				})
			}
		}
		for _, s := range tl.slices {
			evs = append(evs, traceEvent{
				Name: s.Name, Ph: "X", Ts: s.Start, Dur: s.Dur,
				PID: tracePID, TID: traceTIDEpisode,
				Args: sortedArgs(s.Args),
			})
		}
	}
	for _, s := range spans {
		evs = append(evs, traceEvent{
			Name: s.Name, Ph: "X", Ts: s.TsMicros, Dur: s.Dur,
			PID: tracePID, TID: traceTIDJobs,
			Args: sortedArgs(s.Args),
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(traceDoc{DisplayTimeUnit: "ms", TraceEvents: evs})
}

// sortedArgs copies args with keys in sorted insertion order so the
// marshaled bytes are deterministic despite the map. Empty maps render
// as an omitted args field.
func sortedArgs[V any](in map[string]V) map[string]any {
	if len(in) == 0 {
		return nil
	}
	keys := make([]string, 0, len(in))
	for k := range in { //aoslint:allow mapiter — keys are sorted before use
		keys = append(keys, k)
	}
	sort.Strings(keys)
	args := make(map[string]any, len(keys))
	for _, k := range keys {
		args[k] = in[k]
	}
	return args
}
