package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Perfetto/Chrome trace_event export.
//
// The emitted document is the JSON object form of the trace_event
// format understood by https://ui.perfetto.dev and chrome://tracing:
//
//	{"displayTimeUnit":"ms","traceEvents":[...]}
//
// One simulated cycle maps to one microsecond of trace time (the
// "ts" field), so a 4096-cycle sampling window renders as ~4ms.
// Counter probes become "C" (counter) events — one track per probe,
// counters exported as per-window deltas, gauges as levels — and
// recorded Slices become "X" (complete duration) events on a
// dedicated "episodes" thread. Metadata ("M") events name the
// process and threads.
//
// Everything is emitted in deterministic order: metadata, then
// samples in cycle order (probes in registration order within a
// row), then slices in record order.

const (
	tracePID        = 1
	traceTIDCounter = 1 // counter tracks
	traceTIDEpisode = 2 // duration slices (resize/drain episodes)
)

// traceEvent is one entry of traceEvents. Field order here fixes
// the marshaled byte layout.
type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   uint64         `json:"ts"`
	Dur  uint64         `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type traceDoc struct {
	DisplayTimeUnit string       `json:"displayTimeUnit"`
	TraceEvents     []traceEvent `json:"traceEvents"`
}

// WriteTraceEvents writes the timeline as a Perfetto-loadable JSON
// document. proc names the traced "process" (e.g. "aossim gcc/AOS").
func (t *Timeline) WriteTraceEvents(w io.Writer, proc string) error {
	if t == nil {
		return fmt.Errorf("telemetry: nil timeline")
	}
	evs := make([]traceEvent, 0, 3+len(t.samples)*t.reg.Len()+len(t.slices))
	evs = append(evs,
		traceEvent{Name: "process_name", Ph: "M", PID: tracePID, TID: traceTIDCounter,
			Args: map[string]any{"name": proc}},
		traceEvent{Name: "thread_name", Ph: "M", PID: tracePID, TID: traceTIDCounter,
			Args: map[string]any{"name": "probes"}},
		traceEvent{Name: "thread_name", Ph: "M", PID: tracePID, TID: traceTIDEpisode,
			Args: map[string]any{"name": "episodes"}},
	)
	prev := make([]uint64, t.reg.Len())
	for _, row := range t.samples {
		for i, p := range t.reg.probes {
			v := row.Values[i]
			if p.kind != KindGauge {
				v, prev[i] = v-prev[i], v
			}
			evs = append(evs, traceEvent{
				Name: p.name, Ph: "C", Ts: row.Cycle,
				PID: tracePID, TID: traceTIDCounter,
				Args: map[string]any{"value": v},
			})
		}
	}
	for _, s := range t.slices {
		ev := traceEvent{
			Name: s.Name, Ph: "X", Ts: s.Start, Dur: s.Dur,
			PID: tracePID, TID: traceTIDEpisode,
		}
		if len(s.Args) > 0 {
			// Sorted copy: deterministic bytes despite map args.
			keys := make([]string, 0, len(s.Args))
			for k := range s.Args { //aoslint:allow mapiter — keys are sorted before use
				keys = append(keys, k)
			}
			sort.Strings(keys)
			args := make(map[string]any, len(keys))
			for _, k := range keys {
				args[k] = s.Args[k]
			}
			ev.Args = args
		}
		evs = append(evs, ev)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(traceDoc{DisplayTimeUnit: "ms", TraceEvents: evs})
}
