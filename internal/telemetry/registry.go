// Package telemetry is the simulator's microarchitectural flight
// recorder: a probe registry (counters, gauges, fixed-bucket
// histograms) plus a cycle-windowed sampler that the timing core
// drives at a configurable commit-cycle interval.
//
// Design constraints, in priority order:
//
//  1. Disabled means free. A simulation that never attaches a
//     Timeline must behave byte-identically and allocate nothing
//     extra on the hot path; every integration point is a single
//     nil/threshold check.
//  2. Steady-state probe updates never allocate. Registration
//     happens once at setup (allocations fine); Counter.Add,
//     Gauge.Set and Histogram.Observe are plain integer stores.
//     Sample rows amortise through an append-grown backing slice.
//  3. Probes are passive. They observe the simulation; they never
//     feed back into it, so sampled and unsampled runs produce
//     identical experiment output (pinned by
//     experiments.TestMatrixSampledUnsampledEquivalence).
//
// Probe names are lower_snake with a subsystem prefix
// (cpu_, mcu_, hbt_, heap_, ...) and each name registers exactly
// once; both rules are enforced at runtime here and statically by
// the aoslint probename analyzer.
//
// A Registry and its probes are confined to one simulation
// goroutine; none of the operations are atomic.
package telemetry

import (
	"fmt"
	"regexp"
	"sort"
)

// Kind says how a probe's value turns into a time series: counters
// are cumulative (exported per-window as deltas), gauges are
// instantaneous levels.
type Kind uint8

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// probeNameRE is the registry-enforced style: lower_snake with at
// least two segments, the first being the subsystem prefix. The
// aoslint probename analyzer enforces the same shape statically.
var probeNameRE = regexp.MustCompile(`^[a-z][a-z0-9]*(_[a-z0-9]+)+$`)

// Counter is a monotonically increasing cumulative count. Add and
// Load are plain (non-atomic) integer ops: a counter belongs to one
// simulation goroutine.
type Counter struct{ v uint64 }

// Add increments the counter. It never allocates.
func (c *Counter) Add(n uint64) { c.v += n }

// Load returns the cumulative value.
func (c *Counter) Load() uint64 { return c.v }

// Gauge is an instantaneous level (occupancy, associativity, live
// bytes). Set and Load are plain integer ops.
type Gauge struct{ v uint64 }

// Set stores the current level. It never allocates.
func (g *Gauge) Set(v uint64) { g.v = v }

// Load returns the current level.
func (g *Gauge) Load() uint64 { return g.v }

// Histogram counts observations into fixed buckets chosen at
// registration; Observe is a branch-light linear scan (bucket
// counts are small) and never allocates.
type Histogram struct {
	bounds []uint64 // upper bounds, ascending; implicit +Inf last
	counts []uint64 // len(bounds)+1
	sum    uint64
	n      uint64
}

// Observe records one value. It never allocates.
func (h *Histogram) Observe(v uint64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i]++
	h.sum += v
	h.n++
}

// Snapshot returns the bucket upper bounds, per-bucket counts (the
// final count is the overflow bucket), total observation count and
// sum. The returned slices alias the histogram's backing arrays.
func (h *Histogram) Snapshot() (bounds []uint64, counts []uint64, n, sum uint64) {
	return h.bounds, h.counts, h.n, h.sum
}

// probe is one registered name plus the typed cell behind it.
type probe struct {
	name string
	kind Kind
	c    *Counter
	g    *Gauge
	h    *Histogram
}

// value returns the probe's current scalar: cumulative count for
// counters and histograms (observation count), level for gauges.
func (p *probe) value() uint64 {
	switch p.kind {
	case KindCounter:
		return p.c.v
	case KindGauge:
		return p.g.v
	case KindHistogram:
		return p.h.n
	}
	return 0
}

// Registry holds named probes. Registration (Counter, Gauge,
// Histogram) happens during setup and may allocate; it panics on a
// malformed or duplicate name because both are programming errors —
// a misnamed probe would silently vanish from dashboards.
type Registry struct {
	probes []probe
	byName map[string]int
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]int)}
}

func (r *Registry) register(name string, kind Kind) int {
	if !probeNameRE.MatchString(name) {
		panic(fmt.Sprintf("telemetry: probe name %q is not lower_snake with a subsystem prefix", name))
	}
	if _, dup := r.byName[name]; dup {
		panic(fmt.Sprintf("telemetry: probe %q registered twice", name))
	}
	r.byName[name] = len(r.probes)
	r.probes = append(r.probes, probe{name: name, kind: kind})
	return len(r.probes) - 1
}

// Counter registers and returns a new cumulative counter.
func (r *Registry) Counter(name string) *Counter {
	i := r.register(name, KindCounter)
	r.probes[i].c = new(Counter)
	return r.probes[i].c
}

// Gauge registers and returns a new instantaneous gauge.
func (r *Registry) Gauge(name string) *Gauge {
	i := r.register(name, KindGauge)
	r.probes[i].g = new(Gauge)
	return r.probes[i].g
}

// Histogram registers and returns a histogram with the given
// ascending bucket upper bounds (an overflow bucket is implicit).
func (r *Registry) Histogram(name string, bounds []uint64) *Histogram {
	if len(bounds) == 0 {
		panic(fmt.Sprintf("telemetry: histogram %q needs at least one bucket bound", name))
	}
	if !sort.SliceIsSorted(bounds, func(i, j int) bool { return bounds[i] < bounds[j] }) {
		panic(fmt.Sprintf("telemetry: histogram %q bounds must be strictly ascending", name))
	}
	i := r.register(name, KindHistogram)
	r.probes[i].h = &Histogram{
		bounds: append([]uint64(nil), bounds...),
		counts: make([]uint64, len(bounds)+1),
	}
	return r.probes[i].h
}

// Names returns the registered probe names in registration order.
func (r *Registry) Names() []string {
	out := make([]string, len(r.probes))
	for i, p := range r.probes {
		out[i] = p.name
	}
	return out
}

// Kind returns the kind of a registered probe name.
func (r *Registry) Kind(name string) (Kind, bool) {
	i, ok := r.byName[name]
	if !ok {
		return 0, false
	}
	return r.probes[i].kind, true
}

// Len returns the number of registered probes.
func (r *Registry) Len() int { return len(r.probes) }
