package telemetry

import (
	"bytes"
	"testing"
)

// mergeFixture builds a tiny timeline: one counter probe, two sample
// rows, one sim-mode slice.
func mergeFixture(t *testing.T) *Timeline {
	t.Helper()
	reg := NewRegistry()
	c := reg.Counter("cpu_test_events")
	tl := NewTimeline(reg, 100)
	c.Add(3)
	tl.Sample(100, 50)
	c.Add(4)
	tl.Sample(200, 120)
	tl.AddSlice("sim/detailed", 0, 200, map[string]uint64{"mode": 1, "insts": 120})
	return tl
}

// TestWriteTraceEventsUnchangedBySpanSupport pins the refactor: with no
// spans the merged writer must produce byte-identical output to the
// original WriteTraceEvents path, so every existing timeline consumer
// (CI greps, goldens, viewers) is untouched.
func TestWriteTraceEventsUnchangedBySpanSupport(t *testing.T) {
	tl := mergeFixture(t)
	var legacy, merged bytes.Buffer
	if err := tl.WriteTraceEvents(&legacy, "proc"); err != nil {
		t.Fatal(err)
	}
	if err := WriteMergedTrace(&merged, "proc", tl, nil); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(legacy.Bytes(), merged.Bytes()) {
		t.Fatalf("span-less merged output diverged from WriteTraceEvents:\n%s\nvs\n%s",
			legacy.String(), merged.String())
	}
	if bytes.Contains(legacy.Bytes(), []byte(`"jobs"`)) {
		t.Fatal("span-less document must not declare a jobs thread")
	}
}

// TestMergedTimelineAndSpansValidate checks the tentpole's merge
// contract: sim slices and job spans land in one document that the
// in-tree validator accepts, on separate threads.
func TestMergedTimelineAndSpansValidate(t *testing.T) {
	tl := mergeFixture(t)
	spans := []SpanEvent{
		{Name: "service_ingress", TsMicros: 0, Dur: 900,
			Args: map[string]any{"span_id": "00f067aa0ba902b7"}},
		{Name: "runner_execute", TsMicros: 40, Dur: 700,
			Args: map[string]any{"parent_id": "00f067aa0ba902b7", "scheme": "aos"}},
	}
	var buf bytes.Buffer
	if err := WriteMergedTrace(&buf, "aosd job abc", tl, spans); err != nil {
		t.Fatal(err)
	}
	st, err := ValidateTraceJSON(buf.Bytes())
	if err != nil {
		t.Fatalf("validator rejected merged doc: %v\n%s", err, buf.String())
	}
	if st.SimSlices != 1 {
		t.Fatalf("sim slices = %d, want 1", st.SimSlices)
	}
	if st.Slices != 3 {
		t.Fatalf("slices = %d, want 3 (1 sim + 2 spans)", st.Slices)
	}
	if len(st.CounterTracks) != 1 || st.CounterTracks[0] != "cpu_test_events" {
		t.Fatalf("counter tracks = %v", st.CounterTracks)
	}
	if !bytes.Contains(buf.Bytes(), []byte(`"name": "jobs"`)) {
		t.Fatal("jobs thread metadata missing from merged doc")
	}
}

// TestMergedRejectsNothing ensures the degenerate call errors instead
// of emitting an empty document.
func TestMergedRejectsNothing(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMergedTrace(&buf, "p", nil, nil); err == nil {
		t.Fatal("want error for nil timeline + no spans")
	}
}
