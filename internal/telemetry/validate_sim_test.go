package telemetry

import (
	"bytes"
	"strings"
	"testing"
)

// simDoc builds a minimal trace document with one counter track and the
// given extra events appended after the counter samples.
func simDoc(counterTs []uint64, extra string) []byte {
	var b strings.Builder
	b.WriteString(`{"traceEvents":[`)
	b.WriteString(`{"name":"process_name","ph":"M","pid":1,"tid":1,"args":{"name":"t"}}`)
	for _, ts := range counterTs {
		b.WriteString(`,{"name":"cpu_insts_total","ph":"C","ts":`)
		b.WriteString(u64(ts))
		b.WriteString(`,"pid":1,"tid":1,"args":{"value":1}}`)
	}
	if extra != "" {
		b.WriteString("," + extra)
	}
	b.WriteString(`]}`)
	return []byte(b.String())
}

func u64(v uint64) string {
	buf := make([]byte, 0, 20)
	if v == 0 {
		return "0"
	}
	var digits []byte
	for v > 0 {
		digits = append(digits, byte('0'+v%10))
		v /= 10
	}
	for i := len(digits) - 1; i >= 0; i-- {
		buf = append(buf, digits[i])
	}
	return string(buf)
}

func TestValidateSimSlicesRequireModeArg(t *testing.T) {
	good := simDoc([]uint64{10},
		`{"name":"sim/detailed","ph":"X","ts":5,"dur":20,"pid":1,"tid":2,"args":{"mode":1,"insts":100}}`)
	st, err := ValidateTraceJSON(good)
	if err != nil {
		t.Fatalf("annotated sim slice rejected: %v", err)
	}
	if st.SimSlices != 1 {
		t.Fatalf("SimSlices = %d, want 1", st.SimSlices)
	}

	missing := simDoc([]uint64{10},
		`{"name":"sim/fastforward","ph":"X","ts":5,"dur":20,"pid":1,"tid":2,"args":{"insts":100}}`)
	if _, err := ValidateTraceJSON(missing); err == nil || !strings.Contains(err.Error(), "args.mode") {
		t.Fatalf("sim slice without args.mode accepted (err = %v)", err)
	}

	wrongType := simDoc(nil,
		`{"name":"sim/detailed","ph":"X","ts":5,"dur":20,"pid":1,"tid":2,"args":{"mode":"detailed"}}`)
	if _, err := ValidateTraceJSON(wrongType); err == nil || !strings.Contains(err.Error(), "args.mode") {
		t.Fatalf("sim slice with string args.mode accepted (err = %v)", err)
	}
}

func TestValidateRejectsSamplesInsideFastForward(t *testing.T) {
	// Counter sample at ts 50, strictly inside the FF span [40, 80).
	bad := simDoc([]uint64{50},
		`{"name":"sim/fastforward","ph":"X","ts":40,"dur":40,"pid":1,"tid":2,"args":{"mode":0}}`)
	if _, err := ValidateTraceJSON(bad); err == nil || !strings.Contains(err.Error(), "fast-forward") {
		t.Fatalf("counter sample inside FF slice accepted (err = %v)", err)
	}

	// Boundary samples (at the span edges) are legal: the mode switch
	// lands exactly on a commit-cycle boundary.
	edge := simDoc([]uint64{40, 80},
		`{"name":"sim/fastforward","ph":"X","ts":40,"dur":40,"pid":1,"tid":2,"args":{"mode":0}}`)
	if _, err := ValidateTraceJSON(edge); err != nil {
		t.Fatalf("boundary samples rejected: %v", err)
	}

	// Samples inside a detailed slice are of course fine.
	det := simDoc([]uint64{50},
		`{"name":"sim/detailed","ph":"X","ts":40,"dur":40,"pid":1,"tid":2,"args":{"mode":1}}`)
	if _, err := ValidateTraceJSON(det); err != nil {
		t.Fatalf("samples inside detailed slice rejected: %v", err)
	}
}

func TestValidateSimTimelineRoundTrip(t *testing.T) {
	// A timeline carrying mode slices must render to a document the
	// validator accepts, with the slice names surfaced in the stats.
	tl := NewTimeline(NewRegistry(), 64)
	tl.Registry().Counter("cpu_insts_total").Add(5)
	tl.Sample(64, 100)
	tl.AddSlice("sim/fastforward", 64, 0, map[string]uint64{"mode": 0, "insts": 5_000})
	tl.AddSlice("sim/detailed", 64, 900, map[string]uint64{"mode": 1, "insts": 1_000})
	var buf bytes.Buffer
	if err := tl.WriteTraceEvents(&buf, "test"); err != nil {
		t.Fatal(err)
	}
	st, err := ValidateTraceJSON(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if st.SimSlices != 2 {
		t.Fatalf("SimSlices = %d, want 2", st.SimSlices)
	}
}
