package telemetry

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// TraceStats summarises a validated trace_event document.
type TraceStats struct {
	Events        int
	CounterTracks []string // distinct "C" event names, sorted
	SliceNames    []string // distinct "X" event names, sorted
	Slices        int
	// SimSlices counts "sim/*" mode slices (sampled-simulation runs
	// annotate every detailed/fast-forward segment with one).
	SimSlices int
}

// ValidateTraceJSON is the in-tree schema check for the Perfetto
// exporter's output: CI generates a timeline with a short sampled
// simulation and fails the build if the document stops being
// loadable. It verifies the structural contract a trace viewer
// relies on — a traceEvents array whose entries carry name/ph/pid/tid,
// a numeric non-decreasing-per-track ts, phases limited to M/C/X,
// "C" events with a numeric args.value, "X" events with a positive
// dur — and returns per-phase statistics for threshold checks
// (e.g. the acceptance criterion of >= 6 counter tracks).
func ValidateTraceJSON(data []byte) (TraceStats, error) {
	var st TraceStats
	var doc struct {
		DisplayTimeUnit string            `json:"displayTimeUnit"`
		TraceEvents     []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return st, fmt.Errorf("telemetry: trace document is not valid JSON: %w", err)
	}
	if doc.TraceEvents == nil {
		return st, fmt.Errorf("telemetry: trace document has no traceEvents array")
	}
	counters := map[string]uint64{} // track -> last ts
	slices := map[string]bool{}
	var counterTs []float64  // every "C" sample's ts, in document order
	var ffSpans [][2]float64 // sim/fastforward slice intervals [ts, ts+dur)
	for i, raw := range doc.TraceEvents {
		var ev struct {
			Name *string        `json:"name"`
			Ph   *string        `json:"ph"`
			Ts   *float64       `json:"ts"`
			Dur  *float64       `json:"dur"`
			PID  *int           `json:"pid"`
			TID  *int           `json:"tid"`
			Args map[string]any `json:"args"`
		}
		if err := json.Unmarshal(raw, &ev); err != nil {
			return st, fmt.Errorf("telemetry: traceEvents[%d]: %w", i, err)
		}
		if ev.Name == nil || *ev.Name == "" {
			return st, fmt.Errorf("telemetry: traceEvents[%d]: missing name", i)
		}
		if ev.Ph == nil {
			return st, fmt.Errorf("telemetry: traceEvents[%d] (%s): missing ph", i, *ev.Name)
		}
		if ev.PID == nil || ev.TID == nil {
			return st, fmt.Errorf("telemetry: traceEvents[%d] (%s): missing pid/tid", i, *ev.Name)
		}
		switch *ev.Ph {
		case "M":
			// Metadata: no ts required.
		case "C":
			if ev.Ts == nil || *ev.Ts < 0 {
				return st, fmt.Errorf("telemetry: counter event %q: missing or negative ts", *ev.Name)
			}
			v, ok := ev.Args["value"]
			if !ok {
				return st, fmt.Errorf("telemetry: counter event %q: missing args.value", *ev.Name)
			}
			if _, ok := v.(float64); !ok {
				return st, fmt.Errorf("telemetry: counter event %q: args.value is %T, want number", *ev.Name, v)
			}
			ts := uint64(*ev.Ts)
			if last, seen := counters[*ev.Name]; seen && ts < last {
				return st, fmt.Errorf("telemetry: counter track %q: ts went backwards (%d after %d)", *ev.Name, ts, last)
			}
			counters[*ev.Name] = ts
			counterTs = append(counterTs, *ev.Ts)
		case "X":
			if ev.Ts == nil || *ev.Ts < 0 {
				return st, fmt.Errorf("telemetry: slice event %q: missing or negative ts", *ev.Name)
			}
			if ev.Dur == nil || *ev.Dur <= 0 {
				return st, fmt.Errorf("telemetry: slice event %q: missing or non-positive dur", *ev.Name)
			}
			slices[*ev.Name] = true
			st.Slices++
			// Sampled-simulation mode slices: a timeline that interleaves
			// detailed and fast-forward execution is only interpretable
			// when every sim/* slice says which mode it covers.
			if strings.HasPrefix(*ev.Name, "sim/") {
				v, ok := ev.Args["mode"]
				if !ok {
					return st, fmt.Errorf("telemetry: sim slice %q: missing args.mode (detailed/FF interleaving must be annotated)", *ev.Name)
				}
				if _, ok := v.(float64); !ok {
					return st, fmt.Errorf("telemetry: sim slice %q: args.mode is %T, want number", *ev.Name, v)
				}
				st.SimSlices++
				if *ev.Name == "sim/fastforward" {
					ffSpans = append(ffSpans, [2]float64{*ev.Ts, *ev.Ts + *ev.Dur})
				}
			}
		default:
			return st, fmt.Errorf("telemetry: traceEvents[%d] (%s): unexpected phase %q", i, *ev.Name, *ev.Ph)
		}
	}
	// Probes pause during fast-forward (sampling is driven from the
	// detailed commit path), so a counter sample strictly inside a
	// fast-forward span means the timeline and the mode slices disagree.
	for _, ts := range counterTs {
		for _, span := range ffSpans {
			if ts > span[0] && ts < span[1] {
				return st, fmt.Errorf("telemetry: counter sample at ts %v falls inside fast-forward slice [%v,%v)", ts, span[0], span[1])
			}
		}
	}
	st.Events = len(doc.TraceEvents)
	for name := range counters { //aoslint:allow mapiter — collected then sorted below
		st.CounterTracks = append(st.CounterTracks, name)
	}
	sort.Strings(st.CounterTracks)
	for name := range slices { //aoslint:allow mapiter — collected then sorted below
		st.SliceNames = append(st.SliceNames, name)
	}
	sort.Strings(st.SliceNames)
	return st, nil
}
