package telemetry

import (
	"bytes"
	"strings"
	"testing"
)

func TestRegistryNameStyle(t *testing.T) {
	r := NewRegistry()
	for _, good := range []string{"cpu_ipc", "mcu_bwb_hit_rate", "hbt_live_entries", "heap_live_bytes2"} {
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Errorf("Counter(%q) panicked: %v", good, p)
				}
			}()
			r.Counter(good)
		}()
	}
	for _, bad := range []string{"", "cpu", "CPU_ipc", "cpu__ipc", "cpu_IPC", "cpu-ipc", "_cpu_ipc", "cpu_ipc_", "9cpu_ipc"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Counter(%q) did not panic", bad)
				}
			}()
			r.Counter(bad)
		}()
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("cpu_commits_total")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.Gauge("cpu_commits_total")
}

func TestHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("cpu_retire_delay_cycles", []uint64{1, 4, 16})
	for _, v := range []uint64{0, 1, 2, 5, 100} {
		h.Observe(v)
	}
	bounds, counts, n, sum := h.Snapshot()
	if len(bounds) != 3 || len(counts) != 4 {
		t.Fatalf("snapshot shape: %d bounds, %d counts", len(bounds), len(counts))
	}
	want := []uint64{2, 1, 1, 1} // <=1:{0,1}, <=4:{2}, <=16:{5}, +Inf:{100}
	for i, c := range counts {
		if c != want[i] {
			t.Errorf("bucket %d = %d, want %d", i, c, want[i])
		}
	}
	if n != 5 || sum != 108 {
		t.Errorf("n=%d sum=%d, want 5/108", n, sum)
	}
}

func TestTimelineSampling(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("cpu_insts_total")
	g := r.Gauge("cpu_mcq_occupancy")
	tl := NewTimeline(r, 100)
	if tl.Due(99) {
		t.Fatal("due before first interval")
	}
	c.Add(7)
	g.Set(3)
	if !tl.Due(100) {
		t.Fatal("not due at interval boundary")
	}
	tl.Sample(100, 7)
	c.Add(5)
	g.Set(1)
	// A long stall: the next crossing lands far past several windows
	// and must produce one row, not a catch-up burst.
	if tl.Due(250) {
		tl.Sample(250, 12)
	}
	if tl.Next() != 300 {
		t.Fatalf("next = %d, want 300", tl.Next())
	}
	rows := tl.Samples()
	if len(rows) != 2 {
		t.Fatalf("got %d samples, want 2", len(rows))
	}
	if v, _ := tl.Value(0, "cpu_insts_total"); v != 7 {
		t.Errorf("row 0 counter = %d, want 7", v)
	}
	if v, _ := tl.Value(1, "cpu_insts_total"); v != 12 {
		t.Errorf("row 1 counter = %d, want 12", v)
	}
	if v, _ := tl.Value(1, "cpu_mcq_occupancy"); v != 1 {
		t.Errorf("row 1 gauge = %d, want 1", v)
	}
	if _, err := tl.Value(0, "cpu_nope"); err == nil {
		t.Error("Value on unknown probe did not error")
	}
}

func TestSteadyStateUpdatesDoNotAllocate(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("cpu_insts_total")
	g := r.Gauge("cpu_mcq_occupancy")
	h := r.Histogram("cpu_retire_delay_cycles", []uint64{1, 8, 64})
	allocs := testing.AllocsPerRun(100, func() {
		c.Add(1)
		g.Set(5)
		h.Observe(9)
	})
	if allocs != 0 {
		t.Fatalf("probe updates allocated %.1f/op, want 0", allocs)
	}
}

func TestWriteAndValidateTraceEvents(t *testing.T) {
	r := NewRegistry()
	probes := []*Counter{
		r.Counter("cpu_insts_total"),
		r.Counter("cpu_checks_total"),
		r.Counter("mcu_bwb_hits_total"),
		r.Counter("mcu_bwb_misses_total"),
		r.Counter("hbt_resizes_total"),
	}
	occ := r.Gauge("cpu_mcq_occupancy")
	tl := NewTimeline(r, 64)
	for cyc := uint64(64); cyc <= 640; cyc += 64 {
		for i, p := range probes {
			p.Add(uint64(i) + cyc/64)
		}
		occ.Set(cyc % 48)
		tl.Sample(cyc, cyc/2)
	}
	tl.AddSlice("hbt_resize", 128, 300, map[string]uint64{"old_assoc": 8, "new_assoc": 16})
	tl.AddSlice("hbt_resize", 500, 0, nil) // zero dur clamps to 1

	var buf bytes.Buffer
	if err := tl.WriteTraceEvents(&buf, "test proc"); err != nil {
		t.Fatal(err)
	}
	st, err := ValidateTraceJSON(buf.Bytes())
	if err != nil {
		t.Fatalf("exporter output failed validation: %v\n%s", err, buf.String())
	}
	if len(st.CounterTracks) != 6 {
		t.Errorf("counter tracks = %v, want 6", st.CounterTracks)
	}
	if st.Slices != 2 || len(st.SliceNames) != 1 || st.SliceNames[0] != "hbt_resize" {
		t.Errorf("slices = %d names %v", st.Slices, st.SliceNames)
	}
	// Counters export as per-window deltas: the first cpu_insts_total
	// value is 1, the rest are 1 each window.
	if !strings.Contains(buf.String(), `"name": "cpu_insts_total"`) {
		t.Error("missing counter track for cpu_insts_total")
	}

	// Determinism: a second export is byte-identical.
	var buf2 bytes.Buffer
	if err := tl.WriteTraceEvents(&buf2, "test proc"); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("trace export is not deterministic")
	}
}

func TestValidateTraceJSONRejects(t *testing.T) {
	cases := map[string]string{
		"not json":        `{`,
		"no traceEvents":  `{"displayTimeUnit":"ms"}`,
		"missing name":    `{"traceEvents":[{"ph":"C","ts":1,"pid":1,"tid":1,"args":{"value":1}}]}`,
		"missing ph":      `{"traceEvents":[{"name":"x_y","ts":1,"pid":1,"tid":1}]}`,
		"bad phase":       `{"traceEvents":[{"name":"x_y","ph":"B","ts":1,"pid":1,"tid":1}]}`,
		"counter no val":  `{"traceEvents":[{"name":"x_y","ph":"C","ts":1,"pid":1,"tid":1,"args":{}}]}`,
		"counter str val": `{"traceEvents":[{"name":"x_y","ph":"C","ts":1,"pid":1,"tid":1,"args":{"value":"v"}}]}`,
		"slice no dur":    `{"traceEvents":[{"name":"x_y","ph":"X","ts":1,"pid":1,"tid":1}]}`,
		"no pid":          `{"traceEvents":[{"name":"x_y","ph":"M","tid":1}]}`,
		"ts backwards": `{"traceEvents":[
			{"name":"x_y","ph":"C","ts":10,"pid":1,"tid":1,"args":{"value":1}},
			{"name":"x_y","ph":"C","ts":5,"pid":1,"tid":1,"args":{"value":1}}]}`,
	}
	for label, doc := range cases {
		if _, err := ValidateTraceJSON([]byte(doc)); err == nil {
			t.Errorf("%s: validation passed, want error", label)
		}
	}
}

func TestSummarize(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hbt_resizes_total")
	g := r.Gauge("cpu_mcq_occupancy")
	tl := NewTimeline(r, 10)
	c.Add(2)
	g.Set(9)
	tl.Sample(10, 5)
	c.Add(3)
	g.Set(4)
	tl.Sample(20, 11)
	tl.AddSlice("hbt_resize", 3, 7, nil)
	s := tl.Summarize()
	if s.Samples != 2 || s.Slices != 1 || s.Interval != 10 {
		t.Fatalf("summary shape: %+v", s)
	}
	if s.Final["hbt_resizes_total"] != 5 {
		t.Errorf("final counter = %d, want 5", s.Final["hbt_resizes_total"])
	}
	if s.Peak["cpu_mcq_occupancy"] != 9 {
		t.Errorf("peak gauge = %d, want 9", s.Peak["cpu_mcq_occupancy"])
	}
	var nilTL *Timeline
	if nilTL.Summarize() != nil {
		t.Error("nil timeline summary not nil")
	}
}
