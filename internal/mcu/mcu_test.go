package mcu

import (
	"testing"

	"aos/internal/hbt"
	"aos/internal/mem"
	"aos/internal/pa"
)

const tblBase = 0x3000_0000_0000

func newQueue(t testing.TB, assoc int, opts Options) (*Queue, *hbt.Table) {
	t.Helper()
	tb, err := hbt.NewTable(mem.New(), tblBase, assoc)
	if err != nil {
		t.Fatal(err)
	}
	return NewQueue(48, tb, nil, opts, nil), tb
}

func signedPtr(va uint64, pac uint16) uint64 { return pa.Compose(va, pac, pa.AHCMedium) }

// runBoundsStore pushes a bndstr through its whole lifecycle.
func runBoundsStore(t *testing.T, q *Queue, ptr uint64, size uint64) {
	t.Helper()
	e, ok := q.Enqueue(TypeBndstr, ptr, size)
	if !ok {
		t.Fatal("enqueue failed")
	}
	q.Run(e)
	if e.State != StateBndStr {
		t.Fatalf("bndstr state = %v, want BndStr (waiting for commit)", e.State)
	}
	q.MarkCommitted(e)
	q.Run(e)
	if e.State != StateDone {
		t.Fatalf("bndstr final state = %v", e.State)
	}
	if _, ok := q.RetireHead(); !ok {
		t.Fatal("retire failed")
	}
}

func TestBWBTagAlgorithm2(t *testing.T) {
	addr := uint64(0x2000_0012_3456)
	pac := uint16(0xABCD)
	small := BWBTag(addr, pa.AHCSmall, pac)
	med := BWBTag(addr, pa.AHCMedium, pac)
	large := BWBTag(addr, pa.AHCLarge, pac)

	if small>>16 != uint32(pac) || med>>16 != uint32(pac) || large>>16 != uint32(pac) {
		t.Error("PAC not in tag[31:16]")
	}
	if small&3 != uint32(pa.AHCSmall) || med&3 != uint32(pa.AHCMedium) || large&3 != uint32(pa.AHCLarge) {
		t.Error("AHC not in tag[1:0]")
	}
	if got, want := small>>2&0x3FFF, uint32(addr>>7&0x3FFF); got != want {
		t.Errorf("small addr bits = %#x, want %#x", got, want)
	}
	if got, want := med>>2&0x3FFF, uint32(addr>>10&0x3FFF); got != want {
		t.Errorf("medium addr bits = %#x, want %#x", got, want)
	}
	if got, want := large>>2&0x3FFF, uint32(addr>>12&0x3FFF); got != want {
		t.Errorf("large addr bits = %#x, want %#x", got, want)
	}
}

func TestBWBTagInvariantWithinChunk(t *testing.T) {
	// All addresses inside a chunk must produce one tag (that is the whole
	// point of the AHC: Algorithm 2 drops the bits that vary inside it).
	base := uint64(0x2000_0000_4000) // 64B aligned
	ahc := pa.ComputeAHC(base, 64)
	tag0 := BWBTag(base, ahc, 0x1111)
	for off := uint64(1); off < 64; off++ {
		if BWBTag(base+off, ahc, 0x1111) != tag0 {
			t.Fatalf("tag changed at offset %d within a small chunk", off)
		}
	}
	base2 := uint64(0x2000_0000_8000)
	ahc2 := pa.ComputeAHC(base2, 256)
	tag2 := BWBTag(base2, ahc2, 0x1111)
	for off := uint64(1); off < 256; off += 7 {
		if BWBTag(base2+off, ahc2, 0x1111) != tag2 {
			t.Fatalf("tag changed at offset %d within a medium chunk", off)
		}
	}
}

func TestBWBLRUAndUpdate(t *testing.T) {
	b := NewBWB()
	if _, ok := b.Lookup(1); ok {
		t.Error("empty BWB hit")
	}
	b.Update(1, 3)
	if w, ok := b.Lookup(1); !ok || w != 3 {
		t.Errorf("Lookup = (%d,%v), want (3,true)", w, ok)
	}
	// Updating an existing tag changes the way in place.
	b.Update(1, 5)
	if w, _ := b.Lookup(1); w != 5 {
		t.Errorf("updated way = %d, want 5", w)
	}
	// Fill to capacity with fresh tags (tag 1 is evicted along the way as
	// the eldest), touch tag 100, then overflow: the LRU victim must be
	// tag 101, not the freshly touched tag 100.
	for i := uint32(100); i < 100+BWBEntries; i++ {
		b.Update(i, 0)
	}
	if _, ok := b.Lookup(100); !ok {
		t.Fatal("tag 100 missing after fill")
	}
	b.Update(999, 7)
	if _, ok := b.Lookup(100); !ok {
		t.Error("LRU evicted the recently touched entry")
	}
	if _, ok := b.Lookup(101); ok {
		t.Error("LRU did not evict the eldest entry")
	}
	s := b.Stats()
	if s.Hits == 0 || s.Misses == 0 {
		t.Errorf("stats not counted: %+v", s)
	}
	b.Invalidate()
	if _, ok := b.Lookup(1); ok {
		t.Error("entry survived Invalidate")
	}
}

func TestUnsignedAccessSkipsChecking(t *testing.T) {
	q, _ := newQueue(t, 1, Options{})
	e, _ := q.Enqueue(TypeLoad, 0x2000_0000_1000, 8) // no PAC/AHC
	q.Run(e)
	if e.State != StateDone || e.Accesses != 0 {
		t.Errorf("unsigned load: state=%v accesses=%d, want Done/0", e.State, e.Accesses)
	}
}

func TestSignedCheckFindsBounds(t *testing.T) {
	q, tb := newQueue(t, 1, Options{})
	base := uint64(0x2000_0000_1000)
	if _, err := tb.Insert(0x0BEE, base, 256); err != nil {
		t.Fatal(err)
	}
	e, _ := q.Enqueue(TypeLoad, signedPtr(base+128, 0x0BEE), 8)
	q.Run(e)
	if e.State != StateDone {
		t.Fatalf("state = %v, want Done", e.State)
	}
	if e.Accesses != 1 {
		t.Errorf("accesses = %d, want 1", e.Accesses)
	}
}

func TestSignedCheckFailsWithoutBounds(t *testing.T) {
	q, _ := newQueue(t, 2, Options{})
	e, _ := q.Enqueue(TypeStore, signedPtr(0x2000_0000_1000, 0x0BAD), 8)
	q.Run(e)
	if e.State != StateFail {
		t.Fatalf("state = %v, want Fail", e.State)
	}
	if e.Accesses != 2 {
		t.Errorf("failing search accessed %d ways, want all 2", e.Accesses)
	}
}

func TestOutOfBoundsAccessFails(t *testing.T) {
	q, tb := newQueue(t, 1, Options{})
	base := uint64(0x2000_0000_1000)
	if _, err := tb.Insert(0x0BEE, base, 256); err != nil {
		t.Fatal(err)
	}
	e, _ := q.Enqueue(TypeLoad, signedPtr(base+256, 0x0BEE), 8) // one past the end
	q.Run(e)
	if e.State != StateFail {
		t.Errorf("OOB access state = %v, want Fail", e.State)
	}
}

func TestBndstrLifecycleAndCommitOrdering(t *testing.T) {
	q, tb := newQueue(t, 1, Options{})
	ptr := signedPtr(0x2000_0000_2000, 0x0AAA)
	e, _ := q.Enqueue(TypeBndstr, ptr, 128)
	q.Run(e)
	if e.State != StateBndStr {
		t.Fatalf("state = %v, want BndStr before commit", e.State)
	}
	// The store must NOT have drained yet (store-store ordering).
	if _, found := tb.Lookup(0x0AAA, 0x2000_0000_2000); found {
		t.Fatal("bounds visible before ROB commit")
	}
	q.MarkCommitted(e)
	q.Run(e)
	if e.State != StateDone {
		t.Fatalf("state = %v after commit", e.State)
	}
	if _, found := tb.Lookup(0x0AAA, 0x2000_0000_2000+64); !found {
		t.Error("bounds not stored")
	}
}

func TestBndclrClearsAndDetectsDoubleFree(t *testing.T) {
	q, tb := newQueue(t, 1, Options{})
	base := uint64(0x2000_0000_3000)
	runBoundsStore(t, q, signedPtr(base, 0x0CCC), 512)

	e, _ := q.Enqueue(TypeBndclr, signedPtr(base, 0x0CCC), 0)
	q.MarkCommitted(e)
	q.Run(e)
	if e.State != StateDone {
		t.Fatalf("bndclr state = %v", e.State)
	}
	if _, found := tb.Lookup(0x0CCC, base); found {
		t.Error("bounds still present after bndclr")
	}
	if _, ok := q.RetireHead(); !ok {
		t.Fatal("retire")
	}

	// Second clear: no matching bounds -> Fail (double free).
	e2, _ := q.Enqueue(TypeBndclr, signedPtr(base, 0x0CCC), 0)
	q.MarkCommitted(e2)
	q.Run(e2)
	if e2.State != StateFail {
		t.Errorf("double bndclr state = %v, want Fail", e2.State)
	}
}

func TestBWBHitShortensSearch(t *testing.T) {
	tb, err := hbt.NewTable(mem.New(), tblBase, 4)
	if err != nil {
		t.Fatal(err)
	}
	q := NewQueue(48, tb, nil, Options{UseBWB: true}, nil)
	pacv := uint16(0x0DDD)
	// Fill ways 0..2 with other chunks; target bounds land in way 3.
	filler := uint64(0x2000_0100_0000)
	for i := 0; i < 3*hbt.BoundsPerWay; i++ {
		if _, err := tb.Insert(pacv, filler+uint64(i)*4096, 64); err != nil {
			t.Fatal(err)
		}
	}
	base := uint64(0x2000_0000_4000)
	if _, err := tb.Insert(pacv, base, 256); err != nil {
		t.Fatal(err)
	}

	// First access: cold BWB -> search from way 0, 4 accesses.
	ptr := pa.Compose(base+8, pacv, pa.ComputeAHC(base, 256))
	e, _ := q.Enqueue(TypeLoad, ptr, 8)
	q.Run(e)
	q.MarkCommitted(e)
	if e.Accesses != 4 {
		t.Errorf("cold search accesses = %d, want 4", e.Accesses)
	}
	if _, ok := q.RetireHead(); !ok {
		t.Fatal("retire")
	}

	// Second access to the same chunk: BWB hit -> 1 access directly.
	e2, _ := q.Enqueue(TypeLoad, pa.Compose(base+100, pacv, pa.ComputeAHC(base, 256)), 8)
	q.Run(e2)
	q.MarkCommitted(e2)
	if e2.Accesses != 1 {
		t.Errorf("warm search accesses = %d, want 1 (BWB hit)", e2.Accesses)
	}
	if e2.Way != 3 {
		t.Errorf("warm search way = %d, want 3", e2.Way)
	}
	if _, ok := q.RetireHead(); !ok {
		t.Fatal("retire")
	}
	if got := q.BWB().Stats().Hits; got != 1 {
		t.Errorf("BWB hits = %d, want 1", got)
	}
}

func TestStaleBWBHintRestartsFromWayZero(t *testing.T) {
	tb, err := hbt.NewTable(mem.New(), tblBase, 2)
	if err != nil {
		t.Fatal(err)
	}
	q := NewQueue(48, tb, nil, Options{UseBWB: true}, nil)
	pacv := uint16(0x0EEE)
	base := uint64(0x2000_0000_8000)
	ahc := pa.ComputeAHC(base, 128)

	// Plant a stale hint pointing at way 1, while the bounds are in way 0.
	q.BWB().Update(BWBTag(base, ahc, pacv), 1)
	if _, err := tb.Insert(pacv, base, 128); err != nil {
		t.Fatal(err)
	}
	e, _ := q.Enqueue(TypeLoad, pa.Compose(base+4, pacv, ahc), 8)
	q.Run(e)
	if e.State != StateDone {
		t.Fatalf("state = %v", e.State)
	}
	// way 1 (stale) then way 0: two accesses.
	if e.Accesses != 2 || e.Way != 0 {
		t.Errorf("accesses=%d way=%d, want 2 accesses ending at way 0", e.Accesses, e.Way)
	}
}

func TestBoundsForwarding(t *testing.T) {
	q, _ := newQueue(t, 1, Options{Forwarding: true})
	base := uint64(0x2000_0000_9000)
	ptr := signedPtr(base, 0x0FFF)

	// In-flight bndstr (not yet committed/drained), then a dependent load.
	st, _ := q.Enqueue(TypeBndstr, ptr, 256)
	q.Run(st) // parks in BndStr awaiting commit

	ld, _ := q.Enqueue(TypeLoad, signedPtr(base+32, 0x0FFF), 8)
	q.Run(ld)
	if ld.State != StateDone || !ld.Forwarded {
		t.Fatalf("load state=%v forwarded=%v, want Done/true", ld.State, ld.Forwarded)
	}
	if ld.Accesses != 0 {
		t.Errorf("forwarded load performed %d memory accesses, want 0", ld.Accesses)
	}
}

func TestForwardingDisabled(t *testing.T) {
	q, _ := newQueue(t, 1, Options{Forwarding: false})
	base := uint64(0x2000_0000_9000)
	st, _ := q.Enqueue(TypeBndstr, signedPtr(base, 0x0FFF), 256)
	q.Run(st)
	ld, _ := q.Enqueue(TypeLoad, signedPtr(base+32, 0x0FFF), 8)
	q.Run(ld)
	// Without forwarding and with the store not drained, the load fails to
	// find bounds (this is exactly why the store-load replay exists).
	if ld.Forwarded {
		t.Error("forwarding happened despite being disabled")
	}
}

func TestStoreLoadReplay(t *testing.T) {
	q, _ := newQueue(t, 1, Options{})
	base := uint64(0x2000_0000_A000)
	ptr := signedPtr(base, 0x0AB0)

	st, _ := q.Enqueue(TypeBndstr, ptr, 256)
	q.Run(st) // waiting for commit; bounds not yet visible

	ld, _ := q.Enqueue(TypeLoad, signedPtr(base+8, 0x0AB0), 8)
	q.Run(ld)
	if ld.State != StateFail {
		t.Fatalf("pre-drain load state = %v, want Fail (bounds not visible)", ld.State)
	}

	// Draining the store must replay the newer same-PAC entry...
	q.MarkCommitted(st)
	q.Run(st)
	if ld.State == StateFail {
		t.Fatal("store drain did not replay the newer failed entry")
	}
	if ld.Replays != 1 {
		t.Errorf("replays = %d, want 1", ld.Replays)
	}
	// ...and the replayed search now succeeds.
	q.Run(ld)
	if ld.State != StateDone {
		t.Errorf("replayed load state = %v, want Done", ld.State)
	}
}

func TestReplayDoesNotTouchDoneEntries(t *testing.T) {
	q, tb := newQueue(t, 1, Options{})
	base := uint64(0x2000_0000_B000)
	if _, err := tb.Insert(0x0AB1, base, 4096); err != nil {
		t.Fatal(err)
	}
	// A load completes against existing bounds.
	ld, _ := q.Enqueue(TypeLoad, signedPtr(base+16, 0x0AB1), 8)
	q.Run(ld)
	if ld.State != StateDone {
		t.Fatal("setup: load should be Done")
	}
	// Hmm: replay only targets newer entries; enqueue order makes the
	// store older here, so re-enqueue in the right order.
	q2, tb2 := newQueue(t, 1, Options{})
	if _, err := tb2.Insert(0x0AB2, base, 4096); err != nil {
		t.Fatal(err)
	}
	st, _ := q2.Enqueue(TypeBndstr, signedPtr(base+0x10000, 0x0AB2), 64)
	q2.Run(st)
	ld2, _ := q2.Enqueue(TypeLoad, signedPtr(base+16, 0x0AB2), 8)
	q2.Run(ld2)
	if ld2.State != StateDone {
		t.Fatal("load should complete against pre-existing bounds")
	}
	accesses := ld2.Accesses
	q2.MarkCommitted(st)
	q2.Run(st)
	if ld2.State != StateDone || ld2.Accesses != accesses || ld2.Replays != 0 {
		t.Error("drain replayed a Done entry; §V-E says Done entries are exempt")
	}
}

func TestQueueCapacityBackPressure(t *testing.T) {
	q, _ := newQueue(t, 1, Options{})
	for i := 0; i < 48; i++ {
		if _, ok := q.Enqueue(TypeLoad, 0x1000+uint64(i)*8, 8); !ok {
			t.Fatalf("enqueue %d failed below capacity", i)
		}
	}
	if !q.Full() {
		t.Error("queue not full at capacity")
	}
	if _, ok := q.Enqueue(TypeLoad, 0x9000, 8); ok {
		t.Error("enqueue succeeded on a full queue")
	}
	// Drain in FIFO order.
	drained := 0
	for q.Len() > 0 {
		e := q.at(0)
		q.Run(e)
		q.MarkCommitted(e)
		if _, ok := q.RetireHead(); !ok {
			t.Fatal("head retire failed")
		}
		drained++
	}
	if drained != 48 {
		t.Errorf("drained %d, want 48", drained)
	}
}

func TestRetireUpdatesStats(t *testing.T) {
	q, tb := newQueue(t, 1, Options{})
	base := uint64(0x2000_0000_C000)
	if _, err := tb.Insert(0x0AB3, base, 128); err != nil {
		t.Fatal(err)
	}
	e, _ := q.Enqueue(TypeLoad, signedPtr(base+8, 0x0AB3), 8)
	q.Run(e)
	q.MarkCommitted(e)
	if _, ok := q.RetireHead(); !ok {
		t.Fatal("retire")
	}
	s := q.Stats()
	if s.Checks != 1 || s.CheckAccesses != 1 {
		t.Errorf("stats = %+v", s)
	}
	if s.AccessesPerCheck() != 1 {
		t.Errorf("AccessesPerCheck = %v", s.AccessesPerCheck())
	}
}

func TestAccessFnSeesBoundsTraffic(t *testing.T) {
	tb, err := hbt.NewTable(mem.New(), tblBase, 1)
	if err != nil {
		t.Fatal(err)
	}
	var reads, writes int
	q := NewQueue(48, tb, nil, Options{}, func(addr uint64, write bool) {
		if addr%64 != 0 {
			t.Errorf("bounds access %#x not line-aligned", addr)
		}
		if write {
			writes++
		} else {
			reads++
		}
	})
	e, _ := q.Enqueue(TypeBndstr, signedPtr(0x2000_0000_D000, 0x0AB4), 64)
	q.Run(e)
	q.MarkCommitted(e)
	q.Run(e)
	if reads != 1 || writes != 1 {
		t.Errorf("reads=%d writes=%d, want 1/1", reads, writes)
	}
}
