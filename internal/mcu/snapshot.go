package mcu

// BWBState is a deep copy of the bounds-way buffer. The BWB is a fixed-size
// value struct (entry array + LRU tick + stats), so a struct copy is a full
// deep copy.
type BWBState struct {
	bwb BWB
}

// Snapshot copies the buffer.
func (b *BWB) Snapshot() *BWBState { return &BWBState{bwb: *b} }

// Restore rewinds the buffer to a snapshot. The snapshot stays valid for
// further restores.
func (b *BWB) Restore(s *BWBState) { *b = s.bwb }
