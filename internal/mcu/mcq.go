package mcu

import (
	"fmt"

	"aos/internal/hbt"
	"aos/internal/pa"
)

// State is an MCQ finite-state-machine state (Fig 8).
type State uint8

// The FSM states. Load/store entries move Init→BndChk→{Done,IncCnt,Fail};
// bndstr/bndclr entries move Init→OccChk→{BndStr,IncCnt,Fail}→Done.
const (
	StateInit State = iota
	StateOccChk
	StateBndChk
	StateBndStr
	StateIncCnt
	StateFail
	StateDone
)

var stateNames = [...]string{"Init", "OccChk", "BndChk", "BndStr", "IncCnt", "Fail", "Done"}

// String names the state.
func (s State) String() string {
	if int(s) < len(stateNames) {
		return stateNames[s]
	}
	return fmt.Sprintf("State(%d)", uint8(s))
}

// EntryType distinguishes the two FSM flavours.
type EntryType uint8

// MCQ entry types.
const (
	TypeLoad EntryType = iota
	TypeStore
	TypeBndstr
	TypeBndclr
)

// Entry is one MCQ slot, with the fields of §V-A1: Valid, Type, Addr,
// BndData, BndAddr, Way, Count, Committed, State.
type Entry struct {
	Valid     bool
	Type      EntryType
	Addr      uint64 // full pointer (PAC/AHC in upper bits) for checks; base VA semantics for bounds ops
	BndData   uint64 // compressed bounds payload for bndstr
	BndAddr   uint64 // address of the HBT way currently being examined
	Way       int    // way to access next
	Count     int    // ways accessed so far in this search
	Committed bool   // retired from the ROB
	State     State

	// Derived/bookkeeping fields.
	Signed    bool
	PAC       uint16
	AHC       uint8
	Accesses  int  // bounds-line loads performed (Fig 17 numerator)
	Forwarded bool // satisfied by store-to-load bounds forwarding
	Replays   int  // times reset by store-load replay
	slot      int  // slot chosen by OccChk for the pending store
	fromBWB   bool // search started from a BWB hint
	seq       uint64
}

// AccessFn observes every bounds cache-line access the MCU performs
// (address, write). The timing layer points this at the cache hierarchy.
type AccessFn func(addr uint64, write bool)

// Options configures optional MCU features (the paper's §V-F optimizations).
type Options struct {
	// Forwarding enables store-to-load bounds forwarding.
	Forwarding bool
	// UseBWB enables the bounds way buffer.
	UseBWB bool
}

// Stats aggregates MCU behaviour across retired entries.
type Stats struct {
	Checks        uint64 // load/store bounds checks completed
	CheckAccesses uint64 // way loads performed for those checks
	Forwards      uint64
	Replays       uint64
	StoreOps      uint64 // bndstr/bndclr completed
	StoreAccesses uint64
	Failures      uint64
}

// AccessesPerCheck is Fig 17's metric: average bounds-table accesses per
// checked instruction.
func (s Stats) AccessesPerCheck() float64 {
	if s.Checks == 0 {
		return 0
	}
	return float64(s.CheckAccesses) / float64(s.Checks)
}

// Queue is the memory check queue: a FIFO of in-flight bounds operations
// driven one FSM transition per Step.
type Queue struct {
	entries []Entry // ring buffer
	head    int
	count   int
	size    int
	seq     uint64

	table  *hbt.Table
	bwb    *BWB
	opts   Options
	access AccessFn
	stats  Stats
}

// NewQueue builds an MCQ of the given capacity operating against table.
// bwb may be nil when Options.UseBWB is false. access may be nil.
func NewQueue(size int, table *hbt.Table, bwb *BWB, opts Options, access AccessFn) *Queue {
	if opts.UseBWB && bwb == nil {
		bwb = NewBWB()
	}
	return &Queue{
		entries: make([]Entry, size),
		size:    size,
		table:   table,
		bwb:     bwb,
		opts:    opts,
		access:  access,
	}
}

// SetTable swaps the backing table (after an OS resize) and invalidates the
// BWB, whose remembered ways referred to the old geometry.
func (q *Queue) SetTable(t *hbt.Table) {
	q.table = t
	if q.bwb != nil {
		q.bwb.Invalidate()
	}
}

// Table returns the current backing table.
func (q *Queue) Table() *hbt.Table { return q.table }

// BWB returns the way buffer (may be nil).
func (q *Queue) BWB() *BWB { return q.bwb }

// Stats returns a copy of the counters.
func (q *Queue) Stats() Stats { return q.stats }

// Full reports whether the queue has no free slot (issue back-pressure).
func (q *Queue) Full() bool { return q.count == q.size }

// Len returns the number of in-flight entries.
func (q *Queue) Len() int { return q.count }

func (q *Queue) at(i int) *Entry { return &q.entries[(q.head+i)%q.size] }

// Enqueue allocates an entry for a memory or bounds instruction. ok=false
// means the MCQ is full and issue must stall.
func (q *Queue) Enqueue(typ EntryType, addr uint64, size uint64) (*Entry, bool) {
	if q.Full() {
		return nil, false
	}
	e := q.at(q.count)
	q.count++
	q.seq++
	*e = Entry{
		Valid:  true,
		Type:   typ,
		Addr:   addr,
		Signed: pa.IsSigned(addr),
		PAC:    pa.PAC(addr),
		AHC:    pa.AHC(addr),
		State:  StateInit,
		seq:    q.seq,
	}
	if typ == TypeBndstr {
		w, err := hbt.Compress(pa.VA(addr), size)
		if err == nil {
			e.BndData = w
		}
	}
	return e, true
}

// MarkCommitted flags that the instruction owning e has retired from the
// ROB, allowing a pending bounds store to drain (store-store ordering).
func (q *Queue) MarkCommitted(e *Entry) { e.Committed = true }

func (q *Queue) loadWay(e *Entry) {
	e.BndAddr = q.table.WayAddr(e.PAC, e.Way)
	if q.access != nil {
		q.access(e.BndAddr, false)
	}
	e.Accesses++
}

// tryForward implements bounds forwarding (§V-F2): an older in-flight
// bndstr with the same PAC whose bounds cover the address satisfies the
// check without a memory access.
func (q *Queue) tryForward(e *Entry) bool {
	if !q.opts.Forwarding {
		return false
	}
	for i := 0; i < q.count; i++ {
		o := q.at(i)
		if o == e {
			break // only older entries
		}
		if o.Valid && o.Type == TypeBndstr && o.PAC == e.PAC && o.State != StateFail &&
			hbt.Covers(o.BndData, e.Addr) {
			return true
		}
	}
	return false
}

// replayNewer implements store-load replay (§V-E): when a bounds store
// drains, every newer entry with the same PAC restarts its search with
// Count reset, unless it already completed (Done).
func (q *Queue) replayNewer(e *Entry) {
	for i := 0; i < q.count; i++ {
		o := q.at(i)
		if o.seq <= e.seq || !o.Valid || o.PAC != e.PAC {
			continue
		}
		if o.State == StateDone || o.State == StateInit {
			continue
		}
		o.State = StateInit
		o.Count = 0
		o.Way = 0
		o.Replays++
	}
}

// Step advances one entry a single FSM transition. It returns false when
// the entry is already terminal (Done/Fail).
func (q *Queue) Step(e *Entry) bool {
	switch e.State {
	case StateInit:
		switch e.Type {
		case TypeLoad, TypeStore:
			if !e.Signed {
				e.State = StateDone
				return true
			}
			e.Way = 0
			if q.opts.UseBWB && q.bwb != nil {
				if w, ok := q.bwb.Lookup(BWBTag(pa.VA(e.Addr), e.AHC, e.PAC)); ok && w < q.table.Assoc() {
					e.Way = w
					e.fromBWB = true
				}
			}
			e.BndAddr = q.table.WayAddr(e.PAC, e.Way)
			e.State = StateBndChk
		default:
			// bndstr always starts its occupancy search at way 0.
			e.Way = 0
			e.BndAddr = q.table.WayAddr(e.PAC, 0)
			e.State = StateOccChk
		}
	case StateOccChk:
		q.loadWay(e)
		var ok bool
		if e.Type == TypeBndstr {
			e.slot, ok = q.table.FindEmptySlot(e.PAC, e.Way)
		} else {
			e.slot, ok = q.table.FindBase(e.PAC, e.Way, pa.VA(e.Addr))
		}
		if ok {
			e.State = StateBndStr
		} else {
			e.State = StateIncCnt
		}
	case StateBndChk:
		if q.tryForward(e) {
			e.Forwarded = true
			e.State = StateDone
			return true
		}
		q.loadWay(e)
		if q.table.FindCovering(e.PAC, e.Way, pa.VA(e.Addr)) {
			e.State = StateDone
		} else if e.fromBWB {
			// Stale BWB hint: restart the full search from way 0.
			e.fromBWB = false
			e.Way = 0
			e.Count = 0
			e.BndAddr = q.table.WayAddr(e.PAC, 0)
		} else {
			e.State = StateIncCnt
		}
	case StateBndStr:
		if !e.Committed {
			return true // waiting for ROB retirement
		}
		v := uint64(0)
		if e.Type == TypeBndstr {
			v = e.BndData
		}
		q.table.WriteSlot(e.PAC, e.Way, e.slot, v)
		if q.access != nil {
			q.access(e.BndAddr, true)
		}
		q.replayNewer(e)
		e.State = StateDone
	case StateIncCnt:
		e.Count++
		if e.Count >= q.table.Assoc() {
			e.State = StateFail
			return true
		}
		e.Way = (e.Way + 1) % q.table.Assoc()
		e.BndAddr = q.table.WayAddr(e.PAC, e.Way)
		if e.Type == TypeBndstr || e.Type == TypeBndclr {
			e.State = StateOccChk
		} else {
			e.State = StateBndChk
		}
	case StateFail, StateDone:
		return false
	}
	return e.State != StateDone && e.State != StateFail
}

// Run drives an entry to a terminal state (bounded by the FSM structure).
func (q *Queue) Run(e *Entry) State {
	for i := 0; i < 4*q.table.Assoc()+8; i++ {
		if e.State == StateDone || e.State == StateFail {
			break
		}
		q.Step(e)
		if e.State == StateBndStr && !e.Committed {
			break // cannot progress until commit
		}
	}
	return e.State
}

// RetireHead pops the head entry if it is terminal and committed, updating
// the BWB and statistics. ok=false means the head is still in flight.
func (q *Queue) RetireHead() (Entry, bool) {
	if q.count == 0 {
		return Entry{}, false
	}
	e := q.at(0)
	if !e.Committed || (e.State != StateDone && e.State != StateFail) {
		return Entry{}, false
	}
	// Update BWB with the last used way (§V-C: "when an instruction
	// retires from the MCQ, the BWB is updated").
	if q.bwb != nil && e.Signed && e.State == StateDone && !e.Forwarded &&
		(e.Type == TypeLoad || e.Type == TypeStore) {
		q.bwb.Update(BWBTag(pa.VA(e.Addr), e.AHC, e.PAC), e.Way)
	}
	switch e.Type {
	case TypeLoad, TypeStore:
		if e.Signed {
			q.stats.Checks++
			q.stats.CheckAccesses += uint64(e.Accesses)
			if e.Forwarded {
				q.stats.Forwards++
			}
		}
	default:
		q.stats.StoreOps++
		q.stats.StoreAccesses += uint64(e.Accesses)
	}
	q.stats.Replays += uint64(e.Replays)
	if e.State == StateFail {
		q.stats.Failures++
	}
	out := *e
	e.Valid = false
	q.head = (q.head + 1) % q.size
	q.count--
	return out, true
}
