package mcu

import (
	"reflect"
	"testing"
)

// TestBWBSnapshotRestoreDeterminism: a restored buffer must behave exactly
// like the original from the snapshot point on.
func TestBWBSnapshotRestoreDeterminism(t *testing.T) {
	a := NewBWB()
	for i := 0; i < 5000; i++ {
		a.Update(uint32(i*2654435761), i%16)
	}
	s := a.Snapshot()

	type probe struct {
		way int
		ok  bool
	}
	replay := func(b *BWB) []probe {
		var out []probe
		for i := 0; i < 3000; i++ {
			w, ok := b.Lookup(uint32(i * 2654435761))
			out = append(out, probe{w, ok})
			if i%3 == 0 {
				b.Update(uint32(i*40503), i%16)
			}
		}
		return out
	}
	want := replay(a)

	b := NewBWB()
	b.Restore(s)
	got := replay(b)
	if !reflect.DeepEqual(got, want) {
		t.Fatal("restored BWB diverged from straight-line execution")
	}
	if a.stats != b.stats {
		t.Fatalf("stats diverged: %+v vs %+v", a.stats, b.stats)
	}
	c, d := NewBWB(), NewBWB()
	c.Restore(s)
	d.Restore(s)
	if !reflect.DeepEqual(c, d) {
		t.Fatal("snapshot mutated by a restored buffer's continuation")
	}
}

// TestBWBSnapshotComplete: the struct-copy snapshot is only a deep copy
// while every field stays a value type (no pointers, maps, or slices).
func TestBWBSnapshotComplete(t *testing.T) {
	var check func(typ reflect.Type, path string)
	check = func(typ reflect.Type, path string) {
		switch typ.Kind() {
		case reflect.Pointer, reflect.Map, reflect.Slice, reflect.Chan, reflect.Func, reflect.Interface:
			t.Errorf("mcu.BWB field %s is a reference type (%s); the struct-copy Snapshot no longer deep-copies — rewrite snapshot.go", path, typ.Kind())
		case reflect.Struct:
			for i := 0; i < typ.NumField(); i++ {
				check(typ.Field(i).Type, path+"."+typ.Field(i).Name)
			}
		case reflect.Array:
			check(typ.Elem(), path+"[]")
		}
	}
	check(reflect.TypeOf(BWB{}), "BWB")
}
