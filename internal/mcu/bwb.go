// Package mcu implements AOS's memory check unit (§V-A): the memory check
// queue (MCQ) with its two finite state machines (Fig 8), the bounds way
// buffer (BWB, §V-C) with the tag construction of Algorithm 2, the
// store-load replay mechanism (§V-E), and bounds forwarding (§V-F2).
package mcu

import "aos/internal/pa"

// BWBTag implements Algorithm 2: the 32-bit tag is the PAC concatenated
// with 14 pointer-address bits chosen by the AHC (so that every address
// inside one memory chunk yields the same tag) and the 2-bit AHC.
func BWBTag(addr uint64, ahc uint8, pac uint16) uint32 {
	var bits uint64
	switch ahc {
	case pa.AHCSmall:
		bits = (addr >> 7) & 0x3FFF // Addr[20:7]
	case pa.AHCMedium:
		bits = (addr >> 10) & 0x3FFF // Addr[23:10]
	default:
		bits = (addr >> 12) & 0x3FFF // Addr[25:12]
	}
	return uint32(pac)<<16 | uint32(bits)<<2 | uint32(ahc&3)
}

// BWBEntries is the buffer capacity (Table IV).
const BWBEntries = 64

type bwbEntry struct {
	tag   uint32
	way   uint8
	valid bool
	used  uint64 // LRU stamp
}

// BWBStats counts buffer outcomes (Fig 17 reports the hit rate).
type BWBStats struct {
	Hits   uint64
	Misses uint64
}

// Delta returns the counter advance since a previous snapshot
// (window arithmetic for cycle-sampled telemetry).
func (s BWBStats) Delta(prev BWBStats) BWBStats {
	return BWBStats{Hits: s.Hits - prev.Hits, Misses: s.Misses - prev.Misses}
}

// Lookups returns the total number of buffer probes.
func (s BWBStats) Lookups() uint64 { return s.Hits + s.Misses }

// HitRate returns hits/(hits+misses).
func (s BWBStats) HitRate() float64 {
	t := s.Hits + s.Misses
	if t == 0 {
		return 0
	}
	return float64(s.Hits) / float64(t)
}

// BWB is the bounds way buffer: a small fully-associative LRU cache from
// tag to the HBT way where that chunk's bounds were last found, so bounds
// checking can skip the way-0-first search.
type BWB struct {
	entries [BWBEntries]bwbEntry
	tick    uint64
	stats   BWBStats
}

// NewBWB returns an empty buffer.
func NewBWB() *BWB { return &BWB{} }

// Stats returns a copy of the counters.
func (b *BWB) Stats() BWBStats { return b.stats }

// ResetStats clears the counters, keeping the buffer contents.
func (b *BWB) ResetStats() { b.stats = BWBStats{} }

// Lookup returns the remembered way for tag. Misses are counted; the
// caller then starts its search from way 0.
func (b *BWB) Lookup(tag uint32) (way int, ok bool) {
	b.tick++
	for i := range b.entries {
		e := &b.entries[i]
		if e.valid && e.tag == tag {
			e.used = b.tick
			b.stats.Hits++
			return int(e.way), true
		}
	}
	b.stats.Misses++
	return 0, false
}

// Update records the way where a bounds operation last found (or stored)
// valid bounds. Called when an instruction retires from the MCQ.
func (b *BWB) Update(tag uint32, way int) {
	b.tick++
	vi := 0
	for i := range b.entries {
		e := &b.entries[i]
		if e.valid && e.tag == tag {
			e.way = uint8(way)
			e.used = b.tick
			return
		}
		if !e.valid {
			vi = i
		} else if b.entries[vi].valid && e.used < b.entries[vi].used {
			vi = i
		}
	}
	b.entries[vi] = bwbEntry{tag: tag, way: uint8(way), valid: true, used: b.tick}
}

// Invalidate drops every entry (used after an HBT resize, when remembered
// ways may no longer be meaningful).
func (b *BWB) Invalidate() {
	for i := range b.entries {
		b.entries[i].valid = false
	}
}
