package heap

import "fmt"

// Hardening configures the software hardened-allocator mode backing the
// HardenedAlloc protection scheme: no hardware mechanism, only
// allocator-side state and extra (real, traced) memory work. Each feature
// is independently switchable so the differential tests and the overhead
// matrix can price them separately:
//
//   - QuarantineDepth > 0 parks freed chunks in a FIFO before the real
//     release, keeping their memory unavailable for reuse and turning
//     double frees of quarantined pointers into hard errors.
//   - Canary places an 8-byte secret after each payload and verifies it
//     at free time (linear-overflow detection, at free only).
//   - PoisonOnFree fills the freed payload with a poison pattern.
//   - ZeroOnFree zeroes the freed payload instead (takes precedence
//     over PoisonOnFree).
//
// Quarantine and canary modes also validate ownership: freeing a pointer
// the allocator never returned is rejected instead of entering a bin
// (what defeats House-of-Spirit-style crafted frees).
type Hardening struct {
	// QuarantineDepth is the number of freed chunks held back from
	// reuse; 0 disables the quarantine.
	QuarantineDepth int
	// Canary enables the after-payload canary word.
	Canary bool
	// PoisonOnFree fills freed payloads with poisonWord.
	PoisonOnFree bool
	// ZeroOnFree zeroes freed payloads (wins over PoisonOnFree).
	ZeroOnFree bool
}

// Enabled reports whether any hardening feature is active.
func (h Hardening) Enabled() bool {
	return h.QuarantineDepth > 0 || h.Canary || h.PoisonOnFree || h.ZeroOnFree
}

// DefaultHardening is the configuration the HardenedAlloc scheme runs
// with in the experiment matrices: a 32-deep quarantine, canaries and
// poison-on-free (the typical hardened-allocator production shape).
func DefaultHardening() Hardening {
	return Hardening{QuarantineDepth: 32, Canary: true, PoisonOnFree: true}
}

// CanaryBytes is the per-allocation canary footprint.
const CanaryBytes = 8

const (
	// canarySecret seeds the per-pointer canary value; the mix keeps
	// adjacent allocations' canaries distinct so a spray that happens to
	// replicate one canary does not validate at another address.
	canarySecret = 0x5EC2E7C4A9A2B0D1
	canaryMix    = 0x9E3779B97F4A7C15
	// poisonWord is the fill pattern for PoisonOnFree.
	poisonWord = 0xDEDEDEDEDEDEDEDE
)

// ErrCanaryClobbered reports a free whose after-payload canary was
// overwritten (a linear overflow happened while the chunk was live).
var ErrCanaryClobbered = fmt.Errorf("heap: canary clobbered (buffer overflow detected at free)")

func canaryWord(ptr uint64) uint64 { return canarySecret ^ (ptr * canaryMix) }

// SetHardening installs a hardening configuration. Call it before the
// first allocation; switching features mid-stream would orphan canaries
// and quarantined chunks.
func (a *Allocator) SetHardening(h Hardening) { a.hard = h }

// HardeningConfig returns the active hardening configuration.
func (a *Allocator) HardeningConfig() Hardening { return a.hard }

// Quarantined returns the number of chunks currently parked in the
// quarantine FIFO.
func (a *Allocator) Quarantined() int { return len(a.quarantine) }

// canarySlack is the extra payload reserved for the canary word.
func (a *Allocator) canarySlack() uint64 {
	if a.hard.Canary {
		return CanaryBytes
	}
	return 0
}

// writeCanary installs the canary after a live payload (counts as one
// recorded store: the canary write is real allocator work in the trace).
func (a *Allocator) writeCanary(ptr, size uint64) {
	a.record(ptr+size, true)
	a.mem.WriteU64(ptr+size, canaryWord(ptr))
}

// fillOnFree overwrites the freed payload with zero or poison. Whole
// words only — the 0..7 tail bytes stay, so the canary (at ptr+size) is
// never clobbered by the fill itself. One access is recorded per cache
// line, modeling a write-combined fill loop.
func (a *Allocator) fillOnFree(ptr, size uint64) {
	var word uint64
	switch {
	case a.hard.ZeroOnFree:
		word = 0
	case a.hard.PoisonOnFree:
		word = poisonWord
	default:
		return
	}
	for p := ptr; p+8 <= ptr+size; p += 8 {
		if (p-ptr)%64 == 0 {
			a.record(p, true)
		}
		a.mem.WriteU64(p, word)
	}
}

// hardenedFree is Free under an active Hardening config: validate, check
// the canary, poison/zero, then either quarantine the chunk (deferring
// the real release until the FIFO overflows) or release it immediately.
func (a *Allocator) hardenedFree(ptr uint64) error {
	if ptr%Align != 0 || ptr < HeaderSize {
		return ErrInvalidFree
	}
	for _, q := range a.quarantine {
		if q == ptr {
			return fmt.Errorf("%w (quarantine)", ErrDoubleFree)
		}
	}
	wasLive := a.IsLive(ptr)
	reqSize := a.sizes[ptr]
	// Ownership validation: with a quarantine or canaries, a pointer the
	// allocator never handed out is rejected outright — the crafted-free
	// hole glibc leaves open (House of Spirit) is closed, and so is a
	// double free that already cleared the quarantine.
	if !wasLive && (a.hard.Canary || a.hard.QuarantineDepth > 0) {
		return ErrInvalidFree
	}
	if wasLive && a.hard.Canary {
		a.record(ptr+reqSize, false)
		if a.mem.ReadU64(ptr+reqSize) != canaryWord(ptr) {
			return ErrCanaryClobbered
		}
	}
	if wasLive {
		a.fillOnFree(ptr, reqSize)
	}
	if a.hard.QuarantineDepth > 0 {
		a.noteFreed(ptr, wasLive, reqSize)
		a.quarantine = append(a.quarantine, ptr)
		if len(a.quarantine) > a.hard.QuarantineDepth {
			old := a.quarantine[0]
			a.quarantine = a.quarantine[1:]
			return a.freeChunk(old, true)
		}
		return nil
	}
	return a.freeChunk(ptr, false)
}
