// Package heap implements a glibc-style dynamic memory allocator over the
// simulated address space. AOS's evaluation depends on allocator behaviour
// in several load-bearing ways, so this is a real allocator, not a bump
// pointer:
//
//   - free() legitimately touches the metadata of neighbouring chunks while
//     coalescing — the reason AOS strips the PAC with xpacm around free()
//     (§IV-C).
//   - Fastbins keep freed small chunks in LIFO lists without coalescing,
//     which is what the House-of-Spirit attack in the paper's Fig 1 abuses.
//   - The tcache layer (glibc 2.26) is what exposed the double-free vector
//     discussed in §VII-D.
//   - malloc() returns 16-byte-aligned pointers and takes a 32-bit size,
//     the two facts the AOS bounds-compression format exploits (§V-D).
//
// Chunk layout follows glibc: a 16-byte header (prev_size, size|flags)
// precedes the payload; the low bit of size is PREV_INUSE. Free chunks keep
// fd/bk links inside the payload and replicate their size as a footer in
// the next chunk's prev_size.
package heap

import (
	"errors"
	"fmt"

	"aos/internal/mem"
)

// Chunk/alignment constants.
const (
	// HeaderSize is the per-chunk header (prev_size + size words).
	HeaderSize = 16
	// MinChunk is the smallest chunk (header + fd/bk links).
	MinChunk = 32
	// Align is the allocation alignment malloc guarantees.
	Align = 16

	prevInUse = 0x1
	sizeMask  = ^uint64(0xF)

	// MaxFastPayload: chunks up to this payload size go to fastbins.
	MaxFastPayload = 112
	// MaxTcachePayload: chunks up to this payload size go to tcache first.
	MaxTcachePayload = 1024
	// TcacheCap is the per-class tcache capacity (glibc default 7).
	TcacheCap = 7

	// brkIncrement is the granularity of heap-segment growth.
	brkIncrement = 1 << 16

	// tcacheKey is the canary glibc stores in free tcache entries to detect
	// double free ("e->key == tcache").
	tcacheKey = 0x7C0FFEE5AFE57CA5
)

// Allocation errors. ErrInvalidFree and ErrDoubleFree model glibc's abort
// diagnostics; ErrOutOfMemory models brk exhaustion.
var (
	ErrInvalidFree  = errors.New("heap: free(): invalid pointer")
	ErrInvalidSize  = errors.New("heap: free(): invalid size")
	ErrDoubleFree   = errors.New("heap: double free detected")
	ErrOutOfMemory  = errors.New("heap: out of memory")
	ErrSizeTooLarge = errors.New("heap: malloc(): requested size too large")
)

// Access is one allocator metadata access, recorded so the functional
// machine can emit it into the dynamic trace (allocator work shows up as
// real, unsigned memory instructions with real addresses).
type Access struct {
	Addr  uint64
	Store bool
}

// Stats aggregates the trace-malloc numbers reported in Tables II and III.
type Stats struct {
	Allocs   uint64 // total malloc/calloc/realloc-grow calls
	Frees    uint64 // total successful frees
	Live     uint64 // currently allocated chunks
	MaxLive  uint64 // maximum simultaneously allocated chunks
	BytesIn  uint64 // bytes currently allocated (payload)
	MaxBytes uint64 // peak payload bytes
}

// Hooks receive allocation events (the Valgrind --trace-malloc equivalent).
type Hooks struct {
	OnAlloc func(ptr, size uint64)
	OnFree  func(ptr uint64)
}

// Allocator is a single-arena glibc-style allocator.
type Allocator struct {
	mem   *mem.Memory
	base  uint64 // segment start
	brk   uint64 // current segment end (grown in brkIncrement steps)
	limit uint64 // hard segment end
	top   uint64 // top (wilderness) chunk address

	fastbins [8]uint64         // singly linked LIFO by chunk size class
	tcache   [64]tcacheBin     // singly linked LIFO, capped
	bins     [65]uint64        // doubly linked; [64] is the catch-all large bin
	sizes    map[uint64]uint64 // payload sizes of live allocations (by ptr)
	accesses []Access
	hooks    Hooks
	stats    Stats

	hard       Hardening // software hardening features (see hardened.go)
	quarantine []uint64  // FIFO of freed-but-not-released pointers
}

type tcacheBin struct {
	head  uint64
	count int
}

// New creates an allocator managing [base, base+limit) of m. base must be
// 16-byte aligned.
func New(m *mem.Memory, base, limit uint64) *Allocator {
	if base%Align != 0 {
		panic("heap: unaligned base")
	}
	a := &Allocator{
		mem:   m,
		base:  base,
		brk:   base,
		limit: base + limit,
		sizes: make(map[uint64]uint64),
	}
	// Materialize the initial top chunk.
	a.extendBrk(brkIncrement)
	a.top = base
	a.setHeader(a.top, (a.brk-base)|prevInUse)
	return a
}

// SetHooks installs allocation-event hooks.
func (a *Allocator) SetHooks(h Hooks) { a.hooks = h }

// Stats returns a copy of the allocator statistics.
func (a *Allocator) Stats() Stats { return a.stats }

// DrainAccesses returns and clears the recorded metadata accesses.
func (a *Allocator) DrainAccesses() []Access {
	out := a.accesses
	a.accesses = nil
	return out
}

// Base returns the heap segment base address.
func (a *Allocator) Base() uint64 { return a.base }

// Brk returns the current segment frontier.
func (a *Allocator) Brk() uint64 { return a.brk }

func (a *Allocator) record(addr uint64, store bool) {
	a.accesses = append(a.accesses, Access{Addr: addr, Store: store})
}

// --- chunk header helpers (each counts as a recorded access) ---

func (a *Allocator) sizeWord(chunk uint64) uint64 {
	a.record(chunk+8, false)
	return a.mem.ReadU64(chunk + 8)
}

func (a *Allocator) setHeader(chunk, sizeFlags uint64) {
	a.record(chunk+8, true)
	a.mem.WriteU64(chunk+8, sizeFlags)
}

func (a *Allocator) chunkSize(chunk uint64) uint64 { return a.sizeWord(chunk) & sizeMask }

func (a *Allocator) prevSize(chunk uint64) uint64 {
	a.record(chunk, false)
	return a.mem.ReadU64(chunk)
}

func (a *Allocator) setPrevSize(chunk, v uint64) {
	a.record(chunk, true)
	a.mem.WriteU64(chunk, v)
}

func (a *Allocator) fd(chunk uint64) uint64 {
	a.record(chunk+16, false)
	return a.mem.ReadU64(chunk + 16)
}

func (a *Allocator) setFd(chunk, v uint64) {
	a.record(chunk+16, true)
	a.mem.WriteU64(chunk+16, v)
}

func (a *Allocator) bk(chunk uint64) uint64 {
	a.record(chunk+24, false)
	return a.mem.ReadU64(chunk + 24)
}

func (a *Allocator) setBk(chunk, v uint64) {
	a.record(chunk+24, true)
	a.mem.WriteU64(chunk+24, v)
}

func (a *Allocator) setPrevInUse(chunk uint64, inUse bool) {
	w := a.sizeWord(chunk)
	if inUse {
		w |= prevInUse
	} else {
		w &^= prevInUse
	}
	a.setHeader(chunk, w)
}

func (a *Allocator) extendBrk(n uint64) bool {
	if a.brk+n > a.limit {
		return false
	}
	a.brk += n
	return true
}

// --- size classing ---

// chunkSizeFor converts a payload request to a chunk size.
func chunkSizeFor(payload uint64) uint64 {
	if payload < Align {
		payload = Align
	}
	cs := (payload+Align-1)&^uint64(Align-1) + HeaderSize
	if cs < MinChunk {
		cs = MinChunk
	}
	return cs
}

func fastbinIndex(csize uint64) int { return int((csize - MinChunk) / Align) } // 32..144 -> 0..7

func tcacheIndex(csize uint64) int { return int((csize - MinChunk) / Align) } // 32..1040 -> 0..63

func binIndex(csize uint64) int {
	i := int((csize - MinChunk) / Align)
	if i >= 64 {
		return 64
	}
	return i
}

// --- doubly linked bin lists (links live in simulated memory) ---

func (a *Allocator) binPush(chunk, csize uint64) {
	idx := binIndex(csize)
	head := a.bins[idx]
	a.setFd(chunk, head)
	a.setBk(chunk, 0)
	if head != 0 {
		a.setBk(head, chunk)
	}
	a.bins[idx] = chunk
}

func (a *Allocator) binRemove(chunk, csize uint64) {
	idx := binIndex(csize)
	f := a.fd(chunk)
	b := a.bk(chunk)
	if b == 0 {
		a.bins[idx] = f
	} else {
		a.setFd(b, f)
	}
	if f != 0 {
		a.setBk(f, b)
	}
}

// Malloc allocates size payload bytes and returns a 16-byte-aligned
// pointer. Sizes are limited to 32 bits, matching the observation the
// bounds-compression format relies on.
func (a *Allocator) Malloc(size uint64) (uint64, error) {
	if size > 0xFFFFFFFF {
		return 0, ErrSizeTooLarge
	}
	csize := chunkSizeFor(size + a.canarySlack())

	chunk, err := a.allocateChunk(csize)
	if err != nil {
		return 0, err
	}
	ptr := chunk + HeaderSize
	a.sizes[ptr] = size
	if a.hard.Canary {
		a.writeCanary(ptr, size)
	}
	a.stats.Allocs++
	a.stats.Live++
	if a.stats.Live > a.stats.MaxLive {
		a.stats.MaxLive = a.stats.Live
	}
	a.stats.BytesIn += size
	if a.stats.BytesIn > a.stats.MaxBytes {
		a.stats.MaxBytes = a.stats.BytesIn
	}
	if a.hooks.OnAlloc != nil {
		a.hooks.OnAlloc(ptr, size)
	}
	return ptr, nil
}

func (a *Allocator) allocateChunk(csize uint64) (uint64, error) {
	// 1. tcache exact fit.
	if csize <= MaxTcachePayload+HeaderSize {
		idx := tcacheIndex(csize)
		if b := &a.tcache[idx]; b.head != 0 {
			chunk := b.head
			b.head = a.fd(chunk)
			b.count--
			return chunk, nil
		}
	}
	// 2. fastbin exact fit.
	if csize <= MaxFastPayload+HeaderSize {
		idx := fastbinIndex(csize)
		if head := a.fastbins[idx]; head != 0 {
			a.fastbins[idx] = a.fd(head)
			return head, nil
		}
	}
	// 3. binned free lists: exact class first, then larger classes
	// (first fit with split).
	for idx := binIndex(csize); idx < len(a.bins); idx++ {
		for chunk := a.bins[idx]; chunk != 0; chunk = a.fd(chunk) {
			have := a.chunkSize(chunk)
			if have < csize {
				continue // only possible in the catch-all bin
			}
			a.binRemove(chunk, have)
			a.takeChunk(chunk, have, csize)
			return chunk, nil
		}
	}
	// 4. carve from the top chunk.
	topSize := a.chunkSize(a.top)
	for topSize < csize+MinChunk {
		if !a.extendBrk(brkIncrement) {
			return 0, ErrOutOfMemory
		}
		topSize += brkIncrement
		a.setHeader(a.top, topSize|(a.sizeWord(a.top)&prevInUse))
	}
	chunk := a.top
	flags := a.sizeWord(chunk) & prevInUse
	a.top = chunk + csize
	a.setHeader(chunk, csize|flags)
	a.setHeader(a.top, (topSize-csize)|prevInUse)
	return chunk, nil
}

// takeChunk marks chunk (currently free, size have) as allocated with csize,
// splitting the remainder back into the bins when it is large enough.
func (a *Allocator) takeChunk(chunk, have, csize uint64) {
	if have >= csize+MinChunk {
		rem := chunk + csize
		remSize := have - csize
		a.setHeader(chunk, csize|(a.sizeWord(chunk)&prevInUse))
		a.setHeader(rem, remSize|prevInUse)
		a.setPrevSize(rem+remSize, remSize) // footer
		a.binPush(rem, remSize)
		if next := rem + remSize; next != a.top {
			a.setPrevInUse(next, false)
		} else {
			a.setPrevInUse(a.top, false)
		}
		return
	}
	// Use whole chunk.
	a.setHeader(chunk, have|(a.sizeWord(chunk)&prevInUse))
	next := chunk + have
	a.setPrevInUse(next, true)
}

// UsableSize returns the payload capacity of a live allocation (0 when ptr
// is not a live allocation).
func (a *Allocator) UsableSize(ptr uint64) uint64 {
	if _, ok := a.sizes[ptr]; !ok {
		return 0
	}
	return a.chunkSizeNoTrace(ptr-HeaderSize) - HeaderSize
}

func (a *Allocator) chunkSizeNoTrace(chunk uint64) uint64 {
	return a.mem.ReadU64(chunk+8) & sizeMask
}

// RequestedSize returns the originally requested size for a live pointer.
func (a *Allocator) RequestedSize(ptr uint64) (uint64, bool) {
	s, ok := a.sizes[ptr]
	return s, ok
}

// IsLive reports whether ptr is a currently live allocation.
func (a *Allocator) IsLive(ptr uint64) bool {
	_, ok := a.sizes[ptr]
	return ok
}

// Free releases an allocation. It reproduces glibc's observable behaviour:
// cheap integrity checks that a crafted-but-plausible chunk passes (House
// of Spirit), tcache/fastbin double-free detection, and boundary-tag
// coalescing that reads the neighbouring chunks' metadata.
func (a *Allocator) Free(ptr uint64) error {
	if ptr == 0 {
		return nil // free(NULL) is a no-op
	}
	if a.hard.Enabled() {
		return a.hardenedFree(ptr)
	}
	return a.freeChunk(ptr, false)
}

// freeChunk is the glibc release path. quarantined marks a deferred
// release coming out of the hardening quarantine: bookkeeping already
// happened at hardenedFree time, and the pointer is legitimately absent
// from the live set.
func (a *Allocator) freeChunk(ptr uint64, quarantined bool) error {
	// glibc checks only alignment and size plausibility here — not that the
	// pointer lies inside the heap segment. That looseness is exactly what
	// House of Spirit exploits: a crafted chunk outside the heap passes
	// these tests and enters a bin.
	if ptr%Align != 0 || ptr < HeaderSize {
		return ErrInvalidFree
	}
	chunk := ptr - HeaderSize
	csize := a.chunkSize(chunk)
	if csize < MinChunk || csize%Align != 0 {
		return ErrInvalidSize
	}
	inHeap := ptr >= a.base+HeaderSize && chunk+csize <= a.brk

	wasLive := a.IsLive(ptr)
	reqSize := a.sizes[ptr]

	// tcache layer.
	if csize <= MaxTcachePayload+HeaderSize {
		idx := tcacheIndex(csize)
		b := &a.tcache[idx]
		// glibc's tcache double-free check: the key field of a freed entry.
		a.record(ptr+8, false)
		if a.mem.ReadU64(ptr+8) == tcacheKey {
			for e := b.head; e != 0; e = a.fd(e) {
				if e == chunk {
					return fmt.Errorf("%w (tcache)", ErrDoubleFree)
				}
			}
		}
		if b.count < TcacheCap {
			a.setFd(chunk, b.head)
			a.record(ptr+8, true)
			a.mem.WriteU64(ptr+8, tcacheKey)
			b.head = chunk
			b.count++
			if !quarantined {
				a.noteFreed(ptr, wasLive, reqSize)
			}
			return nil
		}
	}

	// Fastbin layer.
	if csize <= MaxFastPayload+HeaderSize {
		idx := fastbinIndex(csize)
		if a.fastbins[idx] == chunk {
			return fmt.Errorf("%w or corruption (fasttop)", ErrDoubleFree)
		}
		// glibc sanity check: the next chunk's size must look valid.
		nextSize := a.chunkSize(chunk + csize)
		if nextSize < HeaderSize || chunk+csize+nextSize > a.brk+brkIncrement {
			return ErrInvalidSize
		}
		a.setFd(chunk, a.fastbins[idx])
		a.fastbins[idx] = chunk
		if !quarantined {
			a.noteFreed(ptr, wasLive, reqSize)
		}
		return nil
	}

	// Normal path: coalesce with neighbours (the legitimate out-of-bounds
	// metadata walks that motivate xpacm around free()).
	if (!wasLive && !quarantined) || !inHeap {
		return ErrInvalidFree
	}
	a.coalesceAndBin(chunk, csize)
	if !quarantined {
		a.noteFreed(ptr, wasLive, reqSize)
	}
	return nil
}

func (a *Allocator) noteFreed(ptr uint64, wasLive bool, reqSize uint64) {
	if wasLive {
		delete(a.sizes, ptr)
		a.stats.Live--
		a.stats.BytesIn -= reqSize
	}
	a.stats.Frees++
	if a.hooks.OnFree != nil {
		a.hooks.OnFree(ptr)
	}
}

func (a *Allocator) coalesceAndBin(chunk, csize uint64) {
	// Backward coalesce.
	if a.sizeWord(chunk)&prevInUse == 0 {
		ps := a.prevSize(chunk)
		if ps >= MinChunk && ps <= chunk-a.base {
			prev := chunk - ps
			a.binRemove(prev, a.chunkSize(prev))
			chunk = prev
			csize += ps
		}
	}
	// Forward coalesce.
	next := chunk + csize
	if next == a.top {
		// Merge into top.
		flags := a.sizeWord(chunk) & prevInUse
		topSize := a.chunkSize(a.top)
		a.top = chunk
		a.setHeader(a.top, (csize+topSize)|flags)
		return
	}
	nextSize := a.chunkSize(next)
	nextNext := next + nextSize
	nextFree := nextNext == a.top && a.sizeWord(a.top)&prevInUse == 0 ||
		nextNext < a.brk && a.sizeWord(nextNext)&prevInUse == 0
	if nextFree && next != a.top {
		a.binRemove(next, nextSize)
		csize += nextSize
		next = chunk + csize
		if next == a.top {
			flags := a.sizeWord(chunk) & prevInUse
			topSize := a.chunkSize(a.top)
			a.top = chunk
			a.setHeader(a.top, (csize+topSize)|flags)
			return
		}
	}
	a.setHeader(chunk, csize|(a.sizeWord(chunk)&prevInUse))
	a.setPrevSize(chunk+csize, csize) // footer
	a.setPrevInUse(chunk+csize, false)
	a.binPush(chunk, csize)
}

// Memalign allocates size bytes aligned to the given power-of-two boundary
// (>= 16). It over-allocates and returns the first aligned payload address
// inside the chunk; the allocator remembers the adjusted pointer, so Free
// works on the returned value directly.
func (a *Allocator) Memalign(alignment, size uint64) (uint64, error) {
	if alignment == 0 || alignment&(alignment-1) != 0 {
		return 0, fmt.Errorf("heap: memalign: alignment %d not a power of two", alignment)
	}
	if alignment <= Align {
		return a.Malloc(size)
	}
	// Worst case we need alignment-Align extra bytes of slack, plus room
	// to keep the prefix a valid free chunk when we split it off.
	p, err := a.Malloc(size + alignment + MinChunk)
	if err != nil {
		return 0, err
	}
	aligned := (p + alignment - 1) &^ (alignment - 1)
	if aligned == p {
		return p, nil
	}
	if aligned-p < MinChunk {
		aligned += alignment
	}
	// Split the chunk: [chunk .. aligned-16) becomes a free chunk, the
	// remainder becomes the aligned allocation.
	chunk := p - HeaderSize
	csize := a.chunkSize(chunk)
	prefix := (aligned - HeaderSize) - chunk
	newChunk := chunk + prefix
	flags := a.sizeWord(chunk) & prevInUse
	a.setHeader(chunk, prefix|flags)
	a.setHeader(newChunk, (csize-prefix)|0) // PREV_INUSE=0: prefix is free
	a.setPrevSize(newChunk, prefix)
	a.binPush(chunk, prefix)

	reqSize := a.sizes[p]
	delete(a.sizes, p)
	a.sizes[aligned] = size
	_ = reqSize
	a.stats.BytesIn -= (size + alignment + MinChunk) - size
	if a.hard.Canary {
		a.writeCanary(aligned, size)
	}
	return aligned, nil
}

// Calloc allocates zeroed memory for n objects of size bytes each.
func (a *Allocator) Calloc(n, size uint64) (uint64, error) {
	if n != 0 && size > 0xFFFFFFFF/n {
		return 0, ErrSizeTooLarge
	}
	total := n * size
	ptr, err := a.Malloc(total)
	if err != nil {
		return 0, err
	}
	a.mem.Zero(ptr, total)
	return ptr, nil
}

// Realloc resizes an allocation, moving it if necessary.
func (a *Allocator) Realloc(ptr, size uint64) (uint64, error) {
	if ptr == 0 {
		return a.Malloc(size)
	}
	old, ok := a.sizes[ptr]
	if !ok {
		return 0, ErrInvalidFree
	}
	if size == 0 {
		if err := a.Free(ptr); err != nil {
			return 0, err
		}
		return 0, nil
	}
	if chunkSizeFor(size+a.canarySlack()) <= a.chunkSizeNoTrace(ptr-HeaderSize) {
		// Fits in place.
		a.stats.BytesIn += size - old
		a.sizes[ptr] = size
		if a.hard.Canary {
			a.writeCanary(ptr, size)
		}
		return ptr, nil
	}
	np, err := a.Malloc(size)
	if err != nil {
		return 0, err
	}
	cp := old
	if size < cp {
		cp = size
	}
	a.mem.Copy(np, ptr, cp)
	if err := a.Free(ptr); err != nil {
		return 0, err
	}
	return np, nil
}

// Validate walks the whole heap and checks structural invariants: aligned,
// non-overlapping chunks that exactly tile [base, brk), consistent
// PREV_INUSE/footer pairs, and free-list members that are real free chunks.
// It returns the first violation found, or nil.
func (a *Allocator) Validate() error {
	freeSet := make(map[uint64]bool)
	for i := range a.bins {
		for c := a.bins[i]; c != 0; c = a.mem.ReadU64(c + 16) {
			if freeSet[c] {
				return fmt.Errorf("heap: free-list cycle or duplicate at %#x", c)
			}
			freeSet[c] = true
		}
	}
	fastSet := make(map[uint64]bool)
	for i := range a.fastbins {
		for c := a.fastbins[i]; c != 0; c = a.mem.ReadU64(c + 16) {
			if fastSet[c] {
				return fmt.Errorf("heap: fastbin cycle at %#x", c)
			}
			fastSet[c] = true
		}
	}
	tcSet := make(map[uint64]bool)
	for i := range a.tcache {
		n := 0
		for c := a.tcache[i].head; c != 0; c = a.mem.ReadU64(c + 16) {
			if tcSet[c] {
				return fmt.Errorf("heap: tcache cycle at %#x", c)
			}
			tcSet[c] = true
			n++
			if n > TcacheCap {
				return fmt.Errorf("heap: tcache bin %d over capacity", i)
			}
		}
		if n != a.tcache[i].count {
			return fmt.Errorf("heap: tcache bin %d count mismatch: %d != %d", i, n, a.tcache[i].count)
		}
	}

	prevFree := false
	for c := a.base; c < a.brk; {
		cs := a.chunkSizeNoTrace(c)
		if cs < MinChunk || cs%Align != 0 {
			return fmt.Errorf("heap: bad chunk size %#x at %#x", cs, c)
		}
		if c+cs > a.brk {
			return fmt.Errorf("heap: chunk at %#x overruns brk", c)
		}
		w := a.mem.ReadU64(c + 8)
		if c != a.base && (w&prevInUse == 0) != prevFree {
			return fmt.Errorf("heap: PREV_INUSE mismatch at %#x", c)
		}
		if c == a.top {
			if c+cs != a.brk {
				return fmt.Errorf("heap: top chunk does not reach brk")
			}
			return nil
		}
		isBinFree := freeSet[c]
		if isBinFree {
			// Footer must replicate the size.
			if a.mem.ReadU64(c+cs) != cs {
				return fmt.Errorf("heap: bad footer for free chunk at %#x", c)
			}
		}
		prevFree = isBinFree // fastbin/tcache chunks keep PREV_INUSE set
		c += cs
	}
	return errors.New("heap: walk never reached top chunk")
}
