package heap

import (
	"math/rand"
	"testing"

	"aos/internal/mem"
)

// refAlloc is a trivially correct reference allocator: a bump pointer with
// an interval set. It answers the only questions that matter for
// correctness — does a returned block overlap any live block, and is
// alignment respected — so the real allocator can be compared against it
// on long random operation sequences.
type refAlloc struct {
	live map[uint64]uint64 // base -> size
}

func (r *refAlloc) checkDisjoint(t *testing.T, base, size uint64) {
	t.Helper()
	for b, s := range r.live {
		if base < b+s && b < base+size {
			t.Fatalf("allocation [%#x,%#x) overlaps live [%#x,%#x)", base, base+size, b, b+s)
		}
	}
}

// TestDifferentialRandomOps drives the allocator through 30k random
// operations, checking after each one: 16-byte alignment, no overlap with
// any live block, payload integrity of a canary-carrying subset, and
// internal structural invariants (Validate) periodically.
func TestDifferentialRandomOps(t *testing.T) {
	runDifferential(t, Hardening{}, 30_000)
}

// TestDifferentialHardened repeats the random-operation differential
// under every hardening feature alone and the combined production shape:
// the allocator must stay correct (alignment, disjointness, payload
// integrity, Validate) with quarantine deferral, canary slack, and free
// fills in play.
func TestDifferentialHardened(t *testing.T) {
	configs := []struct {
		name string
		h    Hardening
	}{
		{"quarantine", Hardening{QuarantineDepth: 8}},
		{"canary", Hardening{Canary: true}},
		{"poison", Hardening{PoisonOnFree: true}},
		{"zero", Hardening{ZeroOnFree: true}},
		{"default", DefaultHardening()},
		{"everything", Hardening{QuarantineDepth: 16, Canary: true, PoisonOnFree: true, ZeroOnFree: true}},
	}
	for _, cfg := range configs {
		cfg := cfg
		t.Run(cfg.name, func(t *testing.T) {
			runDifferential(t, cfg.h, 12_000)
		})
	}
}

func runDifferential(t *testing.T, hard Hardening, ops int) {
	m := mem.New()
	a := New(m, 0x2000_0000_0000, 1<<31)
	a.SetHardening(hard)
	ref := &refAlloc{live: map[uint64]uint64{}}
	rng := rand.New(rand.NewSource(123))

	type block struct {
		ptr, size uint64
		canary    uint64
	}
	var blocks []block

	for op := 0; op < ops; op++ {
		switch {
		case len(blocks) > 0 && rng.Intn(100) < 40:
			// Free a random block.
			i := rng.Intn(len(blocks))
			b := blocks[i]
			if b.size >= 8 {
				if got := m.ReadU64(b.ptr); got != b.canary {
					t.Fatalf("op %d: canary of %#x corrupted before free: %#x != %#x", op, b.ptr, got, b.canary)
				}
			}
			if err := a.Free(b.ptr); err != nil {
				t.Fatalf("op %d: Free(%#x): %v", op, b.ptr, err)
			}
			delete(ref.live, b.ptr)
			blocks[i] = blocks[len(blocks)-1]
			blocks = blocks[:len(blocks)-1]
		case len(blocks) > 0 && rng.Intn(100) < 15:
			// Realloc a random block.
			i := rng.Intn(len(blocks))
			b := blocks[i]
			newSize := uint64(1 + rng.Intn(4096))
			np, err := a.Realloc(b.ptr, newSize)
			if err != nil {
				t.Fatalf("op %d: Realloc: %v", op, err)
			}
			delete(ref.live, b.ptr)
			if np != 0 {
				usable := a.UsableSize(np)
				ref.checkDisjoint(t, np, usable)
				ref.live[np] = usable
				nb := block{ptr: np, size: newSize, canary: b.canary}
				if minU(newSize, b.size) >= 8 {
					if got := m.ReadU64(np); got != b.canary {
						t.Fatalf("op %d: Realloc lost contents: %#x != %#x", op, got, b.canary)
					}
				} else {
					nb.canary = rng.Uint64()
					if newSize >= 8 {
						m.WriteU64(np, nb.canary)
					}
				}
				blocks[i] = nb
			} else {
				blocks[i] = blocks[len(blocks)-1]
				blocks = blocks[:len(blocks)-1]
			}
		default:
			size := uint64(1 + rng.Intn(3000))
			p, err := a.Malloc(size)
			if err != nil {
				t.Fatalf("op %d: Malloc(%d): %v", op, size, err)
			}
			if p%Align != 0 {
				t.Fatalf("op %d: unaligned %#x", op, p)
			}
			usable := a.UsableSize(p)
			if usable < size {
				t.Fatalf("op %d: usable %d < requested %d", op, usable, size)
			}
			ref.checkDisjoint(t, p, usable)
			ref.live[p] = usable
			b := block{ptr: p, size: size, canary: rng.Uint64()}
			if size >= 8 {
				m.WriteU64(p, b.canary)
			}
			blocks = append(blocks, b)
		}
		if debugEveryOp {
			for _, b := range blocks {
				if b.size >= 8 {
					if got := m.ReadU64(b.ptr); got != b.canary {
						t.Fatalf("op %d: canary of %#x (size %d) corrupted: %#x", op, b.ptr, b.size, got)
					}
				}
			}
		}
		if op%2_000 == 1_999 {
			if err := a.Validate(); err != nil {
				t.Fatalf("op %d: %v", op, err)
			}
		}
	}
	// Final sweep: every canary intact, then free everything.
	for _, b := range blocks {
		if b.size >= 8 {
			if got := m.ReadU64(b.ptr); got != b.canary {
				t.Fatalf("final: canary of %#x corrupted: %#x != %#x", b.ptr, got, b.canary)
			}
		}
		if err := a.Free(b.ptr); err != nil {
			t.Fatalf("final free: %v", err)
		}
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if live := a.Stats().Live; live != 0 {
		t.Errorf("live = %d after freeing everything", live)
	}
}

// debugEveryOp enables per-operation canary sweeps while bisecting.
var debugEveryOp = false

func minU(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}
