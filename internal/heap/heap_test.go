package heap

import (
	"errors"
	"math/rand"
	"testing"

	"aos/internal/mem"
)

const testBase = 0x2000_0000_0000

func newTestAllocator(t testing.TB) (*Allocator, *mem.Memory) {
	t.Helper()
	m := mem.New()
	return New(m, testBase, 1<<30), m
}

func TestMallocAlignmentAndUniqueness(t *testing.T) {
	a, _ := newTestAllocator(t)
	seen := make(map[uint64]bool)
	for i := 0; i < 1000; i++ {
		size := uint64(1 + i%512)
		p, err := a.Malloc(size)
		if err != nil {
			t.Fatalf("Malloc(%d): %v", size, err)
		}
		if p%Align != 0 {
			t.Fatalf("Malloc(%d) returned unaligned %#x", size, p)
		}
		if seen[p] {
			t.Fatalf("Malloc returned duplicate live pointer %#x", p)
		}
		seen[p] = true
	}
}

func TestMallocUsableSize(t *testing.T) {
	a, _ := newTestAllocator(t)
	for _, size := range []uint64{1, 15, 16, 17, 64, 100, 4096, 1 << 20} {
		p, err := a.Malloc(size)
		if err != nil {
			t.Fatalf("Malloc(%d): %v", size, err)
		}
		if got := a.UsableSize(p); got < size {
			t.Errorf("UsableSize(%d-byte alloc) = %d, want >= %d", size, got, size)
		}
	}
}

func TestMallocZeroAndHuge(t *testing.T) {
	a, _ := newTestAllocator(t)
	p, err := a.Malloc(0)
	if err != nil || p == 0 {
		t.Errorf("Malloc(0) = %#x, %v; want a valid minimal allocation", p, err)
	}
	if _, err := a.Malloc(1 << 33); !errors.Is(err, ErrSizeTooLarge) {
		t.Errorf("Malloc(2^33) err = %v, want ErrSizeTooLarge", err)
	}
}

func TestFreeNullIsNoop(t *testing.T) {
	a, _ := newTestAllocator(t)
	if err := a.Free(0); err != nil {
		t.Errorf("Free(0) = %v, want nil", err)
	}
}

func TestAllocationsDoNotOverlap(t *testing.T) {
	a, _ := newTestAllocator(t)
	type span struct{ lo, hi uint64 }
	var spans []span
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		size := uint64(1 + rng.Intn(2000))
		p, err := a.Malloc(size)
		if err != nil {
			t.Fatal(err)
		}
		us := a.UsableSize(p)
		for _, s := range spans {
			if p < s.hi && s.lo < p+us {
				t.Fatalf("allocation [%#x,%#x) overlaps live [%#x,%#x)", p, p+us, s.lo, s.hi)
			}
		}
		spans = append(spans, span{p, p + us})
	}
}

func TestFreeAndReuse(t *testing.T) {
	a, _ := newTestAllocator(t)
	p, err := a.Malloc(64)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Free(p); err != nil {
		t.Fatalf("Free: %v", err)
	}
	q, err := a.Malloc(64)
	if err != nil {
		t.Fatal(err)
	}
	if q != p {
		t.Errorf("tcache LIFO reuse: got %#x, want %#x", q, p)
	}
}

func TestTcacheCapThenFastbin(t *testing.T) {
	a, _ := newTestAllocator(t)
	var ptrs []uint64
	for i := 0; i < TcacheCap+3; i++ {
		p, err := a.Malloc(64)
		if err != nil {
			t.Fatal(err)
		}
		ptrs = append(ptrs, p)
	}
	for _, p := range ptrs {
		if err := a.Free(p); err != nil {
			t.Fatalf("Free(%#x): %v", p, err)
		}
	}
	// All of them must be reusable.
	got := make(map[uint64]bool)
	for range ptrs {
		p, err := a.Malloc(64)
		if err != nil {
			t.Fatal(err)
		}
		got[p] = true
	}
	for _, p := range ptrs {
		if !got[p] {
			t.Errorf("freed pointer %#x was never reused", p)
		}
	}
}

func TestTcacheDoubleFreeDetected(t *testing.T) {
	a, _ := newTestAllocator(t)
	p, _ := a.Malloc(64)
	if err := a.Free(p); err != nil {
		t.Fatal(err)
	}
	if err := a.Free(p); !errors.Is(err, ErrDoubleFree) {
		t.Errorf("second Free = %v, want ErrDoubleFree", err)
	}
}

func TestFastbinDoubleFreeDetected(t *testing.T) {
	a, _ := newTestAllocator(t)
	// Fill the tcache class first so frees land in the fastbin.
	var fill []uint64
	for i := 0; i < TcacheCap; i++ {
		p, _ := a.Malloc(32)
		fill = append(fill, p)
	}
	p, _ := a.Malloc(32)
	for _, f := range fill {
		if err := a.Free(f); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Free(p); err != nil {
		t.Fatal(err)
	}
	if err := a.Free(p); !errors.Is(err, ErrDoubleFree) {
		t.Errorf("fastbin double free = %v, want ErrDoubleFree", err)
	}
}

func TestInvalidFrees(t *testing.T) {
	a, _ := newTestAllocator(t)
	p, _ := a.Malloc(64)
	if err := a.Free(p + 8); err == nil {
		t.Error("Free(misaligned) succeeded, want error")
	}
	if err := a.Free(p + 16); err == nil {
		t.Error("Free(interior aligned pointer with garbage header) succeeded, want error")
	}
}

func TestCoalescing(t *testing.T) {
	a, _ := newTestAllocator(t)
	// Three adjacent large chunks (too big for tcache/fastbin).
	p1, _ := a.Malloc(2048)
	p2, _ := a.Malloc(2048)
	p3, _ := a.Malloc(2048)
	_ = p3
	if err := a.Free(p1); err != nil {
		t.Fatal(err)
	}
	if err := a.Free(p2); err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(); err != nil {
		t.Fatalf("after coalescing frees: %v", err)
	}
	// A request for the combined size must fit in the coalesced block.
	p4, err := a.Malloc(4096)
	if err != nil {
		t.Fatal(err)
	}
	if p4 != p1 {
		t.Errorf("coalesced block not reused: got %#x, want %#x", p4, p1)
	}
}

func TestCallocZeroes(t *testing.T) {
	a, m := newTestAllocator(t)
	p, _ := a.Malloc(256)
	m.WriteU64(p, 0xDEADBEEF)
	if err := a.Free(p); err != nil {
		t.Fatal(err)
	}
	q, err := a.Calloc(32, 8)
	if err != nil {
		t.Fatal(err)
	}
	for off := uint64(0); off < 256; off += 8 {
		if v := m.ReadU64(q + off); v != 0 {
			t.Fatalf("Calloc memory not zeroed at +%d: %#x", off, v)
		}
	}
	if _, err := a.Calloc(1<<20, 1<<20); !errors.Is(err, ErrSizeTooLarge) {
		t.Errorf("Calloc overflow err = %v, want ErrSizeTooLarge", err)
	}
}

func TestRealloc(t *testing.T) {
	a, m := newTestAllocator(t)
	p, _ := a.Malloc(64)
	m.WriteU64(p, 0x1122334455667788)
	m.WriteU64(p+56, 0x99AABBCCDDEEFF00)

	q, err := a.Realloc(p, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if m.ReadU64(q) != 0x1122334455667788 || m.ReadU64(q+56) != 0x99AABBCCDDEEFF00 {
		t.Error("Realloc did not preserve contents")
	}
	// Shrink in place.
	r, err := a.Realloc(q, 16)
	if err != nil {
		t.Fatal(err)
	}
	if r != q {
		t.Errorf("shrink moved the block: %#x -> %#x", q, r)
	}
	// Realloc to zero frees.
	z, err := a.Realloc(r, 0)
	if err != nil || z != 0 {
		t.Errorf("Realloc(p,0) = %#x, %v; want 0, nil", z, err)
	}
	// Realloc of nil allocates.
	w, err := a.Realloc(0, 64)
	if err != nil || w == 0 {
		t.Errorf("Realloc(0,64) = %#x, %v", w, err)
	}
}

func TestStatsTracking(t *testing.T) {
	a, _ := newTestAllocator(t)
	var ptrs []uint64
	for i := 0; i < 10; i++ {
		p, _ := a.Malloc(100)
		ptrs = append(ptrs, p)
	}
	for _, p := range ptrs[:4] {
		if err := a.Free(p); err != nil {
			t.Fatal(err)
		}
	}
	s := a.Stats()
	if s.Allocs != 10 || s.Frees != 4 || s.Live != 6 || s.MaxLive != 10 {
		t.Errorf("stats = %+v, want allocs=10 frees=4 live=6 maxlive=10", s)
	}
}

func TestHooksFire(t *testing.T) {
	a, _ := newTestAllocator(t)
	var allocs, frees int
	a.SetHooks(Hooks{
		OnAlloc: func(ptr, size uint64) { allocs++ },
		OnFree:  func(ptr uint64) { frees++ },
	})
	p, _ := a.Malloc(64)
	if err := a.Free(p); err != nil {
		t.Fatal(err)
	}
	if allocs != 1 || frees != 1 {
		t.Errorf("hooks fired alloc=%d free=%d, want 1/1", allocs, frees)
	}
}

func TestMetadataAccessesRecorded(t *testing.T) {
	a, _ := newTestAllocator(t)
	a.DrainAccesses()
	p, _ := a.Malloc(64)
	if len(a.DrainAccesses()) == 0 {
		t.Error("Malloc recorded no metadata accesses")
	}
	if err := a.Free(p); err != nil {
		t.Fatal(err)
	}
	if len(a.DrainAccesses()) == 0 {
		t.Error("Free recorded no metadata accesses")
	}
}

func TestOutOfMemory(t *testing.T) {
	m := mem.New()
	a := New(m, testBase, 1<<17)
	var err error
	for i := 0; i < 100 && err == nil; i++ {
		_, err = a.Malloc(4096)
	}
	if !errors.Is(err, ErrOutOfMemory) {
		t.Errorf("exhaustion err = %v, want ErrOutOfMemory", err)
	}
}

// TestHouseOfSpirit reproduces the paper's Fig 1: a crafted fake chunk
// outside the heap passes glibc's free() integrity tests, enters a bin, and
// the next malloc of the right size returns attacker-controlled memory.
// (AOS blocks this before free() via bndclr; the allocator itself must be
// vulnerable for the example to be meaningful.)
func TestHouseOfSpirit(t *testing.T) {
	a, m := newTestAllocator(t)
	// Craft two fake chunks in "global" memory at an arbitrary address.
	fake := uint64(0x1000_0000)
	const fakeSize = 0x40
	m.WriteU64(fake+8, fakeSize)          // fchunk[0].size
	m.WriteU64(fake+fakeSize+8, fakeSize) // fchunk[1].size: passes next-size test

	ptr := fake + HeaderSize // &fchunk[0].fd
	if err := a.Free(ptr); err != nil {
		t.Fatalf("free of crafted chunk was rejected (%v); glibc accepts it", err)
	}
	victim, err := a.Malloc(0x30)
	if err != nil {
		t.Fatal(err)
	}
	if victim != ptr {
		t.Errorf("malloc after crafted free returned %#x, want attacker-controlled %#x", victim, ptr)
	}
}

func TestValidateRandomWorkload(t *testing.T) {
	a, _ := newTestAllocator(t)
	rng := rand.New(rand.NewSource(42))
	live := make([]uint64, 0, 512)
	for i := 0; i < 5000; i++ {
		if len(live) > 0 && rng.Intn(100) < 45 {
			j := rng.Intn(len(live))
			if err := a.Free(live[j]); err != nil {
				t.Fatalf("op %d: Free: %v", i, err)
			}
			live[j] = live[len(live)-1]
			live = live[:len(live)-1]
		} else {
			size := uint64(1 + rng.Intn(3000))
			p, err := a.Malloc(size)
			if err != nil {
				t.Fatalf("op %d: Malloc(%d): %v", i, size, err)
			}
			live = append(live, p)
		}
		if i%500 == 0 {
			if err := a.Validate(); err != nil {
				t.Fatalf("op %d: %v", i, err)
			}
		}
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDataSurvivesOtherOperations(t *testing.T) {
	a, m := newTestAllocator(t)
	p, _ := a.Malloc(128)
	for i := uint64(0); i < 16; i++ {
		m.WriteU64(p+i*8, 0xA0+i)
	}
	// Allocate and free around it.
	var others []uint64
	for i := 0; i < 100; i++ {
		q, _ := a.Malloc(uint64(16 + i*8))
		others = append(others, q)
	}
	for _, q := range others {
		if err := a.Free(q); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(0); i < 16; i++ {
		if got := m.ReadU64(p + i*8); got != 0xA0+i {
			t.Fatalf("payload corrupted at word %d: %#x", i, got)
		}
	}
}

func BenchmarkMallocFree(b *testing.B) {
	a, _ := newTestAllocator(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p, err := a.Malloc(uint64(16 + i%256))
		if err != nil {
			b.Fatal(err)
		}
		if err := a.Free(p); err != nil {
			b.Fatal(err)
		}
	}
}

func TestMemalign(t *testing.T) {
	a, _ := newTestAllocator(t)
	for _, align := range []uint64{16, 64, 256, 4096} {
		p, err := a.Memalign(align, 100)
		if err != nil {
			t.Fatalf("Memalign(%d): %v", align, err)
		}
		if p%align != 0 {
			t.Errorf("Memalign(%d) returned %#x", align, p)
		}
		if !a.IsLive(p) {
			t.Errorf("Memalign(%d) result not tracked as live", align)
		}
		if err := a.Free(p); err != nil {
			t.Errorf("Free(Memalign(%d)): %v", align, err)
		}
	}
	if _, err := a.Memalign(48, 100); err == nil {
		t.Error("Memalign accepted a non-power-of-two alignment")
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMemalignInterleaved(t *testing.T) {
	a, _ := newTestAllocator(t)
	var ptrs []uint64
	for i := 0; i < 50; i++ {
		p, err := a.Memalign(1<<uint(5+i%6), uint64(16+i*24))
		if err != nil {
			t.Fatal(err)
		}
		q, err := a.Malloc(uint64(32 + i*8))
		if err != nil {
			t.Fatal(err)
		}
		ptrs = append(ptrs, p, q)
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, p := range ptrs {
		if err := a.Free(p); err != nil {
			t.Fatalf("Free(%#x): %v", p, err)
		}
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if a.Stats().Live != 0 {
		t.Errorf("live = %d", a.Stats().Live)
	}
}
