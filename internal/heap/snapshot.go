package heap

// State is a deep copy of the allocator's bookkeeping, taken by Snapshot.
// Chunk headers and free-list links live in simulated memory and are
// checkpointed by mem.Memory.Snapshot; this State carries the host-side
// metadata (bin heads, live-size map, stats, hardening queue) so a restored
// allocator agrees with the restored address space.
type State struct {
	base  uint64
	brk   uint64
	limit uint64
	top   uint64

	fastbins [8]uint64
	tcache   [64]tcacheBin
	bins     [65]uint64
	sizes    map[uint64]uint64
	accesses []Access
	stats    Stats

	hard       Hardening
	quarantine []uint64
}

// Snapshot deep-copies the allocator bookkeeping.
func (a *Allocator) Snapshot() *State {
	s := &State{
		base:       a.base,
		brk:        a.brk,
		limit:      a.limit,
		top:        a.top,
		fastbins:   a.fastbins,
		tcache:     a.tcache,
		bins:       a.bins,
		sizes:      make(map[uint64]uint64, len(a.sizes)),
		accesses:   append([]Access(nil), a.accesses...),
		stats:      a.stats,
		hard:       a.hard,
		quarantine: append([]uint64(nil), a.quarantine...),
	}
	for p, sz := range a.sizes { //aoslint:allow mapiter — order-free: builds an independent map, no order-dependent effects
		s.sizes[p] = sz
	}
	return s
}

// Restore rewinds the allocator to a snapshot. The backing memory must be
// restored to the matching mem.State separately (core.Machine.Restore does
// both). Hooks are runtime wiring and are left untouched. The snapshot
// stays valid for further restores.
func (a *Allocator) Restore(s *State) {
	a.base = s.base
	a.brk = s.brk
	a.limit = s.limit
	a.top = s.top
	a.fastbins = s.fastbins
	a.tcache = s.tcache
	a.bins = s.bins
	a.sizes = make(map[uint64]uint64, len(s.sizes))
	for p, sz := range s.sizes { //aoslint:allow mapiter — order-free: builds an independent map, no order-dependent effects
		a.sizes[p] = sz
	}
	a.accesses = append(a.accesses[:0:0], s.accesses...)
	a.stats = s.stats
	a.hard = s.hard
	a.quarantine = append(a.quarantine[:0:0], s.quarantine...)
}
