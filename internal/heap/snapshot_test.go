package heap

import (
	"reflect"
	"testing"

	"aos/internal/mem"
)

// heapChurn exercises allocator behavior from a given state: a fixed
// pseudo-random malloc/free mix whose returned pointers are the probe.
func heapChurn(t *testing.T, a *Allocator, live []uint64) ([]uint64, []uint64) {
	t.Helper()
	var ptrs []uint64
	for i := 0; i < 1500; i++ {
		x := uint64(i)*2654435761 + 12345
		if len(live) > 4 && x%3 == 0 {
			vi := int(x/7) % len(live)
			if err := a.Free(live[vi]); err != nil {
				t.Fatalf("free %d: %v", i, err)
			}
			live[vi] = live[len(live)-1]
			live = live[:len(live)-1]
		} else {
			p, err := a.Malloc(16 + x%480)
			if err != nil {
				t.Fatalf("malloc %d: %v", i, err)
			}
			live = append(live, p)
			ptrs = append(ptrs, p)
		}
	}
	return ptrs, live
}

// TestAllocatorSnapshotRestoreDeterminism: a restored allocator (plus its
// restored memory) must hand out the exact same pointer sequence as the
// original continuing straight-line.
func TestAllocatorSnapshotRestoreDeterminism(t *testing.T) {
	for _, hard := range []Hardening{{}, {QuarantineDepth: 8, Canary: true, PoisonOnFree: true}} {
		m := mem.New()
		a := New(m, 0x2000_0000, 64<<20)
		a.SetHardening(hard)
		var live []uint64
		for i := 0; i < 500; i++ {
			p, err := a.Malloc(32 + uint64(i%7)*48)
			if err != nil {
				t.Fatal(err)
			}
			live = append(live, p)
		}
		ms := m.Snapshot()
		as := a.Snapshot()
		liveAtSnap := append([]uint64(nil), live...)

		want, _ := heapChurn(t, a, live)
		statsAfter := a.stats

		m2 := mem.New()
		m2.Restore(ms)
		b := New(m2, 0x2000_0000, 64<<20)
		b.Restore(as)
		got, _ := heapChurn(t, b, append([]uint64(nil), liveAtSnap...))
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("hard=%+v: restored allocator pointer stream diverged", hard)
		}
		if b.stats != statsAfter {
			t.Fatalf("hard=%+v: stats diverged: %+v vs %+v", hard, b.stats, statsAfter)
		}
		// Snapshot survived both continuations: two fresh restores agree.
		c := New(mem.New(), 0x2000_0000, 64<<20)
		d := New(mem.New(), 0x2000_0000, 64<<20)
		c.Restore(as)
		d.Restore(as)
		if !reflect.DeepEqual(c.sizes, d.sizes) || c.stats != d.stats ||
			c.fastbins != d.fastbins || c.top != d.top ||
			!reflect.DeepEqual(c.quarantine, d.quarantine) {
			t.Fatalf("hard=%+v: snapshot mutated by a restored allocator's continuation", hard)
		}
	}
}

// TestAllocatorSnapshotComplete is the reflection guard: every Allocator
// field must be snapshotted or explicitly operational.
func TestAllocatorSnapshotComplete(t *testing.T) {
	covered := map[string]bool{
		"base": true, "brk": true, "limit": true, "top": true,
		"fastbins": true, "tcache": true, "bins": true, "sizes": true,
		"accesses": true, "stats": true, "hard": true, "quarantine": true,
	}
	operational := map[string]bool{
		// mem is runtime wiring (checkpointed by mem.Memory.Snapshot);
		// hooks are host-side callbacks re-attached by the owner.
		"mem": true, "hooks": true,
	}
	typ := reflect.TypeOf(Allocator{})
	for i := 0; i < typ.NumField(); i++ {
		name := typ.Field(i).Name
		if covered[name] == operational[name] {
			t.Errorf("heap.Allocator field %q is not classified as snapshotted or operational; update Snapshot/Restore and this test", name)
		}
	}
	st := reflect.TypeOf(State{})
	if st.NumField() != len(covered) {
		t.Errorf("heap.State has %d fields, covered set has %d; keep them in sync", st.NumField(), len(covered))
	}
}
