// Package hwmodel estimates the silicon cost of the AOS structures —
// Table I of the paper: size, area, access time, dynamic access energy and
// leakage power of the MCQ, BWB and L1 B-cache, with the L1 D-cache as a
// reference point. The paper uses CACTI 6.0 at 45 nm; this is an
// analytical SRAM model calibrated to CACTI-like 45 nm characteristics
// (per-bit area/leakage, wordline/bitline delay scaling with array
// geometry), adequate for the table's purpose: showing that the AOS
// structures are small next to an ordinary L1.
package hwmodel

import (
	"fmt"
	"math"
)

// Structure describes one SRAM-like hardware structure.
type Structure struct {
	Name      string
	SizeBytes float64
	// Ports is the number of read/write ports (affects area quadratically
	// in the bit cell).
	Ports int
	// Assoc is the associativity (tag match fan-in).
	Assoc int
}

// Estimate is one Table I row.
type Estimate struct {
	Name string
	// SizeBytes is the storage capacity.
	SizeBytes float64
	// AreaMM2 at 45 nm.
	AreaMM2 float64
	// AccessNS is the access time in nanoseconds.
	AccessNS float64
	// DynamicNJ is the dynamic energy per access in nanojoules.
	DynamicNJ float64
	// LeakageMW is the leakage power in milliwatts.
	LeakageMW float64
}

// 45 nm calibration constants, fitted to CACTI 6.0's published behaviour
// for small SRAM arrays (and sanity-checked against the paper's Table I
// magnitudes).
const (
	// bitAreaMM2 is the effective area of one SRAM bit including array
	// overheads (decoder, sense amps) amortized, single-ported.
	bitAreaMM2 = 4.8e-7
	// portAreaFactor grows the bit cell per extra port.
	portAreaFactor = 0.45
	// leakPerMM2 is leakage power density (mW per mm^2) at 45 nm.
	leakPerMM2 = 420.0
	// baseAccessNS is the fixed decoder+sense overhead.
	baseAccessNS = 0.09
	// accessScaleNS scales with sqrt(bits) (wordline+bitline RC).
	accessScaleNS = 3.2e-4
	// dynBasePJ is the fixed per-access energy (pJ).
	dynBasePJ = 0.0006
	// dynPerBitPJ is the per-bit-read/driven dynamic energy (pJ).
	dynPerBitPJ = 1.6e-7
)

// Model computes the estimate for one structure.
func Model(s Structure) Estimate {
	bits := s.SizeBytes * 8
	ports := float64(s.Ports)
	if ports < 1 {
		ports = 1
	}
	area := bits * bitAreaMM2 * (1 + portAreaFactor*(ports-1))
	// Associativity adds comparator/muxing area (a few percent per way).
	area *= 1 + 0.02*float64(maxInt(s.Assoc-1, 0))

	access := baseAccessNS + accessScaleNS*math.Sqrt(bits)
	dynamic := (dynBasePJ + dynPerBitPJ*bits) / 1000 // pJ -> nJ
	leak := area * leakPerMM2

	return Estimate{
		Name:      s.Name,
		SizeBytes: s.SizeBytes,
		AreaMM2:   area,
		AccessNS:  access,
		DynamicNJ: dynamic,
		LeakageMW: leak,
	}
}

// MCQEntryBits is the storage of one MCQ entry: Valid(1) + Type(2) +
// Addr(64) + BndAddr(64) + BndData(64) + State(3) + Committed(1) + Way(6)
// + Count(6) ≈ 211 bits, rounded to 27 bytes; 48 entries ≈ 1.3 KB as the
// paper states.
const MCQEntryBits = 211

// TableI returns the paper's Table I rows: MCQ, BWB, L1-B cache, and the
// L1-D cache for reference.
func TableI() []Estimate {
	mcqBytes := float64(48*MCQEntryBits) / 8
	bwbBytes := float64(64*(32+6)) / 8 // 64 entries x (32-bit tag + way)
	return []Estimate{
		Model(Structure{Name: "MCQ", SizeBytes: mcqBytes, Ports: 2, Assoc: 1}),
		Model(Structure{Name: "BWB", SizeBytes: bwbBytes, Ports: 1, Assoc: 64}),
		Model(Structure{Name: "L1-B Cache", SizeBytes: 32 << 10, Ports: 1, Assoc: 4}),
		Model(Structure{Name: "L1-D Cache (for reference)", SizeBytes: 64 << 10, Ports: 2, Assoc: 8}),
	}
}

// String renders an estimate row.
func (e Estimate) String() string {
	return fmt.Sprintf("%-28s size=%8.0fB area=%8.5fmm2 access=%6.4fns dyn=%8.6fnJ leak=%8.3fmW",
		e.Name, e.SizeBytes, e.AreaMM2, e.AccessNS, e.DynamicNJ, e.LeakageMW)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
