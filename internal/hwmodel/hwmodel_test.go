package hwmodel

import "testing"

func TestTableIShape(t *testing.T) {
	rows := TableI()
	if len(rows) != 4 {
		t.Fatalf("Table I rows = %d, want 4", len(rows))
	}
	names := []string{"MCQ", "BWB", "L1-B Cache", "L1-D Cache (for reference)"}
	for i, r := range rows {
		if r.Name != names[i] {
			t.Errorf("row %d = %q, want %q", i, r.Name, names[i])
		}
		if r.AreaMM2 <= 0 || r.AccessNS <= 0 || r.DynamicNJ <= 0 || r.LeakageMW <= 0 {
			t.Errorf("%s: non-positive estimate %+v", r.Name, r)
		}
		if r.String() == "" {
			t.Errorf("%s: empty rendering", r.Name)
		}
	}
}

func TestTableIOrdering(t *testing.T) {
	// The paper's point: the AOS structures are tiny next to the L1-D.
	rows := TableI()
	mcq, bwb, l1b, l1d := rows[0], rows[1], rows[2], rows[3]
	if !(bwb.AreaMM2 < mcq.AreaMM2*10 && mcq.AreaMM2 < l1b.AreaMM2 && l1b.AreaMM2 < l1d.AreaMM2) {
		t.Errorf("area ordering violated: mcq=%v bwb=%v l1b=%v l1d=%v",
			mcq.AreaMM2, bwb.AreaMM2, l1b.AreaMM2, l1d.AreaMM2)
	}
	if !(mcq.AccessNS < l1b.AccessNS && l1b.AccessNS < l1d.AccessNS) {
		t.Error("access-time ordering violated")
	}
	if !(mcq.LeakageMW < l1b.LeakageMW && l1b.LeakageMW < l1d.LeakageMW) {
		t.Error("leakage ordering violated")
	}
}

func TestTableIPaperBallpark(t *testing.T) {
	// Paper Table I magnitudes: MCQ 1.3KB/0.0096mm2, BWB 384B, L1-B 32KB
	// at 0.157mm2, L1-D 64KB at 0.263mm2, access times 0.13-0.32ns.
	rows := TableI()
	within := func(got, want, factor float64) bool {
		return got > want/factor && got < want*factor
	}
	if !within(rows[0].SizeBytes, 1300, 1.3) {
		t.Errorf("MCQ size = %v bytes, paper ~1.3KB", rows[0].SizeBytes)
	}
	if !within(rows[1].SizeBytes, 384, 1.3) {
		t.Errorf("BWB size = %v bytes, paper 384B", rows[1].SizeBytes)
	}
	if !within(rows[2].AreaMM2, 0.1573, 3) {
		t.Errorf("L1-B area = %v mm2, paper 0.1573", rows[2].AreaMM2)
	}
	if !within(rows[3].AreaMM2, 0.2628, 3) {
		t.Errorf("L1-D area = %v mm2, paper 0.2628", rows[3].AreaMM2)
	}
	if !within(rows[3].AccessNS, 0.3217, 2) {
		t.Errorf("L1-D access = %v ns, paper 0.3217", rows[3].AccessNS)
	}
	if !within(rows[0].AccessNS, 0.1383, 2) {
		t.Errorf("MCQ access = %v ns, paper 0.1383", rows[0].AccessNS)
	}
}

func TestModelScalesWithSize(t *testing.T) {
	small := Model(Structure{Name: "s", SizeBytes: 1 << 10, Ports: 1, Assoc: 1})
	big := Model(Structure{Name: "b", SizeBytes: 64 << 10, Ports: 1, Assoc: 1})
	if big.AreaMM2 <= small.AreaMM2 || big.AccessNS <= small.AccessNS ||
		big.DynamicNJ <= small.DynamicNJ || big.LeakageMW <= small.LeakageMW {
		t.Error("estimates do not grow with capacity")
	}
	oneP := Model(Structure{Name: "p1", SizeBytes: 1 << 10, Ports: 1, Assoc: 1})
	twoP := Model(Structure{Name: "p2", SizeBytes: 1 << 10, Ports: 2, Assoc: 1})
	if twoP.AreaMM2 <= oneP.AreaMM2 {
		t.Error("extra port did not grow area")
	}
}
