// Package tracespan is a stdlib-only distributed-tracing layer for the
// serving path: W3C trace-context (traceparent) propagation at the HTTP
// edge, per-job span trees through admission, queue wait, cache lookup,
// pool execution and experiment composition, and a Perfetto export that
// merges job spans with the flight recorder's microarchitectural
// timeline (see telemetry.WriteMergedTrace).
//
// The layer is built to be free when disabled: a nil *Trace is a valid
// receiver for every method, StartSpan on it returns a nil *Span whose
// methods are likewise no-ops, and none of those paths allocate. The
// service keeps a single nil Trace pointer when tracing is off, so the
// instrumented code is identical either way and the disabled cost is a
// handful of predictable nil checks.
package tracespan

import (
	cryptorand "crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sync/atomic"
)

// Header is the W3C trace-context request/response header name.
const Header = "traceparent"

// TraceID is the 16-byte trace identifier (32 lowercase hex digits on
// the wire). The all-zero value is invalid per the W3C spec.
type TraceID [16]byte

// SpanID is the 8-byte span identifier (16 lowercase hex digits on the
// wire). The all-zero value is invalid.
type SpanID [8]byte

// FlagSampled is the only trace-flag bit the spec defines.
const FlagSampled = 0x01

func (t TraceID) String() string { return hex.EncodeToString(t[:]) }
func (s SpanID) String() string  { return hex.EncodeToString(s[:]) }

// IsValid reports whether the id is non-zero.
func (t TraceID) IsValid() bool { return t != TraceID{} }

// IsValid reports whether the id is non-zero.
func (s SpanID) IsValid() bool { return s != SpanID{} }

// SpanContext is the propagated identity of one span: which trace it
// belongs to, which span is the remote parent, and the trace flags.
type SpanContext struct {
	TraceID TraceID
	SpanID  SpanID
	Flags   byte
}

// IsValid reports whether both ids are non-zero, the W3C condition for
// honoring an incoming traceparent.
func (c SpanContext) IsValid() bool { return c.TraceID.IsValid() && c.SpanID.IsValid() }

// Traceparent renders the context in W3C version-00 form:
//
//	00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01
func (c SpanContext) Traceparent() string {
	return fmt.Sprintf("00-%s-%s-%02x", c.TraceID, c.SpanID, c.Flags)
}

// ParseTraceparent parses a W3C traceparent header. Per the spec,
// version ff is rejected, unknown versions are accepted if the
// version-00 prefix parses, and all-zero trace or span ids are invalid.
func ParseTraceparent(s string) (SpanContext, error) {
	var c SpanContext
	// version "-" traceid "-" spanid "-" flags, each field fixed width.
	if len(s) < 55 {
		return c, fmt.Errorf("tracespan: traceparent too short (%d bytes)", len(s))
	}
	if s[2] != '-' || s[35] != '-' || s[52] != '-' {
		return c, fmt.Errorf("tracespan: traceparent has misplaced separators")
	}
	ver, err := hexField(s[0:2])
	if err != nil {
		return c, fmt.Errorf("tracespan: bad traceparent version: %w", err)
	}
	if ver[0] == 0xff {
		return c, fmt.Errorf("tracespan: traceparent version ff is invalid")
	}
	if ver[0] == 0 && len(s) != 55 {
		return c, fmt.Errorf("tracespan: version-00 traceparent must be 55 bytes, got %d", len(s))
	}
	tid, err := hexField(s[3:35])
	if err != nil {
		return c, fmt.Errorf("tracespan: bad trace-id: %w", err)
	}
	sid, err := hexField(s[36:52])
	if err != nil {
		return c, fmt.Errorf("tracespan: bad span-id: %w", err)
	}
	flags, err := hexField(s[53:55])
	if err != nil {
		return c, fmt.Errorf("tracespan: bad trace-flags: %w", err)
	}
	copy(c.TraceID[:], tid)
	copy(c.SpanID[:], sid)
	c.Flags = flags[0]
	if !c.IsValid() {
		return SpanContext{}, fmt.Errorf("tracespan: traceparent carries an all-zero trace or span id")
	}
	return c, nil
}

// hexField decodes a fixed-width lowercase-hex field. Uppercase is
// rejected, as the spec requires.
func hexField(s string) ([]byte, error) {
	for i := 0; i < len(s); i++ {
		ch := s[i]
		if (ch < '0' || ch > '9') && (ch < 'a' || ch > 'f') {
			return nil, fmt.Errorf("non-lowercase-hex byte %q", ch)
		}
	}
	return hex.DecodeString(s)
}

// idState seeds span/trace id generation once from the OS entropy pool;
// subsequent ids are drawn with a splitmix64 walk, which is cheap,
// lock-free and collision-free within a process.
var idState atomic.Uint64

func init() {
	var b [8]byte
	if _, err := cryptorand.Read(b[:]); err == nil {
		idState.Store(binary.LittleEndian.Uint64(b[:]))
	} else {
		// Entropy exhaustion is not worth failing startup for: ids only
		// need process-local uniqueness, which the counter walk provides.
		idState.Store(0x9e3779b97f4a7c15)
	}
}

// nextID returns a non-zero pseudo-random 64-bit id.
func nextID() uint64 {
	for {
		x := idState.Add(0x9e3779b97f4a7c15)
		x ^= x >> 30
		x *= 0xbf58476d1ce4e5b9
		x ^= x >> 27
		x *= 0x94d049bb133111eb
		x ^= x >> 31
		if x != 0 {
			return x
		}
	}
}

func newTraceID() TraceID {
	var t TraceID
	binary.BigEndian.PutUint64(t[0:8], nextID())
	binary.BigEndian.PutUint64(t[8:16], nextID())
	return t
}

func newSpanID() SpanID {
	var s SpanID
	binary.BigEndian.PutUint64(s[:], nextID())
	return s
}
