package tracespan

import (
	"time"

	"aos/internal/telemetry"
)

// PerfettoSpans renders the trace's spans as telemetry span events,
// ready for telemetry.WriteMergedTrace. Timestamps are wall-clock
// microseconds relative to the earliest span start, so a job's span
// tree starts at ts 0 like the simulator timeline it is merged with
// (sim slices tick in cycle-time on their own threads; the jobs thread
// ticks in wall time — the merge is by document, not by clock).
//
// Open spans are exported with their duration so far; zero-length
// spans are widened to 1µs because the trace validator (and Perfetto
// itself) rejects non-positive slice durations. Nil traces export nil.
func (t *Trace) PerfettoSpans() []telemetry.SpanEvent {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.spans) == 0 {
		return nil
	}
	epoch := t.spans[0].start
	for _, s := range t.spans {
		if s.start.Before(epoch) {
			epoch = s.start
		}
	}
	now := t.clock()
	evs := make([]telemetry.SpanEvent, 0, len(t.spans))
	for _, s := range t.spans {
		end := s.end
		if end.IsZero() {
			end = now
		}
		dur := uint64(end.Sub(s.start) / time.Microsecond)
		if dur == 0 {
			dur = 1
		}
		args := make(map[string]any, len(s.attrs)+2)
		args["span_id"] = s.id.String()
		if s.parent.IsValid() {
			args["parent_id"] = s.parent.String()
		}
		for _, a := range s.attrs {
			if a.isNum {
				args[a.key] = a.num
			} else {
				args[a.key] = a.str
			}
		}
		evs = append(evs, telemetry.SpanEvent{
			Name:     s.name,
			TsMicros: uint64(s.start.Sub(epoch) / time.Microsecond),
			Dur:      dur,
			Args:     args,
		})
	}
	return evs
}
