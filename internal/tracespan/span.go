package tracespan

import (
	"sync"
	"time"
)

// maxSpans bounds a single trace's span storage. Serving-path traces
// are a handful of spans (ingress, queue wait, cache lookup, execute,
// compose); the cap only matters if instrumentation regresses into a
// loop, and then losing spans beats losing the daemon.
const maxSpans = 256

// attr is one span attribute. Attributes keep insertion order so the
// exported document is deterministic for a deterministic caller.
type attr struct {
	key   string
	str   string
	num   uint64
	isNum bool
}

// Trace collects the spans of one traced request or job. The zero
// pointer is the disabled tracer: every method on a nil *Trace (and on
// the nil *Span StartSpan then returns) is an allocation-free no-op.
type Trace struct {
	mu      sync.Mutex
	traceID TraceID
	flags   byte
	remote  SpanContext // incoming traceparent; zero when locally rooted
	root    *Span
	spans   []*Span
	dropped int
	now     func() time.Time // test hook; time.Now when nil
}

// New starts a trace. A valid parent (from an incoming traceparent
// header) is joined: its trace id is reused and the first span started
// on the trace becomes a child of the remote span. An invalid parent
// starts a fresh locally-rooted trace.
func New(parent SpanContext) *Trace {
	t := &Trace{}
	if parent.IsValid() {
		t.traceID = parent.TraceID
		t.remote = parent
		t.flags = parent.Flags
	} else {
		t.traceID = newTraceID()
		t.flags = FlagSampled
	}
	return t
}

// TraceID returns the trace's id; zero on a nil (disabled) trace.
func (t *Trace) TraceID() TraceID {
	if t == nil {
		return TraceID{}
	}
	return t.traceID
}

// Context returns the propagation context callers should hand
// downstream (and echo in response traceparent headers): the root
// span's context once one exists, otherwise the bare trace identity.
func (t *Trace) Context() SpanContext {
	if t == nil {
		return SpanContext{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	c := SpanContext{TraceID: t.traceID, Flags: t.flags}
	if t.root != nil {
		c.SpanID = t.root.id
	}
	return c
}

// StartSpan opens a span. The first span started becomes the trace's
// root (child of the remote parent when the trace was joined); every
// later span is a child of the root. On a nil trace it returns a nil
// span without allocating.
func (t *Trace) StartSpan(name string) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	s := &Span{tr: t, name: name, id: newSpanID(), start: t.clock()}
	if t.root == nil {
		t.root = s
		s.parent = t.remote.SpanID
	} else {
		s.parent = t.root.id
	}
	if len(t.spans) >= maxSpans {
		t.dropped++
		return s // still usable, just not exported
	}
	t.spans = append(t.spans, s)
	return s
}

// Dropped reports spans discarded over the maxSpans cap.
func (t *Trace) Dropped() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// EndOpen closes every span that is still open, stamping them with the
// current time. The service calls it when a job finishes so panic or
// cancellation paths cannot leak unfinished spans into the export.
func (t *Trace) EndOpen() {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.clock()
	for _, s := range t.spans {
		if s.end.IsZero() {
			s.end = now
		}
	}
}

// clock must be called with t.mu held.
func (t *Trace) clock() time.Time {
	if t.now != nil {
		return t.now()
	}
	return time.Now()
}

// Span is one timed operation inside a trace. All mutation goes through
// the owning trace's lock, so a span may be ended by one goroutine
// while another renders the trace.
type Span struct {
	tr     *Trace
	name   string
	id     SpanID
	parent SpanID
	start  time.Time
	end    time.Time // zero while open
	attrs  []attr
}

// Context returns the span's propagation context; zero on nil.
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	return SpanContext{TraceID: s.tr.traceID, SpanID: s.id, Flags: s.tr.flags}
}

// SetAttr records a numeric attribute. No-op on nil.
func (s *Span) SetAttr(key string, v uint64) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	s.attrs = append(s.attrs, attr{key: key, num: v, isNum: true})
}

// SetAttrStr records a string attribute. No-op on nil.
func (s *Span) SetAttrStr(key, v string) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	s.attrs = append(s.attrs, attr{key: key, str: v})
}

// End closes the span. The first End wins; later calls (including the
// trace-level EndOpen sweep) are no-ops, as is End on nil.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	if s.end.IsZero() {
		s.end = s.tr.clock()
	}
}
