package tracespan

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"aos/internal/telemetry"
)

func TestTraceparentRoundTrip(t *testing.T) {
	const hdr = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	c, err := ParseTraceparent(hdr)
	if err != nil {
		t.Fatalf("ParseTraceparent: %v", err)
	}
	if got := c.Traceparent(); got != hdr {
		t.Fatalf("round trip: got %q want %q", got, hdr)
	}
	if c.TraceID.String() != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Fatalf("trace id = %s", c.TraceID)
	}
	if c.SpanID.String() != "00f067aa0ba902b7" {
		t.Fatalf("span id = %s", c.SpanID)
	}
	if c.Flags != FlagSampled {
		t.Fatalf("flags = %#x", c.Flags)
	}
	if !c.IsValid() {
		t.Fatal("context should be valid")
	}
}

func TestTraceparentRejects(t *testing.T) {
	cases := map[string]string{
		"empty":            "",
		"short":            "00-4bf92f",
		"version ff":       "ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",
		"uppercase hex":    "00-4BF92F3577B34DA6A3CE929D0E0E4736-00f067aa0ba902b7-01",
		"zero trace id":    "00-00000000000000000000000000000000-00f067aa0ba902b7-01",
		"zero span id":     "00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01",
		"bad separators":   "00_4bf92f3577b34da6a3ce929d0e0e4736_00f067aa0ba902b7_01",
		"v00 with trailer": "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-extra",
	}
	for name, hdr := range cases {
		if _, err := ParseTraceparent(hdr); err == nil {
			t.Errorf("%s: ParseTraceparent(%q) accepted, want error", name, hdr)
		}
	}
	// Unknown (non-ff) versions are accepted if the 00-shaped prefix
	// parses, per the W3C forward-compatibility rule.
	future := "cc-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-what-ever"
	if _, err := ParseTraceparent(future); err != nil {
		t.Errorf("future version rejected: %v", err)
	}
}

func TestSpanTree(t *testing.T) {
	parent, err := ParseTraceparent("00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
	if err != nil {
		t.Fatal(err)
	}
	tr := New(parent)
	if tr.TraceID() != parent.TraceID {
		t.Fatalf("joined trace did not keep trace id: %s", tr.TraceID())
	}
	root := tr.StartSpan("service_ingress")
	child := tr.StartSpan("service_cache_lookup")
	child.SetAttr("hit", 1)
	child.End()
	root.End()

	if root.Context().TraceID != parent.TraceID {
		t.Fatal("root span in wrong trace")
	}
	if rc := tr.Context(); rc.SpanID != root.Context().SpanID {
		t.Fatalf("trace context should carry the root span id, got %s", rc.SpanID)
	}
	evs := tr.PerfettoSpans()
	if len(evs) != 2 {
		t.Fatalf("got %d span events, want 2", len(evs))
	}
	if evs[0].Name != "service_ingress" || evs[1].Name != "service_cache_lookup" {
		t.Fatalf("span order: %q, %q", evs[0].Name, evs[1].Name)
	}
	// The root joins the remote parent; the child parents to the root.
	if evs[0].Args["parent_id"] != parent.SpanID.String() {
		t.Fatalf("root parent_id = %v, want remote span id", evs[0].Args["parent_id"])
	}
	if evs[1].Args["parent_id"] != root.Context().SpanID.String() {
		t.Fatalf("child parent_id = %v, want root span id", evs[1].Args["parent_id"])
	}
	if evs[1].Args["hit"] != uint64(1) {
		t.Fatalf("attr hit = %v", evs[1].Args["hit"])
	}
}

func TestLocalRootAndFreshIDs(t *testing.T) {
	a, b := New(SpanContext{}), New(SpanContext{})
	if !a.TraceID().IsValid() || !b.TraceID().IsValid() {
		t.Fatal("fresh traces must have valid ids")
	}
	if a.TraceID() == b.TraceID() {
		t.Fatal("two fresh traces share a trace id")
	}
	root := a.StartSpan("service_ingress")
	if !root.Context().IsValid() {
		t.Fatal("root span context must be valid")
	}
	evs := a.PerfettoSpans()
	if _, has := evs[0].Args["parent_id"]; has {
		t.Fatal("locally-rooted span must not carry a parent_id")
	}
}

func TestEndSemantics(t *testing.T) {
	now := time.Unix(0, 0)
	tr := New(SpanContext{})
	tr.now = func() time.Time { return now }

	sp := tr.StartSpan("service_ingress")
	now = now.Add(5 * time.Millisecond)
	sp.End()
	now = now.Add(time.Hour)
	sp.End() // second End must not move the stamp
	open := tr.StartSpan("runner_execute")
	_ = open
	now = now.Add(3 * time.Millisecond)
	tr.EndOpen()

	evs := tr.PerfettoSpans()
	if evs[0].Dur != 5000 {
		t.Fatalf("ended span dur = %dµs, want 5000", evs[0].Dur)
	}
	if evs[1].Dur != 3000 {
		t.Fatalf("EndOpen span dur = %dµs, want 3000", evs[1].Dur)
	}
	if evs[0].TsMicros != 0 {
		t.Fatalf("epoch-relative ts = %d, want 0", evs[0].TsMicros)
	}
}

func TestZeroDurationWidened(t *testing.T) {
	now := time.Unix(42, 0)
	tr := New(SpanContext{})
	tr.now = func() time.Time { return now }
	tr.StartSpan("service_ingress").End()
	if d := tr.PerfettoSpans()[0].Dur; d != 1 {
		t.Fatalf("zero-length span exported dur %d, want 1 (validator floor)", d)
	}
}

func TestSpanCap(t *testing.T) {
	tr := New(SpanContext{})
	for i := 0; i < maxSpans+10; i++ {
		tr.StartSpan("service_ingress").End()
	}
	if got := len(tr.PerfettoSpans()); got != maxSpans {
		t.Fatalf("exported %d spans, want cap %d", got, maxSpans)
	}
	if tr.Dropped() != 10 {
		t.Fatalf("dropped = %d, want 10", tr.Dropped())
	}
}

// TestDisabledTraceIsFree pins the tentpole's zero-cost contract: with
// tracing off the service holds a nil *Trace, and every instrumentation
// call on it must not allocate.
func TestDisabledTraceIsFree(t *testing.T) {
	var tr *Trace
	allocs := testing.AllocsPerRun(1000, func() {
		sp := tr.StartSpan("service_ingress")
		sp.SetAttr("hit", 1)
		sp.SetAttrStr("scheme", "aos")
		_ = sp.Context()
		sp.End()
		tr.EndOpen()
		_ = tr.TraceID()
		_ = tr.Context()
		if tr.PerfettoSpans() != nil {
			t.Fatal("nil trace exported spans")
		}
	})
	if allocs != 0 {
		t.Fatalf("disabled tracing allocates %.1f per op, want 0", allocs)
	}
}

// TestMergedDocumentValidates renders spans through the telemetry
// writer with no timeline and checks the in-tree validator accepts the
// document (the with-timeline merge is exercised end-to-end in the
// service tests).
func TestMergedDocumentValidates(t *testing.T) {
	now := time.Unix(0, 0)
	tr := New(SpanContext{})
	tr.now = func() time.Time { return now }
	root := tr.StartSpan("service_ingress")
	now = now.Add(2 * time.Millisecond)
	sp := tr.StartSpan("experiments_run")
	sp.SetAttrStr("benchmark", "mcf")
	now = now.Add(8 * time.Millisecond)
	tr.EndOpen()
	_ = root

	var buf bytes.Buffer
	if err := telemetry.WriteMergedTrace(&buf, "aosd job test", nil, tr.PerfettoSpans()); err != nil {
		t.Fatalf("WriteMergedTrace: %v", err)
	}
	st, err := telemetry.ValidateTraceJSON(buf.Bytes())
	if err != nil {
		t.Fatalf("validator rejected merged doc: %v\n%s", err, buf.String())
	}
	if st.Slices != 2 {
		t.Fatalf("slices = %d, want 2", st.Slices)
	}
	if !strings.Contains(buf.String(), `"name": "jobs"`) {
		t.Fatal("jobs thread metadata missing")
	}
}
