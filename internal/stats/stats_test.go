package stats

import (
	"math"
	"strings"
	"testing"
)

func TestGeomean(t *testing.T) {
	if g := Geomean([]float64{2, 8}); math.Abs(g-4) > 1e-12 {
		t.Errorf("Geomean(2,8) = %v", g)
	}
	if g := Geomean([]float64{1, 1, 1}); g != 1 {
		t.Errorf("Geomean(1,1,1) = %v", g)
	}
	if g := Geomean(nil); g != 0 {
		t.Errorf("Geomean(nil) = %v", g)
	}
	defer func() {
		if recover() == nil {
			t.Error("Geomean accepted a non-positive value")
		}
	}()
	Geomean([]float64{1, 0})
}

func TestMean(t *testing.T) {
	if m := Mean([]float64{1, 2, 3}); m != 2 {
		t.Errorf("Mean = %v", m)
	}
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
}

func TestHistogramSummary(t *testing.T) {
	h := NewHistogram()
	// Space of 4 values; occurrences 0, 1, 2, 3.
	h.Add(1)
	h.Add(2)
	h.Add(2)
	h.Add(3)
	h.Add(3)
	h.Add(3)
	if h.Total() != 6 || h.Distinct() != 3 {
		t.Errorf("total=%d distinct=%d", h.Total(), h.Distinct())
	}
	s := h.OccurrenceSummary(4)
	if s.Min != 0 || s.Max != 3 {
		t.Errorf("min/max = %d/%d", s.Min, s.Max)
	}
	if math.Abs(s.Avg-1.5) > 1e-12 {
		t.Errorf("avg = %v", s.Avg)
	}
	// Variance of {0,1,2,3} = 1.25.
	if math.Abs(s.Stdev-math.Sqrt(1.25)) > 1e-12 {
		t.Errorf("stdev = %v", s.Stdev)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("name", "value")
	tb.AddRow("alpha", 1.5)
	tb.AddRow("b", 42)
	out := tb.String()
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "1.500") || !strings.Contains(out, "42") {
		t.Errorf("table output missing cells:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // header, separator, two rows
		t.Errorf("table has %d lines", len(lines))
	}
}

func TestSortedKeys(t *testing.T) {
	m := map[string]int{"c": 1, "a": 2, "b": 3}
	got := SortedKeys(m)
	if len(got) != 3 || got[0] != "a" || got[2] != "c" {
		t.Errorf("SortedKeys = %v", got)
	}
}
