// Package stats provides the aggregation and table-formatting helpers the
// experiment harness uses to print paper-style tables and figure series:
// geometric means for normalized execution time (Fig 14/15/18), histograms
// for the PAC-distribution study (Fig 11), and fixed-width text tables.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Geomean returns the geometric mean of xs (0 for empty input; zero or
// negative entries are rejected by panicking, since a normalized execution
// time can never be <= 0).
func Geomean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			panic(fmt.Sprintf("stats: geomean of non-positive value %v", x))
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// Mean returns the arithmetic mean.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Histogram summarizes an integer-valued distribution (Fig 11).
type Histogram struct {
	counts map[uint64]uint64
	total  uint64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{counts: make(map[uint64]uint64)}
}

// Add records one observation of value v.
func (h *Histogram) Add(v uint64) {
	h.counts[v]++
	h.total++
}

// Total returns the number of observations.
func (h *Histogram) Total() uint64 { return h.total }

// Distinct returns the number of distinct values observed.
func (h *Histogram) Distinct() int { return len(h.counts) }

// Summary holds the Fig 11 caption statistics over per-bucket occurrence
// counts: for every possible value in [0, space), how often it occurred.
type Summary struct {
	Avg, Stdev float64
	Min, Max   uint64
}

// OccurrenceSummary computes the occurrence statistics over a value space
// of the given size (e.g. 65536 for 16-bit PACs); values never observed
// count as zero occurrences.
func (h *Histogram) OccurrenceSummary(space uint64) Summary {
	var s Summary
	s.Min = math.MaxUint64
	var sum, sumSq float64
	for v := uint64(0); v < space; v++ {
		c := h.counts[v]
		if c < s.Min {
			s.Min = c
		}
		if c > s.Max {
			s.Max = c
		}
		f := float64(c)
		sum += f
		sumSq += f * f
	}
	n := float64(space)
	s.Avg = sum / n
	s.Stdev = math.Sqrt(sumSq/n - s.Avg*s.Avg)
	return s
}

// Table is a fixed-width text table builder for harness output.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table { return &Table{header: header} }

// AddRow appends a row; cells are Sprint-formatted.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			w := 0
			if i < len(widths) {
				w = widths[i]
			}
			fmt.Fprintf(&b, "%-*s", w, c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// SortedKeys returns the map's keys in ascending order (deterministic
// printing).
func SortedKeys[K ~string, V any](m map[K]V) []K {
	keys := make([]K, 0, len(m))
	for k := range m { //aoslint:allow mapiter — keys are sorted below; this is the canonical sorted-iteration helper
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}
