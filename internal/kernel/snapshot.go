package kernel

import "aos/internal/hbt"

// State is a deep copy of the OS context, taken by Snapshot: table
// placement bookkeeping, the resize/exception logs, and the bounds table's
// own state. The table's architectural storage lives in simulated memory
// and is checkpointed by mem.Memory.Snapshot.
type State struct {
	nextHBT    uint64
	entryBytes int
	resizes    []ResizeEvent
	exceptions []Exception
	table      *hbt.State
}

// Snapshot deep-copies the OS context.
func (o *OS) Snapshot() *State {
	return &State{
		nextHBT:    o.nextHBT,
		entryBytes: o.entryBytes,
		resizes:    append([]ResizeEvent(nil), o.resizes...),
		exceptions: append([]Exception(nil), o.exceptions...),
		table:      o.table.Snapshot(),
	}
}

// Restore rewinds the OS context to a snapshot. The backing memory must be
// restored to the matching mem.State separately (core.Machine.Restore does
// both). The existing table object is restored in place, so pointers to it
// held by callers stay valid. The snapshot stays valid for further
// restores.
func (o *OS) Restore(s *State) {
	o.nextHBT = s.nextHBT
	o.entryBytes = s.entryBytes
	o.resizes = append(o.resizes[:0:0], s.resizes...)
	o.exceptions = append(o.exceptions[:0:0], s.exceptions...)
	o.table.Restore(s.table)
}
