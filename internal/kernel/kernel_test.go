package kernel

import (
	"errors"
	"testing"

	"aos/internal/hbt"
	"aos/internal/mem"
)

func TestNewOSCreatesInitialTable(t *testing.T) {
	o, err := NewOS(mem.New(), 1)
	if err != nil {
		t.Fatal(err)
	}
	tb := o.Table()
	if tb.Assoc() != 1 {
		t.Errorf("initial assoc = %d, want 1", tb.Assoc())
	}
	if tb.Base() != HBTBase {
		t.Errorf("table base = %#x, want %#x", tb.Base(), HBTBase)
	}
	if tb.SizeBytes() != 4<<20 {
		t.Errorf("initial table = %d bytes, want 4 MiB (paper Table IV)", tb.SizeBytes())
	}
}

func TestHandleTableFullDoublesAndPreserves(t *testing.T) {
	m := mem.New()
	o, err := NewOS(m, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Fill one row completely.
	base := uint64(0x2000_0000_0000)
	for i := 0; i < hbt.BoundsPerWay; i++ {
		if _, err := o.Table().Insert(0x1234, base+uint64(i)*4096, 64); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := o.Table().Insert(0x1234, base+1<<20, 64); err != hbt.ErrTableFull {
		t.Fatalf("expected ErrTableFull, got %v", err)
	}
	oldBase := o.Table().Base()
	nt, err := o.HandleTableFull()
	if err != nil {
		t.Fatal(err)
	}
	if nt.Assoc() != 2 {
		t.Errorf("post-resize assoc = %d", nt.Assoc())
	}
	if nt.Base() == oldBase {
		t.Error("new table reuses the old base")
	}
	// Entries survived, and there is room now.
	for i := 0; i < hbt.BoundsPerWay; i++ {
		if _, found := nt.Lookup(0x1234, base+uint64(i)*4096+10); !found {
			t.Fatalf("entry %d lost across resize", i)
		}
	}
	if _, err := nt.Insert(0x1234, base+1<<20, 64); err != nil {
		t.Errorf("insert after resize: %v", err)
	}
	evs := o.Resizes()
	if len(evs) != 1 || evs[0].OldAssoc != 1 || evs[0].NewAssoc != 2 {
		t.Errorf("resize events = %+v", evs)
	}
	if evs[0].TrafficBytes != 2*(4<<20) {
		t.Errorf("migration traffic = %d, want %d", evs[0].TrafficBytes, 2*(4<<20))
	}
}

func TestRepeatedResizes(t *testing.T) {
	o, err := NewOS(mem.New(), 1)
	if err != nil {
		t.Fatal(err)
	}
	for want := 2; want <= 8; want *= 2 {
		if _, err := o.HandleTableFull(); err != nil {
			t.Fatal(err)
		}
		if o.Table().Assoc() != want {
			t.Fatalf("assoc = %d, want %d", o.Table().Assoc(), want)
		}
	}
	if len(o.Resizes()) != 3 {
		t.Errorf("resize count = %d", len(o.Resizes()))
	}
}

func TestResizeCapsAtMaxAssoc(t *testing.T) {
	o, err := NewOS(mem.New(), hbt.MaxAssoc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := o.HandleTableFull(); err == nil {
		t.Error("resize beyond MaxAssoc succeeded")
	}
}

func TestExceptionRecordingAndError(t *testing.T) {
	o, _ := NewOS(mem.New(), 1)
	err := o.RaiseException(ExcBoundsCheck, 0xDEAD, "test fault")
	var exc Exception
	if !errors.As(err, &exc) {
		t.Fatalf("RaiseException returned %T", err)
	}
	if exc.Kind != ExcBoundsCheck || exc.Addr != 0xDEAD {
		t.Errorf("exception = %+v", exc)
	}
	if len(o.Exceptions()) != 1 {
		t.Error("exception not recorded")
	}
	o.ResetExceptions()
	if len(o.Exceptions()) != 0 {
		t.Error("ResetExceptions did not clear")
	}
	if exc.Error() == "" || ExcBoundsClear.String() == "" || ExcPAAuth.String() == "" {
		t.Error("empty diagnostics")
	}
}

func TestLayoutDisjoint(t *testing.T) {
	// The address-space regions must be ordered and non-overlapping within
	// the 46-bit VA.
	regions := []uint64{TextBase, GlobalsBase, HeapBase, HeapBase + HeapLimit, ShadowBase, HBTBase, StackTop}
	for i := 1; i < len(regions); i++ {
		if regions[i] <= regions[i-1] {
			t.Fatalf("region %d (%#x) not above region %d (%#x)", i, regions[i], i-1, regions[i-1])
		}
	}
	if StackTop >= 1<<46 {
		t.Error("stack top outside the 46-bit VA")
	}
}
