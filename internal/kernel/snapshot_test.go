package kernel

import (
	"reflect"
	"testing"

	"aos/internal/mem"
)

// TestOSSnapshotRestoreDeterminism: restore must rewind table growth and
// the exception/resize logs, even across a table migration.
func TestOSSnapshotRestoreDeterminism(t *testing.T) {
	m := mem.New()
	o, err := NewOS(m, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		if _, err := o.Table().Insert(uint16(i*13), 0x1000_0000+uint64(i)*256, 64); err != nil {
			t.Fatal(err)
		}
	}
	ms := m.Snapshot()
	s := o.Snapshot()
	baseAtSnap := o.Table().Base()
	assocAtSnap := o.Table().Assoc()
	liveAtSnap := o.Table().Live()

	// Diverge: grow the table (allocates a new one at nextHBT) and log an
	// exception.
	if _, err := o.HandleTableFull(); err != nil {
		t.Fatal(err)
	}
	o.RaiseException(ExcBoundsCheck, 0xdead, "post-snapshot")
	if o.Table().Assoc() == assocAtSnap && o.Table().Base() == baseAtSnap {
		t.Fatal("test is vacuous: HandleTableFull changed nothing")
	}

	m.Restore(ms)
	o.Restore(s)
	if o.Table().Base() != baseAtSnap || o.Table().Assoc() != assocAtSnap || o.Table().Live() != liveAtSnap {
		t.Fatalf("table not rewound: base=%#x assoc=%d live=%d, want %#x/%d/%d",
			o.Table().Base(), o.Table().Assoc(), o.Table().Live(), baseAtSnap, assocAtSnap, liveAtSnap)
	}
	if len(o.Exceptions()) != 0 || len(o.Resizes()) != 0 {
		t.Fatalf("logs not rewound: %d exceptions, %d resizes", len(o.Exceptions()), len(o.Resizes()))
	}
	// The restored table agrees with the restored memory.
	for i := 0; i < 300; i++ {
		if _, ok := o.Table().Lookup(uint16(i*13), 0x1000_0000+uint64(i)*256+32); !ok {
			t.Fatalf("entry %d missing after restore", i)
		}
	}
	// The snapshot survives repeated restores.
	if _, err := o.HandleTableFull(); err != nil {
		t.Fatal(err)
	}
	m.Restore(ms)
	o.Restore(s)
	if o.Table().Base() != baseAtSnap || o.Table().Live() != liveAtSnap {
		t.Fatal("second restore diverged: snapshot was mutated")
	}
}

// TestOSSnapshotComplete is the reflection guard: every OS field must be
// snapshotted or explicitly operational.
func TestOSSnapshotComplete(t *testing.T) {
	covered := map[string]bool{
		"nextHBT": true, "entryBytes": true,
		"resizes": true, "exceptions": true, "table": true,
	}
	operational := map[string]bool{
		// mem is runtime wiring, checkpointed by mem.Memory.Snapshot.
		"mem": true,
	}
	typ := reflect.TypeOf(OS{})
	for i := 0; i < typ.NumField(); i++ {
		name := typ.Field(i).Name
		if covered[name] == operational[name] {
			t.Errorf("kernel.OS field %q is not classified as snapshotted or operational; update Snapshot/Restore and this test", name)
		}
	}
	st := reflect.TypeOf(State{})
	if st.NumField() != len(covered) {
		t.Errorf("kernel.State has %d fields, covered set has %d; keep them in sync", st.NumField(), len(covered))
	}
}
