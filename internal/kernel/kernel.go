// Package kernel models the operating-system support AOS requires (§IV-D):
// creation of the per-process hashed bounds table, handling of the new AOS
// exception class (bounds-store failures trigger table resizing;
// bounds-clear and bounds-check failures are memory-safety violations
// signalled to the process), and the address-space layout of the simulated
// process.
package kernel

import (
	"fmt"

	"aos/internal/hbt"
	"aos/internal/mem"
)

// Address-space layout of the simulated process (within the 46-bit VA).
const (
	// TextBase is where synthetic instruction PCs start.
	TextBase = 0x0000_0040_0000
	// GlobalsBase is the static data segment.
	GlobalsBase = 0x0000_1000_0000
	// HeapBase is the allocator arena.
	HeapBase = 0x2000_0000_0000
	// HeapLimit is the arena size cap.
	HeapLimit = 1 << 34
	// ShadowBase is the Watchdog baseline's metadata space.
	ShadowBase = 0x2800_0000_0000
	// HBTBase is where the OS maps hashed bounds tables.
	HBTBase = 0x3000_0000_0000
	// StackTop is the (descending) stack origin.
	StackTop = 0x3FFF_FFFF_0000
)

// ExceptionKind classifies AOS exceptions (§IV-D).
type ExceptionKind int

// Exception kinds, matching the faulting instruction classes the paper
// enumerates: load/store bounds-check failures, bndclr failures (double
// free or invalid free), plus PA authentication failures for the pointer
// integrity extension. Bounds-store failures are not surfaced to the
// process: the OS handles them by resizing the table.
const (
	// ExcBoundsCheck is a load/store whose pointer has no valid bounds —
	// a spatial or temporal memory-safety violation.
	ExcBoundsCheck ExceptionKind = iota
	// ExcBoundsClear is a bndclr that found nothing to clear — double free
	// or free() of an invalid address.
	ExcBoundsClear
	// ExcPAAuth is an autm/autia authentication failure.
	ExcPAAuth
)

var kindNames = [...]string{"bounds-check failure", "bounds-clear failure", "pa-auth failure"}

// String names the kind.
func (k ExceptionKind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("exception(%d)", int(k))
}

// Exception is one recorded AOS exception.
type Exception struct {
	Kind ExceptionKind
	// Addr is the faulting pointer (PAC/AHC bits included when present).
	Addr uint64
	// Detail is a human-readable diagnosis.
	Detail string
}

// Error implements error so exceptions can propagate in fail-fast mode.
func (e Exception) Error() string {
	return fmt.Sprintf("AOS exception: %s at %#x: %s", e.Kind, e.Addr, e.Detail)
}

// ResizeEvent records one HBT resize the OS performed.
type ResizeEvent struct {
	// OldAssoc and NewAssoc are the associativities before and after.
	OldAssoc, NewAssoc int
	// TrafficBytes is the migration's memory traffic (copy old into new).
	TrafficBytes uint64
}

// OS is the modeled kernel state for one process.
type OS struct {
	mem        *mem.Memory
	table      *hbt.Table
	nextHBT    uint64
	entryBytes int

	resizes    []ResizeEvent
	exceptions []Exception
}

// NewOS creates the process context and its initial bounds table (the
// paper starts with a 1-way, 4 MB table of 8-byte compressed bounds).
func NewOS(m *mem.Memory, initialAssoc int) (*OS, error) {
	return NewOSEntrySize(m, initialAssoc, 8)
}

// NewOSEntrySize is NewOS with an explicit bounds-entry size (16 bytes for
// the Fig 15 no-compression ablation).
func NewOSEntrySize(m *mem.Memory, initialAssoc, entryBytes int) (*OS, error) {
	os := &OS{mem: m, nextHBT: HBTBase, entryBytes: entryBytes}
	t, err := os.allocTable(initialAssoc)
	if err != nil {
		return nil, err
	}
	os.table = t
	return os, nil
}

func (o *OS) allocTable(assoc int) (*hbt.Table, error) {
	t, err := hbt.NewTableEntrySize(o.mem, o.nextHBT, assoc, o.entryBytes)
	if err != nil {
		return nil, err
	}
	o.nextHBT += t.SizeBytes()
	// Round the cursor up to keep future tables line-aligned and disjoint.
	o.nextHBT = (o.nextHBT + hbt.WayBytes - 1) &^ uint64(hbt.WayBytes-1)
	return t, nil
}

// Table returns the process's current hashed bounds table.
func (o *OS) Table() *hbt.Table { return o.table }

// Resizes returns the resize history (§IX-A.1 reports these counts).
func (o *OS) Resizes() []ResizeEvent { return o.resizes }

// Exceptions returns every recorded exception.
func (o *OS) Exceptions() []Exception { return o.exceptions }

// ResetExceptions clears the exception log (between experiment phases).
func (o *OS) ResetExceptions() { o.exceptions = nil }

// HandleTableFull services a bndstr insertion failure: allocate a table of
// twice the associativity and migrate every row. Functionally the migration
// is atomic; the timing layer charges the recorded traffic and models the
// non-blocking row-by-row scheme of Fig 10 for address routing.
func (o *OS) HandleTableFull() (*hbt.Table, error) {
	mi, err := o.startMigration()
	if err != nil {
		return nil, err
	}
	var traffic uint64
	for !mi.Done() {
		traffic += mi.Step(4096)
	}
	o.resizes = append(o.resizes, ResizeEvent{
		OldAssoc:     mi.Old.Assoc(),
		NewAssoc:     mi.New.Assoc(),
		TrafficBytes: traffic,
	})
	o.table = mi.New
	return o.table, nil
}

func (o *OS) startMigration() (*hbt.Migration, error) {
	if o.table.Assoc()*2 > hbt.MaxAssoc {
		return nil, fmt.Errorf("kernel: HBT already at maximum associativity %d", o.table.Assoc())
	}
	base := o.nextHBT
	o.nextHBT += uint64(o.table.Assoc()*2) * uint64(hbt.Rows) * hbt.WayBytes
	return hbt.StartMigration(o.table, base)
}

// RaiseException records an AOS exception and returns it. Per §IV-D the
// process's handler chooses to terminate or to report-and-resume; callers
// model that choice by propagating or ignoring the returned exception —
// either way the violation is on record and the faulting access was
// suppressed before architectural state changed (precise exceptions).
func (o *OS) RaiseException(k ExceptionKind, addr uint64, detail string) error {
	exc := Exception{Kind: k, Addr: addr, Detail: detail}
	o.exceptions = append(o.exceptions, exc)
	return exc
}
