package core

import (
	"errors"
	"testing"

	"aos/internal/instrument"
	"aos/internal/isa"
	"aos/internal/kernel"
	"aos/internal/pa"
)

func newMachine(t testing.TB, s instrument.Scheme) *Machine {
	t.Helper()
	m, err := New(Config{Scheme: s})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// recorder captures the emitted stream for instrumentation checks.
type recorder struct{ insts []isa.Inst }

func (r *recorder) Emit(in *isa.Inst) { r.insts = append(r.insts, *in) }

func (r *recorder) ops() []isa.Op {
	out := make([]isa.Op, len(r.insts))
	for i := range r.insts {
		out[i] = r.insts[i].Op
	}
	return out
}

func countOp(ops []isa.Op, op isa.Op) int {
	n := 0
	for _, o := range ops {
		if o == op {
			n++
		}
	}
	return n
}

// --- instrumentation shapes (Fig 5 / Fig 7) ---

func TestAOSMallocInstrumentation(t *testing.T) {
	m := newMachine(t, instrument.AOS)
	var r recorder
	m.SetSink(&r)
	p, err := m.Malloc(100)
	if err != nil {
		t.Fatal(err)
	}
	ops := r.ops()
	if countOp(ops, isa.OpPacma) != 1 || countOp(ops, isa.OpBndstr) != 1 {
		t.Errorf("AOS malloc must add exactly one pacma and one bndstr; got %d/%d",
			countOp(ops, isa.OpPacma), countOp(ops, isa.OpBndstr))
	}
	if !p.Signed() {
		t.Error("AOS malloc returned an unsigned pointer")
	}
	if pa.AHC(p.Raw) == 0 {
		t.Error("signed pointer has zero AHC")
	}
	// pacma must precede bndstr.
	pacIdx, bndIdx := -1, -1
	for i, o := range ops {
		if o == isa.OpPacma && pacIdx < 0 {
			pacIdx = i
		}
		if o == isa.OpBndstr {
			bndIdx = i
		}
	}
	if pacIdx > bndIdx {
		t.Error("bndstr emitted before pacma")
	}
}

func TestAOSFreeInstrumentation(t *testing.T) {
	m := newMachine(t, instrument.AOS)
	p, err := m.Malloc(100)
	if err != nil {
		t.Fatal(err)
	}
	var r recorder
	m.SetSink(&r)
	if err := m.Free(p); err != nil {
		t.Fatal(err)
	}
	ops := r.ops()
	// Fig 7b: bndclr, xpacm, free body, pacma.
	if countOp(ops, isa.OpBndclr) != 1 || countOp(ops, isa.OpXpacm) != 1 || countOp(ops, isa.OpPacma) != 1 {
		t.Errorf("AOS free shape wrong: bndclr=%d xpacm=%d pacma=%d",
			countOp(ops, isa.OpBndclr), countOp(ops, isa.OpXpacm), countOp(ops, isa.OpPacma))
	}
	if ops[0] != isa.OpBndclr {
		t.Errorf("first op of AOS free = %v, want bndclr", ops[0])
	}
	if ops[len(ops)-1] != isa.OpPacma {
		t.Errorf("last op of AOS free = %v, want pacma (re-sign)", ops[len(ops)-1])
	}
}

func TestBaselineHasNoInstrumentation(t *testing.T) {
	m := newMachine(t, instrument.Baseline)
	var r recorder
	m.SetSink(&r)
	p, _ := m.Malloc(64)
	if err := m.Load(p, 0, AccessOpts{}); err != nil {
		t.Fatal(err)
	}
	if err := m.Free(p); err != nil {
		t.Fatal(err)
	}
	ops := r.ops()
	for _, op := range []isa.Op{isa.OpPacma, isa.OpBndstr, isa.OpBndclr, isa.OpXpacm, isa.OpWDCheck} {
		if countOp(ops, op) != 0 {
			t.Errorf("baseline emitted %v", op)
		}
	}
	if p.Signed() {
		t.Error("baseline pointer is signed")
	}
}

func TestWatchdogInstrumentation(t *testing.T) {
	m := newMachine(t, instrument.Watchdog)
	var r recorder
	m.SetSink(&r)
	p, _ := m.Malloc(64)
	if err := m.Load(p, 8, AccessOpts{}); err != nil {
		t.Fatal(err)
	}
	ops := r.ops()
	if countOp(ops, isa.OpWDSetID) != 1 {
		t.Error("watchdog malloc missing setid")
	}
	if countOp(ops, isa.OpWDCheck) == 0 {
		t.Error("watchdog access missing check micro-op")
	}
	// Pointer arithmetic must propagate metadata.
	r.insts = nil
	m.PointerArith(p, 8)
	if countOp(r.ops(), isa.OpWDMeta) != 1 {
		t.Error("watchdog pointer arithmetic missing metadata propagation")
	}
}

func TestPACallInstrumentation(t *testing.T) {
	m := newMachine(t, instrument.PA)
	var r recorder
	m.SetSink(&r)
	m.Call()
	m.Ret()
	ops := r.ops()
	if countOp(ops, isa.OpPacia) != 1 || countOp(ops, isa.OpAutia) != 1 {
		t.Errorf("PA call/ret: pacia=%d autia=%d, want 1/1",
			countOp(ops, isa.OpPacia), countOp(ops, isa.OpAutia))
	}
	// Baseline call/ret must not sign.
	mb := newMachine(t, instrument.Baseline)
	var rb recorder
	mb.SetSink(&rb)
	mb.Call()
	mb.Ret()
	if countOp(rb.ops(), isa.OpPacia) != 0 {
		t.Error("baseline call signs the return address")
	}
}

func TestPAOnLoadAuthentication(t *testing.T) {
	// PA: loaded pointers authenticated with autia; PA+AOS with autm.
	m := newMachine(t, instrument.PA)
	p, _ := m.Malloc(64)
	var r recorder
	m.SetSink(&r)
	if err := m.Load(p, 0, AccessOpts{Pointer: true}); err != nil {
		t.Fatal(err)
	}
	if countOp(r.ops(), isa.OpAutia) != 1 {
		t.Error("PA pointer load missing autia")
	}

	m2 := newMachine(t, instrument.PAAOS)
	p2, _ := m2.Malloc(64)
	var r2 recorder
	m2.SetSink(&r2)
	if err := m2.Load(p2, 0, AccessOpts{Pointer: true}); err != nil {
		t.Fatal(err)
	}
	if countOp(r2.ops(), isa.OpAutm) != 1 {
		t.Error("PA+AOS pointer load missing autm")
	}
	if countOp(r2.ops(), isa.OpAutia) != 0 {
		t.Error("PA+AOS re-authenticates AOS-signed pointers with autia (Fig 13 says autm)")
	}
}

// --- memory-safety detection (Fig 12) ---

func TestDetectHeapOOBReadWrite(t *testing.T) {
	m := newMachine(t, instrument.AOS)
	const n = 10
	p, err := m.Malloc(8 * n)
	if err != nil {
		t.Fatal(err)
	}
	// In-bounds accesses succeed.
	for i := uint64(0); i < n; i++ {
		if err := m.Load(p, i*8, AccessOpts{}); err != nil {
			t.Fatalf("in-bounds load at %d failed: %v", i, err)
		}
	}
	// ptr[N+1]: bounds-checking failure on both read and write.
	if err := m.Load(p, (n+1)*8, AccessOpts{}); err == nil {
		t.Error("OOB read undetected")
	}
	if err := m.Store(p, (n+1)*8, AccessOpts{}); err == nil {
		t.Error("OOB write undetected")
	}
	excs := m.Exceptions()
	if len(excs) != 2 {
		t.Fatalf("recorded %d exceptions, want 2", len(excs))
	}
	for _, e := range excs {
		if e.Kind != kernel.ExcBoundsCheck {
			t.Errorf("exception kind = %v, want bounds-check", e.Kind)
		}
	}
}

func TestDetectUseAfterFree(t *testing.T) {
	m := newMachine(t, instrument.AOS)
	p, _ := m.Malloc(64)
	if err := m.Free(p); err != nil {
		t.Fatal(err)
	}
	// The freed pointer stays signed ("locked"); its bounds are gone.
	if err := m.Load(p, 0, AccessOpts{}); err == nil {
		t.Error("use-after-free undetected")
	}
	excs := m.Exceptions()
	if len(excs) != 1 || excs[0].Kind != kernel.ExcBoundsCheck {
		t.Fatalf("exceptions = %+v", excs)
	}
}

func TestDetectDoubleFree(t *testing.T) {
	m := newMachine(t, instrument.AOS)
	p, _ := m.Malloc(64)
	if err := m.Free(p); err != nil {
		t.Fatal(err)
	}
	if err := m.Free(p); err == nil {
		t.Fatal("double free undetected")
	}
	excs := m.Exceptions()
	if len(excs) != 1 || excs[0].Kind != kernel.ExcBoundsClear {
		t.Fatalf("double free exceptions = %+v", excs)
	}
}

func TestDetectInvalidFree(t *testing.T) {
	// free() of a crafted, never-signed pointer: bndclr fails (the House
	// of Spirit defense — only valid signed pointers can be freed).
	m := newMachine(t, instrument.AOS)
	crafted := Ptr{Raw: 0x1000_0010} // unsigned global address
	if err := m.Free(crafted); err == nil {
		t.Fatal("free of a crafted unsigned pointer undetected")
	}
	excs := m.Exceptions()
	if len(excs) != 1 || excs[0].Kind != kernel.ExcBoundsClear {
		t.Fatalf("invalid free exceptions = %+v", excs)
	}
	// Crucially the allocator was never reached: the next malloc cannot
	// return the crafted address.
	p, _ := m.Malloc(0x30)
	if p.VA() == crafted.VA() {
		t.Error("crafted chunk entered the allocator despite AOS")
	}
}

func TestViolationErrorsAreKernelExceptions(t *testing.T) {
	m := newMachine(t, instrument.AOS)
	p, _ := m.Malloc(16)
	err := m.Load(p, 1024, AccessOpts{})
	var exc kernel.Exception
	if !errors.As(err, &exc) {
		t.Fatalf("violation error = %v (%T), want kernel.Exception", err, err)
	}
	if exc.Kind != kernel.ExcBoundsCheck {
		t.Errorf("kind = %v", exc.Kind)
	}
}

func TestPreciseExceptionSuppressesData(t *testing.T) {
	m := newMachine(t, instrument.AOS)
	secret, _ := m.Malloc(64)
	if err := m.StoreU64(secret, 0, 0x5EC12E7); err != nil {
		t.Fatal(err)
	}
	small, _ := m.Malloc(16)
	// Try to read the secret via an OOB offset from the small chunk: the
	// load must be suppressed, returning zero.
	off := secret.VA() - small.VA()
	v, err := m.LoadU64(small, off)
	if err == nil {
		t.Fatal("OOB read undetected")
	}
	if v != 0 {
		t.Errorf("suppressed load leaked %#x", v)
	}
	// An OOB write must not corrupt memory.
	if err := m.StoreU64(small, off, 0xBAD); err == nil {
		t.Fatal("OOB write undetected")
	}
	if got, _ := m.LoadU64(secret, 0); got != 0x5EC12E7 {
		t.Errorf("OOB write corrupted memory: %#x", got)
	}
}

func TestDanglingPointerAcrossReallocation(t *testing.T) {
	// After free+realloc of the same memory by a new owner, the stale
	// pointer must still fault: its PAC maps to bounds cleared at free
	// time (the new owner's bounds are under its own base -> same PAC only
	// if same base; then bounds DO match — the paper's locking relies on
	// the chunk base: same base + same PAC means the dangling pointer
	// aliases the new allocation, which AOS accepts by design for exact
	// reuse; an attack needs a *different* chunk).
	m := newMachine(t, instrument.AOS)
	p, _ := m.Malloc(1 << 13) // too big for tcache/fastbin reuse games
	if err := m.Free(p); err != nil {
		t.Fatal(err)
	}
	q, _ := m.Malloc(1 << 12) // splits the freed chunk: same base, new bounds
	_ = q
	// Access beyond the new allocation through the stale pointer: the old
	// bounds are gone, the new bounds stop at 4096.
	if err := m.Load(p, 1<<12+64, AccessOpts{}); err == nil {
		t.Error("stale pointer reached beyond the re-allocated object")
	}
}

func TestWatchdogDetectsUAF(t *testing.T) {
	m := newMachine(t, instrument.Watchdog)
	p, _ := m.Malloc(64)
	if err := m.Free(p); err != nil {
		t.Fatal(err)
	}
	if err := m.Load(p, 0, AccessOpts{}); err == nil {
		t.Error("watchdog missed UAF")
	}
}

func TestWatchdogDetectsOOB(t *testing.T) {
	m := newMachine(t, instrument.Watchdog)
	p, _ := m.Malloc(64)
	if err := m.Load(p, 4096, AccessOpts{}); err == nil {
		t.Error("watchdog missed OOB")
	}
}

func TestAutMDetectsForgedAHC(t *testing.T) {
	m := newMachine(t, instrument.PAAOS)
	p, _ := m.Malloc(64)
	forged := Ptr{Raw: p.Raw &^ (uint64(3) << pa.AHCShift)} // zero the AHC
	if err := m.AutM(forged); err == nil {
		t.Error("autm accepted a zero-AHC pointer")
	}
	if err := m.AutM(p); err != nil {
		t.Errorf("autm rejected a valid pointer: %v", err)
	}
}

// --- mechanics ---

func TestHomeWayMatchesHBT(t *testing.T) {
	m := newMachine(t, instrument.AOS)
	var r recorder
	m.SetSink(&r)
	p, _ := m.Malloc(256)
	if err := m.Load(p, 128, AccessOpts{}); err != nil {
		t.Fatal(err)
	}
	var bndstr, load *isa.Inst
	for i := range r.insts {
		switch r.insts[i].Op {
		case isa.OpBndstr:
			bndstr = &r.insts[i]
		case isa.OpLoad:
			if r.insts[i].Signed {
				load = &r.insts[i]
			}
		}
	}
	if bndstr == nil || load == nil {
		t.Fatal("missing instrumented instructions")
	}
	if bndstr.HomeWay != load.HomeWay {
		t.Errorf("bndstr way %d != checked-load way %d", bndstr.HomeWay, load.HomeWay)
	}
	if load.RowAddr != m.Table().RowAddr(load.PAC) {
		t.Error("RowAddr stale")
	}
	if load.Assoc != uint8(m.Table().Assoc()) {
		t.Error("Assoc stale")
	}
}

func TestHBTResizeOnPACCollisionOverflow(t *testing.T) {
	// Force >8 simultaneously live chunks with the same PAC by brute
	// force: allocate until some PAC has 9 entries. With a 1-way table
	// that must trigger exactly the OS resize path.
	m := newMachine(t, instrument.AOS)
	before := m.Table().Assoc()
	var resized bool
	for i := 0; i < 400000 && !resized; i++ {
		if _, err := m.Malloc(32); err != nil {
			t.Fatal(err)
		}
		resized = len(m.OS.Resizes()) > 0
	}
	if !resized {
		t.Fatal("no resize after 400k live allocations into a 1-way table")
	}
	if m.Table().Assoc() != before*2 {
		t.Errorf("assoc after resize = %d, want %d", m.Table().Assoc(), before*2)
	}
	ev := m.OS.Resizes()[0]
	if ev.TrafficBytes == 0 {
		t.Error("resize recorded no migration traffic")
	}
	if len(m.Exceptions()) != 0 {
		t.Error("resize raised user-visible exceptions")
	}
}

func TestCountsTrackFig16Classes(t *testing.T) {
	m := newMachine(t, instrument.AOS)
	p, _ := m.Malloc(64)
	if err := m.Load(p, 0, AccessOpts{}); err != nil {
		t.Fatal(err)
	}
	m.RawLoad(kernel.GlobalsBase, DepFree)
	if err := m.Free(p); err != nil {
		t.Fatal(err)
	}
	c := m.Counts()
	if c.SignedLoads != 1 {
		t.Errorf("SignedLoads = %d, want 1", c.SignedLoads)
	}
	if c.UnsignedLoads == 0 {
		t.Error("allocator/stack loads not counted as unsigned")
	}
	if c.BoundsOps() != 2 { // bndstr + bndclr
		t.Errorf("BoundsOps = %d, want 2", c.BoundsOps())
	}
	if c.PAOps() < 3 { // pacma x2 + xpacm
		t.Errorf("PAOps = %d, want >= 3", c.PAOps())
	}
}

func TestPCsCycleThroughCodeFootprint(t *testing.T) {
	m, err := New(Config{Scheme: instrument.Baseline, CodeFootprint: 64})
	if err != nil {
		t.Fatal(err)
	}
	var r recorder
	m.SetSink(&r)
	m.Compute(40, DepFree)
	seen := map[uint64]bool{}
	for _, in := range r.insts {
		if in.PC < kernel.TextBase || in.PC >= kernel.TextBase+64 {
			t.Fatalf("PC %#x outside footprint", in.PC)
		}
		seen[in.PC] = true
	}
	if len(seen) != 16 {
		t.Errorf("distinct PCs = %d, want 16", len(seen))
	}
}

func TestPointerArithPreservesPAC(t *testing.T) {
	m := newMachine(t, instrument.AOS)
	p, _ := m.Malloc(256)
	q := m.PointerArith(p, 64)
	if pa.PAC(q.Raw) != pa.PAC(p.Raw) || pa.AHC(q.Raw) != pa.AHC(p.Raw) {
		t.Error("pointer arithmetic corrupted PAC/AHC")
	}
	if q.VA() != p.VA()+64 {
		t.Error("pointer arithmetic wrong address")
	}
	// The derived pointer checks against the same bounds.
	if err := m.Load(q, 0, AccessOpts{}); err != nil {
		t.Errorf("derived in-bounds pointer faulted: %v", err)
	}
	if err := m.Load(q, 256, AccessOpts{}); err == nil {
		t.Error("derived OOB pointer undetected")
	}
}
