package core

import (
	"aos/internal/instrument"
	"aos/internal/isa"
	"aos/internal/kernel"
	"aos/internal/pa"
)

// Realloc simulates an instrumented realloc(p, size) call. The protocol
// composes the free-side and allocation-side sequences of the active
// scheme around the allocator call: under AOS (Fig 7) that is
//
//	bndclr(old) ; xpacm ; call realloc ; ret ;
//	pacma(old, xzr)            — temporal-safety lock on the old value
//	pacma(new, size) ; bndstr  — sign and insert the (possibly moved) chunk
//
// so the old signed pointer is dead after every realloc — even an in-place
// one, whose fresh signature differs because the size is a PAC modifier.
// realloc(p, 0) behaves as free(p); realloc with a nil pointer as malloc.
// PACSan/CryptSan both report realloc chains as the classic blind spot of
// PA-based schemes, which is why the sequence is spelled out here rather
// than composed ad hoc by workloads.
func (m *Machine) Realloc(p Ptr, size uint64) (Ptr, error) {
	if p.Raw == 0 {
		return m.Malloc(size)
	}
	if size == 0 {
		return Ptr{}, m.Free(p)
	}
	if m.tel != nil {
		defer m.telRefresh()
	}
	switch {
	case m.Scheme.SignsDataPointers():
		return m.reallocAOS(p, size)
	case m.Scheme.HasWatchdogChecks():
		return m.reallocWatchdog(p, size)
	case m.Scheme.UsesMemoryTagging():
		return m.reallocMTE(p, size)
	default:
		nva, _, err := m.reallocCall(p.VA(), size)
		if err != nil {
			return Ptr{}, err
		}
		return Ptr{Raw: nva, Size: size}, nil
	}
}

// reallocCall is the allocator portion shared by every scheme: the call,
// the allocator's metadata traffic, and — when the chunk moved — the copy
// traffic, one load/store pair per 64-byte line.
func (m *Machine) reallocCall(va, size uint64) (nva uint64, moved bool, err error) {
	old, _ := m.Heap.RequestedSize(va)
	m.Call()
	nva, err = m.Heap.Realloc(va, size)
	m.emitAllocatorWork()
	if err == nil && nva != va {
		moved = true
		cp := old
		if size < cp {
			cp = size
		}
		for off := uint64(0); off < cp; off += 64 {
			m.rawAccess(va+off, false, DepChase)
			m.rawAccess(nva+off, true, DepChase)
		}
	}
	m.Ret()
	return nva, moved, err
}

// reallocAOS composes Fig 7b's free sequence with Fig 7a's allocation
// sequence around the allocator call.
func (m *Machine) reallocAOS(p Ptr, size uint64) (Ptr, error) {
	va := p.VA()
	pacv := pa.PAC(p.Raw)
	table := m.OS.Table()

	way, found := table.Clear(pacv, va)
	if m.tel != nil && found {
		m.tel.hbtClears.Add(1)
	}
	homeWay := int8(way)
	var excErr error
	if !found || !p.Signed() {
		homeWay = -1
		excErr = m.OS.RaiseException(kernel.ExcBoundsClear, p.Raw,
			"bndclr found no bounds: realloc of a stale or foreign pointer")
	}
	m.emit(isa.Inst{Op: isa.OpBndclr, Addr: p.Raw, Signed: p.Signed(),
		PAC: pacv, AHC: pa.AHC(p.Raw), HomeWay: homeWay,
		Assoc: uint8(table.Assoc()), RowAddr: table.RowAddr(pacv),
		Dest: isa.RegNone, Src1: m.lastLoad, Src2: isa.RegNone})
	if excErr != nil {
		// Exception recorded, realloc suppressed (the handler blocked the
		// stale pointer before the allocator saw it).
		return Ptr{}, excErr
	}

	dPtr := m.allocReg()
	m.emit(isa.Inst{Op: isa.OpXpacm, Dest: dPtr, Src1: m.lastLoad, Src2: isa.RegNone})

	nva, _, err := m.reallocCall(va, size)

	// pacma with xzr size: lock the old pointer value. Applied whether or
	// not the chunk moved — an in-place realloc re-signs with the new size
	// as modifier, so the old signature must die here too.
	m.emit(isa.Inst{Op: isa.OpPacma, Addr: m.PAUnit.SignData(pa.KeyDA, va, m.sp, 0),
		Dest: dPtr, Src1: dPtr, Src2: isa.RegNone})
	if err != nil {
		return Ptr{}, err
	}
	return m.signAndStore(nva, size)
}

// reallocWatchdog invalidates the old identifier (Fig 5a case 2), calls
// the allocator, and assigns a fresh identifier to the resulting chunk —
// in place or moved, the old key is dead either way.
func (m *Machine) reallocWatchdog(p Ptr, size uint64) (Ptr, error) {
	va := p.VA()
	if lock, ok := m.wdLockOf[va]; ok {
		m.Mem.WriteU64(lock, 0) // INVALID
		m.rawAccess(lock, true, DepFree)
		m.rawAccess(lock, true, DepFree) // add_free_list(id.lock)
		m.emit(isa.Inst{Op: isa.OpWDClrID, Dest: isa.RegNone, Src1: isa.RegNone, Src2: isa.RegNone})
		m.wdFreeLocks = append(m.wdFreeLocks, lock)
	}
	nva, _, err := m.reallocCall(va, size)
	if err != nil {
		return Ptr{}, err
	}
	return Ptr{Raw: nva, Size: size, WDKey: m.watchdogSetID(nva, size)}, nil
}

// reallocMTE checks the pointer tag, calls the allocator, retags the old
// extent to 0 and the new extent with a fresh allocation tag, so stale
// pointers fault exactly as they do after free+malloc.
func (m *Machine) reallocMTE(p Ptr, size uint64) (Ptr, error) {
	va := p.VA()
	if ptag := mteTagOf(p.Raw); ptag != m.mteMemTag(va) {
		return Ptr{}, m.OS.RaiseException(kernel.ExcBoundsClear, p.Raw,
			"mte: tag mismatch on realloc (stale or invalid pointer)")
	}
	oldSize, _ := m.Heap.RequestedSize(va)
	nva, _, err := m.reallocCall(va, size)
	if err != nil {
		return Ptr{}, err
	}
	// Retag the old extent back to 0 (also for in-place growth: granules
	// beyond the new extent must not keep the stale tag), then tag the new
	// extent — irg + stg per granule, as on malloc.
	for g, n := uint64(0), mteGranules(oldSize); g < n; g++ {
		gva := va + g*instrument.TagGranule
		delete(m.mteTags, gva>>mteGranuleShift)
		m.emit(isa.Inst{Op: isa.OpSTG, Addr: mteTagAddr(gva), Size: instrument.TagGranule,
			Dest: isa.RegNone, Src1: isa.RegNone, Src2: isa.RegNone})
	}
	return m.mteTagAlloc(nva, size)
}
