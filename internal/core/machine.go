// Package core implements the functional AOS machine: it executes workload
// operations (allocation, pointer dereference, computation, control flow)
// against the simulated heap, PA unit, hashed bounds table and OS, applies
// the active protection scheme's instrumentation (§IV), performs the
// architectural bounds checks, and emits the resulting dynamic instruction
// stream to a Sink (usually the timing core).
//
// The machine resolves everything the timing model needs but cannot know:
// effective addresses, pointer signedness, the HBT way where each access's
// bounds reside, resize events, and memory-safety verdicts.
package core

import (
	"fmt"

	"aos/internal/hbt"
	"aos/internal/heap"
	"aos/internal/instrument"
	"aos/internal/isa"
	"aos/internal/kernel"
	"aos/internal/mem"
	"aos/internal/pa"
)

// Dep tells the machine how to wire an operation's source register, which
// controls the instruction-level parallelism the timing core sees.
type Dep uint8

// Dependency shapes.
const (
	// DepFree has no interesting dependency (ready at dispatch).
	DepFree Dep = iota
	// DepChain depends on the most recent ALU result (serial chain).
	DepChain
	// DepChase depends on the most recent load result (pointer chasing).
	DepChase
)

// AccessOpts qualifies a memory access.
type AccessOpts struct {
	// Dep selects the address register's producer.
	Dep Dep
	// Pointer marks that the accessed value is itself a pointer: Watchdog
	// must move its shadow metadata, and PA performs on-load
	// authentication / pre-store signing.
	Pointer bool
}

// Ptr is a pointer value as the instrumented program holds it: under
// AOS/PA+AOS the raw value carries the PAC and AHC in its upper bits.
type Ptr struct {
	// Raw is the architectural pointer value.
	Raw uint64
	// Size is the allocation's requested size (0 when unknown/foreign).
	Size uint64
	// WDKey is the Watchdog identifier travelling with the pointer (the
	// fat-pointer metadata of Fig 5a); zero outside the Watchdog scheme.
	WDKey uint64
}

// VA returns the raw virtual address (upper bits stripped).
func (p Ptr) VA() uint64 { return pa.VA(p.Raw) }

// Signed reports whether the pointer carries a nonzero AHC.
func (p Ptr) Signed() bool { return pa.IsSigned(p.Raw) }

// Config parameterizes the machine.
type Config struct {
	// Scheme is the protection configuration to simulate.
	Scheme instrument.Scheme
	// InitialHBTAssoc is the starting bounds-table associativity
	// (paper: 1).
	InitialHBTAssoc int
	// CodeFootprint is the synthetic static code size in bytes that PCs
	// cycle through (drives I-cache behaviour). Zero means 16 KiB.
	CodeFootprint uint64
	// UncompressedBounds disables the 8-byte bounds compression (Fig 15
	// ablation): entries take 16 bytes, so each HBT way holds only four.
	UncompressedBounds bool
	// Hardening overrides the allocator hardening features. nil uses
	// heap.DefaultHardening() when the scheme has a hardened allocator
	// and no hardening otherwise.
	Hardening *heap.Hardening
}

// Machine is the functional simulator state for one process.
type Machine struct {
	Mem    *mem.Memory
	Heap   *heap.Allocator
	PAUnit *pa.Unit
	OS     *kernel.OS
	Scheme instrument.Scheme

	sink   isa.Sink
	counts isa.Counts
	// batch, when non-nil, buffers emitted instructions so the sink
	// receives them in EmitBatch-sized chunks (see SetBatch). counts are
	// still updated per instruction at emit time, so Counts() — and the
	// warmup boundary derived from it — are independent of batching.
	batch []isa.Inst

	pc       uint64
	codeSize uint64
	sp       uint64

	nextReg  uint8
	lastALU  uint8
	lastLoad uint8

	// Watchdog state: allocation identifiers and lock locations.
	wdNextKey    uint64
	wdLockCursor uint64
	wdFreeLocks  []uint64
	wdLockOf     map[uint64]uint64 // chunk base VA -> lock address
	wdKeyOf      map[uint64]uint64 // chunk base VA -> key

	// MTE state: memory tags by granule index, and the deterministic
	// allocation-tag cycle (see mte.go).
	mteTags map[uint64]uint8
	mteNext uint8

	// tel holds the machine-side flight-recorder probes (nil when
	// telemetry is disabled; see telemetry.go).
	tel *machineProbes
}

// New builds a machine for the given configuration.
func New(cfg Config) (*Machine, error) {
	if cfg.InitialHBTAssoc == 0 {
		cfg.InitialHBTAssoc = 1
	}
	if cfg.CodeFootprint == 0 {
		cfg.CodeFootprint = 16 << 10
	}
	m := mem.New()
	entryBytes := 8
	if cfg.UncompressedBounds {
		entryBytes = 16
	}
	os, err := kernel.NewOSEntrySize(m, cfg.InitialHBTAssoc, entryBytes)
	if err != nil {
		return nil, err
	}
	h := heap.New(m, kernel.HeapBase, kernel.HeapLimit)
	switch {
	case cfg.Hardening != nil:
		h.SetHardening(*cfg.Hardening)
	case cfg.Scheme.HasHardenedAllocator():
		h.SetHardening(heap.DefaultHardening())
	}
	var mteTags map[uint64]uint8
	if cfg.Scheme.UsesMemoryTagging() {
		mteTags = make(map[uint64]uint8)
	}
	return &Machine{
		Mem:          m,
		Heap:         h,
		mteTags:      mteTags,
		PAUnit:       pa.NewDefaultUnit(),
		OS:           os,
		Scheme:       cfg.Scheme,
		sink:         isa.NullSink{},
		codeSize:     cfg.CodeFootprint &^ 3,
		sp:           kernel.StackTop,
		wdLockCursor: kernel.ShadowBase,
		wdLockOf:     make(map[uint64]uint64),
		wdKeyOf:      make(map[uint64]uint64),
	}, nil
}

// SetSink directs the emitted instruction stream (nil restores discard).
// Pending batched instructions are flushed to the old sink first.
func (m *Machine) SetSink(s isa.Sink) {
	m.Flush()
	if s == nil {
		s = isa.NullSink{}
	}
	m.sink = s
}

// EmitBatchSize is the default emission batch capacity: large enough to
// amortize the per-batch interface dispatch into noise, small enough that
// the buffer stays L1/L2-resident.
const EmitBatchSize = 512

// SetBatch switches emission batching: n > 1 buffers up to n instructions
// and delivers them through the sink's EmitBatch (isa.BatchSink) — or
// one-at-a-time Emit for plain sinks — while n <= 1 restores immediate
// per-instruction delivery. Pending instructions are flushed on every
// transition. Batching reorders nothing: each sink sees the exact scalar
// instruction order, just in chunks, so timing results are unchanged.
// Callers that read sink-side state mid-stream (e.g. resetting timing
// statistics at a warmup boundary) must Flush first; workload.RunCtx does.
func (m *Machine) SetBatch(n int) {
	m.Flush()
	if n <= 1 {
		m.batch = nil
		return
	}
	m.batch = make([]isa.Inst, 0, n)
}

// Flush delivers any buffered instructions to the sink. It is a no-op
// when batching is off or the buffer is empty.
func (m *Machine) Flush() {
	if len(m.batch) == 0 {
		return
	}
	isa.EmitAll(m.sink, m.batch)
	m.batch = m.batch[:0]
}

// Counts returns the dynamic instruction statistics accumulated so far
// (the Fig 16 data).
func (m *Machine) Counts() isa.Counts { return m.counts }

// Exceptions returns the recorded memory-safety exceptions.
func (m *Machine) Exceptions() []kernel.Exception { return m.OS.Exceptions() }

// Table returns the current hashed bounds table.
func (m *Machine) Table() *hbt.Table { return m.OS.Table() }

func (m *Machine) emit(in isa.Inst) {
	in.PC = kernel.TextBase + m.pc
	m.pc += 4
	if m.pc >= m.codeSize {
		m.pc = 0
	}
	if m.batch != nil {
		//aoslint:allow hotpathalloc — batch is preallocated to BatchSize and flushed at cap; append never grows
		m.batch = append(m.batch, in)
		m.counts.Add(&m.batch[len(m.batch)-1])
		if len(m.batch) == cap(m.batch) {
			m.Flush()
		}
		return
	}
	m.emitScalar(in)
}

// emitScalar delivers one instruction straight to the sink. It is a
// separate function so that taking the instruction's address for the
// interface call — which makes it escape — heap-allocates only on the
// scalar path, keeping batched emit() allocation-free.
func (m *Machine) emitScalar(in isa.Inst) {
	m.counts.Add(&in) //aoslint:allow hotpathalloc — the escape is this function's documented purpose: it fences the scalar-path allocation off the batched path
	m.sink.Emit(&in)
}

func (m *Machine) allocReg() uint8 {
	m.nextReg++
	if m.nextReg >= isa.NumRegs-2 {
		m.nextReg = 1
	}
	return m.nextReg
}

func (m *Machine) srcFor(d Dep) uint8 {
	switch d {
	case DepChain:
		return m.lastALU
	case DepChase:
		return m.lastLoad
	default:
		return isa.RegNone
	}
}

// --- computation and control flow ---

// Compute emits n integer ALU operations with the given dependency shape.
func (m *Machine) Compute(n int, dep Dep) {
	for i := 0; i < n; i++ {
		d := m.allocReg()
		m.emit(isa.Inst{Op: isa.OpALU, Dest: d, Src1: m.srcFor(dep), Src2: isa.RegNone})
		m.lastALU = d
	}
}

// ComputeMul emits n multiply-class (3-cycle) operations.
func (m *Machine) ComputeMul(n int, dep Dep) {
	for i := 0; i < n; i++ {
		d := m.allocReg()
		m.emit(isa.Inst{Op: isa.OpMul, Dest: d, Src1: m.srcFor(dep), Src2: isa.RegNone})
		m.lastALU = d
	}
}

// ComputeFP emits n floating-point operations.
func (m *Machine) ComputeFP(n int, dep Dep) {
	for i := 0; i < n; i++ {
		d := m.allocReg()
		m.emit(isa.Inst{Op: isa.OpFP, Dest: d, Src1: m.srcFor(dep), Src2: isa.RegNone})
		m.lastALU = d
	}
}

// Branch emits a conditional branch with the given static id and outcome.
func (m *Machine) Branch(id uint32, taken bool) {
	m.emit(isa.Inst{Op: isa.OpBranch, BranchID: id, Taken: taken,
		Dest: isa.RegNone, Src1: m.lastALU, Src2: isa.RegNone})
}

// Call emits a function-call event: the call itself, the frame push, and —
// under return-address signing — the pacia of the link register (Fig 3).
func (m *Machine) Call() {
	lr := isa.RegNone
	if m.Scheme.HasReturnAddressSigning() {
		d := m.allocReg()
		m.emit(isa.Inst{Op: isa.OpPacia, Dest: d, Src1: isa.RegNone, Src2: isa.RegNone})
		lr = d
	}
	m.emit(isa.Inst{Op: isa.OpCall, Dest: isa.RegNone, Src1: isa.RegNone, Src2: isa.RegNone})
	m.sp -= 16
	// stp fp, lr: the frame push stores the (possibly signed) link register,
	// so it waits on pacia's 4-cycle crypto.
	m.emit(isa.Inst{Op: isa.OpStore, Addr: m.sp, Size: 8,
		Dest: isa.RegNone, Src1: isa.RegNone, Src2: lr})
}

// Ret emits the matching return: frame pop, autia under return-address
// signing, and the return.
func (m *Machine) Ret() {
	m.rawAccess(m.sp, false, DepFree) // ldp fp, lr
	m.sp += 16
	src := m.lastLoad
	if m.Scheme.HasReturnAddressSigning() {
		d := m.allocReg()
		m.emit(isa.Inst{Op: isa.OpAutia, Dest: d, Src1: m.lastLoad, Src2: isa.RegNone})
		src = d
	}
	m.emit(isa.Inst{Op: isa.OpRet, Dest: isa.RegNone, Src1: src, Src2: isa.RegNone})
}

// --- raw (unsigned) memory accesses: stack, globals, allocator metadata ---

func (m *Machine) rawAccess(addr uint64, store bool, dep Dep) {
	// Direct stack/global accesses have statically known bounds; Watchdog's
	// check micro-ops guard pointer dereferences (the heap path).
	if store {
		m.emit(isa.Inst{Op: isa.OpStore, Addr: addr, Size: 8,
			Dest: isa.RegNone, Src1: m.srcFor(dep), Src2: m.lastALU})
		return
	}
	d := m.allocReg()
	m.emit(isa.Inst{Op: isa.OpLoad, Addr: addr, Size: 8,
		Dest: d, Src1: m.srcFor(dep), Src2: isa.RegNone})
	m.lastLoad = d
}

// shadowAccess is a Watchdog shadow-memory micro-op: it moves identifier
// metadata and is itself never check-instrumented.
func (m *Machine) shadowAccess(addr uint64, store bool, dep Dep) {
	if store {
		m.emit(isa.Inst{Op: isa.OpStore, Addr: addr, Size: 8,
			Dest: isa.RegNone, Src1: m.srcFor(dep), Src2: m.lastALU})
		return
	}
	d := m.allocReg()
	m.emit(isa.Inst{Op: isa.OpLoad, Addr: addr, Size: 8,
		Dest: d, Src1: m.srcFor(dep), Src2: isa.RegNone})
}

// RawLoad performs an unchecked load from an arbitrary address (stack or
// global data).
func (m *Machine) RawLoad(addr uint64, dep Dep) { m.rawAccess(addr, false, dep) }

// RawStore performs an unchecked store.
func (m *Machine) RawStore(addr uint64, dep Dep) { m.rawAccess(addr, true, dep) }

// emitAllocatorWork replays the allocator's recorded metadata accesses as
// unsigned memory instructions (the allocator operates on stripped
// pointers; that is what xpacm before free() is for).
func (m *Machine) emitAllocatorWork() {
	for _, acc := range m.Heap.DrainAccesses() {
		m.rawAccess(acc.Addr, acc.Store, DepChase)
	}
}

// --- allocation ---

// Malloc simulates an instrumented malloc() call (Fig 7a): the call, the
// allocator's own work, and under AOS the pacma + bndstr pair.
func (m *Machine) Malloc(size uint64) (Ptr, error) {
	m.Call()
	va, err := m.Heap.Malloc(size)
	m.emitAllocatorWork()
	m.Ret()
	if err != nil {
		return Ptr{}, err
	}

	if m.tel != nil {
		defer m.telRefresh()
	}
	switch {
	case m.Scheme.SignsDataPointers():
		return m.signAndStore(va, size)
	case m.Scheme.HasWatchdogChecks():
		return Ptr{Raw: va, Size: size, WDKey: m.watchdogSetID(va, size)}, nil
	case m.Scheme.UsesMemoryTagging():
		return m.mteTagAlloc(va, size)
	}
	return Ptr{Raw: va, Size: size}, nil
}

// Calloc is Malloc with zeroing (the zeroing stores are emitted).
func (m *Machine) Calloc(n, size uint64) (Ptr, error) {
	p, err := m.Malloc(n * size)
	if err != nil {
		return Ptr{}, err
	}
	m.Mem.Zero(p.VA(), n*size)
	for off := uint64(0); off < n*size; off += 64 {
		m.rawAccess(p.VA()+off, true, DepFree)
	}
	return p, nil
}

// signAndStore performs the AOS allocation-side instrumentation: pacma
// signs the pointer; bndstr inserts the bounds, resizing the table via the
// OS on insertion failure.
func (m *Machine) signAndStore(va, size uint64) (Ptr, error) {
	signed := m.PAUnit.SignData(pa.KeyDA, va, m.sp, size)
	dPac := m.allocReg()
	m.emit(isa.Inst{Op: isa.OpPacma, Addr: signed, Size: uint32(size),
		Dest: dPac, Src1: m.lastLoad, Src2: isa.RegNone})

	pacv := pa.PAC(signed)
	table := m.OS.Table()
	resized := false
	way, err := table.Insert(pacv, va, sizeOrMin(size))
	if err == hbt.ErrTableFull {
		oldBytes := table.SizeBytes()
		if table, err = m.OS.HandleTableFull(); err != nil {
			return Ptr{}, err
		}
		resized = true
		if m.tel != nil {
			m.tel.hbtMigrated.Add(oldBytes)
		}
		if way, err = table.Insert(pacv, va, sizeOrMin(size)); err != nil {
			return Ptr{}, err
		}
	} else if err != nil {
		return Ptr{}, err
	}
	if m.tel != nil {
		m.tel.hbtInserts.Add(1)
	}
	m.emit(isa.Inst{Op: isa.OpBndstr, Addr: signed, Size: uint32(size),
		Signed: true, PAC: pacv, AHC: pa.AHC(signed),
		HomeWay: int8(way), Assoc: uint8(table.Assoc()), RowAddr: table.RowAddr(pacv),
		Resize: resized, Dest: isa.RegNone, Src1: dPac, Src2: isa.RegNone})
	return Ptr{Raw: signed, Size: size}, nil
}

// sizeOrMin keeps zero-size allocations representable in the bounds format
// (malloc(0) returns a minimal usable chunk).
func sizeOrMin(size uint64) uint64 {
	if size == 0 {
		return 16
	}
	return size
}

// watchdogSetID performs Watchdog's allocation instrumentation (Fig 5a
// case 1): assign a key, allocate a lock location, store the key to it,
// and write the 24-byte metadata record.
func (m *Machine) watchdogSetID(va, size uint64) uint64 {
	m.wdNextKey++
	var lock uint64
	if n := len(m.wdFreeLocks); n > 0 {
		lock = m.wdFreeLocks[n-1]
		m.wdFreeLocks = m.wdFreeLocks[:n-1]
		m.rawAccess(lock, false, DepFree) // pop from the lock free list
	} else {
		lock = m.wdLockCursor
		m.wdLockCursor += instrument.WDMetaBytes
	}
	m.wdLockOf[va] = lock
	m.wdKeyOf[va] = m.wdNextKey
	m.Mem.WriteU64(lock, m.wdNextKey)
	m.emit(isa.Inst{Op: isa.OpWDSetID, Dest: m.allocReg(), Src1: isa.RegNone, Src2: isa.RegNone})
	m.rawAccess(lock, true, DepFree)   // *(lock) = key
	m.rawAccess(lock+8, true, DepFree) // metadata record: base/bound words
	m.rawAccess(lock+16, true, DepFree)
	return m.wdNextKey
}

// --- deallocation ---

// Free simulates an instrumented free() (Fig 7b): bndclr, xpacm, the
// allocator's work on the stripped pointer, and the re-signing pacma that
// locks the dangling pointer.
func (m *Machine) Free(p Ptr) error {
	if m.tel != nil {
		defer m.telRefresh()
	}
	switch {
	case m.Scheme.SignsDataPointers():
		return m.freeAOS(p)
	case m.Scheme.HasWatchdogChecks():
		return m.freeWatchdog(p)
	case m.Scheme.UsesMemoryTagging():
		return m.freeMTE(p)
	default:
		m.Call()
		err := m.Heap.Free(p.VA())
		m.emitAllocatorWork()
		m.Ret()
		return err
	}
}

func (m *Machine) freeAOS(p Ptr) error {
	va := p.VA()
	pacv := pa.PAC(p.Raw)
	table := m.OS.Table()

	// bndclr: clear the bounds; failure means double free, a forged
	// pointer, or free() of an address that was never signed.
	way, found := table.Clear(pacv, va)
	if m.tel != nil && found {
		m.tel.hbtClears.Add(1)
	}
	homeWay := int8(way)
	var excErr error
	if !found || !p.Signed() {
		homeWay = -1
		excErr = m.OS.RaiseException(kernel.ExcBoundsClear, p.Raw,
			"bndclr found no bounds: double free or invalid free()")
	}
	// The freed pointer arrives through the load chain, same convention as
	// signAndStore's pacma operand.
	m.emit(isa.Inst{Op: isa.OpBndclr, Addr: p.Raw, Signed: p.Signed(),
		PAC: pacv, AHC: pa.AHC(p.Raw), HomeWay: homeWay,
		Assoc: uint8(table.Assoc()), RowAddr: table.RowAddr(pacv),
		Dest: isa.RegNone, Src1: m.lastLoad, Src2: isa.RegNone})
	if excErr != nil {
		return excErr
	}
	if !found {
		// Exception recorded but process resumed: free() is not executed
		// (the handler blocked the attack).
		return nil
	}

	// xpacm: strip so the allocator's neighbour-metadata walks are not
	// bounds-checked.
	dPtr := m.allocReg()
	m.emit(isa.Inst{Op: isa.OpXpacm, Dest: dPtr, Src1: m.lastLoad, Src2: isa.RegNone})

	m.Call()
	err := m.Heap.Free(va)
	m.emitAllocatorWork()
	m.Ret()

	// pacma with xzr size: re-sign (lock) the freed pointer.
	m.emit(isa.Inst{Op: isa.OpPacma, Addr: m.PAUnit.SignData(pa.KeyDA, va, m.sp, 0),
		Dest: dPtr, Src1: dPtr, Src2: isa.RegNone})
	return err
}

func (m *Machine) freeWatchdog(p Ptr) error {
	va := p.VA()
	if lock, ok := m.wdLockOf[va]; ok {
		m.Mem.WriteU64(lock, 0) // INVALID
		m.rawAccess(lock, true, DepFree)
		m.rawAccess(lock, true, DepFree) // add_free_list(id.lock)
		m.emit(isa.Inst{Op: isa.OpWDClrID, Dest: isa.RegNone, Src1: isa.RegNone, Src2: isa.RegNone})
		m.wdFreeLocks = append(m.wdFreeLocks, lock)
		// The stale pointer keeps referencing this lock; the zeroed key is
		// what makes a later dereference fail the check micro-op.
	}
	m.Call()
	err := m.Heap.Free(va)
	m.emitAllocatorWork()
	m.Ret()
	return err
}

// --- checked accesses through program pointers ---

// Access performs a load or store through p at the given offset. Under
// AOS the access is bounds-checked; a detected violation is recorded with
// the OS and returned as a kernel.Exception (the access itself is
// suppressed — precise exceptions). Callers model a report-and-resume
// handler by ignoring the returned error.
func (m *Machine) Access(p Ptr, off uint64, store bool, opts AccessOpts) error {
	addr := composeOffset(p.Raw, off)
	va := pa.VA(addr)

	// Watchdog: check micro-op before the access (lock load + compare),
	// and shadow-memory identifier moves for pointer loads/stores
	// (Fig 5a cases 3-4: "ld R1.id <- ShadowMem[R2].id").
	if m.Scheme.HasWatchdogChecks() {
		if err := m.watchdogCheck(p, va); err != nil {
			return err
		}
		if opts.Pointer {
			// Shadow metadata is packed at 24 bytes per 64-byte data line,
			// so shadow locality mirrors data locality.
			m.shadowAccess(kernel.ShadowBase+((va-kernel.HeapBase)%kernel.HeapLimit>>6)*24, store, opts.Dep)
		}
	}

	in := isa.Inst{Size: 8, Addr: addr, Src1: m.srcFor(opts.Dep), Src2: isa.RegNone}
	if store {
		in.Op = isa.OpStore
		in.Dest = isa.RegNone
		in.Src2 = m.lastALU
	} else {
		in.Op = isa.OpLoad
		in.Dest = m.allocReg()
	}

	var excErr error
	if m.Scheme.UsesMemoryTagging() {
		// The tag compare rides on the access itself; a mismatch is a
		// precise fault on the load/store, recorded like a bounds fault.
		excErr = m.mteCheckAccess(p, addr, va)
	}
	if m.Scheme.SignsDataPointers() && pa.IsSigned(addr) {
		table := m.OS.Table()
		in.Signed = true
		in.PAC = pa.PAC(addr)
		in.AHC = pa.AHC(addr)
		in.Assoc = uint8(table.Assoc())
		in.RowAddr = table.RowAddr(in.PAC)
		if way, found := table.Lookup(in.PAC, va); found {
			in.HomeWay = int8(way)
		} else {
			in.HomeWay = -1
			kind := "out-of-bounds access"
			if !m.Heap.IsLive(p.VA()) {
				kind = "use-after-free (dangling pointer)"
			}
			excErr = m.OS.RaiseException(kernel.ExcBoundsCheck, addr, kind)
		}
	}

	// PA data-pointer integrity: sign pointers before storing them.
	if store && opts.Pointer && m.Scheme.HasOnLoadAuth() && !m.Scheme.UsesAutm() {
		d := m.allocReg()
		m.emit(isa.Inst{Op: isa.OpPacia, Dest: d, Src1: m.lastALU, Src2: isa.RegNone})
		in.Src2 = d
	}

	m.emit(in)
	if !store {
		m.lastLoad = in.Dest
		// On-load authentication of loaded pointers (Fig 13).
		if opts.Pointer && m.Scheme.HasOnLoadAuth() {
			op := isa.OpAutia
			if m.Scheme.UsesAutm() {
				op = isa.OpAutm
			}
			d := m.allocReg()
			m.emit(isa.Inst{Op: op, Dest: d, Src1: in.Dest, Src2: isa.RegNone})
		}
	}

	return excErr
}

// Load is Access(store=false).
func (m *Machine) Load(p Ptr, off uint64, opts AccessOpts) error {
	return m.Access(p, off, false, opts)
}

// Store is Access(store=true).
func (m *Machine) Store(p Ptr, off uint64, opts AccessOpts) error {
	return m.Access(p, off, true, opts)
}

// LoadU64 performs a checked load that also reads the simulated memory,
// for example programs that care about data values. On a detected
// violation the read is suppressed (precise exceptions) and zero returned.
func (m *Machine) LoadU64(p Ptr, off uint64) (uint64, error) {
	if err := m.Access(p, off, false, AccessOpts{}); err != nil {
		return 0, err
	}
	return m.Mem.ReadU64(pa.VA(p.Raw) + off), nil
}

// StoreU64 performs a checked store with a real data value; suppressed on
// detected violations.
func (m *Machine) StoreU64(p Ptr, off uint64, v uint64) error {
	if err := m.Access(p, off, true, AccessOpts{}); err != nil {
		return err
	}
	m.Mem.WriteU64(pa.VA(p.Raw)+off, v)
	return nil
}

// watchdogCheck is the check micro-op: load the pointer's lock location
// and compare identifiers (UAF + bounds detection for the baseline).
func (m *Machine) watchdogCheck(p Ptr, va uint64) error {
	base := p.VA()
	lock, tracked := m.wdLockOf[base]
	in := isa.Inst{Op: isa.OpWDCheck, Dest: isa.RegNone, Src1: m.lastALU, Src2: isa.RegNone}
	if tracked {
		in.Addr = lock
		in.Size = 8
	}
	m.emit(in)
	if !tracked {
		return nil
	}
	// Compare the pointer's travelling identifier against the lock's
	// current value: a freed (zeroed) or re-assigned lock fails the check.
	key := m.Mem.ReadU64(lock)
	if key == 0 || key != p.WDKey {
		return m.OS.RaiseException(kernel.ExcBoundsCheck, p.Raw, "watchdog: stale identifier (UAF)")
	}
	if va < base || va >= base+sizeOrMin(p.Size) {
		return m.OS.RaiseException(kernel.ExcBoundsCheck, p.Raw, "watchdog: bounds violation")
	}
	return nil
}

// PointerArith models pointer arithmetic: the result inherits the PAC/AHC
// (for free, under AOS — the paper's key propagation insight), while the
// Watchdog baseline must emit metadata-propagation micro-ops (Fig 5a
// cases 5-6).
func (m *Machine) PointerArith(p Ptr, delta int64) Ptr {
	d := m.allocReg()
	m.emit(isa.Inst{Op: isa.OpALU, Dest: d, Src1: m.lastALU, Src2: isa.RegNone})
	if m.Scheme.HasWatchdogChecks() {
		m.emit(isa.Inst{Op: isa.OpWDMeta, Dest: m.allocReg(), Src1: d, Src2: isa.RegNone})
	}
	m.lastALU = d
	return Ptr{Raw: composeOffset(p.Raw, uint64(delta)), Size: p.Size}
}

// AutM authenticates a data pointer with autm and raises ExcPAAuth on a
// zero AHC (AHC-forging defense, §VII-C).
func (m *Machine) AutM(p Ptr) error {
	d := m.allocReg()
	m.emit(isa.Inst{Op: isa.OpAutm, Dest: d, Src1: m.lastALU, Src2: isa.RegNone})
	if _, err := pa.AutM(p.Raw); err != nil {
		return m.OS.RaiseException(kernel.ExcPAAuth, p.Raw, "autm: zero AHC")
	}
	return nil
}

// composeOffset adds a byte offset to the address bits of a (possibly
// signed) pointer, leaving PAC and AHC untouched — exactly what AArch64
// pointer arithmetic does to the upper bits for small offsets.
func composeOffset(raw, off uint64) uint64 {
	return (raw &^ pa.VAMask) | ((raw + off) & pa.VAMask)
}

// Strip returns the pointer with PAC and AHC removed (xpacm), emitting the
// instruction.
func (m *Machine) Strip(p Ptr) Ptr {
	d := m.allocReg()
	m.emit(isa.Inst{Op: isa.OpXpacm, Dest: d, Src1: m.lastALU, Src2: isa.RegNone})
	return Ptr{Raw: p.VA(), Size: p.Size}
}

// String summarizes machine state.
func (m *Machine) String() string {
	return fmt.Sprintf("machine{%s, %d insts, heap live %d, HBT %d-way}",
		m.Scheme, m.counts.Total, m.Heap.Stats().Live, m.OS.Table().Assoc())
}
