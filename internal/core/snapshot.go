package core

import (
	"fmt"

	"aos/internal/heap"
	"aos/internal/instrument"
	"aos/internal/isa"
	"aos/internal/kernel"
	"aos/internal/mem"
)

// MachineState is a deep, self-contained checkpoint of a Machine's
// simulated state: the address space, allocator, OS/bounds-table context,
// and all instrumentation bookkeeping. Runtime wiring — the sink, the
// batching buffer, telemetry probes, and the stateless PA unit — is NOT
// captured; Restore keeps the target machine's wiring, so a restored
// machine keeps feeding whatever pipeline it was attached to.
type MachineState struct {
	scheme instrument.Scheme

	mem  *mem.State
	heap *heap.State
	os   *kernel.State

	counts   isa.Counts
	pc       uint64
	codeSize uint64
	sp       uint64
	nextReg  uint8
	lastALU  uint8
	lastLoad uint8

	wdNextKey    uint64
	wdLockCursor uint64
	wdFreeLocks  []uint64
	wdLockOf     map[uint64]uint64
	wdKeyOf      map[uint64]uint64

	mteTags map[uint64]uint8
	mteNext uint8
}

// Snapshot deep-copies the machine's simulated state. Any batched
// instructions are flushed to the sink first, so the checkpoint boundary is
// also a batch boundary and a later Restore resumes from a clean pipe.
func (m *Machine) Snapshot() *MachineState {
	m.Flush()
	s := &MachineState{
		scheme:       m.Scheme,
		mem:          m.Mem.Snapshot(),
		heap:         m.Heap.Snapshot(),
		os:           m.OS.Snapshot(),
		counts:       m.counts,
		pc:           m.pc,
		codeSize:     m.codeSize,
		sp:           m.sp,
		nextReg:      m.nextReg,
		lastALU:      m.lastALU,
		lastLoad:     m.lastLoad,
		wdNextKey:    m.wdNextKey,
		wdLockCursor: m.wdLockCursor,
		wdFreeLocks:  append([]uint64(nil), m.wdFreeLocks...),
		mteNext:      m.mteNext,
	}
	if m.wdLockOf != nil {
		s.wdLockOf = make(map[uint64]uint64, len(m.wdLockOf))
		for k, v := range m.wdLockOf { //aoslint:allow mapiter — order-free: builds an independent map, no order-dependent effects
			s.wdLockOf[k] = v
		}
		s.wdKeyOf = make(map[uint64]uint64, len(m.wdKeyOf))
		for k, v := range m.wdKeyOf { //aoslint:allow mapiter — order-free: builds an independent map, no order-dependent effects
			s.wdKeyOf[k] = v
		}
	}
	if m.mteTags != nil {
		s.mteTags = make(map[uint64]uint8, len(m.mteTags))
		for k, v := range m.mteTags { //aoslint:allow mapiter — order-free: builds an independent map, no order-dependent effects
			s.mteTags[k] = v
		}
	}
	return s
}

// Restore rewinds the machine's simulated state to a snapshot taken from a
// machine with the same configuration, keeping the target's runtime wiring
// (sink, batching, telemetry, PA unit). Any batched instructions on the
// target are discarded — they belong to the timeline being abandoned. The
// snapshot stays valid for further Restores, including concurrent ones on
// different machines.
func (m *Machine) Restore(s *MachineState) error {
	if m.Scheme != s.scheme {
		return fmt.Errorf("core: restore scheme mismatch: snapshot %v, machine %v", s.scheme, m.Scheme)
	}
	if m.batch != nil {
		m.batch = m.batch[:0]
	}
	m.Mem.Restore(s.mem)
	m.Heap.Restore(s.heap)
	m.OS.Restore(s.os)
	m.counts = s.counts
	m.pc = s.pc
	m.codeSize = s.codeSize
	m.sp = s.sp
	m.nextReg = s.nextReg
	m.lastALU = s.lastALU
	m.lastLoad = s.lastLoad
	m.wdNextKey = s.wdNextKey
	m.wdLockCursor = s.wdLockCursor
	m.wdFreeLocks = append(m.wdFreeLocks[:0:0], s.wdFreeLocks...)
	m.wdLockOf = nil
	m.wdKeyOf = nil
	if s.wdLockOf != nil {
		m.wdLockOf = make(map[uint64]uint64, len(s.wdLockOf))
		for k, v := range s.wdLockOf { //aoslint:allow mapiter — order-free: builds an independent map, no order-dependent effects
			m.wdLockOf[k] = v
		}
		m.wdKeyOf = make(map[uint64]uint64, len(s.wdKeyOf))
		for k, v := range s.wdKeyOf { //aoslint:allow mapiter — order-free: builds an independent map, no order-dependent effects
			m.wdKeyOf[k] = v
		}
	}
	m.mteNext = s.mteNext
	m.mteTags = nil
	if s.mteTags != nil {
		m.mteTags = make(map[uint64]uint8, len(s.mteTags))
		for k, v := range s.mteTags { //aoslint:allow mapiter — order-free: builds an independent map, no order-dependent effects
			m.mteTags[k] = v
		}
	}
	return nil
}
