package core_test

import (
	"testing"

	"aos/internal/core"
	"aos/internal/instrument"
	"aos/internal/isa"
	"aos/internal/mcu"
	"aos/internal/workload"
)

// mcqChecker replays every signed access and bounds op through the
// architecturally faithful MCQ finite state machines (internal/mcu),
// against the same hashed bounds table the machine maintains, and verifies
// the FSM reaches the same conclusion as the machine's annotations: the
// bounds are found, in exactly the annotated home way.
//
// This cross-checks the functional fast path (table mirror, HomeWay
// resolution) against the hardware-level FSM model — the two must never
// disagree, or the timing model is being fed fiction.
type mcqChecker struct {
	t       *testing.T
	m       *core.Machine
	q       *mcu.Queue
	checked int
}

func (c *mcqChecker) Emit(in *isa.Inst) {
	switch {
	case in.Op == isa.OpBndstr:
		// The machine already inserted architecturally; replaying the
		// bndstr FSM would double-insert. Instead verify occupancy: the
		// annotated way must hold bounds covering the base address.
		if !c.m.Table().FindCovering(in.PAC, int(in.HomeWay), in.Addr&((1<<46)-1)) {
			c.t.Fatalf("bndstr way %d does not cover %#x", in.HomeWay, in.Addr)
		}
	case (in.Op == isa.OpLoad || in.Op == isa.OpStore) && in.Signed:
		typ := mcu.TypeLoad
		if in.Op == isa.OpStore {
			typ = mcu.TypeStore
		}
		e, ok := c.q.Enqueue(typ, in.Addr, uint64(in.Size))
		if !ok {
			c.t.Fatal("MCQ full in lockstep replay")
		}
		state := c.q.Run(e)
		if in.HomeWay >= 0 {
			if state != mcu.StateDone {
				c.t.Fatalf("FSM state %v for access the machine validated (%s)", state, in)
			}
			if e.Way != int(in.HomeWay) {
				c.t.Fatalf("FSM found bounds in way %d, machine annotated way %d (%s)",
					e.Way, in.HomeWay, in)
			}
		} else if state != mcu.StateFail {
			c.t.Fatalf("FSM state %v for access the machine faulted (%s)", state, in)
		}
		c.q.MarkCommitted(e)
		if _, ok := c.q.RetireHead(); !ok {
			c.t.Fatal("retire failed in lockstep replay")
		}
		c.checked++
	}
}

func TestMCQFSMAgreesWithFunctionalAnnotations(t *testing.T) {
	for _, name := range []string{"astar", "hmmer", "omnetpp"} {
		p, _ := workload.ByName(name)
		prof := *p
		prof.Instructions = 15_000
		m, err := core.New(core.Config{Scheme: instrument.AOS})
		if err != nil {
			t.Fatal(err)
		}
		chk := &mcqChecker{t: t, m: m}
		chk.q = mcu.NewQueue(48, m.Table(), nil, mcu.Options{UseBWB: true}, nil)
		// Track table swaps across resizes.
		m.SetSink(isa.MultiSink{chk, sinkFunc(func(in *isa.Inst) {
			if in.Resize {
				chk.q.SetTable(m.Table())
			}
		})})
		if err := prof.Run(m, 9); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if chk.checked == 0 {
			t.Fatalf("%s: lockstep replay checked nothing", name)
		}
		t.Logf("%s: FSM agreed on %d checked accesses", name, chk.checked)
	}
}

// sinkFunc adapts a function to isa.Sink.
type sinkFunc func(*isa.Inst)

func (f sinkFunc) Emit(in *isa.Inst) { f(in) }

// TestMCQFSMDetectsMachineViolations runs the violation scenarios and
// confirms the FSM also fails them.
func TestMCQFSMDetectsMachineViolations(t *testing.T) {
	m, err := core.New(core.Config{Scheme: instrument.AOS})
	if err != nil {
		t.Fatal(err)
	}
	q := mcu.NewQueue(48, m.Table(), nil, mcu.Options{}, nil)
	p, err := m.Malloc(64)
	if err != nil {
		t.Fatal(err)
	}

	// OOB through the FSM.
	e, _ := q.Enqueue(mcu.TypeLoad, p.Raw+128, 8)
	if q.Run(e) != mcu.StateFail {
		t.Error("FSM passed an OOB access")
	}
	q.MarkCommitted(e)
	q.RetireHead()

	// In-bounds through the FSM.
	e2, _ := q.Enqueue(mcu.TypeLoad, p.Raw+32, 8)
	if q.Run(e2) != mcu.StateDone {
		t.Error("FSM failed an in-bounds access")
	}
	q.MarkCommitted(e2)
	q.RetireHead()

	// After free, the FSM must fail the stale pointer too.
	if err := m.Free(p); err != nil {
		t.Fatal(err)
	}
	e3, _ := q.Enqueue(mcu.TypeLoad, p.Raw, 8)
	if q.Run(e3) != mcu.StateFail {
		t.Error("FSM passed a use-after-free")
	}
}
