package core

import (
	"reflect"
	"testing"

	"aos/internal/instrument"
	"aos/internal/isa"
)

// recSink records every emitted instruction for byte-level comparison.
type recSink struct{ insts []isa.Inst }

func (r *recSink) Emit(in *isa.Inst)      { r.insts = append(r.insts, *in) }
func (r *recSink) EmitBatch(b []isa.Inst) { r.insts = append(r.insts, b...) }

// churn drives a deterministic instruction mix through every instrumented
// path: alloc/free, loads/stores (pointer and plain), arithmetic, branches,
// call/return, pointer arithmetic.
func churn(t *testing.T, m *Machine, live []Ptr, n, phase int) []Ptr {
	t.Helper()
	for i := 0; i < n; i++ {
		x := uint64(i+phase*100_000)*2654435761 + 7
		switch x % 7 {
		case 0:
			p, err := m.Malloc(16 + x%400)
			if err != nil {
				t.Fatalf("malloc: %v", err)
			}
			live = append(live, p)
		case 1:
			if len(live) > 8 {
				vi := int(x/11) % len(live)
				if err := m.Free(live[vi]); err != nil {
					t.Fatalf("free: %v", err)
				}
				live[vi] = live[len(live)-1]
				live = live[:len(live)-1]
			}
		case 2:
			if len(live) > 0 {
				p := live[int(x/13)%len(live)]
				off := (x / 3) % maxU64(p.Size, 1) &^ 7
				if err := m.Load(p, off, AccessOpts{Pointer: x%5 == 0}); err != nil {
					t.Fatalf("load: %v", err)
				}
			}
		case 3:
			if len(live) > 0 {
				p := live[int(x/17)%len(live)]
				off := (x / 5) % maxU64(p.Size, 1) &^ 7
				if err := m.Store(p, off, AccessOpts{}); err != nil {
					t.Fatalf("store: %v", err)
				}
			}
		case 4:
			m.Branch(uint32(x%64), x%3 == 0)
			m.Compute(2, DepChain)
		case 5:
			m.Call()
			m.ComputeMul(1, DepFree)
			m.Ret()
		default:
			m.RawLoad(0x1000_0000+(x%4096)&^7, DepFree)
			m.ComputeFP(1, DepFree)
		}
	}
	return live
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// TestMachineSnapshotRestoreDeterminism: for every scheme, a machine
// restored from a checkpoint must produce a byte-identical instruction
// trace, counts, and exception log to the original running straight
// through.
func TestMachineSnapshotRestoreDeterminism(t *testing.T) {
	for _, s := range instrument.AllSchemes() {
		s := s
		t.Run(s.String(), func(t *testing.T) {
			rA := &recSink{}
			a, err := New(Config{Scheme: s})
			if err != nil {
				t.Fatal(err)
			}
			a.SetSink(rA)
			a.SetBatch(64)
			live := churn(t, a, nil, 3000, 0)
			snap := a.Snapshot() // flushes
			mark := len(rA.insts)
			liveAtSnap := append([]Ptr(nil), live...)

			churn(t, a, live, 3000, 1)
			a.Flush()
			wantTail := rA.insts[mark:]
			wantCounts := a.Counts()
			wantExcs := a.Exceptions()

			for trial := 0; trial < 2; trial++ {
				rB := &recSink{}
				b, err := New(Config{Scheme: s})
				if err != nil {
					t.Fatal(err)
				}
				b.SetSink(rB)
				b.SetBatch(64)
				if err := b.Restore(snap); err != nil {
					t.Fatal(err)
				}
				churn(t, b, append([]Ptr(nil), liveAtSnap...), 3000, 1)
				b.Flush()
				if !reflect.DeepEqual(rB.insts, wantTail) {
					t.Fatalf("trial %d: restored trace diverged (%d vs %d insts)", trial, len(rB.insts), len(wantTail))
				}
				if b.Counts() != wantCounts {
					t.Fatalf("trial %d: counts diverged", trial)
				}
				if !reflect.DeepEqual(b.Exceptions(), wantExcs) {
					t.Fatalf("trial %d: exceptions diverged", trial)
				}
			}
		})
	}
}

// TestMachineRestoreSchemeMismatch: restoring across schemes must fail
// loudly rather than corrupt state.
func TestMachineRestoreSchemeMismatch(t *testing.T) {
	a, _ := New(Config{Scheme: instrument.AOS})
	b, _ := New(Config{Scheme: instrument.MTE})
	if err := b.Restore(a.Snapshot()); err == nil {
		t.Fatal("expected scheme-mismatch error")
	}
}

// TestMachineSnapshotComplete is the reflection guard, in the style of
// workload.Profile.Clone's completeness test: every Machine field must be
// classified as snapshotted or explicitly operational, so a new field
// cannot silently escape checkpoints.
func TestMachineSnapshotComplete(t *testing.T) {
	covered := map[string]bool{
		"Mem": true, "Heap": true, "OS": true, "Scheme": true,
		"counts": true, "pc": true, "codeSize": true, "sp": true,
		"nextReg": true, "lastALU": true, "lastLoad": true,
		"wdNextKey": true, "wdLockCursor": true, "wdFreeLocks": true,
		"wdLockOf": true, "wdKeyOf": true,
		"mteTags": true, "mteNext": true,
	}
	operational := map[string]bool{
		// PAUnit is stateless (fixed QARMA keys); sink/batch/tel are the
		// runtime wiring Restore deliberately preserves.
		"PAUnit": true, "sink": true, "batch": true, "tel": true,
	}
	typ := reflect.TypeOf(Machine{})
	for i := 0; i < typ.NumField(); i++ {
		name := typ.Field(i).Name
		if covered[name] == operational[name] {
			t.Errorf("core.Machine field %q is not classified as snapshotted or operational; update Snapshot/Restore and this test", name)
		}
	}
	// MachineState carries the covered set: 3 sub-states (mem/heap/os)
	// stand in for Mem/Heap/OS, scheme for Scheme, the rest one-to-one.
	st := reflect.TypeOf(MachineState{})
	if st.NumField() != len(covered) {
		t.Errorf("core.MachineState has %d fields, covered set has %d; keep them in sync", st.NumField(), len(covered))
	}
}
