package core

import "aos/internal/telemetry"

// machineProbes is the functional machine's slice of the flight
// recorder: allocator and bounds-table state the timing core cannot
// see. Gauges are refreshed after every malloc/free (a handful of
// guarded integer stores), so the cycle-windowed sampler — driven
// from the timing core's commit path — always reads current levels.
type machineProbes struct {
	hbtAssoc    *telemetry.Gauge
	hbtLive     *telemetry.Gauge
	hbtCapacity *telemetry.Gauge
	heapLive    *telemetry.Gauge
	heapBytes   *telemetry.Gauge

	hbtInserts  *telemetry.Counter
	hbtClears   *telemetry.Counter
	hbtMigrated *telemetry.Counter
}

// AttachTelemetry registers the machine's probes in the timeline's
// registry and seeds the gauges. Attach once, before running a
// workload; nil machine telemetry (the default) costs a single nil
// check at each update site.
func (m *Machine) AttachTelemetry(tl *telemetry.Timeline) {
	r := tl.Registry()
	m.tel = &machineProbes{
		hbtAssoc:    r.Gauge("hbt_assoc_ways"),
		hbtLive:     r.Gauge("hbt_live_entries"),
		hbtCapacity: r.Gauge("hbt_capacity_entries"),
		heapLive:    r.Gauge("heap_live_chunks"),
		heapBytes:   r.Gauge("heap_live_bytes"),
		hbtInserts:  r.Counter("hbt_inserts_total"),
		hbtClears:   r.Counter("hbt_clears_total"),
		hbtMigrated: r.Counter("hbt_migrated_bytes_total"),
	}
	m.telRefresh()
}

// telRefresh re-reads the gauge levels. Call sites guard on m.tel.
func (m *Machine) telRefresh() {
	t := m.OS.Table()
	m.tel.hbtAssoc.Set(uint64(t.Assoc()))
	m.tel.hbtLive.Set(uint64(t.Live()))
	m.tel.hbtCapacity.Set(t.Capacity())
	hs := m.Heap.Stats()
	m.tel.heapLive.Set(hs.Live)
	m.tel.heapBytes.Set(hs.BytesIn)
}
