package core

import (
	"aos/internal/instrument"
	"aos/internal/isa"
	"aos/internal/kernel"
)

// MTE model: 4-bit lock-and-key memory tagging (Serebryany et al.).
// malloc rounds the allocation to 16-byte tag granules, picks an
// allocation tag (deterministic 1..15 cycling — tag 0 is reserved for
// untagged/freed memory) and retags every granule; free checks the
// pointer's tag against memory and retags the granules back to 0; every
// load/store compares the pointer tag with the accessed granule's tag.
//
// The tag lives in pointer bits [59:56] (the ARM top-byte position),
// well clear of the PAC field ([63:48], unused here — MTE never signs)
// and the address bits the simulator masks with pa.VAMask, so
// composeOffset and Ptr.VA work unchanged. Tags are stored in a shadow
// region off kernel.ShadowBase at MTE's architectural density (4 bits
// per 16-byte granule, i.e. one byte of tag storage per 32 data bytes);
// the stg drains model the tag-memory write traffic.
//
// What the model honestly does not catch: an overflow that stays inside
// the allocation's last, rounding-padded granule, and — in real MTE —
// any violation landing on a granule that reuses the pointer's tag
// (1 in 15 for far-away granules; see security.MTEBypassProbability).
// The deterministic tag cycle makes the simulated battery reproducible.

const (
	// mteTagShift places the tag in the pointer's top byte.
	mteTagShift = 56
	// mteGranuleShift converts a VA to its granule index.
	mteGranuleShift = 4
	// mteShadowCompress is the data-to-tag-storage ratio (16 B granule,
	// 4-bit tag → 32:1).
	mteShadowCompress = 32
)

func mteTagOf(raw uint64) uint8 { return uint8(raw>>mteTagShift) & (instrument.NumTags - 1) }

func mteSetTag(va uint64, tag uint8) uint64 {
	return va&^(uint64(instrument.NumTags-1)<<mteTagShift) | uint64(tag)<<mteTagShift
}

// mteTagAddr is the shadow address holding a granule's tag.
func mteTagAddr(gva uint64) uint64 {
	return kernel.ShadowBase + (gva-kernel.HeapBase)/mteShadowCompress
}

// mteGranules is the number of tag granules covering an allocation.
func mteGranules(size uint64) uint64 {
	return (sizeOrMin(size) + instrument.TagGranule - 1) / instrument.TagGranule
}

// mteNextTag cycles deterministically through the 15 allocation tags.
func (m *Machine) mteNextTag() uint8 {
	m.mteNext++
	if m.mteNext >= instrument.NumTags {
		m.mteNext = 1
	}
	return m.mteNext
}

// mteMemTag returns the current memory tag of the granule holding va
// (0 for never-tagged memory: headers, globals, stack, freed granules).
func (m *Machine) mteMemTag(va uint64) uint8 { return m.mteTags[va>>mteGranuleShift] }

// mteTagAlloc performs MTE's allocation-side instrumentation: irg picks
// the tag, one stg per granule writes it, and the returned pointer
// carries the tag in its top byte.
func (m *Machine) mteTagAlloc(va, size uint64) (Ptr, error) {
	tag := m.mteNextTag()
	d := m.allocReg()
	m.emit(isa.Inst{Op: isa.OpIRG, Dest: d, Src1: m.lastLoad, Src2: isa.RegNone})
	for g, n := uint64(0), mteGranules(size); g < n; g++ {
		gva := va + g*instrument.TagGranule
		m.mteTags[gva>>mteGranuleShift] = tag
		m.emit(isa.Inst{Op: isa.OpSTG, Addr: mteTagAddr(gva), Size: instrument.TagGranule,
			Dest: isa.RegNone, Src1: d, Src2: isa.RegNone})
	}
	return Ptr{Raw: mteSetTag(va, tag), Size: size}, nil
}

// freeMTE checks the pointer tag against memory before releasing, then
// retags the freed granules to 0 so stale pointers (and a second free)
// fault on their next use.
func (m *Machine) freeMTE(p Ptr) error {
	va := p.VA()
	if ptag := mteTagOf(p.Raw); ptag != m.mteMemTag(va) {
		return m.OS.RaiseException(kernel.ExcBoundsClear, p.Raw,
			"mte: tag mismatch on free (double free or invalid free)")
	}
	wasLive := m.Heap.IsLive(va)
	size, _ := m.Heap.RequestedSize(va)

	m.Call()
	err := m.Heap.Free(va)
	m.emitAllocatorWork()
	m.Ret()

	if wasLive {
		for g, n := uint64(0), mteGranules(size); g < n; g++ {
			gva := va + g*instrument.TagGranule
			delete(m.mteTags, gva>>mteGranuleShift)
			m.emit(isa.Inst{Op: isa.OpSTG, Addr: mteTagAddr(gva), Size: instrument.TagGranule,
				Dest: isa.RegNone, Src1: isa.RegNone, Src2: isa.RegNone})
		}
	}
	return err
}

// mteCheckAccess is the per-access tag compare. It rides on the access
// itself (no extra instruction — the check is part of the load/store in
// MTE hardware); only the granule of the access's first byte is checked,
// matching the model's 8-byte, aligned accesses.
func (m *Machine) mteCheckAccess(p Ptr, addr, va uint64) error {
	if mteTagOf(addr) == m.mteMemTag(va) {
		return nil
	}
	kind := "mte: tag mismatch (out-of-bounds)"
	if !m.Heap.IsLive(p.VA()) {
		kind = "mte: tag mismatch (use-after-free)"
	}
	return m.OS.RaiseException(kernel.ExcBoundsCheck, addr, kind)
}
