package experiments

import (
	"reflect"
	"testing"

	"aos/internal/instrument"
)

// TestMatrixBatchScalarEquivalence is the batching determinism contract:
// the buffered emission path (machine-side EmitBatch) must produce a Matrix
// — and byte-identical rendered figures — indistinguishable from per-
// instruction scalar emission.
func TestMatrixBatchScalarEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("two matrix runs")
	}
	o := Options{Instructions: 8_000, Seed: 1, Workers: 4}
	o.ScalarEmit = true
	scalar, err := RunMatrix(o)
	if err != nil {
		t.Fatal(err)
	}
	o.ScalarEmit = false
	batched, err := RunMatrix(o)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(scalar.Runs, batched.Runs) {
		for _, b := range scalar.Benchmarks {
			for _, s := range instrument.Schemes() {
				if !reflect.DeepEqual(scalar.Runs[b][s], batched.Runs[b][s]) {
					t.Errorf("%s/%v diverges:\n  scalar:  %+v\n  batched: %+v",
						b, s, scalar.Runs[b][s], batched.Runs[b][s])
				}
			}
		}
		t.Fatal("matrix contents differ between scalar and batched emission")
	}
	f14s, err := Fig14(scalar)
	if err != nil {
		t.Fatal(err)
	}
	f14b, err := Fig14(batched)
	if err != nil {
		t.Fatal(err)
	}
	if f14s.String() != f14b.String() {
		t.Error("rendered Fig 14 differs between scalar and batched emission")
	}
	f18s, _ := Fig18(scalar)
	f18b, _ := Fig18(batched)
	if f18s.CSV() != f18b.CSV() {
		t.Error("Fig 18 CSV differs between scalar and batched emission")
	}
}
