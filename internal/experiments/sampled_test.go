package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"reflect"
	"testing"

	"aos/internal/instrument"
	"aos/internal/sampling"
	"aos/internal/stats"
	"aos/internal/telemetry"
)

// errorBoundTolerance is the pinned acceptance bound: sampled geomean IPC
// and per-scheme overhead geomeans must land within 2% of full-detail runs
// across the Fig 14 matrix.
const errorBoundTolerance = 0.02

func relErr(sampled, exact float64) float64 {
	if exact == 0 {
		return math.Inf(1)
	}
	return math.Abs(sampled-exact) / exact
}

// TestSampledErrorBound runs the Fig 14 matrix in exact and sampled mode
// and pins the sampling error: geomean IPC per scheme and the normalized
// overhead geomeans must agree within errorBoundTolerance.
func TestSampledErrorBound(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix pair is expensive; run without -short")
	}
	exactOpts := Options{Instructions: 150_000, Seed: 7}
	exact, err := RunMatrix(exactOpts)
	if err != nil {
		t.Fatal(err)
	}
	sampledOpts := exactOpts
	sampledOpts.Sampling = &sampling.Schedule{Windows: 8, Detail: 1_000, Window: 4_000}
	sampledOpts.Checkpoints = sampling.NewStore()
	sampled, err := RunMatrix(sampledOpts)
	if err != nil {
		t.Fatal(err)
	}

	// Per-scheme geomean IPC across the matrix.
	for _, s := range instrument.Schemes() {
		var e, g []float64
		for _, name := range exact.Benchmarks {
			er, err := exact.run(name, s)
			if err != nil {
				t.Fatal(err)
			}
			sr, err := sampled.run(name, s)
			if err != nil {
				t.Fatal(err)
			}
			e = append(e, er.CPU.IPC())
			g = append(g, sr.CPU.IPC())
			if sr.Counts != er.Counts {
				t.Errorf("%s/%v: sampled architectural counts diverged from exact", name, s)
			}
		}
		if re := relErr(stats.Geomean(g), stats.Geomean(e)); re > errorBoundTolerance {
			t.Errorf("%v: sampled geomean IPC off by %.2f%% (> %.0f%%)", s, 100*re, 100*errorBoundTolerance)
		}
	}

	// Per-scheme overhead geomeans (the Fig 14 headline numbers).
	fe, err := Fig14(exact)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := Fig14(sampled)
	if err != nil {
		t.Fatal(err)
	}
	for s, ge := range fe.Geomean {
		if re := relErr(fs.Geomean[s], ge); re > errorBoundTolerance {
			t.Errorf("%v: sampled overhead geomean %.4f vs exact %.4f (off %.2f%%)",
				s, fs.Geomean[s], ge, 100*re)
		}
	}
}

// TestSampledCheckpointReuseByteIdentity: a sampled cell resumed from the
// checkpoint store must produce byte-identical SimResult JSON to the cold
// run that populated the store.
func TestSampledCheckpointReuseByteIdentity(t *testing.T) {
	spec := SimSpec{
		Benchmark: "sjeng", Scheme: "aos", Instructions: 120_000, Seed: 7,
		Sampling: &SamplingSpec{Windows: 4, Detail: 1_000, Window: 4_000},
	}
	store := sampling.NewStore()
	cold, _, err := RunSpecFull(context.Background(), spec, RunConfig{Checkpoints: store})
	if err != nil {
		t.Fatal(err)
	}
	if _, misses, _ := store.Stats(); misses == 0 {
		t.Fatal("cold run did not populate the store")
	}
	resumed, _, err := RunSpecFull(context.Background(), spec, RunConfig{Checkpoints: store})
	if err != nil {
		t.Fatal(err)
	}
	hits, _, _ := store.Stats()
	if hits == 0 {
		t.Fatal("resumed run did not hit the store")
	}
	cj, err := cold.JSON()
	if err != nil {
		t.Fatal(err)
	}
	rj, err := resumed.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(cj, rj) {
		t.Fatalf("resumed result diverged from cold:\ncold    %s\nresumed %s", cj, rj)
	}
}

// TestSampledTelemetryAnnotated: a sampled run with the flight recorder
// attached must export a trace the validator accepts — every segment
// annotated with a sim/* mode slice, and no counter sample landing inside
// a fast-forward span (probes pause during F-gaps by construction, since
// sampling is driven from the detailed commit path).
func TestSampledTelemetryAnnotated(t *testing.T) {
	spec := SimSpec{
		Benchmark: "mcf", Scheme: "aos", Instructions: 120_000, Seed: 7,
		Sampling: &SamplingSpec{Windows: 4, Detail: 1_000, Window: 4_000},
	}
	_, tl, err := RunSpecFull(context.Background(), spec, RunConfig{TelemetryInterval: 512})
	if err != nil {
		t.Fatal(err)
	}
	if tl == nil {
		t.Fatal("no timeline recorded")
	}
	var buf bytes.Buffer
	if err := tl.WriteTraceEvents(&buf, "mcf/aos"); err != nil {
		t.Fatal(err)
	}
	st, err := telemetry.ValidateTraceJSON(buf.Bytes())
	if err != nil {
		t.Fatalf("sampled trace rejected by validator: %v", err)
	}
	// 4 windows -> 4 detailed slices plus at least one FF slice each for
	// the warmup leg and the tail gap.
	if st.SimSlices < 5 {
		t.Fatalf("SimSlices = %d, want >= 5", st.SimSlices)
	}
	var haveDet, haveFF bool
	for _, name := range st.SliceNames {
		switch name {
		case "sim/detailed":
			haveDet = true
		case "sim/fastforward":
			haveFF = true
		}
	}
	if !haveDet || !haveFF {
		t.Fatalf("mode slices missing from trace: %v", st.SliceNames)
	}
}

// TestSimSpecSamplingCanonical: the sampling block must change the cell's
// address (estimates are not exact results), normalize its defaults, and
// leave exact specs' canonical bytes untouched.
func TestSimSpecSamplingCanonical(t *testing.T) {
	exact := SimSpec{Benchmark: "mcf", Scheme: "aos", Instructions: 400_000, Seed: 7}
	if bytes.Contains(exact.Canonical(), []byte("sampling")) {
		t.Fatal("exact spec canonical encoding mentions sampling")
	}

	s := exact
	s.Sampling = &SamplingSpec{}
	ns, err := s.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if ns.Sampling.Windows != sampling.DefaultWindows ||
		ns.Sampling.Detail != sampling.DefaultDetail ||
		ns.Sampling.Window != sampling.DefaultWindow || ns.Sampling.Gap == 0 {
		t.Fatalf("Normalize did not fill sampling defaults: %+v", ns.Sampling)
	}
	ne, err := exact.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if ns.Hash() == ne.Hash() {
		t.Fatal("sampled and exact cells share an address")
	}
	// Elided and explicit defaults address the same cell.
	s2 := exact
	s2.Sampling = &SamplingSpec{
		Windows: ns.Sampling.Windows, Detail: ns.Sampling.Detail,
		Window: ns.Sampling.Window, Gap: ns.Sampling.Gap,
	}
	ns2, err := s2.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if ns2.Hash() != ns.Hash() {
		t.Fatal("explicit sampling defaults address a different cell than elided ones")
	}
	// Round-trip through strict JSON decoding.
	var rt SimSpec
	enc, err := json.Marshal(ns)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.UnmarshalJSON(enc); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rt, ns) {
		t.Fatalf("sampling block did not survive a JSON round trip:\n%+v\n%+v", rt, ns)
	}
}
