// Package experiments implements the paper's evaluation: one function per
// table and figure, each returning a typed result with a paper-style text
// rendering. cmd/aosbench and the top-level benchmarks are thin wrappers
// over this package.
package experiments

import (
	"fmt"
	"strings"

	"aos/internal/core"
	"aos/internal/cpu"
	"aos/internal/heap"
	"aos/internal/hwmodel"
	"aos/internal/instrument"
	"aos/internal/isa"
	"aos/internal/kernel"
	"aos/internal/mem"
	"aos/internal/pa"
	"aos/internal/qarma"
	"aos/internal/stats"
	"aos/internal/workload"
)

// Options scales the experiments.
type Options struct {
	// Instructions overrides every profile's program-instruction budget
	// (0 keeps per-profile defaults). Benchmarks use small values; the
	// full harness uses the defaults.
	Instructions uint64
	// Seed drives the deterministic workload generators.
	Seed int64
	// Verbose enables progress lines on stderr-style output via Progress.
	Progress func(format string, args ...interface{})
}

func (o Options) seed() int64 {
	if o.Seed == 0 {
		return 1
	}
	return o.Seed
}

func (o Options) progress(format string, args ...interface{}) {
	if o.Progress != nil {
		o.Progress(format, args...)
	}
}

// runOne executes a profile under a scheme with optional AOS feature
// toggles, returning the run summary.
type runSummary struct {
	Scheme  instrument.Scheme
	CPU     cpu.Result
	Counts  isa.Counts
	Heap    heap.Stats
	Resizes int
	Excs    int
}

type aosVariant struct {
	disableL1B         bool
	disableCompression bool
	disableBWB         bool
	disableForwarding  bool
}

func runOne(p *workload.Profile, scheme instrument.Scheme, v aosVariant, o Options) (runSummary, error) {
	m, err := core.New(core.Config{
		Scheme:             scheme,
		UncompressedBounds: v.disableCompression,
		CodeFootprint:      p.CodeFootprint,
	})
	if err != nil {
		return runSummary{}, err
	}
	cfg := cpu.DefaultConfig()
	if v.disableL1B {
		cfg.Caches.L1B = nil
	}
	cfg.MCU.UseBWB = !v.disableBWB
	cfg.MCU.Forwarding = !v.disableForwarding
	c := cpu.New(cfg)
	m.SetSink(c)

	prof := *p
	if o.Instructions != 0 {
		prof.Instructions = o.Instructions
	}
	// Warm the caches, predictor and BWB over half a budget, then measure.
	var warmCounts isa.Counts
	warmup := prof.Instructions / 2
	if err := prof.RunWarm(m, o.seed(), warmup, func() {
		c.ResetStats()
		warmCounts = m.Counts()
	}); err != nil {
		return runSummary{}, err
	}
	counts := m.Counts()
	counts.Total -= warmCounts.Total
	counts.SignedLoads -= warmCounts.SignedLoads
	counts.UnsignedLoads -= warmCounts.UnsignedLoads
	counts.SignedStores -= warmCounts.SignedStores
	counts.UnsignedStore -= warmCounts.UnsignedStore
	for i := range counts.ByOp {
		counts.ByOp[i] -= warmCounts.ByOp[i]
	}
	return runSummary{
		Scheme:  scheme,
		CPU:     c.Finalize(),
		Counts:  counts,
		Heap:    m.Heap.Stats(),
		Resizes: len(m.OS.Resizes()),
		Excs:    len(m.Exceptions()),
	}, nil
}

// Matrix holds the full 16-benchmark x 5-scheme evaluation used by
// Fig 14 (execution time), Fig 16/17 (AOS behaviour) and Fig 18 (traffic).
type Matrix struct {
	Benchmarks []string
	Runs       map[string]map[instrument.Scheme]runSummary
}

// RunMatrix executes the full evaluation matrix.
func RunMatrix(o Options) (*Matrix, error) {
	m := &Matrix{Runs: make(map[string]map[instrument.Scheme]runSummary)}
	for _, p := range workload.SPEC() {
		m.Benchmarks = append(m.Benchmarks, p.Name)
		m.Runs[p.Name] = make(map[instrument.Scheme]runSummary)
		for _, s := range instrument.Schemes() {
			o.progress("fig14: %s/%s", p.Name, s)
			r, err := runOne(p, s, aosVariant{}, o)
			if err != nil {
				return nil, fmt.Errorf("%s under %v: %w", p.Name, s, err)
			}
			m.Runs[p.Name][s] = r
		}
	}
	return m, nil
}

// Fig14Row is one benchmark's normalized execution times.
type Fig14Row struct {
	Name       string
	Normalized map[instrument.Scheme]float64
}

// Fig14Result is the paper's headline figure.
type Fig14Result struct {
	Rows    []Fig14Row
	Geomean map[instrument.Scheme]float64
}

// Fig14 derives normalized execution time from the matrix.
func Fig14(m *Matrix) *Fig14Result {
	res := &Fig14Result{Geomean: make(map[instrument.Scheme]float64)}
	series := make(map[instrument.Scheme][]float64)
	for _, name := range m.Benchmarks {
		base := float64(m.Runs[name][instrument.Baseline].CPU.Cycles)
		row := Fig14Row{Name: name, Normalized: make(map[instrument.Scheme]float64)}
		for _, s := range instrument.Schemes() {
			n := float64(m.Runs[name][s].CPU.Cycles) / base
			row.Normalized[s] = n
			if s != instrument.Baseline {
				series[s] = append(series[s], n)
			}
		}
		res.Rows = append(res.Rows, row)
	}
	for s, xs := range series {
		res.Geomean[s] = stats.Geomean(xs)
	}
	return res
}

// CSV renders the normalized-time rows as comma-separated values for
// external plotting.
func (r *Fig14Result) CSV() string {
	var b strings.Builder
	b.WriteString("benchmark,watchdog,pa,aos,pa+aos\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%s,%.4f,%.4f,%.4f,%.4f\n", row.Name,
			row.Normalized[instrument.Watchdog], row.Normalized[instrument.PA],
			row.Normalized[instrument.AOS], row.Normalized[instrument.PAAOS])
	}
	fmt.Fprintf(&b, "geomean,%.4f,%.4f,%.4f,%.4f\n",
		r.Geomean[instrument.Watchdog], r.Geomean[instrument.PA],
		r.Geomean[instrument.AOS], r.Geomean[instrument.PAAOS])
	return b.String()
}

// String renders Fig 14 as a table.
func (r *Fig14Result) String() string {
	t := stats.NewTable("benchmark", "Watchdog", "PA", "AOS", "PA+AOS")
	for _, row := range r.Rows {
		t.AddRow(row.Name,
			row.Normalized[instrument.Watchdog],
			row.Normalized[instrument.PA],
			row.Normalized[instrument.AOS],
			row.Normalized[instrument.PAAOS])
	}
	t.AddRow("GEOMEAN",
		r.Geomean[instrument.Watchdog],
		r.Geomean[instrument.PA],
		r.Geomean[instrument.AOS],
		r.Geomean[instrument.PAAOS])
	return "Fig 14: normalized execution time (baseline = 1.0)\n" + t.String()
}

// Fig15Variant identifies an optimization configuration.
type Fig15Variant string

// The four Fig 15 configurations.
const (
	V15None Fig15Variant = "NoOptimization"
	V15L1B  Fig15Variant = "L1-B"
	V15Comp Fig15Variant = "BoundsCompression"
	V15Both Fig15Variant = "L1-B+BoundsCompression"
)

// Fig15Result is the optimization ablation.
type Fig15Result struct {
	Benchmarks []string
	// Normalized[variant][benchmark] = exec time vs Baseline.
	Normalized map[Fig15Variant]map[string]float64
	Geomean    map[Fig15Variant]float64
}

// Fig15 runs AOS under the four optimization configurations.
func Fig15(o Options) (*Fig15Result, error) {
	variants := map[Fig15Variant]aosVariant{
		V15None: {disableL1B: true, disableCompression: true},
		V15L1B:  {disableCompression: true},
		V15Comp: {disableL1B: true},
		V15Both: {},
	}
	res := &Fig15Result{
		Normalized: make(map[Fig15Variant]map[string]float64),
		Geomean:    make(map[Fig15Variant]float64),
	}
	for v := range variants {
		res.Normalized[v] = make(map[string]float64)
	}
	series := make(map[Fig15Variant][]float64)
	for _, p := range workload.SPEC() {
		res.Benchmarks = append(res.Benchmarks, p.Name)
		o.progress("fig15: %s baseline", p.Name)
		base, err := runOne(p, instrument.Baseline, aosVariant{}, o)
		if err != nil {
			return nil, err
		}
		for v, av := range variants {
			o.progress("fig15: %s %s", p.Name, v)
			r, err := runOne(p, instrument.AOS, av, o)
			if err != nil {
				return nil, err
			}
			n := float64(r.CPU.Cycles) / float64(base.CPU.Cycles)
			res.Normalized[v][p.Name] = n
			series[v] = append(series[v], n)
		}
	}
	for v, xs := range series {
		res.Geomean[v] = stats.Geomean(xs)
	}
	return res, nil
}

// String renders Fig 15.
func (r *Fig15Result) String() string {
	order := []Fig15Variant{V15None, V15L1B, V15Comp, V15Both}
	t := stats.NewTable("benchmark", string(V15None), string(V15L1B), string(V15Comp), string(V15Both))
	for _, b := range r.Benchmarks {
		t.AddRow(b, r.Normalized[V15None][b], r.Normalized[V15L1B][b],
			r.Normalized[V15Comp][b], r.Normalized[V15Both][b])
	}
	cells := make([]interface{}, 0, 5)
	cells = append(cells, "GEOMEAN")
	for _, v := range order {
		cells = append(cells, r.Geomean[v])
	}
	t.AddRow(cells...)
	return "Fig 15: AOS optimization ablation (normalized execution time)\n" + t.String()
}

// Fig16Row is one benchmark's instruction statistics, scaled per 1B
// instructions as the paper plots.
type Fig16Row struct {
	Name          string
	UnsignedLoad  float64
	UnsignedStore float64
	SignedLoad    float64
	SignedStore   float64
	BoundsOps     float64
	PAOps         float64
}

// Fig16 extracts the instruction mix of the AOS runs (per 1B instructions,
// in millions — matching the paper's y-axis).
func Fig16(m *Matrix) []Fig16Row {
	var rows []Fig16Row
	for _, name := range m.Benchmarks {
		c := m.Runs[name][instrument.AOS].Counts
		scale := 1e9 / float64(c.Total) / 1e6 // per 1B instrs, in millions
		rows = append(rows, Fig16Row{
			Name:          name,
			UnsignedLoad:  float64(c.UnsignedLoads) * scale,
			UnsignedStore: float64(c.UnsignedStore) * scale,
			SignedLoad:    float64(c.SignedLoads) * scale,
			SignedStore:   float64(c.SignedStores) * scale,
			BoundsOps:     float64(c.BoundsOps()) * scale,
			PAOps:         float64(c.PAOps()) * scale,
		})
	}
	return rows
}

// Fig16String renders the rows.
func Fig16String(rows []Fig16Row) string {
	t := stats.NewTable("benchmark", "UnsignedLoad(M)", "UnsignedStore(M)",
		"SignedLoad(M)", "SignedStore(M)", "bndstr/bndclr(M)", "pac*/aut*/xpac*(M)")
	for _, r := range rows {
		t.AddRow(r.Name, fmt.Sprintf("%.1f", r.UnsignedLoad), fmt.Sprintf("%.1f", r.UnsignedStore),
			fmt.Sprintf("%.1f", r.SignedLoad), fmt.Sprintf("%.1f", r.SignedStore),
			fmt.Sprintf("%.2f", r.BoundsOps), fmt.Sprintf("%.2f", r.PAOps))
	}
	return "Fig 16: instructions of interest per 1B instructions (millions)\n" + t.String()
}

// Fig17Row is one benchmark's bounds-access behaviour.
type Fig17Row struct {
	Name            string
	AccessesPerInst float64
	BWBHitRate      float64
}

// Fig17 extracts bounds-table accesses per checked instruction and the BWB
// hit rate from the AOS runs.
func Fig17(m *Matrix) []Fig17Row {
	var rows []Fig17Row
	for _, name := range m.Benchmarks {
		r := m.Runs[name][instrument.AOS].CPU
		per := 0.0
		if ops := r.CheckedOps + uint64(r.Resizes); r.CheckedOps > 0 {
			_ = ops
			per = float64(r.BoundsAccesses) / float64(r.CheckedOps)
		}
		rows = append(rows, Fig17Row{Name: name, AccessesPerInst: per, BWBHitRate: r.BWB.HitRate()})
	}
	return rows
}

// Fig17String renders the rows.
func Fig17String(rows []Fig17Row) string {
	t := stats.NewTable("benchmark", "accesses/checked-op", "BWB hit rate")
	for _, r := range rows {
		t.AddRow(r.Name, r.AccessesPerInst, r.BWBHitRate)
	}
	return "Fig 17: bounds-table accesses and BWB hit rate (AOS)\n" + t.String()
}

// Fig18Result is normalized memory-hierarchy traffic.
type Fig18Result struct {
	Rows    []Fig14Row // same shape: normalized values per scheme
	Geomean map[instrument.Scheme]float64
}

// Fig18 derives normalized network traffic from the matrix.
func Fig18(m *Matrix) *Fig18Result {
	res := &Fig18Result{Geomean: make(map[instrument.Scheme]float64)}
	series := make(map[instrument.Scheme][]float64)
	for _, name := range m.Benchmarks {
		base := float64(m.Runs[name][instrument.Baseline].CPU.Traffic.Total())
		row := Fig14Row{Name: name, Normalized: make(map[instrument.Scheme]float64)}
		for _, s := range instrument.Schemes() {
			n := float64(m.Runs[name][s].CPU.Traffic.Total()) / base
			row.Normalized[s] = n
			if s != instrument.Baseline {
				series[s] = append(series[s], n)
			}
		}
		res.Rows = append(res.Rows, row)
	}
	for s, xs := range series {
		res.Geomean[s] = stats.Geomean(xs)
	}
	return res
}

// CSV renders the traffic rows as comma-separated values.
func (r *Fig18Result) CSV() string {
	var b strings.Builder
	b.WriteString("benchmark,watchdog,pa,aos,pa+aos\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%s,%.4f,%.4f,%.4f,%.4f\n", row.Name,
			row.Normalized[instrument.Watchdog], row.Normalized[instrument.PA],
			row.Normalized[instrument.AOS], row.Normalized[instrument.PAAOS])
	}
	fmt.Fprintf(&b, "geomean,%.4f,%.4f,%.4f,%.4f\n",
		r.Geomean[instrument.Watchdog], r.Geomean[instrument.PA],
		r.Geomean[instrument.AOS], r.Geomean[instrument.PAAOS])
	return b.String()
}

// String renders Fig 18.
func (r *Fig18Result) String() string {
	t := stats.NewTable("benchmark", "Watchdog", "PA", "AOS", "PA+AOS")
	for _, row := range r.Rows {
		t.AddRow(row.Name,
			row.Normalized[instrument.Watchdog],
			row.Normalized[instrument.PA],
			row.Normalized[instrument.AOS],
			row.Normalized[instrument.PAAOS])
	}
	t.AddRow("GEOMEAN",
		r.Geomean[instrument.Watchdog],
		r.Geomean[instrument.PA],
		r.Geomean[instrument.AOS],
		r.Geomean[instrument.PAAOS])
	return "Fig 18: normalized memory-hierarchy traffic (baseline = 1.0)\n" + t.String()
}

// Fig11Result is the PAC-distribution study.
type Fig11Result struct {
	Mallocs  uint64
	Space    uint64
	Distinct int
	Summary  stats.Summary
}

// Fig11 reproduces §VI: N malloc calls, PACs computed with QARMA-64 using
// the paper's key and context over the returned addresses, histogrammed
// over the 16-bit PAC space.
func Fig11(n int) (*Fig11Result, error) {
	// The paper's exact parameters: context 0x477d469dec0b8762, key
	// 0x84be85ce9804e94bec2802d4e0a488e9.
	const context = 0x477d469dec0b8762
	ciph := qarma.MustNew(qarma.Sigma1, qarma.Rounds, 0x84be85ce9804e94b, 0xec2802d4e0a488e9)

	mm := mem.New()
	alloc := heap.New(mm, kernel.HeapBase, 1<<36)
	h := stats.NewHistogram()
	for i := 0; i < n; i++ {
		// Continuous mallocs (§VI: "continuously calls malloc() 1 million
		// times"): every chunk gets a fresh address, so the histogram
		// reflects the cipher, not allocator address reuse.
		size := uint64(16 + (i%3)*16)
		ptr, err := alloc.Malloc(size)
		if err != nil {
			return nil, err
		}
		pac := uint16(ciph.Encrypt(ptr, context))
		h.Add(uint64(pac))
	}
	return &Fig11Result{
		Mallocs:  uint64(n),
		Space:    pa.PACSpace,
		Distinct: h.Distinct(),
		Summary:  h.OccurrenceSummary(pa.PACSpace),
	}, nil
}

// String renders Fig 11's caption line.
func (r *Fig11Result) String() string {
	return fmt.Sprintf(
		"Fig 11: PAC distribution over %d mallocs (16-bit PACs)\n"+
			"  distinct PACs: %d / %d\n"+
			"  occurrences per PAC: avg=%.1f max=%d min=%d stdev=%.2f\n"+
			"  (paper, 1M mallocs: avg=16.0 max=36 min=3 stdev=3.99)",
		r.Mallocs, r.Distinct, r.Space,
		r.Summary.Avg, r.Summary.Max, r.Summary.Min, r.Summary.Stdev)
}

// Table1 returns the hardware-overhead estimates.
func Table1() []hwmodel.Estimate { return hwmodel.TableI() }

// Table1String renders Table I.
func Table1String() string {
	var b strings.Builder
	b.WriteString("Table I: hardware overhead (analytical SRAM model @45nm)\n")
	t := stats.NewTable("structure", "size", "area(mm2)", "access(ns)", "dyn energy(nJ)", "leakage(mW)")
	for _, e := range Table1() {
		t.AddRow(e.Name,
			fmt.Sprintf("%.0fB", e.SizeBytes),
			fmt.Sprintf("%.5f", e.AreaMM2),
			fmt.Sprintf("%.4f", e.AccessNS),
			fmt.Sprintf("%.6f", e.DynamicNJ),
			fmt.Sprintf("%.3f", e.LeakageMW))
	}
	b.WriteString(t.String())
	return b.String()
}

// MemProfiles reproduces Table II (set="spec") or Table III
// (set="realworld") by replaying each profile's full-scale allocation
// schedule through the real allocator. scale divides the published counts
// (1 = full scale; benchmarks use larger divisors).
func MemProfiles(set string, scale uint64, o Options) ([]workload.MemoryProfileResult, error) {
	var profiles []*workload.Profile
	switch set {
	case "spec":
		profiles = workload.SPEC()
	case "realworld":
		profiles = workload.RealWorld()
	default:
		return nil, fmt.Errorf("unknown profile set %q", set)
	}
	var out []workload.MemoryProfileResult
	for _, p := range profiles {
		o.progress("memprofile: %s", p.Name)
		mm := mem.New()
		alloc := heap.New(mm, kernel.HeapBase, 1<<37)
		var live []uint64
		res := p.AllocSchedule(scale, func(isAlloc bool) {
			if isAlloc {
				size := p.ChunkSize[0]
				ptr, err := alloc.Malloc(size)
				if err == nil {
					live = append(live, ptr)
				}
				return
			}
			if n := len(live); n > 0 {
				// FIFO frees mimic long-lived-first deallocation.
				ptr := live[0]
				live = live[1:]
				_ = alloc.Free(ptr)
				_ = n
			}
		})
		st := alloc.Stats()
		res.Allocs = st.Allocs
		res.Frees = st.Frees
		res.MaxLive = st.MaxLive
		res.EndLive = st.Live
		out = append(out, res)
	}
	return out, nil
}

// MemProfilesString renders Table II/III with the paper's columns.
func MemProfilesString(title string, rows []workload.MemoryProfileResult, paper []*workload.Profile, scale uint64) string {
	t := stats.NewTable("name", "max active", "#allocation", "#deallocation",
		"paper max", "paper alloc", "paper dealloc")
	byName := make(map[string]*workload.Profile)
	for _, p := range paper {
		byName[p.Name] = p
	}
	for _, r := range rows {
		p := byName[r.Name]
		t.AddRow(r.Name, r.MaxLive, r.Allocs, r.Frees,
			p.TableMaxLive, p.TableAllocs, p.TableFrees)
	}
	hdr := title
	if scale > 1 {
		hdr += fmt.Sprintf(" (counts scaled by 1/%d)", scale)
	}
	return hdr + "\n" + t.String()
}
