// Package experiments implements the paper's evaluation: one function per
// table and figure, each returning a typed result with a paper-style text
// rendering. cmd/aosbench and the top-level benchmarks are thin wrappers
// over this package.
//
// Matrix-style experiments (the 16-benchmark x 5-scheme evaluation behind
// Fig 14/16/17/18, the Fig 15 ablation, the resize study and the memory
// profiles) fan out over internal/runner's bounded worker pool. Every job
// builds its own core.Machine + cpu.Core and seeds its own RNG, so runs
// share no mutable state and Options.Workers only changes wall-clock time:
// 1-worker and N-worker runs produce byte-identical tables.
package experiments

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"time"

	"aos/internal/core"
	"aos/internal/cpu"
	"aos/internal/heap"
	"aos/internal/hwmodel"
	"aos/internal/instrument"
	"aos/internal/isa"
	"aos/internal/kernel"
	"aos/internal/mem"
	"aos/internal/pa"
	"aos/internal/qarma"
	"aos/internal/runner"
	"aos/internal/sampling"
	"aos/internal/stats"
	"aos/internal/telemetry"
	"aos/internal/tracecheck"
	"aos/internal/workload"
)

// Event is a structured progress update (re-exported from runner): per-job
// completions carry Completed/Total and wall time, stage announcements
// carry only a Label.
type Event = runner.Event

// Options scales the experiments.
type Options struct {
	// Instructions overrides every profile's program-instruction budget
	// (0 keeps per-profile defaults). Benchmarks use small values; the
	// full harness uses the defaults.
	Instructions uint64
	// Seed drives the deterministic workload generators.
	Seed int64
	// Workers bounds the parallel jobs for matrix-style experiments
	// (<= 0 uses runtime.GOMAXPROCS). Results are independent of the
	// worker count.
	Workers int
	// Progress, when non-nil, receives structured progress events.
	Progress func(Event)
	// Sanitize tees every job's instruction stream through the tracecheck
	// protocol verifier and fails the job on any violation.
	Sanitize bool
	// ScalarEmit disables batched emission in every job (per-instruction
	// Sink.Emit instead of EmitBatch chunks). Outputs are byte-identical
	// either way — TestMatrixBatchScalarEquivalence pins that — so the
	// switch exists for that test and for debugging.
	ScalarEmit bool
	// Context, when non-nil, cancels in-flight experiments: pool workers
	// observe it between jobs, and each job's emission loop polls it
	// mid-run, so a timeout or client abandon stops the whole matrix
	// promptly. Canceled jobs surface context errors in the usual per-job
	// error aggregation. Nil means context.Background().
	Context context.Context
	// TelemetryInterval, when nonzero, attaches the flight recorder to
	// every job: each run samples its probes every TelemetryInterval
	// commit cycles. Telemetry is passive — tables, figures and JSON
	// documents are byte-identical with it on or off (the sampled-vs-
	// unsampled equivalence test pins this) — so the switch only decides
	// whether timelines exist to hand to OnTimeline.
	TelemetryInterval uint64
	// OnTimeline receives each job's finished timeline when
	// TelemetryInterval is set. Jobs run on pool workers, so the
	// callback must be safe for concurrent use; it is invoked once per
	// successful run, after the run's last sample.
	OnTimeline func(benchmark string, scheme instrument.Scheme, tl *telemetry.Timeline)
	// Sampling, when non-nil, switches every job to SMARTS sampled
	// simulation with this U/W/F shape (the per-job warmup is derived
	// from the profile budget exactly as in exact mode). Cycle counts
	// become statistical estimates; architectural outputs stay exact.
	Sampling *sampling.Schedule
	// Checkpoints, when non-nil alongside Sampling, shares window-
	// boundary machine checkpoints across jobs and invocations: repeat
	// runs of a cell restore instead of fast-forwarding the prefix.
	// Safe for concurrent use. Ignored for sanitized runs (a teeing
	// protocol checker needs the uncut stream, so those sample cold).
	Checkpoints *sampling.Store
	// JobID is the serving layer's correlation id for this run (empty
	// for batch invocations). Purely diagnostic: it is stamped onto
	// sanitizer verdicts so tracecheck violations in daemon logs join
	// the job's trail, and never influences results.
	JobID string
}

func (o Options) ctx() context.Context {
	if o.Context == nil {
		return context.Background()
	}
	return o.Context
}

func (o Options) seed() int64 {
	if o.Seed == 0 {
		return 1
	}
	return o.Seed
}

// announce emits a stage-announcement event (no Completed/Total).
func (o Options) announce(format string, args ...interface{}) {
	if o.Progress != nil {
		o.Progress(Event{Label: fmt.Sprintf(format, args...)})
	}
}

func (o Options) runnerOptions() runner.Options {
	return runner.Options{Workers: o.Workers, OnEvent: o.Progress}
}

// sanitizer wires the machine's sink: straight to the timing core, or teed
// through a fresh protocol checker when Options.Sanitize is set.
func (o Options) sanitizer(scheme instrument.Scheme, m *core.Machine, c *cpu.Core) *tracecheck.Checker {
	if !o.Sanitize {
		m.SetSink(c)
		return nil
	}
	chk := tracecheck.New(scheme)
	chk.SetJob(o.JobID)
	m.SetSink(isa.MultiSink{c, chk})
	return chk
}

// sanitizeErr finishes a checker (nil is fine) and decorates its verdict
// with the job identity.
func sanitizeErr(chk *tracecheck.Checker, benchmark string, scheme instrument.Scheme) error {
	if chk == nil {
		return nil
	}
	chk.Finish()
	if err := chk.Err(); err != nil {
		return fmt.Errorf("%s under %v: %w", benchmark, scheme, err)
	}
	return nil
}

// runOne executes a profile under a scheme with optional AOS feature
// toggles, returning the run summary.
type runSummary struct {
	Scheme  instrument.Scheme
	CPU     cpu.Result
	Counts  isa.Counts
	Heap    heap.Stats
	Resizes int
	Excs    int
}

type aosVariant struct {
	disableL1B         bool
	disableCompression bool
	disableBWB         bool
	disableForwarding  bool
}

func runOne(p *workload.Profile, scheme instrument.Scheme, v aosVariant, o Options) (runSummary, error) {
	if o.Sampling != nil {
		return runOneSampled(p, scheme, v, o)
	}
	m, err := core.New(core.Config{
		Scheme:             scheme,
		UncompressedBounds: v.disableCompression,
		CodeFootprint:      p.CodeFootprint,
	})
	if err != nil {
		return runSummary{}, err
	}
	cfg := cpu.DefaultConfig()
	if v.disableL1B {
		cfg.Caches.L1B = nil
	}
	cfg.MCU.UseBWB = !v.disableBWB
	cfg.MCU.Forwarding = !v.disableForwarding
	c := cpu.New(cfg)
	chk := o.sanitizer(scheme, m, c)
	if !o.ScalarEmit {
		m.SetBatch(core.EmitBatchSize)
	}
	var tl *telemetry.Timeline
	if o.TelemetryInterval != 0 {
		tl = telemetry.NewTimeline(telemetry.NewRegistry(), o.TelemetryInterval)
		c.AttachTelemetry(tl)
		m.AttachTelemetry(tl)
	}

	prof := p.Clone() // independent copy: jobs may share *p across workers
	if o.Instructions != 0 {
		prof.Instructions = o.Instructions
	}
	// Warm the caches, predictor and BWB over half a budget, then measure.
	var warmCounts isa.Counts
	warmup := prof.Instructions / 2
	if err := prof.RunCtx(o.ctx(), m, o.seed(), warmup, func() {
		c.ResetStats()
		warmCounts = m.Counts()
	}); err != nil {
		return runSummary{}, err
	}
	if err := sanitizeErr(chk, p.Name, scheme); err != nil {
		return runSummary{}, err
	}
	counts := subtractWarm(m.Counts(), warmCounts)
	if tl != nil && o.OnTimeline != nil {
		o.OnTimeline(p.Name, scheme, tl)
	}
	return runSummary{
		Scheme:  scheme,
		CPU:     c.Finalize(),
		Counts:  counts,
		Heap:    m.Heap.Stats(),
		Resizes: len(m.OS.Resizes()),
		Excs:    len(m.Exceptions()),
	}, nil
}

// runJob is the matrix job body, indirected so tests can inject failures.
var runJob = runOne

// JobSpec identifies one run in an evaluation matrix: a benchmark under a
// scheme, optionally in a named configuration variant.
type JobSpec struct {
	Benchmark string
	Scheme    instrument.Scheme
	Variant   string
}

// String renders the spec as benchmark/scheme[/variant].
func (s JobSpec) String() string {
	if s.Variant == "" {
		return s.Benchmark + "/" + s.Scheme.String()
	}
	return s.Benchmark + "/" + s.Scheme.String() + "/" + s.Variant
}

// JobError records one failed matrix job.
type JobError struct {
	Spec JobSpec
	Err  error
}

// Matrix holds the full 16-benchmark x 5-scheme evaluation used by
// Fig 14 (execution time), Fig 16/17 (AOS behaviour) and Fig 18 (traffic).
// Runs and Walls hold only the jobs that succeeded; Errors lists the rest,
// so a single failed job never discards the other jobs' results.
type Matrix struct {
	Benchmarks []string
	Runs       map[string]map[instrument.Scheme]runSummary
	// Walls records each job's wall-clock time (machine-readable output).
	Walls map[string]map[instrument.Scheme]time.Duration
	// Errors lists failed jobs in job order.
	Errors []JobError
}

// Err joins the failed jobs' errors in job order (nil if none failed).
func (m *Matrix) Err() error {
	var errs []error
	for _, e := range m.Errors {
		errs = append(errs, fmt.Errorf("%s: %w", e.Spec, e.Err))
	}
	return errors.Join(errs...)
}

// Run looks up one benchmark/scheme summary.
func (m *Matrix) run(name string, s instrument.Scheme) (runSummary, error) {
	r, ok := m.Runs[name][s]
	if !ok {
		return runSummary{}, fmt.Errorf("matrix: missing %s run", JobSpec{Benchmark: name, Scheme: s})
	}
	return r, nil
}

// MatrixBenchmarks returns the evaluation matrix's benchmark names in
// matrix order (the paper's SPEC ordering). Services composing figures
// cell-by-cell iterate this list rather than re-deriving it.
func MatrixBenchmarks() []string {
	profiles := workload.SPEC()
	names := make([]string, len(profiles))
	for i, p := range profiles {
		names[i] = p.Name
	}
	return names
}

// RunMatrix executes the full evaluation matrix over the worker pool.
// On job failures it returns the partial matrix alongside the joined
// error, so callers can still inspect (or render) the surviving runs.
func RunMatrix(o Options) (*Matrix, error) {
	profiles := workload.SPEC()
	var specs []JobSpec
	var jobs []runner.Job[runSummary]
	for _, p := range profiles {
		p := p
		for _, s := range instrument.Schemes() {
			s := s
			spec := JobSpec{Benchmark: p.Name, Scheme: s}
			specs = append(specs, spec)
			jobs = append(jobs, runner.Job[runSummary]{
				Label: "fig14: " + spec.String(),
				Run:   func() (runSummary, error) { return runJob(p, s, aosVariant{}, o) },
			})
		}
	}
	results := runner.Run(o.ctx(), jobs, o.runnerOptions())

	m := &Matrix{
		Runs:  make(map[string]map[instrument.Scheme]runSummary),
		Walls: make(map[string]map[instrument.Scheme]time.Duration),
	}
	for _, p := range profiles {
		m.Benchmarks = append(m.Benchmarks, p.Name)
		m.Runs[p.Name] = make(map[instrument.Scheme]runSummary)
		m.Walls[p.Name] = make(map[instrument.Scheme]time.Duration)
	}
	for i, r := range results {
		spec := specs[i]
		if r.Err != nil {
			m.Errors = append(m.Errors, JobError{Spec: spec, Err: r.Err})
			continue
		}
		m.Runs[spec.Benchmark][spec.Scheme] = r.Value
		m.Walls[spec.Benchmark][spec.Scheme] = r.Wall
	}
	return m, m.Err()
}

// Fig14Row is one benchmark's normalized execution times.
type Fig14Row struct {
	Name       string
	Normalized map[instrument.Scheme]float64
}

// Fig14Result is the paper's headline figure.
type Fig14Result struct {
	Rows    []Fig14Row
	Geomean map[instrument.Scheme]float64
}

// Fig14 derives normalized execution time from the matrix. A missing or
// zero-cycle Baseline run is an error (it would otherwise poison the
// geomean with NaN/Inf), as is any missing scheme run.
func Fig14(m *Matrix) (*Fig14Result, error) {
	res := &Fig14Result{Geomean: make(map[instrument.Scheme]float64)}
	series := make(map[instrument.Scheme][]float64)
	for _, name := range m.Benchmarks {
		baseRun, err := m.run(name, instrument.Baseline)
		if err != nil {
			return nil, fmt.Errorf("fig14: %w", err)
		}
		base := float64(baseRun.CPU.Cycles)
		if base == 0 {
			return nil, fmt.Errorf("fig14: %s: Baseline run has zero cycles; cannot normalize", name)
		}
		row := Fig14Row{Name: name, Normalized: make(map[instrument.Scheme]float64)}
		for _, s := range instrument.Schemes() {
			r, err := m.run(name, s)
			if err != nil {
				return nil, fmt.Errorf("fig14: %w", err)
			}
			n := float64(r.CPU.Cycles) / base
			row.Normalized[s] = n
			if s != instrument.Baseline {
				series[s] = append(series[s], n)
			}
		}
		res.Rows = append(res.Rows, row)
	}
	for s, xs := range series {
		res.Geomean[s] = stats.Geomean(xs)
	}
	return res, nil
}

// CSV renders the normalized-time rows as comma-separated values for
// external plotting.
func (r *Fig14Result) CSV() string {
	var b strings.Builder
	b.WriteString("benchmark,watchdog,pa,aos,pa+aos\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%s,%.4f,%.4f,%.4f,%.4f\n", row.Name,
			row.Normalized[instrument.Watchdog], row.Normalized[instrument.PA],
			row.Normalized[instrument.AOS], row.Normalized[instrument.PAAOS])
	}
	fmt.Fprintf(&b, "geomean,%.4f,%.4f,%.4f,%.4f\n",
		r.Geomean[instrument.Watchdog], r.Geomean[instrument.PA],
		r.Geomean[instrument.AOS], r.Geomean[instrument.PAAOS])
	return b.String()
}

// String renders Fig 14 as a table.
func (r *Fig14Result) String() string {
	t := stats.NewTable("benchmark", "Watchdog", "PA", "AOS", "PA+AOS")
	for _, row := range r.Rows {
		t.AddRow(row.Name,
			row.Normalized[instrument.Watchdog],
			row.Normalized[instrument.PA],
			row.Normalized[instrument.AOS],
			row.Normalized[instrument.PAAOS])
	}
	t.AddRow("GEOMEAN",
		r.Geomean[instrument.Watchdog],
		r.Geomean[instrument.PA],
		r.Geomean[instrument.AOS],
		r.Geomean[instrument.PAAOS])
	return "Fig 14: normalized execution time (baseline = 1.0)\n" + t.String()
}

// Fig15Variant identifies an optimization configuration.
type Fig15Variant string

// The four Fig 15 configurations.
const (
	V15None Fig15Variant = "NoOptimization"
	V15L1B  Fig15Variant = "L1-B"
	V15Comp Fig15Variant = "BoundsCompression"
	V15Both Fig15Variant = "L1-B+BoundsCompression"
)

// Fig15Result is the optimization ablation.
type Fig15Result struct {
	Benchmarks []string
	// Normalized[variant][benchmark] = exec time vs Baseline.
	Normalized map[Fig15Variant]map[string]float64
	Geomean    map[Fig15Variant]float64
}

// fig15Order is the presentation (and job) order of the variants.
var fig15Order = []Fig15Variant{V15None, V15L1B, V15Comp, V15Both}

// Fig15 runs AOS under the four optimization configurations, fanned out
// over the worker pool (one baseline + four variant jobs per benchmark).
func Fig15(o Options) (*Fig15Result, error) {
	variants := map[Fig15Variant]aosVariant{
		V15None: {disableL1B: true, disableCompression: true},
		V15L1B:  {disableCompression: true},
		V15Comp: {disableL1B: true},
		V15Both: {},
	}
	profiles := workload.SPEC()
	var specs []JobSpec
	var jobs []runner.Job[runSummary]
	addJob := func(p *workload.Profile, s instrument.Scheme, variant string, av aosVariant) {
		spec := JobSpec{Benchmark: p.Name, Scheme: s, Variant: variant}
		specs = append(specs, spec)
		jobs = append(jobs, runner.Job[runSummary]{
			Label: "fig15: " + spec.String(),
			Run:   func() (runSummary, error) { return runJob(p, s, av, o) },
		})
	}
	for _, p := range profiles {
		p := p
		addJob(p, instrument.Baseline, "", aosVariant{})
		for _, v := range fig15Order {
			addJob(p, instrument.AOS, string(v), variants[v])
		}
	}
	results := runner.Run(o.ctx(), jobs, o.runnerOptions())
	if err := runner.Errs(results); err != nil {
		return nil, err
	}

	res := &Fig15Result{
		Normalized: make(map[Fig15Variant]map[string]float64),
		Geomean:    make(map[Fig15Variant]float64),
	}
	for v := range variants {
		res.Normalized[v] = make(map[string]float64)
	}
	series := make(map[Fig15Variant][]float64)
	bySpec := make(map[JobSpec]runSummary, len(results))
	for i, r := range results {
		bySpec[specs[i]] = r.Value
	}
	for _, p := range profiles {
		res.Benchmarks = append(res.Benchmarks, p.Name)
		base := float64(bySpec[JobSpec{Benchmark: p.Name, Scheme: instrument.Baseline}].CPU.Cycles)
		if base == 0 {
			return nil, fmt.Errorf("fig15: %s: Baseline run has zero cycles; cannot normalize", p.Name)
		}
		for _, v := range fig15Order {
			r := bySpec[JobSpec{Benchmark: p.Name, Scheme: instrument.AOS, Variant: string(v)}]
			n := float64(r.CPU.Cycles) / base
			res.Normalized[v][p.Name] = n
			series[v] = append(series[v], n)
		}
	}
	for v, xs := range series {
		res.Geomean[v] = stats.Geomean(xs)
	}
	return res, nil
}

// String renders Fig 15.
func (r *Fig15Result) String() string {
	t := stats.NewTable("benchmark", string(V15None), string(V15L1B), string(V15Comp), string(V15Both))
	for _, b := range r.Benchmarks {
		t.AddRow(b, r.Normalized[V15None][b], r.Normalized[V15L1B][b],
			r.Normalized[V15Comp][b], r.Normalized[V15Both][b])
	}
	cells := make([]interface{}, 0, 5)
	cells = append(cells, "GEOMEAN")
	for _, v := range fig15Order {
		cells = append(cells, r.Geomean[v])
	}
	t.AddRow(cells...)
	return "Fig 15: AOS optimization ablation (normalized execution time)\n" + t.String()
}

// Fig16Row is one benchmark's instruction statistics, scaled per 1B
// instructions as the paper plots.
type Fig16Row struct {
	Name          string
	UnsignedLoad  float64
	UnsignedStore float64
	SignedLoad    float64
	SignedStore   float64
	BoundsOps     float64
	PAOps         float64
}

// Fig16 extracts the instruction mix of the AOS runs (per 1B instructions,
// in millions — matching the paper's y-axis). A missing AOS run or an
// empty instruction count is an error rather than a silent Inf row.
func Fig16(m *Matrix) ([]Fig16Row, error) {
	var rows []Fig16Row
	for _, name := range m.Benchmarks {
		r, err := m.run(name, instrument.AOS)
		if err != nil {
			return nil, fmt.Errorf("fig16: %w", err)
		}
		c := r.Counts
		if c.Total == 0 {
			return nil, fmt.Errorf("fig16: %s: AOS run retired zero instructions", name)
		}
		scale := 1e9 / float64(c.Total) / 1e6 // per 1B instrs, in millions
		rows = append(rows, Fig16Row{
			Name:          name,
			UnsignedLoad:  float64(c.UnsignedLoads) * scale,
			UnsignedStore: float64(c.UnsignedStore) * scale,
			SignedLoad:    float64(c.SignedLoads) * scale,
			SignedStore:   float64(c.SignedStores) * scale,
			BoundsOps:     float64(c.BoundsOps()) * scale,
			PAOps:         float64(c.PAOps()) * scale,
		})
	}
	return rows, nil
}

// Fig16String renders the rows.
func Fig16String(rows []Fig16Row) string {
	t := stats.NewTable("benchmark", "UnsignedLoad(M)", "UnsignedStore(M)",
		"SignedLoad(M)", "SignedStore(M)", "bndstr/bndclr(M)", "pac*/aut*/xpac*(M)")
	for _, r := range rows {
		t.AddRow(r.Name, fmt.Sprintf("%.1f", r.UnsignedLoad), fmt.Sprintf("%.1f", r.UnsignedStore),
			fmt.Sprintf("%.1f", r.SignedLoad), fmt.Sprintf("%.1f", r.SignedStore),
			fmt.Sprintf("%.2f", r.BoundsOps), fmt.Sprintf("%.2f", r.PAOps))
	}
	return "Fig 16: instructions of interest per 1B instructions (millions)\n" + t.String()
}

// Fig17Row is one benchmark's bounds-access behaviour.
type Fig17Row struct {
	Name            string
	AccessesPerInst float64
	BWBHitRate      float64
}

// Fig17 extracts bounds-table accesses per checked instruction and the BWB
// hit rate from the AOS runs. A missing AOS run is an error; a run with
// zero checked operations yields a zero row (nothing to normalize).
func Fig17(m *Matrix) ([]Fig17Row, error) {
	var rows []Fig17Row
	for _, name := range m.Benchmarks {
		run, err := m.run(name, instrument.AOS)
		if err != nil {
			return nil, fmt.Errorf("fig17: %w", err)
		}
		r := run.CPU
		per := 0.0
		if r.CheckedOps > 0 {
			per = float64(r.BoundsAccesses) / float64(r.CheckedOps)
		}
		rows = append(rows, Fig17Row{Name: name, AccessesPerInst: per, BWBHitRate: r.BWB.HitRate()})
	}
	return rows, nil
}

// Fig17String renders the rows.
func Fig17String(rows []Fig17Row) string {
	t := stats.NewTable("benchmark", "accesses/checked-op", "BWB hit rate")
	for _, r := range rows {
		t.AddRow(r.Name, r.AccessesPerInst, r.BWBHitRate)
	}
	return "Fig 17: bounds-table accesses and BWB hit rate (AOS)\n" + t.String()
}

// Fig18Result is normalized memory-hierarchy traffic.
type Fig18Result struct {
	Rows    []Fig14Row // same shape: normalized values per scheme
	Geomean map[instrument.Scheme]float64
}

// Fig18 derives normalized network traffic from the matrix, with the same
// missing/zero-baseline guards as Fig14.
func Fig18(m *Matrix) (*Fig18Result, error) {
	res := &Fig18Result{Geomean: make(map[instrument.Scheme]float64)}
	series := make(map[instrument.Scheme][]float64)
	for _, name := range m.Benchmarks {
		baseRun, err := m.run(name, instrument.Baseline)
		if err != nil {
			return nil, fmt.Errorf("fig18: %w", err)
		}
		base := float64(baseRun.CPU.Traffic.Total())
		if base == 0 {
			return nil, fmt.Errorf("fig18: %s: Baseline run has zero traffic; cannot normalize", name)
		}
		row := Fig14Row{Name: name, Normalized: make(map[instrument.Scheme]float64)}
		for _, s := range instrument.Schemes() {
			r, err := m.run(name, s)
			if err != nil {
				return nil, fmt.Errorf("fig18: %w", err)
			}
			n := float64(r.CPU.Traffic.Total()) / base
			row.Normalized[s] = n
			if s != instrument.Baseline {
				series[s] = append(series[s], n)
			}
		}
		res.Rows = append(res.Rows, row)
	}
	for s, xs := range series {
		res.Geomean[s] = stats.Geomean(xs)
	}
	return res, nil
}

// CSV renders the traffic rows as comma-separated values.
func (r *Fig18Result) CSV() string {
	var b strings.Builder
	b.WriteString("benchmark,watchdog,pa,aos,pa+aos\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%s,%.4f,%.4f,%.4f,%.4f\n", row.Name,
			row.Normalized[instrument.Watchdog], row.Normalized[instrument.PA],
			row.Normalized[instrument.AOS], row.Normalized[instrument.PAAOS])
	}
	fmt.Fprintf(&b, "geomean,%.4f,%.4f,%.4f,%.4f\n",
		r.Geomean[instrument.Watchdog], r.Geomean[instrument.PA],
		r.Geomean[instrument.AOS], r.Geomean[instrument.PAAOS])
	return b.String()
}

// String renders Fig 18.
func (r *Fig18Result) String() string {
	t := stats.NewTable("benchmark", "Watchdog", "PA", "AOS", "PA+AOS")
	for _, row := range r.Rows {
		t.AddRow(row.Name,
			row.Normalized[instrument.Watchdog],
			row.Normalized[instrument.PA],
			row.Normalized[instrument.AOS],
			row.Normalized[instrument.PAAOS])
	}
	t.AddRow("GEOMEAN",
		r.Geomean[instrument.Watchdog],
		r.Geomean[instrument.PA],
		r.Geomean[instrument.AOS],
		r.Geomean[instrument.PAAOS])
	return "Fig 18: normalized memory-hierarchy traffic (baseline = 1.0)\n" + t.String()
}

// Fig11Result is the PAC-distribution study.
type Fig11Result struct {
	Mallocs  uint64
	Space    uint64
	Distinct int
	Summary  stats.Summary
}

// Fig11 reproduces §VI: N malloc calls, PACs computed with QARMA-64 using
// the paper's key and context over the returned addresses, histogrammed
// over the 16-bit PAC space.
func Fig11(n int) (*Fig11Result, error) {
	// The paper's exact parameters: context 0x477d469dec0b8762, key
	// 0x84be85ce9804e94bec2802d4e0a488e9.
	const context = 0x477d469dec0b8762
	ciph := qarma.MustNew(qarma.Sigma1, qarma.Rounds, 0x84be85ce9804e94b, 0xec2802d4e0a488e9)

	mm := mem.New()
	alloc := heap.New(mm, kernel.HeapBase, 1<<36)
	h := stats.NewHistogram()
	for i := 0; i < n; i++ {
		// Continuous mallocs (§VI: "continuously calls malloc() 1 million
		// times"): every chunk gets a fresh address, so the histogram
		// reflects the cipher, not allocator address reuse.
		size := uint64(16 + (i%3)*16)
		ptr, err := alloc.Malloc(size)
		if err != nil {
			return nil, err
		}
		pac := uint16(ciph.Encrypt(ptr, context))
		h.Add(uint64(pac))
	}
	return &Fig11Result{
		Mallocs:  uint64(n),
		Space:    pa.PACSpace,
		Distinct: h.Distinct(),
		Summary:  h.OccurrenceSummary(pa.PACSpace),
	}, nil
}

// String renders Fig 11's caption line.
func (r *Fig11Result) String() string {
	return fmt.Sprintf(
		"Fig 11: PAC distribution over %d mallocs (16-bit PACs)\n"+
			"  distinct PACs: %d / %d\n"+
			"  occurrences per PAC: avg=%.1f max=%d min=%d stdev=%.2f\n"+
			"  (paper, 1M mallocs: avg=16.0 max=36 min=3 stdev=3.99)",
		r.Mallocs, r.Distinct, r.Space,
		r.Summary.Avg, r.Summary.Max, r.Summary.Min, r.Summary.Stdev)
}

// Table1 returns the hardware-overhead estimates.
func Table1() []hwmodel.Estimate { return hwmodel.TableI() }

// Table1String renders Table I.
func Table1String() string {
	var b strings.Builder
	b.WriteString("Table I: hardware overhead (analytical SRAM model @45nm)\n")
	t := stats.NewTable("structure", "size", "area(mm2)", "access(ns)", "dyn energy(nJ)", "leakage(mW)")
	for _, e := range Table1() {
		t.AddRow(e.Name,
			fmt.Sprintf("%.0fB", e.SizeBytes),
			fmt.Sprintf("%.5f", e.AreaMM2),
			fmt.Sprintf("%.4f", e.AccessNS),
			fmt.Sprintf("%.6f", e.DynamicNJ),
			fmt.Sprintf("%.3f", e.LeakageMW))
	}
	b.WriteString(t.String())
	return b.String()
}

// MemProfiles reproduces Table II (set="spec") or Table III
// (set="realworld") by replaying each profile's full-scale allocation
// schedule through the real allocator, one pool job per profile. scale
// divides the published counts (1 = full scale; benchmarks use larger
// divisors).
func MemProfiles(set string, scale uint64, o Options) ([]workload.MemoryProfileResult, error) {
	var profiles []*workload.Profile
	switch set {
	case "spec":
		profiles = workload.SPEC()
	case "realworld":
		profiles = workload.RealWorld()
	default:
		return nil, fmt.Errorf("unknown profile set %q", set)
	}
	jobs := make([]runner.Job[workload.MemoryProfileResult], len(profiles))
	for i, p := range profiles {
		p := p
		jobs[i] = runner.Job[workload.MemoryProfileResult]{
			Label: "memprofile: " + p.Name,
			Run: func() (workload.MemoryProfileResult, error) {
				mm := mem.New()
				alloc := heap.New(mm, kernel.HeapBase, 1<<37)
				var live []uint64
				res := p.AllocSchedule(scale, func(isAlloc bool) {
					if isAlloc {
						size := p.ChunkSize[0]
						ptr, err := alloc.Malloc(size)
						if err == nil {
							live = append(live, ptr)
						}
						return
					}
					if len(live) > 0 {
						// FIFO frees mimic long-lived-first deallocation.
						ptr := live[0]
						live = live[1:]
						_ = alloc.Free(ptr)
					}
				})
				st := alloc.Stats()
				res.Allocs = st.Allocs
				res.Frees = st.Frees
				res.MaxLive = st.MaxLive
				res.EndLive = st.Live
				return res, nil
			},
		}
	}
	results := runner.Run(o.ctx(), jobs, o.runnerOptions())
	if err := runner.Errs(results); err != nil {
		return nil, err
	}
	out := make([]workload.MemoryProfileResult, len(results))
	for i, r := range results {
		out[i] = r.Value
	}
	return out, nil
}

// MemProfilesString renders Table II/III with the paper's columns.
func MemProfilesString(title string, rows []workload.MemoryProfileResult, paper []*workload.Profile, scale uint64) string {
	t := stats.NewTable("name", "max active", "#allocation", "#deallocation",
		"paper max", "paper alloc", "paper dealloc")
	byName := make(map[string]*workload.Profile)
	for _, p := range paper {
		byName[p.Name] = p
	}
	for _, r := range rows {
		p := byName[r.Name]
		t.AddRow(r.Name, r.MaxLive, r.Allocs, r.Frees,
			p.TableMaxLive, p.TableAllocs, p.TableFrees)
	}
	hdr := title
	if scale > 1 {
		hdr += fmt.Sprintf(" (counts scaled by 1/%d)", scale)
	}
	return hdr + "\n" + t.String()
}
