package experiments

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"aos/internal/attack"
	"aos/internal/instrument"
	"aos/internal/runner"
	"aos/internal/security"
	"aos/internal/stats"
)

// DefaultAttackPrograms is the per-cell sample size the attacks matrix
// (and an elided AttackSpec.Programs) uses: large enough that every
// documented probabilistic bypass window is sampled, small enough that
// the full 7x8 matrix runs in seconds.
const DefaultAttackPrograms = 48

// AttackSpec is the content-addressable identity of one detection-rate
// cell: a scheme grading a sample of generated attack programs of one
// class. Like SimSpec, runs are pure functions of this tuple — the
// generator derives every program from (seed, class, index) alone — so
// the cell is sound to cache by content address.
type AttackSpec struct {
	// Scheme is the protection scheme's canonical name.
	Scheme string `json:"scheme"`
	// Class is the attack class name (security.ClassNames spelling).
	Class string `json:"class"`
	// Programs is the sample size (0 normalizes to DefaultAttackPrograms).
	Programs int `json:"programs"`
	// Seed drives the program generator (0 normalizes to 1).
	Seed uint64 `json:"seed"`
}

// Normalize validates the spec and resolves defaults, returning the
// canonical form whose Hash identifies the cell.
func (s AttackSpec) Normalize() (AttackSpec, error) {
	scheme, err := parseSchemeField(s.Scheme)
	if err != nil {
		return AttackSpec{}, fmt.Errorf("attack spec: %w", err)
	}
	s.Scheme = scheme.String()
	class, err := security.ParseClass(s.Class)
	if err != nil {
		return AttackSpec{}, fmt.Errorf("attack spec: %w", err)
	}
	s.Class = class.String()
	if s.Programs == 0 {
		s.Programs = DefaultAttackPrograms
	}
	if s.Programs < 0 || s.Programs > 1<<16 {
		return AttackSpec{}, fmt.Errorf("attack spec: programs %d out of range", s.Programs)
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	return s, nil
}

// Canonical returns the spec's canonical JSON encoding — sorted keys, no
// floats — the preimage of Hash (pinned by TestAttackSpecCanonical;
// changing it invalidates every cached attacks cell).
func (s AttackSpec) Canonical() []byte {
	b, err := json.Marshal(map[string]any{
		"class":    s.Class,
		"programs": s.Programs,
		"scheme":   s.Scheme,
		"seed":     s.Seed,
	})
	if err != nil {
		// Unreachable: the value set above cannot fail to marshal.
		panic(err)
	}
	return b
}

// Hash is the cell's content address: hex SHA-256 of Canonical (callers
// hash the Normalized spec so equivalent specs share an address).
func (s AttackSpec) Hash() string {
	sum := sha256.Sum256(s.Canonical())
	return hex.EncodeToString(sum[:])
}

// AttackCell is one graded cell — the value cached under AttackSpec.Hash.
// Counts partition the sample: every program is detected, bypassed (a
// documented probabilistic window) or escaped (the model promises no
// mechanism). Model violations never appear here: RunAttackSpec fails the
// whole cell instead of reporting a corrupt statistic.
type AttackCell struct {
	Spec AttackSpec `json:"spec"`
	// Expected is the model's promise for this cell (never, probabilistic,
	// deterministic).
	Expected string `json:"expected"`
	Detected int    `json:"detected"`
	Bypassed int    `json:"bypassed"`
	Escaped  int    `json:"escaped"`
}

// JSON renders the cell deterministically (the cached representation).
func (c *AttackCell) JSON() ([]byte, error) { return json.Marshal(c) }

// DetectionRate is the detected fraction of the sample.
func (c *AttackCell) DetectionRate() float64 {
	n := c.Detected + c.Bypassed + c.Escaped
	if n == 0 {
		return 0
	}
	return float64(c.Detected) / float64(n)
}

// RunAttackSpec grades one cell: generate the sample, run every program
// under the scheme, count verdicts. A model violation (MISSED/PHANTOM) or
// a benign-step failure is an error carrying the offending program's
// listing — the harness's soundness gate, enforced at every layer that
// computes a cell.
func RunAttackSpec(ctx context.Context, spec AttackSpec) (*AttackCell, error) {
	spec, err := spec.Normalize()
	if err != nil {
		return nil, err
	}
	scheme, err := instrument.ParseScheme(spec.Scheme)
	if err != nil {
		return nil, err
	}
	class, err := security.ParseClass(spec.Class)
	if err != nil {
		return nil, err
	}
	cell := &AttackCell{Spec: spec, Expected: security.Expected(scheme, class).String()}
	for i := 0; i < spec.Programs; i++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		p, err := attack.Generate(class, attack.MixSeed(spec.Seed, class, i))
		if err != nil {
			return nil, err
		}
		r, err := attack.Run(p, scheme)
		if err != nil {
			return nil, fmt.Errorf("attacks %s/%s program %d: %w", spec.Scheme, spec.Class, i, err)
		}
		switch r.Verdict {
		case attack.VerdictDetected:
			cell.Detected++
		case attack.VerdictBypassed:
			cell.Bypassed++
		case attack.VerdictEscaped:
			cell.Escaped++
		default:
			return nil, fmt.Errorf("attacks %s/%s program %d: model violation %v (expected %v)\n%s",
				spec.Scheme, spec.Class, i, r.Verdict, r.Expected, p.Listing())
		}
	}
	return cell, nil
}

// AttackMatrixResult is the scheme x class detection-rate matrix.
type AttackMatrixResult struct {
	Programs int
	Seed     uint64
	// Cells is class-major, scheme-minor — security.Classes() x
	// instrument.AllSchemes() order.
	Cells []*AttackCell
}

// Cell returns the (scheme, class) cell.
func (r *AttackMatrixResult) Cell(s instrument.Scheme, c security.Class) *AttackCell {
	for _, cell := range r.Cells {
		if cell.Spec.Scheme == s.String() && cell.Spec.Class == c.String() {
			return cell
		}
	}
	return nil
}

// AttackMatrix grades every registered scheme against every attack class.
// Cells fan out over the runner and fold back in spec order, so the
// result — and its rendering — is byte-identical at a fixed seed under
// any worker count.
func AttackMatrix(o Options, programs int, seed uint64) (*AttackMatrixResult, error) {
	if programs == 0 {
		programs = DefaultAttackPrograms
	}
	if seed == 0 {
		seed = 1
	}
	var specs []AttackSpec
	var jobs []runner.Job[*AttackCell]
	ctx := o.ctx()
	for _, class := range security.Classes() {
		for _, s := range instrument.AllSchemes() {
			spec := AttackSpec{Scheme: s.String(), Class: class.String(), Programs: programs, Seed: seed}
			specs = append(specs, spec)
			jobs = append(jobs, runner.Job[*AttackCell]{
				Label: fmt.Sprintf("attacks: %s under %s", spec.Class, spec.Scheme),
				Run:   func() (*AttackCell, error) { return RunAttackSpec(ctx, spec) },
			})
		}
	}
	results := runner.Run(ctx, jobs, o.runnerOptions())
	res := &AttackMatrixResult{Programs: programs, Seed: seed}
	for i, r := range results {
		if r.Err != nil {
			return nil, fmt.Errorf("attacks: %s/%s: %w", specs[i].Scheme, specs[i].Class, r.Err)
		}
		res.Cells = append(res.Cells, r.Value)
	}
	return res, nil
}

// String renders the detection-rate matrix: one row per attack class, one
// column per scheme, each cell the detected percentage plus the model's
// promise (D deterministic, P probabilistic, - never).
func (r *AttackMatrixResult) String() string {
	header := []string{"attack class"}
	for _, s := range instrument.AllSchemes() {
		header = append(header, s.String())
	}
	t := stats.NewTable(header...)
	for _, class := range security.Classes() {
		row := []interface{}{class.String()}
		for _, s := range instrument.AllSchemes() {
			cell := r.Cell(s, class)
			if cell == nil {
				row = append(row, "?")
				continue
			}
			row = append(row, fmt.Sprintf("%3.0f%% %s", 100*cell.DetectionRate(), promiseMark(cell.Expected)))
		}
		t.AddRow(row...)
	}
	return fmt.Sprintf("Detection-rate matrix: %d generated programs per cell, seed %d\n",
		r.Programs, r.Seed) + t.String() +
		"cells: detected% + model promise (D = deterministic, P = probabilistic, - = never)\n"
}

func promiseMark(expected string) string {
	switch expected {
	case security.Deterministic.String():
		return "D"
	case security.Probabilistic.String():
		return "P"
	default:
		return "-"
	}
}

// AttacksSchema versions the attacks JSON document layout.
const AttacksSchema = "aosbench/attacks/v1"

// AttacksDoc is the machine-readable matrix (`aosbench -exp attacks
// -json`, and the body aosd composes cell-by-cell from its cache).
type AttacksDoc struct {
	Schema   string        `json:"schema"`
	Programs int           `json:"programs"`
	Seed     uint64        `json:"seed"`
	Cells    []*AttackCell `json:"cells"`
}

// Document assembles the machine-readable form.
func (r *AttackMatrixResult) Document() *AttacksDoc {
	return &AttacksDoc{Schema: AttacksSchema, Programs: r.Programs, Seed: r.Seed, Cells: r.Cells}
}

// JSON renders the document with stable formatting (structs marshal in
// declaration order; counts are integers, so bytes are reproducible).
func (d *AttacksDoc) JSON() ([]byte, error) {
	return json.MarshalIndent(d, "", "  ")
}
