package experiments

import (
	"reflect"
	"sync"
	"testing"

	"aos/internal/core"
	"aos/internal/cpu"
	"aos/internal/instrument"
	"aos/internal/telemetry"
)

// TestMatrixTelemetryEquivalence is the flight recorder's passivity
// contract: a sampled matrix must produce a Matrix — and byte-identical
// rendered figures — indistinguishable from an unsampled one. Telemetry
// observes the simulation; it never feeds back into it.
func TestMatrixTelemetryEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("two matrix runs")
	}
	o := Options{Instructions: 8_000, Seed: 1, Workers: 4}
	plain, err := RunMatrix(o)
	if err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	timelines := make(map[string]*telemetry.Timeline)
	o.TelemetryInterval = 512
	o.OnTimeline = func(b string, s instrument.Scheme, tl *telemetry.Timeline) {
		mu.Lock()
		timelines[b+"/"+s.String()] = tl
		mu.Unlock()
	}
	sampled, err := RunMatrix(o)
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(plain.Runs, sampled.Runs) {
		for _, b := range plain.Benchmarks {
			for _, s := range instrument.Schemes() {
				if !reflect.DeepEqual(plain.Runs[b][s], sampled.Runs[b][s]) {
					t.Errorf("%s/%v diverges:\n  unsampled: %+v\n  sampled:   %+v",
						b, s, plain.Runs[b][s], sampled.Runs[b][s])
				}
			}
		}
		t.Fatal("matrix contents differ between sampled and unsampled runs")
	}
	f14p, err := Fig14(plain)
	if err != nil {
		t.Fatal(err)
	}
	f14s, err := Fig14(sampled)
	if err != nil {
		t.Fatal(err)
	}
	if f14p.String() != f14s.String() {
		t.Error("rendered Fig 14 differs between sampled and unsampled runs")
	}
	f18p, _ := Fig18(plain)
	f18s, _ := Fig18(sampled)
	if f18p.CSV() != f18s.CSV() {
		t.Error("Fig 18 CSV differs between sampled and unsampled runs")
	}

	// Every matrix cell produced a timeline with rows in it.
	want := len(plain.Benchmarks) * len(instrument.Schemes())
	if len(timelines) != want {
		t.Fatalf("got %d timelines, want %d", len(timelines), want)
	}
	for cell, tl := range timelines {
		if len(tl.Samples()) == 0 {
			t.Errorf("%s: timeline has no samples", cell)
		}
	}
}

// TestRunSpecFullTelemetry pins the operational extras around one cell:
// the result bytes match a plain RunSpec run, the timeline arrives, and
// the progress callback covers the whole run (warmup included).
func TestRunSpecFullTelemetry(t *testing.T) {
	spec := SimSpec{Benchmark: "mcf", Scheme: "AOS", Instructions: 6_000, Seed: 1}
	plain, err := RunSpec(t.Context(), spec)
	if err != nil {
		t.Fatal(err)
	}
	var calls int
	var lastDone, lastTotal uint64
	full, tl, err := RunSpecFull(t.Context(), spec, RunConfig{
		TelemetryInterval: 256,
		OnProgress: func(done, total uint64) {
			calls++
			lastDone, lastTotal = done, total
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	pb, _ := plain.JSON()
	fb, _ := full.JSON()
	if string(pb) != string(fb) {
		t.Errorf("sampled result bytes differ from unsampled:\n  plain: %s\n  full:  %s", pb, fb)
	}
	if tl == nil || len(tl.Samples()) == 0 {
		t.Fatalf("no timeline samples recorded (tl=%v)", tl)
	}
	if calls == 0 {
		t.Fatal("progress callback never fired")
	}
	if lastDone != lastTotal {
		t.Errorf("final progress = %d/%d, want completion", lastDone, lastTotal)
	}
}

// TestTimelineRecordsResizeSlices drives the HBT through real resizes —
// a live set big enough to overflow 1-way rows — and checks the timing
// core turned each resize into a duration slice with migration args.
func TestTimelineRecordsResizeSlices(t *testing.T) {
	m, err := core.New(core.Config{Scheme: instrument.AOS, InitialHBTAssoc: 1})
	if err != nil {
		t.Fatal(err)
	}
	c := cpu.New(cpu.DefaultConfig())
	m.SetSink(c)
	tl := telemetry.NewTimeline(telemetry.NewRegistry(), 4096)
	c.AttachTelemetry(tl)
	m.AttachTelemetry(tl)

	var ptrs []core.Ptr
	for i := 0; i < 300_000; i++ {
		p, err := m.Malloc(32)
		if err != nil {
			t.Fatal(err)
		}
		ptrs = append(ptrs, p)
	}
	for _, p := range ptrs {
		if err := m.Free(p); err != nil {
			t.Fatal(err)
		}
	}
	m.Flush()

	resizes := len(m.OS.Resizes())
	if resizes == 0 {
		t.Fatal("stress run triggered no resizes; slice path unexercised")
	}
	slices := tl.Slices()
	if len(slices) != resizes {
		t.Fatalf("got %d timeline slices, want %d (one per resize)", len(slices), resizes)
	}
	for _, s := range slices {
		if s.Name != "hbt_resize" {
			t.Errorf("slice name = %q, want hbt_resize", s.Name)
		}
		if s.Dur == 0 {
			t.Error("resize slice has zero duration")
		}
		if s.Args["new_assoc"] != 2*s.Args["old_assoc"] {
			t.Errorf("resize slice args %v: new_assoc should double old_assoc", s.Args)
		}
		if s.Args["moved_bytes"] == 0 || s.Args["traffic_bytes"] == 0 {
			t.Errorf("resize slice args %v: migration byte counts missing", s.Args)
		}
	}
}
