package experiments

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"aos/internal/instrument"
	"aos/internal/security"
)

// TestAttackSpecCanonical pins the canonical encoding and hash: these are
// cache addresses shared between aosbench and aosd across processes and
// releases, so drift silently orphans every cached cell.
func TestAttackSpecCanonical(t *testing.T) {
	spec, err := AttackSpec{Scheme: "aos", Class: "Linear-Overflow"}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	wantCanon := `{"class":"linear-overflow","programs":48,"scheme":"AOS","seed":1}`
	if got := string(spec.Canonical()); got != wantCanon {
		t.Fatalf("canonical = %s, want %s", got, wantCanon)
	}
	explicit, err := AttackSpec{Scheme: "AOS", Class: "linear-overflow", Programs: 48, Seed: 1}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if spec.Hash() != explicit.Hash() {
		t.Fatal("elided and explicit defaults must share a cache address")
	}
}

func TestAttackSpecNormalizeRejects(t *testing.T) {
	if _, err := (AttackSpec{Scheme: "AOS", Class: "nope"}).Normalize(); err == nil {
		t.Fatal("unknown class accepted")
	}
	if _, err := (AttackSpec{Scheme: "nope", Class: "uaf-read"}).Normalize(); err == nil {
		t.Fatal("unknown scheme accepted")
	}
	if _, err := (AttackSpec{Scheme: "AOS", Class: "uaf-read", Programs: -1}).Normalize(); err == nil {
		t.Fatal("negative sample size accepted")
	}
}

// TestRunAttackSpecDeterministic: a cell's JSON — the cached bytes — is a
// pure function of the normalized spec.
func TestRunAttackSpecDeterministic(t *testing.T) {
	spec := AttackSpec{Scheme: "MTE", Class: "double-free", Programs: 16, Seed: 3}
	a, err := RunAttackSpec(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunAttackSpec(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	aj, _ := a.JSON()
	bj, _ := b.JSON()
	if string(aj) != string(bj) {
		t.Fatalf("cell not deterministic:\n%s\n%s", aj, bj)
	}
	if n := a.Detected + a.Bypassed + a.Escaped; n != 16 {
		t.Fatalf("counts sum to %d, want 16", n)
	}
}

// TestAttackMatrixGolden pins the seed-1 matrix render byte-for-byte and
// asserts worker-count independence: -j1 and -j8 must produce identical
// bytes (the acceptance criterion for the whole experiment). Regenerate
// with AOS_UPDATE_GOLDEN=1.
func TestAttackMatrixGolden(t *testing.T) {
	j1, err := AttackMatrix(Options{Workers: 1}, 24, 1)
	if err != nil {
		t.Fatal(err)
	}
	j8, err := AttackMatrix(Options{Workers: 8}, 24, 1)
	if err != nil {
		t.Fatal(err)
	}
	if j1.String() != j8.String() {
		t.Fatalf("matrix differs across worker counts:\n%s\n%s", j1, j8)
	}
	d1, _ := j1.Document().JSON()
	d8, _ := j8.Document().JSON()
	if string(d1) != string(d8) {
		t.Fatal("matrix JSON differs across worker counts")
	}

	golden := filepath.Join("testdata", "attacks_seed1.txt")
	if os.Getenv("AOS_UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(j1.String()), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden (run with AOS_UPDATE_GOLDEN=1 to create): %v", err)
	}
	if j1.String() != string(want) {
		t.Errorf("matrix drifted from golden %s:\n%s", golden, j1)
	}
}

// TestAttackMatrixModelShape: deterministic cells grade 100% or 0%
// detected with nothing in between, and the table mentions every scheme
// and class.
func TestAttackMatrixModelShape(t *testing.T) {
	res, err := AttackMatrix(Options{Workers: 4}, 24, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != len(instrument.AllSchemes())*len(security.Classes()) {
		t.Fatalf("got %d cells", len(res.Cells))
	}
	for _, cell := range res.Cells {
		n := cell.Detected + cell.Bypassed + cell.Escaped
		switch cell.Expected {
		case security.Deterministic.String():
			if cell.Detected != n {
				t.Errorf("%s/%s: deterministic cell detected %d/%d", cell.Spec.Scheme, cell.Spec.Class, cell.Detected, n)
			}
		case security.Never.String():
			if cell.Escaped != n {
				t.Errorf("%s/%s: never cell escaped %d/%d", cell.Spec.Scheme, cell.Spec.Class, cell.Escaped, n)
			}
		}
	}
	out := res.String()
	for _, s := range instrument.AllSchemes() {
		if !strings.Contains(out, s.String()) {
			t.Errorf("render missing scheme %s", s)
		}
	}
	for _, c := range security.Classes() {
		if !strings.Contains(out, c.String()) {
			t.Errorf("render missing class %s", c)
		}
	}
}
