package experiments

import (
	"fmt"
	"strings"

	"aos/internal/core"
	"aos/internal/cpu"
	"aos/internal/instrument"
	"aos/internal/runner"
	"aos/internal/security"
	"aos/internal/stats"
	"aos/internal/workload"
)

// ResizeResult reports the HBT gradual-resizing study (§IX-A.1): the paper
// observed resizes only in sphinx3 (1) and omnetpp (2) and found the cost
// amortized by the non-blocking migration.
type ResizeResult struct {
	// SpecResizes is the per-benchmark resize count in the scaled runs.
	SpecResizes map[string]int
	// Forced is a malloc-intensive stress run that drives the table
	// through repeated doublings.
	ForcedResizes   int
	ForcedFinalWays int
	ForcedTraffic   uint64
	// OverheadVsPresized compares execution time against starting with the
	// final associativity directly (the cost of growing gradually).
	OverheadVsPresized float64
}

// ResizeStudy measures resizing behaviour. The per-benchmark AOS runs fan
// out over the worker pool; the two stress runs are dependent (the second
// pre-sizes the table to the first run's final associativity) and stay
// sequential.
func ResizeStudy(o Options) (*ResizeResult, error) {
	res := &ResizeResult{SpecResizes: make(map[string]int)}
	profiles := workload.SPEC()
	jobs := make([]runner.Job[runSummary], len(profiles))
	for i, p := range profiles {
		p := p
		jobs[i] = runner.Job[runSummary]{
			Label: "resize: " + p.Name,
			Run:   func() (runSummary, error) { return runJob(p, instrument.AOS, aosVariant{}, o) },
		}
	}
	results := runner.Run(o.ctx(), jobs, o.runnerOptions())
	if err := runner.Errs(results); err != nil {
		return nil, err
	}
	for i, r := range results {
		res.SpecResizes[profiles[i].Name] = r.Value.Resizes
	}

	// Stress: a process holding enough live chunks that some PAC row
	// overflows its initial 1-way capacity.
	stress := func(initialAssoc int) (runSummary, *core.Machine, error) {
		m, err := core.New(core.Config{Scheme: instrument.AOS, InitialHBTAssoc: initialAssoc})
		if err != nil {
			return runSummary{}, nil, err
		}
		c := cpu.New(cpu.DefaultConfig())
		chk := o.sanitizer(instrument.AOS, m, c)
		var ptrs []core.Ptr
		const liveTarget = 300_000
		for i := 0; i < liveTarget; i++ {
			p, err := m.Malloc(32)
			if err != nil {
				return runSummary{}, nil, err
			}
			ptrs = append(ptrs, p)
		}
		// Touch a sample, then release everything.
		for i := 0; i < len(ptrs); i += 100 {
			if err := m.Load(ptrs[i], 0, core.AccessOpts{}); err != nil {
				return runSummary{}, nil, err
			}
		}
		for _, p := range ptrs {
			if err := m.Free(p); err != nil {
				return runSummary{}, nil, err
			}
		}
		if err := sanitizeErr(chk, "resize-stress", instrument.AOS); err != nil {
			return runSummary{}, nil, err
		}
		return runSummary{CPU: c.Finalize(), Resizes: len(m.OS.Resizes())}, m, nil
	}
	o.announce("resize: stress (1-way start)")
	grown, gm, err := stress(1)
	if err != nil {
		return nil, err
	}
	res.ForcedResizes = grown.Resizes
	res.ForcedFinalWays = gm.Table().Assoc()
	for _, ev := range gm.OS.Resizes() {
		res.ForcedTraffic += ev.TrafficBytes
	}
	o.announce("resize: stress (pre-sized start)")
	pre, _, err := stress(gm.Table().Assoc())
	if err != nil {
		return nil, err
	}
	res.OverheadVsPresized = float64(grown.CPU.Cycles) / float64(pre.CPU.Cycles)
	return res, nil
}

// String renders the study.
func (r *ResizeResult) String() string {
	var b strings.Builder
	b.WriteString("HBT gradual resizing (§IX-A.1)\n")
	b.WriteString("  scaled SPEC runs: resizes per benchmark (paper: omnetpp 2, sphinx3 1, others 0 at full scale):\n")
	for _, k := range stats.SortedKeys(r.SpecResizes) {
		if r.SpecResizes[k] > 0 {
			fmt.Fprintf(&b, "    %-12s %d\n", k, r.SpecResizes[k])
		}
	}
	fmt.Fprintf(&b, "  stress run (300k live 32B chunks): %d resizes, final %d ways, %.1f MiB migration traffic\n",
		r.ForcedResizes, r.ForcedFinalWays, float64(r.ForcedTraffic)/(1<<20))
	fmt.Fprintf(&b, "  exec time vs pre-sized table: %.3fx (resizing cost amortized)\n", r.OverheadVsPresized)
	return b.String()
}

// AblationResult holds design-choice sweeps beyond the paper's figures.
type AblationResult struct {
	Benchmarks []string
	// Normalized execution time vs the full AOS configuration.
	NoBWB         map[string]float64
	NoForwarding  map[string]float64
	MCQ12, MCQ96  map[string]float64
	InitialAssoc4 map[string]float64
}

// ablationConfigs names the per-benchmark ablation jobs in presentation
// order. The "full" job is the normalization base.
var ablationConfigs = []string{"full", "no-bwb", "no-forwarding", "mcq=12", "mcq=96", "assoc=4"}

// Ablations sweeps the design choices DESIGN.md calls out, on the three
// benchmarks most sensitive to the MCU (gcc, hmmer, omnetpp). All
// (benchmark, configuration) pairs run as independent pool jobs.
func Ablations(o Options) (*AblationResult, error) {
	names := []string{"gcc", "hmmer", "omnetpp"}
	res := &AblationResult{
		Benchmarks:    names,
		NoBWB:         map[string]float64{},
		NoForwarding:  map[string]float64{},
		MCQ12:         map[string]float64{},
		MCQ96:         map[string]float64{},
		InitialAssoc4: map[string]float64{},
	}
	var specs []JobSpec
	var jobs []runner.Job[float64]
	for _, name := range names {
		p, ok := workload.ByName(name)
		if !ok {
			return nil, fmt.Errorf("unknown benchmark %s", name)
		}
		for _, cfg := range ablationConfigs {
			cfg := cfg
			spec := JobSpec{Benchmark: name, Scheme: instrument.AOS, Variant: cfg}
			specs = append(specs, spec)
			jobs = append(jobs, runner.Job[float64]{
				Label: "ablate: " + spec.String(),
				Run: func() (float64, error) {
					switch cfg {
					case "full":
						r, err := runJob(p, instrument.AOS, aosVariant{}, o)
						return float64(r.CPU.Cycles), err
					case "no-bwb":
						r, err := runJob(p, instrument.AOS, aosVariant{disableBWB: true}, o)
						return float64(r.CPU.Cycles), err
					case "no-forwarding":
						r, err := runJob(p, instrument.AOS, aosVariant{disableForwarding: true}, o)
						return float64(r.CPU.Cycles), err
					case "mcq=12":
						return runCustom(p, o, func(c *cpu.Config) { c.MCQSize = 12 }, 0)
					case "mcq=96":
						return runCustom(p, o, func(c *cpu.Config) { c.MCQSize = 96 }, 0)
					case "assoc=4":
						return runCustom(p, o, nil, 4)
					default:
						return 0, fmt.Errorf("unknown ablation config %q", cfg)
					}
				},
			})
		}
	}
	results := runner.Run(o.ctx(), jobs, o.runnerOptions())
	if err := runner.Errs(results); err != nil {
		return nil, err
	}
	cycles := make(map[JobSpec]float64, len(results))
	for i, r := range results {
		cycles[specs[i]] = r.Value
	}
	for _, name := range names {
		base := cycles[JobSpec{Benchmark: name, Scheme: instrument.AOS, Variant: "full"}]
		if base == 0 {
			return nil, fmt.Errorf("ablate: %s: full-configuration run has zero cycles; cannot normalize", name)
		}
		at := func(cfg string) float64 {
			return cycles[JobSpec{Benchmark: name, Scheme: instrument.AOS, Variant: cfg}] / base
		}
		res.NoBWB[name] = at("no-bwb")
		res.NoForwarding[name] = at("no-forwarding")
		res.MCQ12[name] = at("mcq=12")
		res.MCQ96[name] = at("mcq=96")
		res.InitialAssoc4[name] = at("assoc=4")
	}
	return res, nil
}

// runCustom runs AOS with a CPU-config mutation and/or initial HBT
// associativity override, returning cycles.
func runCustom(p *workload.Profile, o Options, mutate func(*cpu.Config), initialAssoc int) (float64, error) {
	m, err := core.New(core.Config{
		Scheme:          instrument.AOS,
		InitialHBTAssoc: initialAssoc,
		CodeFootprint:   p.CodeFootprint,
	})
	if err != nil {
		return 0, err
	}
	cfg := cpu.DefaultConfig()
	if mutate != nil {
		mutate(&cfg)
	}
	c := cpu.New(cfg)
	chk := o.sanitizer(instrument.AOS, m, c)
	if !o.ScalarEmit {
		m.SetBatch(core.EmitBatchSize)
	}
	prof := p.Clone()
	if o.Instructions != 0 {
		prof.Instructions = o.Instructions
	}
	if err := prof.RunWarm(m, o.seed(), prof.Instructions/2, c.ResetStats); err != nil {
		return 0, err
	}
	if err := sanitizeErr(chk, p.Name, instrument.AOS); err != nil {
		return 0, err
	}
	return float64(c.Finalize().Cycles), nil
}

// String renders the ablations.
func (r *AblationResult) String() string {
	t := stats.NewTable("benchmark", "no BWB", "no forwarding", "MCQ=12", "MCQ=96", "init 4-way HBT")
	for _, b := range r.Benchmarks {
		t.AddRow(b, r.NoBWB[b], r.NoForwarding[b], r.MCQ12[b], r.MCQ96[b], r.InitialAssoc4[b])
	}
	return "Design-choice ablations (exec time normalized to full AOS config)\n" + t.String()
}

// SecurityMatrix runs the §VII attack battery under every registered
// scheme — the paper's five plus the MTE and hardened-allocator
// backends — and renders the detection matrix.
func SecurityMatrix() (string, error) {
	rows, err := security.RunMatrix()
	if err != nil {
		return "", err
	}
	t := stats.NewTable("attack", "Baseline", "Watchdog", "PA", "AOS", "PA+AOS", "MTE", "Hardened", "paper")
	for _, r := range rows {
		t.AddRow(r.Attack,
			r.Outcomes[instrument.Baseline].String(),
			r.Outcomes[instrument.Watchdog].String(),
			r.Outcomes[instrument.PA].String(),
			r.Outcomes[instrument.AOS].String(),
			r.Outcomes[instrument.PAAOS].String(),
			r.Outcomes[instrument.MTE].String(),
			r.Outcomes[instrument.HardenedAlloc].String(),
			r.Paper)
	}
	hdr := "Security analysis (§VII): attack detection matrix\n"
	ftr := fmt.Sprintf("\nPAC brute force (§VII-E): p(guess)=1/%d; %d attempts for 50%% success\n"+
		"MTE probabilistic gap: p(tag collision)=1/%.0f per far granule\n",
		1<<16, security.AttemptsForConfidence(16, 0.5),
		1/security.MTEBypassProbability(instrument.TagBits))
	return hdr + t.String() + ftr, nil
}
