package experiments

import (
	"fmt"

	"aos/internal/instrument"
	"aos/internal/runner"
	"aos/internal/stats"
	"aos/internal/workload"
)

// SchemeOverheadResult is the all-scheme overhead comparison: execution
// time normalized to Baseline for every registered scheme, paper and
// non-paper backends alike.
type SchemeOverheadResult struct {
	Rows    []Fig14Row
	Geomean map[instrument.Scheme]float64
}

// SchemeOverhead runs the overhead matrix over every registered scheme —
// the paper's five plus the MTE and hardened-allocator backends — and
// reports execution time normalized to Baseline. Fig 14/18 keep their
// five-scheme paper shape; this is the extended comparison the scheme
// registry makes cheap.
func SchemeOverhead(o Options) (*SchemeOverheadResult, error) {
	profiles := workload.SPEC()
	var specs []JobSpec
	var jobs []runner.Job[runSummary]
	for _, p := range profiles {
		p := p
		for _, s := range instrument.AllSchemes() {
			s := s
			spec := JobSpec{Benchmark: p.Name, Scheme: s}
			specs = append(specs, spec)
			jobs = append(jobs, runner.Job[runSummary]{
				Label: "schemes: " + spec.String(),
				Run:   func() (runSummary, error) { return runJob(p, s, aosVariant{}, o) },
			})
		}
	}
	results := runner.Run(o.ctx(), jobs, o.runnerOptions())

	runs := make(map[string]map[instrument.Scheme]runSummary)
	for _, p := range profiles {
		runs[p.Name] = make(map[instrument.Scheme]runSummary)
	}
	for i, r := range results {
		if r.Err != nil {
			return nil, fmt.Errorf("schemes: %s: %w", specs[i], r.Err)
		}
		runs[specs[i].Benchmark][specs[i].Scheme] = r.Value
	}

	res := &SchemeOverheadResult{Geomean: make(map[instrument.Scheme]float64)}
	series := make(map[instrument.Scheme][]float64)
	for _, p := range profiles {
		base := float64(runs[p.Name][instrument.Baseline].CPU.Cycles)
		if base == 0 {
			return nil, fmt.Errorf("schemes: %s: Baseline run has zero cycles; cannot normalize", p.Name)
		}
		row := Fig14Row{Name: p.Name, Normalized: make(map[instrument.Scheme]float64)}
		for _, s := range instrument.AllSchemes() {
			n := float64(runs[p.Name][s].CPU.Cycles) / base
			row.Normalized[s] = n
			if s != instrument.Baseline {
				series[s] = append(series[s], n)
			}
		}
		res.Rows = append(res.Rows, row)
	}
	for s, xs := range series {
		res.Geomean[s] = stats.Geomean(xs)
	}
	return res, nil
}

// String renders the comparison as a table.
func (r *SchemeOverheadResult) String() string {
	t := stats.NewTable("benchmark", "Watchdog", "PA", "AOS", "PA+AOS", "MTE", "Hardened")
	for _, row := range r.Rows {
		t.AddRow(row.Name,
			row.Normalized[instrument.Watchdog],
			row.Normalized[instrument.PA],
			row.Normalized[instrument.AOS],
			row.Normalized[instrument.PAAOS],
			row.Normalized[instrument.MTE],
			row.Normalized[instrument.HardenedAlloc])
	}
	t.AddRow("GEOMEAN",
		r.Geomean[instrument.Watchdog],
		r.Geomean[instrument.PA],
		r.Geomean[instrument.AOS],
		r.Geomean[instrument.PAAOS],
		r.Geomean[instrument.MTE],
		r.Geomean[instrument.HardenedAlloc])
	return "Scheme comparison: normalized execution time, all registered backends (baseline = 1.0)\n" + t.String()
}
