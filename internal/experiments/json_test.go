package experiments

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"aos/internal/instrument"
	"aos/internal/workload"
)

// TestSimSpecCanonical pins the canonical encoding byte-for-byte. This
// string is the cache-key preimage: changing it silently invalidates every
// cached result, so any change here must be deliberate.
func TestSimSpecCanonical(t *testing.T) {
	spec := SimSpec{Benchmark: "gcc", Scheme: "PA+AOS", Instructions: 50_000, Seed: 7, Sanitize: true}
	want := `{"benchmark":"gcc","instructions":50000,"sanitize":true,"scheme":"PA+AOS","seed":7}`
	if got := string(spec.Canonical()); got != want {
		t.Fatalf("canonical encoding drifted:\n got %s\nwant %s", got, want)
	}
}

// TestSimSpecHashIdentical is the satellite guarantee: the same spec always
// hashes identically — across repeated calls, across independently
// constructed values, and across elided-vs-explicit defaults.
func TestSimSpecHashIdentical(t *testing.T) {
	a := SimSpec{Benchmark: "mcf", Scheme: "AOS", Instructions: 20_000, Seed: 3}
	for i := 0; i < 100; i++ {
		b := SimSpec{Benchmark: "mcf", Scheme: "AOS", Instructions: 20_000, Seed: 3}
		if a.Hash() != b.Hash() {
			t.Fatalf("iteration %d: identical specs hashed differently", i)
		}
	}

	// Elided defaults normalize to the same address as explicit ones.
	p, ok := workload.ByName("mcf")
	if !ok {
		t.Fatal("mcf profile missing")
	}
	elided, err := SimSpec{Benchmark: "mcf", Scheme: "AOS"}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	explicit, err := SimSpec{Benchmark: "mcf", Scheme: "AOS", Instructions: p.Instructions, Seed: 1}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if elided.Hash() != explicit.Hash() {
		t.Errorf("default resolution diverged: elided %s != explicit %s", elided.Hash(), explicit.Hash())
	}

	// Every field participates in the address.
	base := SimSpec{Benchmark: "mcf", Scheme: "AOS", Instructions: 20_000, Seed: 3}
	for name, other := range map[string]SimSpec{
		"benchmark":    {Benchmark: "gcc", Scheme: "AOS", Instructions: 20_000, Seed: 3},
		"scheme":       {Benchmark: "mcf", Scheme: "PA", Instructions: 20_000, Seed: 3},
		"instructions": {Benchmark: "mcf", Scheme: "AOS", Instructions: 20_001, Seed: 3},
		"seed":         {Benchmark: "mcf", Scheme: "AOS", Instructions: 20_000, Seed: 4},
		"sanitize":     {Benchmark: "mcf", Scheme: "AOS", Instructions: 20_000, Seed: 3, Sanitize: true},
	} {
		if base.Hash() == other.Hash() {
			t.Errorf("%s does not participate in the hash", name)
		}
	}
}

func TestSimSpecNormalizeErrors(t *testing.T) {
	if _, err := (SimSpec{Benchmark: "nonesuch", Scheme: "AOS"}).Normalize(); err == nil {
		t.Error("unknown benchmark accepted")
	}
	if _, err := (SimSpec{Benchmark: "gcc", Scheme: "nonesuch"}).Normalize(); err == nil {
		t.Error("unknown scheme accepted")
	}
}

// TestRunSpecDeterministic verifies the property the result cache depends
// on: re-running the same spec reproduces byte-identical result JSON.
func TestRunSpecDeterministic(t *testing.T) {
	spec := SimSpec{Benchmark: "mcf", Scheme: "AOS", Instructions: 15_000}
	a, err := RunSpec(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSpec(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	aj, err := a.JSON()
	if err != nil {
		t.Fatal(err)
	}
	bj, err := b.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(aj, bj) {
		t.Fatalf("repeat runs differ:\n%s\n%s", aj, bj)
	}
	if a.Cycles == 0 || a.Instructions == 0 {
		t.Errorf("implausible result: %+v", a)
	}
	if a.Spec.Instructions != 15_000 || a.Spec.Seed != 1 {
		t.Errorf("result spec not normalized: %+v", a.Spec)
	}
}

// TestRunSpecCanceled: a pre-canceled context aborts before simulating.
func TestRunSpecCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunSpec(ctx, SimSpec{Benchmark: "mcf", Scheme: "Baseline", Instructions: 15_000})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestMatrixErrOrderDeterministic pins Matrix.Err()'s error ordering: with
// several injected failures racing over a parallel pool, the joined error
// must list them in job order (benchmark-major, scheme-minor) on every run.
func TestMatrixErrOrderDeterministic(t *testing.T) {
	fail := map[string]bool{
		"gcc/AOS":       true,
		"mcf/Baseline":  true,
		"milc/PA":       true,
		"soplex/PA+AOS": true,
	}
	orig := runJob
	runJob = func(p *workload.Profile, s instrument.Scheme, v aosVariant, o Options) (runSummary, error) {
		key := p.Name + "/" + s.String()
		if fail[key] {
			return runSummary{}, fmt.Errorf("injected: %s", key)
		}
		return runSummary{}, nil // skip real simulation; ordering is what's under test
	}
	defer func() { runJob = orig }()

	// Job order is benchmark-major over workload.SPEC(), scheme-minor over
	// instrument.Schemes() — the order RunMatrix builds its job slice.
	var want []string
	for _, p := range workload.SPEC() {
		for _, s := range instrument.Schemes() {
			if key := p.Name + "/" + s.String(); fail[key] {
				want = append(want, key)
			}
		}
	}

	var first string
	for trial := 0; trial < 5; trial++ {
		m, err := RunMatrix(Options{Instructions: 8_000, Seed: 1, Workers: 8})
		if err == nil {
			t.Fatal("injected failures not reported")
		}
		if len(m.Errors) != len(want) {
			t.Fatalf("trial %d: %d errors, want %d", trial, len(m.Errors), len(want))
		}
		for i, e := range m.Errors {
			if got := e.Spec.String(); got != want[i] {
				t.Fatalf("trial %d: Errors[%d] = %s, want %s", trial, i, got, want[i])
			}
		}
		msg := m.Err().Error()
		if first == "" {
			first = msg
		} else if msg != first {
			t.Fatalf("trial %d: error text varies across runs:\n%s\nvs\n%s", trial, msg, first)
		}
		// The joined message lists failures in job order too.
		last := -1
		for _, key := range want {
			idx := strings.Index(msg, key)
			if idx < 0 {
				t.Fatalf("trial %d: %s missing from joined error %q", trial, key, msg)
			}
			if idx < last {
				t.Fatalf("trial %d: %s out of order in joined error %q", trial, key, msg)
			}
			last = idx
		}
	}
}

// TestMatrixCanceled: a canceled Options.Context fails every job with the
// context error instead of hanging or simulating.
func TestMatrixCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	m, err := RunMatrix(Options{Instructions: 8_000, Seed: 1, Workers: 4, Context: ctx})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	want := len(workload.SPEC()) * len(instrument.Schemes())
	if len(m.Errors) != want {
		t.Fatalf("%d errored jobs, want all %d", len(m.Errors), want)
	}
}
