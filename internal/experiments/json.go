package experiments

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
	"time"

	"aos/internal/instrument"
	"aos/internal/sampling"
	"aos/internal/telemetry"
	"aos/internal/workload"
)

// RunDoc is one (benchmark, scheme) cell of the machine-readable matrix.
type RunDoc struct {
	Scheme            string  `json:"scheme"`
	Cycles            uint64  `json:"cycles"`
	Instructions      uint64  `json:"instructions"`
	IPC               float64 `json:"ipc"`
	NormalizedTime    float64 `json:"normalized_time"`
	NormalizedTraffic float64 `json:"normalized_traffic"`
	WallSeconds       float64 `json:"wall_seconds"`
}

// BenchmarkDoc groups one benchmark's runs in scheme order.
type BenchmarkDoc struct {
	Name string   `json:"name"`
	Runs []RunDoc `json:"runs"`
}

// MatrixDoc is the machine-readable form of the evaluation matrix, emitted
// by `aosbench -json` so successive BENCH_*.json snapshots can track the
// performance trajectory. Entries are keyed and ordered by (benchmark,
// scheme); only the wall-time fields vary between repeat runs.
type MatrixDoc struct {
	Schema string `json:"schema"`
	// Instructions is the per-benchmark budget override (0 = defaults).
	Instructions uint64 `json:"instructions"`
	Seed         int64  `json:"seed"`
	Workers      int    `json:"workers"`
	// WallSeconds is the whole matrix's wall-clock time.
	WallSeconds    float64            `json:"wall_seconds"`
	Benchmarks     []BenchmarkDoc     `json:"benchmarks"`
	GeomeanTime    map[string]float64 `json:"geomean_time"`
	GeomeanTraffic map[string]float64 `json:"geomean_traffic"`
}

// MatrixSchema versions the -json document layout.
const MatrixSchema = "aosbench/matrix/v1"

// MatrixDocument assembles the machine-readable matrix: per-run cycles,
// IPC and wall time, the Fig 14 normalized times and the Fig 18 normalized
// traffic, plus both geomean sets.
func MatrixDocument(m *Matrix, o Options, wall time.Duration) (*MatrixDoc, error) {
	f14, err := Fig14(m)
	if err != nil {
		return nil, err
	}
	f18, err := Fig18(m)
	if err != nil {
		return nil, err
	}
	normTime := make(map[string]map[instrument.Scheme]float64)
	for _, row := range f14.Rows {
		normTime[row.Name] = row.Normalized
	}
	normTraffic := make(map[string]map[instrument.Scheme]float64)
	for _, row := range f18.Rows {
		normTraffic[row.Name] = row.Normalized
	}

	doc := &MatrixDoc{
		Schema:         MatrixSchema,
		Instructions:   o.Instructions,
		Seed:           o.seed(),
		Workers:        o.Workers,
		WallSeconds:    wall.Seconds(),
		GeomeanTime:    make(map[string]float64),
		GeomeanTraffic: make(map[string]float64),
	}
	for _, name := range m.Benchmarks {
		bd := BenchmarkDoc{Name: name}
		for _, s := range instrument.Schemes() {
			r, err := m.run(name, s)
			if err != nil {
				return nil, err
			}
			bd.Runs = append(bd.Runs, RunDoc{
				Scheme:            s.String(),
				Cycles:            r.CPU.Cycles,
				Instructions:      r.CPU.Insts,
				IPC:               r.CPU.IPC(),
				NormalizedTime:    normTime[name][s],
				NormalizedTraffic: normTraffic[name][s],
				WallSeconds:       m.Walls[name][s].Seconds(),
			})
		}
		doc.Benchmarks = append(doc.Benchmarks, bd)
	}
	for s, g := range f14.Geomean {
		doc.GeomeanTime[s.String()] = g
	}
	for s, g := range f18.Geomean {
		doc.GeomeanTraffic[s.String()] = g
	}
	return doc, nil
}

// JSON renders the document with stable formatting (maps marshal with
// sorted keys, so repeat runs differ only in the wall-time fields).
func (d *MatrixDoc) JSON() ([]byte, error) {
	return json.MarshalIndent(d, "", "  ")
}

// SimSpec is the content-addressable identity of one simulation cell: a
// benchmark run under a scheme with an explicit budget, seed and sanitizer
// setting. Runs are pure functions of this tuple (DESIGN §4), which is
// what makes a content-addressed result cache sound: two processes that
// agree on the canonical encoding of a SimSpec agree on the result bytes.
type SimSpec struct {
	// Benchmark names a workload profile (Table II/III).
	Benchmark string `json:"benchmark"`
	// Scheme is the protection scheme's canonical name (instrument
	// package spelling: Baseline, Watchdog, PA, AOS, PA+AOS).
	Scheme string `json:"scheme"`
	// Instructions is the program-instruction budget. Zero normalizes to
	// the profile's default budget, so an explicit default and an elided
	// one address the same cache entry.
	Instructions uint64 `json:"instructions"`
	// Seed drives the deterministic workload generator (0 normalizes to 1).
	Seed int64 `json:"seed"`
	// Sanitize tees the run through the tracecheck protocol verifier.
	Sanitize bool `json:"sanitize"`
	// Sampling, when non-nil, runs the cell in SMARTS sampled mode:
	// cycle counts become statistical estimates, so sampled cells are
	// addressed separately from exact ones (the canonical encoding gains
	// a "sampling" key only when the block is present — existing exact
	// cache entries keep their addresses byte-for-byte).
	Sampling *SamplingSpec `json:"sampling,omitempty"`
}

// SamplingSpec is the spec-level U/W/F shape. Zero fields normalize to
// the sampling package defaults, so an explicit default and an elided one
// address the same cell.
type SamplingSpec struct {
	Windows int    `json:"windows,omitempty"`
	Detail  uint64 `json:"detail,omitempty"`
	Window  uint64 `json:"window,omitempty"`
	Gap     uint64 `json:"gap,omitempty"`
}

// UnmarshalJSON accepts the scheme field as either a name or a raw
// ordinal (older clients submit the enum value as a JSON number). An
// ordinal is carried through as its decimal string so Normalize can
// range-check it; decoding stays strict about unknown fields.
func (s *SimSpec) UnmarshalJSON(b []byte) error {
	type wire struct {
		Benchmark    string          `json:"benchmark"`
		Scheme       json.RawMessage `json:"scheme"`
		Instructions uint64          `json:"instructions"`
		Seed         int64           `json:"seed"`
		Sanitize     bool            `json:"sanitize"`
		Sampling     *SamplingSpec   `json:"sampling"`
	}
	var ws wire
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&ws); err != nil {
		return err
	}
	s.Benchmark = ws.Benchmark
	s.Instructions = ws.Instructions
	s.Seed = ws.Seed
	s.Sanitize = ws.Sanitize
	s.Sampling = ws.Sampling
	s.Scheme = ""
	if len(ws.Scheme) == 0 || bytes.Equal(ws.Scheme, []byte("null")) {
		return nil
	}
	if err := json.Unmarshal(ws.Scheme, &s.Scheme); err == nil {
		return nil
	}
	var ordinal int
	if err := json.Unmarshal(ws.Scheme, &ordinal); err != nil {
		return fmt.Errorf("spec: scheme must be a name or an ordinal, got %s", ws.Scheme)
	}
	s.Scheme = strconv.Itoa(ordinal)
	return nil
}

// parseSchemeField resolves a spec's scheme field: the canonical (or
// aliased, case-insensitive) name, or a raw ordinal from older clients,
// range-checked against the registry so an out-of-range value is a spec
// error instead of a misrendering Scheme(n).
func parseSchemeField(field string) (instrument.Scheme, error) {
	if n, err := strconv.Atoi(field); err == nil {
		s := instrument.Scheme(n)
		if !s.Valid() {
			return 0, fmt.Errorf("scheme ordinal %d out of range (valid: %s)",
				n, strings.Join(instrument.SchemeNames(), ", "))
		}
		return s, nil
	}
	return instrument.ParseScheme(field)
}

// Normalize validates the spec and resolves its defaults (profile budget,
// seed 1), returning the canonical form whose Hash identifies the cell.
func (s SimSpec) Normalize() (SimSpec, error) {
	p, ok := workload.ByName(s.Benchmark)
	if !ok {
		return SimSpec{}, fmt.Errorf("spec: unknown benchmark %q", s.Benchmark)
	}
	scheme, err := parseSchemeField(s.Scheme)
	if err != nil {
		return SimSpec{}, fmt.Errorf("spec: %w", err)
	}
	s.Scheme = scheme.String()
	if s.Instructions == 0 {
		s.Instructions = p.Instructions
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.Sampling != nil {
		sched, err := (sampling.Schedule{
			Windows: s.Sampling.Windows,
			Detail:  s.Sampling.Detail,
			Window:  s.Sampling.Window,
			Gap:     s.Sampling.Gap,
		}).Normalize(s.Instructions)
		if err != nil {
			return SimSpec{}, fmt.Errorf("spec: %w", err)
		}
		s.Sampling = &SamplingSpec{
			Windows: sched.Windows,
			Detail:  sched.Detail,
			Window:  sched.Window,
			Gap:     sched.Gap,
		}
	}
	return s, nil
}

// Canonical returns the spec's canonical JSON encoding: keys sorted,
// no insignificant whitespace, and only string/integer/bool values (no
// floats, so no formatting drift across architectures or processes).
// The encoding is the preimage of Hash and is pinned by TestSimSpecCanonical;
// changing it invalidates every existing cache entry.
func (s SimSpec) Canonical() []byte {
	// encoding/json marshals map keys in sorted order; every value below
	// is an exact type (string, uint64, int64, bool), so the byte stream
	// is a pure function of the field values. The "sampling" key exists
	// only for sampled cells: adding it unconditionally would shift the
	// address of every exact cell already in a cache.
	fields := map[string]any{
		"benchmark":    s.Benchmark,
		"instructions": s.Instructions,
		"sanitize":     s.Sanitize,
		"scheme":       s.Scheme,
		"seed":         s.Seed,
	}
	if s.Sampling != nil {
		fields["sampling"] = map[string]any{
			"windows": s.Sampling.Windows,
			"detail":  s.Sampling.Detail,
			"window":  s.Sampling.Window,
			"gap":     s.Sampling.Gap,
		}
	}
	b, err := json.Marshal(fields)
	if err != nil {
		// Unreachable: the value set above cannot fail to marshal.
		panic(err)
	}
	return b
}

// Hash is the spec's content address: hex SHA-256 of Canonical. Callers
// should hash the Normalized spec so equivalent specs share an address.
func (s SimSpec) Hash() string {
	sum := sha256.Sum256(s.Canonical())
	return hex.EncodeToString(sum[:])
}

// SimResult is the machine-readable outcome of one simulation cell — the
// value stored under SimSpec.Hash in a result cache. Everything a matrix
// or figure composition needs from a cell (cycles for Fig 14, traffic for
// Fig 18) is here, and the encoding is deterministic: a struct marshals
// in declaration order and the only floats are derived once from integer
// counters, so re-running the same spec reproduces identical bytes.
type SimResult struct {
	Spec         SimSpec `json:"spec"`
	Cycles       uint64  `json:"cycles"`
	Instructions uint64  `json:"instructions"`
	IPC          float64 `json:"ipc"`
	TrafficBytes uint64  `json:"traffic_bytes"`
	HeapAllocs   uint64  `json:"heap_allocs"`
	HeapFrees    uint64  `json:"heap_frees"`
	HeapMaxLive  uint64  `json:"heap_max_live"`
	HBTResizes   int     `json:"hbt_resizes"`
	Exceptions   int     `json:"exceptions"`
}

// JSON renders the result deterministically (the cached representation).
func (r *SimResult) JSON() ([]byte, error) { return json.Marshal(r) }

// RunConfig carries operational knobs for one simulation run that are
// deliberately NOT part of the cell's identity: telemetry sampling and
// progress reporting are passive (the result bytes are a pure function
// of the SimSpec alone), so they must never enter SimSpec.Canonical —
// a sampled run and an unsampled run address the same cache entry.
type RunConfig struct {
	// TelemetryInterval attaches the flight recorder at the given
	// commit-cycle sampling cadence (0 disables telemetry).
	TelemetryInterval uint64
	// OnProgress, when non-nil, receives in-flight instruction progress
	// (done, total — warmup included) on the simulation goroutine at
	// the workload's cancellation-poll cadence plus once at completion.
	OnProgress workload.ProgressFunc
	// Checkpoints, when non-nil and the spec has a Sampling block, shares
	// window-boundary checkpoints across invocations (operational like
	// telemetry: restored runs produce byte-identical results, so the
	// store never enters the cell's identity).
	Checkpoints *sampling.Store
	// JobID is the serving layer's correlation id for this run. It is
	// stamped onto sanitizer verdicts and worker log records — purely
	// diagnostic, so like the other knobs here it stays outside the
	// cell's identity and the cached result bytes.
	JobID string
}

// RunSpec executes one simulation cell. The spec is normalized first, so
// callers may pass defaults; ctx cancels mid-run (the workload emission
// loop polls it). The result is a pure function of the normalized spec.
func RunSpec(ctx context.Context, spec SimSpec) (*SimResult, error) {
	r, _, err := RunSpecFull(ctx, spec, RunConfig{})
	return r, err
}

// RunSpecFull is RunSpec plus the operational extras: when
// cfg.TelemetryInterval is set the run records a telemetry timeline
// (returned alongside the result, nil otherwise), and cfg.OnProgress
// streams instruction progress. Neither changes the SimResult bytes.
func RunSpecFull(ctx context.Context, spec SimSpec, cfg RunConfig) (*SimResult, *telemetry.Timeline, error) {
	spec, err := spec.Normalize()
	if err != nil {
		return nil, nil, err
	}
	p, ok := workload.ByName(spec.Benchmark)
	if !ok {
		return nil, nil, fmt.Errorf("spec: unknown benchmark %q", spec.Benchmark)
	}
	scheme, err := instrument.ParseScheme(spec.Scheme)
	if err != nil {
		return nil, nil, err
	}
	if cfg.OnProgress != nil {
		ctx = workload.WithProgress(ctx, cfg.OnProgress)
	}
	var tl *telemetry.Timeline
	o := Options{
		Instructions:      spec.Instructions,
		Seed:              spec.Seed,
		Sanitize:          spec.Sanitize,
		Context:           ctx,
		JobID:             cfg.JobID,
		TelemetryInterval: cfg.TelemetryInterval,
		OnTimeline: func(_ string, _ instrument.Scheme, t *telemetry.Timeline) {
			tl = t
		},
	}
	if spec.Sampling != nil {
		o.Sampling = &sampling.Schedule{
			Windows: spec.Sampling.Windows,
			Detail:  spec.Sampling.Detail,
			Window:  spec.Sampling.Window,
			Gap:     spec.Sampling.Gap,
		}
		o.Checkpoints = cfg.Checkpoints
	}
	sum, err := runOne(p, scheme, aosVariant{}, o)
	if err != nil {
		return nil, nil, fmt.Errorf("spec %s/%s: %w", spec.Benchmark, spec.Scheme, err)
	}
	return &SimResult{
		Spec:         spec,
		Cycles:       sum.CPU.Cycles,
		Instructions: sum.CPU.Insts,
		IPC:          sum.CPU.IPC(),
		TrafficBytes: sum.CPU.Traffic.Total(),
		HeapAllocs:   sum.Heap.Allocs,
		HeapFrees:    sum.Heap.Frees,
		HeapMaxLive:  sum.Heap.MaxLive,
		HBTResizes:   sum.Resizes,
		Exceptions:   sum.Excs,
	}, tl, nil
}
