package experiments

import (
	"encoding/json"
	"time"

	"aos/internal/instrument"
)

// RunDoc is one (benchmark, scheme) cell of the machine-readable matrix.
type RunDoc struct {
	Scheme            string  `json:"scheme"`
	Cycles            uint64  `json:"cycles"`
	Instructions      uint64  `json:"instructions"`
	IPC               float64 `json:"ipc"`
	NormalizedTime    float64 `json:"normalized_time"`
	NormalizedTraffic float64 `json:"normalized_traffic"`
	WallSeconds       float64 `json:"wall_seconds"`
}

// BenchmarkDoc groups one benchmark's runs in scheme order.
type BenchmarkDoc struct {
	Name string   `json:"name"`
	Runs []RunDoc `json:"runs"`
}

// MatrixDoc is the machine-readable form of the evaluation matrix, emitted
// by `aosbench -json` so successive BENCH_*.json snapshots can track the
// performance trajectory. Entries are keyed and ordered by (benchmark,
// scheme); only the wall-time fields vary between repeat runs.
type MatrixDoc struct {
	Schema string `json:"schema"`
	// Instructions is the per-benchmark budget override (0 = defaults).
	Instructions uint64 `json:"instructions"`
	Seed         int64  `json:"seed"`
	Workers      int    `json:"workers"`
	// WallSeconds is the whole matrix's wall-clock time.
	WallSeconds    float64            `json:"wall_seconds"`
	Benchmarks     []BenchmarkDoc     `json:"benchmarks"`
	GeomeanTime    map[string]float64 `json:"geomean_time"`
	GeomeanTraffic map[string]float64 `json:"geomean_traffic"`
}

// MatrixSchema versions the -json document layout.
const MatrixSchema = "aosbench/matrix/v1"

// MatrixDocument assembles the machine-readable matrix: per-run cycles,
// IPC and wall time, the Fig 14 normalized times and the Fig 18 normalized
// traffic, plus both geomean sets.
func MatrixDocument(m *Matrix, o Options, wall time.Duration) (*MatrixDoc, error) {
	f14, err := Fig14(m)
	if err != nil {
		return nil, err
	}
	f18, err := Fig18(m)
	if err != nil {
		return nil, err
	}
	normTime := make(map[string]map[instrument.Scheme]float64)
	for _, row := range f14.Rows {
		normTime[row.Name] = row.Normalized
	}
	normTraffic := make(map[string]map[instrument.Scheme]float64)
	for _, row := range f18.Rows {
		normTraffic[row.Name] = row.Normalized
	}

	doc := &MatrixDoc{
		Schema:         MatrixSchema,
		Instructions:   o.Instructions,
		Seed:           o.seed(),
		Workers:        o.Workers,
		WallSeconds:    wall.Seconds(),
		GeomeanTime:    make(map[string]float64),
		GeomeanTraffic: make(map[string]float64),
	}
	for _, name := range m.Benchmarks {
		bd := BenchmarkDoc{Name: name}
		for _, s := range instrument.Schemes() {
			r, err := m.run(name, s)
			if err != nil {
				return nil, err
			}
			bd.Runs = append(bd.Runs, RunDoc{
				Scheme:            s.String(),
				Cycles:            r.CPU.Cycles,
				Instructions:      r.CPU.Insts,
				IPC:               r.CPU.IPC(),
				NormalizedTime:    normTime[name][s],
				NormalizedTraffic: normTraffic[name][s],
				WallSeconds:       m.Walls[name][s].Seconds(),
			})
		}
		doc.Benchmarks = append(doc.Benchmarks, bd)
	}
	for s, g := range f14.Geomean {
		doc.GeomeanTime[s.String()] = g
	}
	for s, g := range f18.Geomean {
		doc.GeomeanTraffic[s.String()] = g
	}
	return doc, nil
}

// JSON renders the document with stable formatting (maps marshal with
// sorted keys, so repeat runs differ only in the wall-time fields).
func (d *MatrixDoc) JSON() ([]byte, error) {
	return json.MarshalIndent(d, "", "  ")
}
