package experiments

import (
	"fmt"

	"aos/internal/core"
	"aos/internal/cpu"
	"aos/internal/instrument"
	"aos/internal/isa"
	"aos/internal/sampling"
	"aos/internal/telemetry"
	"aos/internal/workload"
)

// subtractWarm removes the warmup phase's architectural counts from a
// whole-run total, leaving the measurement region's counts.
func subtractWarm(counts, warm isa.Counts) isa.Counts {
	counts.Total -= warm.Total
	counts.SignedLoads -= warm.SignedLoads
	counts.UnsignedLoads -= warm.UnsignedLoads
	counts.SignedStores -= warm.SignedStores
	counts.UnsignedStore -= warm.UnsignedStore
	for i := range counts.ByOp {
		counts.ByOp[i] -= warm.ByOp[i]
	}
	return counts
}

// key renders the variant for checkpoint addressing ("" for the default
// configuration; ablation variants never share checkpoints with it).
func (v aosVariant) key() string {
	if v == (aosVariant{}) {
		return ""
	}
	return fmt.Sprintf("l1b=%t,comp=%t,bwb=%t,fwd=%t",
		!v.disableL1B, !v.disableCompression, !v.disableBWB, !v.disableForwarding)
}

// runOneSampled is runOne's SMARTS sampled-simulation twin: the same cell
// construction and warmup split, but only the schedule's measurement
// windows run through the detailed timing model — the rest of the stream
// functionally warms caches, predictor, BWB, heap and HBT in fast-forward
// mode, and whole-run cycles are extrapolated from the window CPI. With a
// checkpoint store attached, repeat runs of a cell restore the warmed
// state at each window boundary instead of fast-forwarding to it.
//
// Architectural outputs (instruction counts, heap stats, resizes,
// exceptions) are exact: the functional machine executes every
// instruction in either mode. Only cycle-domain quantities are estimates.
func runOneSampled(p *workload.Profile, scheme instrument.Scheme, v aosVariant, o Options) (runSummary, error) {
	m, err := core.New(core.Config{
		Scheme:             scheme,
		UncompressedBounds: v.disableCompression,
		CodeFootprint:      p.CodeFootprint,
	})
	if err != nil {
		return runSummary{}, err
	}
	cfg := cpu.DefaultConfig()
	if v.disableL1B {
		cfg.Caches.L1B = nil
	}
	cfg.MCU.UseBWB = !v.disableBWB
	cfg.MCU.Forwarding = !v.disableForwarding
	c := cpu.New(cfg)
	chk := o.sanitizer(scheme, m, c)
	if !o.ScalarEmit {
		m.SetBatch(core.EmitBatchSize)
	}
	var tl *telemetry.Timeline
	if o.TelemetryInterval != 0 {
		tl = telemetry.NewTimeline(telemetry.NewRegistry(), o.TelemetryInterval)
		c.AttachTelemetry(tl)
		m.AttachTelemetry(tl)
	}

	prof := p.Clone()
	if o.Instructions != 0 {
		prof.Instructions = o.Instructions
	}
	sched := *o.Sampling
	sched.Warmup = prof.Instructions / 2
	sched, err = sched.Normalize(prof.Instructions)
	if err != nil {
		return runSummary{}, err
	}

	scfg := sampling.Config{Schedule: sched}
	// A restore replays no instructions, which would desynchronize the
	// teeing protocol checker mid-stream; sanitized runs sample cold so
	// the checker sees the complete, uncut trace.
	if o.Checkpoints != nil && chk == nil {
		scfg.Store = o.Checkpoints
		scfg.Key = sampling.KeySpec{
			Benchmark:    prof.Name,
			Seed:         o.seed(),
			Instructions: prof.Instructions,
			Scheme:       scheme.String(),
			Variant:      v.key(),
		}
	}
	if tl != nil {
		scfg.OnSegment = func(s sampling.Segment) {
			name, mode := "sim/fastforward", uint64(0)
			if s.Detailed {
				name, mode = "sim/detailed", 1
			}
			tl.AddSlice(name, s.StartCycle, s.EndCycle-s.StartCycle, map[string]uint64{
				"mode":  mode,
				"insts": s.EndInst - s.StartInst,
			})
		}
	}

	res, err := sampling.Run(o.ctx(), prof, m, c, o.seed(), scfg)
	if err != nil {
		return runSummary{}, err
	}
	if err := sanitizeErr(chk, p.Name, scheme); err != nil {
		return runSummary{}, err
	}
	if tl != nil && o.OnTimeline != nil {
		o.OnTimeline(p.Name, scheme, tl)
	}
	cpuRes := c.Finalize()
	cpuRes.Cycles = res.Est.Cycles
	return runSummary{
		Scheme:  scheme,
		CPU:     cpuRes,
		Counts:  subtractWarm(m.Counts(), res.WarmCounts),
		Heap:    m.Heap.Stats(),
		Resizes: len(m.OS.Resizes()),
		Excs:    len(m.Exceptions()),
	}, nil
}
