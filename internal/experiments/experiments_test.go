package experiments

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"aos/internal/instrument"
	"aos/internal/workload"
)

func tinyOpts() Options { return Options{Instructions: 15_000, Seed: 1} }

func TestRunMatrixShape(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix run")
	}
	m, err := RunMatrix(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Benchmarks) != 16 {
		t.Fatalf("benchmarks = %d", len(m.Benchmarks))
	}
	for _, b := range m.Benchmarks {
		if len(m.Runs[b]) != 5 {
			t.Fatalf("%s: %d schemes", b, len(m.Runs[b]))
		}
		if len(m.Walls[b]) != 5 {
			t.Fatalf("%s: %d wall times", b, len(m.Walls[b]))
		}
	}

	f14, err := Fig14(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(f14.Rows) != 16 {
		t.Errorf("fig14 rows = %d", len(f14.Rows))
	}
	for _, row := range f14.Rows {
		if row.Normalized[instrument.Baseline] != 1.0 {
			t.Errorf("%s: baseline normalized to %v", row.Name, row.Normalized[instrument.Baseline])
		}
		for s, v := range row.Normalized {
			if v <= 0 || v > 20 {
				t.Errorf("%s/%v: implausible normalized time %v", row.Name, s, v)
			}
		}
	}
	if f14.Geomean[instrument.AOS] <= 1.0 {
		t.Errorf("AOS geomean %v <= 1; overhead vanished", f14.Geomean[instrument.AOS])
	}
	if f14.Geomean[instrument.Watchdog] <= f14.Geomean[instrument.PA] {
		t.Error("Watchdog geomean below PA; ordering broken")
	}
	if !strings.Contains(f14.String(), "GEOMEAN") {
		t.Error("fig14 rendering missing geomean row")
	}

	f16, err := Fig16(m)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range f16 {
		total := r.UnsignedLoad + r.UnsignedStore + r.SignedLoad + r.SignedStore
		if total <= 0 {
			t.Errorf("fig16 %s: empty access mix", r.Name)
		}
		if r.Name == "hmmer" {
			if share := (r.SignedLoad + r.SignedStore) / total; share < 0.7 {
				t.Errorf("hmmer signed share = %.2f, want high", share)
			}
		}
	}
	if Fig16String(f16) == "" {
		t.Error("empty fig16 rendering")
	}

	f17, err := Fig17(m)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range f17 {
		if r.AccessesPerInst < 1.0 && r.AccessesPerInst != 0 {
			// Forwarding can push below 1.0 only slightly; a checked op
			// needs at least ~one access otherwise.
			if r.AccessesPerInst < 0.5 {
				t.Errorf("fig17 %s: accesses/op = %v", r.Name, r.AccessesPerInst)
			}
		}
		if r.BWBHitRate < 0 || r.BWBHitRate > 1 {
			t.Errorf("fig17 %s: hit rate %v", r.Name, r.BWBHitRate)
		}
	}
	if Fig17String(f17) == "" {
		t.Error("empty fig17 rendering")
	}

	f18, err := Fig18(m)
	if err != nil {
		t.Fatal(err)
	}
	if f18.Geomean[instrument.Watchdog] < 1.0 {
		t.Errorf("Watchdog traffic %v < baseline", f18.Geomean[instrument.Watchdog])
	}
	if !strings.Contains(f18.String(), "GEOMEAN") {
		t.Error("fig18 rendering missing geomean")
	}

	doc, err := MatrixDocument(m, tinyOpts(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if doc.Schema != MatrixSchema || len(doc.Benchmarks) != 16 {
		t.Errorf("doc shape: schema=%q benchmarks=%d", doc.Schema, len(doc.Benchmarks))
	}
	for _, b := range doc.Benchmarks {
		if len(b.Runs) != 5 {
			t.Fatalf("doc %s: %d runs", b.Name, len(b.Runs))
		}
		for _, r := range b.Runs {
			if r.Cycles == 0 || r.IPC <= 0 {
				t.Errorf("doc %s/%s: empty cells %+v", b.Name, r.Scheme, r)
			}
		}
	}
	out, err := doc.JSON()
	if err != nil || !strings.Contains(string(out), "geomean_time") {
		t.Errorf("doc JSON: %v", err)
	}
}

// TestMatrixParallelEquivalence is the -j 1 vs -j N determinism contract:
// identical Matrix contents (modulo wall times) and byte-identical
// rendered figures.
func TestMatrixParallelEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("two matrix runs")
	}
	o := Options{Instructions: 8_000, Seed: 1}
	o.Workers = 1
	seq, err := RunMatrix(o)
	if err != nil {
		t.Fatal(err)
	}
	o.Workers = 8
	par, err := RunMatrix(o)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq.Benchmarks, par.Benchmarks) {
		t.Fatalf("benchmark order differs: %v vs %v", seq.Benchmarks, par.Benchmarks)
	}
	if !reflect.DeepEqual(seq.Runs, par.Runs) {
		for _, b := range seq.Benchmarks {
			for _, s := range instrument.Schemes() {
				if !reflect.DeepEqual(seq.Runs[b][s], par.Runs[b][s]) {
					t.Errorf("%s/%v diverges:\n  -j1: %+v\n  -j8: %+v", b, s, seq.Runs[b][s], par.Runs[b][s])
				}
			}
		}
		t.Fatal("matrix contents differ between -j 1 and -j 8")
	}
	f14seq, err := Fig14(seq)
	if err != nil {
		t.Fatal(err)
	}
	f14par, err := Fig14(par)
	if err != nil {
		t.Fatal(err)
	}
	if f14seq.String() != f14par.String() {
		t.Error("rendered Fig 14 differs between -j 1 and -j 8")
	}
	f18seq, _ := Fig18(seq)
	f18par, _ := Fig18(par)
	if f18seq.CSV() != f18par.CSV() {
		t.Error("Fig 18 CSV differs between -j 1 and -j 8")
	}
}

// TestMatrixFailureInjection proves one failed job doesn't discard the
// other jobs' results.
func TestMatrixFailureInjection(t *testing.T) {
	boom := errors.New("injected failure")
	orig := runJob
	runJob = func(p *workload.Profile, s instrument.Scheme, v aosVariant, o Options) (runSummary, error) {
		if p.Name == "gcc" && s == instrument.AOS {
			return runSummary{}, boom
		}
		return orig(p, s, v, o)
	}
	defer func() { runJob = orig }()

	o := Options{Instructions: 8_000, Seed: 1, Workers: 4}
	m, err := RunMatrix(o)
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("err = %v, want injected failure", err)
	}
	if m == nil {
		t.Fatal("matrix discarded on job failure")
	}
	if len(m.Errors) != 1 || m.Errors[0].Spec.Benchmark != "gcc" || m.Errors[0].Spec.Scheme != instrument.AOS {
		t.Fatalf("errors = %+v", m.Errors)
	}
	if _, ok := m.Runs["gcc"][instrument.AOS]; ok {
		t.Error("failed job left a result behind")
	}
	// Every other job's result must have survived.
	for _, b := range m.Benchmarks {
		want := 5
		if b == "gcc" {
			want = 4
		}
		if len(m.Runs[b]) != want {
			t.Errorf("%s: %d surviving runs, want %d", b, len(m.Runs[b]), want)
		}
	}
	// The figure derivations refuse the incomplete matrix rather than
	// emitting NaN/Inf rows.
	if _, err := Fig16(m); err == nil {
		t.Error("Fig16 accepted a matrix with a missing AOS run")
	}
	if _, err := Fig17(m); err == nil {
		t.Error("Fig17 accepted a matrix with a missing AOS run")
	}
}

// TestFigGuards exercises the NaN/Inf guards directly on a hand-built
// matrix with a missing and a zero-cycle baseline.
func TestFigGuards(t *testing.T) {
	m := &Matrix{
		Benchmarks: []string{"fake"},
		Runs:       map[string]map[instrument.Scheme]runSummary{"fake": {}},
	}
	if _, err := Fig14(m); err == nil || !strings.Contains(err.Error(), "missing") {
		t.Errorf("Fig14 missing-baseline guard: %v", err)
	}
	if _, err := Fig18(m); err == nil {
		t.Errorf("Fig18 missing-baseline guard: %v", err)
	}
	for _, s := range instrument.Schemes() {
		m.Runs["fake"][s] = runSummary{} // present but zero cycles/traffic
	}
	if _, err := Fig14(m); err == nil || !strings.Contains(err.Error(), "zero cycles") {
		t.Errorf("Fig14 zero-cycle guard: %v", err)
	}
	if _, err := Fig18(m); err == nil || !strings.Contains(err.Error(), "zero traffic") {
		t.Errorf("Fig18 zero-traffic guard: %v", err)
	}
	if _, err := Fig16(m); err == nil || !strings.Contains(err.Error(), "zero instructions") {
		t.Errorf("Fig16 zero-total guard: %v", err)
	}
	if _, err := MatrixDocument(m, Options{}, 0); err == nil {
		t.Error("MatrixDocument accepted a degenerate matrix")
	}
}

func TestFig11(t *testing.T) {
	r, err := Fig11(60_000)
	if err != nil {
		t.Fatal(err)
	}
	if r.Mallocs != 60_000 || r.Space != 65536 {
		t.Errorf("shape: %+v", r)
	}
	// ~60k PACs over 64k buckets: avg ≈ 0.92, good spread.
	if r.Summary.Avg < 0.8 || r.Summary.Avg > 1.0 {
		t.Errorf("avg occurrences = %v", r.Summary.Avg)
	}
	if r.Distinct < 30_000 {
		t.Errorf("distinct PACs = %d; distribution collapsed", r.Distinct)
	}
	if r.Summary.Max > 30 {
		t.Errorf("max occurrences = %d; badly skewed", r.Summary.Max)
	}
	if r.String() == "" {
		t.Error("empty rendering")
	}
}

func TestMemProfilesSpec(t *testing.T) {
	rows, err := MemProfiles("spec", 500, tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 16 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]workload.MemoryProfileResult{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	// Small-count rows are unaffected by scaling and must match exactly.
	if r := byName["mcf"]; r.Allocs != 8 || r.Frees != 8 || r.MaxLive != 6 {
		t.Errorf("mcf row = %+v", r)
	}
	if r := byName["lbm"]; r.Allocs != 7 || r.MaxLive != 5 {
		t.Errorf("lbm row = %+v", r)
	}
	// Parallel replay must preserve the profile order and contents.
	par, err := MemProfiles("spec", 500, Options{Instructions: 15_000, Seed: 1, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rows, par) {
		t.Error("memory profiles differ between -j 1 and -j 8")
	}
	out := MemProfilesString("Table II", rows, workload.SPEC(), 500)
	if !strings.Contains(out, "mcf") || !strings.Contains(out, "paper alloc") {
		t.Error("rendering incomplete")
	}
	if _, err := MemProfiles("bogus", 1, tinyOpts()); err == nil {
		t.Error("accepted unknown profile set")
	}
}

func TestTable1(t *testing.T) {
	if len(Table1()) != 4 {
		t.Error("Table I rows")
	}
	if !strings.Contains(Table1String(), "MCQ") {
		t.Error("rendering missing MCQ")
	}
}

func TestFig15SmallRun(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run experiment")
	}
	o := tinyOpts()
	o.Workers = 8
	r, err := Fig15(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Benchmarks) != 16 {
		t.Fatalf("benchmarks = %d", len(r.Benchmarks))
	}
	for _, v := range []Fig15Variant{V15None, V15L1B, V15Comp, V15Both} {
		if r.Geomean[v] <= 0 {
			t.Errorf("%s geomean = %v", v, r.Geomean[v])
		}
	}
	// Both optimizations together must not be worse than none.
	if r.Geomean[V15Both] > r.Geomean[V15None]+0.02 {
		t.Errorf("optimizations hurt: both=%v none=%v", r.Geomean[V15Both], r.Geomean[V15None])
	}
	if !strings.Contains(r.String(), "GEOMEAN") {
		t.Error("rendering missing geomean")
	}
}

// TestProgressEvents checks that matrix runs emit per-job completions
// with monotone counts and job labels.
func TestProgressEvents(t *testing.T) {
	var events []Event
	o := Options{Instructions: 8_000, Seed: 1, Workers: 2}
	o.Progress = func(ev Event) { events = append(events, ev) }
	if _, err := MemProfiles("realworld", 500, o); err != nil {
		t.Fatal(err)
	}
	n := len(workload.RealWorld())
	if len(events) != n {
		t.Fatalf("events = %d, want %d", len(events), n)
	}
	for i, ev := range events {
		if ev.Completed != i+1 || ev.Total != n {
			t.Errorf("event %d: %d/%d", i, ev.Completed, ev.Total)
		}
		if !strings.HasPrefix(ev.Label, "memprofile: ") {
			t.Errorf("event %d label %q", i, ev.Label)
		}
	}
}
