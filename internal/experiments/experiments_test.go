package experiments

import (
	"strings"
	"testing"

	"aos/internal/instrument"
	"aos/internal/workload"
)

func tinyOpts() Options { return Options{Instructions: 15_000, Seed: 1} }

func TestRunMatrixShape(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix run")
	}
	m, err := RunMatrix(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Benchmarks) != 16 {
		t.Fatalf("benchmarks = %d", len(m.Benchmarks))
	}
	for _, b := range m.Benchmarks {
		if len(m.Runs[b]) != 5 {
			t.Fatalf("%s: %d schemes", b, len(m.Runs[b]))
		}
	}

	f14 := Fig14(m)
	if len(f14.Rows) != 16 {
		t.Errorf("fig14 rows = %d", len(f14.Rows))
	}
	for _, row := range f14.Rows {
		if row.Normalized[instrument.Baseline] != 1.0 {
			t.Errorf("%s: baseline normalized to %v", row.Name, row.Normalized[instrument.Baseline])
		}
		for s, v := range row.Normalized {
			if v <= 0 || v > 20 {
				t.Errorf("%s/%v: implausible normalized time %v", row.Name, s, v)
			}
		}
	}
	if f14.Geomean[instrument.AOS] <= 1.0 {
		t.Errorf("AOS geomean %v <= 1; overhead vanished", f14.Geomean[instrument.AOS])
	}
	if f14.Geomean[instrument.Watchdog] <= f14.Geomean[instrument.PA] {
		t.Error("Watchdog geomean below PA; ordering broken")
	}
	if !strings.Contains(f14.String(), "GEOMEAN") {
		t.Error("fig14 rendering missing geomean row")
	}

	f16 := Fig16(m)
	for _, r := range f16 {
		total := r.UnsignedLoad + r.UnsignedStore + r.SignedLoad + r.SignedStore
		if total <= 0 {
			t.Errorf("fig16 %s: empty access mix", r.Name)
		}
		if r.Name == "hmmer" {
			if share := (r.SignedLoad + r.SignedStore) / total; share < 0.7 {
				t.Errorf("hmmer signed share = %.2f, want high", share)
			}
		}
	}
	if Fig16String(f16) == "" {
		t.Error("empty fig16 rendering")
	}

	f17 := Fig17(m)
	for _, r := range f17 {
		if r.AccessesPerInst < 1.0 && r.AccessesPerInst != 0 {
			// Forwarding can push below 1.0 only slightly; a checked op
			// needs at least ~one access otherwise.
			if r.AccessesPerInst < 0.5 {
				t.Errorf("fig17 %s: accesses/op = %v", r.Name, r.AccessesPerInst)
			}
		}
		if r.BWBHitRate < 0 || r.BWBHitRate > 1 {
			t.Errorf("fig17 %s: hit rate %v", r.Name, r.BWBHitRate)
		}
	}
	if Fig17String(f17) == "" {
		t.Error("empty fig17 rendering")
	}

	f18 := Fig18(m)
	if f18.Geomean[instrument.Watchdog] < 1.0 {
		t.Errorf("Watchdog traffic %v < baseline", f18.Geomean[instrument.Watchdog])
	}
	if !strings.Contains(f18.String(), "GEOMEAN") {
		t.Error("fig18 rendering missing geomean")
	}
}

func TestFig11(t *testing.T) {
	r, err := Fig11(60_000)
	if err != nil {
		t.Fatal(err)
	}
	if r.Mallocs != 60_000 || r.Space != 65536 {
		t.Errorf("shape: %+v", r)
	}
	// ~60k PACs over 64k buckets: avg ≈ 0.92, good spread.
	if r.Summary.Avg < 0.8 || r.Summary.Avg > 1.0 {
		t.Errorf("avg occurrences = %v", r.Summary.Avg)
	}
	if r.Distinct < 30_000 {
		t.Errorf("distinct PACs = %d; distribution collapsed", r.Distinct)
	}
	if r.Summary.Max > 30 {
		t.Errorf("max occurrences = %d; badly skewed", r.Summary.Max)
	}
	if r.String() == "" {
		t.Error("empty rendering")
	}
}

func TestMemProfilesSpec(t *testing.T) {
	rows, err := MemProfiles("spec", 500, tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 16 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]workload.MemoryProfileResult{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	// Small-count rows are unaffected by scaling and must match exactly.
	if r := byName["mcf"]; r.Allocs != 8 || r.Frees != 8 || r.MaxLive != 6 {
		t.Errorf("mcf row = %+v", r)
	}
	if r := byName["lbm"]; r.Allocs != 7 || r.MaxLive != 5 {
		t.Errorf("lbm row = %+v", r)
	}
	out := MemProfilesString("Table II", rows, workload.SPEC(), 500)
	if !strings.Contains(out, "mcf") || !strings.Contains(out, "paper alloc") {
		t.Error("rendering incomplete")
	}
	if _, err := MemProfiles("bogus", 1, tinyOpts()); err == nil {
		t.Error("accepted unknown profile set")
	}
}

func TestTable1(t *testing.T) {
	if len(Table1()) != 4 {
		t.Error("Table I rows")
	}
	if !strings.Contains(Table1String(), "MCQ") {
		t.Error("rendering missing MCQ")
	}
}

func TestFig15SmallRun(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run experiment")
	}
	r, err := Fig15(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Benchmarks) != 16 {
		t.Fatalf("benchmarks = %d", len(r.Benchmarks))
	}
	for _, v := range []Fig15Variant{V15None, V15L1B, V15Comp, V15Both} {
		if r.Geomean[v] <= 0 {
			t.Errorf("%s geomean = %v", v, r.Geomean[v])
		}
	}
	// Both optimizations together must not be worse than none.
	if r.Geomean[V15Both] > r.Geomean[V15None]+0.02 {
		t.Errorf("optimizations hurt: both=%v none=%v", r.Geomean[V15Both], r.Geomean[V15None])
	}
	if !strings.Contains(r.String(), "GEOMEAN") {
		t.Error("rendering missing geomean")
	}
}
