package sampling

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"sort"
	"sync"

	"aos/internal/core"
	"aos/internal/cpu"
	"aos/internal/workload"
)

// KeySpec names a checkpoint: the full identity of the simulation cell (a
// scheme changes the architectural trace, so schemes never share
// checkpoints) plus the schedule and the window boundary the checkpoint
// was taken at. The key is the sha256 of the spec's canonical JSON —
// struct field order is fixed, so encoding/json is canonical here.
type KeySpec struct {
	Benchmark    string   `json:"benchmark"`
	Seed         int64    `json:"seed"`
	Instructions uint64   `json:"instructions"`
	Scheme       string   `json:"scheme"`
	Variant      string   `json:"variant,omitempty"`
	Schedule     Schedule `json:"schedule"`
	Boundary     int      `json:"boundary"`
}

// Hash returns the content address for this spec.
func (k KeySpec) Hash() string {
	b, err := json.Marshal(k)
	if err != nil {
		// KeySpec contains only marshal-safe field types.
		panic(err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// Checkpoint is a complete simulation state at one window boundary: the
// functional machine (kernel, HBT, heap, memory pages — memory is
// copy-on-write, so checkpoints share untouched pages), the timing core
// (caches, predictor, BWB, queues, clocks, stats), and the workload's loop
// position (PRNG, live chunks, cursors). All three are immutable deep
// copies; any number of cells may restore from the same checkpoint.
type Checkpoint struct {
	Machine *core.MachineState
	Core    *cpu.CoreState
	Runner  *workload.RunnerState
}

// Store is a content-addressed, in-memory checkpoint store shared across
// the runs of a matrix (and across repeated invocations when the caller
// keeps it alive). Safe for concurrent use.
type Store struct {
	mu     sync.RWMutex
	m      map[string]*Checkpoint
	hits   uint64
	misses uint64
}

// NewStore returns an empty store.
func NewStore() *Store { return &Store{m: make(map[string]*Checkpoint)} }

// Get returns the checkpoint at key, counting the lookup as a hit or miss.
func (s *Store) Get(key string) (*Checkpoint, bool) {
	s.mu.RLock()
	cp, ok := s.m[key]
	s.mu.RUnlock()
	s.mu.Lock()
	if ok {
		s.hits++
	} else {
		s.misses++
	}
	s.mu.Unlock()
	return cp, ok
}

// Put stores a checkpoint. The first writer wins: a concurrent duplicate
// of a deterministic checkpoint is identical by construction, so the
// existing entry is kept.
func (s *Store) Put(key string, cp *Checkpoint) {
	s.mu.Lock()
	if _, ok := s.m[key]; !ok {
		s.m[key] = cp
	}
	s.mu.Unlock()
}

// Stats reports lifetime lookup counters and the entry count.
func (s *Store) Stats() (hits, misses uint64, entries int) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.hits, s.misses, len(s.m)
}

// Keys returns the stored keys, sorted (for deterministic reporting).
func (s *Store) Keys() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	keys := make([]string, 0, len(s.m))
	for k := range s.m { //aoslint:allow mapiter — order-free: sorted before return
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
