package sampling

import (
	"context"
	"fmt"

	"aos/internal/core"
	"aos/internal/cpu"
	"aos/internal/isa"
	"aos/internal/workload"
)

// Segment is one contiguous stretch of the run consumed in a single mode,
// in commit-cycle and consumed-instruction coordinates. Fast-forward
// segments have StartCycle == EndCycle (the commit clock is frozen);
// instruction counts always advance.
type Segment struct {
	Detailed   bool
	StartCycle uint64
	EndCycle   uint64
	StartInst  uint64
	EndInst    uint64
}

// Config parameterizes a sampled run.
type Config struct {
	// Schedule must be normalized (Schedule.Normalize) against the
	// profile's instruction budget.
	Schedule Schedule
	// Store, when non-nil, enables checkpoint reuse: window-boundary
	// checkpoints are looked up before fast-forwarding and stored after.
	// A fully warm store turns the run into pure detailed windows plus
	// one tail gap — this is where the order-of-magnitude effective
	// speedup comes from.
	Store *Store
	// Key identifies the simulation cell for checkpoint addressing; the
	// Schedule and Boundary fields are filled in by Run.
	Key KeySpec
	// OnSegment, when non-nil, observes each mode segment as it closes
	// (for telemetry timelines). Instruction counts reset with the
	// measurement region: the first detailed segment restarts near zero.
	OnSegment func(Segment)
}

// Result is the outcome of a sampled run.
type Result struct {
	Est      *Estimate
	Segments []Segment
	// WarmCounts is the machine's architectural counts at the start of
	// the measurement region (the window-0 boundary), for warmup
	// subtraction — identical whether the run reached the boundary by
	// fast-forwarding or by checkpoint restore.
	WarmCounts isa.Counts
	// Hits/Misses count this run's checkpoint lookups (subset of the
	// store's lifetime counters).
	Hits   int
	Misses int
}

// Run executes profile p on the (machine, timing core) pair in SMARTS
// U/W/F fashion and returns the timing estimate. The machine must already
// be wired to the core (directly or via a batch sink); m and c must be
// freshly constructed — Run positions them itself, restoring from the
// store when it can.
//
// The functional machine executes every instruction of the run regardless
// of mode, so architectural outputs — heap stats, exception logs, counts —
// are exact; only cycle-domain quantities are estimated. The run is
// deterministic: a cold run and a checkpoint-resumed run produce
// byte-identical estimates and architectural state.
func Run(ctx context.Context, p *workload.Profile, m *core.Machine, c *cpu.Core, seed int64, cfg Config) (*Result, error) {
	sched := cfg.Schedule
	if err := sched.Validate(p.Instructions); err != nil {
		return nil, err
	}
	total := sched.Warmup + p.Instructions
	res := &Result{}

	var r *workload.Runner
	var err error

	var segStartC, segStartI uint64
	beginSeg := func() { segStartC, segStartI = c.LastCommit(), c.Insts() }
	endSeg := func(detailed bool) {
		seg := Segment{
			Detailed:   detailed,
			StartCycle: segStartC, EndCycle: c.LastCommit(),
			StartInst: segStartI, EndInst: c.Insts(),
		}
		if seg.EndInst > seg.StartInst {
			res.Segments = append(res.Segments, seg)
			if cfg.OnSegment != nil {
				cfg.OnSegment(seg)
			}
		}
	}

	windows := make([]WindowStat, 0, sched.Windows)
	for i := 0; i < sched.Windows; i++ {
		ustart := sched.Start(i)
		var key string
		restored := false
		if cfg.Store != nil {
			k := cfg.Key
			k.Schedule = sched
			k.Boundary = i
			key = k.Hash()
			if cp, ok := cfg.Store.Get(key); ok {
				if err := m.Restore(cp.Machine); err != nil {
					return nil, fmt.Errorf("sampling: window %d: %w", i, err)
				}
				if err := c.Restore(cp.Core); err != nil {
					return nil, fmt.Errorf("sampling: window %d: %w", i, err)
				}
				if r, err = workload.NewRunnerFromState(p, m, cp.Runner); err != nil {
					return nil, fmt.Errorf("sampling: window %d: %w", i, err)
				}
				res.Hits++
				restored = true
			} else {
				res.Misses++
			}
		}
		if !restored {
			// Fast-forward (functionally warming) to the window start.
			// The workload's setup phase also runs in FF mode: its
			// emissions only warm state the first window's U segment
			// re-settles anyway.
			c.SetMode(cpu.ModeFastForward)
			beginSeg()
			if r == nil {
				if r, err = workload.NewRunner(p, m, seed); err != nil {
					return nil, err
				}
			}
			if err := r.RunTo(ctx, ustart, total); err != nil {
				return nil, err
			}
			m.Flush()
			endSeg(false)
			if i == 0 {
				// Measurement region begins here; the reset lands in the
				// checkpoint below, so resumed runs inherit it.
				c.ResetStats()
			}
			if cfg.Store != nil {
				cfg.Store.Put(key, &Checkpoint{
					Machine: m.Snapshot(), // flushes m first
					Core:    c.Snapshot(),
					Runner:  r.State(),
				})
			}
		}

		if i == 0 {
			res.WarmCounts = m.Counts()
		}

		// U: detailed warmup (re-settles pipeline/queue transients after
		// the mode switch or restore), then W: the measurement window.
		c.SetMode(cpu.ModeDetailed)
		beginSeg()
		if err := r.RunTo(ctx, ustart+sched.Detail, total); err != nil {
			return nil, err
		}
		m.Flush()
		wc, wi := c.LastCommit(), c.Insts()
		if err := r.RunTo(ctx, ustart+sched.Detail+sched.Window, total); err != nil {
			return nil, err
		}
		m.Flush()
		endSeg(true)
		windows = append(windows, WindowStat{Cycles: c.LastCommit() - wc, Insts: c.Insts() - wi})
	}

	// Tail: finish the run functionally so architectural outputs cover
	// the full budget.
	c.SetMode(cpu.ModeFastForward)
	beginSeg()
	if err := r.RunTo(ctx, total, total); err != nil {
		return nil, err
	}
	m.Flush()
	endSeg(false)
	c.SetMode(cpu.ModeDetailed)

	// c.Insts() counts consumption since the measurement-region reset —
	// in both modes — so it is the exact detailed-equivalent denominator.
	est, err := Summarize(windows, c.Insts())
	if err != nil {
		return nil, err
	}
	res.Est = est
	return res, nil
}
