package sampling

import (
	"math"
	"testing"
)

func TestScheduleNormalizeDefaults(t *testing.T) {
	s, err := (Schedule{Warmup: 50_000}).Normalize(1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if s.Windows != DefaultWindows || s.Detail != DefaultDetail || s.Window != DefaultWindow {
		t.Fatalf("defaults not applied: %+v", s)
	}
	wantGap := (1_000_000 - uint64(s.Windows)*(s.Detail+s.Window)) / uint64(s.Windows)
	if s.Gap != wantGap {
		t.Fatalf("derived gap %d, want %d", s.Gap, wantGap)
	}
	if err := s.Validate(1_000_000); err != nil {
		t.Fatalf("normalized schedule failed validation: %v", err)
	}
	// Layout invariant: the last window must end inside the region.
	end := s.Start(s.Windows-1) + s.Detail + s.Window
	if end > s.Warmup+1_000_000 {
		t.Fatalf("last window ends at %d, past region end %d", end, s.Warmup+1_000_000)
	}
}

func TestScheduleNormalizeErrors(t *testing.T) {
	if _, err := (Schedule{Windows: 1}).Normalize(1_000_000); err == nil {
		t.Error("accepted a single window (no variance estimate possible)")
	}
	if _, err := (Schedule{Windows: 100, Detail: 5_000, Window: 20_000}).Normalize(100_000); err == nil {
		t.Error("accepted windows exceeding the region")
	}
	if _, err := (Schedule{Windows: 4, Detail: 1_000, Window: 4_000, Gap: 1 << 40}).Normalize(100_000); err == nil {
		t.Error("accepted a gap pushing the schedule past the region")
	}
}

func TestSummarize(t *testing.T) {
	// Two windows, CPI 2.0 and 4.0; pooled CPI = (200+400)/(100+100) = 3.
	ws := []WindowStat{{Cycles: 200, Insts: 100}, {Cycles: 400, Insts: 100}}
	e, err := Summarize(ws, 1_000)
	if err != nil {
		t.Fatal(err)
	}
	if e.CPI != 3.0 {
		t.Fatalf("CPI = %v, want 3.0", e.CPI)
	}
	if e.Cycles != 3_000 {
		t.Fatalf("Cycles = %d, want 3000", e.Cycles)
	}
	if math.Abs(e.IPC-1.0/3.0) > 1e-12 {
		t.Fatalf("IPC = %v", e.IPC)
	}
	// Per-window CPIs 2 and 4: mean 3, sd sqrt(2), CV = sqrt(2)/3.
	wantCV := math.Sqrt2 / 3
	if math.Abs(e.CV-wantCV) > 1e-12 {
		t.Fatalf("CV = %v, want %v", e.CV, wantCV)
	}
	wantCI := 1.96 * wantCV / math.Sqrt2
	if math.Abs(e.CI95-wantCI) > 1e-12 {
		t.Fatalf("CI95 = %v, want %v", e.CI95, wantCI)
	}

	if _, err := Summarize(ws[:1], 10); err == nil {
		t.Error("accepted a single window")
	}
	if _, err := Summarize([]WindowStat{{0, 0}, {1, 1}}, 10); err == nil {
		t.Error("accepted an empty window")
	}
}

func TestKeySpecHash(t *testing.T) {
	base := KeySpec{
		Benchmark: "mcf", Seed: 7, Instructions: 100_000, Scheme: "aos",
		Schedule: Schedule{Warmup: 50_000, Detail: 1_000, Window: 4_000, Gap: 20_000, Windows: 4},
	}
	if base.Hash() != base.Hash() {
		t.Fatal("hash is not deterministic")
	}
	seen := map[string]string{base.Hash(): "base"}
	for name, k := range map[string]KeySpec{
		"boundary": func() KeySpec { k := base; k.Boundary = 1; return k }(),
		"scheme":   func() KeySpec { k := base; k.Scheme = "mte"; return k }(),
		"seed":     func() KeySpec { k := base; k.Seed = 8; return k }(),
		"variant":  func() KeySpec { k := base; k.Variant = "nobwb"; return k }(),
		"schedule": func() KeySpec { k := base; k.Schedule.Gap = 10_000; return k }(),
	} {
		h := k.Hash()
		if prev, dup := seen[h]; dup {
			t.Errorf("key collision between %s and %s", name, prev)
		}
		seen[h] = name
	}
}

func TestStore(t *testing.T) {
	s := NewStore()
	if _, ok := s.Get("a"); ok {
		t.Fatal("empty store returned a checkpoint")
	}
	cp1 := &Checkpoint{}
	s.Put("a", cp1)
	s.Put("a", &Checkpoint{}) // duplicate: first writer wins
	got, ok := s.Get("a")
	if !ok || got != cp1 {
		t.Fatal("store did not keep the first checkpoint")
	}
	hits, misses, entries := s.Stats()
	if hits != 1 || misses != 1 || entries != 1 {
		t.Fatalf("stats = %d/%d/%d, want 1/1/1", hits, misses, entries)
	}
	if keys := s.Keys(); len(keys) != 1 || keys[0] != "a" {
		t.Fatalf("keys = %v", keys)
	}
}
