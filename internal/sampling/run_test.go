package sampling

import (
	"context"
	"reflect"
	"testing"

	"aos/internal/core"
	"aos/internal/cpu"
	"aos/internal/instrument"
	"aos/internal/workload"
)

func sampledCell(t *testing.T, scheme instrument.Scheme) (*workload.Profile, *core.Machine, *cpu.Core) {
	t.Helper()
	p, ok := workload.ByName("hmmer")
	if !ok {
		t.Fatal("no hmmer profile")
	}
	p = p.Clone()
	p.Instructions = 120_000
	m, err := core.New(core.Config{Scheme: scheme})
	if err != nil {
		t.Fatal(err)
	}
	c := cpu.New(cpu.DefaultConfig())
	m.SetSink(c)
	m.SetBatch(core.EmitBatchSize)
	return p, m, c
}

func testSchedule() Schedule {
	return Schedule{Warmup: 60_000, Detail: 1_000, Window: 4_000, Windows: 4}
}

// TestSampledColdVsResumedByteIdentical: a run resumed entirely from the
// checkpoint store must produce the byte-identical estimate, architectural
// counts, and timing statistics of the cold run that populated the store —
// for every protection scheme.
func TestSampledColdVsResumedByteIdentical(t *testing.T) {
	for _, scheme := range instrument.AllSchemes() {
		p, m, c := sampledCell(t, scheme)
		sched, err := testSchedule().Normalize(p.Instructions)
		if err != nil {
			t.Fatal(err)
		}
		store := NewStore()
		key := KeySpec{Benchmark: p.Name, Seed: 7, Instructions: p.Instructions, Scheme: scheme.String()}
		cfg := Config{Schedule: sched, Store: store, Key: key}

		cold, err := Run(context.Background(), p, m, c, 7, cfg)
		if err != nil {
			t.Fatalf("%v: cold: %v", scheme, err)
		}
		if cold.Hits != 0 || cold.Misses != sched.Windows {
			t.Fatalf("%v: cold run hits/misses = %d/%d", scheme, cold.Hits, cold.Misses)
		}
		coldCounts := m.Counts()
		coldCPU := c.Finalize()

		p2, m2, c2 := sampledCell(t, scheme)
		warm, err := Run(context.Background(), p2, m2, c2, 7, cfg)
		if err != nil {
			t.Fatalf("%v: resumed: %v", scheme, err)
		}
		if warm.Hits != sched.Windows || warm.Misses != 0 {
			t.Fatalf("%v: resumed run hits/misses = %d/%d, want %d/0", scheme, warm.Hits, warm.Misses, sched.Windows)
		}
		if !reflect.DeepEqual(warm.Est, cold.Est) {
			t.Fatalf("%v: estimates diverged:\ncold %+v\nwarm %+v", scheme, cold.Est, warm.Est)
		}
		if !reflect.DeepEqual(m2.Counts(), coldCounts) {
			t.Fatalf("%v: machine counts diverged", scheme)
		}
		if !reflect.DeepEqual(c2.Finalize(), coldCPU) {
			t.Fatalf("%v: timing statistics diverged", scheme)
		}
		if len(m2.Exceptions()) != len(m.Exceptions()) {
			t.Fatalf("%v: exception logs diverged", scheme)
		}
	}
}

// TestSampledSegments: the mode timeline must alternate FF/detailed with
// frozen commit clocks in FF segments and advancing clocks in detailed
// ones.
func TestSampledSegments(t *testing.T) {
	p, m, c := sampledCell(t, instrument.AOS)
	sched, err := testSchedule().Normalize(p.Instructions)
	if err != nil {
		t.Fatal(err)
	}
	var observed []Segment
	res, err := Run(context.Background(), p, m, c, 7, Config{
		Schedule:  sched,
		OnSegment: func(s Segment) { observed = append(observed, s) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(observed, res.Segments) {
		t.Fatal("OnSegment stream differs from Result.Segments")
	}
	// warmup FF + per-window (FF gap reaching it + detailed U+W) + tail FF.
	detailed := 0
	for i, s := range res.Segments {
		if s.Detailed {
			detailed++
			if s.EndCycle <= s.StartCycle {
				t.Errorf("segment %d: detailed segment did not advance the commit clock", i)
			}
		} else if s.EndCycle != s.StartCycle {
			t.Errorf("segment %d: FF segment advanced the commit clock %d -> %d", i, s.StartCycle, s.EndCycle)
		}
		if i > 0 && s.Detailed == res.Segments[i-1].Detailed {
			t.Errorf("segment %d: consecutive segments share mode %v", i, s.Detailed)
		}
	}
	if detailed != sched.Windows {
		t.Fatalf("detailed segments = %d, want %d", detailed, sched.Windows)
	}
	if res.Segments[0].Detailed || res.Segments[len(res.Segments)-1].Detailed {
		t.Fatal("run must start and end in fast-forward")
	}
}

// TestSampledEstimateTracksExact: on a steady-state workload the sampled
// estimate must land near the full-detail cycle count (the tight 2% matrix
// bound lives in the experiments error-bound test; this is the unit-level
// sanity version).
func TestSampledEstimateTracksExact(t *testing.T) {
	p, m, c := sampledCell(t, instrument.AOS)
	sched, err := testSchedule().Normalize(p.Instructions)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), p, m, c, 7, Config{Schedule: sched})
	if err != nil {
		t.Fatal(err)
	}

	// Full-detail reference: same cell, warmup then measure.
	p2, m2, c2 := sampledCell(t, instrument.AOS)
	if err := p2.RunWarm(m2, 7, sched.Warmup, c2.ResetStats); err != nil {
		t.Fatal(err)
	}
	m2.Flush()
	exact := c2.Finalize()

	ratio := float64(res.Est.Cycles) / float64(exact.Cycles)
	if ratio < 0.90 || ratio > 1.10 {
		t.Fatalf("sampled cycles %d vs exact %d (ratio %.3f) outside 10%%", res.Est.Cycles, exact.Cycles, ratio)
	}
	if res.Est.TotalInsts != exact.Insts {
		t.Fatalf("sampled total insts %d != exact consumed insts %d", res.Est.TotalInsts, exact.Insts)
	}
}
