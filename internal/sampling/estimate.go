package sampling

import (
	"fmt"
	"math"
)

// WindowStat is one measurement window's timing observation: commit cycles
// and consumed instructions (instrumentation included) over the W segment.
type WindowStat struct {
	Cycles uint64 `json:"cycles"`
	Insts  uint64 `json:"insts"`
}

// Estimate is the systematic-sampling extrapolation of a run's timing from
// its measurement windows, with the dispersion statistics SMARTS uses to
// bound sampling error.
type Estimate struct {
	Windows []WindowStat `json:"windows"`

	// SampledCycles/SampledInsts sum the measurement windows.
	SampledCycles uint64 `json:"sampled_cycles"`
	SampledInsts  uint64 `json:"sampled_insts"`

	// CPI is the ratio estimator SampledCycles/SampledInsts; IPC its
	// inverse; Cycles the extrapolation CPI*TotalInsts rounded to nearest.
	CPI        float64 `json:"cpi"`
	IPC        float64 `json:"ipc"`
	TotalInsts uint64  `json:"total_insts"`
	Cycles     uint64  `json:"cycles"`

	// CV is the coefficient of variation of per-window CPI; CI95 the
	// relative half-width of the 95% confidence interval on the mean CPI
	// (1.96*CV/sqrt(n)) — e.g. 0.01 means the estimate is within ±1% of
	// the true mean with 95% confidence, under the usual normality
	// approximation.
	CV   float64 `json:"cv"`
	CI95 float64 `json:"ci95"`
}

// Summarize reduces per-window observations into a whole-run estimate.
// totalInsts is the exact number of instructions the timing model would
// have consumed over the measured region (known exactly even in a sampled
// run: fast-forward consumption counts instructions too).
func Summarize(windows []WindowStat, totalInsts uint64) (*Estimate, error) {
	if len(windows) < 2 {
		return nil, fmt.Errorf("sampling: need at least 2 windows, got %d", len(windows))
	}
	e := &Estimate{Windows: windows, TotalInsts: totalInsts}
	cpis := make([]float64, len(windows))
	for i, w := range windows {
		if w.Insts == 0 {
			return nil, fmt.Errorf("sampling: window %d measured no instructions", i)
		}
		e.SampledCycles += w.Cycles
		e.SampledInsts += w.Insts
		cpis[i] = float64(w.Cycles) / float64(w.Insts)
	}
	e.CPI = float64(e.SampledCycles) / float64(e.SampledInsts)
	if e.CPI > 0 {
		e.IPC = 1 / e.CPI
	}
	e.Cycles = uint64(e.CPI*float64(totalInsts) + 0.5)

	var mean float64
	for _, v := range cpis {
		mean += v
	}
	mean /= float64(len(cpis))
	var ss float64
	for _, v := range cpis {
		d := v - mean
		ss += d * d
	}
	if mean > 0 && len(cpis) > 1 {
		sd := math.Sqrt(ss / float64(len(cpis)-1))
		e.CV = sd / mean
		e.CI95 = 1.96 * e.CV / math.Sqrt(float64(len(cpis)))
	}
	return e, nil
}
