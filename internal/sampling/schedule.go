// Package sampling implements SMARTS-style systematic sampling for the
// simulator: the measured region of a run is tiled with repeating
// [detail-warmup][measurement window][fast-forward gap] segments, only the
// windows are simulated with the full timing model, and whole-run cycle
// counts are extrapolated from the window CPI with a confidence interval.
// Checkpoints of the complete simulation state (functional machine, timing
// core, workload position) taken at window boundaries are content-addressed
// in a Store, so later runs of the same cell — and forks of it — skip the
// fast-forward prefix entirely.
package sampling

import "fmt"

// Schedule is the U/W/F layout of a sampled run over a measured region of
// `region` program instructions following `Warmup` functional-warming
// instructions. Window i's segments, in program-instruction positions
// relative to the run start:
//
//	[start_i, start_i+Detail)           detailed warmup (U): timing model
//	                                    runs, cycles excluded from estimate
//	[start_i+Detail, start_i+Detail+Window)  measurement window (W)
//	[window end, start_{i+1})           fast-forward gap (F)
//
// with start_i = Warmup + i*(Detail+Window+Gap).
type Schedule struct {
	Warmup  uint64 `json:"warmup"`
	Detail  uint64 `json:"detail"`
	Window  uint64 `json:"window"`
	Gap     uint64 `json:"gap"`
	Windows int    `json:"windows"`
}

// Default U/W sizes: long enough for the pipeline/queue transient after a
// mode switch to die out (hundreds of instructions), short enough that the
// detailed fraction of a sampled run stays small.
const (
	DefaultDetail  = 2_000
	DefaultWindow  = 8_000
	DefaultWindows = 10
)

// Normalize fills defaults and derives the gap so the schedule tiles the
// measured region; it returns an error when the schedule cannot fit.
func (s Schedule) Normalize(region uint64) (Schedule, error) {
	if s.Windows == 0 {
		s.Windows = DefaultWindows
	}
	if s.Detail == 0 {
		s.Detail = DefaultDetail
	}
	if s.Window == 0 {
		s.Window = DefaultWindow
	}
	if s.Windows < 2 {
		return s, fmt.Errorf("sampling: need at least 2 windows for a variance estimate, got %d", s.Windows)
	}
	n := uint64(s.Windows)
	uw := s.Detail + s.Window
	if s.Window == 0 || uw*n > region {
		return s, fmt.Errorf("sampling: %d windows of %d detailed instructions exceed the %d-instruction region",
			s.Windows, uw, region)
	}
	if s.Gap == 0 {
		// Systematic sampling: spread the windows evenly, leaving the
		// final gap (the tail) the same length as the others.
		s.Gap = (region - n*uw) / n
	}
	span := (n-1)*(uw+s.Gap) + uw
	if span > region {
		return s, fmt.Errorf("sampling: schedule spans %d instructions, region is %d", span, region)
	}
	return s, nil
}

// Validate reports whether the schedule is normalized and self-consistent.
func (s Schedule) Validate(region uint64) error {
	n, err := s.Normalize(region)
	if err != nil {
		return err
	}
	if n != s {
		return fmt.Errorf("sampling: schedule is not normalized (want %+v)", n)
	}
	return nil
}

// Start returns window i's U-segment start position in program
// instructions from the beginning of the run.
func (s Schedule) Start(i int) uint64 {
	return s.Warmup + uint64(i)*(s.Detail+s.Window+s.Gap)
}

// DetailedInsts returns the number of program instructions consumed by the
// timing model under this schedule (the rest fast-forwards).
func (s Schedule) DetailedInsts() uint64 {
	return uint64(s.Windows) * (s.Detail + s.Window)
}
