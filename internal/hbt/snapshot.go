package hbt

// State is a deep copy of a Table's bookkeeping, taken by Snapshot. The
// architectural bounds storage itself lives in simulated memory and is
// checkpointed by mem.Memory.Snapshot; this State carries the geometry and
// the write-through mirror so a restored table agrees with the restored
// address space without rescanning it.
type State struct {
	base      uint64
	assoc     int
	logA      uint
	slots     int
	entrySize uint64
	mirror    map[uint16][]uint64
	live      int
}

// Snapshot deep-copies the table bookkeeping.
func (t *Table) Snapshot() *State {
	s := &State{
		base:      t.base,
		assoc:     t.assoc,
		logA:      t.logA,
		slots:     t.slots,
		entrySize: t.entrySize,
		mirror:    make(map[uint16][]uint64, len(t.mirror)),
		live:      t.live,
	}
	for row, ents := range t.mirror { //aoslint:allow mapiter — order-free: builds an independent map, no order-dependent effects
		s.mirror[row] = append([]uint64(nil), ents...)
	}
	return s
}

// Restore rewinds the table to a snapshot. The backing memory must be
// restored to the matching mem.State separately (core.Machine.Restore does
// both). The snapshot stays valid for further restores.
func (t *Table) Restore(s *State) {
	t.base = s.base
	t.assoc = s.assoc
	t.logA = s.logA
	t.slots = s.slots
	t.entrySize = s.entrySize
	t.mirror = make(map[uint16][]uint64, len(s.mirror))
	for row, ents := range s.mirror { //aoslint:allow mapiter — order-free: builds an independent map, no order-dependent effects
		t.mirror[row] = append([]uint64(nil), ents...)
	}
	t.live = s.live
}
