// Package hbt implements the AOS hashed bounds table (§V-B), the 8-byte
// bounds-compression format (§V-D, Fig 9), and the gradual-resizing scheme
// with non-blocking row migration (§V-F3, Fig 10).
//
// The table is a per-process structure living in simulated memory: one row
// per PAC value (65536 rows for 16-bit PACs), each row a power-of-two
// number of 64-byte ways, each way holding eight compressed bounds. The row
// offset and way address follow Eq. 1 and Eq. 2 of the paper:
//
//	RowOffset = PAC << (log2(BND_ASSOC) + 6)
//	BndAddr   = BND_BASE + RowOffset + (W << 6)
package hbt

import (
	"errors"
	"fmt"
)

// Bounds-compression constants (Fig 9a).
const (
	// lowShift is where the 29-bit partial lower bound lives.
	lowShift = 32
	// lowFieldBits is the width of the stored LowBnd[32:4] field.
	lowFieldBits = 29
	// addrWindow is the 33-bit address window preserved by compression.
	addrWindow = uint64(1)<<33 - 1
)

// Compress encodes a lower bound and a size into the 8-byte format of
// Fig 9a: bits [60:32] hold LowBnd[32:4], bits [31:0] hold the size, bits
// [63:61] are reserved (zero). The lower bound must be 16-byte aligned
// (malloc guarantees this) and the size must be nonzero and fit in 32 bits.
func Compress(low uint64, size uint64) (uint64, error) {
	if low%16 != 0 {
		return 0, fmt.Errorf("hbt: lower bound %#x not 16-byte aligned", low)
	}
	if size == 0 || size > 0xFFFFFFFF {
		return 0, fmt.Errorf("hbt: size %d not encodable in 32 bits", size)
	}
	lowField := (low >> 4) & ((1 << lowFieldBits) - 1) // LowBnd[32:4]
	return lowField<<lowShift | size, nil
}

// Size returns the 32-bit size field of a compressed entry.
func Size(w uint64) uint64 { return w & 0xFFFFFFFF }

// LowField returns the stored LowBnd[32:4] field.
func LowField(w uint64) uint64 { return (w >> lowShift) & ((1 << lowFieldBits) - 1) }

// DecompressedLow returns dLowBnd: the 33-bit lower bound (Fig 9b).
func DecompressedLow(w uint64) uint64 { return LowField(w) << 4 }

// DecompressedUpp returns dUppBnd = dLowBnd + Size (34-bit, exclusive).
func DecompressedUpp(w uint64) uint64 { return DecompressedLow(w) + Size(w) }

// truncAddr computes tAddr from a raw pointer address per Fig 9b: the low
// 33 address bits, with the C bit (bit 33) set to compensate for a carry
// lost by partial-address encoding: C = LowBnd[32] & !Addr[32].
func truncAddr(w uint64, addr uint64) uint64 {
	t := addr & addrWindow
	c := (DecompressedLow(w) >> 32) &^ (addr >> 32) & 1
	return t | c<<33
}

// Covers reports whether compressed entry w bounds-checks addr:
// dLowBnd <= tAddr < dUppBnd. A zero entry (empty slot) covers nothing.
func Covers(w uint64, addr uint64) bool {
	if w == 0 {
		return false
	}
	t := truncAddr(w, addr)
	return t >= DecompressedLow(w) && t < DecompressedUpp(w)
}

// MatchesBase reports whether entry w was stored for a chunk whose base is
// addr — the occupancy test bndclr performs ("checks if the loaded lower
// bound is the same as its pointer address").
func MatchesBase(w uint64, addr uint64) bool {
	if w == 0 {
		return false
	}
	return LowField(w) == (addr>>4)&((1<<lowFieldBits)-1)
}

// ErrNotCompressible is returned for inputs the format cannot hold.
var ErrNotCompressible = errors.New("hbt: bounds not compressible")
