package hbt

import (
	"math/rand"
	"testing"
	"testing/quick"

	"aos/internal/mem"
)

const tblBase = 0x3000_0000_0000

func newTestTable(t testing.TB, assoc int) *Table {
	t.Helper()
	tb, err := NewTable(mem.New(), tblBase, assoc)
	if err != nil {
		t.Fatal(err)
	}
	return tb
}

// --- compression ---

func TestCompressRejectsBadInput(t *testing.T) {
	if _, err := Compress(0x2000_0000_0008, 64); err == nil {
		t.Error("Compress accepted an unaligned lower bound")
	}
	if _, err := Compress(0x2000_0000_0000, 0); err == nil {
		t.Error("Compress accepted a zero size")
	}
	if _, err := Compress(0x2000_0000_0000, 1<<33); err == nil {
		t.Error("Compress accepted a >32-bit size")
	}
}

func TestCompressedEntryIsNeverZero(t *testing.T) {
	f := func(lowRaw uint64, sizeRaw uint32) bool {
		low := lowRaw &^ 0xF
		size := uint64(sizeRaw) + 1
		w, err := Compress(low, size)
		return err == nil && w != 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCoversInBounds(t *testing.T) {
	f := func(lowRaw uint64, sizeRaw uint16, offRaw uint32) bool {
		low := lowRaw &^ 0xF & ((1 << 46) - 1)
		size := uint64(sizeRaw) + 1
		off := uint64(offRaw) % size
		w, err := Compress(low, size)
		if err != nil {
			return false
		}
		return Covers(w, low+off)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCoversRejectsOutOfBounds(t *testing.T) {
	low := uint64(0x2000_0000_1000)
	const size = 256
	w, err := Compress(low, size)
	if err != nil {
		t.Fatal(err)
	}
	cases := []uint64{low - 1, low - 16, low + size, low + size + 100, low + 1<<20}
	for _, addr := range cases {
		if Covers(w, addr) {
			t.Errorf("Covers(%#x) = true for bounds [%#x,%#x)", addr, low, low+size)
		}
	}
	if Covers(w, low) != true || Covers(w, low+size-1) != true {
		t.Error("Covers rejected the bounds' own endpoints")
	}
}

func TestCoversCarryBit(t *testing.T) {
	// A chunk that straddles the 2^33 boundary: base has bit 32 set region
	// near the top of the window; addr past the boundary has Addr[32]=0.
	low := uint64(1)<<33 - 4096 // LowBnd[32]=1 region
	w, err := Compress(low, 8192)
	if err != nil {
		t.Fatal(err)
	}
	inside := low + 6000 // crosses 2^33: Addr[32] wrapped to 0
	if inside>>33 != 1 {
		t.Fatal("test address does not cross the window")
	}
	if !Covers(w, inside) {
		t.Error("carry-compensation (C bit) failed: in-bounds address rejected")
	}
}

func TestCoversZeroEntry(t *testing.T) {
	if Covers(0, 0) || Covers(0, 0x2000_0000_0000) {
		t.Error("empty slot must cover nothing")
	}
}

func TestMatchesBase(t *testing.T) {
	low := uint64(0x2000_0000_2340)
	w, _ := Compress(low, 64)
	if !MatchesBase(w, low) {
		t.Error("MatchesBase rejected the entry's own base")
	}
	if MatchesBase(w, low+16) {
		t.Error("MatchesBase matched a different base")
	}
	if MatchesBase(0, low) {
		t.Error("MatchesBase matched the empty slot")
	}
}

// --- table geometry ---

func TestNewTableValidation(t *testing.T) {
	m := mem.New()
	for _, assoc := range []int{0, 3, 5, 128} {
		if _, err := NewTable(m, tblBase, assoc); err == nil {
			t.Errorf("NewTable(assoc=%d) succeeded, want error", assoc)
		}
	}
	if _, err := NewTable(m, tblBase+8, 1); err == nil {
		t.Error("NewTable accepted an unaligned base")
	}
}

func TestAddressingEquations(t *testing.T) {
	// Paper Eq. 1-2 with the initial 1-way table: 4 MB, row i at base+64*i.
	tb := newTestTable(t, 1)
	if tb.SizeBytes() != 4<<20 {
		t.Errorf("1-way table size = %d, want 4 MiB", tb.SizeBytes())
	}
	if got := tb.RowAddr(0); got != tblBase {
		t.Errorf("RowAddr(0) = %#x", got)
	}
	if got := tb.RowAddr(1); got != tblBase+64 {
		t.Errorf("RowAddr(1) = %#x, want base+64", got)
	}
	tb4 := newTestTable(t, 4)
	if got := tb4.RowAddr(2); got != tblBase+2*4*64 {
		t.Errorf("4-way RowAddr(2) = %#x, want base+512", got)
	}
	if got := tb4.WayAddr(2, 3); got != tb4.RowAddr(2)+3*64 {
		t.Errorf("WayAddr = %#x", got)
	}
	if tb4.WayAddr(2, 3)%64 != 0 {
		t.Error("way address not 64-byte aligned")
	}
}

// --- insert / lookup / clear ---

func TestInsertLookupClear(t *testing.T) {
	tb := newTestTable(t, 2)
	const pac = 0xBEEF
	low := uint64(0x2000_0000_4000)
	way, err := tb.Insert(pac, low, 128)
	if err != nil {
		t.Fatal(err)
	}
	if way != 0 {
		t.Errorf("first insert went to way %d, want 0", way)
	}
	if w, found := tb.Lookup(pac, low+64); !found || w != 0 {
		t.Errorf("Lookup = (%d,%v), want (0,true)", w, found)
	}
	if _, found := tb.Lookup(pac, low+128); found {
		t.Error("Lookup found bounds for an out-of-bounds address")
	}
	if _, found := tb.Lookup(pac^1, low); found {
		t.Error("Lookup found bounds under the wrong PAC")
	}
	if w, found := tb.Clear(pac, low); !found || w != 0 {
		t.Errorf("Clear = (%d,%v), want (0,true)", w, found)
	}
	if _, found := tb.Lookup(pac, low); found {
		t.Error("Lookup found bounds after Clear")
	}
	if _, found := tb.Clear(pac, low); found {
		t.Error("double Clear succeeded; must fail (double-free detection)")
	}
}

func TestInsertFillsWaysInOrder(t *testing.T) {
	tb := newTestTable(t, 2)
	const pac = 0x0042
	base := uint64(0x2000_0000_0000)
	for i := 0; i < 2*BoundsPerWay; i++ {
		way, err := tb.Insert(pac, base+uint64(i)*1024, 512)
		if err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
		wantWay := i / BoundsPerWay
		if way != wantWay {
			t.Errorf("insert %d went to way %d, want %d", i, way, wantWay)
		}
	}
	if _, err := tb.Insert(pac, base+1<<20, 64); err != ErrTableFull {
		t.Errorf("17th insert err = %v, want ErrTableFull", err)
	}
}

func TestClearReleasesSlotForReuse(t *testing.T) {
	tb := newTestTable(t, 1)
	const pac = 0x1234
	base := uint64(0x2000_0000_0000)
	for i := 0; i < BoundsPerWay; i++ {
		if _, err := tb.Insert(pac, base+uint64(i)*64, 64); err != nil {
			t.Fatal(err)
		}
	}
	if _, found := tb.Clear(pac, base+3*64); !found {
		t.Fatal("clear failed")
	}
	// The freed slot must be reusable by a new chunk with the same PAC.
	if _, err := tb.Insert(pac, base+1<<16, 64); err != nil {
		t.Errorf("insert after clear failed: %v", err)
	}
	if tb.RowOccupancy(pac) != BoundsPerWay {
		t.Errorf("occupancy = %d, want %d", tb.RowOccupancy(pac), BoundsPerWay)
	}
}

func TestLookupFrom(t *testing.T) {
	tb := newTestTable(t, 4)
	const pac = 0x7777
	base := uint64(0x2000_0000_0000)
	// Fill ways 0 and 1 fully, target entry in way 2.
	for i := 0; i < 2*BoundsPerWay; i++ {
		if _, err := tb.Insert(pac, base+uint64(i)*256, 128); err != nil {
			t.Fatal(err)
		}
	}
	target := base + 1<<20
	if _, err := tb.Insert(pac, target, 4096); err != nil {
		t.Fatal(err)
	}
	if w, found := tb.LookupFrom(pac, target+100, 2); !found || w != 2 {
		t.Errorf("LookupFrom(start=2) = (%d,%v), want (2,true)", w, found)
	}
	// Starting at the wrong way still finds it by wrapping.
	if w, found := tb.LookupFrom(pac, target+100, 3); !found || w != 2 {
		t.Errorf("LookupFrom(start=3) = (%d,%v), want (2,true)", w, found)
	}
}

func TestTableIsolationBetweenPACs(t *testing.T) {
	tb := newTestTable(t, 1)
	base := uint64(0x2000_0000_0000)
	rng := rand.New(rand.NewSource(3))
	type entry struct {
		pac  uint16
		low  uint64
		size uint64
	}
	var entries []entry
	for i := 0; i < 200; i++ {
		e := entry{
			pac:  uint16(rng.Intn(1 << 16)),
			low:  base + uint64(i)*4096,
			size: uint64(16 + rng.Intn(2048)),
		}
		if _, err := tb.Insert(e.pac, e.low, e.size); err != nil {
			t.Fatal(err)
		}
		entries = append(entries, e)
	}
	for _, e := range entries {
		if _, found := tb.Lookup(e.pac, e.low+e.size/2); !found {
			t.Fatalf("entry pac=%04x lost", e.pac)
		}
	}
	if tb.Live() != len(entries) {
		t.Errorf("live = %d, want %d", tb.Live(), len(entries))
	}
}

// --- migration (Fig 10) ---

func TestMigrationRouting(t *testing.T) {
	m := mem.New()
	old, err := NewTable(m, tblBase, 1)
	if err != nil {
		t.Fatal(err)
	}
	newBase := uint64(tblBase + 0x1000_0000)
	mi, err := StartMigration(old, newBase)
	if err != nil {
		t.Fatal(err)
	}
	if mi.New.Assoc() != 2 {
		t.Fatalf("new assoc = %d, want 2", mi.New.Assoc())
	}

	// Case 2 (W >= T1): always the new table.
	if got := mi.WayAddrDuring(0x9000, 1); got != mi.New.WayAddr(0x9000, 1) {
		t.Error("out-of-way access not routed to the new table")
	}
	// Case 4 (PAC >= RowPtr, W < T1): the old table.
	if got := mi.WayAddrDuring(0x9000, 0); got != old.WayAddr(0x9000, 0) {
		t.Error("live-region access not routed to the old table")
	}
	// Migrate past PAC 0x9000; case 3 (PAC < RowPtr): the new table.
	for !mi.Done() && mi.RowPtr <= 0x9000 {
		mi.Step(4096)
	}
	if got := mi.WayAddrDuring(0x9000, 0); got != mi.New.WayAddr(0x9000, 0) {
		t.Error("migrated-region access not routed to the new table")
	}
}

func TestMigrationPreservesEntries(t *testing.T) {
	m := mem.New()
	old, err := NewTable(m, tblBase, 1)
	if err != nil {
		t.Fatal(err)
	}
	base := uint64(0x2000_0000_0000)
	rng := rand.New(rand.NewSource(9))
	type entry struct {
		pac uint16
		low uint64
	}
	var entries []entry
	for i := 0; i < 300; i++ {
		e := entry{pac: uint16(rng.Intn(1 << 16)), low: base + uint64(i)*8192}
		if _, err := old.Insert(e.pac, e.low, 4096); err != nil {
			t.Fatal(err)
		}
		entries = append(entries, e)
	}
	mi, err := StartMigration(old, tblBase+0x1000_0000)
	if err != nil {
		t.Fatal(err)
	}
	var traffic uint64
	for !mi.Done() {
		traffic += mi.Step(1000)
		// Mid-migration, every entry must still be found through the
		// routing rule.
		for _, e := range entries[:10] {
			tb := mi.TableDuring(e.pac, 0)
			if _, found := tb.Lookup(e.pac, e.low+100); !found {
				t.Fatalf("entry pac=%04x unreachable mid-migration (RowPtr=%#x)", e.pac, mi.RowPtr)
			}
		}
	}
	if traffic != 2*old.SizeBytes() {
		t.Errorf("migration traffic = %d, want %d", traffic, 2*old.SizeBytes())
	}
	for _, e := range entries {
		if _, found := mi.New.Lookup(e.pac, e.low+100); !found {
			t.Fatalf("entry pac=%04x lost after migration", e.pac)
		}
	}
	if mi.New.Live() != len(entries) || mi.Old.Live() != 0 {
		t.Errorf("live counts after migration: new=%d old=%d", mi.New.Live(), mi.Old.Live())
	}
}

func TestInsertClearProperty(t *testing.T) {
	// Random interleaving of inserts and clears; the table must agree with
	// a reference map at every point.
	tb := newTestTable(t, 4)
	rng := rand.New(rand.NewSource(11))
	type key struct {
		pac uint16
		low uint64
	}
	ref := make(map[key]uint64) // -> size
	var keys []key
	base := uint64(0x2000_0000_0000)
	next := base
	for i := 0; i < 2000; i++ {
		if len(keys) > 0 && rng.Intn(2) == 0 {
			j := rng.Intn(len(keys))
			k := keys[j]
			_, found := tb.Clear(k.pac, k.low)
			if !found {
				t.Fatalf("clear of live entry failed: %+v", k)
			}
			delete(ref, k)
			keys[j] = keys[len(keys)-1]
			keys = keys[:len(keys)-1]
		} else {
			k := key{pac: uint16(rng.Intn(256)), low: next} // few PACs -> deep rows
			size := uint64(16 * (1 + rng.Intn(64)))
			next += 1 << 13
			if _, err := tb.Insert(k.pac, k.low, size); err == ErrTableFull {
				continue // acceptable: row saturated at this associativity
			} else if err != nil {
				t.Fatal(err)
			}
			ref[k] = size
			keys = append(keys, k)
		}
	}
	for k, size := range ref {
		if _, found := tb.Lookup(k.pac, k.low+size-1); !found {
			t.Fatalf("entry %+v (size %d) missing at end", k, size)
		}
	}
}
