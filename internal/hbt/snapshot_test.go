package hbt

import (
	"reflect"
	"testing"

	"aos/internal/mem"
)

// TestTableSnapshotRestoreDeterminism: restoring a table plus its backing
// memory must reproduce straight-line behavior exactly.
func TestTableSnapshotRestoreDeterminism(t *testing.T) {
	m := mem.New()
	a, err := NewTable(m, 0x4000_0000, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		low := uint64(0x1000_0000) + uint64(i)*256
		if _, err := a.Insert(uint16(i*31), low, 128); err != nil {
			t.Fatal(err)
		}
	}
	ms := m.Snapshot()
	ts := a.Snapshot()

	type probe struct {
		way   int
		found bool
	}
	replay := func(tb *Table) []probe {
		var out []probe
		for i := 0; i < 2000; i++ {
			low := uint64(0x1000_0000) + uint64(i)*256
			w, ok := tb.Lookup(uint16(i*31), low+64)
			out = append(out, probe{w, ok})
			if i%4 == 0 {
				tb.Clear(uint16(i*31), low)
			}
			if i%8 == 0 {
				tb.Insert(uint16(i*17+3), low+0x100_0000, 64)
			}
		}
		return out
	}
	want := replay(a)
	liveAfter := a.Live()

	m2 := mem.New()
	m2.Restore(ms)
	b, _ := NewTable(m2, 0x4000_0000, 2)
	b.Restore(ts)
	got := replay(b)
	if !reflect.DeepEqual(got, want) {
		t.Fatal("restored table diverged from straight-line execution")
	}
	if b.Live() != liveAfter {
		t.Fatalf("live count diverged: %d vs %d", b.Live(), liveAfter)
	}
	// Snapshot survived the continuations: two fresh restores agree.
	c, _ := NewTable(mem.New(), 0x4000_0000, 2)
	d, _ := NewTable(mem.New(), 0x4000_0000, 2)
	c.Restore(ts)
	d.Restore(ts)
	if c.live != d.live || !reflect.DeepEqual(c.mirror, d.mirror) {
		t.Fatal("snapshot mutated by a restored table's continuation")
	}
}

// TestTableSnapshotComplete is the reflection guard: every Table field must
// be snapshotted or explicitly operational.
func TestTableSnapshotComplete(t *testing.T) {
	covered := map[string]bool{
		"base": true, "assoc": true, "logA": true, "slots": true,
		"entrySize": true, "mirror": true, "live": true,
	}
	operational := map[string]bool{
		// mem is the runtime wiring to the simulated address space; the
		// space itself is checkpointed by mem.Memory.Snapshot.
		"mem": true,
	}
	typ := reflect.TypeOf(Table{})
	for i := 0; i < typ.NumField(); i++ {
		name := typ.Field(i).Name
		if covered[name] == operational[name] {
			t.Errorf("hbt.Table field %q is not classified as snapshotted or operational; update Snapshot/Restore and this test", name)
		}
	}
	st := reflect.TypeOf(State{})
	if st.NumField() != len(covered) {
		t.Errorf("hbt.State has %d fields, covered set has %d; keep them in sync", st.NumField(), len(covered))
	}
}
