package hbt

import (
	"fmt"
	"math/bits"
	"sort"

	"aos/internal/mem"
	"aos/internal/pa"
)

// Geometry constants.
const (
	// WayBytes is the size of one way: a 64-byte cache line.
	WayBytes = 64
	// BoundsPerWay is the number of 8-byte compressed bounds per way.
	BoundsPerWay = WayBytes / 8
	// Rows is the number of rows: one per PAC value.
	Rows = pa.PACSpace
	// MaxAssoc bounds the gradual-resizing doubling.
	MaxAssoc = 64
)

// Table is a hashed bounds table instance at a fixed base and associativity.
// Resizing allocates a fresh Table (see Migration); a Table itself never
// moves.
type Table struct {
	mem   *mem.Memory
	base  uint64
	assoc int
	logA  uint // log2(assoc)
	// slots is the number of bounds entries per way: 8 with the paper's
	// 8-byte compression, 4 for the uncompressed-16-byte ablation (Fig 15).
	slots     int
	entrySize uint64

	// mirror caches each touched row's entries ([way*slots+slot] = word) so
	// the hot functional paths avoid simulated-memory page lookups. The
	// architectural copy in mem is always written through and remains the
	// source of truth for migration and for tests that inspect memory.
	mirror map[uint16][]uint64

	// live counts stored entries (for tests and occupancy stats).
	live int
}

// NewTable creates a table of the given associativity (a power of two) with
// its storage at base in m, using the paper's 8-byte compressed bounds.
// The paper's initial configuration is one way (4 MB for 16-bit PACs).
func NewTable(m *mem.Memory, base uint64, assoc int) (*Table, error) {
	return NewTableEntrySize(m, base, assoc, 8)
}

// NewTableEntrySize creates a table with an explicit bounds-entry size:
// 8 bytes (compressed, the AOS default) or 16 bytes (uncompressed lower and
// upper bounds, the Fig 15 no-compression ablation — each 64-byte way then
// holds only four bounds).
func NewTableEntrySize(m *mem.Memory, base uint64, assoc int, entryBytes int) (*Table, error) {
	if assoc < 1 || assoc > MaxAssoc || assoc&(assoc-1) != 0 {
		return nil, fmt.Errorf("hbt: invalid associativity %d", assoc)
	}
	if base%WayBytes != 0 {
		return nil, fmt.Errorf("hbt: base %#x not 64-byte aligned", base)
	}
	if entryBytes != 8 && entryBytes != 16 {
		return nil, fmt.Errorf("hbt: unsupported entry size %d", entryBytes)
	}
	return &Table{
		mem:       m,
		base:      base,
		assoc:     assoc,
		logA:      uint(bits.TrailingZeros(uint(assoc))),
		slots:     WayBytes / entryBytes,
		entrySize: uint64(entryBytes),
		mirror:    make(map[uint16][]uint64),
	}, nil
}

// SlotsPerWay returns the number of bounds entries per 64-byte way.
func (t *Table) SlotsPerWay() int { return t.slots }

// EntryBytes returns the per-entry footprint.
func (t *Table) EntryBytes() uint64 { return t.entrySize }

// Base returns BND_BASE.
func (t *Table) Base() uint64 { return t.base }

// Assoc returns BND_ASSOC.
func (t *Table) Assoc() int { return t.assoc }

// SizeBytes returns the total table footprint.
func (t *Table) SizeBytes() uint64 { return uint64(Rows) * uint64(t.assoc) * WayBytes }

// Capacity returns the total number of bounds-entry slots
// (Rows x assoc x slots-per-way); Live()/Capacity() is the table's
// load factor, the quantity the resize policy reacts to.
func (t *Table) Capacity() uint64 { return uint64(Rows) * uint64(t.assoc) * uint64(t.slots) }

// Live returns the number of stored (nonzero) entries.
func (t *Table) Live() int { return t.live }

// RowAddr implements Eq. 1+2 for way 0: BND_BASE + (PAC << (log2A + 6)).
func (t *Table) RowAddr(pac uint16) uint64 {
	return t.base + uint64(pac)<<(t.logA+6)
}

// WayAddr implements Eq. 2: the 64-byte-aligned address of way w.
func (t *Table) WayAddr(pac uint16, w int) uint64 {
	return t.RowAddr(pac) + uint64(w)<<6
}

func (t *Table) slotAddr(pac uint16, w, slot int) uint64 {
	return t.WayAddr(pac, w) + uint64(slot)*t.entrySize
}

// row returns the mirror row for pac, creating it on first touch.
func (t *Table) row(pac uint16) []uint64 {
	r := t.mirror[pac]
	if r == nil {
		r = make([]uint64, t.assoc*t.slots)
		t.mirror[pac] = r
	}
	return r
}

func (t *Table) setSlot(pac uint16, w, slot int, v uint64) {
	t.row(pac)[w*t.slots+slot] = v
	t.mem.WriteU64(t.slotAddr(pac, w, slot), v)
}

// Insert stores compressed bounds for a chunk [low, low+size) under pac.
// It scans ways in order looking for an empty (zero) slot, mirroring the
// OccChk state of the bndstr FSM. It returns the way used. If every way is
// occupied it returns ErrTableFull — the hardware raises an AOS exception
// and the OS resizes (§IV-D).
func (t *Table) Insert(pac uint16, low, size uint64) (way int, err error) {
	w, err := Compress(low, size)
	if err != nil {
		return 0, err
	}
	row := t.row(pac)
	for i, cur := range row {
		if cur == 0 {
			t.setSlot(pac, i/t.slots, i%t.slots, w)
			t.live++
			return i / t.slots, nil
		}
	}
	return 0, ErrTableFull
}

// ErrTableFull signals a bndstr insertion failure (row out of capacity).
var ErrTableFull = fmt.Errorf("hbt: row full; table resize required")

// Lookup finds the way whose entries cover addr for the given pac. It
// scans way by way (each way is one cache-line load; the eight bounds in a
// way are checked in parallel by the hardware). found=false after scanning
// all ways is a bounds-checking failure.
func (t *Table) Lookup(pac uint16, addr uint64) (way int, found bool) {
	row := t.mirror[pac]
	for i, cur := range row {
		if Covers(cur, addr) {
			return i / t.slots, true
		}
	}
	return 0, false
}

// LookupFrom behaves like Lookup but starts the scan at a given way (the
// BWB hint path). It wraps to cover all ways.
func (t *Table) LookupFrom(pac uint16, addr uint64, start int) (way int, found bool) {
	row := t.mirror[pac]
	if row == nil {
		return 0, false
	}
	for i := 0; i < t.assoc; i++ {
		wi := (start + i) % t.assoc
		for s := 0; s < t.slots; s++ {
			if Covers(row[wi*t.slots+s], addr) {
				return wi, true
			}
		}
	}
	return 0, false
}

// Clear zeroes the entry whose stored lower bound matches base (bndclr).
// found=false is a bounds-clear failure: double free or free() of an
// invalid address.
func (t *Table) Clear(pac uint16, base uint64) (way int, found bool) {
	row := t.mirror[pac]
	for i, cur := range row {
		if MatchesBase(cur, base) {
			t.setSlot(pac, i/t.slots, i%t.slots, 0)
			t.live--
			return i / t.slots, true
		}
	}
	return 0, false
}

// --- way-granular operations used by the MCQ finite state machines, which
// load one 64-byte way per state transition and examine its eight bounds in
// parallel ---

// ReadWay returns the bounds entries stored in one way.
func (t *Table) ReadWay(pac uint16, w int) []uint64 {
	out := make([]uint64, t.slots)
	for s := 0; s < t.slots; s++ {
		out[s] = t.mem.ReadU64(t.slotAddr(pac, w, s))
	}
	return out
}

// FindEmptySlot performs bndstr's occupancy check on one way: the index of
// the first zero slot.
func (t *Table) FindEmptySlot(pac uint16, w int) (slot int, ok bool) {
	for s := 0; s < t.slots; s++ {
		if t.mem.ReadU64(t.slotAddr(pac, w, s)) == 0 {
			return s, true
		}
	}
	return 0, false
}

// FindCovering performs the parallel bounds check on one way: whether any
// of the eight entries covers addr.
func (t *Table) FindCovering(pac uint16, w int, addr uint64) bool {
	for s := 0; s < t.slots; s++ {
		if Covers(t.mem.ReadU64(t.slotAddr(pac, w, s)), addr) {
			return true
		}
	}
	return false
}

// FindBase performs bndclr's occupancy check on one way: the slot whose
// stored lower bound equals base.
func (t *Table) FindBase(pac uint16, w int, base uint64) (slot int, ok bool) {
	for s := 0; s < t.slots; s++ {
		if MatchesBase(t.mem.ReadU64(t.slotAddr(pac, w, s)), base) {
			return s, true
		}
	}
	return 0, false
}

// WriteSlot stores a compressed entry (or zero, for bndclr) into one slot,
// keeping the live count consistent.
func (t *Table) WriteSlot(pac uint16, w, slot int, v uint64) {
	old := t.row(pac)[w*t.slots+slot]
	if old == 0 && v != 0 {
		t.live++
	} else if old != 0 && v == 0 {
		t.live--
	}
	t.setSlot(pac, w, slot, v)
}

// RowOccupancy returns the number of live entries in a row (for stats and
// tests).
func (t *Table) RowOccupancy(pac uint16) int {
	n := 0
	for wi := 0; wi < t.assoc; wi++ {
		for s := 0; s < t.slots; s++ {
			if t.mem.ReadU64(t.slotAddr(pac, wi, s)) != 0 {
				n++
			}
		}
	}
	return n
}

// Migration models the non-blocking gradual resize of Fig 10: a new table
// with twice the associativity is allocated, and a micro-architectural
// table manager migrates rows from old to new while the program keeps
// running. RowPtr splits the old table into a migrated region
// (PAC < RowPtr) and a live region.
type Migration struct {
	Old, New *Table
	// RowPtr is the next old-table row to migrate; rows below it have been
	// migrated to the new table.
	RowPtr uint32
}

// StartMigration allocates the successor table (double associativity) at
// newBase and returns the in-progress migration.
func StartMigration(old *Table, newBase uint64) (*Migration, error) {
	nt, err := NewTableEntrySize(old.mem, newBase, old.assoc*2, int(old.entrySize))
	if err != nil {
		return nil, err
	}
	return &Migration{Old: old, New: nt}, nil
}

// Done reports whether every row has been migrated.
func (mi *Migration) Done() bool { return mi.RowPtr >= Rows }

// Step migrates up to n rows and returns the number of bytes copied (the
// memory traffic the migration generated).
func (mi *Migration) Step(n int) uint64 {
	if n <= 0 || mi.Done() {
		return 0
	}
	end := mi.RowPtr + uint32(n)
	if end > Rows {
		end = Rows
	}
	sz := uint64(mi.Old.assoc) * WayBytes
	// The hardware migrator reads every row in the window, so the traffic
	// charge is per row regardless of occupancy.
	traffic := uint64(end-mi.RowPtr) * 2 * sz
	// A row with no mirror entry was never written through setSlot, and
	// table regions are never reused (the kernel bumps a fresh base per
	// generation), so both its old-row and new-row bytes are untouched
	// zeros: copying and clearing them are architectural no-ops. Only the
	// occupied rows — the mirror's keys — need moving, in sorted order so a
	// window migrates identically however it is stepped.
	rows := make([]uint16, 0, len(mi.Old.mirror))
	//aoslint:allow mapiter — keys are filtered into a slice and sorted below
	for pac := range mi.Old.mirror {
		if uint32(pac) >= mi.RowPtr && uint32(pac) < end {
			rows = append(rows, pac)
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i] < rows[j] })
	for _, pac := range rows {
		oldRow := mi.Old.mirror[pac]
		src := mi.Old.RowAddr(pac)
		dst := mi.New.RowAddr(pac)
		mi.Old.mem.Copy(dst, src, sz)
		// Move the mirror row and recount live entries transferred.
		moved := 0
		newRow := mi.New.row(pac)
		copy(newRow, oldRow)
		for _, v := range oldRow {
			if v != 0 {
				moved++
			}
		}
		delete(mi.Old.mirror, pac)
		mi.New.live += moved
		mi.Old.live -= moved
		mi.Old.mem.Zero(src, sz)
	}
	mi.RowPtr = end
	return traffic
}

// WayAddrDuring routes an access issued during migration per Fig 10:
// accesses to out-of-way slots of the old table (w >= oldAssoc) or to the
// migrated region (PAC < RowPtr) go to the new table; everything else still
// hits the old table.
func (mi *Migration) WayAddrDuring(pac uint16, w int) uint64 {
	if w >= mi.Old.assoc || uint32(pac) < mi.RowPtr {
		return mi.New.WayAddr(pac, w)
	}
	return mi.Old.WayAddr(pac, w)
}

// TableDuring returns which table currently owns the row/way combination,
// mirroring WayAddrDuring.
func (mi *Migration) TableDuring(pac uint16, w int) *Table {
	if w >= mi.Old.assoc || uint32(pac) < mi.RowPtr {
		return mi.New
	}
	return mi.Old
}
