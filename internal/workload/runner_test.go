package workload

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"aos/internal/core"
	"aos/internal/instrument"
	"aos/internal/isa"
)

type streamSink struct{ insts []isa.Inst }

func (r *streamSink) Emit(in *isa.Inst)      { r.insts = append(r.insts, *in) }
func (r *streamSink) EmitBatch(b []isa.Inst) { r.insts = append(r.insts, b...) }

func newRecordedMachine(t *testing.T, scheme instrument.Scheme) (*core.Machine, *streamSink) {
	t.Helper()
	m, err := core.New(core.Config{Scheme: scheme})
	if err != nil {
		t.Fatal(err)
	}
	rec := &streamSink{}
	m.SetSink(rec)
	return m, rec
}

// TestRunnerPiecewiseMatchesRunCtx: driving a Runner in several RunTo slices
// must produce the byte-identical instruction stream of a one-shot RunCtx —
// the property every checkpoint boundary relies on.
func TestRunnerPiecewiseMatchesRunCtx(t *testing.T) {
	p, _ := ByName("mcf")
	p = p.Clone()
	p.Instructions = 60_000
	total := p.Instructions

	mA, recA := newRecordedMachine(t, instrument.AOS)
	if err := p.RunCtx(context.Background(), mA, 7, 0, nil); err != nil {
		t.Fatal(err)
	}

	mC, recC := newRecordedMachine(t, instrument.AOS)
	rc, err := NewRunner(p, mC, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, until := range []uint64{13_000, 13_001, 40_000, total} {
		if err := rc.RunTo(context.Background(), until, total); err != nil {
			t.Fatal(err)
		}
	}
	mC.Flush()

	if len(recA.insts) == 0 {
		t.Fatal("one-shot run produced no instructions")
	}
	if !reflect.DeepEqual(recA.insts, recC.insts) {
		t.Fatalf("sliced RunTo diverged from one-shot RunCtx: %d vs %d insts", len(recC.insts), len(recA.insts))
	}
	if rc.Produced() < total {
		t.Fatalf("sliced runner stopped at %d, want >= %d", rc.Produced(), total)
	}
}

// TestRunnerStateResumeDeterminism: checkpoint a (machine, runner) pair at an
// arbitrary boundary, resume both into fresh objects, and require the
// continuation's instruction stream and final counts to be byte-identical to
// the original running straight through.
func TestRunnerStateResumeDeterminism(t *testing.T) {
	for _, scheme := range []instrument.Scheme{instrument.AOS, instrument.Watchdog, instrument.MTE} {
		p, _ := ByName("hmmer")
		const half, total = 30_000, 60_000

		m, rec := newRecordedMachine(t, scheme)
		r, err := NewRunner(p, m, 11)
		if err != nil {
			t.Fatal(err)
		}
		if err := r.RunTo(context.Background(), half, total); err != nil {
			t.Fatal(err)
		}
		msnap := m.Snapshot()
		rsnap := r.State()
		prefix := len(rec.insts)
		if err := r.RunTo(context.Background(), total, total); err != nil {
			t.Fatal(err)
		}
		m.Flush()
		wantTail := rec.insts[prefix:]
		wantCounts := m.Counts()

		for trial := 0; trial < 2; trial++ {
			m2, rec2 := newRecordedMachine(t, scheme)
			if err := m2.Restore(msnap); err != nil {
				t.Fatal(err)
			}
			r2, err := NewRunnerFromState(p, m2, rsnap)
			if err != nil {
				t.Fatal(err)
			}
			if r2.Produced() != rsnap.Produced() {
				t.Fatalf("%v: resumed runner at %d, checkpoint at %d", scheme, r2.Produced(), rsnap.Produced())
			}
			if err := r2.RunTo(context.Background(), total, total); err != nil {
				t.Fatal(err)
			}
			m2.Flush()
			if !reflect.DeepEqual(rec2.insts, wantTail) {
				t.Fatalf("%v trial %d: resumed stream diverged (%d vs %d insts)",
					scheme, trial, len(rec2.insts), len(wantTail))
			}
			got := m2.Counts()
			// The resumed machine's counts continue from the checkpoint, so
			// they must equal the straight-through totals exactly.
			if !reflect.DeepEqual(got, wantCounts) {
				t.Fatalf("%v trial %d: counts diverged:\n got %+v\nwant %+v", scheme, trial, got, wantCounts)
			}
		}
	}
}

// TestRunnerStateWrongProfile: resuming under a different profile must fail.
func TestRunnerStateWrongProfile(t *testing.T) {
	p, _ := ByName("mcf")
	m, _ := newRecordedMachine(t, instrument.Baseline)
	r, err := NewRunner(p, m, 3)
	if err != nil {
		t.Fatal(err)
	}
	other, _ := ByName("gobmk")
	if _, err := NewRunnerFromState(other, m, r.State()); err == nil {
		t.Fatal("NewRunnerFromState accepted a state from a different profile")
	}
}

// TestRNGCaptureFastPath pins the math/rand layout assumption: on this
// toolchain the reflection capture must take the fast path, and both restore
// paths (direct state write and draw burning) must reproduce the exact
// stream the original source continues to produce.
func TestRNGCaptureFastPath(t *testing.T) {
	src := newCountingSource(42)
	r := rand.New(src)
	for i := 0; i < 12_345; i++ {
		r.Float64()
	}
	st := captureRNG(src)
	if !st.fast {
		t.Fatal("captureRNG did not take the fast path; math/rand layout changed — restore falls back to O(draws) burning")
	}
	if st.draws != src.draws {
		t.Fatalf("captured draws %d, source drew %d", st.draws, src.draws)
	}

	fast := restoreRNG(42, st)
	slow := st
	slow.fast = false
	burned := restoreRNG(42, slow)
	if fast.draws != st.draws || burned.draws != st.draws {
		t.Fatalf("restored draw counts %d/%d, want %d", fast.draws, burned.draws, st.draws)
	}
	for i := 0; i < 2_000; i++ {
		want := src.Uint64()
		if got := fast.Uint64(); got != want {
			t.Fatalf("draw %d: fast-path restore diverged: %x != %x", i, got, want)
		}
		if got := burned.Uint64(); got != want {
			t.Fatalf("draw %d: burn restore diverged: %x != %x", i, got, want)
		}
	}
}

// TestRunnerStateComplete is the reflection guard: every Runner field must be
// classified as checkpointed (appearing in RunnerState, possibly under a
// different representation) or explicitly derived/operational.
func TestRunnerStateComplete(t *testing.T) {
	covered := map[string]bool{
		// p is captured as the profile name; src as the captured RNG state.
		"p": true, "src": true,
		"seed": true, "chunks": true, "bias": true,
		"cur": true, "curOff": true, "remaining": true,
		"produced": true, "sinceCall": true, "sinceAlloc": true,
		"nextCtxCheck": true,
	}
	operational := map[string]bool{
		// m is runtime wiring; rng is a view over src; the rest are
		// draw-free derivations recomputed by deriveParams on every
		// construction path.
		"m": true, "rng": true,
		"chainFrac": true, "memFrac": true, "storeShare": true,
		"burstLen": true, "stride": true, "callGap": true, "allocGap": true,
	}
	typ := reflect.TypeOf(Runner{})
	for i := 0; i < typ.NumField(); i++ {
		name := typ.Field(i).Name
		if covered[name] == operational[name] {
			t.Errorf("workload.Runner field %q is not classified as checkpointed or derived; update State/NewRunnerFromState and this test", name)
		}
	}
	st := reflect.TypeOf(RunnerState{})
	if st.NumField() != len(covered) {
		t.Errorf("RunnerState has %d fields, covered set has %d; keep them in sync", st.NumField(), len(covered))
	}
}
