package workload

import (
	"math/rand"
	"reflect"
	"unsafe"
)

// countingSource wraps the runner's PRNG source and counts draws, so a
// checkpoint can record "seed + N draws" — enough to reconstruct the exact
// generator state on any restore path. The wrapper is draw-transparent:
// rand.Rand sees a Source64 and pulls the same values it would from the
// bare source, so streams are bit-identical to pre-checkpoint code.
type countingSource struct {
	src   rand.Source64
	draws uint64
}

func newCountingSource(seed int64) *countingSource {
	return &countingSource{src: rand.NewSource(seed).(rand.Source64)}
}

func (c *countingSource) Int63() int64 {
	c.draws++
	return c.src.Int63()
}

func (c *countingSource) Uint64() uint64 {
	c.draws++
	return c.src.Uint64()
}

func (c *countingSource) Seed(s int64) {
	c.src.Seed(s)
	c.draws = 0
}

// rngVecLen is math/rand's additive-generator vector length (stable since
// Go 1.0; pinned by TestRNGCaptureFastPath against the running toolchain).
const rngVecLen = 607

// rngState is a checkpoint of the PRNG: always the draw count (sufficient
// to re-derive the state from the seed by burning draws), plus — when the
// runtime's generator has the expected layout — a direct copy of the
// additive generator's internals, making restore O(1) instead of O(draws).
type rngState struct {
	draws uint64
	fast  bool
	tap   int
	feed  int
	vec   [rngVecLen]int64
}

// captureRNG snapshots the source state. The fast path reads math/rand's
// unexported rngSource{tap, feed int; vec [607]int64} via reflection —
// reads of unexported fields are legal, only Interface() is not — and
// degrades to count-only if the layout ever changes.
func captureRNG(c *countingSource) rngState {
	st := rngState{draws: c.draws}
	v := reflect.ValueOf(c.src)
	if v.Kind() != reflect.Pointer || v.Elem().Kind() != reflect.Struct {
		return st
	}
	e := v.Elem()
	tap := e.FieldByName("tap")
	feed := e.FieldByName("feed")
	vec := e.FieldByName("vec")
	if !tap.IsValid() || !feed.IsValid() || !vec.IsValid() ||
		tap.Kind() != reflect.Int || feed.Kind() != reflect.Int ||
		vec.Kind() != reflect.Array || vec.Len() != rngVecLen ||
		vec.Type().Elem().Kind() != reflect.Int64 {
		return st
	}
	st.fast = true
	st.tap = int(tap.Int())
	st.feed = int(feed.Int())
	for i := 0; i < rngVecLen; i++ {
		st.vec[i] = vec.Index(i).Int()
	}
	return st
}

// restoreRNG builds a source whose state matches the capture, given the
// original seed. With a fast capture it writes the generator internals
// directly (via unsafe, since the fields are unexported); otherwise it
// replays the recorded number of draws — exact but O(draws).
func restoreRNG(seed int64, st rngState) *countingSource {
	c := newCountingSource(seed)
	if st.fast && writeRNG(c.src, st) {
		c.draws = st.draws
		return c
	}
	for i := uint64(0); i < st.draws; i++ {
		// Int63 and Uint64 advance the additive generator identically
		// (Int63 is Uint64 masked), so burning with either replays the
		// stream position exactly.
		c.src.Uint64()
	}
	c.draws = st.draws
	return c
}

// writeRNG pokes a fast capture into a fresh source; false if the layout
// does not match (the caller then falls back to burning draws).
func writeRNG(src rand.Source64, st rngState) bool {
	v := reflect.ValueOf(src)
	if v.Kind() != reflect.Pointer || v.Elem().Kind() != reflect.Struct {
		return false
	}
	e := v.Elem()
	tap := e.FieldByName("tap")
	feed := e.FieldByName("feed")
	vec := e.FieldByName("vec")
	if !tap.IsValid() || !feed.IsValid() || !vec.IsValid() ||
		tap.Kind() != reflect.Int || feed.Kind() != reflect.Int ||
		vec.Kind() != reflect.Array || vec.Len() != rngVecLen ||
		vec.Type().Elem().Kind() != reflect.Int64 || !tap.CanAddr() {
		return false
	}
	*(*int)(unsafe.Pointer(tap.UnsafeAddr())) = st.tap
	*(*int)(unsafe.Pointer(feed.UnsafeAddr())) = st.feed
	dst := (*[rngVecLen]int64)(unsafe.Pointer(vec.UnsafeAddr()))
	copy(dst[:], st.vec[:])
	return true
}
