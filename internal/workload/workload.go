// Package workload defines the benchmark programs the reproduction runs:
// synthetic equivalents of the 16 SPEC CPU 2006 workloads the paper
// evaluates (§VIII), the six real-world programs of Table III, and the
// microbenchmarks (§VI). Each SPEC profile is parameterized by published
// per-benchmark characteristics — the Table II memory-usage profile, the
// Fig 16 signed-access fraction, memory intensity and footprint, call
// frequency, and branch behaviour — so that per-benchmark results keep the
// paper's shape even though the instruction streams are synthetic.
package workload

import (
	"context"
	"fmt"
	"math/rand"

	"aos/internal/core"
)

// Profile describes one benchmark.
type Profile struct {
	Name string

	// Full-run memory profile, as the paper's Table II/III reports it
	// (Valgrind --trace-malloc over the complete execution).
	TableAllocs  uint64
	TableFrees   uint64
	TableMaxLive uint64
	// TableNote flags rows whose paper numbers need commentary.
	TableNote string

	// --- scaled timing-run parameters ---

	// Instructions is the program-instruction budget for timing runs
	// (instrumentation added by a scheme is not counted, matching §VIII).
	Instructions uint64

	// Instruction mix (fractions of the program instruction stream).
	LoadFrac, StoreFrac float64
	BranchFrac          float64
	FPFrac, MulFrac     float64

	// HeapFrac is the fraction of data accesses that go through heap
	// pointers (signed under AOS) — the Fig 16 driver.
	HeapFrac float64
	// PointerValueFrac is the fraction of heap accesses whose value is
	// itself a pointer (drives Watchdog shadow traffic and PA on-load
	// authentication).
	PointerValueFrac float64
	// ChaseFrac is the fraction of accesses whose address depends on a
	// previous load (pointer chasing, limits memory-level parallelism).
	ChaseFrac float64

	// CallsPer1K is function call+return pairs per 1000 instructions
	// (the PA return-address-signing overhead driver; hmmer and omnetpp
	// are the paper's outliers).
	CallsPer1K float64

	// Heap shape for the scaled run.
	LiveChunks    int       // steady-state live allocations
	ChunkSize     [2]uint64 // min and max allocation size
	HotChunks     int       // chunks receiving most accesses (locality)
	HotFrac       float64   // fraction of heap accesses to hot chunks
	AllocPer1K    float64   // malloc/free pairs per 1000 instructions
	GlobalBytes   uint64    // unsigned global/stack working set
	CodeFootprint uint64    // synthetic static code size

	// Branch behaviour.
	BranchSites   int
	BranchEntropy float64 // 0 = fully biased/predictable, 1 = coin flips

	// ChainFrac is the fraction of compute operations that extend a serial
	// dependency chain (limits ILP; default 0.12).
	ChainFrac float64

	// Access-pattern shape: heap accesses occur in strided bursts (loop
	// bodies walking arrays/structs), which is what gives real programs
	// their cache and BWB locality. BurstLen is the mean run length;
	// Stride the byte step between accesses in a run. Zero values default
	// to 16 and 8.
	BurstLen int
	Stride   uint64
}

// Clone returns an independent copy of the profile, safe to mutate (e.g.
// an Instructions override) while other goroutines run the original.
// Profile holds only value-typed fields (ChunkSize is an array, not a
// slice), so a shallow copy IS a deep copy; TestProfileCloneIsDeep guards
// that invariant with reflection so a future slice/map/pointer field
// cannot silently reintroduce sharing between concurrent runs.
func (p *Profile) Clone() *Profile {
	q := *p
	return &q
}

// Validate sanity-checks a profile.
func (p *Profile) Validate() error {
	frac := p.LoadFrac + p.StoreFrac + p.BranchFrac + p.FPFrac + p.MulFrac
	if frac > 1.0 {
		return fmt.Errorf("workload %s: op fractions sum to %.2f > 1", p.Name, frac)
	}
	if p.LiveChunks <= 0 || p.Instructions == 0 {
		return fmt.Errorf("workload %s: empty shape", p.Name)
	}
	if p.ChunkSize[0] == 0 || p.ChunkSize[1] < p.ChunkSize[0] {
		return fmt.Errorf("workload %s: bad chunk sizes %v", p.Name, p.ChunkSize)
	}
	return nil
}

// Run executes the profile's scaled synthetic program on m, emitting about
// p.Instructions program instructions (instrumentation excluded). The
// stream is deterministic for a given seed.
func (p *Profile) Run(m *core.Machine, seed int64) error {
	return p.RunWarm(m, seed, 0, nil)
}

// RunWarm is Run with warmup-then-measure support: after the heap is built
// and warmupInsts program instructions have executed, onWarm is invoked
// (typically to reset the timing core's statistics) and the run continues
// for the profile's full instruction budget. This mirrors the paper's
// methodology of measuring a window of a much longer execution, removing
// compulsory-miss noise from short scaled runs.
//
// RunWarm never mutates the profile, so many goroutines may run the same
// *Profile concurrently (each run's state — RNG, chunk list, branch
// biases — is local to the call).
func (p *Profile) RunWarm(m *core.Machine, seed int64, warmupInsts uint64, onWarm func()) error {
	return p.RunCtx(context.Background(), m, seed, warmupInsts, onWarm)
}

// ctxCheckEvery is how many program instructions may elapse between
// cancellation checks in RunCtx: frequent enough that a timed-out or
// client-abandoned job stops within microseconds of real time, rare
// enough to stay invisible in the emission hot loop.
const ctxCheckEvery = 8192

// RunCtx is RunWarm with cooperative cancellation: the emission loop polls
// ctx every ctxCheckEvery program instructions and returns ctx's error
// (wrapped with the profile identity and progress) once it is done. A run
// aborted this way leaves the machine in a consistent but unfinished
// state; callers must discard, not report, its statistics.
func (p *Profile) RunCtx(ctx context.Context, m *core.Machine, seed int64, warmupInsts uint64, onWarm func()) error {
	if err := p.Validate(); err != nil {
		return err
	}
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("workload %s: canceled before start: %w", p.Name, err)
	}
	// With batched emission the sink must not be left holding back buffered
	// instructions on any exit path (the caller finalizes the timing core
	// or a protocol checker right after we return).
	defer m.Flush()
	r, err := NewRunner(p, m, seed)
	if err != nil {
		return err
	}
	target := p.Instructions + warmupInsts
	if onWarm == nil {
		return r.RunTo(ctx, target, target)
	}
	if err := r.RunTo(ctx, warmupInsts, target); err != nil {
		return err
	}
	// The warmup boundary is observed sink-side (timing-core stats
	// reset): the core must have consumed every pre-boundary instruction
	// before the callback runs, exactly as in scalar emission.
	m.Flush()
	onWarm()
	return r.RunTo(ctx, target, target)
}

// stillLive reports whether c is still in the live set (cheap check: the
// burst target is invalidated on free, so this only guards warm-up edges).
func stillLive(chunks []core.Ptr, c core.Ptr) bool {
	return c.Raw != 0
}

func gap(per1K float64) uint64 {
	if per1K <= 0 {
		return 0
	}
	return uint64(1000 / per1K)
}

func depOf(rng *rand.Rand, chase, chain float64) core.Dep {
	r := rng.Float64()
	switch {
	case r < chase:
		return core.DepChase
	case r < chase+chain:
		return core.DepChain
	default:
		return core.DepFree
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
