package workload

// SPEC returns the 16 SPEC CPU 2006 profiles the paper evaluates, in the
// paper's presentation order. TableAllocs/TableFrees/TableMaxLive carry the
// published Table II numbers verbatim; the scaled-run parameters encode
// each benchmark's published character: memory intensity, signed-access
// share (Fig 16), allocation rate, working-set size, call frequency, and
// branch behaviour.
func SPEC() []*Profile {
	base := func(name string) *Profile {
		return &Profile{
			Name:             name,
			Instructions:     1_000_000,
			LoadFrac:         0.22,
			StoreFrac:        0.10,
			BranchFrac:       0.12,
			FPFrac:           0.05,
			MulFrac:          0.03,
			HeapFrac:         0.5,
			PointerValueFrac: 0.15,
			ChaseFrac:        0.10,
			CallsPer1K:       4,
			LiveChunks:       256,
			ChunkSize:        [2]uint64{64, 1024},
			HotChunks:        96,
			HotFrac:          0.95,
			AllocPer1K:       0.05,
			GlobalBytes:      64 << 10,
			CodeFootprint:    24 << 10,
			BranchSites:      64,
			BranchEntropy:    0.10,
			BurstLen:         48,
		}
	}

	bzip2 := base("bzip2")
	bzip2.TableAllocs, bzip2.TableFrees, bzip2.TableMaxLive = 29, 25, 10
	bzip2.HeapFrac = 0.85
	bzip2.LiveChunks = 10
	bzip2.ChunkSize = [2]uint64{256 << 10, 1 << 20} // few large buffers
	bzip2.HotChunks = 4
	bzip2.AllocPer1K = 0
	bzip2.LoadFrac, bzip2.StoreFrac = 0.26, 0.12
	bzip2.BranchEntropy = 0.22    // compression branches are data-dependent
	bzip2.PointerValueFrac = 0.05 // byte buffers, not pointer structures

	gcc := base("gcc")
	gcc.TableAllocs, gcc.TableFrees, gcc.TableMaxLive = 1846825, 1829255, 81825
	gcc.HeapFrac = 0.88
	gcc.LiveChunks = 30000 // large scattered footprint: bounds thrash the L1-B and pollute the L2
	gcc.ChunkSize = [2]uint64{64, 448}
	gcc.HotChunks = 200
	gcc.HotFrac = 0.25 // scattered accesses across the whole heap
	gcc.AllocPer1K = 14.0
	gcc.BurstLen = 8
	gcc.PointerValueFrac = 0.35 // tree/RTL pointers everywhere
	gcc.ChaseFrac = 0.25
	gcc.LoadFrac, gcc.StoreFrac = 0.26, 0.13
	gcc.CallsPer1K = 3
	gcc.GlobalBytes = 512 << 10
	gcc.CodeFootprint = 256 << 10 // big code: front-end pressure
	gcc.BranchSites = 512
	gcc.BranchEntropy = 0.18

	mcf := base("mcf")
	mcf.TableAllocs, mcf.TableFrees, mcf.TableMaxLive = 8, 8, 6
	mcf.HeapFrac = 0.75
	mcf.LiveChunks = 6
	mcf.ChunkSize = [2]uint64{8 << 20, 32 << 20} // a few huge arrays
	mcf.HotChunks = 2
	mcf.HotFrac = 0.5
	mcf.AllocPer1K = 0
	mcf.ChaseFrac = 0.45                     // network-simplex pointer chasing
	mcf.LoadFrac, mcf.StoreFrac = 0.32, 0.10 // memory-bound
	mcf.BranchEntropy = 0.25
	mcf.PointerValueFrac = 0.30 // arc/node graph

	milc := base("milc")
	milc.TableAllocs, milc.TableFrees, milc.TableMaxLive = 6523, 6474, 61
	milc.HeapFrac = 0.55
	milc.LiveChunks = 61
	milc.ChunkSize = [2]uint64{64 << 10, 512 << 10}
	milc.HotChunks = 8
	milc.AllocPer1K = 0.02
	milc.FPFrac = 0.25 // lattice QCD floating point
	milc.LoadFrac, milc.StoreFrac = 0.28, 0.12
	milc.BranchFrac = 0.04
	milc.BranchEntropy = 0.02
	milc.PointerValueFrac = 0.02 // FP lattice data

	namd := base("namd")
	namd.TableAllocs, namd.TableFrees, namd.TableMaxLive = 1328, 1326, 1316
	namd.HeapFrac = 0.45
	namd.LiveChunks = 1316
	namd.ChunkSize = [2]uint64{512, 8192}
	namd.HotChunks = 12
	namd.HotFrac = 0.99
	namd.AllocPer1K = 0
	namd.FPFrac = 0.30
	namd.LoadFrac, namd.StoreFrac = 0.25, 0.09
	namd.BranchFrac = 0.05
	namd.BranchEntropy = 0.02
	namd.PointerValueFrac = 0.02
	namd.ChainFrac = 0.40 // serial force-field FP chains

	gobmk := base("gobmk")
	gobmk.TableAllocs, gobmk.TableFrees, gobmk.TableMaxLive = 137369, 137358, 1021
	gobmk.HeapFrac = 0.30
	gobmk.LiveChunks = 1021
	gobmk.ChunkSize = [2]uint64{64, 2048}
	gobmk.HotFrac = 0.96
	gobmk.AllocPer1K = 0.3
	gobmk.GlobalBytes = 1 << 20 // board state is mostly global
	gobmk.LoadFrac, gobmk.StoreFrac = 0.22, 0.11
	gobmk.CallsPer1K = 4
	gobmk.BranchFrac = 0.16
	gobmk.BranchSites = 1024
	gobmk.BranchEntropy = 0.30 // game-tree branches mispredict

	soplex := base("soplex")
	soplex.TableAllocs, soplex.TableFrees, soplex.TableMaxLive = 98955, 34025, 140
	soplex.TableNote = "paper's alloc-dealloc delta exceeds max active; bulk releases at exit are uncounted by paired-free accounting"
	soplex.HeapFrac = 0.60
	soplex.LiveChunks = 140
	soplex.ChunkSize = [2]uint64{4096, 128 << 10}
	soplex.HotChunks = 16
	soplex.AllocPer1K = 0.4
	soplex.FPFrac = 0.20
	soplex.LoadFrac, soplex.StoreFrac = 0.28, 0.10
	soplex.BranchEntropy = 0.12
	soplex.PointerValueFrac = 0.10

	povray := base("povray")
	povray.TableAllocs, povray.TableFrees, povray.TableMaxLive = 2461247, 2461107, 11667
	povray.HeapFrac = 0.50
	povray.LiveChunks = 2500
	povray.ChunkSize = [2]uint64{32, 512}
	povray.HotChunks = 180
	povray.HotFrac = 0.85
	povray.AllocPer1K = 4.0 // allocation-intensive ray tracing
	povray.FPFrac = 0.22
	povray.CallsPer1K = 5
	povray.PointerValueFrac = 0.3
	povray.LoadFrac, povray.StoreFrac = 0.24, 0.11
	povray.BranchEntropy = 0.15

	hmmer := base("hmmer")
	hmmer.TableAllocs, hmmer.TableFrees, hmmer.TableMaxLive = 1474128, 1474128, 1450
	hmmer.HeapFrac = 0.995 // >99% of accesses are signed (Fig 16)
	hmmer.LiveChunks = 1450
	hmmer.ChunkSize = [2]uint64{512, 4096}
	hmmer.HotChunks = 24
	hmmer.HotFrac = 0.97
	hmmer.AllocPer1K = 0.5
	hmmer.BurstLen = 64
	hmmer.ChaseFrac = 0.02
	hmmer.ChainFrac = 0.30
	hmmer.LoadFrac, hmmer.StoreFrac = 0.19, 0.075 // the most access-dense workload
	hmmer.CallsPer1K = 12                         // frequent calls: the PA overhead outlier
	hmmer.BranchFrac = 0.08
	hmmer.BranchEntropy = 0.04
	hmmer.PointerValueFrac = 0.05

	sjeng := base("sjeng")
	sjeng.TableAllocs, sjeng.TableFrees, sjeng.TableMaxLive = 6, 2, 6
	sjeng.HeapFrac = 0.25
	sjeng.LiveChunks = 6
	sjeng.ChunkSize = [2]uint64{1 << 20, 8 << 20} // hash tables
	sjeng.HotChunks = 2
	sjeng.AllocPer1K = 0
	sjeng.GlobalBytes = 512 << 10
	sjeng.BranchFrac = 0.16
	sjeng.BranchSites = 512
	sjeng.BranchEntropy = 0.35 // chess search mispredicts
	sjeng.CallsPer1K = 5
	sjeng.PointerValueFrac = 0.10

	libquantum := base("libquantum")
	libquantum.TableAllocs, libquantum.TableFrees, libquantum.TableMaxLive = 180, 180, 5
	libquantum.HeapFrac = 0.70
	libquantum.LiveChunks = 5
	libquantum.ChunkSize = [2]uint64{4 << 20, 16 << 20} // one big qubit register
	libquantum.HotChunks = 1
	libquantum.HotFrac = 0.95
	libquantum.AllocPer1K = 0
	libquantum.LoadFrac, libquantum.StoreFrac = 0.30, 0.14 // streaming
	libquantum.BranchFrac = 0.14
	libquantum.BranchEntropy = 0.03
	libquantum.PointerValueFrac = 0.02

	h264ref := base("h264ref")
	h264ref.TableAllocs, h264ref.TableFrees, h264ref.TableMaxLive = 38275, 38273, 13857
	h264ref.HeapFrac = 0.50
	h264ref.LiveChunks = 1500
	h264ref.ChunkSize = [2]uint64{256, 8192}
	h264ref.HotChunks = 12
	h264ref.HotFrac = 0.96
	h264ref.AllocPer1K = 0.1
	h264ref.LoadFrac, h264ref.StoreFrac = 0.28, 0.14
	h264ref.MulFrac = 0.08
	h264ref.CallsPer1K = 4
	h264ref.BranchEntropy = 0.12
	h264ref.PointerValueFrac = 0.10

	lbm := base("lbm")
	lbm.TableAllocs, lbm.TableFrees, lbm.TableMaxLive = 7, 7, 5
	lbm.HeapFrac = 0.90 // most accesses signed, but the kernel is FP-bound
	lbm.LiveChunks = 5
	lbm.ChunkSize = [2]uint64{16 << 20, 32 << 20}
	lbm.HotChunks = 2
	lbm.AllocPer1K = 0
	lbm.LoadFrac, lbm.StoreFrac = 0.16, 0.08 // "not memory-intensive" (§IX-A)
	lbm.FPFrac = 0.35
	lbm.BranchFrac = 0.03
	lbm.BranchEntropy = 0.01
	lbm.PointerValueFrac = 0.02 // FP grids

	omnetpp := base("omnetpp")
	omnetpp.TableAllocs, omnetpp.TableFrees, omnetpp.TableMaxLive = 21244416, 21244416, 1993737
	omnetpp.HeapFrac = 0.60
	omnetpp.LiveChunks = 20000 // enormous live set (scaled)
	omnetpp.ChunkSize = [2]uint64{48, 512}
	omnetpp.HotChunks = 180
	omnetpp.HotFrac = 0.7
	omnetpp.AllocPer1K = 6.0 // the most allocation-intensive workload
	omnetpp.PointerValueFrac = 0.45
	omnetpp.ChaseFrac = 0.35 // event-queue pointer chasing
	omnetpp.LoadFrac, omnetpp.StoreFrac = 0.26, 0.13
	omnetpp.CallsPer1K = 35 // the other PA outlier
	omnetpp.BranchEntropy = 0.20

	astar := base("astar")
	astar.TableAllocs, astar.TableFrees, astar.TableMaxLive = 1116621, 1116621, 190984
	astar.HeapFrac = 0.55
	astar.LiveChunks = 1500
	astar.ChunkSize = [2]uint64{48, 256}
	astar.HotChunks = 300
	astar.HotFrac = 0.97
	astar.AllocPer1K = 0.3
	astar.ChaseFrac = 0.30
	astar.LoadFrac, astar.StoreFrac = 0.26, 0.10
	astar.BranchFrac = 0.14
	astar.BranchEntropy = 0.25
	astar.PointerValueFrac = 0.30

	sphinx3 := base("sphinx3")
	sphinx3.TableAllocs, sphinx3.TableFrees, sphinx3.TableMaxLive = 14224690, 14024020, 200686
	sphinx3.HeapFrac = 0.65
	sphinx3.LiveChunks = 4000
	sphinx3.ChunkSize = [2]uint64{32, 1024}
	sphinx3.HotChunks = 90
	sphinx3.HotFrac = 0.9
	sphinx3.AllocPer1K = 2.5
	sphinx3.FPFrac = 0.18
	sphinx3.LoadFrac, sphinx3.StoreFrac = 0.28, 0.10
	sphinx3.CallsPer1K = 3
	sphinx3.BranchEntropy = 0.10
	sphinx3.PointerValueFrac = 0.15

	return []*Profile{bzip2, gcc, mcf, milc, namd, gobmk, soplex, povray,
		hmmer, sjeng, libquantum, h264ref, lbm, omnetpp, astar, sphinx3}
}

// ByName returns the SPEC profile with the given name.
func ByName(name string) (*Profile, bool) {
	for _, p := range SPEC() {
		if p.Name == name {
			return p, true
		}
	}
	for _, p := range RealWorld() {
		if p.Name == name {
			return p, true
		}
	}
	return nil, false
}
