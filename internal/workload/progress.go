package workload

import "context"

// ProgressFunc receives in-flight run progress: done program
// instructions out of the run's total (warmup included). Callbacks
// arrive on the simulation goroutine at the cancellation-poll
// cadence (every ctxCheckEvery program instructions) plus once at
// completion; they must be fast and must not call back into the
// machine.
type ProgressFunc func(done, total uint64)

// progressKey is the context key for the run-progress callback.
type progressKey struct{}

// WithProgress returns a context that makes Profile.RunCtx report
// its instruction progress to fn. The service's SSE job streams are
// fed this way; passing progress through the context keeps RunCtx's
// signature — and every existing call site — unchanged.
func WithProgress(ctx context.Context, fn ProgressFunc) context.Context {
	return context.WithValue(ctx, progressKey{}, fn)
}

// progressFrom extracts the callback (nil when absent).
func progressFrom(ctx context.Context) ProgressFunc {
	fn, _ := ctx.Value(progressKey{}).(ProgressFunc)
	return fn
}
