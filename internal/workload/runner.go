package workload

import (
	"context"
	"fmt"
	"math/rand"

	"aos/internal/core"
	"aos/internal/kernel"
)

// Runner is the resumable form of a profile run: the synthetic program's
// loop state factored out of RunCtx so a SMARTS-style sampling driver can
// stop at segment boundaries, checkpoint (State), fast-forward, and resume
// (NewRunnerFromState) without replaying the prefix. RunCtx is a thin
// wrapper over a Runner and produces a bit-identical instruction stream to
// the pre-Runner implementation.
type Runner struct {
	p *Profile
	m *core.Machine

	seed int64
	src  *countingSource
	rng  *rand.Rand

	chunks []core.Ptr
	bias   []float64

	// Derived, draw-free parameters (recomputed from the profile on every
	// construction path; never checkpointed).
	chainFrac  float64
	memFrac    float64
	storeShare float64
	burstLen   int
	stride     uint64
	callGap    uint64
	allocGap   uint64

	// Strided-burst cursor.
	cur       core.Ptr
	curOff    uint64
	remaining int

	produced     uint64
	sinceCall    uint64
	sinceAlloc   uint64
	nextCtxCheck uint64
}

// NewRunner validates the profile and performs the program's setup phase on
// m — steady-state heap construction, prefaulting, branch-bias derivation —
// exactly as RunCtx's preamble always has (the setup emits instructions).
// The returned runner is positioned at produced=0, ready for RunTo.
func NewRunner(p *Profile, m *core.Machine, seed int64) (*Runner, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	r := &Runner{p: p, m: m, seed: seed, src: newCountingSource(seed)}
	r.rng = rand.New(r.src)
	r.deriveParams()

	// Warm-up: build the steady-state heap.
	r.chunks = make([]core.Ptr, 0, p.LiveChunks)
	for i := 0; i < p.LiveChunks; i++ {
		if err := r.allocChunk(); err != nil {
			return nil, err
		}
	}

	// Prefault: when the data footprint is cache-scale, touch it once at
	// line granularity (heap and globals) so the measurement window sees
	// capacity and conflict behaviour instead of compulsory misses — the
	// moral equivalent of measuring a window of the paper's 3B-instruction
	// runs. Genuinely DRAM-bound workloads (mcf-class footprints) skip it.
	var footprint uint64
	for _, c := range r.chunks {
		footprint += c.Size
	}
	if footprint <= 16<<20 {
		for _, c := range r.chunks {
			for off := uint64(0); off+8 <= c.Size; off += 64 {
				if err := m.Load(c, off, core.AccessOpts{}); err != nil {
					return nil, fmt.Errorf("workload %s: prefault: %w", p.Name, err)
				}
			}
		}
		for off := uint64(0); off < p.GlobalBytes; off += 64 {
			m.RawLoad(0x1000_0000+off, core.DepFree)
		}
		if m.Scheme.HasWatchdogChecks() {
			// Watchdog's shadow metadata (24B per pointer-holding data
			// line) is part of the program's working set; prefault it.
			shadow := uint64(float64(footprint*24/64) * p.PointerValueFrac)
			for off := uint64(0); off < shadow; off += 64 {
				m.RawLoad(kernel.ShadowBase+off, core.DepFree)
			}
		}
	}

	// Branch pattern state: per-site bias.
	r.bias = make([]float64, p.BranchSites)
	for i := range r.bias {
		if r.rng.Float64() < 0.5 {
			r.bias[i] = p.BranchEntropy / 2
		} else {
			r.bias[i] = 1 - p.BranchEntropy/2
		}
	}

	r.nextCtxCheck = ctxCheckEvery
	return r, nil
}

// deriveParams computes the draw-free parameters from the profile.
func (r *Runner) deriveParams() {
	p := r.p
	r.chainFrac = p.ChainFrac
	if r.chainFrac == 0 {
		r.chainFrac = 0.12
	}
	r.memFrac = p.LoadFrac + p.StoreFrac
	r.storeShare = 0.0
	if r.memFrac > 0 {
		r.storeShare = p.StoreFrac / r.memFrac
	}
	r.burstLen = p.BurstLen
	if r.burstLen <= 0 {
		r.burstLen = 16
	}
	r.stride = p.Stride
	if r.stride == 0 {
		r.stride = 8
	}
	r.callGap = gap(p.CallsPer1K)
	r.allocGap = gap(p.AllocPer1K)
}

// allocChunk draws a size and allocates one steady-state chunk.
func (r *Runner) allocChunk() error {
	p := r.p
	size := p.ChunkSize[0]
	if p.ChunkSize[1] > p.ChunkSize[0] {
		size += uint64(r.rng.Int63n(int64(p.ChunkSize[1] - p.ChunkSize[0] + 1)))
	}
	ptr, err := r.m.Malloc(size)
	if err != nil {
		return err
	}
	r.chunks = append(r.chunks, ptr)
	return nil
}

// Produced reports program instructions produced so far (intent count, the
// same quantity RunCtx's loop counts).
func (r *Runner) Produced() uint64 { return r.produced }

// pickChunk selects the next burst's target chunk.
func (r *Runner) pickChunk() core.Ptr {
	p := r.p
	if p.HotChunks > 0 && r.rng.Float64() < p.HotFrac {
		return r.chunks[r.rng.Intn(minInt(p.HotChunks, len(r.chunks)))]
	}
	return r.chunks[r.rng.Intn(len(r.chunks))]
}

// nextHeapTarget advances the strided-burst cursor.
func (r *Runner) nextHeapTarget() (core.Ptr, uint64) {
	if r.remaining <= 0 || r.cur.Raw == 0 || !stillLive(r.chunks, r.cur) {
		r.cur = r.pickChunk()
		span := r.cur.Size &^ 7
		if span == 0 {
			span = 8
		}
		r.curOff = uint64(r.rng.Int63n(int64(span))) &^ 7
		r.remaining = 1 + r.rng.Intn(2*r.burstLen)
	}
	r.remaining--
	off := r.curOff
	r.curOff += r.stride
	if r.curOff+8 > r.cur.Size {
		r.curOff = 0
	}
	return r.cur, off
}

// RunTo produces program instructions until produced >= until, preserving
// RunCtx's loop byte-for-byte: the same RNG draw order, the same
// cancellation-check cadence (persisting across calls), the same event mix.
// total is the overall run target, used for progress reporting and error
// messages; the closing progress callback fires only on the call that
// reaches it.
func (r *Runner) RunTo(ctx context.Context, until, total uint64) error {
	p, m := r.p, r.m
	progress := progressFrom(ctx)
	for r.produced < until {
		if r.produced >= r.nextCtxCheck {
			r.nextCtxCheck = r.produced + ctxCheckEvery
			if err := ctx.Err(); err != nil {
				return fmt.Errorf("workload %s: canceled after %d of %d instructions: %w",
					p.Name, r.produced, total, err)
			}
			if progress != nil {
				progress(r.produced, total)
			}
		}
		rr := r.rng.Float64()
		switch {
		case rr < r.memFrac:
			// A data access.
			store := r.rng.Float64() < r.storeShare
			opts := core.AccessOpts{}
			if r.rng.Float64() < p.ChaseFrac {
				opts.Dep = core.DepChase
			}
			if r.rng.Float64() < p.HeapFrac {
				c, off := r.nextHeapTarget()
				// Pointer-valued data lives at fixed locations (struct
				// layout), so pointer-ness is a deterministic property of
				// the line: Watchdog's shadow footprint then scales with
				// pointer density rather than covering the whole heap.
				line := (c.VA() + off) >> 6
				opts.Pointer = float64(line*2654435761%1000)/1000 < p.PointerValueFrac
				var err error
				if store {
					err = m.Store(c, off, opts)
				} else {
					err = m.Load(c, off, opts)
				}
				if err != nil {
					return fmt.Errorf("workload %s: unexpected violation: %w", p.Name, err)
				}
			} else {
				addr := 0x1000_0000 + uint64(r.rng.Int63n(int64(maxU64(p.GlobalBytes, 64))))&^7
				if store {
					m.RawStore(addr, opts.Dep)
				} else {
					m.RawLoad(addr, opts.Dep)
				}
			}
			r.produced++
		case rr < r.memFrac+p.BranchFrac:
			site := r.rng.Intn(p.BranchSites)
			taken := r.rng.Float64() < r.bias[site]
			m.Branch(uint32(site), taken)
			r.produced++
		case rr < r.memFrac+p.BranchFrac+p.FPFrac:
			m.ComputeFP(1, depOf(r.rng, p.ChaseFrac, r.chainFrac))
			r.produced++
		case rr < r.memFrac+p.BranchFrac+p.FPFrac+p.MulFrac:
			m.ComputeMul(1, depOf(r.rng, p.ChaseFrac, r.chainFrac))
			r.produced++
		default:
			m.Compute(1, depOf(r.rng, p.ChaseFrac, r.chainFrac))
			r.produced++
		}

		r.sinceCall++
		if r.callGap > 0 && r.sinceCall >= r.callGap {
			r.sinceCall = 0
			m.Call()
			m.Compute(2, core.DepFree)
			m.Ret()
			r.produced += 4
		}
		r.sinceAlloc++
		if r.allocGap > 0 && r.sinceAlloc >= r.allocGap {
			r.sinceAlloc = 0
			// Steady state: free a random victim, allocate a replacement.
			vi := r.rng.Intn(len(r.chunks))
			victim := r.chunks[vi]
			r.chunks[vi] = r.chunks[len(r.chunks)-1]
			r.chunks = r.chunks[:len(r.chunks)-1]
			if victim.Raw == r.cur.Raw {
				r.remaining = 0 // current burst target freed; repick
			}
			if err := m.Free(victim); err != nil {
				return fmt.Errorf("workload %s: free failed: %w", p.Name, err)
			}
			if err := r.allocChunk(); err != nil {
				return err
			}
			r.produced += 2 // the call/free intents
		}
	}
	if until >= total && progress != nil {
		progress(r.produced, total)
	}
	return nil
}

// RunnerState is a deep checkpoint of a runner's loop position: the PRNG
// state, the live-chunk list, the burst cursor, and the event-gap phases.
// Pair it with the machine and timing-core snapshots taken at the same
// instruction boundary to capture a whole simulation.
type RunnerState struct {
	profile string
	seed    int64
	rng     rngState

	chunks []core.Ptr
	bias   []float64

	cur       core.Ptr
	curOff    uint64
	remaining int

	produced     uint64
	sinceCall    uint64
	sinceAlloc   uint64
	nextCtxCheck uint64
}

// Produced reports the checkpoint's instruction position.
func (s *RunnerState) Produced() uint64 { return s.produced }

// State deep-copies the runner's loop state. The snapshot is immutable and
// reusable for any number of NewRunnerFromState calls.
func (r *Runner) State() *RunnerState {
	return &RunnerState{
		profile:      r.p.Name,
		seed:         r.seed,
		rng:          captureRNG(r.src),
		chunks:       append([]core.Ptr(nil), r.chunks...),
		bias:         append([]float64(nil), r.bias...),
		cur:          r.cur,
		curOff:       r.curOff,
		remaining:    r.remaining,
		produced:     r.produced,
		sinceCall:    r.sinceCall,
		sinceAlloc:   r.sinceAlloc,
		nextCtxCheck: r.nextCtxCheck,
	}
}

// NewRunnerFromState builds a runner positioned at a checkpoint, skipping
// the setup phase entirely (no instructions are emitted — m must already
// hold the matching machine state, restored from the checkpoint taken at
// the same boundary). The state stays valid for further restores.
func NewRunnerFromState(p *Profile, m *core.Machine, s *RunnerState) (*Runner, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if p.Name != s.profile {
		return nil, fmt.Errorf("workload: runner state is for profile %q, not %q", s.profile, p.Name)
	}
	r := &Runner{p: p, m: m, seed: s.seed}
	r.src = restoreRNG(s.seed, s.rng)
	r.rng = rand.New(r.src)
	r.deriveParams()
	r.chunks = append([]core.Ptr(nil), s.chunks...)
	r.bias = append([]float64(nil), s.bias...)
	r.cur = s.cur
	r.curOff = s.curOff
	r.remaining = s.remaining
	r.produced = s.produced
	r.sinceCall = s.sinceCall
	r.sinceAlloc = s.sinceAlloc
	r.nextCtxCheck = s.nextCtxCheck
	return r, nil
}
