package workload

import (
	"reflect"
	"testing"

	"aos/internal/core"
	"aos/internal/instrument"
	"aos/internal/isa"
)

func TestSPECProfilesValidate(t *testing.T) {
	profiles := SPEC()
	if len(profiles) != 16 {
		t.Fatalf("SPEC profiles = %d, want 16", len(profiles))
	}
	seen := map[string]bool{}
	for _, p := range profiles {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
		if seen[p.Name] {
			t.Errorf("duplicate profile %s", p.Name)
		}
		seen[p.Name] = true
	}
}

func TestTableIINumbersMatchPaper(t *testing.T) {
	// Spot-check the published Table II values carried by the profiles.
	want := map[string][3]uint64{ // allocs, frees, maxLive
		"bzip2":   {29, 25, 10},
		"gcc":     {1846825, 1829255, 81825},
		"mcf":     {8, 8, 6},
		"omnetpp": {21244416, 21244416, 1993737},
		"sphinx3": {14224690, 14024020, 200686},
		"hmmer":   {1474128, 1474128, 1450},
	}
	for name, w := range want {
		p, ok := ByName(name)
		if !ok {
			t.Fatalf("missing profile %s", name)
		}
		if p.TableAllocs != w[0] || p.TableFrees != w[1] || p.TableMaxLive != w[2] {
			t.Errorf("%s: table numbers %d/%d/%d, want %d/%d/%d",
				name, p.TableAllocs, p.TableFrees, p.TableMaxLive, w[0], w[1], w[2])
		}
	}
}

func TestRealWorldProfiles(t *testing.T) {
	rw := RealWorld()
	if len(rw) != 6 {
		t.Fatalf("real-world profiles = %d", len(rw))
	}
	apache, ok := ByName("apache")
	if !ok || apache.TableAllocs != 13_360_000 {
		t.Error("apache Table III numbers wrong")
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, ok := ByName("not-a-benchmark"); ok {
		t.Error("ByName accepted an unknown name")
	}
}

func TestRunProducesRequestedInstructions(t *testing.T) {
	p, _ := ByName("milc")
	prof := *p
	prof.Instructions = 30_000
	m, err := core.New(core.Config{Scheme: instrument.Baseline})
	if err != nil {
		t.Fatal(err)
	}
	if err := prof.Run(m, 1); err != nil {
		t.Fatal(err)
	}
	total := m.Counts().Total
	if total < 30_000 {
		t.Errorf("emitted %d instructions, want >= 30000", total)
	}
}

func TestRunDeterminism(t *testing.T) {
	p, _ := ByName("astar")
	prof := *p
	prof.Instructions = 20_000
	counts := func(seed int64) isa.Counts {
		m, err := core.New(core.Config{Scheme: instrument.AOS})
		if err != nil {
			t.Fatal(err)
		}
		if err := prof.Run(m, seed); err != nil {
			t.Fatal(err)
		}
		return m.Counts()
	}
	a, b := counts(3), counts(3)
	if a != b {
		t.Error("same seed produced different instruction streams")
	}
	c := counts(4)
	if a == c {
		t.Log("different seeds produced identical streams (unlikely)")
	}
}

func TestRunNoViolationsOnBenignWorkloads(t *testing.T) {
	for _, p := range SPEC()[:4] {
		prof := *p
		prof.Instructions = 15_000
		m, err := core.New(core.Config{Scheme: instrument.AOS})
		if err != nil {
			t.Fatal(err)
		}
		if err := prof.Run(m, 2); err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		if n := len(m.Exceptions()); n != 0 {
			t.Errorf("%s: benign workload raised %d exceptions", p.Name, n)
		}
	}
}

func TestRunWarmCallbackFires(t *testing.T) {
	p, _ := ByName("sjeng")
	prof := *p
	prof.Instructions = 10_000
	m, err := core.New(core.Config{Scheme: instrument.Baseline})
	if err != nil {
		t.Fatal(err)
	}
	var atWarm uint64
	if err := prof.RunWarm(m, 1, 5_000, func() { atWarm = m.Counts().Total }); err != nil {
		t.Fatal(err)
	}
	if atWarm == 0 {
		t.Fatal("warmup callback never fired")
	}
	if final := m.Counts().Total; final <= atWarm {
		t.Errorf("no instructions after warmup: warm=%d final=%d", atWarm, final)
	}
}

func TestAllocScheduleMatchesConsistentRows(t *testing.T) {
	// Rows whose paper numbers are internally consistent must be
	// reproduced exactly at full scale.
	for _, name := range []string{"bzip2", "mcf", "milc", "namd", "gobmk", "hmmer", "h264ref", "lbm", "astar", "sphinx3"} {
		p, _ := ByName(name)
		res := p.AllocSchedule(1, func(bool) {})
		if res.Allocs != p.TableAllocs {
			t.Errorf("%s: allocs %d, want %d", name, res.Allocs, p.TableAllocs)
		}
		if res.Frees != p.TableFrees {
			t.Errorf("%s: frees %d, want %d", name, res.Frees, p.TableFrees)
		}
		if res.MaxLive != p.TableMaxLive {
			t.Errorf("%s: max live %d, want %d", name, res.MaxLive, p.TableMaxLive)
		}
	}
}

func TestAllocScheduleSoplexNote(t *testing.T) {
	// soplex's published triple is not reproducible with paired frees; the
	// profile must carry an explanatory note and still reproduce the alloc
	// and free counts.
	p, _ := ByName("soplex")
	if p.TableNote == "" {
		t.Fatal("soplex missing its table note")
	}
	res := p.AllocSchedule(1, func(bool) {})
	if res.Allocs != p.TableAllocs || res.Frees != p.TableFrees {
		t.Errorf("soplex counts %d/%d, want %d/%d", res.Allocs, res.Frees, p.TableAllocs, p.TableFrees)
	}
}

func TestAllocScheduleScaling(t *testing.T) {
	p, _ := ByName("omnetpp")
	res := p.AllocSchedule(1000, func(bool) {})
	if res.Allocs != p.TableAllocs/1000 {
		t.Errorf("scaled allocs = %d, want %d", res.Allocs, p.TableAllocs/1000)
	}
}

// TestProfileCloneIsDeep guards Clone's shallow-copy-is-deep-copy
// invariant: Profile must hold only value-typed fields. If a slice, map,
// pointer, chan, func or interface field is ever added, this test fails
// until Clone learns to copy it — otherwise concurrent runs over shared
// workload.SPEC() profiles would silently alias mutable state.
func TestProfileCloneIsDeep(t *testing.T) {
	typ := reflect.TypeOf(Profile{})
	var check func(t reflect.Type, path string)
	check = func(ft reflect.Type, path string) {
		switch ft.Kind() {
		case reflect.Slice, reflect.Map, reflect.Ptr, reflect.Chan,
			reflect.Func, reflect.Interface, reflect.UnsafePointer:
			t.Errorf("Profile field %s has reference kind %v; Clone must deep-copy it", path, ft.Kind())
		case reflect.Struct:
			for i := 0; i < ft.NumField(); i++ {
				check(ft.Field(i).Type, path+"."+ft.Field(i).Name)
			}
		case reflect.Array:
			check(ft.Elem(), path+"[]")
		}
	}
	check(typ, "Profile")

	p, _ := ByName("gcc")
	q := p.Clone()
	q.Instructions = p.Instructions + 1
	q.ChunkSize[0] = p.ChunkSize[0] + 1
	if p.Instructions == q.Instructions || p.ChunkSize[0] == q.ChunkSize[0] {
		t.Error("Clone shares state with the original")
	}
}
