package workload

// RealWorld returns the six real-world benchmark profiles of Table III.
// The paper uses them only for memory-usage profiling (the §VI argument
// that active-chunk counts stay modest); timing parameters are provided so
// they can also be run through the simulator.
func RealWorld() []*Profile {
	mk := func(name string, maxLive, allocs, frees uint64, desc string) *Profile {
		return &Profile{
			Name:         name,
			TableAllocs:  allocs,
			TableFrees:   frees,
			TableMaxLive: maxLive,
			TableNote:    desc,
			Instructions: 500_000,
			LoadFrac:     0.24, StoreFrac: 0.11,
			BranchFrac: 0.12, FPFrac: 0.02, MulFrac: 0.04,
			HeapFrac: 0.6, PointerValueFrac: 0.15, ChaseFrac: 0.1,
			CallsPer1K: 6,
			LiveChunks: int(minU64(maxLive, 8192)),
			ChunkSize:  [2]uint64{128, 64 << 10},
			HotChunks:  16, HotFrac: 0.85,
			AllocPer1K: 0.5, GlobalBytes: 512 << 10,
			CodeFootprint: 32 << 10,
			BranchSites:   128, BranchEntropy: 0.12,
		}
	}
	return []*Profile{
		mk("pbzip2", 110, 12425, 12423, "compress 1.4GB file, 8 threads"),
		mk("pigz", 110, 24511, 24511, "compress 1.4GB file, 8 threads"),
		mk("axel", 172, 473, 473, "download 1.4GB file, 8 threads"),
		mk("md5sum", 32, 34, 34, "calculate MD5 hash, 1.4GB file"),
		mk("apache", 7592, 13_360_000, 13_360_000, "apache bench, 10K req."),
		mk("mysql", 5380, 28622, 28621, "sysbench, 100K req."),
	}
}

func minU64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

// MemoryProfileResult is one measured Table II/III row.
type MemoryProfileResult struct {
	Name    string
	MaxLive uint64
	Allocs  uint64
	Frees   uint64
	EndLive uint64
	Note    string
}

// AllocSchedule replays a profile's full-scale allocation behaviour against
// a trace-malloc style recorder (no instruction emission): grow to the
// published maximum live count, run paired free+malloc steady state until
// the published allocation total is reached, then drain the number of
// frees the paper reports. scale divides the published counts for quick
// runs (1 = full scale).
func (p *Profile) AllocSchedule(scale uint64, observe func(alloc bool)) MemoryProfileResult {
	if scale == 0 {
		scale = 1
	}
	// Small profiles (a handful of allocations) are cheap to replay in
	// full and would vanish under scaling; keep them exact.
	if p.TableAllocs < 10_000 {
		scale = 1
	}
	targetAllocs := p.TableAllocs / scale
	targetFrees := p.TableFrees / scale
	maxLive := p.TableMaxLive
	if scaled := p.TableMaxLive / scale; scale > 1 && scaled >= 1 && targetAllocs < p.TableMaxLive {
		maxLive = maxU64(scaled, 1)
	}
	if maxLive > targetAllocs {
		maxLive = targetAllocs
	}

	var res MemoryProfileResult
	res.Name = p.Name
	res.Note = p.TableNote
	live := uint64(0)
	alloc := func() {
		observe(true)
		res.Allocs++
		live++
		if live > res.MaxLive {
			res.MaxLive = live
		}
	}
	free := func() {
		observe(false)
		res.Frees++
		live--
	}

	// Phase 1: grow to the peak.
	for live < maxLive && res.Allocs < targetAllocs {
		alloc()
	}
	// Phase 2: steady state — paired free+alloc keeps the peak flat.
	for res.Allocs < targetAllocs {
		if live > 0 && res.Frees < targetFrees {
			free()
		}
		alloc()
	}
	// Phase 3: drain the counted frees.
	for res.Frees < targetFrees && live > 0 {
		free()
	}
	res.EndLive = live
	return res
}
