package protoverify

import (
	"fmt"

	"aos/internal/core"
	"aos/internal/instrument"
	"aos/internal/isa"
	"aos/internal/pa"
	"aos/internal/tracecheck"
)

// Canonical event payloads. allocSize and reallocSize are protocol-
// irrelevant except that reallocSize must exceed allocSize (growth is the
// interesting realloc direction: it may move the chunk). probeSize is the
// resize probe's size class — larger than every other allocation in any
// program, so a freed probe chunk can only be reused by the next probe,
// which is what makes the home-row prediction reliable.
const (
	allocSize   = 48
	reallocSize = 96
	probeSize   = 4096
	oobOffset   = 1 << 20
)

// fakeBoundsOffset is the heap offset where forced-resize filler bounds
// live: inside the HBT's 33-bit coverage window but gigabytes above any
// address the tiny enumerated programs can reach, so filler entries can
// never cover (or match the base of) a real access.
const fakeBoundsOffset = 0x1_8000_0000

// driver executes one event program on a fresh machine, maintaining the
// concrete counterparts of absState. The bookkeeping must mirror apply()
// exactly — see the absState doc comment.
type driver struct {
	m     *core.Machine
	live  []core.Ptr
	freed []core.Ptr
	// pinned holds resize-probe allocations, kept live and out of the
	// event-addressable slots (their home rows are full of filler bounds).
	pinned []core.Ptr
}

// step executes one event. Protection verdicts (exceptions, allocator
// errors on stale frees) are modeled behavior and deliberately ignored:
// acceptance is about the emitted op stream. Only genuinely impossible
// situations — an out-of-memory malloc, an unforceable resize — surface
// as harness errors.
func (d *driver) step(ev Event) error {
	switch ev {
	case EvAlloc:
		p, err := d.m.Malloc(allocSize)
		if err != nil {
			return fmt.Errorf("protoverify: malloc failed mid-program: %w", err)
		}
		d.live = append(d.live, p)
	case EvFree:
		p := d.live[len(d.live)-1]
		d.live = d.live[:len(d.live)-1]
		_ = d.m.Free(p)
		d.freed = append(d.freed, p)
	case EvFreeStale:
		_ = d.m.Free(d.freed[len(d.freed)-1])
	case EvRealloc:
		p := d.live[len(d.live)-1]
		np, err := d.m.Realloc(p, reallocSize)
		if err == nil {
			d.live[len(d.live)-1] = np
		}
		// On a suppressed realloc (stale-aliased pointer) the slot keeps
		// its old value; either way the pre-realloc value is retired, so
		// the concrete bookkeeping matches apply() unconditionally.
		d.freed = append(d.freed, p)
	case EvAccess:
		p := d.live[len(d.live)-1]
		_ = d.m.Load(p, 8, core.AccessOpts{})
		_ = d.m.Store(p, 16, core.AccessOpts{})
	case EvAccessOOB:
		_ = d.m.Load(d.live[len(d.live)-1], oobOffset, core.AccessOpts{})
	case EvAccessFreed:
		_ = d.m.Load(d.freed[len(d.freed)-1], 0, core.AccessOpts{})
	case EvCall:
		d.m.Call()
	case EvRet:
		d.m.Ret()
	case EvResize:
		return d.forceResize()
	default:
		return fmt.Errorf("protoverify: unknown event %d", uint8(ev))
	}
	return nil
}

// forceResize drives the machine into an HBT associativity doubling using
// only architectural operations plus direct (instruction-free) filler
// insertions into the real table:
//
//  1. malloc a probe chunk and observe its PAC;
//  2. free it (its chunk becomes the allocator's preferred reuse for the
//     next probe-sized request);
//  3. fill the PAC's home row to capacity with filler bounds far outside
//     any reachable address window;
//  4. malloc again: the allocator reuses the same VA, the PA unit derives
//     the same PAC, the insert hits a full row, and the OS resize runs —
//     announced by a Resize-flagged bndstr, which is exactly the
//     transition TC08 checks.
//
// Allocator coalescing can occasionally hand back a different VA (a freed
// neighbour merged), which lands in an unfilled row; the loop then fills
// that row too and retries. Each attempt fills one more row, so the walk
// terminates — the cap only guards against a broken prediction model.
func (d *driver) forceResize() error {
	for attempt := 0; attempt < 32; attempt++ {
		before := d.m.Table().Assoc()
		p, err := d.m.Malloc(probeSize)
		if err != nil {
			return fmt.Errorf("protoverify: resize probe malloc failed: %w", err)
		}
		if d.m.Table().Assoc() > before {
			// This probe's insert itself overflowed a previously filled
			// row: resize achieved. Pin the probe so no event frees a
			// chunk whose home row is saturated.
			d.pinned = append(d.pinned, p)
			return nil
		}
		pacv := pa.PAC(p.Raw)
		if err := d.m.Free(p); err != nil {
			return fmt.Errorf("protoverify: resize probe free failed: %w", err)
		}
		t := d.m.Table()
		base := d.m.Heap.Base() + fakeBoundsOffset + uint64(attempt)<<20
		for {
			if _, err := t.Insert(pacv, base, 16); err != nil {
				break // row full
			}
			base += 16
		}
	}
	return fmt.Errorf("protoverify: HBT resize not forced after 32 probe attempts")
}

// captureSink records the stream a downstream sink sees (post-mutation:
// the stream the checker judged), for counterexample replay.
type captureSink struct {
	buf  []isa.Inst
	next isa.Sink
}

func (s *captureSink) Emit(in *isa.Inst) {
	s.buf = append(s.buf, *in)
	s.next.Emit(in)
}

func (s *captureSink) EmitBatch(batch []isa.Inst) {
	s.buf = append(s.buf, batch...)
	for i := range batch {
		s.next.Emit(&batch[i])
	}
}

// runResult is one program's verdict.
type runResult struct {
	violations []tracecheck.Violation
	coverage   map[string]uint64
	insts      uint64
	trace      []isa.Inst // populated only when capture was requested
}

// runProgram executes one event program against a fresh machine and
// checker, optionally routing the emitted stream through a mutant
// instrumenter and/or capturing it. The returned error is a harness
// failure (the program could not be executed), never a verdict.
func runProgram(scheme instrument.Scheme, events []Event, mutate MutateFunc, capture bool) (runResult, error) {
	m, err := core.New(core.Config{Scheme: scheme})
	if err != nil {
		return runResult{}, fmt.Errorf("protoverify: machine construction: %w", err)
	}
	chk := tracecheck.New(scheme)
	chk.EnableCoverage()
	// Sink chain, innermost first: the capture (when requested) records
	// exactly the stream the checker judges, so the mutant wraps outside it.
	var sink isa.Sink = chk
	var rec *captureSink
	if capture {
		rec = &captureSink{next: sink}
		sink = rec
	}
	if mutate != nil {
		sink = mutate(sink)
	}
	m.SetSink(sink)

	d := &driver{m: m}
	for _, ev := range events {
		if err := d.step(ev); err != nil {
			return runResult{}, err
		}
	}
	chk.Finish()

	res := runResult{
		violations: chk.Violations(),
		coverage:   chk.Coverage(),
		insts:      m.Counts().Total,
	}
	if rec != nil {
		res.trace = rec.buf
	}
	return res, nil
}
