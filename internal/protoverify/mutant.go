package protoverify

import "aos/internal/isa"

// MutateFunc wraps the checker-facing sink with a stream transformer that
// models a broken instrumentation rewriter: the machine still executes
// faithfully (tables, heap, PA unit), but the op stream the contract sees
// is corrupted the way a buggy backend would corrupt it. Verifying a
// mutant must produce a counterexample — that is the regression test for
// the checker's own teeth.
type MutateFunc func(next isa.Sink) isa.Sink

// Mutant is one named seeded defect.
type Mutant struct {
	// Name selects the mutant (aosverify -mutant).
	Name string
	// Desc says what the seeded defect models.
	Desc string
	// Wrap installs the stream transformer.
	Wrap MutateFunc
}

// Mutants returns the seeded-defect registry, in stable order.
func Mutants() []Mutant {
	return []Mutant{
		{
			Name: "drop-xpacm",
			Desc: "free-side xpacm strip never emitted (allocator runs on a signed pointer)",
			Wrap: dropIf(func(in *isa.Inst) bool { return in.Op == isa.OpXpacm }),
		},
		{
			Name: "drop-resign",
			Desc: "free-side re-signing pacma (xzr size) never emitted — no temporal-safety lock",
			Wrap: dropIf(func(in *isa.Inst) bool { return in.Op == isa.OpPacma && in.Size == 0 }),
		},
		{
			Name: "drop-bndclr",
			Desc: "free-side bndclr never emitted (bounds stay live across free)",
			Wrap: dropIf(func(in *isa.Inst) bool { return in.Op == isa.OpBndclr }),
		},
		{
			Name: "unflag-resize",
			Desc: "table resizes not announced: the Resize flag is stripped from bndstr",
			Wrap: func(next isa.Sink) isa.Sink {
				return mapSink{next: next, f: func(in isa.Inst) isa.Inst {
					in.Resize = false
					return in
				}}
			},
		},
		{
			Name: "double-bndstr",
			Desc: "every bndstr emitted twice (bounds double-inserted without a pacma)",
			Wrap: func(next isa.Sink) isa.Sink {
				return dupSink{next: next, dup: func(in *isa.Inst) bool { return in.Op == isa.OpBndstr }}
			},
		},
	}
}

// MutantByName looks a mutant up (ok=false when unknown).
func MutantByName(name string) (Mutant, bool) {
	for _, mu := range Mutants() {
		if mu.Name == name {
			return mu, true
		}
	}
	return Mutant{}, false
}

// dropIf builds a MutateFunc that swallows matching instructions.
func dropIf(match func(*isa.Inst) bool) MutateFunc {
	return func(next isa.Sink) isa.Sink {
		return filterSink{next: next, drop: match}
	}
}

type filterSink struct {
	next isa.Sink
	drop func(*isa.Inst) bool
}

func (s filterSink) Emit(in *isa.Inst) {
	if !s.drop(in) {
		s.next.Emit(in)
	}
}

func (s filterSink) EmitBatch(batch []isa.Inst) {
	for i := range batch {
		s.Emit(&batch[i])
	}
}

type mapSink struct {
	next isa.Sink
	f    func(isa.Inst) isa.Inst
}

func (s mapSink) Emit(in *isa.Inst) {
	out := s.f(*in)
	s.next.Emit(&out)
}

func (s mapSink) EmitBatch(batch []isa.Inst) {
	for i := range batch {
		s.Emit(&batch[i])
	}
}

type dupSink struct {
	next isa.Sink
	dup  func(*isa.Inst) bool
}

func (s dupSink) Emit(in *isa.Inst) {
	s.next.Emit(in)
	if s.dup(in) {
		cp := *in
		s.next.Emit(&cp)
	}
}

func (s dupSink) EmitBatch(batch []isa.Inst) {
	for i := range batch {
		s.Emit(&batch[i])
	}
}
