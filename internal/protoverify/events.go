// Package protoverify is a bounded model checker for the per-scheme
// instrumentation protocols. For each registered protection scheme it
// exhaustively enumerates every heap-event program up to depth k —
// allocation, free (valid, double, via realloc), in-bounds and violating
// accesses, call/ret nesting, and forced HBT resizes — drives each program
// through the scheme's instrumentation rewriter (core.Machine), and
// asserts the emitted dynamic-instruction stream is accepted by the
// scheme's tracecheck.Contract.
//
// Acceptance alone is weak: a contract whose rules never arm accepts
// everything. The checker therefore also aggregates per-rule coverage
// (tracecheck's armed-predicate counters) across the enumeration and
// fails a scheme whose expected rules stay dead — the small-scope
// guarantee is "every bounded program accepted AND every contract rule
// exercised", which is what makes adding a registry backend statically
// checkable at go test time with no simulated workload.
//
// When a program is rejected, the failing event sequence is shrunk to a
// local minimum (greedy event deletion, re-validated against the event
// grammar) and re-run to capture the exact instruction stream the checker
// saw, which callers can write as a replayable aossim -replay trace.
package protoverify

// Event is one symbolic step of a heap-event program. The alphabet is
// deliberately small-scope: one canonical representative per protocol
// branch of the instrumentation rewriter, so depth-k enumeration covers
// every interleaving of protocol-relevant behavior without enumerating
// payload values.
type Event uint8

// The event alphabet. Enumeration order is the declaration order; it fixes
// which counterexample is "first" and keeps CI logs deterministic.
const (
	// EvAlloc allocates a fresh chunk (malloc(48)) and makes it the newest
	// live slot.
	EvAlloc Event = iota
	// EvFree frees the newest live slot; the dangling pointer is retained
	// for EvFreeStale/EvAccessFreed.
	EvFree
	// EvFreeStale frees through the newest dangling pointer (double free).
	EvFreeStale
	// EvRealloc reallocs the newest live slot to a larger size; the old
	// pointer value becomes dangling (AOS kills it even in place: the size
	// is a PAC modifier).
	EvRealloc
	// EvAccess performs an in-bounds load and store through the newest
	// live slot.
	EvAccess
	// EvAccessOOB loads far past the newest live slot's bounds.
	EvAccessOOB
	// EvAccessFreed loads through the newest dangling pointer (UAF).
	EvAccessFreed
	// EvCall enters a function frame (under RAS: pacia/autia pairing).
	EvCall
	// EvRet leaves the innermost frame.
	EvRet
	// EvResize forces an HBT associativity doubling by filling the home
	// row of a predicted allocation (signing schemes only).
	EvResize
	numEvents
)

var eventNames = [numEvents]string{
	EvAlloc:       "alloc",
	EvFree:        "free",
	EvFreeStale:   "free-stale",
	EvRealloc:     "realloc",
	EvAccess:      "access",
	EvAccessOOB:   "access-oob",
	EvAccessFreed: "access-freed",
	EvCall:        "call",
	EvRet:         "ret",
	EvResize:      "hbt-resize",
}

// String names the event.
func (e Event) String() string {
	if int(e) < len(eventNames) {
		return eventNames[e]
	}
	return "event?"
}

// eventDocs explain each event in counterexample listings.
var eventDocs = [numEvents]string{
	EvAlloc:       "malloc(48): new live allocation",
	EvFree:        "free() of the newest live allocation (pointer kept dangling)",
	EvFreeStale:   "free() through the newest dangling pointer (double free)",
	EvRealloc:     "realloc() of the newest live allocation to a larger size",
	EvAccess:      "in-bounds load+store through the newest live allocation",
	EvAccessOOB:   "load 1 MiB past the newest live allocation (out of bounds)",
	EvAccessFreed: "load through the newest dangling pointer (use-after-free)",
	EvCall:        "function call (frame push; pacia under RAS)",
	EvRet:         "function return (frame pop; autia under RAS)",
	EvResize:      "force an HBT resize by filling a predicted allocation's home row",
}

// Doc returns the one-line explanation of the event.
func (e Event) Doc() string {
	if int(e) < len(eventDocs) {
		return eventDocs[e]
	}
	return ""
}

// Small-scope bounds on the abstract program state. Two live slots, two
// dangling slots and two frames are enough to express every pairwise
// protocol interleaving (alloc-over-alloc, free-under-call, stale-vs-live
// aliasing); resizes are capped because each one doubles the table (the
// HBT tops out at 64 ways from an initial 1, i.e. six doublings — one of
// headroom is kept for incidental resizes caused by row-fill residue).
const (
	maxLive    = 2
	maxFreed   = 2
	maxDepth   = 2
	maxResizes = 5
)

// absState is the machine-independent abstraction of the driver state the
// event grammar is gated on. It must stay exact with respect to driver
// bookkeeping — enabledness decides the enumeration tree, and the driver
// replays the same bookkeeping — so every transition below is defined
// without reference to heap layout (e.g. EvRealloc always retires the old
// pointer to the dangling set, whether or not the chunk moved).
type absState struct {
	live    int
	freed   int
	depth   int
	resizes int
}

// enabled reports whether the event may extend a program in state s under
// the given scheme's alphabet.
func enabled(s absState, signing bool, ev Event) bool {
	switch ev {
	case EvAlloc:
		return s.live < maxLive
	case EvFree, EvRealloc:
		return s.live > 0 && s.freed < maxFreed
	case EvFreeStale, EvAccessFreed:
		return s.freed > 0
	case EvAccess, EvAccessOOB:
		return s.live > 0
	case EvCall:
		return s.depth < maxDepth
	case EvRet:
		return s.depth > 0
	case EvResize:
		return signing && s.resizes < maxResizes
	default:
		return false
	}
}

// apply returns the successor abstract state. Call only for enabled events.
func apply(s absState, ev Event) absState {
	switch ev {
	case EvAlloc:
		s.live++
	case EvFree:
		s.live--
		s.freed++
	case EvRealloc:
		s.freed++ // old pointer value retires; slot count unchanged
	case EvCall:
		s.depth++
	case EvRet:
		s.depth--
	case EvResize:
		s.resizes++
	case EvFreeStale, EvAccess, EvAccessOOB, EvAccessFreed:
		// No bookkeeping change.
	default:
		// Unknown events are never enabled.
	}
	return s
}

// validSequence reports whether a (possibly shrunk) event sequence is
// well-formed under the grammar: every event enabled in the state its
// prefix produces. The minimizer uses it so counterexamples stay
// replayable programs, not just op soups.
func validSequence(events []Event, signing bool) bool {
	var s absState
	for _, ev := range events {
		if !enabled(s, signing, ev) {
			return false
		}
		s = apply(s, ev)
	}
	return true
}
