package protoverify

import (
	"bytes"
	"reflect"
	"testing"

	"aos/internal/instrument"
	"aos/internal/trace"
	"aos/internal/tracecheck"
)

// testK keeps the mutant/determinism runs fast. It must be >= 3 so the
// UAF path (alloc, free, access-freed) is reachable.
const testK = 4

// TestVerifyAllSchemes is the acceptance gate: every registered scheme's
// rewriter must emit contract-clean streams for every bounded program at
// the full default depth, and every expected contract rule must be
// exercised (no dead rules).
func TestVerifyAllSchemes(t *testing.T) {
	for _, s := range instrument.AllSchemes() {
		s := s
		t.Run(s.String(), func(t *testing.T) {
			t.Parallel()
			rep, err := Verify(s, Options{K: DefaultK})
			if err != nil {
				t.Fatalf("Verify(%s): %v", s, err)
			}
			if rep.Programs == 0 {
				t.Fatalf("Verify(%s) enumerated no programs", s)
			}
			if rep.CE != nil {
				t.Fatalf("Verify(%s) found a counterexample %v: %v",
					s, rep.CE.Events, rep.CE.Violations)
			}
			if len(rep.Dead) != 0 {
				t.Fatalf("Verify(%s): dead rules %v (coverage %v)", s, rep.Dead, rep.Coverage)
			}
			if !rep.OK() {
				t.Fatalf("Verify(%s): report not OK: %+v", s, rep)
			}
			// Rules outside the scheme's expectation must stay silent: a
			// baseline stream exercising TC02 would mean the rewriter leaks
			// signing ops into unsigned schemes.
			expected := make(map[string]bool, len(rep.Expected))
			for _, id := range rep.Expected {
				expected[id] = true
			}
			for _, id := range tracecheck.RuleIDs() {
				if !expected[id] && rep.Coverage[id] != 0 {
					t.Errorf("Verify(%s): unexpected rule %s exercised %d times",
						s, id, rep.Coverage[id])
				}
			}
		})
	}
}

// TestMutantsCaught seeds each registered defect into the AOS rewriter's
// output and asserts the contract rejects some bounded program, with the
// counterexample shrunk to at most two events.
func TestMutantsCaught(t *testing.T) {
	for _, mu := range Mutants() {
		mu := mu
		t.Run(mu.Name, func(t *testing.T) {
			t.Parallel()
			rep, err := Verify(instrument.AOS, Options{K: testK, Mutate: mu.Wrap})
			if err != nil {
				t.Fatalf("Verify(AOS, %s): %v", mu.Name, err)
			}
			if rep.CE == nil {
				t.Fatalf("mutant %s survived: no counterexample at k=%d", mu.Name, testK)
			}
			if len(rep.CE.Violations) == 0 {
				t.Fatalf("mutant %s: counterexample with no violations", mu.Name)
			}
			if len(rep.CE.Events) > 2 {
				t.Errorf("mutant %s: counterexample %v not minimal (len %d > 2)",
					mu.Name, rep.CE.Events, len(rep.CE.Events))
			}
			if len(rep.CE.Trace) == 0 {
				t.Errorf("mutant %s: counterexample has no captured trace", mu.Name)
			}
		})
	}
}

// TestDropXpacmMinimization pins the exact minimized counterexample for the
// canonical mutant: stripping the free-side xpacm must shrink to a single
// alloc/free lifecycle and blame the free protocol.
func TestDropXpacmMinimization(t *testing.T) {
	mu, ok := MutantByName("drop-xpacm")
	if !ok {
		t.Fatal("drop-xpacm mutant missing")
	}
	rep, err := Verify(instrument.AOS, Options{K: testK, Mutate: mu.Wrap})
	if err != nil {
		t.Fatal(err)
	}
	if rep.CE == nil {
		t.Fatal("no counterexample")
	}
	want := []Event{EvAlloc, EvFree}
	if !reflect.DeepEqual(rep.CE.Events, want) {
		t.Fatalf("minimized events = %v, want %v", rep.CE.Events, want)
	}
	if rep.CE.OriginalLen != testK {
		t.Errorf("OriginalLen = %d, want %d", rep.CE.OriginalLen, testK)
	}
	if rule := rep.CE.Violations[0].Rule; rule != tracecheck.RuleFreeProtocol &&
		rule != tracecheck.RuleStreamEnd {
		t.Errorf("first violation rule = %s, want free-protocol or stream-end", rule)
	}
	if tracecheck.Explain(rep.CE.Violations[0].Rule) == "" {
		t.Errorf("no explanation for rule %s", rep.CE.Violations[0].Rule)
	}
}

// TestCounterexampleTraceReplays round-trips a counterexample's captured
// stream through the binary trace format and a fresh checker: the replayed
// stream must reproduce the same first violation. This is the property that
// makes `aosverify -ce out.trace` + `aossim -replay out.trace` agree.
func TestCounterexampleTraceReplays(t *testing.T) {
	mu, _ := MutantByName("drop-xpacm")
	rep, err := Verify(instrument.AOS, Options{K: testK, Mutate: mu.Wrap})
	if err != nil {
		t.Fatal(err)
	}
	if rep.CE == nil {
		t.Fatal("no counterexample")
	}

	var buf bytes.Buffer
	w, err := trace.NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	w.EmitBatch(rep.CE.Trace)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := trace.NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	chk := tracecheck.New(instrument.AOS)
	trace.Replay(r, chk)
	chk.Finish()
	got := chk.Violations()
	if len(got) == 0 {
		t.Fatal("replayed counterexample trace produced no violations")
	}
	if got[0].Rule != rep.CE.Violations[0].Rule {
		t.Fatalf("replayed first violation rule = %s, want %s",
			got[0].Rule, rep.CE.Violations[0].Rule)
	}
}

// TestDeterminism: two identical runs must agree byte-for-byte on every
// reported quantity — the enumeration order is fixed, the machine is
// deterministic, and coverage is a pure fold.
func TestDeterminism(t *testing.T) {
	run := func() *Report {
		rep, err := Verify(instrument.AOS, Options{K: 3})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("non-deterministic reports:\n%+v\n%+v", a, b)
	}

	mu, _ := MutantByName("drop-xpacm")
	runMut := func() *Counterexample {
		rep, err := Verify(instrument.AOS, Options{K: testK, Mutate: mu.Wrap})
		if err != nil {
			t.Fatal(err)
		}
		if rep.CE == nil {
			t.Fatal("no counterexample")
		}
		return rep.CE
	}
	ca, cb := runMut(), runMut()
	if !reflect.DeepEqual(ca, cb) {
		t.Fatalf("non-deterministic counterexamples:\n%+v\n%+v", ca, cb)
	}
}

// TestForcedResize pins the single-event resize program: it must run clean
// and exercise the TC08 geometry rule (associativity transition observed).
func TestForcedResize(t *testing.T) {
	res, err := CheckProgram(instrument.AOS, []Event{EvResize}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("resize program violated the contract: %v", res.Violations)
	}
	if res.Coverage[tracecheck.RuleAssoc] == 0 {
		t.Fatalf("resize program did not exercise %s: %v",
			tracecheck.RuleAssoc, res.Coverage)
	}
}

// TestVerifyAllOrder pins that VerifyAll returns reports in registry order.
func TestVerifyAllOrder(t *testing.T) {
	reports, err := VerifyAll(Options{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	schemes := instrument.AllSchemes()
	if len(reports) != len(schemes) {
		t.Fatalf("got %d reports for %d schemes", len(reports), len(schemes))
	}
	for i, rep := range reports {
		if rep.Scheme != schemes[i] {
			t.Errorf("reports[%d].Scheme = %s, want %s", i, rep.Scheme, schemes[i])
		}
	}
}

// TestMaxPrograms pins truncation semantics: the cap stops the walk, marks
// the report, and suppresses dead-rule accounting.
func TestMaxPrograms(t *testing.T) {
	rep, err := Verify(instrument.AOS, Options{K: testK, MaxPrograms: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Truncated {
		t.Fatal("MaxPrograms=3 did not truncate")
	}
	if rep.Programs != 3 {
		t.Fatalf("Programs = %d, want 3", rep.Programs)
	}
	if rep.OK() {
		t.Fatal("truncated report must not be OK")
	}
	if len(rep.Dead) != 0 {
		t.Fatalf("truncated report computed dead rules: %v", rep.Dead)
	}
}

// TestEventGrammar pins the abstract grammar itself.
func TestEventGrammar(t *testing.T) {
	cases := []struct {
		seq     []Event
		signing bool
		want    bool
	}{
		{[]Event{EvAlloc, EvFree, EvAccessFreed}, true, true},
		{[]Event{EvFree}, true, false},               // nothing live
		{[]Event{EvAccessFreed}, true, false},        // nothing dangling
		{[]Event{EvAlloc, EvRealloc}, true, true},    // realloc retires old ptr
		{[]Event{EvAlloc, EvRealloc, EvAccessFreed}, true, true},
		{[]Event{EvRet}, true, false},                // underflow
		{[]Event{EvCall, EvCall, EvCall}, true, false}, // depth cap
		{[]Event{EvResize}, true, true},
		{[]Event{EvResize}, false, false}, // resize only under signing
		{[]Event{EvAlloc, EvAlloc, EvAlloc}, true, false}, // live cap
	}
	for _, c := range cases {
		if got := validSequence(c.seq, c.signing); got != c.want {
			t.Errorf("validSequence(%v, signing=%v) = %v, want %v",
				c.seq, c.signing, got, c.want)
		}
	}
}
