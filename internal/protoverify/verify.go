package protoverify

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"aos/internal/instrument"
	"aos/internal/isa"
	"aos/internal/tracecheck"
)

// DefaultK is the default enumeration depth: six events cover every
// pairwise interleaving of the protocol phases (two full alloc/free
// lifecycles, or a lifecycle nested two calls deep with a violating
// access) while staying exhaustively enumerable in CI seconds.
const DefaultK = 6

// Options parameterizes one verification run.
type Options struct {
	// K is the event-program depth bound (DefaultK when zero).
	K int
	// Mutate, when non-nil, corrupts the checker-facing stream — used to
	// seed defects and assert the contract catches them.
	Mutate MutateFunc
	// MaxPrograms caps the enumeration (0 = exhaustive). A truncated run
	// reports Truncated and skips dead-rule accounting.
	MaxPrograms uint64
}

// Counterexample is one rejected program, shrunk to a local minimum.
type Counterexample struct {
	// Events is the minimized failing program.
	Events []Event
	// OriginalLen is the length of the first failing program found.
	OriginalLen int
	// Violations are the contract violations the minimized program
	// produces.
	Violations []tracecheck.Violation
	// Trace is the exact instruction stream the checker judged (post-
	// mutation), writable as an aossim -replay trace.
	Trace []isa.Inst
}

// Report is one scheme's verification outcome.
type Report struct {
	// Scheme is the verified scheme.
	Scheme instrument.Scheme
	// K is the depth bound used.
	K int
	// Programs, Events and Insts count the enumerated maximal programs,
	// their events, and the dynamic instructions driven through the
	// contract.
	Programs uint64
	Events   uint64
	Insts    uint64
	// Coverage aggregates per-rule armed-predicate counts across the
	// enumeration (every rule ID, zeros included).
	Coverage map[string]uint64
	// Expected lists the rules the scheme's contract must exercise.
	Expected []string
	// Dead lists expected rules whose coverage stayed zero (only
	// meaningful on an untruncated, counterexample-free run).
	Dead []string
	// CE is the minimized counterexample (nil when every program was
	// accepted).
	CE *Counterexample
	// Truncated reports that MaxPrograms stopped the enumeration early.
	Truncated bool
}

// OK reports whether the scheme passed: exhaustive enumeration, no
// counterexample, no dead rules.
func (r *Report) OK() bool { return r.CE == nil && len(r.Dead) == 0 && !r.Truncated }

// ProgramResult is the outcome of checking one explicit event program.
type ProgramResult struct {
	Violations []tracecheck.Violation
	Coverage   map[string]uint64
	Insts      uint64
	Trace      []isa.Inst
}

// CheckProgram runs a single event program through the scheme's rewriter
// and contract, capturing the judged stream. The error is a harness
// failure, never a verdict.
func CheckProgram(scheme instrument.Scheme, events []Event, mutate MutateFunc) (*ProgramResult, error) {
	res, err := runProgram(scheme, events, mutate, true)
	if err != nil {
		return nil, err
	}
	return &ProgramResult{
		Violations: res.violations,
		Coverage:   res.coverage,
		Insts:      res.insts,
		Trace:      res.trace,
	}, nil
}

// Verify exhaustively enumerates every event program of exactly depth K
// for the scheme and checks each against the scheme's contract. Prefix
// programs need no separate runs: the checker is streaming, so a maximal
// program's run also witnesses every prefix up to its Finish obligations,
// and those are covered by the grammar's other extensions.
//
// Programs are independent (each runs on a fresh machine), so the leaves
// execute on a worker pool; the results are folded back in enumeration
// order and the fold stops at the first rejected program, which makes the
// parallel run observably identical to a sequential one — same
// counterexample, same counts, same coverage.
func Verify(scheme instrument.Scheme, opts Options) (*Report, error) {
	if opts.K <= 0 {
		opts.K = DefaultK
	}
	signing := scheme.SignsDataPointers()
	rep := &Report{
		Scheme:   scheme,
		K:        opts.K,
		Expected: tracecheck.ExpectedRules(scheme),
	}
	progs, truncated := enumeratePrograms(signing, opts.K, opts.MaxPrograms)

	type leaf struct {
		res runResult
		err error
		ran bool
	}
	outs := make([]leaf, len(progs))
	// minFail is the lowest index known to be rejected so far; leaves past
	// it can be skipped — the fold never reads beyond the final minimum.
	var minFail atomic.Int64
	minFail.Store(int64(len(progs)))
	idxCh := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workerCount(); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range idxCh {
				if int64(idx) > minFail.Load() {
					continue
				}
				res, err := runProgram(scheme, progs[idx], opts.Mutate, false)
				outs[idx] = leaf{res: res, err: err, ran: true}
				if err != nil || len(res.violations) > 0 {
					for {
						cur := minFail.Load()
						if int64(idx) >= cur || minFail.CompareAndSwap(cur, int64(idx)) {
							break
						}
					}
				}
			}
		}()
	}
	for idx := range progs {
		idxCh <- idx
	}
	close(idxCh)
	wg.Wait()

	// Sequential fold: identical to running the programs one by one and
	// stopping at the first rejection.
	agg := make(map[string]uint64, len(tracecheck.RuleIDs()))
	for idx := range outs {
		out := &outs[idx]
		if !out.ran {
			break // only reachable past a failing index
		}
		if out.err != nil {
			return nil, fmt.Errorf("program %v: %w", progs[idx], out.err)
		}
		rep.Programs++
		rep.Events += uint64(len(progs[idx]))
		rep.Insts += out.res.insts
		for id, n := range out.res.coverage {
			agg[id] += n
		}
		if len(out.res.violations) > 0 {
			ce, err := minimize(scheme, signing, progs[idx], opts.Mutate)
			if err != nil {
				return nil, err
			}
			rep.CE = ce
			break
		}
	}
	rep.Truncated = truncated && rep.CE == nil

	cov := make(map[string]uint64, len(tracecheck.RuleIDs()))
	for _, id := range tracecheck.RuleIDs() {
		cov[id] = agg[id]
	}
	rep.Coverage = cov
	if rep.CE == nil && !rep.Truncated {
		for _, id := range rep.Expected {
			if cov[id] == 0 {
				rep.Dead = append(rep.Dead, id)
			}
		}
	}
	return rep, nil
}

// workerCount sizes the leaf pool. Schemes verified concurrently share the
// scheduler, so this deliberately matches GOMAXPROCS rather than
// multiplying by it.
func workerCount() int {
	n := runtime.GOMAXPROCS(0)
	if n < 1 {
		n = 1
	}
	return n
}

// enumeratePrograms materializes every maximal depth-k program of the
// grammar, in the deterministic declaration order of the event alphabet,
// optionally capped at max programs.
func enumeratePrograms(signing bool, k int, max uint64) (progs [][]Event, truncated bool) {
	buf := make([]Event, 0, k)
	var walk func(s absState, depth int)
	walk = func(s absState, depth int) {
		if truncated {
			return
		}
		if depth == k {
			if max > 0 && uint64(len(progs)) >= max {
				truncated = true
				return
			}
			progs = append(progs, append([]Event(nil), buf...))
			return
		}
		for ev := Event(0); ev < numEvents; ev++ {
			if !enabled(s, signing, ev) {
				continue
			}
			buf = append(buf, ev)
			walk(apply(s, ev), depth+1)
			buf = buf[:len(buf)-1]
			if truncated {
				return
			}
		}
	}
	walk(absState{}, 0)
	return progs, truncated
}

// VerifyAll verifies every registered scheme concurrently and returns the
// reports in registry order (the order one shared test pins for
// deterministic CI logs).
func VerifyAll(opts Options) ([]*Report, error) {
	schemes := instrument.AllSchemes()
	reports := make([]*Report, len(schemes))
	errs := make([]error, len(schemes))
	var wg sync.WaitGroup
	for i, s := range schemes {
		wg.Add(1)
		go func(i int, s instrument.Scheme) {
			defer wg.Done()
			reports[i], errs[i] = Verify(s, opts)
		}(i, s)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("%s: %w", schemes[i], err)
		}
	}
	return reports, nil
}

// minimize shrinks a failing program by greedy event deletion (each
// candidate re-validated against the grammar, then re-run) and captures
// the minimized program's judged stream for replay.
func minimize(scheme instrument.Scheme, signing bool, failing []Event, mutate MutateFunc) (*Counterexample, error) {
	cur := append([]Event(nil), failing...)
	for {
		improved := false
		for i := 0; i < len(cur); i++ {
			cand := make([]Event, 0, len(cur)-1)
			cand = append(cand, cur[:i]...)
			cand = append(cand, cur[i+1:]...)
			if !validSequence(cand, signing) {
				continue
			}
			res, err := runProgram(scheme, cand, mutate, false)
			if err != nil {
				continue // candidate not executable; keep shrinking elsewhere
			}
			if len(res.violations) > 0 {
				cur = cand
				improved = true
				break
			}
		}
		if !improved {
			break
		}
	}
	final, err := runProgram(scheme, cur, mutate, true)
	if err != nil {
		return nil, fmt.Errorf("protoverify: minimized program no longer executable: %w", err)
	}
	return &Counterexample{
		Events:      cur,
		OriginalLen: len(failing),
		Violations:  final.violations,
		Trace:       final.trace,
	}, nil
}
