package tracecheck_test

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"aos"
	"aos/internal/core"
	"aos/internal/instrument"
	"aos/internal/isa"
	"aos/internal/pa"
	"aos/internal/tracecheck"
)

// capture records a copy of every emitted instruction.
type capture struct{ insts []isa.Inst }

func (c *capture) Emit(in *isa.Inst) { c.insts = append(c.insts, *in) }

// replay feeds a recorded stream through a fresh checker.
func replay(t *testing.T, scheme instrument.Scheme, insts []isa.Inst) *tracecheck.Checker {
	t.Helper()
	c := tracecheck.New(scheme)
	for i := range insts {
		c.Emit(&insts[i])
	}
	c.Finish()
	return c
}

// rules collects the distinct rule IDs a checker recorded.
func rules(c *tracecheck.Checker) map[string]int {
	m := map[string]int{}
	for _, v := range c.Violations() {
		m[v.Rule]++
	}
	return m
}

// wantRule asserts the checker recorded at least one violation under the
// given rule, and none under any other rule unless allowCascade is set
// (mutations legitimately break downstream invariants too).
func wantRule(t *testing.T, c *tracecheck.Checker, rule string, allowCascade bool) {
	t.Helper()
	got := rules(c)
	if got[rule] == 0 {
		t.Fatalf("expected a %s violation, got %v\nreport:\n%s",
			rule, got, (&tracecheck.Error{Violations: c.Violations(), Total: c.Total()}).Report())
	}
	if !allowCascade && len(got) > 1 {
		t.Fatalf("expected only %s violations, got %v", rule, got)
	}
}

// aosStream runs a small deterministic AOS program on the real machine and
// returns its recorded stream: three mallocs, accesses, a call/ret pair,
// pointer arithmetic, and three frees.
func aosStream(t *testing.T, scheme instrument.Scheme) []isa.Inst {
	t.Helper()
	m, err := core.New(core.Config{Scheme: scheme})
	if err != nil {
		t.Fatal(err)
	}
	cap := &capture{}
	m.SetSink(cap)
	var ptrs []core.Ptr
	for _, size := range []uint64{32, 64, 4096} {
		p, err := m.Malloc(size)
		if err != nil {
			t.Fatal(err)
		}
		ptrs = append(ptrs, p)
	}
	for _, p := range ptrs {
		if err := m.Load(p, 8, core.AccessOpts{}); err != nil {
			t.Fatal(err)
		}
		if err := m.Store(p, 16, core.AccessOpts{}); err != nil {
			t.Fatal(err)
		}
	}
	m.Call()
	m.Compute(4, core.DepChain)
	m.Ret()
	q := m.PointerArith(ptrs[2], 128)
	if err := m.Load(q, 0, core.AccessOpts{}); err != nil {
		t.Fatal(err)
	}
	for _, p := range ptrs {
		if err := m.Free(p); err != nil {
			t.Fatal(err)
		}
	}
	return cap.insts
}

// TestCleanMachineStreams verifies the real functional machine satisfies
// the protocol under every registered scheme.
func TestCleanMachineStreams(t *testing.T) {
	for _, s := range instrument.AllSchemes() {
		s := s
		t.Run(s.String(), func(t *testing.T) {
			c := replay(t, s, aosStream(t, s))
			if c.Total() != 0 {
				t.Fatalf("clean %s stream flagged:\n%s", s,
					(&tracecheck.Error{Violations: c.Violations(), Total: c.Total()}).Report())
			}
			if err := c.Err(); err != nil {
				t.Fatalf("Err() = %v on a clean stream", err)
			}
		})
	}
}

// TestMutationDroppedBndstr is the acceptance-criteria mutation: deleting
// the first bndstr from a valid AOS stream must be caught as a
// pacma-pairing violation.
func TestMutationDroppedBndstr(t *testing.T) {
	insts := aosStream(t, instrument.AOS)
	mutated := insts[:0:0]
	dropped := false
	for _, in := range insts {
		if !dropped && in.Op == isa.OpBndstr {
			dropped = true
			continue
		}
		mutated = append(mutated, in)
	}
	if !dropped {
		t.Fatal("no bndstr in the AOS stream")
	}
	c := replay(t, instrument.AOS, mutated)
	wantRule(t, c, tracecheck.RulePacmaBndstr, true)
}

// TestMutationDroppedXpacm: deleting the xpacm after a successful bndclr
// breaks the free protocol.
func TestMutationDroppedXpacm(t *testing.T) {
	insts := aosStream(t, instrument.AOS)
	mutated := insts[:0:0]
	dropped := false
	for i, in := range insts {
		if !dropped && in.Op == isa.OpXpacm && i > 0 && insts[i-1].Op == isa.OpBndclr {
			dropped = true
			continue
		}
		mutated = append(mutated, in)
	}
	if !dropped {
		t.Fatal("no bndclr-adjacent xpacm in the AOS stream")
	}
	c := replay(t, instrument.AOS, mutated)
	wantRule(t, c, tracecheck.RuleFreeProtocol, true)
}

// TestMutationDroppedResign: deleting the re-signing pacma after a free
// leaves the temporal-safety lock missing; the next allocation's pacma (or
// the stream end) must expose it.
func TestMutationDroppedResign(t *testing.T) {
	insts := aosStream(t, instrument.AOS)
	// The re-signing pacma is the pacma not followed by a bndstr.
	mutated := insts[:0:0]
	dropped := false
	for i, in := range insts {
		if !dropped && in.Op == isa.OpPacma &&
			(i+1 >= len(insts) || insts[i+1].Op != isa.OpBndstr) {
			dropped = true
			continue
		}
		mutated = append(mutated, in)
	}
	if !dropped {
		t.Fatal("no re-signing pacma in the AOS stream")
	}
	c := replay(t, instrument.AOS, mutated)
	got := rules(c)
	if got[tracecheck.RuleFreeProtocol] == 0 && got[tracecheck.RuleStreamEnd] == 0 {
		t.Fatalf("dropped re-sign not caught: %v", got)
	}
}

// TestOpWhitelist: a Watchdog stream must never contain pacma; a Baseline
// stream must not contain Watchdog micro-ops.
func TestOpWhitelist(t *testing.T) {
	c := tracecheck.New(instrument.Watchdog)
	c.Emit(&isa.Inst{Op: isa.OpPacma, Addr: pa.Compose(0x1000, 7, 1),
		Dest: isa.RegNone, Src1: isa.RegNone, Src2: isa.RegNone})
	got := rules(c)
	if got[tracecheck.RuleOpWhitelist] == 0 {
		t.Fatalf("pacma in a Watchdog stream not flagged: %v", got)
	}

	c = tracecheck.New(instrument.Baseline)
	c.Emit(&isa.Inst{Op: isa.OpWDCheck, Dest: isa.RegNone, Src1: isa.RegNone, Src2: isa.RegNone})
	if rules(c)[tracecheck.RuleOpWhitelist] == 0 {
		t.Fatal("wdcheck in a Baseline stream not flagged")
	}

	// An op byte outside the ISA entirely (corrupt trace).
	c = tracecheck.New(instrument.AOS)
	c.Emit(&isa.Inst{Op: isa.Op(200), Dest: isa.RegNone, Src1: isa.RegNone, Src2: isa.RegNone})
	if rules(c)[tracecheck.RuleOpWhitelist] == 0 {
		t.Fatal("out-of-ISA op byte not flagged")
	}
}

// Hand-crafted geometry for synthetic streams.
const (
	synthBase = uint64(0x7000_0000)
	synthVA   = uint64(0x2000_0000_0000)
)

// synthAlloc returns a valid pacma+bndstr pair for a 64-byte chunk.
func synthAlloc(pac uint16, way int8, assoc uint8) [2]isa.Inst {
	addr := pa.Compose(synthVA, pac, 2)
	row := synthBase + uint64(pac)<<6*uint64(assoc)
	_ = row
	return [2]isa.Inst{
		{Op: isa.OpPacma, Addr: addr, Size: 64, Dest: 1, Src1: isa.RegNone, Src2: isa.RegNone},
		{Op: isa.OpBndstr, Addr: addr, Size: 64, Signed: true, PAC: pac, AHC: 2,
			HomeWay: way, Assoc: assoc, RowAddr: rowAddr(pac, assoc),
			Dest: isa.RegNone, Src1: 1, Src2: isa.RegNone},
	}
}

// rowAddr mirrors Eq. 1+2 for the synthetic table base.
func rowAddr(pac uint16, assoc uint8) uint64 {
	shift := uint(6)
	for a := assoc; a > 1; a >>= 1 {
		shift++
	}
	return synthBase + uint64(pac)<<shift
}

func TestUseAfterClear(t *testing.T) {
	pair := synthAlloc(7, 0, 1)
	addr := pair[0].Addr
	insts := []isa.Inst{
		pair[0], pair[1],
		// bndclr + xpacm + re-sign: a complete, legal free.
		{Op: isa.OpBndclr, Addr: addr, Signed: true, PAC: 7, AHC: 2,
			HomeWay: 0, Assoc: 1, RowAddr: rowAddr(7, 1), Dest: isa.RegNone, Src1: 1, Src2: isa.RegNone},
		{Op: isa.OpXpacm, Dest: 1, Src1: 1, Src2: isa.RegNone},
		{Op: isa.OpPacma, Addr: pa.Compose(synthVA, 3, 3), Dest: 1, Src1: 1, Src2: isa.RegNone},
		// The machine then claims a signed access still hits way 0: UAF
		// missed by the simulated hardware.
		{Op: isa.OpLoad, Addr: addr, Size: 8, Signed: true, PAC: 7, AHC: 2,
			HomeWay: 0, Assoc: 1, RowAddr: rowAddr(7, 1), Dest: 2, Src1: isa.RegNone, Src2: isa.RegNone},
	}
	// The re-sign pacma must target the freed VA; Compose with pac 3 above
	// deliberately keeps the same VA (the lock re-signs the same chunk).
	insts[4].Addr = pa.Compose(synthVA, 3, 3)
	c := replay(t, instrument.AOS, insts)
	wantRule(t, c, tracecheck.RuleUseAfterClear, true)
}

func TestSignedAccessWithoutBounds(t *testing.T) {
	addr := pa.Compose(synthVA, 9, 1)
	c := replay(t, instrument.AOS, []isa.Inst{
		{Op: isa.OpLoad, Addr: addr, Size: 8, Signed: true, PAC: 9, AHC: 1,
			HomeWay: 2, Assoc: 4, RowAddr: rowAddr(9, 4), Dest: 1, Src1: isa.RegNone, Src2: isa.RegNone},
	})
	wantRule(t, c, tracecheck.RuleSignedAccess, true)
}

func TestWayRange(t *testing.T) {
	pair := synthAlloc(5, 3, 2) // way 3 in a 2-way row
	c := replay(t, instrument.AOS, pair[:])
	wantRule(t, c, tracecheck.RuleWayRange, true)
}

func TestAssocShrink(t *testing.T) {
	a := synthAlloc(1, 0, 4)
	b := synthAlloc(2, 0, 2) // table shrank: impossible
	c := replay(t, instrument.AOS, []isa.Inst{a[0], a[1], b[0], b[1]})
	if rules(c)[tracecheck.RuleAssoc] == 0 {
		t.Fatalf("assoc shrink not flagged: %v", rules(c))
	}
}

func TestAssocGrowthNeedsResizeFlag(t *testing.T) {
	a := synthAlloc(1, 0, 1)
	b := synthAlloc(2, 1, 2) // grew 1->2 without Resize
	c := replay(t, instrument.AOS, []isa.Inst{a[0], a[1], b[0], b[1]})
	if rules(c)[tracecheck.RuleAssoc] == 0 {
		t.Fatalf("unflagged resize not caught: %v", rules(c))
	}
	// With the flag set the growth is legal.
	b[1].Resize = true
	c = replay(t, instrument.AOS, []isa.Inst{a[0], a[1], b[0], b[1]})
	if c.Total() != 0 {
		t.Fatalf("flagged resize wrongly rejected:\n%s",
			(&tracecheck.Error{Violations: c.Violations(), Total: c.Total()}).Report())
	}
}

func TestPACFieldMismatch(t *testing.T) {
	pair := synthAlloc(4, 0, 1)
	pair[1].PAC = 5 // bndstr metadata disagrees with the address bits
	c := replay(t, instrument.AOS, pair[:])
	got := rules(c)
	if got[tracecheck.RulePACFields] == 0 && got[tracecheck.RuleBndstr] == 0 {
		t.Fatalf("PAC field mismatch not flagged: %v", got)
	}
}

func TestRegUseBeforeDef(t *testing.T) {
	c := replay(t, instrument.Baseline, []isa.Inst{
		{Op: isa.OpALU, Dest: 3, Src1: 17, Src2: isa.RegNone}, // r17 never defined
	})
	wantRule(t, c, tracecheck.RuleRegDef, true)
	// Register 0 is the machine's initial/zero register: always legal.
	c = replay(t, instrument.Baseline, []isa.Inst{
		{Op: isa.OpALU, Dest: 3, Src1: 0, Src2: isa.RegNone},
	})
	if c.Total() != 0 {
		t.Fatal("register 0 wrongly flagged as undefined")
	}
}

func TestCallRetNesting(t *testing.T) {
	c := replay(t, instrument.Baseline, []isa.Inst{
		{Op: isa.OpRet, Dest: isa.RegNone, Src1: 0, Src2: isa.RegNone},
	})
	wantRule(t, c, tracecheck.RuleCallRet, true)
}

func TestRASPairing(t *testing.T) {
	c := replay(t, instrument.PA, []isa.Inst{
		{Op: isa.OpCall, Dest: isa.RegNone, Src1: isa.RegNone, Src2: isa.RegNone},
	})
	got := rules(c)
	if got[tracecheck.RuleRASPairing] == 0 {
		t.Fatalf("unpaired call under PA not flagged: %v", got)
	}
}

func TestStreamEndMidProtocol(t *testing.T) {
	addr := pa.Compose(synthVA, 2, 1)
	c := replay(t, instrument.AOS, []isa.Inst{
		{Op: isa.OpPacma, Addr: addr, Size: 32, Dest: 1, Src1: isa.RegNone, Src2: isa.RegNone},
	})
	wantRule(t, c, tracecheck.RuleStreamEnd, true)
}

// TestMTETaggingPairing covers TC14: irg must be chased by its stg burst,
// a stray stg is flagged, and a stream may not end between the two. The
// ops are also whitelist-checked per scheme.
func TestMTETaggingPairing(t *testing.T) {
	// irg followed by something other than stg: the granule retag is missing.
	c := replay(t, instrument.MTE, []isa.Inst{
		{Op: isa.OpIRG, Dest: 1, Src1: isa.RegNone, Src2: isa.RegNone},
		{Op: isa.OpNop, Dest: isa.RegNone, Src1: isa.RegNone, Src2: isa.RegNone},
	})
	wantRule(t, c, tracecheck.RuleMTETagging, false)

	// stg with no irg (or allocator return) before it.
	c = replay(t, instrument.MTE, []isa.Inst{
		{Op: isa.OpNop, Dest: isa.RegNone, Src1: isa.RegNone, Src2: isa.RegNone},
		{Op: isa.OpSTG, Addr: synthBase, Size: 16, Dest: isa.RegNone, Src1: isa.RegNone, Src2: isa.RegNone},
	})
	wantRule(t, c, tracecheck.RuleMTETagging, false)

	// Stream ends with the irg still awaiting its stg.
	c = replay(t, instrument.MTE, []isa.Inst{
		{Op: isa.OpIRG, Dest: 1, Src1: isa.RegNone, Src2: isa.RegNone},
	})
	wantRule(t, c, tracecheck.RuleStreamEnd, true)

	// A valid burst is clean: irg, stg, stg.
	c = replay(t, instrument.MTE, []isa.Inst{
		{Op: isa.OpIRG, Dest: 1, Src1: isa.RegNone, Src2: isa.RegNone},
		{Op: isa.OpSTG, Addr: synthBase, Size: 16, Dest: isa.RegNone, Src1: 1, Src2: isa.RegNone},
		{Op: isa.OpSTG, Addr: synthBase + 16, Size: 16, Dest: isa.RegNone, Src1: 1, Src2: isa.RegNone},
	})
	if c.Total() != 0 {
		t.Fatalf("clean tagging burst flagged:\n%s",
			(&tracecheck.Error{Violations: c.Violations(), Total: c.Total()}).Report())
	}

	// Tagging ops never belong in a non-tagging stream (TC01).
	c = tracecheck.New(instrument.AOS)
	c.Emit(&isa.Inst{Op: isa.OpIRG, Dest: 1, Src1: isa.RegNone, Src2: isa.RegNone})
	if rules(c)[tracecheck.RuleOpWhitelist] == 0 {
		t.Fatal("irg in an AOS stream not flagged")
	}
}

// TestViolationCap: the checker keeps counting past the recording cap.
func TestViolationCap(t *testing.T) {
	c := tracecheck.New(instrument.Baseline)
	c.SetMaxViolations(3)
	for i := 0; i < 10; i++ {
		c.Emit(&isa.Inst{Op: isa.OpWDCheck, Dest: isa.RegNone, Src1: isa.RegNone, Src2: isa.RegNone})
	}
	if len(c.Violations()) != 3 || c.Total() != 10 {
		t.Fatalf("cap: recorded %d, total %d; want 3, 10", len(c.Violations()), c.Total())
	}
	err := c.Err()
	if err == nil || !strings.Contains(err.Error(), "10 protocol violation") {
		t.Fatalf("Err() = %v", err)
	}
}

// TestSchemeWorkloadSweep runs every scheme over every standard workload
// with the sanitizer teed in: the full functional machine must satisfy the
// protocol everywhere, not just in toy programs.
func TestSchemeWorkloadSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep is the long e2e test")
	}
	profiles := append(aos.SPECWorkloads(), aos.RealWorldWorkloads()...)
	for _, s := range aos.AllSchemes() {
		for _, w := range profiles {
			s, w := s, w
			t.Run(fmt.Sprintf("%s/%s", s, w.Name), func(t *testing.T) {
				t.Parallel()
				sys, err := aos.NewSystem(aos.Options{Scheme: s, Seed: 1})
				if err != nil {
					t.Fatal(err)
				}
				chk := tracecheck.New(s)
				sys.TeeSink(chk)
				p := w.Clone()
				p.Instructions = 12_000
				if err := p.Run(sys.Machine(), 1); err != nil {
					t.Fatal(err)
				}
				chk.Finish()
				if err := chk.Err(); err != nil {
					t.Fatalf("%v\n%s", err, err.(*tracecheck.Error).Report())
				}
			})
		}
	}
}

// TestJobCorrelationInMessages: a checker stamped with the serving
// layer's job id renders it in its error and every report line, so a
// violation in a daemon log joins the job's trace/event trail.
func TestJobCorrelationInMessages(t *testing.T) {
	c := tracecheck.New(instrument.Baseline)
	c.SetJob("deadbeef01")
	c.Emit(&isa.Inst{Op: isa.OpWDCheck, Dest: isa.RegNone, Src1: isa.RegNone, Src2: isa.RegNone})
	c.Finish()
	err := c.Err()
	if err == nil {
		t.Fatal("want a whitelist violation")
	}
	if msg := err.Error(); !strings.Contains(msg, "job deadbeef01") {
		t.Fatalf("error message lacks job id: %q", msg)
	}
	var te *tracecheck.Error
	if !errors.As(err, &te) {
		t.Fatalf("err is %T, want *tracecheck.Error", err)
	}
	if te.Job != "deadbeef01" {
		t.Fatalf("Error.Job = %q", te.Job)
	}
	for _, line := range strings.Split(strings.TrimSpace(te.Report()), "\n") {
		if !strings.Contains(line, "job deadbeef01") {
			t.Fatalf("report line lacks job id: %q", line)
		}
	}

	// Batch runs (no job id) keep the original message shape.
	c2 := tracecheck.New(instrument.Baseline)
	c2.Emit(&isa.Inst{Op: isa.OpWDCheck, Dest: isa.RegNone, Src1: isa.RegNone, Src2: isa.RegNone})
	c2.Finish()
	if msg := c2.Err().Error(); strings.Contains(msg, "job ") {
		t.Fatalf("jobless error mentions a job: %q", msg)
	}
}
