package tracecheck

import "aos/internal/instrument"

// Rule coverage: the bounded model checker (internal/protoverify) needs to
// know not just that a stream was accepted but that the acceptance was
// meaningful — that each contract rule's predicate actually evaluated on
// armed state at least once across the enumerated programs. A rule whose
// counter stays zero over an exhaustive bounded enumeration is dead for
// that scheme: either the scheme can never arm it (fine, it is then not in
// ExpectedRules) or the event grammar fails to reach it (a verification
// gap).
//
// "Exercised" is defined per rule as: the checker evaluated the rule's
// predicate at a point where it could in principle have fired — e.g. TC02
// counts when a pacma is pending, not merely because ruleAOSPairing was
// invoked. Every report() also counts for its rule, so a firing rule is
// never dead.

// Rule indices, in TC order. numRules bounds the coverage array.
const (
	idxOpWhitelist = iota
	idxPacmaBndstr
	idxBndstr
	idxFreeProtocol
	idxUseAfterClear
	idxSignedAccess
	idxWayRange
	idxAssoc
	idxPACFields
	idxRegDef
	idxCallRet
	idxRASPairing
	idxStreamEnd
	idxMTETagging
	numRules
)

// ruleIDs maps rule index -> stable identifier, in TC order.
var ruleIDs = [numRules]string{
	idxOpWhitelist:   RuleOpWhitelist,
	idxPacmaBndstr:   RulePacmaBndstr,
	idxBndstr:        RuleBndstr,
	idxFreeProtocol:  RuleFreeProtocol,
	idxUseAfterClear: RuleUseAfterClear,
	idxSignedAccess:  RuleSignedAccess,
	idxWayRange:      RuleWayRange,
	idxAssoc:         RuleAssoc,
	idxPACFields:     RulePACFields,
	idxRegDef:        RuleRegDef,
	idxCallRet:       RuleCallRet,
	idxRASPairing:    RuleRASPairing,
	idxStreamEnd:     RuleStreamEnd,
	idxMTETagging:    RuleMTETagging,
}

// ruleIdx maps stable identifier -> rule index.
var ruleIdx = func() map[string]int {
	m := make(map[string]int, numRules)
	for i, id := range ruleIDs {
		m[id] = i
	}
	return m
}()

// RuleIDs returns every rule identifier in TC order.
func RuleIDs() []string {
	ids := make([]string, numRules)
	copy(ids, ruleIDs[:])
	return ids
}

// explanations holds the one-paragraph human explanation per rule,
// rendered by aosverify under counterexamples.
var explanations = map[string]string{
	RuleOpWhitelist: "Each scheme may only emit the instruction classes its " +
		"instrumentation is defined over; a foreign op (e.g. pacma in a Watchdog " +
		"stream) means the rewriter dispatched on the wrong scheme flags.",
	RulePacmaBndstr: "Fig 7a: the allocation-side pacma must be immediately " +
		"followed by the bndstr that inserts the same signed pointer's bounds — " +
		"any instruction in between leaves a signed pointer without bounds.",
	RuleBndstr: "A bndstr must match its pending pacma (same VA and PAC), be " +
		"marked signed, report a valid home way, and carry encodable bounds; a " +
		"double insert for live bounds is also a protocol break.",
	RuleFreeProtocol: "Fig 7b: a successful bndclr must be immediately followed " +
		"by the xpacm strip, and the freed base must be re-signed (pacma with xzr " +
		"size — the temporal-safety lock) before any other bounds operation.",
	RuleUseAfterClear: "Temporal safety: once an allocation's bounds are cleared, " +
		"no signed access may resolve to a live HBT way for it, and a bndclr must " +
		"not claim a way for bounds that are no longer live (undetected UAF or " +
		"double free).",
	RuleSignedAccess: "Every checked access's reported HomeWay must agree with " +
		"the shadow bounds table: a hit requires covering live bounds in that way, " +
		"a miss requires that none cover the address.",
	RuleWayRange: "A reported HBT way index must fall inside the reported " +
		"associativity (Eq. 1 geometry).",
	RuleAssoc: "The HBT only grows, by power-of-two doubling announced with a " +
		"resize-flagged bndstr, and RowAddr must stay consistent with the derived " +
		"table base (Eq. 1+2).",
	RulePACFields: "The Signed/PAC/AHC instruction fields must equal the bits " +
		"embedded in the instruction's address, and non-signing schemes must " +
		"never mark an access signed.",
	RuleRegDef: "Dependency source registers must be defined before use " +
		"(register 0 is the always-ready initial register).",
	RuleCallRet: "Returns must never outnumber calls at any stream point.",
	RuleRASPairing: "Fig 3: under return-address signing every call is " +
		"immediately preceded by pacia and every ret by autia.",
	RuleStreamEnd: "The stream must not end mid-protocol: no pacma awaiting its " +
		"bndstr, no free missing its xpacm or re-signing lock, no irg awaiting " +
		"its stg.",
	RuleMTETagging: "MTE tagging sequences: an irg is immediately followed by " +
		"its first stg, and stg only continues a tagging burst (after irg, " +
		"another stg, or the allocator ret of a free).",
}

// Explain returns the human explanation for a rule identifier ("" for an
// unknown rule). aosverify prints it under counterexamples and coverage
// tables.
func Explain(rule string) string { return explanations[rule] }

// ExpectedRules returns the rule identifiers a scheme's contract is
// expected to exercise under an exhaustive bounded enumeration of heap
// events (TC order). protoverify fails a scheme whose coverage leaves any
// expected rule dead.
func ExpectedRules(s instrument.Scheme) []string {
	ids := []string{RuleOpWhitelist}
	if s.SignsDataPointers() {
		ids = append(ids, RulePacmaBndstr, RuleBndstr, RuleFreeProtocol,
			RuleUseAfterClear, RuleSignedAccess, RuleWayRange, RuleAssoc)
	}
	ids = append(ids, RulePACFields, RuleRegDef, RuleCallRet)
	if s.HasReturnAddressSigning() {
		ids = append(ids, RuleRASPairing)
	}
	ids = append(ids, RuleStreamEnd)
	if s.UsesMemoryTagging() {
		ids = append(ids, RuleMTETagging)
	}
	return ids
}

// EnableCoverage turns on per-rule coverage counting for this checker.
// Off by default: the always-on sanitizer path pays only a nil check per
// touch point.
func (c *Checker) EnableCoverage() {
	if c.cov == nil {
		c.cov = make([]uint64, numRules)
	}
}

// Coverage returns the per-rule exercise counts accumulated so far (nil
// when coverage was never enabled). Keys are the stable rule identifiers.
func (c *Checker) Coverage() map[string]uint64 {
	if c.cov == nil {
		return nil
	}
	m := make(map[string]uint64, numRules)
	for i, n := range c.cov {
		m[ruleIDs[i]] = n
	}
	return m
}

// touch records that a rule's predicate evaluated on armed state.
func (c *Checker) touch(i int) {
	if c.cov != nil {
		c.cov[i]++
	}
}
