package tracecheck

import (
	"aos/internal/instrument"
	"aos/internal/isa"
)

// Rule is one stateful protocol check, run on every instruction in
// stream order. Rules read and update the Checker's shadow state and
// report violations through Checker.report.
type Rule func(c *Checker, in *isa.Inst)

// FinishRule runs once at end of stream (Checker.Finish) to flag
// protocols left dangling. end is the synthetic end-of-stream marker
// violations are attributed to.
type FinishRule func(c *Checker, end *isa.Inst)

// Contract bundles one scheme's trace obligations: the op whitelist and
// the ordered rule set the checker runs for that scheme. Contracts are
// registered per scheme — adding a backend means assembling (or
// extending) its contract here, not growing a global scheme-switch.
type Contract struct {
	// Allowed is the op whitelist (TC01).
	Allowed [isa.NumOps]bool
	// Rules run in order on every instruction.
	Rules []Rule
	// Finish rules run once at end of stream.
	Finish []FinishRule
}

// contracts is the per-scheme contract registry, assembled once for
// every registered scheme.
var contracts = func() map[instrument.Scheme]*Contract {
	m := make(map[instrument.Scheme]*Contract, len(instrument.AllSchemes()))
	for _, s := range instrument.AllSchemes() {
		m[s] = buildContract(s)
	}
	return m
}()

// contractFor returns the registered contract for a scheme, assembling a
// fresh one for unregistered (out-of-range) values so the checker stays
// usable on corrupt inputs.
func contractFor(s instrument.Scheme) *Contract {
	if ct, ok := contracts[s]; ok {
		return ct
	}
	return buildContract(s)
}

// buildContract assembles a scheme's contract from its descriptor
// predicates. Rule order is part of the contract: it fixes the order in
// which one instruction's violations are reported.
func buildContract(s instrument.Scheme) *Contract {
	ct := &Contract{Allowed: allowedOps(s)}
	ct.Rules = append(ct.Rules, ruleRegDef, ruleAOSPairing)
	if s.HasReturnAddressSigning() {
		ct.Rules = append(ct.Rules, ruleRASPairing)
	}
	ct.Rules = append(ct.Rules, ruleFields, ruleControlFlow, ruleAOSState)
	ct.Finish = append(ct.Finish, finishAOS)
	if s.UsesMemoryTagging() {
		ct.Rules = append(ct.Rules, ruleMTETagging)
		ct.Finish = append(ct.Finish, finishMTE)
	}
	return ct
}

// --- universal rules ---

// ruleRegDef enforces use-before-def on the dependency registers (TC10).
func ruleRegDef(c *Checker, in *isa.Inst) { c.checkRegs(in) }

// ruleFields verifies Signed/PAC/AHC metadata against the address bits
// (TC09), including that non-signing schemes never mark accesses signed.
func ruleFields(c *Checker, in *isa.Inst) { c.checkFields(in) }

// ruleControlFlow tracks call/ret nesting (TC11).
func ruleControlFlow(c *Checker, in *isa.Inst) {
	switch in.Op {
	case isa.OpCall:
		c.touch(idxCallRet)
		c.callDepth++
	case isa.OpRet:
		c.touch(idxCallRet)
		c.callDepth--
		if c.callDepth < 0 {
			c.report(in, RuleCallRet, "ret without a matching call (depth %d)", c.callDepth)
			c.callDepth = 0
		}
	default:
		// Only call/ret move the nesting depth.
	}
}

// --- AOS-protocol rules (Fig 7) ---
//
// These are part of every contract: they are inert unless AOS ops appear
// in the stream, and a foreign pacma in, say, a Watchdog trace should
// produce the same protocol diagnostics on top of its TC01 whitelist hit.

// ruleAOSPairing enforces the adjacency contracts: pacma→bndstr on the
// allocation side and bndclr→xpacm on the free side (TC02/TC04).
func ruleAOSPairing(c *Checker, in *isa.Inst) {
	if c.pending != nil {
		c.touch(idxPacmaBndstr)
	}
	if c.phase != freeIdle {
		c.touch(idxFreeProtocol)
	}
	if c.pending != nil && in.Op != isa.OpBndstr {
		c.report(in, RulePacmaBndstr,
			"pacma at inst %d (va %#x) not followed by its bndstr", c.pending.idx, c.pending.va)
		c.pending = nil
	}
	if c.phase == freeWantXpacm && in.Op != isa.OpXpacm {
		c.report(in, RuleFreeProtocol,
			"bndclr at inst %d (va %#x) not followed by xpacm before %s", c.freeIdx, c.freeVA, in.Op)
		c.phase = freeIdle
	}
}

// ruleAOSState drives the shadow bounds table and the free-protocol
// state machine (TC03/TC04/TC05/TC06/TC07/TC08).
func ruleAOSState(c *Checker, in *isa.Inst) {
	switch in.Op {
	case isa.OpPacma:
		c.onPacma(in)
	case isa.OpBndstr:
		c.onBndstr(in)
	case isa.OpBndclr:
		c.onBndclr(in)
	case isa.OpXpacm:
		if c.phase == freeWantXpacm {
			c.phase = freeWantResign
		}
	case isa.OpLoad, isa.OpStore:
		if in.Signed {
			c.onSignedAccess(in)
		}
	default:
		// Remaining op classes carry no AOS protocol state.
	}
}

// finishAOS flags streams that stop mid-protocol (TC13).
func finishAOS(c *Checker, end *isa.Inst) {
	if c.pending != nil {
		c.report(end, RuleStreamEnd,
			"stream ended with pacma at inst %d still awaiting its bndstr (va %#x)",
			c.pending.idx, c.pending.va)
		c.pending = nil
	}
	switch c.phase {
	case freeWantXpacm:
		c.report(end, RuleStreamEnd,
			"stream ended after bndclr at inst %d without the xpacm strip (va %#x)", c.freeIdx, c.freeVA)
	case freeWantResign:
		c.report(end, RuleStreamEnd,
			"stream ended without re-signing freed chunk %#x (bndclr at inst %d)", c.freeVA, c.freeIdx)
	default:
		// freeIdle: nothing dangling.
	}
	c.phase = freeIdle
}

// --- RAS rules (Fig 3) ---

// ruleRASPairing: under return-address signing, a call must be
// immediately preceded by pacia and a ret by autia (TC12).
func ruleRASPairing(c *Checker, in *isa.Inst) {
	switch in.Op {
	case isa.OpCall:
		c.touch(idxRASPairing)
		if !c.havePrev || c.prevOp != isa.OpPacia {
			c.report(in, RuleRASPairing, "call without a preceding pacia under %s", c.scheme)
		}
	case isa.OpRet:
		c.touch(idxRASPairing)
		if !c.havePrev || c.prevOp != isa.OpAutia {
			c.report(in, RuleRASPairing, "ret without a preceding autia under %s", c.scheme)
		}
	default:
		// Only call/ret sites carry the RAS pairing obligation.
	}
}

// --- MTE rules ---

// ruleMTETagging enforces the tagging sequences (TC14): an irg must be
// immediately followed by its first stg (allocation-side retag), and an
// stg may only continue a tagging burst — after irg, another stg, or the
// ret closing the allocator call of a free (free-side retag to 0).
func ruleMTETagging(c *Checker, in *isa.Inst) {
	if c.mteWantSTG || in.Op == isa.OpIRG || in.Op == isa.OpSTG {
		c.touch(idxMTETagging)
	}
	if c.mteWantSTG && in.Op != isa.OpSTG {
		c.report(in, RuleMTETagging, "irg not followed by its stg (granule retag missing)")
		c.mteWantSTG = false
	}
	switch in.Op {
	case isa.OpIRG:
		c.mteWantSTG = true
	case isa.OpSTG:
		c.mteWantSTG = false
		if !c.havePrev || (c.prevOp != isa.OpIRG && c.prevOp != isa.OpSTG && c.prevOp != isa.OpRet) {
			c.report(in, RuleMTETagging,
				"stg outside a tagging sequence (previous op %s)", c.prevOp)
		}
	default:
		// Other ops carry no tagging obligation (handled above when an
		// irg is dangling).
	}
}

// finishMTE flags a stream ending between an irg and its stg.
func finishMTE(c *Checker, end *isa.Inst) {
	if c.mteWantSTG {
		c.report(end, RuleStreamEnd, "stream ended with irg awaiting its stg")
		c.mteWantSTG = false
	}
}
