// Package tracecheck is a streaming sanitizer for the dynamic-instruction
// protocol the functional machine (internal/core) promises the timing model
// (internal/cpu). The paper's evaluation is only meaningful if the
// instrumentation contract of §IV/Fig 7 actually holds in every emitted
// stream — pacma+bndstr after malloc, bndclr+xpacm before free and a
// re-signing pacma after it, no signed dereference resolving to a live HBT
// way once its bounds were cleared — so the checker enforces that contract
// always-on, the way PACSan/CryptSan-style sanitizers validate PA-based
// systems.
//
// The Checker implements isa.Sink, so it can tee any live functional run
// (aos.Options.Sanitize, aossim's default mode, aosbench -sanitize) or a
// replayed trace. It keeps an independent shadow bounds table built from
// the bndstr/bndclr stream itself — using the very same hbt compression
// and coverage predicates the real table uses — and cross-checks every
// signed access's resolved HomeWay against it. Violations are structured
// (op index, PC, rule ID, explanation) and never panic or abort the run.
package tracecheck

import (
	"fmt"
	"math/bits"
	"strings"

	"aos/internal/hbt"
	"aos/internal/instrument"
	"aos/internal/isa"
	"aos/internal/pa"
)

// Rule identifiers. Stable strings: tests, CI greps and docs refer to them.
const (
	// RuleOpWhitelist fires when a scheme's stream contains an op class the
	// scheme must never emit (e.g. OpPacma in a Watchdog trace), or an op
	// byte outside the ISA entirely (corrupt trace).
	RuleOpWhitelist = "TC01-op-whitelist"
	// RulePacmaBndstr fires when an allocation-side pacma is not
	// immediately followed by a bndstr for the same signed pointer (Fig 7a).
	RulePacmaBndstr = "TC02-pacma-bndstr"
	// RuleBndstr fires on a bndstr whose fields are inconsistent (not
	// signed, PAC/AHC not matching the address bits, way out of range, or
	// no pacma pending).
	RuleBndstr = "TC03-bndstr"
	// RuleFreeProtocol fires when the free-side sequence breaks: a
	// successful bndclr must be followed by xpacm, and the allocation must
	// be re-signed (pacma with the freed base) before any further bounds op
	// (Fig 7b temporal-safety lock).
	RuleFreeProtocol = "TC04-free-protocol"
	// RuleUseAfterClear fires when a signed access reports a live HomeWay
	// for an allocation whose bounds were already cleared — the exact
	// temporal-safety hole the paper closes.
	RuleUseAfterClear = "TC05-use-after-clear"
	// RuleSignedAccess fires when a signed access's reported HomeWay
	// disagrees with the shadow bounds table (claims a hit with no covering
	// bounds, or a miss while covering bounds exist).
	RuleSignedAccess = "TC06-signed-access"
	// RuleWayRange fires when a reported HBT way index falls outside the
	// configured associativity.
	RuleWayRange = "TC07-way-range"
	// RuleAssoc fires when the reported associativity shrinks, exceeds
	// hbt.MaxAssoc, grows without a resize-flagged bndstr, or the reported
	// RowAddr is inconsistent with the table geometry (Eq. 1+2).
	RuleAssoc = "TC08-assoc"
	// RulePACFields fires when an instruction's Signed/PAC/AHC fields do
	// not match the PAC/AHC bits embedded in its address.
	RulePACFields = "TC09-pac-fields"
	// RuleRegDef fires when a source register is read before any
	// instruction defined it (register 0 is the always-ready zero/initial
	// register by machine convention).
	RuleRegDef = "TC10-reg-use-before-def"
	// RuleCallRet fires when returns outnumber calls at any point in the
	// stream (negative nesting depth).
	RuleCallRet = "TC11-call-ret-nesting"
	// RuleRASPairing fires under return-address-signing schemes when a call
	// is not immediately preceded by pacia or a ret by autia (Fig 3).
	RuleRASPairing = "TC12-ras-pairing"
	// RuleStreamEnd fires at Finish when the stream stops mid-protocol
	// (pacma without its bndstr, or a free missing its xpacm/re-sign).
	RuleStreamEnd = "TC13-stream-end"
	// RuleMTETagging fires under MTE when the tagging sequence breaks: an
	// irg not immediately followed by its first stg, or an stg appearing
	// outside a tagging burst (after irg, another stg, or the allocator
	// ret of a free).
	RuleMTETagging = "TC14-mte-tagging"
)

// Violation is one detected protocol break.
type Violation struct {
	// Scheme is the protection scheme whose contract was violated.
	Scheme instrument.Scheme
	// Index is the 0-based position of the offending instruction in the
	// stream (for RuleStreamEnd: the stream length).
	Index uint64
	// PC is the instruction's program counter.
	PC uint64
	// Op is the instruction class.
	Op isa.Op
	// Rule is the stable rule identifier (TCnn-...).
	Rule string
	// Detail explains the violation.
	Detail string
}

// String renders a violation on one line: scheme, op index, location,
// rule, explanation.
func (v Violation) String() string {
	return fmt.Sprintf("%s inst %d (pc %#x, %s): %s: %s", v.Scheme, v.Index, v.PC, v.Op, v.Rule, v.Detail)
}

// Error aggregates a run's violations as an error value.
type Error struct {
	// Scheme is the protection scheme the stream was checked against.
	Scheme instrument.Scheme
	// Job is the serving layer's correlation id for the checked run
	// (empty for batch runs). When set, every rendered message carries
	// it so a violation in a daemon log can be joined back to the job's
	// trace and event stream.
	Job string
	// Violations holds the recorded violations (capped; Total has the
	// uncapped count).
	Violations []Violation
	// Total is the number of violations detected, including any dropped
	// past the recording cap.
	Total int
}

// jobTag renders the correlation prefix ("job <id> " or "").
func (e *Error) jobTag() string {
	if e.Job == "" {
		return ""
	}
	return "job " + e.Job + " "
}

// Error implements error.
func (e *Error) Error() string {
	if len(e.Violations) == 0 {
		return fmt.Sprintf("tracecheck: %s%d protocol violations under %s", e.jobTag(), e.Total, e.Scheme)
	}
	s := fmt.Sprintf("tracecheck: %s%d protocol violation(s) under %s; first: %s",
		e.jobTag(), e.Total, e.Scheme, e.Violations[0])
	if e.Total > 1 {
		s += fmt.Sprintf(" (+%d more)", e.Total-1)
	}
	return s
}

// Report renders every recorded violation, one per line (each line
// prefixed with the job correlation id when one is set).
func (e *Error) Report() string {
	var b strings.Builder
	for _, v := range e.Violations {
		b.WriteString(e.jobTag())
		b.WriteString(v.String())
		b.WriteByte('\n')
	}
	if e.Total > len(e.Violations) {
		fmt.Fprintf(&b, "... and %d more violations (recording capped)\n", e.Total-len(e.Violations))
	}
	return b.String()
}

// DefaultMaxViolations caps how many violations a Checker records; counting
// continues past the cap so Total stays exact.
const DefaultMaxViolations = 64

// shadowEntry is one live bounds entry reconstructed from the stream.
type shadowEntry struct {
	// word is the compressed bounds word, built with the real hbt encoder
	// so coverage/base tests match the hardware semantics bit-for-bit.
	word uint64
	// way is the HBT way the bndstr reported (stable across migrations:
	// resizing copies rows slot-for-slot).
	way int8
}

// pendingAlloc tracks a pacma awaiting its bndstr.
type pendingAlloc struct {
	pac uint16
	va  uint64
	ahc uint8
	idx uint64
}

// freePhase is the position inside the Fig 7b free sequence.
type freePhase int

const (
	freeIdle freePhase = iota
	// freeWantXpacm: a successful bndclr just retired; the very next
	// instruction must strip the pointer.
	freeWantXpacm
	// freeWantResign: the allocator is running on the stripped pointer; a
	// re-signing pacma for the freed base must appear before any other
	// bounds operation.
	freeWantResign
)

// Checker verifies one scheme's dynamic-instruction stream. It implements
// isa.Sink. Not safe for concurrent use; tee one Checker per stream.
type Checker struct {
	scheme instrument.Scheme
	job    string // serving-layer correlation id; "" for batch runs
	ct     *Contract
	maxRec int

	idx        uint64
	violations []Violation
	total      int

	// Shadow HBT state.
	live    map[uint16]map[uint64]shadowEntry // pac -> base VA -> entry
	cleared map[uint16]map[uint64]uint64      // pac -> base VA -> compressed word
	assoc   int
	base    uint64 // current table base derived from RowAddr reports

	// Protocol state machines.
	pending   *pendingAlloc
	phase     freePhase
	freeVA    uint64
	freeIdx   uint64
	prevOp    isa.Op
	havePrev  bool
	callDepth int64
	// mteWantSTG: an irg just retired; the next instruction must be its
	// first stg (TC14).
	mteWantSTG bool

	// Register definedness (register 0 is pre-defined by convention: the
	// machine's lastALU/lastLoad start there).
	regDef [isa.NumRegs]bool

	// cov, when enabled, counts how often each rule's predicate evaluated
	// on armed state (see coverage.go); nil keeps the hot path to one
	// pointer compare per touch point.
	cov []uint64
}

// New builds a checker for the given scheme with the default recording cap.
func New(scheme instrument.Scheme) *Checker {
	c := &Checker{
		scheme:  scheme,
		maxRec:  DefaultMaxViolations,
		live:    make(map[uint16]map[uint64]shadowEntry),
		cleared: make(map[uint16]map[uint64]uint64),
	}
	c.ct = contractFor(scheme)
	c.regDef[0] = true
	return c
}

// ContractOf exposes the scheme's registered contract (its whitelist and
// rule count), mainly for tests and tooling.
func ContractOf(scheme instrument.Scheme) *Contract { return contractFor(scheme) }

// SetJob attaches the serving layer's correlation id to the checker:
// the Error it reports (and every Report line) then carries the id, so
// sanitizer verdicts in daemon logs join the job's trail. Empty resets.
func (c *Checker) SetJob(id string) { c.job = id }

// SetMaxViolations adjusts the recording cap (minimum 1).
func (c *Checker) SetMaxViolations(n int) {
	if n < 1 {
		n = 1
	}
	c.maxRec = n
}

// allowedOps derives the per-scheme op whitelist from the instrumentation
// predicates, so a new scheme automatically gets a contract.
func allowedOps(s instrument.Scheme) [isa.NumOps]bool {
	ok := baseAllowedOps(s)
	if s.UsesMemoryTagging() {
		ok[isa.OpIRG] = true
		ok[isa.OpSTG] = true
	}
	return ok
}

func baseAllowedOps(s instrument.Scheme) [isa.NumOps]bool {
	var ok [isa.NumOps]bool
	for _, op := range []isa.Op{isa.OpNop, isa.OpALU, isa.OpMul, isa.OpFP,
		isa.OpLoad, isa.OpStore, isa.OpBranch, isa.OpCall, isa.OpRet} {
		ok[op] = true
	}
	if s.HasWatchdogChecks() {
		for _, op := range []isa.Op{isa.OpWDCheck, isa.OpWDMeta, isa.OpWDSetID, isa.OpWDClrID} {
			ok[op] = true
		}
	}
	if s.SignsDataPointers() {
		for _, op := range []isa.Op{isa.OpPacma, isa.OpXpacm, isa.OpAutm, isa.OpBndstr, isa.OpBndclr} {
			ok[op] = true
		}
	}
	if s.HasReturnAddressSigning() || (s.HasOnLoadAuth() && !s.UsesAutm()) {
		ok[isa.OpPacia] = true
		ok[isa.OpAutia] = true
	}
	return ok
}

func (c *Checker) report(in *isa.Inst, rule, format string, args ...interface{}) {
	c.total++
	if c.cov != nil {
		if i, ok := ruleIdx[rule]; ok {
			c.cov[i]++
		}
	}
	if len(c.violations) < c.maxRec {
		c.violations = append(c.violations, Violation{
			Scheme: c.scheme,
			Index:  c.idx,
			PC:     in.PC,
			Op:     in.Op,
			Rule:   rule,
			Detail: fmt.Sprintf(format, args...),
		})
	}
}

// Violations returns the recorded violations so far.
func (c *Checker) Violations() []Violation { return c.violations }

// Total returns the exact violation count (recording cap excluded).
func (c *Checker) Total() int { return c.total }

// Err returns the violations as an error, or nil when the stream is clean.
// Call Finish first so end-of-stream checks run.
func (c *Checker) Err() error {
	if c.total == 0 {
		return nil
	}
	return &Error{Scheme: c.scheme, Job: c.job, Violations: c.violations, Total: c.total}
}

// Finish runs the contract's end-of-stream checks and returns all
// recorded violations. Call once, after the final Emit.
func (c *Checker) Finish() []Violation {
	c.touch(idxStreamEnd)
	end := isa.Inst{Op: isa.OpNop}
	for _, f := range c.ct.Finish {
		f(c, &end)
	}
	return c.violations
}

// EmitBatch implements isa.BatchSink: every instruction is checked in
// order, exactly as scalar Emit calls would.
func (c *Checker) EmitBatch(batch []isa.Inst) {
	for i := range batch {
		c.Emit(&batch[i])
	}
}

// Emit implements isa.Sink: checks one instruction against the scheme's
// registered contract and updates the shadow state. The instruction is
// not mutated.
func (c *Checker) Emit(in *isa.Inst) {
	c.touch(idxOpWhitelist)
	if int(in.Op) >= isa.NumOps {
		c.report(in, RuleOpWhitelist, "op byte %d outside the ISA", uint8(in.Op))
		c.idx++
		return
	}
	if !c.ct.Allowed[in.Op] {
		c.report(in, RuleOpWhitelist, "op %s must never appear in a %s stream", in.Op, c.scheme)
	}

	for _, r := range c.ct.Rules {
		r(c, in)
	}

	if in.Dest != isa.RegNone && int(in.Dest) < isa.NumRegs {
		c.regDef[in.Dest] = true
	}
	c.prevOp, c.havePrev = in.Op, true
	c.idx++
}

// checkRegs enforces use-before-def on the dependency registers.
func (c *Checker) checkRegs(in *isa.Inst) {
	for _, r := range [2]uint8{in.Src1, in.Src2} {
		if r == isa.RegNone {
			continue
		}
		c.touch(idxRegDef)
		if int(r) >= isa.NumRegs {
			c.report(in, RuleRegDef, "source register %d outside the register file", r)
			continue
		}
		if !c.regDef[r] {
			c.report(in, RuleRegDef, "source register %d read before any definition", r)
		}
	}
}

// checkFields verifies that the Signed/PAC/AHC metadata matches the bits
// embedded in the instruction's address, and that unsigned schemes never
// mark accesses signed.
func (c *Checker) checkFields(in *isa.Inst) {
	switch in.Op {
	case isa.OpLoad, isa.OpStore:
		c.touch(idxPACFields)
		if in.Signed && !c.scheme.SignsDataPointers() {
			c.report(in, RulePACFields, "signed access under non-signing scheme %s", c.scheme)
			return
		}
		if c.scheme.SignsDataPointers() && in.Signed != pa.IsSigned(in.Addr) {
			c.report(in, RulePACFields,
				"Signed=%v disagrees with address AHC bits (%#x)", in.Signed, in.Addr)
		}
	case isa.OpBndstr, isa.OpBndclr:
		c.touch(idxPACFields)
	default:
		return
	}
	if !in.Signed {
		return
	}
	if got, want := in.PAC, pa.PAC(in.Addr); got != want {
		c.report(in, RulePACFields, "PAC field %#04x != address PAC %#04x", got, want)
	}
	if got, want := in.AHC, pa.AHC(in.Addr); got != want {
		c.report(in, RulePACFields, "AHC field %d != address AHC %d", got, want)
	}
}

// checkGeometry validates Assoc/HomeWay/RowAddr on any instruction
// reporting HBT coordinates, and tracks resizes. Returns false when the
// geometry is too broken to use for shadow checks.
func (c *Checker) checkGeometry(in *isa.Inst) bool {
	assoc := int(in.Assoc)
	if assoc < 1 || assoc > hbt.MaxAssoc || assoc&(assoc-1) != 0 {
		c.report(in, RuleAssoc, "reported associativity %d invalid", assoc)
		return false
	}
	if c.assoc != 0 && assoc != c.assoc {
		// A transition is the armed case for TC08: shrink, or growth that
		// must carry the resize flag.
		c.touch(idxAssoc)
	}
	if c.assoc != 0 && assoc < c.assoc {
		c.report(in, RuleAssoc, "associativity shrank %d -> %d (HBT only grows)", c.assoc, assoc)
		return false
	}
	if c.assoc != 0 && assoc > c.assoc && !(in.Op == isa.OpBndstr && in.Resize) {
		c.report(in, RuleAssoc,
			"associativity grew %d -> %d without a resize-flagged bndstr", c.assoc, assoc)
	}
	logA := uint(bits.TrailingZeros(uint(assoc)))
	derivedBase := in.RowAddr - uint64(in.PAC)<<(logA+6)
	switch {
	case c.assoc == 0 || assoc > c.assoc:
		// First observation, or a fresh post-resize table: adopt the base.
		c.assoc, c.base = assoc, derivedBase
	case derivedBase != c.base:
		c.report(in, RuleAssoc,
			"RowAddr %#x inconsistent with table base %#x (pac %#04x, %d ways)",
			in.RowAddr, c.base, in.PAC, assoc)
	}
	if in.HomeWay >= 0 {
		c.touch(idxWayRange)
	}
	if int(in.HomeWay) >= assoc {
		c.report(in, RuleWayRange, "HomeWay %d outside %d-way row", in.HomeWay, assoc)
		return false
	}
	return true
}

// onPacma handles both pacma roles: the allocation-side signing (Fig 7a,
// followed by bndstr) and the free-side re-signing lock (Fig 7b).
func (c *Checker) onPacma(in *isa.Inst) {
	va := pa.VA(in.Addr)
	if c.phase == freeWantResign {
		c.touch(idxFreeProtocol)
		if va == c.freeVA {
			c.phase = freeIdle // temporal-safety lock applied
			return
		}
		c.report(in, RuleFreeProtocol,
			"pacma for %#x while freed chunk %#x (bndclr at inst %d) awaits its re-sign",
			va, c.freeVA, c.freeIdx)
		c.phase = freeIdle
	}
	if !pa.IsSigned(in.Addr) {
		c.report(in, RulePACFields, "pacma produced an unsigned pointer %#x", in.Addr)
	}
	c.pending = &pendingAlloc{pac: pa.PAC(in.Addr), va: va, ahc: pa.AHC(in.Addr), idx: c.idx}
}

// onBndstr matches the pending pacma, validates geometry, and inserts the
// allocation into the shadow table.
func (c *Checker) onBndstr(in *isa.Inst) {
	c.touch(idxBndstr)
	p := c.pending
	c.pending = nil
	if p == nil {
		c.report(in, RuleBndstr, "bndstr without a preceding pacma")
	} else if pa.VA(in.Addr) != p.va || pa.PAC(in.Addr) != p.pac {
		c.report(in, RuleBndstr,
			"bndstr (va %#x pac %#04x) does not match pacma at inst %d (va %#x pac %#04x)",
			pa.VA(in.Addr), pa.PAC(in.Addr), p.idx, p.va, p.pac)
	}
	if !in.Signed {
		c.report(in, RuleBndstr, "bndstr not marked signed")
		return
	}
	if !c.checkGeometry(in) {
		return
	}
	if in.HomeWay < 0 {
		c.report(in, RuleBndstr, "bndstr reported no home way (insertions always land after resize)")
		return
	}
	base := pa.VA(in.Addr)
	word, err := hbt.Compress(base, sizeOrMin(uint64(in.Size)))
	if err != nil {
		c.report(in, RuleBndstr, "bounds not encodable: %v", err)
		return
	}
	row := c.live[in.PAC]
	if row == nil {
		row = make(map[uint64]shadowEntry)
		c.live[in.PAC] = row
	}
	if _, dup := row[base]; dup {
		c.report(in, RuleBndstr, "bndstr for %#x while its bounds are already live (double insert)", base)
	}
	row[base] = shadowEntry{word: word, way: in.HomeWay}
	if cl := c.cleared[in.PAC]; cl != nil {
		delete(cl, base) // address recycled by a fresh allocation
	}
}

// onBndclr validates the clear against the shadow table and arms the
// free-protocol expectations.
func (c *Checker) onBndclr(in *isa.Inst) {
	c.touch(idxFreeProtocol)
	if c.phase == freeWantResign {
		c.report(in, RuleFreeProtocol,
			"bndclr while freed chunk %#x (bndclr at inst %d) awaits its re-sign", c.freeVA, c.freeIdx)
		c.phase = freeIdle
	}
	if !c.checkGeometry(in) {
		return
	}
	base := pa.VA(in.Addr)
	row := c.live[in.PAC]
	// Find the shadow entry bndclr should have hit: same row, stored lower
	// bound matching the freed base (the hardware's occupancy test).
	matchBase, found := uint64(0), false
	for b, e := range row { //aoslint:allow mapiter — membership scan; first match semantics guarded below
		if hbt.MatchesBase(e.word, base) {
			if !found || e.way == in.HomeWay {
				matchBase, found = b, true
			}
		}
	}
	signed := in.Signed && pa.IsSigned(in.Addr)
	switch {
	case in.HomeWay < 0:
		// The machine reports a miss for double/invalid frees and for
		// unsigned pointers. A miss while matching live bounds exist (for a
		// genuinely signed pointer) is a protocol bug.
		if found && signed {
			c.report(in, RuleSignedAccess,
				"bndclr missed live bounds for %#x (shadow way %d)", base, row[matchBase].way)
		} else if c.cov != nil && !found && c.clearedCovers(in.PAC, base) {
			// Double free correctly detected against cleared bounds: the
			// armed (non-firing) case of TC05.
			c.touch(idxUseAfterClear)
		}
	case !found:
		c.report(in, RuleUseAfterClear,
			"bndclr reported way %d for %#x but no such bounds are live (double free not detected)",
			in.HomeWay, base)
	default:
		if e := row[matchBase]; e.way != in.HomeWay {
			c.report(in, RuleSignedAccess,
				"bndclr way %d != way %d recorded by the matching bndstr", in.HomeWay, e.way)
		}
		cl := c.cleared[in.PAC]
		if cl == nil {
			cl = make(map[uint64]uint64)
			c.cleared[in.PAC] = cl
		}
		cl[matchBase] = row[matchBase].word
		delete(row, matchBase)
		// Successful clear: the Fig 7b sequence must continue.
		c.phase, c.freeVA, c.freeIdx = freeWantXpacm, base, c.idx
	}
}

// onSignedAccess cross-checks a checked load/store against the shadow
// bounds, distinguishing use-after-clear from plain resolution bugs.
func (c *Checker) onSignedAccess(in *isa.Inst) {
	c.touch(idxSignedAccess)
	if !c.checkGeometry(in) {
		return
	}
	va := pa.VA(in.Addr)
	covered, wayOK := false, false
	for _, e := range c.live[in.PAC] { //aoslint:allow mapiter — order-free membership scan
		if hbt.Covers(e.word, va) {
			covered = true
			if e.way == in.HomeWay {
				wayOK = true
			}
		}
	}
	switch {
	case in.HomeWay < 0 && covered:
		c.report(in, RuleSignedAccess,
			"access to %#x reported a bounds miss while covering bounds are live", va)
	case in.HomeWay >= 0 && !covered:
		if c.clearedCovers(in.PAC, va) {
			c.report(in, RuleUseAfterClear,
				"access to %#x resolved to way %d after its bounds were cleared (UAF not detected)",
				va, in.HomeWay)
		} else {
			c.report(in, RuleSignedAccess,
				"access to %#x reported way %d but no covering bounds were ever stored", va, in.HomeWay)
		}
	case in.HomeWay >= 0 && !wayOK:
		c.report(in, RuleSignedAccess,
			"access to %#x resolved to way %d; covering bounds live in a different way", va, in.HomeWay)
	case in.HomeWay < 0:
		// Correct miss. When cleared bounds cover the address this is a
		// correctly-detected UAF — the armed (non-firing) case of TC05.
		if c.cov != nil && c.clearedCovers(in.PAC, va) {
			c.touch(idxUseAfterClear)
		}
	}
}

// clearedCovers reports whether va falls inside bounds that were live once
// and have since been cleared (temporal-safety classification).
func (c *Checker) clearedCovers(pac uint16, va uint64) bool {
	for _, w := range c.cleared[pac] { //aoslint:allow mapiter — order-free membership scan
		if hbt.Covers(w, va) {
			return true
		}
	}
	return false
}

// sizeOrMin mirrors the functional machine: zero-size allocations are
// stored with a minimal 16-byte chunk (malloc(0) stays representable).
func sizeOrMin(size uint64) uint64 {
	if size == 0 {
		return 16
	}
	return size
}
