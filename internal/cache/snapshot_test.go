package cache

import (
	"reflect"
	"testing"
)

func fillCache(c *Cache, n int, salt uint64) {
	for i := 0; i < n; i++ {
		_, _, _ = c.Access(uint64(i)*64+salt*1024*1024, i%3 == 0)
	}
}

// TestCacheSnapshotRestoreDeterminism: a restored cache must behave exactly
// like the original from the snapshot point on.
func TestCacheSnapshotRestoreDeterminism(t *testing.T) {
	cfg := Config{SizeBytes: 32 << 10, Ways: 4, Latency: 2}
	a, err := NewCache(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fillCache(a, 5000, 0)
	s := a.Snapshot()

	type probe struct {
		hit, victimDirty bool
		victimAddr       uint64
	}
	replay := func(c *Cache) []probe {
		var out []probe
		for i := 0; i < 3000; i++ {
			h, vd, va := c.Access(uint64(i*13)*64, i%5 == 0)
			out = append(out, probe{h, vd, va})
		}
		return out
	}
	want := replay(a)

	b, _ := NewCache(cfg)
	if err := b.Restore(s); err != nil {
		t.Fatal(err)
	}
	got := replay(b)
	if !reflect.DeepEqual(got, want) {
		t.Fatal("restored cache diverged from straight-line execution")
	}
	if a.stats != b.stats {
		t.Fatalf("stats diverged: %+v vs %+v", a.stats, b.stats)
	}
	// Snapshot survived the continuations: two fresh restores agree.
	c, _ := NewCache(cfg)
	d, _ := NewCache(cfg)
	c.Restore(s)
	d.Restore(s)
	if !reflect.DeepEqual(c, d) {
		t.Fatal("snapshot mutated by a restored cache's continuation")
	}
}

func TestCacheRestoreGeometryMismatch(t *testing.T) {
	a, _ := NewCache(Config{SizeBytes: 32 << 10, Ways: 4, Latency: 2})
	b, _ := NewCache(Config{SizeBytes: 16 << 10, Ways: 4, Latency: 2})
	if err := b.Restore(a.Snapshot()); err == nil {
		t.Fatal("expected geometry-mismatch error")
	}
}

// TestHierarchySnapshotRestore covers the composite, including the nilable
// bounds cache and traffic counters.
func TestHierarchySnapshotRestore(t *testing.T) {
	for _, withB := range []bool{false, true} {
		cfg := HierarchyConfig{
			L1I:         Config{SizeBytes: 32 << 10, Ways: 4, Latency: 1},
			L1D:         Config{SizeBytes: 32 << 10, Ways: 4, Latency: 2},
			L2:          Config{SizeBytes: 256 << 10, Ways: 8, Latency: 12},
			DRAMLatency: 100,
		}
		if withB {
			cfg.L1B = &Config{SizeBytes: 8 << 10, Ways: 4, Latency: 2}
		}
		h, err := NewHierarchy(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 4000; i++ {
			h.AccessData(uint64(i*7)*64, i%4 == 0)
			h.FetchInst(uint64(i % 512 * 64))
			h.AccessBounds(uint64(i*3)*64, i%7 == 0)
		}
		h.AddBulkTraffic(4096)
		s := h.Snapshot()

		var want []int
		for i := 0; i < 2000; i++ {
			want = append(want, h.AccessData(uint64(i*11)*64, false))
		}

		g, _ := NewHierarchy(cfg)
		if err := g.Restore(s); err != nil {
			t.Fatal(err)
		}
		var got []int
		for i := 0; i < 2000; i++ {
			got = append(got, g.AccessData(uint64(i*11)*64, false))
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("withB=%v: restored hierarchy diverged", withB)
		}
		if g.traffic != s.traffic || g.DRAMAccesses == s.dram {
			// traffic advanced past the snapshot in both spaces; just check
			// the restore landed on the snapshot values before the replay.
			g2, _ := NewHierarchy(cfg)
			g2.Restore(s)
			if g2.traffic != s.traffic || g2.DRAMAccesses != s.dram {
				t.Fatalf("withB=%v: counters not restored", withB)
			}
		}
	}
}

func TestHierarchyRestoreL1BMismatch(t *testing.T) {
	cfg := HierarchyConfig{
		L1I:         Config{SizeBytes: 32 << 10, Ways: 4, Latency: 1},
		L1D:         Config{SizeBytes: 32 << 10, Ways: 4, Latency: 2},
		L2:          Config{SizeBytes: 256 << 10, Ways: 8, Latency: 12},
		DRAMLatency: 100,
	}
	noB, _ := NewHierarchy(cfg)
	cfg.L1B = &Config{SizeBytes: 8 << 10, Ways: 4, Latency: 2}
	withB, _ := NewHierarchy(cfg)
	if err := withB.Restore(noB.Snapshot()); err == nil {
		t.Fatal("expected L1-B presence mismatch error")
	}
}

// Reflection guards: every field of Cache and Hierarchy must be classified
// so new fields cannot silently escape checkpoints.
func TestCacheSnapshotComplete(t *testing.T) {
	covered := map[string]bool{"sets": true, "tick": true, "stats": true}
	operational := map[string]bool{
		// cfg and setBits are construction-time geometry; Restore verifies
		// rather than carries them.
		"cfg": true, "setBits": true,
	}
	typ := reflect.TypeOf(Cache{})
	for i := 0; i < typ.NumField(); i++ {
		name := typ.Field(i).Name
		if covered[name] == operational[name] {
			t.Errorf("cache.Cache field %q is not classified as snapshotted or operational; update Snapshot/Restore and this test", name)
		}
	}
}

func TestHierarchySnapshotComplete(t *testing.T) {
	covered := map[string]bool{
		"L1I": true, "L1D": true, "L1B": true, "L2": true,
		"traffic": true, "DRAMAccesses": true,
	}
	operational := map[string]bool{
		"dramLat": true, // construction-time latency constant
	}
	typ := reflect.TypeOf(Hierarchy{})
	for i := 0; i < typ.NumField(); i++ {
		name := typ.Field(i).Name
		if covered[name] == operational[name] {
			t.Errorf("cache.Hierarchy field %q is not classified as snapshotted or operational; update Snapshot/Restore and this test", name)
		}
	}
}
