package cache

import "fmt"

// CacheState is a deep copy of one cache's line array and counters, taken
// by Cache.Snapshot. Geometry (config, set count) is not carried: restore
// targets are built from the same configuration, and Restore checks the
// shapes match rather than trusting the caller.
type CacheState struct {
	lines []line // flat [set*ways+way] copy of the backing array
	ways  int
	tick  uint64
	stats Stats
}

// Snapshot deep-copies the cache contents and statistics.
func (c *Cache) Snapshot() *CacheState {
	s := &CacheState{
		lines: make([]line, 0, len(c.sets)*c.cfg.Ways),
		ways:  c.cfg.Ways,
		tick:  c.tick,
		stats: c.stats,
	}
	for _, set := range c.sets {
		s.lines = append(s.lines, set...)
	}
	return s
}

// Restore rewinds the cache to a snapshot taken from an identically
// configured cache. The snapshot stays valid for further restores.
func (c *Cache) Restore(s *CacheState) error {
	if len(s.lines) != len(c.sets)*c.cfg.Ways || s.ways != c.cfg.Ways {
		return fmt.Errorf("cache: restore geometry mismatch: snapshot %d lines x %d ways, cache %d sets x %d ways",
			len(s.lines), s.ways, len(c.sets), c.cfg.Ways)
	}
	for i, set := range c.sets {
		copy(set, s.lines[i*c.cfg.Ways:(i+1)*c.cfg.Ways])
	}
	c.tick = s.tick
	c.stats = s.stats
	return nil
}

// HierarchyState is a deep copy of the whole memory system: every level's
// contents plus the inter-level traffic counters.
type HierarchyState struct {
	l1i, l1d, l2 *CacheState
	l1b          *CacheState // nil when no bounds cache configured
	traffic      Traffic
	dram         uint64
}

// Snapshot deep-copies the hierarchy.
func (h *Hierarchy) Snapshot() *HierarchyState {
	s := &HierarchyState{
		l1i:     h.L1I.Snapshot(),
		l1d:     h.L1D.Snapshot(),
		l2:      h.L2.Snapshot(),
		traffic: h.traffic,
		dram:    h.DRAMAccesses,
	}
	if h.L1B != nil {
		s.l1b = h.L1B.Snapshot()
	}
	return s
}

// Restore rewinds the hierarchy to a snapshot taken from an identically
// configured hierarchy (including L1-B presence).
func (h *Hierarchy) Restore(s *HierarchyState) error {
	if (h.L1B != nil) != (s.l1b != nil) {
		return fmt.Errorf("cache: restore mismatch: L1-B presence differs")
	}
	if err := h.L1I.Restore(s.l1i); err != nil {
		return fmt.Errorf("L1I: %w", err)
	}
	if err := h.L1D.Restore(s.l1d); err != nil {
		return fmt.Errorf("L1D: %w", err)
	}
	if err := h.L2.Restore(s.l2); err != nil {
		return fmt.Errorf("L2: %w", err)
	}
	if h.L1B != nil {
		if err := h.L1B.Restore(s.l1b); err != nil {
			return fmt.Errorf("L1B: %w", err)
		}
	}
	h.traffic = s.traffic
	h.DRAMAccesses = s.dram
	return nil
}
