// Package cache models the memory hierarchy of the evaluation platform
// (Table IV): private L1 instruction/data caches, the optional AOS L1
// bounds cache (L1-B, §V-F1), a shared L2, and DRAM. Caches are
// set-associative with true LRU replacement and write-back/write-allocate
// policy.
//
// The hierarchy tracks the byte traffic between levels, which is what the
// paper's Fig 18 reports, and per-cache hit/miss statistics, which drive
// the cache-pollution analysis behind Fig 15.
package cache

import (
	"fmt"
	"math/bits"
)

// LineBytes is the cache line size used throughout (Table IV).
const LineBytes = 64

// Config describes one cache.
type Config struct {
	// SizeBytes is the total capacity.
	SizeBytes int
	// Ways is the set associativity.
	Ways int
	// Latency is the access latency in cycles.
	Latency int
}

// Stats counts cache events.
type Stats struct {
	Hits       uint64
	Misses     uint64
	Writebacks uint64 // dirty evictions
}

// MissRate returns misses/(hits+misses), or 0 for an untouched cache.
func (s Stats) MissRate() float64 {
	t := s.Hits + s.Misses
	if t == 0 {
		return 0
	}
	return float64(s.Misses) / float64(t)
}

type line struct {
	tag   uint64
	valid bool
	dirty bool
	used  uint64 // LRU stamp
}

// Cache is one set-associative cache level.
type Cache struct {
	cfg     Config
	sets    [][]line
	setBits uint
	tick    uint64
	stats   Stats
}

// NewCache builds a cache from cfg. Sets must come out a power of two.
func NewCache(cfg Config) (*Cache, error) {
	if cfg.SizeBytes <= 0 || cfg.Ways <= 0 {
		return nil, fmt.Errorf("cache: invalid config %+v", cfg)
	}
	nSets := cfg.SizeBytes / (cfg.Ways * LineBytes)
	if nSets == 0 || nSets&(nSets-1) != 0 {
		return nil, fmt.Errorf("cache: %d sets (size %d, ways %d) not a power of two",
			nSets, cfg.SizeBytes, cfg.Ways)
	}
	sets := make([][]line, nSets)
	backing := make([]line, nSets*cfg.Ways)
	for i := range sets {
		sets[i] = backing[i*cfg.Ways : (i+1)*cfg.Ways]
	}
	return &Cache{
		cfg:     cfg,
		sets:    sets,
		setBits: uint(bits.TrailingZeros(uint(nSets))),
	}, nil
}

// MustNewCache is NewCache or panic, for configuration literals.
func MustNewCache(cfg Config) *Cache {
	c, err := NewCache(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Stats returns a copy of the counters.
func (c *Cache) Stats() Stats { return c.stats }

// Latency returns the configured access latency.
func (c *Cache) Latency() int { return c.cfg.Latency }

// Access looks up the line containing addr, allocating it on miss. write
// marks the line dirty. It reports whether the access hit, and whether the
// allocation evicted a dirty victim (whose line address is returned for
// write-back accounting).
func (c *Cache) Access(addr uint64, write bool) (hit bool, victimDirty bool, victimAddr uint64) {
	c.tick++
	lineAddr := addr / LineBytes
	set := lineAddr & ((1 << c.setBits) - 1)
	tag := lineAddr >> c.setBits
	ways := c.sets[set]

	for i := range ways {
		if ways[i].valid && ways[i].tag == tag {
			ways[i].used = c.tick
			if write {
				ways[i].dirty = true
			}
			c.stats.Hits++
			return true, false, 0
		}
	}
	c.stats.Misses++

	// Choose a victim: an invalid way, else true-LRU.
	vi := 0
	for i := range ways {
		if !ways[i].valid {
			vi = i
			goto fill
		}
		if ways[i].used < ways[vi].used {
			vi = i
		}
	}
	if ways[vi].dirty {
		victimDirty = true
		victimAddr = (ways[vi].tag<<c.setBits | set) * LineBytes
		c.stats.Writebacks++
	}
fill:
	ways[vi] = line{tag: tag, valid: true, dirty: write, used: c.tick}
	return false, victimDirty, victimAddr
}

// Contains reports whether addr's line is resident (no state change).
func (c *Cache) Contains(addr uint64) bool {
	lineAddr := addr / LineBytes
	set := lineAddr & ((1 << c.setBits) - 1)
	tag := lineAddr >> c.setBits
	for _, w := range c.sets[set] {
		if w.valid && w.tag == tag {
			return true
		}
	}
	return false
}

// ResetStats clears the hit/miss counters without touching cache contents
// (for warmup-then-measure methodology).
func (c *Cache) ResetStats() { c.stats = Stats{} }

// InvalidateAll drops every line (without write-back; used between runs).
func (c *Cache) InvalidateAll() {
	for _, s := range c.sets {
		for i := range s {
			s[i] = line{}
		}
	}
}

// Traffic tallies the bytes moved between hierarchy levels (Fig 18).
type Traffic struct {
	// L1ToL2 is bytes moved between the private L1s and the L2 (fills and
	// write-backs, both directions).
	L1ToL2 uint64
	// L2ToDRAM is bytes moved between the L2 and memory.
	L2ToDRAM uint64
}

// Total is the paper's "network traffic" metric: all inter-level bytes.
func (t Traffic) Total() uint64 { return t.L1ToL2 + t.L2ToDRAM }

// HierarchyConfig configures the full memory system. BCache nil disables
// the bounds cache (bounds then share the L1-D, the Fig 15 "no
// optimization" configuration).
type HierarchyConfig struct {
	L1I, L1D Config
	L1B      *Config
	L2       Config
	// DRAMLatency is the post-L2 miss penalty in cycles.
	DRAMLatency int
}

// DefaultConfig returns the Table IV platform: 32KB/4-way L1-I, 64KB/8-way
// L1-D, 32KB/4-way L1-B, 8MB/16-way L2, 100-cycle DRAM (50 ns at 2 GHz).
func DefaultConfig() HierarchyConfig {
	return HierarchyConfig{
		L1I:         Config{SizeBytes: 32 << 10, Ways: 4, Latency: 1},
		L1D:         Config{SizeBytes: 64 << 10, Ways: 8, Latency: 1},
		L1B:         &Config{SizeBytes: 32 << 10, Ways: 4, Latency: 1},
		L2:          Config{SizeBytes: 8 << 20, Ways: 16, Latency: 8},
		DRAMLatency: 100,
	}
}

// Hierarchy is the assembled memory system.
type Hierarchy struct {
	L1I, L1D *Cache
	L1B      *Cache // nil when the bounds cache is disabled
	L2       *Cache
	dramLat  int
	traffic  Traffic

	// DRAMAccesses counts L2 misses (for bandwidth sanity checks).
	DRAMAccesses uint64
}

// NewHierarchy builds the hierarchy from cfg.
func NewHierarchy(cfg HierarchyConfig) (*Hierarchy, error) {
	l1i, err := NewCache(cfg.L1I)
	if err != nil {
		return nil, fmt.Errorf("L1I: %w", err)
	}
	l1d, err := NewCache(cfg.L1D)
	if err != nil {
		return nil, fmt.Errorf("L1D: %w", err)
	}
	var l1b *Cache
	if cfg.L1B != nil {
		if l1b, err = NewCache(*cfg.L1B); err != nil {
			return nil, fmt.Errorf("L1B: %w", err)
		}
	}
	l2, err := NewCache(cfg.L2)
	if err != nil {
		return nil, fmt.Errorf("L2: %w", err)
	}
	return &Hierarchy{L1I: l1i, L1D: l1d, L1B: l1b, L2: l2, dramLat: cfg.DRAMLatency}, nil
}

// Traffic returns the inter-level byte counters.
func (h *Hierarchy) Traffic() Traffic { return h.traffic }

// ResetStats clears every statistic while keeping cache contents warm.
func (h *Hierarchy) ResetStats() {
	h.traffic = Traffic{}
	h.DRAMAccesses = 0
	h.L1I.ResetStats()
	h.L1D.ResetStats()
	if h.L1B != nil {
		h.L1B.ResetStats()
	}
	h.L2.ResetStats()
}

// HasBoundsCache reports whether a dedicated L1-B is present.
func (h *Hierarchy) HasBoundsCache() bool { return h.L1B != nil }

// accessThrough performs an access at l1 backed by the shared L2 and DRAM,
// returning the total latency.
func (h *Hierarchy) accessThrough(l1 *Cache, addr uint64, write bool) int {
	lat := l1.Latency()
	hit, vd, va := l1.Access(addr, write)
	if vd {
		// Dirty L1 victim written back into L2.
		h.traffic.L1ToL2 += LineBytes
		_, l2vd, _ := h.L2.Access(va, true)
		if l2vd {
			h.traffic.L2ToDRAM += LineBytes
		}
	}
	if hit {
		return lat
	}
	// L1 fill from L2.
	h.traffic.L1ToL2 += LineBytes
	lat += h.L2.Latency()
	l2hit, l2vd, _ := h.L2.Access(addr, false)
	if l2vd {
		h.traffic.L2ToDRAM += LineBytes
	}
	if !l2hit {
		h.traffic.L2ToDRAM += LineBytes
		h.DRAMAccesses++
		lat += h.dramLat
	}
	return lat
}

// AccessData performs a program load/store and returns its latency.
func (h *Hierarchy) AccessData(addr uint64, write bool) int {
	return h.accessThrough(h.L1D, addr, write)
}

// AccessBounds performs a bounds-metadata access. With an L1-B configured,
// bounds bypass the L1-D entirely (§V-F1: "we store all bounds metadata in
// the L1 B-cache, instead of in the L1 D-cache; the rest of the cache
// hierarchy remains the same").
func (h *Hierarchy) AccessBounds(addr uint64, write bool) int {
	if h.L1B != nil {
		return h.accessThrough(h.L1B, addr, write)
	}
	return h.accessThrough(h.L1D, addr, write)
}

// FetchInst performs an instruction fetch.
func (h *Hierarchy) FetchInst(addr uint64) int {
	return h.accessThrough(h.L1I, addr, false)
}

// AddBulkTraffic charges DMA-style traffic (e.g. HBT migration) that moves
// bytes below the L1s.
func (h *Hierarchy) AddBulkTraffic(bytes uint64) {
	h.traffic.L2ToDRAM += bytes
}
