package cache

import (
	"math/rand"
	"testing"
)

// TestSetResidencyInvariant: after touching exactly `ways` distinct lines
// of one set, all of them must be resident (LRU never evicts within
// capacity).
func TestSetResidencyInvariant(t *testing.T) {
	c := MustNewCache(Config{SizeBytes: 4096, Ways: 4, Latency: 1}) // 16 sets
	const setStride = 16 * LineBytes
	base := uint64(0x2000_0000_0000)
	for i := 0; i < 4; i++ {
		c.Access(base+uint64(i)*setStride, false)
	}
	for i := 0; i < 4; i++ {
		if !c.Contains(base + uint64(i)*setStride) {
			t.Fatalf("line %d evicted within capacity", i)
		}
	}
	// One more line overflows: exactly one of the five is absent.
	c.Access(base+4*setStride, false)
	absent := 0
	for i := 0; i <= 4; i++ {
		if !c.Contains(base + uint64(i)*setStride) {
			absent++
		}
	}
	if absent != 1 {
		t.Fatalf("%d lines absent after single overflow, want 1", absent)
	}
}

// TestHitMissAgainstReferenceModel compares the cache against a naive
// per-set LRU reference on a random access stream.
func TestHitMissAgainstReferenceModel(t *testing.T) {
	const ways = 4
	c := MustNewCache(Config{SizeBytes: 8192, Ways: ways, Latency: 1}) // 32 sets
	nSets := uint64(32)

	ref := make(map[uint64][]uint64) // set -> LRU-ordered line addresses (front = MRU)
	refAccess := func(line uint64) bool {
		set := line % nSets
		lines := ref[set]
		for i, l := range lines {
			if l == line {
				// hit: move to front
				copy(lines[1:i+1], lines[:i])
				lines[0] = line
				return true
			}
		}
		lines = append([]uint64{line}, lines...)
		if len(lines) > ways {
			lines = lines[:ways]
		}
		ref[set] = lines
		return false
	}

	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 50_000; i++ {
		line := uint64(rng.Intn(256)) // 256 lines over 32 sets x 4 ways: contention
		addr := line * LineBytes
		hit, _, _ := c.Access(addr, rng.Intn(2) == 0)
		if want := refAccess(line); hit != want {
			t.Fatalf("access %d (line %d): cache hit=%v, reference hit=%v", i, line, hit, want)
		}
	}
}

// TestWritebackConservation: every dirty line is written back exactly once
// across its eviction, never for clean lines.
func TestWritebackConservation(t *testing.T) {
	c := MustNewCache(Config{SizeBytes: 1024, Ways: 2, Latency: 1}) // 8 sets
	rng := rand.New(rand.NewSource(5))
	dirty := make(map[uint64]bool)
	var expectedWB uint64
	for i := 0; i < 20_000; i++ {
		line := uint64(rng.Intn(64))
		write := rng.Intn(3) == 0
		_, vd, va := c.Access(line*LineBytes, write)
		if vd {
			vl := va / LineBytes
			if !dirty[vl] {
				t.Fatalf("write-back of clean line %d", vl)
			}
			delete(dirty, vl)
			expectedWB++
		}
		if write {
			dirty[line] = true
		}
		// On miss the old resident (if clean) silently vanishes; drop any
		// stale dirty bookkeeping for lines no longer cached.
		for l := range dirty {
			if !c.Contains(l * LineBytes) {
				// must have been written back this access or earlier
				delete(dirty, l)
			}
		}
	}
	if c.Stats().Writebacks != expectedWB {
		t.Errorf("writebacks = %d, observed %d evictions of dirty lines",
			c.Stats().Writebacks, expectedWB)
	}
}
