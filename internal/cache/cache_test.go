package cache

import (
	"testing"
)

func small() Config { return Config{SizeBytes: 1024, Ways: 2, Latency: 1} } // 8 sets

func TestNewCacheValidation(t *testing.T) {
	if _, err := NewCache(Config{SizeBytes: 0, Ways: 1}); err == nil {
		t.Error("accepted zero size")
	}
	if _, err := NewCache(Config{SizeBytes: 1000, Ways: 3}); err == nil {
		t.Error("accepted non-power-of-two set count")
	}
	if _, err := NewCache(Config{SizeBytes: 64, Ways: 1, Latency: 1}); err != nil {
		t.Errorf("rejected 1-set cache: %v", err)
	}
}

func TestHitAfterMiss(t *testing.T) {
	c := MustNewCache(small())
	if hit, _, _ := c.Access(0x1000, false); hit {
		t.Error("cold access hit")
	}
	if hit, _, _ := c.Access(0x1008, false); !hit {
		t.Error("same-line access missed")
	}
	if hit, _, _ := c.Access(0x1040, false); hit {
		t.Error("next-line access hit")
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 2 {
		t.Errorf("stats = %+v", s)
	}
}

func TestLRUEviction(t *testing.T) {
	c := MustNewCache(small()) // 8 sets, 2 ways; same set every 8 lines = 512B
	a, b, d := uint64(0), uint64(512), uint64(1024)
	c.Access(a, false)
	c.Access(b, false)
	c.Access(a, false) // a most recent
	c.Access(d, false) // evicts b (LRU)
	if !c.Contains(a) {
		t.Error("LRU evicted the recently used line")
	}
	if c.Contains(b) {
		t.Error("LRU kept the least recently used line")
	}
	if !c.Contains(d) {
		t.Error("newly filled line absent")
	}
}

func TestDirtyWriteback(t *testing.T) {
	c := MustNewCache(small())
	c.Access(0, true) // dirty
	c.Access(512, false)
	_, vd, va := c.Access(1024, false) // evicts line 0 (dirty)
	if !vd || va != 0 {
		t.Errorf("dirty eviction = (%v, %#x), want (true, 0)", vd, va)
	}
	if c.Stats().Writebacks != 1 {
		t.Errorf("writebacks = %d", c.Stats().Writebacks)
	}
	// Clean eviction produces no write-back.
	_, vd, _ = c.Access(1536, false) // evicts 512 (clean)
	if vd {
		t.Error("clean eviction flagged dirty")
	}
}

func TestInvalidateAll(t *testing.T) {
	c := MustNewCache(small())
	c.Access(0, true)
	c.InvalidateAll()
	if c.Contains(0) {
		t.Error("line survived InvalidateAll")
	}
}

func TestMissRate(t *testing.T) {
	var s Stats
	if s.MissRate() != 0 {
		t.Error("empty stats miss rate != 0")
	}
	s = Stats{Hits: 3, Misses: 1}
	if s.MissRate() != 0.25 {
		t.Errorf("MissRate = %v", s.MissRate())
	}
}

func TestHierarchyLatencies(t *testing.T) {
	h, err := NewHierarchy(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Cold: L1 miss + L2 miss + DRAM.
	if lat := h.AccessData(0x2000_0000_0000, false); lat != 1+8+100 {
		t.Errorf("cold access latency = %d, want 109", lat)
	}
	// Warm L1.
	if lat := h.AccessData(0x2000_0000_0000, false); lat != 1 {
		t.Errorf("L1 hit latency = %d, want 1", lat)
	}
	// Evicted from L1 but resident in L2: walk enough lines to spill the
	// 64KB L1D but stay inside the 8MB L2.
	for i := uint64(1); i < 4096; i++ {
		h.AccessData(0x2000_0000_0000+i*64, false)
	}
	if lat := h.AccessData(0x2000_0000_0000, false); lat != 1+8 {
		t.Errorf("L2 hit latency = %d, want 9", lat)
	}
}

func TestHierarchyTraffic(t *testing.T) {
	h, err := NewHierarchy(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	h.AccessData(0, false) // cold: 64B L1<-L2, 64B L2<-DRAM
	tr := h.Traffic()
	if tr.L1ToL2 != 64 || tr.L2ToDRAM != 64 {
		t.Errorf("cold traffic = %+v", tr)
	}
	h.AccessData(0, true) // hit: no traffic
	if h.Traffic() != tr {
		t.Error("hit generated traffic")
	}
	if tr.Total() != 128 {
		t.Errorf("Total = %d", tr.Total())
	}
}

func TestBoundsCacheIsolation(t *testing.T) {
	cfg := DefaultConfig()
	h, _ := NewHierarchy(cfg)
	// Bounds accesses with an L1-B must not touch L1-D state.
	h.AccessBounds(0x3000_0000_0000, true)
	if h.L1D.Stats().Hits+h.L1D.Stats().Misses != 0 {
		t.Error("bounds access touched the L1-D despite L1-B present")
	}
	if h.L1B.Stats().Misses != 1 {
		t.Error("bounds access missed the L1-B counters")
	}

	// Without an L1-B, bounds go through the L1-D (pollution).
	cfg.L1B = nil
	h2, _ := NewHierarchy(cfg)
	h2.AccessBounds(0x3000_0000_0000, true)
	if h2.L1D.Stats().Misses != 1 {
		t.Error("bounds access did not use the L1-D when no L1-B configured")
	}
	if h2.HasBoundsCache() {
		t.Error("HasBoundsCache = true without L1-B")
	}
}

func TestSharedL2BetweenDataAndBounds(t *testing.T) {
	h, _ := NewHierarchy(DefaultConfig())
	addr := uint64(0x3000_0000_0000)
	h.AccessBounds(addr, false) // fills L2
	// A data access to the same line: L1-D miss, L2 hit.
	if lat := h.AccessData(addr, false); lat != 1+8 {
		t.Errorf("data access after bounds fill = %d cycles, want 9 (shared L2)", lat)
	}
}

func TestAddBulkTraffic(t *testing.T) {
	h, _ := NewHierarchy(DefaultConfig())
	h.AddBulkTraffic(4 << 20)
	if h.Traffic().L2ToDRAM != 4<<20 {
		t.Error("bulk traffic not recorded")
	}
}

func TestWritebackPropagatesTraffic(t *testing.T) {
	cfg := DefaultConfig()
	cfg.L1D = Config{SizeBytes: 1024, Ways: 2, Latency: 1} // tiny L1D: 8 sets
	h, _ := NewHierarchy(cfg)
	h.AccessData(0, true)    // dirty line 0
	h.AccessData(512, false) // same set
	base := h.Traffic().L1ToL2
	h.AccessData(1024, false) // evicts dirty line 0 -> write-back + fill
	tr := h.Traffic()
	if tr.L1ToL2 != base+128 {
		t.Errorf("eviction traffic = %d, want %d (write-back + fill)", tr.L1ToL2, base+128)
	}
}

func BenchmarkHierarchyAccess(b *testing.B) {
	h, _ := NewHierarchy(DefaultConfig())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.AccessData(uint64(i%100000)*64, i%4 == 0)
	}
}
