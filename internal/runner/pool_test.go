package runner

import (
	"bytes"
	"context"
	"errors"
	"io"
	"log/slog"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestRunContextCancel: once the context is canceled, not-yet-started jobs
// complete with the context error, in job order, without running.
func TestRunContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	started := make(chan struct{})
	release := make(chan struct{})
	jobs := make([]Job[int], 16)
	for i := range jobs {
		i := i
		jobs[i] = Job[int]{Label: "j", Run: func() (int, error) {
			if i == 0 {
				close(started)
				<-release
			}
			ran.Add(1)
			return i, nil
		}}
	}
	go func() {
		<-started
		cancel()
		close(release)
	}()
	res := Run(ctx, jobs, Options{Workers: 1})
	if len(res) != 16 {
		t.Fatalf("results = %d", len(res))
	}
	if res[0].Err != nil || res[0].Value != 0 {
		t.Errorf("in-flight job should finish normally: %+v", res[0])
	}
	for i := 1; i < 16; i++ {
		if !errors.Is(res[i].Err, context.Canceled) {
			t.Errorf("slot %d: err = %v, want context.Canceled", i, res[i].Err)
		}
	}
	if n := ran.Load(); n != 1 {
		t.Errorf("%d jobs ran after cancel, want 1", n)
	}
	if err := Errs(res); !errors.Is(err, context.Canceled) {
		t.Errorf("Errs = %v", err)
	}
}

// TestRunNilContext: a nil context behaves like context.Background().
func TestRunNilContext(t *testing.T) {
	res := Run(nil, squareJobs(3), Options{Workers: 2})
	for i, r := range res {
		if r.Err != nil || r.Value != i*i {
			t.Errorf("slot %d: %+v", i, r)
		}
	}
}

func TestPoolRunsTasks(t *testing.T) {
	p := NewPool(2, 8)
	defer p.Close()
	var sum atomic.Int64
	done := make(chan struct{}, 8)
	for i := 1; i <= 8; i++ {
		i := i
		err := p.Submit(Task{Label: "t", Run: func(context.Context) {
			sum.Add(int64(i))
			done <- struct{}{}
		}})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	for i := 0; i < 8; i++ {
		<-done
	}
	if sum.Load() != 36 {
		t.Errorf("sum = %d, want 36", sum.Load())
	}
}

// TestPoolBackpressure: a saturated queue reports ErrQueueFull instead of
// blocking, and frees up once tasks drain.
func TestPoolBackpressure(t *testing.T) {
	p := NewPool(1, 2)
	defer p.Close()
	release := make(chan struct{})
	started := make(chan struct{})
	block := func(context.Context) {
		select {
		case started <- struct{}{}:
		default:
		}
		<-release
	}
	if err := p.Submit(Task{Label: "running", Run: block}); err != nil {
		t.Fatal(err)
	}
	<-started // worker busy; queue is empty again
	for i := 0; i < 2; i++ {
		if err := p.Submit(Task{Label: "queued", Run: block}); err != nil {
			t.Fatalf("queued submit %d: %v", i, err)
		}
	}
	if err := p.Submit(Task{Label: "over", Run: block}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overflow submit: err = %v, want ErrQueueFull", err)
	}
	if p.Queued() != 2 {
		t.Errorf("Queued = %d, want 2", p.Queued())
	}
	close(release)
	// Eventually capacity returns.
	deadline := time.After(5 * time.Second)
	for {
		if err := p.Submit(Task{Label: "later", Run: func(context.Context) {}}); err == nil {
			break
		}
		select {
		case <-deadline:
			t.Fatal("queue never drained")
		case <-time.After(time.Millisecond):
		}
	}
}

// TestPoolClose drains queued tasks, passes each task its context, and
// rejects submissions afterwards.
func TestPoolClose(t *testing.T) {
	p := NewPool(1, 8)
	var ran atomic.Int64
	type key struct{}
	ctx := context.WithValue(context.Background(), key{}, "v")
	for i := 0; i < 5; i++ {
		err := p.Submit(Task{Label: "t", Ctx: ctx, Run: func(c context.Context) {
			if c.Value(key{}) != "v" {
				t.Error("task context not propagated")
			}
			ran.Add(1)
		}})
		if err != nil {
			t.Fatal(err)
		}
	}
	p.Close()
	if ran.Load() != 5 {
		t.Errorf("ran = %d, want 5 (Close must drain)", ran.Load())
	}
	if err := p.Submit(Task{Label: "late", Run: func(context.Context) {}}); !errors.Is(err, ErrPoolClosed) {
		t.Errorf("post-Close submit: %v", err)
	}
	p.Close() // idempotent
}

// TestPoolPanicDuringFlush models the service's crash contract at the
// pool layer: a task that panics mid-way through flushing telemetry —
// after publishing partial state, with waiters parked on its done
// channel — must not deadlock those waiters, double-close anything, or
// corrupt the pool's in-flight accounting. The sync.Once finalize
// pattern here is the one Server.runJob relies on.
func TestPoolPanicDuringFlush(t *testing.T) {
	p := NewPool(2, 8)
	defer p.Close()

	type jobState struct {
		once    sync.Once
		done    chan struct{}
		flushed atomic.Int64
	}
	finalize := func(j *jobState) {
		j.once.Do(func() { close(j.done) })
	}

	const n = 4
	states := make([]*jobState, n)
	for i := 0; i < n; i++ {
		j := &jobState{done: make(chan struct{})}
		states[i] = j
		err := p.Submit(Task{Label: "flush", Run: func(context.Context) {
			defer finalize(j) // the task's own recovery path
			j.flushed.Add(1)  // partial flush state published...
			finalize(j)       // ...and the normal completion path also fires
			panic("flush interrupted")
		}})
		if err != nil {
			t.Fatal(err)
		}
	}
	// Every waiter wakes: the panic ran through both finalize paths and
	// the sync.Once made the second one a no-op instead of a double-close.
	for i, j := range states {
		select {
		case <-j.done:
		case <-time.After(5 * time.Second):
			t.Fatalf("waiter %d deadlocked behind a panicking task", i)
		}
		if j.flushed.Load() != 1 {
			t.Errorf("task %d flushed %d times", i, j.flushed.Load())
		}
	}
	// The workers survived and the in-flight gauge returned to zero.
	done := make(chan struct{})
	if err := p.Submit(Task{Label: "after", Run: func(context.Context) { close(done) }}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("workers dead after panics")
	}
	deadline := time.After(5 * time.Second)
	for p.InFlight() != 0 {
		select {
		case <-deadline:
			t.Fatalf("InFlight = %d after tasks drained, want 0", p.InFlight())
		case <-time.After(time.Millisecond):
		}
	}
}

// TestPoolPanicGuard: a panicking task must not kill its worker.
func TestPoolPanicGuard(t *testing.T) {
	p := NewPool(1, 4)
	defer p.Close()
	if err := p.Submit(Task{Label: "boom", Run: func(context.Context) { panic("kaput") }}); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	if err := p.Submit(Task{Label: "after", Run: func(context.Context) { close(done) }}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("worker died after task panic")
	}
}

// TestPoolWorkerLogsCarryJobID: with a logger attached, workers bracket
// each task with debug records carrying the task's correlation id.
func TestPoolWorkerLogsCarryJobID(t *testing.T) {
	var mu sync.Mutex
	var buf bytes.Buffer
	log := slog.New(slog.NewTextHandler(&lockedWriter{mu: &mu, w: &buf},
		&slog.HandlerOptions{Level: slog.LevelDebug}))

	p := NewPool(1, 4)
	p.SetLogger(log)
	done := make(chan struct{})
	if err := p.Submit(Task{ID: "cafebabe42", Label: "fig14 cell", Run: func(context.Context) {
		close(done)
	}}); err != nil {
		t.Fatal(err)
	}
	<-done
	p.Close()

	mu.Lock()
	out := buf.String()
	mu.Unlock()
	for _, want := range []string{"task start", "task done", "job=cafebabe42", `label="fig14 cell"`} {
		if !strings.Contains(out, want) {
			t.Fatalf("worker log missing %q:\n%s", want, out)
		}
	}

	// Without a logger the workers stay silent.
	p2 := NewPool(1, 1)
	done2 := make(chan struct{})
	_ = p2.Submit(Task{ID: "x", Run: func(context.Context) { close(done2) }})
	<-done2
	p2.Close()
}

// lockedWriter serializes concurrent handler writes for the test buffer.
type lockedWriter struct {
	mu *sync.Mutex
	w  io.Writer
}

func (l *lockedWriter) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.w.Write(p)
}
