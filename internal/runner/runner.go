// Package runner provides the bounded-parallel job pool the evaluation
// harness fans its run matrix out over. Every job builds its own isolated
// machine, so the matrix is embarrassingly parallel; the pool's only
// obligations are to bound concurrency, capture per-job failures instead
// of aborting the batch, and aggregate deterministically — results come
// back in job-submission order regardless of completion order, so a
// 1-worker and an N-worker run of the same jobs produce identical output.
package runner

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"
)

// Event is one structured progress update. Per-job completions carry
// Completed/Total and the job's wall time; stage announcements (emitted by
// harness code between batches) carry only a Label with Completed == 0.
type Event struct {
	// Completed is the number of jobs finished so far in the current
	// batch, including the one this event reports (0 for announcements).
	Completed int
	// Total is the batch size (0 for announcements).
	Total int
	// Label identifies the job or stage.
	Label string
	// Wall is the finished job's wall-clock time.
	Wall time.Duration
	// Err is the job's failure, if any.
	Err error
}

// Options configures a Run.
type Options struct {
	// Workers bounds concurrent jobs; <= 0 uses runtime.GOMAXPROCS(0).
	Workers int
	// OnEvent, when non-nil, receives one Event per completed job. Events
	// arrive in completion order (nondeterministic under parallelism) but
	// with strictly increasing Completed counts; the callback is never
	// invoked concurrently with itself.
	OnEvent func(Event)
}

// Job is one unit of work: a display label and the work itself. Run must
// be self-contained — it may not share mutable state with other jobs.
type Job[R any] struct {
	Label string
	Run   func() (R, error)
}

// Result pairs a job with its outcome. Exactly one of Value/Err is
// meaningful; Wall is always the job's wall-clock duration.
type Result[R any] struct {
	Label string
	Value R
	Err   error
	Wall  time.Duration
}

// Run executes jobs over a bounded worker pool and returns one Result per
// job, in job order. A failing (or panicking) job contributes an error
// Result; it never aborts the batch, so every other job's value survives.
//
// Workers observe ctx between jobs: once ctx is done, every not-yet-started
// job completes immediately with ctx's error as its Result (still in job
// order), while already-running jobs finish normally. A nil ctx means
// context.Background().
func Run[R any](ctx context.Context, jobs []Job[R], o Options) []Result[R] {
	results := make([]Result[R], len(jobs))
	if len(jobs) == 0 {
		return results
	}
	if ctx == nil {
		ctx = context.Background()
	}
	workers := o.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}

	idx := make(chan int)
	var wg sync.WaitGroup
	var mu sync.Mutex // orders OnEvent invocations and the Completed count
	completed := 0
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				start := time.Now()
				var v R
				err := ctx.Err()
				if err == nil {
					v, err = runGuarded(jobs[i].Run)
				}
				// Disjoint indices: no two workers write the same slot.
				results[i] = Result[R]{Label: jobs[i].Label, Value: v, Err: err, Wall: time.Since(start)}
				if o.OnEvent != nil {
					mu.Lock()
					completed++
					o.OnEvent(Event{
						Completed: completed,
						Total:     len(jobs),
						Label:     jobs[i].Label,
						Wall:      results[i].Wall,
						Err:       err,
					})
					mu.Unlock()
				}
			}
		}()
	}
	for i := range jobs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return results
}

// runGuarded invokes fn, converting a panic into an error so one broken
// job cannot take down the whole batch.
func runGuarded[R any](fn func() (R, error)) (v R, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("job panicked: %v", r)
		}
	}()
	return fn()
}

// Errs joins the failed jobs' errors in job order, each labeled with its
// job, or returns nil if every job succeeded.
func Errs[R any](results []Result[R]) error {
	var errs []error
	for _, r := range results {
		if r.Err != nil {
			errs = append(errs, fmt.Errorf("%s: %w", r.Label, r.Err))
		}
	}
	return errors.Join(errs...)
}
