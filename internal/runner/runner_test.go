package runner

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func squareJobs(n int) []Job[int] {
	jobs := make([]Job[int], n)
	for i := range jobs {
		i := i
		jobs[i] = Job[int]{
			Label: fmt.Sprintf("job-%d", i),
			Run:   func() (int, error) { return i * i, nil },
		}
	}
	return jobs
}

func TestDeterministicOrder(t *testing.T) {
	jobs := squareJobs(50)
	seq := Run(context.Background(), jobs, Options{Workers: 1})
	par := Run(context.Background(), jobs, Options{Workers: 8})
	if len(seq) != 50 || len(par) != 50 {
		t.Fatalf("lengths: %d, %d", len(seq), len(par))
	}
	for i := range seq {
		if seq[i].Value != i*i || par[i].Value != i*i {
			t.Errorf("slot %d: seq=%d par=%d want %d", i, seq[i].Value, par[i].Value, i*i)
		}
		if seq[i].Label != par[i].Label {
			t.Errorf("slot %d labels differ: %q vs %q", i, seq[i].Label, par[i].Label)
		}
	}
}

func TestErrorCaptureKeepsOtherResults(t *testing.T) {
	boom := errors.New("boom")
	jobs := squareJobs(10)
	jobs[3].Run = func() (int, error) { return 0, boom }
	jobs[7].Run = func() (int, error) { panic("kaput") }
	res := Run(context.Background(), jobs, Options{Workers: 4})
	for i, r := range res {
		switch i {
		case 3:
			if !errors.Is(r.Err, boom) {
				t.Errorf("slot 3: err = %v", r.Err)
			}
		case 7:
			if r.Err == nil || !strings.Contains(r.Err.Error(), "kaput") {
				t.Errorf("slot 7: panic not captured: %v", r.Err)
			}
		default:
			if r.Err != nil || r.Value != i*i {
				t.Errorf("slot %d lost: %+v", i, r)
			}
		}
	}
	err := Errs(res)
	if err == nil || !strings.Contains(err.Error(), "job-3") || !strings.Contains(err.Error(), "job-7") {
		t.Errorf("joined error incomplete: %v", err)
	}
	if Errs(res[:3]) != nil {
		t.Error("Errs over clean prefix should be nil")
	}
}

func TestWorkerBound(t *testing.T) {
	var inFlight, peak atomic.Int64
	jobs := make([]Job[struct{}], 32)
	for i := range jobs {
		jobs[i] = Job[struct{}]{Label: "j", Run: func() (struct{}, error) {
			n := inFlight.Add(1)
			for {
				p := peak.Load()
				if n <= p || peak.CompareAndSwap(p, n) {
					break
				}
			}
			time.Sleep(2 * time.Millisecond)
			inFlight.Add(-1)
			return struct{}{}, nil
		}}
	}
	Run(context.Background(), jobs, Options{Workers: 3})
	if p := peak.Load(); p > 3 {
		t.Errorf("peak concurrency %d exceeds worker bound 3", p)
	}
}

func TestProgressEvents(t *testing.T) {
	var events []Event
	jobs := squareJobs(12)
	Run(context.Background(), jobs, Options{Workers: 5, OnEvent: func(ev Event) { events = append(events, ev) }})
	if len(events) != 12 {
		t.Fatalf("events = %d", len(events))
	}
	for i, ev := range events {
		if ev.Completed != i+1 || ev.Total != 12 {
			t.Errorf("event %d: completed=%d total=%d", i, ev.Completed, ev.Total)
		}
		if ev.Wall < 0 {
			t.Errorf("event %d: negative wall %v", i, ev.Wall)
		}
	}
}

func TestEmptyAndDefaultWorkers(t *testing.T) {
	if res := Run[int](context.Background(), nil, Options{}); len(res) != 0 {
		t.Errorf("empty batch: %v", res)
	}
	res := Run(context.Background(), squareJobs(4), Options{}) // Workers 0 → GOMAXPROCS
	want := []int{0, 1, 4, 9}
	got := make([]int, len(res))
	for i, r := range res {
		got[i] = r.Value
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %v want %v", got, want)
	}
}
