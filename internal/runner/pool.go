package runner

import (
	"context"
	"errors"
	"log/slog"
	"runtime"
	"sync"
	"sync/atomic"
)

// Submit failure modes. ErrQueueFull is the pool's backpressure signal:
// callers (e.g. the aosd service) translate it into an explicit retry
// hint instead of buffering unboundedly.
var (
	ErrQueueFull  = errors.New("runner: queue full")
	ErrPoolClosed = errors.New("runner: pool closed")
)

// Task is one unit of daemon work for a persistent Pool. Unlike the batch
// Job, a Task carries its own context — the pool passes it to Run so the
// task body can observe per-task deadlines and client-abandon cancellation.
// Bookkeeping (status, results) lives in the closure, not the pool.
type Task struct {
	// Label identifies the task (diagnostics only).
	Label string
	// ID is the submitting layer's correlation id for the task — for the
	// aosd service, the job's content-address hash. Workers attach it to
	// their slog records so pool-side log lines join the job's trail.
	ID string
	// Ctx is the task's context; nil means context.Background(). A task
	// whose context is already done is still handed to Run — the body
	// decides how to record the cancellation.
	Ctx context.Context
	// Run is the work. It must be self-contained.
	Run func(ctx context.Context)
}

// Pool is the persistent counterpart of Run: a fixed set of workers
// draining a bounded queue of Tasks for the lifetime of a daemon. Submit
// never blocks — a full queue is reported as ErrQueueFull so callers can
// shed load explicitly.
type Pool struct {
	queue    chan Task
	wg       sync.WaitGroup
	inFlight atomic.Int64
	log      atomic.Pointer[slog.Logger] // nil: workers stay silent

	mu     sync.Mutex // guards closed vs. Submit's queue send
	closed bool
}

// NewPool starts workers goroutines (<= 0 uses runtime.GOMAXPROCS) behind
// a queue holding up to queueDepth pending tasks (minimum 1).
func NewPool(workers, queueDepth int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if queueDepth < 1 {
		queueDepth = 1
	}
	p := &Pool{queue: make(chan Task, queueDepth)}
	for w := 0; w < workers; w++ {
		p.wg.Add(1)
		go func(worker int) {
			defer p.wg.Done()
			for t := range p.queue {
				ctx := t.Ctx
				if ctx == nil {
					ctx = context.Background()
				}
				p.inFlight.Add(1)
				if log := p.log.Load(); log != nil {
					log.Debug("task start", "worker", worker, "job", t.ID, "label", t.Label)
					runTaskGuarded(t.Run, ctx)
					log.Debug("task done", "worker", worker, "job", t.ID, "label", t.Label)
				} else {
					runTaskGuarded(t.Run, ctx)
				}
				p.inFlight.Add(-1)
			}
		}(w)
	}
	return p
}

// SetLogger attaches a structured logger to the pool's workers: each
// task is bracketed by debug records carrying the worker index and the
// task's correlation ID, so pool-side timing joins the per-job log
// trail the service layer starts. A nil logger silences the workers
// (the default). Safe to call while the pool is running.
func (p *Pool) SetLogger(log *slog.Logger) { p.log.Store(log) }

// runTaskGuarded invokes fn, swallowing a panic so one broken task cannot
// take down a pool worker (the task body is responsible for recording its
// own failure before panicking can matter).
func runTaskGuarded(fn func(context.Context), ctx context.Context) {
	defer func() { _ = recover() }()
	fn(ctx)
}

// Submit enqueues a task without blocking. It returns ErrQueueFull when
// the pending queue is at capacity and ErrPoolClosed after Close.
func (p *Pool) Submit(t Task) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrPoolClosed
	}
	select {
	case p.queue <- t:
		return nil
	default:
		return ErrQueueFull
	}
}

// Queued returns the number of tasks waiting for a worker.
func (p *Pool) Queued() int { return len(p.queue) }

// InFlight returns the number of tasks currently executing.
func (p *Pool) InFlight() int { return int(p.inFlight.Load()) }

// Close stops accepting tasks, drains the already-queued ones and waits
// for every worker to finish. It is idempotent. To abandon queued work
// instead of draining it, cancel the tasks' contexts first — the task
// bodies then observe cancellation and return quickly.
func (p *Pool) Close() {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		close(p.queue)
	}
	p.mu.Unlock()
	p.wg.Wait()
}
