package cpu

import (
	"reflect"
	"testing"

	"aos/internal/core"
	"aos/internal/instrument"
	"aos/internal/isa"
)

type captureSink struct{ insts []isa.Inst }

func (r *captureSink) Emit(in *isa.Inst)      { r.insts = append(r.insts, *in) }
func (r *captureSink) EmitBatch(b []isa.Inst) { r.insts = append(r.insts, b...) }

// genStream produces a realistic instrumented stream through the functional
// machine: allocs, frees, signed loads/stores, branches, calls.
func genStream(t testing.TB, scheme instrument.Scheme, iters int) []isa.Inst {
	rec := &captureSink{}
	m, err := core.New(core.Config{Scheme: scheme})
	if err != nil {
		t.Fatal(err)
	}
	m.SetSink(rec)
	var live []core.Ptr
	for i := 0; i < iters; i++ {
		x := uint64(i)*2654435761 + 13
		switch x % 6 {
		case 0:
			p, err := m.Malloc(16 + x%512)
			if err != nil {
				t.Fatal(err)
			}
			live = append(live, p)
		case 1:
			if len(live) > 16 {
				vi := int(x/7) % len(live)
				if err := m.Free(live[vi]); err != nil {
					t.Fatal(err)
				}
				live[vi] = live[len(live)-1]
				live = live[:len(live)-1]
			}
		case 2, 3:
			if len(live) > 0 {
				p := live[int(x/11)%len(live)]
				var off uint64
				if p.Size > 8 {
					off = ((x / 3) % (p.Size - 7)) &^ 7
				}
				store := x%2 == 0
				var err error
				if store {
					err = m.Store(p, off, core.AccessOpts{})
				} else {
					err = m.Load(p, off, core.AccessOpts{})
				}
				if err != nil {
					t.Fatal(err)
				}
			}
		case 4:
			m.Branch(uint32(x%128), x%3 == 0)
			m.Compute(2, core.DepChain)
		default:
			m.Call()
			m.ComputeMul(1, core.DepFree)
			m.Ret()
		}
	}
	m.Flush()
	return rec.insts
}

// TestCoreSnapshotRestoreDeterminism: a restored timing core must produce
// exactly the same cycle count and statistics as the original running
// straight through the same stream.
func TestCoreSnapshotRestoreDeterminism(t *testing.T) {
	stream := genStream(t, instrument.AOS, 40_000)
	half := len(stream) / 2

	a := New(DefaultConfig())
	for i := range stream[:half] {
		a.Emit(&stream[i])
	}
	snap := a.Snapshot()
	for i := half; i < len(stream); i++ {
		a.Emit(&stream[i])
	}
	want := a.Finalize()
	wantLC := a.LastCommit()

	for trial := 0; trial < 2; trial++ {
		b := New(DefaultConfig())
		if err := b.Restore(snap); err != nil {
			t.Fatal(err)
		}
		for i := half; i < len(stream); i++ {
			b.Emit(&stream[i])
		}
		if got := b.Finalize(); !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: restored result diverged:\n got %+v\nwant %+v", trial, got, want)
		}
		if b.LastCommit() != wantLC {
			t.Fatalf("trial %d: lastCommit %d, want %d", trial, b.LastCommit(), wantLC)
		}
	}
}

// TestCoreRestoreMismatch: geometry mismatches must fail loudly.
func TestCoreRestoreMismatch(t *testing.T) {
	a := New(DefaultConfig())
	cfg := DefaultConfig()
	cfg.ROBSize = 64
	b := New(cfg)
	if err := b.Restore(a.Snapshot()); err == nil {
		t.Fatal("expected queue-geometry mismatch error")
	}
	cfg = DefaultConfig()
	cfg.MCU.UseBWB = false
	d := New(cfg)
	if err := d.Restore(a.Snapshot()); err == nil {
		t.Fatal("expected BWB presence mismatch error")
	}
}

// TestFFWarmingMatchesDetailed: with forwarding disabled (the one
// timing-dependent effect in the reference stream), a fast-forwarding core
// must warm the caches, predictor, and BWB to a state bit-identical to a
// detailed core consuming the same stream.
func TestFFWarmingMatchesDetailed(t *testing.T) {
	for _, scheme := range []instrument.Scheme{instrument.AOS, instrument.Watchdog, instrument.MTE} {
		stream := genStream(t, scheme, 30_000)

		cfg := DefaultConfig()
		cfg.MCU.Forwarding = false
		det := New(cfg)
		ff := New(cfg)
		ff.SetMode(ModeFastForward)
		for i := range stream {
			det.Emit(&stream[i])
			ff.Emit(&stream[i])
		}
		if !reflect.DeepEqual(det.bp.Snapshot(), ff.bp.Snapshot()) {
			t.Fatalf("%v: predictor state diverged between detailed and FF warming", scheme)
		}
		if !reflect.DeepEqual(det.hier.Snapshot(), ff.hier.Snapshot()) {
			t.Fatalf("%v: cache hierarchy state diverged between detailed and FF warming", scheme)
		}
		if !reflect.DeepEqual(det.bwb.Snapshot(), ff.bwb.Snapshot()) {
			t.Fatalf("%v: BWB state diverged between detailed and FF warming", scheme)
		}
		if det.insts != ff.insts || det.checked != ff.checked ||
			det.boundsAccess != ff.boundsAccess || det.resizes != ff.resizes {
			t.Fatalf("%v: counters diverged: detailed {i %d c %d b %d r %d} vs FF {i %d c %d b %d r %d}",
				scheme, det.insts, det.checked, det.boundsAccess, det.resizes,
				ff.insts, ff.checked, ff.boundsAccess, ff.resizes)
		}
		if ff.lastCommit != 0 {
			t.Fatalf("%v: FF mode advanced the commit clock to %d", scheme, ff.lastCommit)
		}
	}
}

// TestFFThenDetailedResumes: after a fast-forward gap the core must accept
// detailed consumption again and keep producing monotonic commit cycles.
func TestFFThenDetailedResumes(t *testing.T) {
	stream := genStream(t, instrument.AOS, 30_000)
	third := len(stream) / 3

	c := New(DefaultConfig())
	for i := range stream[:third] {
		c.Emit(&stream[i])
	}
	lc := c.LastCommit()
	c.SetMode(ModeFastForward)
	for i := third; i < 2*third; i++ {
		c.Emit(&stream[i])
	}
	if c.LastCommit() != lc {
		t.Fatalf("FF gap advanced commit clock: %d -> %d", lc, c.LastCommit())
	}
	c.SetMode(ModeDetailed)
	for i := 2 * third; i < len(stream); i++ {
		c.Emit(&stream[i])
	}
	if c.LastCommit() <= lc {
		t.Fatalf("detailed resume did not advance commit clock past %d", lc)
	}
	if c.Insts() != uint64(len(stream)) {
		t.Fatalf("insts = %d, want %d (both modes must count)", c.Insts(), len(stream))
	}
}

// TestCoreSnapshotComplete is the reflection guard: every Core field must
// be classified as snapshotted or explicitly operational.
func TestCoreSnapshotComplete(t *testing.T) {
	covered := map[string]bool{
		"hier": true, "bp": true, "bwb": true,
		"fetchCycle": true, "fetchCount": true, "lastLine": true, "redirect": true,
		"regReady": true,
		"robRing":  true, "robIdx": true, "lqRing": true, "lqIdx": true,
		"sqRing": true, "sqIdx": true, "mcqRing": true, "mcqIdx": true,
		"lastCommit": true, "commitCycle": true, "commitUsed": true,
		"port": true, "dPort": true,
		"dMSHR": true, "dMSHRIdx": true, "bMSHR": true, "bMSHRIdx": true,
		"cryptoFree":  true,
		"bndstrDrain": true, "checked": true, "boundsAccess": true,
		"forwards": true, "resizes": true, "retireDelay": true,
		"insts": true, "statsSince": true,
	}
	operational := map[string]bool{
		// cfg is construction-time; wayScratch is a reusable scratch
		// buffer; observer/tel/nextSample are host-side instrumentation;
		// mode is the runtime consumption switch.
		"cfg": true, "wayScratch": true, "observer": true,
		"tel": true, "nextSample": true, "mode": true,
	}
	typ := reflect.TypeOf(Core{})
	for i := 0; i < typ.NumField(); i++ {
		name := typ.Field(i).Name
		if covered[name] == operational[name] {
			t.Errorf("cpu.Core field %q is not classified as snapshotted or operational; update Snapshot/Restore and this test", name)
		}
	}
	st := reflect.TypeOf(CoreState{})
	if st.NumField() != len(covered) {
		t.Errorf("cpu.CoreState has %d fields, covered set has %d; keep them in sync", st.NumField(), len(covered))
	}
	// portSchedState must likewise track portSched (width is construction-
	// time; everything else is state).
	ps := reflect.TypeOf(portSched{})
	pst := reflect.TypeOf(portSchedState{})
	if ps.NumField() != pst.NumField()+2 { // width + mask are construction-time
		t.Errorf("portSched has %d fields, portSchedState %d (+2 construction-time); keep snapshot() in sync", ps.NumField(), pst.NumField())
	}
}
