package cpu

// portSched is the per-cycle start-slot reservation scheduler for an
// execution port (L1-B lookup port, L1-D read ports). It replaces the old
// map[uint64]int bookkeeping with a dense power-of-two ring of per-cycle
// counters covering the window [base, base+len(ring)) over the commit
// frontier, plus a spill map for the (in practice never exercised)
// far-future cycles beyond the window.
//
// The scheduler is an exact drop-in for the map scheme, not an
// approximation: counts are kept per absolute cycle, reservations below
// base are clamped up to base exactly as reserve() clamped to the prune
// floor, and advance() runs on the same cadence prunePorts ran, so every
// grant cycle — and therefore every experiment output — is bit-identical
// to the map implementation. What changes is the cost: a reservation is
// one array increment instead of a map probe, there is no per-prune sweep
// over live keys, and the steady state allocates nothing.
type portSched struct {
	// ring holds the reservation count for cycle c at ring[c&mask], valid
	// for c in [base, base+len(ring)). Slots outside that range are zero by
	// the advance() invariant.
	ring []uint8
	mask uint64
	// base is the window floor: the same value the old scheme kept in
	// portFloor/dPortFloor. Reservations below it are clamped up to it.
	base uint64
	// width is the port's start bandwidth (grants per cycle).
	width uint8
	// overflow counts reservations at cycles at or beyond base+len(ring).
	// The window is sized so this stays empty for every evaluated workload
	// (it would take a sustained CPI above window/pruneEvery to reach it),
	// but spilling keeps the scheduler exact rather than approximately
	// correct if an extreme configuration ever gets there.
	overflow map[uint64]uint8
}

// portWindow is the dense scheduler window in cycles. Reservations start
// no earlier than base (= commit frontier at the last prune minus
// pruneMargin) and reach at most a few dependence-chain latencies past the
// current commit frontier, which itself advances by at most
// pruneEvery*CPI cycles between floor updates. 1<<17 cycles covers a
// sustained CPI of ~16 with margin; beyond that the overflow map takes
// over, exactly.
const portWindow = 1 << 17

// pruneEvery and pruneMargin reproduce the old prunePorts cadence: every
// pruneEvery emitted instructions the floor advances to
// lastCommit-pruneMargin. The cadence is part of the observable model —
// the floor clamps reservation start cycles in deeply memory-bound phases
// — so it must not change with the data structure.
const (
	pruneEvery  = 8192
	pruneMargin = 4096
)

// newPortSched builds a scheduler for a port of the given start width.
func newPortSched(width int) portSched {
	if width <= 0 || width > 255 {
		panic("cpu: port width out of range")
	}
	return portSched{
		ring:  make([]uint8, portWindow),
		mask:  portWindow - 1,
		width: uint8(width),
	}
}

// reserve finds the first cycle >= at with a free start slot and reserves
// it, exactly as the old reserve() did against the per-cycle map.
func (s *portSched) reserve(at uint64) uint64 {
	if at < s.base {
		at = s.base
	}
	limit := s.base + uint64(len(s.ring))
	for at < limit {
		slot := &s.ring[at&s.mask]
		if *slot < s.width {
			*slot++
			return at
		}
		at++
	}
	// Far-future spill: keep exact per-cycle counts in the overflow map.
	for {
		if s.overflow == nil {
			s.overflow = make(map[uint64]uint8) //aoslint:allow hotpathalloc — cold far-future spill, allocated at most once per scheduler
		}
		if s.overflow[at] < s.width {
			s.overflow[at]++
			return at
		}
		at++
	}
}

// advance raises the window floor to newBase (the old prunePorts), zeroing
// the vacated slots so the cycles that alias into them later start clean.
// Dead overflow entries are dropped and in-window ones migrated. No-op
// when newBase does not advance the floor, matching the old `below >
// floor` guard.
func (s *portSched) advance(newBase uint64) {
	if newBase <= s.base {
		return
	}
	if delta := newBase - s.base; delta >= uint64(len(s.ring)) {
		for i := range s.ring {
			s.ring[i] = 0
		}
	} else {
		for c := s.base; c < newBase; c++ {
			s.ring[c&s.mask] = 0
		}
	}
	s.base = newBase
	if len(s.overflow) != 0 {
		limit := s.base + uint64(len(s.ring))
		for cyc, n := range s.overflow { //aoslint:allow mapiter — order-free migration: each entry moves or dies independently
			if cyc < s.base {
				delete(s.overflow, cyc)
			} else if cyc < limit {
				s.ring[cyc&s.mask] = n
				delete(s.overflow, cyc)
			}
		}
	}
}
