// Package cpu is the timing simulator: an out-of-order core model with the
// paper's Table IV configuration (8-wide, 192-entry ROB, 32-entry load and
// store queues, 48-entry MCQ, L-TAGE-class branch prediction) attached to
// the cache hierarchy of internal/cache and the MCU structures of
// internal/mcu.
//
// The model is dependency-driven: it consumes the functional machine's
// instruction stream in program order and computes, for every instruction,
// its fetch, dispatch, issue, completion and commit cycles from data
// dependencies, structural occupancy (ROB/LQ/SQ/MCQ back-pressure), cache
// latencies, branch-misprediction redirects, and — for AOS — the MCU's
// bounds-check latency, which delays retirement until validation finishes
// (§III-C.4). This one-pass formulation reproduces the first-order
// behaviour of a cycle-stepped OoO pipeline at simulation speeds that make
// the paper's 80-run evaluation matrix practical in Go.
package cpu

import (
	"aos/internal/bpred"
	"aos/internal/cache"
	"aos/internal/isa"
	"aos/internal/mcu"
	"aos/internal/pa"
)

// Config is the core configuration (defaults follow Table IV).
type Config struct {
	Width             int // fetch/commit width
	ROBSize           int
	LQSize, SQSize    int
	MCQSize           int
	FrontendDepth     int // fetch-to-dispatch stages
	MispredictPenalty int // extra redirect cycles beyond resolution
	Caches            cache.HierarchyConfig
	MCU               mcu.Options
	// BoundsPortWidth is how many HBT line accesses the MCU can start per
	// cycle (the L1-B / lock-cache port bandwidth).
	BoundsPortWidth int
	// DataPortWidth is how many L1-D accesses can start per cycle.
	DataPortWidth int
	// DataMSHRs bounds outstanding L1-D misses (memory-level parallelism).
	DataMSHRs int
	// BoundsMSHRs bounds outstanding bounds-path misses.
	BoundsMSHRs int
}

// DefaultConfig returns the paper's platform configuration with all AOS
// optimizations (L1-B cache, BWB, bounds forwarding) enabled.
func DefaultConfig() Config {
	return Config{
		Width:             8,
		ROBSize:           192,
		LQSize:            32,
		SQSize:            32,
		MCQSize:           48,
		FrontendDepth:     6,
		MispredictPenalty: 10,
		Caches:            cache.DefaultConfig(),
		MCU:               mcu.Options{Forwarding: true, UseBWB: true},
		BoundsPortWidth:   1,
		DataPortWidth:     2,
		DataMSHRs:         10,
		BoundsMSHRs:       6,
	}
}

// Result is the timing outcome of one run.
type Result struct {
	Cycles uint64
	Insts  uint64

	Branch bpred.Stats

	Traffic      cache.Traffic
	L1I, L1D, L2 cache.Stats
	L1B          *cache.Stats // nil when no bounds cache configured
	DRAMAccesses uint64

	// CheckedOps counts MCU bounds checks for loads/stores; BoundsAccesses
	// counts the HBT line loads they and the bounds ops performed
	// (Fig 17's metric is BoundsAccesses/CheckedOps).
	CheckedOps     uint64
	BoundsAccesses uint64
	BWB            mcu.BWBStats
	Forwards       uint64
	Resizes        int

	// RetireDelay accumulates cycles signed accesses spent waiting for
	// validation after their data was ready (delayed-retirement cost).
	RetireDelay uint64
}

// IPC returns instructions per cycle.
func (r Result) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Insts) / float64(r.Cycles)
}

// Core is the timing model. It implements isa.Sink; feed it the functional
// machine's stream and call Finalize.
type Core struct {
	cfg  Config
	hier *cache.Hierarchy
	bp   *bpred.TAGE
	bwb  *mcu.BWB

	// Front end.
	fetchCycle uint64
	fetchCount int
	lastLine   uint64
	redirect   uint64

	// Register availability.
	regReady [isa.NumRegs]uint64

	// Structural occupancy rings (cycle when the slot frees).
	robRing []uint64
	robIdx  int
	lqRing  []uint64
	lqIdx   int
	sqRing  []uint64
	sqIdx   int
	mcqRing []uint64
	mcqIdx  int

	// In-order commit bookkeeping.
	lastCommit  uint64
	commitCycle uint64
	commitUsed  int

	// Port schedulers: per-cycle start-slot reservations in a dense ring
	// window over the commit frontier (see portsched.go), so out-of-order
	// start times interleave correctly without per-access map probes. The
	// bounds port is the L1-B lookup port; the data ports are the L1-D
	// read ports. Without an L1-B, bounds lookups contend for the data
	// ports (§V-F1's motivation).
	port  portSched
	dPort portSched

	// MSHR rings: completion times of the N most recent outstanding misses
	// on each path; a new miss waits for the oldest slot.
	dMSHR    []uint64
	dMSHRIdx int
	bMSHR    []uint64
	bMSHRIdx int

	// cryptoFree models the single non-pipelined QARMA unit shared by
	// pacia/autia/pacma (4-cycle occupancy each).
	cryptoFree uint64

	// bndstrDrain is the in-flight bounds-store drain table, indexed
	// directly by PAC: bndstrDrain[pac] is the cycle the most recent bndstr
	// with that PAC finishes draining through the write buffer (0 = never).
	// Invalidation is implicit in the cycle arithmetic: issue cycles only
	// grow, so an entry whose drain cycle has passed can never satisfy
	// `drain > issue` again — a recycled PAC from a long-past bndstr cannot
	// trigger a spurious forward, and no sweep or epoch bump is needed
	// (TestBndstrDrainStaleness pins this).
	bndstrDrain  []uint64
	checked      uint64
	boundsAccess uint64
	forwards     uint64
	resizes      int
	retireDelay  uint64

	insts uint64
	// statsSince is the commit cycle at the last ResetStats (warmup end).
	statsSince uint64

	// wayScratch is the reusable buffer checkWays fills: the MCQ FSM's way
	// sequence is consumed before the next instruction, so one buffer per
	// core keeps the signed-access path allocation-free.
	wayScratch []int

	// observer, when set, receives per-instruction pipeline timestamps
	// (debug/visualization; nil in normal runs).
	observer func(in *isa.Inst, t Timestamps)

	// tel is the flight recorder (nil when telemetry is disabled);
	// nextSample mirrors its next-due commit cycle so the per-
	// instruction check in Emit is a single compare against an
	// unreachable sentinel when disabled (see telemetry.go).
	tel        *coreTelemetry
	nextSample uint64

	// mode selects detailed timing vs. functional fast-forward warming
	// (see ff.go). Runtime control, not simulated state.
	mode Mode
}

// Timestamps are one instruction's pipeline event cycles.
type Timestamps struct {
	Fetch, Dispatch, Issue, Complete, Commit uint64
	// MCUDone is the bounds-validation completion (0 if unchecked).
	MCUDone uint64
}

// SetObserver installs a per-instruction pipeline observer (nil disables).
func (c *Core) SetObserver(f func(in *isa.Inst, t Timestamps)) { c.observer = f }

// New builds a core; it panics on invalid cache geometry (configs are
// literals).
func New(cfg Config) *Core {
	if cfg.Width == 0 {
		cfg = DefaultConfig()
	}
	h, err := cache.NewHierarchy(cfg.Caches)
	if err != nil {
		panic(err)
	}
	var bwb *mcu.BWB
	if cfg.MCU.UseBWB {
		bwb = mcu.NewBWB()
	}
	return &Core{
		cfg:         cfg,
		hier:        h,
		bp:          bpred.NewTAGE(),
		bwb:         bwb,
		robRing:     make([]uint64, cfg.ROBSize),
		lqRing:      make([]uint64, cfg.LQSize),
		sqRing:      make([]uint64, cfg.SQSize),
		mcqRing:     make([]uint64, cfg.MCQSize),
		dMSHR:       make([]uint64, cfg.DataMSHRs),
		bMSHR:       make([]uint64, cfg.BoundsMSHRs),
		port:        newPortSched(cfg.BoundsPortWidth),
		dPort:       newPortSched(cfg.DataPortWidth),
		bndstrDrain: make([]uint64, 1<<16),
		wayScratch:  make([]int, 0, 64),
		lastLine:    ^uint64(0),
		nextSample:  ^uint64(0),
	}
}

// Hierarchy exposes the memory system (for inspection in tests).
func (c *Core) Hierarchy() *cache.Hierarchy { return c.hier }

// LastCommit returns the commit cycle of the most recent instruction.
func (c *Core) LastCommit() uint64 { return c.lastCommit }

// ResetStats starts the measurement window: all statistics are cleared
// while the micro-architectural state (caches, predictor, BWB, clocks)
// stays warm. Use after a warmup phase, mirroring the paper's methodology
// of measuring a window of a much longer execution.
func (c *Core) ResetStats() {
	c.statsSince = c.lastCommit
	c.insts = 0
	c.checked = 0
	c.boundsAccess = 0
	c.forwards = 0
	c.resizes = 0
	c.retireDelay = 0
	c.hier.ResetStats()
	c.bp.ResetStats()
	if c.bwb != nil {
		c.bwb.ResetStats()
	}
	if c.tel != nil {
		c.tel.onResetStats(c.lastCommit)
	}
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// fetch assigns the instruction's fetch cycle, modeling width, I-cache
// lines and misprediction redirects.
func (c *Core) fetch(in *isa.Inst) uint64 {
	if c.redirect > c.fetchCycle {
		c.fetchCycle = c.redirect
		c.fetchCount = 0
	}
	line := in.PC &^ 63
	if line != c.lastLine {
		lat := c.hier.FetchInst(in.PC)
		if lat > 1 {
			c.fetchCycle += uint64(lat - 1)
			c.fetchCount = 0
		}
		c.lastLine = line
	}
	if c.fetchCount >= c.cfg.Width {
		c.fetchCycle++
		c.fetchCount = 0
	}
	c.fetchCount++
	return c.fetchCycle
}

// execLatency returns the functional-unit latency for non-memory ops.
func execLatency(op isa.Op) uint64 {
	switch op {
	case isa.OpMul:
		return 3
	case isa.OpFP:
		return 4
	case isa.OpPacma, isa.OpPacia, isa.OpAutia:
		return pa.SignAuthLatency
	case isa.OpXpacm, isa.OpAutm:
		return pa.StripLatency
	default:
		return 1
	}
}

// reservePort reserves a bounds-lookup port start slot. With an L1-B, the
// MCU owns a dedicated lookup port. Without one, the LSU arbitrates: the
// MCU still gets at most BoundsPortWidth grants per cycle, and each grant
// also occupies one of the L1-D data ports (displacing loads).
func (c *Core) reservePort(at uint64) uint64 {
	if c.hier.HasBoundsCache() {
		return c.port.reserve(at)
	}
	grant := c.port.reserve(at)
	return c.dPort.reserve(grant)
}

// reserveDataPort reserves an L1-D access start slot.
func (c *Core) reserveDataPort(at uint64) uint64 {
	return c.dPort.reserve(at)
}

// prunePorts advances the schedulers' window floors behind the commit
// frontier on the historical cadence (every pruneEvery instructions, to
// lastCommit-pruneMargin). With the ring schedulers this is O(advance)
// slot clearing instead of a sweep over live map keys, but the floor
// values themselves — which clamp reservation start cycles in deeply
// memory-bound phases — are unchanged.
func (c *Core) prunePorts() {
	below := uint64(0)
	if c.lastCommit > pruneMargin {
		below = c.lastCommit - pruneMargin
	}
	c.port.advance(below)
	c.dPort.advance(below)
}

// mcuAccess performs one bounds-line access starting no earlier than at,
// subject to the bounds read-port start bandwidth, and returns its
// completion cycle. Writes (bounds-store drains) go through the write
// buffer and do not contend for the lookup port.
func (c *Core) mcuAccess(at uint64, addr uint64, write bool) uint64 {
	start := at
	if !write {
		start = c.reservePort(at)
		if c.tel != nil {
			c.tel.boundsPortWait.Add(start - at)
		}
	}
	lat := c.hier.AccessBounds(addr, write)
	c.boundsAccess++
	if lat > 1 && !write {
		slot := &c.bMSHR[c.bMSHRIdx]
		c.bMSHRIdx = (c.bMSHRIdx + 1) % len(c.bMSHR)
		if *slot > start {
			start = *slot
		}
		*slot = start + uint64(lat)
	}
	return start + uint64(lat)
}

// checkWays returns the sequence of HBT ways the MCQ FSM visits for a
// load/store check, using the BWB exactly as §V-C describes: a hit starts
// the search at the remembered way; a miss (or a stale hint) searches from
// way 0. The returned slice aliases the core's scratch buffer and is valid
// only until the next checkWays call — callers consume it immediately, so
// the signed-access hot path performs no allocation.
func (c *Core) checkWays(in *isa.Inst) []int {
	ways := c.wayScratch[:0]
	home := int(in.HomeWay)
	assoc := int(in.Assoc)
	if home < 0 {
		// Bounds-check failure: the search visits every way.
		for i := 0; i < assoc; i++ {
			ways = append(ways, i) //aoslint:allow hotpathalloc — wayScratch is reused; growth is capped at MaxAssoc and amortized to zero
		}
		c.wayScratch = ways
		return ways
	}
	if c.bwb != nil {
		tag := mcu.BWBTag(pa.VA(in.Addr), in.AHC, in.PAC)
		if w, ok := c.bwb.Lookup(tag); ok && w < assoc {
			if w == home {
				ways = append(ways, w) //aoslint:allow hotpathalloc — wayScratch is reused; growth is capped at MaxAssoc and amortized to zero
				c.wayScratch = ways
				return ways
			}
			// Stale hint: the FSM falls back to a way-0 search.
			ways = append(ways, w) //aoslint:allow hotpathalloc — wayScratch is reused; growth is capped at MaxAssoc and amortized to zero
			for i := 0; i <= home; i++ {
				ways = append(ways, i) //aoslint:allow hotpathalloc — wayScratch is reused; growth is capped at MaxAssoc and amortized to zero
			}
			c.wayScratch = ways
			return ways
		}
	}
	for i := 0; i <= home; i++ {
		ways = append(ways, i) //aoslint:allow hotpathalloc — wayScratch is reused; growth is capped at MaxAssoc and amortized to zero
	}
	c.wayScratch = ways
	return ways
}

// EmitBatch processes a batch of instructions in order; implements
// isa.BatchSink. Identical to per-instruction Emit calls — batching only
// amortizes the producer's interface dispatch and improves locality.
func (c *Core) EmitBatch(batch []isa.Inst) {
	for i := range batch {
		c.Emit(&batch[i])
	}
}

// Emit processes one instruction; implements isa.Sink.
func (c *Core) Emit(in *isa.Inst) {
	if c.mode == ModeFastForward {
		c.emitFF(in)
		return
	}
	c.insts++
	if c.insts%pruneEvery == 0 {
		c.prunePorts()
	}

	fetch := c.fetch(in)
	dispatch := fetch + uint64(c.cfg.FrontendDepth)
	frontDispatch := dispatch

	// Structural back-pressure: ROB, LQ/SQ, MCQ.
	dispatch = max64(dispatch, c.robRing[c.robIdx])
	isMem := in.Op.IsMem()
	// The MCQ is an AOS structure: memory instructions and bounds ops
	// occupy it. Watchdog's check micro-ops are ordinary pipeline ops.
	usesMCQ := (isMem && in.Op != isa.OpWDCheck) || in.Op.IsBoundsOp()
	switch {
	case in.Op == isa.OpLoad:
		dispatch = max64(dispatch, c.lqRing[c.lqIdx])
	case in.Op == isa.OpStore, in.Op == isa.OpSTG:
		// Tag-granule stores share the store queue: MTE's stg writes its
		// granule's tag through the same drain path as a data store.
		dispatch = max64(dispatch, c.sqRing[c.sqIdx])
	}
	if usesMCQ {
		dispatch = max64(dispatch, c.mcqRing[c.mcqIdx])
	}
	if c.tel != nil {
		c.telNoteDispatch(in, frontDispatch, dispatch, usesMCQ)
	}
	// Dispatch stalls back up the front end (this is how MCQ back-pressure
	// throttles speculation).
	if lag := dispatch - uint64(c.cfg.FrontendDepth); lag > c.fetchCycle {
		c.fetchCycle = lag
		c.fetchCount = 0
	}

	// Source operands.
	ready := dispatch
	if in.Src1 != isa.RegNone {
		ready = max64(ready, c.regReady[in.Src1])
	}
	if in.Src2 != isa.RegNone {
		ready = max64(ready, c.regReady[in.Src2])
	}
	issue := ready

	// Execute.
	var done uint64
	va := pa.VA(in.Addr)
	switch {
	case in.Op == isa.OpLoad:
		start := c.reserveDataPort(issue)
		if c.tel != nil {
			c.tel.dataPortWait.Add(start - issue)
		}
		lat := c.hier.AccessData(va, false)
		if lat > 1 {
			// L1-D miss: allocate an MSHR; a full MSHR file stalls the miss.
			slot := &c.dMSHR[c.dMSHRIdx]
			c.dMSHRIdx = (c.dMSHRIdx + 1) % len(c.dMSHR)
			start = max64(start, *slot)
			*slot = start + uint64(lat)
		}
		done = start + uint64(lat)
	case in.Op == isa.OpWDCheck && in.Addr != 0:
		// Watchdog's check micro-op loads the lock location through its
		// lock-location cache (the structure the paper likens the L1-B to).
		done = c.mcuAccess(issue, va, false)
	case in.Op == isa.OpStore, in.Op == isa.OpSTG:
		done = issue + 1 // address generation; data drains at commit
	case in.Op.IsBranch():
		done = issue + 1
	case in.Op == isa.OpPacma || in.Op == isa.OpPacia || in.Op == isa.OpAutia:
		// One partially-pipelined crypto unit (4-cycle latency, one new
		// QARMA operation every 2 cycles): sign/auth bursts queue.
		start := max64(issue, c.cryptoFree)
		done = start + execLatency(in.Op)
		c.cryptoFree = start + 2
	default:
		done = issue + execLatency(in.Op)
	}

	// MCU validation (§V-A): signed accesses may not retire until their
	// bounds check completes; bounds ops must finish their occupancy walk.
	mcuDone := uint64(0)
	switch {
	case isMem && in.Signed && in.Op != isa.OpWDCheck:
		c.checked++
		fw := false
		if c.cfg.MCU.Forwarding {
			if drain := c.bndstrDrain[in.PAC]; drain > issue {
				// An in-flight bndstr with this PAC: forward its bounds.
				fw = true
				c.forwards++
				mcuDone = issue + 1
			}
		}
		if !fw {
			start := issue
			if drain := c.bndstrDrain[in.PAC]; drain > start && !c.cfg.MCU.Forwarding {
				// Without forwarding the check replays until the bounds
				// store drains (§V-E).
				start = drain
			}
			t := start
			for _, w := range c.checkWays(in) {
				t = c.mcuAccess(t, in.RowAddr+uint64(w)<<6, false)
			}
			mcuDone = t
			if c.bwb != nil && in.HomeWay >= 0 {
				c.bwb.Update(mcu.BWBTag(va, in.AHC, in.PAC), int(in.HomeWay))
			}
		}
	case in.Op.IsBoundsOp():
		if in.Resize {
			// Gradual HBT resize: non-blocking for the program, but the
			// migration traffic is real, and the BWB's remembered ways die.
			c.resizes++
			oldBytes := uint64(in.Assoc) / 2 * 4 << 20
			c.hier.AddBulkTraffic(2 * oldBytes)
			if c.bwb != nil {
				c.bwb.Invalidate()
			}
			if c.tel != nil {
				c.telNoteResize(in, issue, oldBytes)
			}
		}
		// Occupancy-check walk over ways 0..HomeWay.
		t := issue
		limit := int(in.HomeWay)
		if limit < 0 {
			limit = int(in.Assoc) - 1 // failing clear searches every way
		}
		for w := 0; w <= limit; w++ {
			t = c.mcuAccess(t, in.RowAddr+uint64(w)<<6, false)
		}
		mcuDone = t
	}
	// Validation overlaps the commit stage: a check that completes within
	// one cycle of the data does not delay retirement.
	if mcuDone > 0 {
		mcuDone--
	}
	complete := max64(done, mcuDone)
	if mcuDone > done {
		c.retireDelay += mcuDone - done
	}

	// Branch resolution and misprediction redirect.
	if in.Op == isa.OpBranch {
		pred := c.bp.Predict(in.BranchID)
		c.bp.Update(in.BranchID, in.Taken)
		if pred != in.Taken {
			r := done + uint64(c.cfg.MispredictPenalty)
			if r > c.redirect {
				c.redirect = r
			}
		}
	}

	// In-order commit, width-limited.
	commit := max64(complete+1, c.lastCommit)
	if commit > c.commitCycle {
		c.commitCycle = commit
		c.commitUsed = 0
	}
	if c.commitUsed >= c.cfg.Width {
		c.commitCycle++
		c.commitUsed = 0
	}
	c.commitUsed++
	commit = c.commitCycle
	c.lastCommit = commit
	if commit >= c.nextSample {
		// Telemetry sample boundary (nextSample is an unreachable
		// sentinel when disabled; see AttachTelemetry).
		c.takeSample()
	}

	// Post-commit effects.
	release := commit
	switch in.Op {
	case isa.OpStore:
		c.hier.AccessData(va, true) // drain the store buffer
	case isa.OpSTG:
		c.hier.AccessData(va, true) // tag-granule write drains like a store
	case isa.OpBndstr:
		// The FSM sends the bounds-store once committed and moves to Done;
		// the MCQ slot frees at send, while the write completes in the
		// background (tracked for the forwarding/replay window).
		drain := c.mcuAccess(commit+1, in.RowAddr+uint64(maxInt8(in.HomeWay, 0))<<6, true)
		c.bndstrDrain[in.PAC] = drain
		release = commit + 1
	case isa.OpBndclr:
		if in.HomeWay >= 0 {
			c.mcuAccess(commit+1, in.RowAddr+uint64(in.HomeWay)<<6, true)
		}
		release = commit + 1
	default:
		// Other classes have no post-commit memory effects.
	}

	if c.observer != nil {
		c.observer(in, Timestamps{
			Fetch: fetch, Dispatch: dispatch, Issue: issue,
			Complete: complete, Commit: commit, MCUDone: mcuDone,
		})
	}

	// Writeback / slot recycling.
	if in.Dest != isa.RegNone {
		c.regReady[in.Dest] = complete
	}
	c.robRing[c.robIdx] = commit
	c.robIdx = (c.robIdx + 1) % c.cfg.ROBSize
	switch {
	case in.Op == isa.OpLoad:
		c.lqRing[c.lqIdx] = commit
		c.lqIdx = (c.lqIdx + 1) % c.cfg.LQSize
	case in.Op == isa.OpStore, in.Op == isa.OpSTG:
		c.sqRing[c.sqIdx] = commit
		c.sqIdx = (c.sqIdx + 1) % c.cfg.SQSize
	}
	if usesMCQ {
		c.mcqRing[c.mcqIdx] = release
		c.mcqIdx = (c.mcqIdx + 1) % c.cfg.MCQSize
	}
}

func maxInt8(v int8, lo int8) int8 {
	if v > lo {
		return v
	}
	return lo
}

// Finalize returns the run's timing result.
func (c *Core) Finalize() Result {
	r := Result{
		Cycles:         c.lastCommit - c.statsSince,
		Insts:          c.insts,
		Branch:         c.bp.Stats(),
		Traffic:        c.hier.Traffic(),
		L1I:            c.hier.L1I.Stats(),
		L1D:            c.hier.L1D.Stats(),
		L2:             c.hier.L2.Stats(),
		DRAMAccesses:   c.hier.DRAMAccesses,
		CheckedOps:     c.checked,
		BoundsAccesses: c.boundsAccess,
		Forwards:       c.forwards,
		Resizes:        c.resizes,
		RetireDelay:    c.retireDelay,
	}
	if c.hier.L1B != nil {
		s := c.hier.L1B.Stats()
		r.L1B = &s
	}
	if c.bwb != nil {
		r.BWB = c.bwb.Stats()
	}
	return r
}
