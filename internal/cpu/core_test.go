package cpu

import (
	"testing"

	"aos/internal/cache"
	"aos/internal/core"
	"aos/internal/instrument"
	"aos/internal/isa"
	"aos/internal/mcu"
)

func run(t testing.TB, insts []isa.Inst) Result {
	t.Helper()
	c := New(DefaultConfig())
	for i := range insts {
		c.Emit(&insts[i])
	}
	return c.Finalize()
}

func TestIndependentALUThroughput(t *testing.T) {
	// 8-wide core, independent 1-cycle ALU ops in a tight loop: IPC must
	// approach the width (long run amortizes the cold I-cache misses).
	n := 100000
	insts := make([]isa.Inst, n)
	for i := range insts {
		insts[i] = isa.Inst{Op: isa.OpALU, PC: uint64(0x400000 + 4*(i%256)),
			Dest: uint8(1 + i%24), Src1: isa.RegNone, Src2: isa.RegNone}
	}
	r := run(t, insts)
	if ipc := r.IPC(); ipc < 6.5 {
		t.Errorf("independent ALU IPC = %.2f, want near 8", ipc)
	}
}

func TestDependencyChainSerializes(t *testing.T) {
	// A strict chain of 1-cycle ops: IPC must approach 1.
	n := 4000
	insts := make([]isa.Inst, n)
	for i := range insts {
		insts[i] = isa.Inst{Op: isa.OpALU, PC: uint64(0x400000 + 4*(i%256)),
			Dest: 1, Src1: 1, Src2: isa.RegNone}
	}
	r := run(t, insts)
	if ipc := r.IPC(); ipc > 1.3 || ipc < 0.7 {
		t.Errorf("chained ALU IPC = %.2f, want ~1", ipc)
	}
}

func TestCacheMissesSlowLoads(t *testing.T) {
	// Dependent pointer-chasing loads over a huge footprint (every load a
	// DRAM miss) versus the same chain hitting one line.
	mk := func(stride uint64) []isa.Inst {
		insts := make([]isa.Inst, 3000)
		for i := range insts {
			insts[i] = isa.Inst{Op: isa.OpLoad, PC: 0x400000 + uint64(4*(i%64)),
				Addr: 0x2000_0000_0000 + uint64(i)*stride, Size: 8,
				Dest: 1, Src1: 1, Src2: isa.RegNone}
		}
		return insts
	}
	hot := run(t, mk(0))
	cold := run(t, mk(4096))
	if cold.Cycles < hot.Cycles*10 {
		t.Errorf("DRAM-missing chain (%d cyc) not ≫ L1-hitting chain (%d cyc)",
			cold.Cycles, hot.Cycles)
	}
}

func TestMispredictionCostsCycles(t *testing.T) {
	mk := func(random bool) []isa.Inst {
		insts := make([]isa.Inst, 6000)
		for i := range insts {
			taken := true
			if random {
				taken = (i*2654435761)>>13&1 == 0 // pseudo-random pattern
			}
			insts[i] = isa.Inst{Op: isa.OpBranch, PC: 0x400000 + uint64(4*(i%64)),
				BranchID: uint32(i % 8), Taken: taken,
				Dest: isa.RegNone, Src1: isa.RegNone, Src2: isa.RegNone}
		}
		return insts
	}
	good := run(t, mk(false))
	bad := run(t, mk(true))
	if bad.Branch.Mispredicts < good.Branch.Mispredicts*5 {
		t.Skipf("predictor learned the pseudo-random pattern; mispredicts %d vs %d",
			bad.Branch.Mispredicts, good.Branch.Mispredicts)
	}
	if bad.Cycles <= good.Cycles {
		t.Errorf("mispredicting run (%d cyc) not slower than predictable run (%d cyc)",
			bad.Cycles, good.Cycles)
	}
}

func TestSignedAccessDelaysRetirement(t *testing.T) {
	// Identical load streams, one signed (checked), one not. The checked
	// one must accumulate retire delay and bounds accesses.
	mk := func(signed bool) []isa.Inst {
		insts := make([]isa.Inst, 2000)
		for i := range insts {
			// Model 48 chunks (within the 64-entry BWB reach), each
			// accessed within its own 4 KiB frame so the BWB tag is stable
			// per chunk. The unsigned run uses the same address stream.
			pac := uint16(i % 48)
			in := isa.Inst{Op: isa.OpLoad, PC: 0x400000 + uint64(4*(i%64)),
				Addr: 0x2000_0000_0000 + uint64(pac)*4096 + uint64(i%8)*64, Size: 8,
				Dest: uint8(1 + i%16), Src1: isa.RegNone, Src2: isa.RegNone}
			if signed {
				in.Signed = true
				in.PAC = pac
				in.AHC = 3
				in.HomeWay = 0
				in.Assoc = 1
				in.RowAddr = 0x3000_0000_0000 + uint64(pac)*64
			}
			insts[i] = in
		}
		return insts
	}
	unchecked := run(t, mk(false))
	checked := run(t, mk(true))
	if checked.CheckedOps != 2000 {
		t.Errorf("CheckedOps = %d", checked.CheckedOps)
	}
	if checked.BoundsAccesses == 0 {
		t.Error("no bounds accesses recorded")
	}
	// With warm caches and a hitting BWB, validation hides behind the load
	// latency — the always-on selling point — so only non-regression is
	// required here.
	if checked.Cycles < unchecked.Cycles {
		t.Errorf("checked run (%d) faster than unchecked (%d)", checked.Cycles, unchecked.Cycles)
	}
	if checked.BWB.HitRate() < 0.5 {
		t.Errorf("BWB hit rate = %.2f for a 48-chunk working set, want high", checked.BWB.HitRate())
	}
}

func TestWayIterationDelaysRetirement(t *testing.T) {
	// Without the BWB, bounds living in way 3 of a 4-way row cost four
	// sequential line loads per check; the chain must be strictly slower
	// than the unchecked equivalent and accumulate retire delay.
	mk := func(signed bool) []isa.Inst {
		insts := make([]isa.Inst, 2000)
		for i := range insts {
			in := isa.Inst{Op: isa.OpLoad, PC: 0x400000 + uint64(4*(i%64)),
				Addr: 0x2000_0000_0000 + uint64(i%8)*64, Size: 8,
				Dest: 1, Src1: 1, Src2: isa.RegNone} // dependent chain
			if signed {
				in.Signed = true
				in.PAC = 5
				in.AHC = 3
				in.HomeWay = 3
				in.Assoc = 4
				in.RowAddr = 0x3000_0000_0000
			}
			insts[i] = in
		}
		return insts
	}
	cfg := DefaultConfig()
	cfg.MCU.UseBWB = false
	runWith := func(signed bool) Result {
		c := New(cfg)
		for _, in := range mk(signed) {
			in := in
			c.Emit(&in)
		}
		return c.Finalize()
	}
	unchecked := runWith(false)
	checked := runWith(true)
	if checked.Cycles <= unchecked.Cycles {
		t.Errorf("way-iterating run (%d) not slower than unchecked (%d)",
			checked.Cycles, unchecked.Cycles)
	}
	if checked.RetireDelay == 0 {
		t.Error("no retire delay accumulated despite way iteration")
	}
	if perCheck := float64(checked.BoundsAccesses) / float64(checked.CheckedOps); perCheck < 3.9 {
		t.Errorf("bounds accesses per check = %.2f, want 4 (no BWB, way 3)", perCheck)
	}
}

func TestBoundsAccessesPolluteCachesWithoutL1B(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Caches.L1B = nil
	noB := New(cfg)
	withB := New(DefaultConfig())
	insts := make([]isa.Inst, 4000)
	for i := range insts {
		insts[i] = isa.Inst{Op: isa.OpLoad, PC: 0x400000 + uint64(4*(i%64)),
			Addr: 0x2000_0000_0000 + uint64(i%2048)*64, Size: 8, Signed: true,
			PAC: uint16(i % 1024), AHC: 3, HomeWay: 0, Assoc: 1,
			RowAddr: 0x3000_0000_0000 + uint64(i%1024)*64,
			Dest:    uint8(1 + i%16), Src1: isa.RegNone, Src2: isa.RegNone}
	}
	for i := range insts {
		noB.Emit(&insts[i])
	}
	for i := range insts {
		withB.Emit(&insts[i])
	}
	rNo, rWith := noB.Finalize(), withB.Finalize()
	// Without an L1-B the bounds lines contend with data in the L1-D.
	if rNo.L1D.Misses <= rWith.L1D.Misses {
		t.Errorf("L1D misses without L1-B (%d) not above with L1-B (%d)",
			rNo.L1D.Misses, rWith.L1D.Misses)
	}
	if rWith.L1B == nil {
		t.Fatal("L1B stats missing")
	}
}

func TestBndstrChargesOccupancyWalkAndDrain(t *testing.T) {
	c := New(DefaultConfig())
	in := isa.Inst{Op: isa.OpBndstr, PC: 0x400000, Addr: 0x2000_0000_0000,
		Signed: true, PAC: 7, AHC: 3, HomeWay: 2, Assoc: 4,
		RowAddr: 0x3000_0000_0000, Dest: isa.RegNone, Src1: isa.RegNone, Src2: isa.RegNone}
	c.Emit(&in)
	r := c.Finalize()
	// Ways 0,1,2 read + 1 drain write.
	if r.BoundsAccesses != 4 {
		t.Errorf("bndstr bounds accesses = %d, want 4", r.BoundsAccesses)
	}
}

func TestResizeChargesMigrationTraffic(t *testing.T) {
	c := New(DefaultConfig())
	in := isa.Inst{Op: isa.OpBndstr, PC: 0x400000, Addr: 0x2000_0000_0000,
		Signed: true, PAC: 7, AHC: 3, HomeWay: 0, Assoc: 2, Resize: true,
		RowAddr: 0x3000_0000_0000, Dest: isa.RegNone, Src1: isa.RegNone, Src2: isa.RegNone}
	c.Emit(&in)
	r := c.Finalize()
	if r.Resizes != 1 {
		t.Errorf("resizes = %d", r.Resizes)
	}
	// Old table was 1-way = 4 MiB; migration reads+writes it all.
	if r.Traffic.L2ToDRAM < 8<<20 {
		t.Errorf("migration traffic = %d bytes, want >= 8 MiB", r.Traffic.L2ToDRAM)
	}
}

func TestForwardingAvoidsBoundsAccesses(t *testing.T) {
	mk := func() []isa.Inst {
		var insts []isa.Inst
		for i := 0; i < 500; i++ {
			pac := uint16(i)
			row := 0x3000_0000_0000 + uint64(pac)*64
			addr := 0x2000_0000_0000 + uint64(i)*256
			insts = append(insts,
				isa.Inst{Op: isa.OpBndstr, PC: 0x400000, Addr: addr, Signed: true,
					PAC: pac, AHC: 2, HomeWay: 0, Assoc: 1, RowAddr: row,
					Dest: isa.RegNone, Src1: isa.RegNone, Src2: isa.RegNone},
				// Dereference immediately after allocation: the classic
				// forwarding win.
				isa.Inst{Op: isa.OpStore, PC: 0x400004, Addr: addr, Size: 8, Signed: true,
					PAC: pac, AHC: 2, HomeWay: 0, Assoc: 1, RowAddr: row,
					Dest: isa.RegNone, Src1: isa.RegNone, Src2: isa.RegNone})
		}
		return insts
	}
	cfgNoFw := DefaultConfig()
	cfgNoFw.MCU.Forwarding = false
	cNo := New(cfgNoFw)
	cYes := New(DefaultConfig())
	for _, in := range mk() {
		in := in
		cNo.Emit(&in)
	}
	for _, in := range mk() {
		in := in
		cYes.Emit(&in)
	}
	rNo, rYes := cNo.Finalize(), cYes.Finalize()
	if rYes.Forwards == 0 {
		t.Fatal("no forwards recorded")
	}
	if rYes.BoundsAccesses >= rNo.BoundsAccesses {
		t.Errorf("forwarding did not reduce bounds accesses: %d vs %d",
			rYes.BoundsAccesses, rNo.BoundsAccesses)
	}
	if rYes.Cycles > rNo.Cycles {
		t.Errorf("forwarding slowed the run: %d vs %d", rYes.Cycles, rNo.Cycles)
	}
}

func TestMCQBackPressure(t *testing.T) {
	// A burst of long-latency checked accesses must throttle a following
	// burst through MCQ occupancy: with a tiny MCQ the run takes longer.
	mk := func() []isa.Inst {
		insts := make([]isa.Inst, 3000)
		for i := range insts {
			insts[i] = isa.Inst{Op: isa.OpLoad, PC: 0x400000 + uint64(4*(i%64)),
				Addr: 0x2000_0000_0000 + uint64(i)*4096, Size: 8, Signed: true,
				PAC: uint16(i), AHC: 3, HomeWay: 3, Assoc: 4,
				RowAddr: 0x3000_0000_0000 + uint64(i%65536)*256,
				Dest:    uint8(1 + i%16), Src1: isa.RegNone, Src2: isa.RegNone}
		}
		return insts
	}
	small := DefaultConfig()
	small.MCQSize = 2
	cS := New(small)
	cL := New(DefaultConfig())
	for _, in := range mk() {
		in := in
		cS.Emit(&in)
	}
	for _, in := range mk() {
		in := in
		cL.Emit(&in)
	}
	rS, rL := cS.Finalize(), cL.Finalize()
	if rS.Cycles <= rL.Cycles {
		t.Errorf("tiny MCQ (%d cyc) not slower than 48-entry MCQ (%d cyc)", rS.Cycles, rL.Cycles)
	}
}

func TestEndToEndWithFunctionalMachine(t *testing.T) {
	// Full pipeline: functional machine emits into the timing core.
	for _, scheme := range instrument.Schemes() {
		m, err := core.New(core.Config{Scheme: scheme})
		if err != nil {
			t.Fatal(err)
		}
		c := New(DefaultConfig())
		m.SetSink(c)
		var ptrs []core.Ptr
		for i := 0; i < 200; i++ {
			p, err := m.Malloc(uint64(64 + i%300))
			if err != nil {
				t.Fatal(err)
			}
			ptrs = append(ptrs, p)
			for j := 0; j < 5; j++ {
				if err := m.Load(p, uint64(j*8), core.AccessOpts{Pointer: j == 0}); err != nil {
					t.Fatalf("%v: unexpected violation: %v", scheme, err)
				}
			}
			m.Compute(10, core.DepChain)
			m.Branch(uint32(i%7), i%3 != 0)
		}
		for _, p := range ptrs {
			if err := m.Free(p); err != nil {
				t.Fatal(err)
			}
		}
		r := c.Finalize()
		if r.Insts == 0 || r.Cycles == 0 {
			t.Fatalf("%v: empty result %+v", scheme, r)
		}
		if r.IPC() <= 0 || r.IPC() > float64(DefaultConfig().Width) {
			t.Errorf("%v: IPC %.2f out of range", scheme, r.IPC())
		}
		if scheme.SignsDataPointers() && r.CheckedOps == 0 {
			t.Errorf("%v: no checked ops", scheme)
		}
		if !scheme.SignsDataPointers() && r.CheckedOps != 0 {
			t.Errorf("%v: unexpected checked ops", scheme)
		}
	}
}

func TestSchemeOrderingOnHeapHeavyWorkload(t *testing.T) {
	// The paper's headline ordering on a heap-access-heavy workload:
	// Baseline fastest; AOS adds modest overhead; Watchdog adds more.
	cycles := map[instrument.Scheme]uint64{}
	for _, scheme := range []instrument.Scheme{instrument.Baseline, instrument.AOS, instrument.Watchdog} {
		m, err := core.New(core.Config{Scheme: scheme})
		if err != nil {
			t.Fatal(err)
		}
		c := New(DefaultConfig())
		m.SetSink(c)
		var ptrs []core.Ptr
		for i := 0; i < 64; i++ {
			p, _ := m.Malloc(4096)
			ptrs = append(ptrs, p)
		}
		for i := 0; i < 20000; i++ {
			p := ptrs[i%len(ptrs)]
			// ~30% of the accessed values are pointers, typical of
			// pointer-linked heap structures.
			opts := core.AccessOpts{Pointer: i%10 < 3}
			if err := m.Load(p, uint64(i%512)*8, opts); err != nil {
				t.Fatal(err)
			}
			m.Compute(2, core.DepFree)
		}
		cycles[scheme] = c.Finalize().Cycles
	}
	if cycles[instrument.AOS] <= cycles[instrument.Baseline] {
		t.Errorf("AOS (%d) not slower than baseline (%d)", cycles[instrument.AOS], cycles[instrument.Baseline])
	}
	if cycles[instrument.Watchdog] <= cycles[instrument.AOS] {
		t.Errorf("Watchdog (%d) not slower than AOS (%d) on this workload",
			cycles[instrument.Watchdog], cycles[instrument.AOS])
	}
}

func TestDefaultConfigMatchesTableIV(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Width != 8 || cfg.ROBSize != 192 || cfg.LQSize != 32 || cfg.SQSize != 32 || cfg.MCQSize != 48 {
		t.Errorf("core geometry diverges from Table IV: %+v", cfg)
	}
	cc := cfg.Caches
	if cc.L1D.SizeBytes != 64<<10 || cc.L1D.Ways != 8 {
		t.Error("L1-D diverges from Table IV")
	}
	if cc.L1B == nil || cc.L1B.SizeBytes != 32<<10 || cc.L1B.Ways != 4 {
		t.Error("L1-B diverges from Table IV")
	}
	if cc.L2.SizeBytes != 8<<20 || cc.L2.Ways != 16 || cc.L2.Latency != 8 {
		t.Error("L2 diverges from Table IV")
	}
	if cc.DRAMLatency != 100 { // 50 ns at 2 GHz
		t.Error("DRAM latency diverges from Table IV")
	}
	_ = cache.LineBytes
	_ = mcu.BWBEntries
}
