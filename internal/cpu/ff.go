package cpu

import (
	"aos/internal/isa"
	"aos/internal/mcu"
	"aos/internal/pa"
)

// Mode selects how the core consumes the instruction stream.
type Mode uint8

const (
	// ModeDetailed is the full timing model: port scheduling, structural
	// back-pressure, cycle accounting (the default).
	ModeDetailed Mode = iota
	// ModeFastForward is functional warming: every access still walks the
	// cache hierarchy, the branch predictor still trains, the BWB still
	// learns ways — so the micro-architectural state a later detailed
	// window observes is warm — but no port/queue/cycle bookkeeping runs.
	// The commit clock does not advance in this mode.
	ModeFastForward
)

// SetMode switches the consumption mode. Switching is legal at any
// instruction boundary; the SMARTS driver flips it at segment boundaries.
func (c *Core) SetMode(m Mode) { c.mode = m }

// Mode reports the current consumption mode.
func (c *Core) Mode() Mode { return c.mode }

// Insts returns instructions consumed since the last ResetStats (both
// modes advance it; only detailed segments advance the commit clock).
func (c *Core) Insts() uint64 { return c.insts }

// emitFF is the fast-forward path: functional warming only.
//
// It reproduces, access for access, the cache/predictor/BWB reference
// stream of the detailed path — I-line fetches, data reads/writes, HBT way
// walks, bounds-store drains, resize invalidations, Update-only predictor
// training (TAGE's Update performs its own lookup, so training without
// Predict leaves bit-identical tables) — while skipping everything keyed to
// cycles. One timing-dependent effect is deliberately absent and is part of
// the sampling error budget quantified by the error-bound test: bounds
// forwarding from in-flight bndstrs (it needs issue/drain cycles), so a
// signed access that detailed mode would have forwarded still walks its HBT
// ways here. With forwarding disabled the warmed state is bit-identical to
// detailed consumption (TestFFWarmingMatchesDetailed pins this).
func (c *Core) emitFF(in *isa.Inst) {
	c.insts++

	// I-side warming at line granularity, as fetch() references it.
	if line := in.PC &^ 63; line != c.lastLine {
		c.hier.FetchInst(in.PC)
		c.lastLine = line
	}

	// The access order below mirrors the detailed pipeline exactly —
	// execute-stage reads, then the MCU validation walk, then post-commit
	// store/drain writes — so the warmed cache state (LRU, dirtiness,
	// shared-L2 interleaving) is bit-identical to a detailed core consuming
	// the same stream (modulo the forwarding caveat above).
	va := pa.VA(in.Addr)
	switch {
	case in.Op == isa.OpLoad:
		c.hier.AccessData(va, false)
	case in.Op == isa.OpWDCheck && in.Addr != 0:
		c.hier.AccessBounds(va, false)
		c.boundsAccess++
	case in.Op == isa.OpBranch:
		c.bp.Update(in.BranchID, in.Taken)
	}

	switch {
	case in.Op.IsMem() && in.Signed && in.Op != isa.OpWDCheck:
		c.checked++
		for _, w := range c.checkWays(in) {
			c.hier.AccessBounds(in.RowAddr+uint64(w)<<6, false)
			c.boundsAccess++
		}
		if c.bwb != nil && in.HomeWay >= 0 {
			c.bwb.Update(mcu.BWBTag(va, in.AHC, in.PAC), int(in.HomeWay))
		}
	case in.Op.IsBoundsOp():
		if in.Resize {
			c.resizes++
			oldBytes := uint64(in.Assoc) / 2 * 4 << 20
			c.hier.AddBulkTraffic(2 * oldBytes)
			if c.bwb != nil {
				c.bwb.Invalidate()
			}
		}
		limit := int(in.HomeWay)
		if limit < 0 {
			limit = int(in.Assoc) - 1
		}
		for w := 0; w <= limit; w++ {
			c.hier.AccessBounds(in.RowAddr+uint64(w)<<6, false)
			c.boundsAccess++
		}
	}

	// Post-commit effects: store-buffer / tag / bounds-store drains.
	switch in.Op {
	case isa.OpStore, isa.OpSTG:
		c.hier.AccessData(va, true)
	case isa.OpBndstr:
		c.hier.AccessBounds(in.RowAddr+uint64(maxInt8(in.HomeWay, 0))<<6, true)
		c.boundsAccess++
	case isa.OpBndclr:
		if in.HomeWay >= 0 {
			c.hier.AccessBounds(in.RowAddr+uint64(in.HomeWay)<<6, true)
			c.boundsAccess++
		}
	default:
		// No post-commit memory effect.
	}
}
