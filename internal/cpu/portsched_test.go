package cpu

import "testing"

// mapSched is the pre-ring reference implementation of the port reservation
// scheme: a bare map of per-cycle counts plus a floor, exactly as the timing
// core used before the ring scheduler replaced it. The ring must be
// observably indistinguishable from it.
type mapSched struct {
	used  map[uint64]int
	floor uint64
	width int
}

func (m *mapSched) reserve(at uint64) uint64 {
	if at < m.floor {
		at = m.floor
	}
	for m.used[at] >= m.width {
		at++
	}
	m.used[at]++
	return at
}

func (m *mapSched) advance(newFloor uint64) {
	if newFloor <= m.floor {
		return
	}
	for k := range m.used {
		if k < newFloor {
			delete(m.used, k)
		}
	}
	m.floor = newFloor
}

// TestPortSchedMatchesMapModel drives the ring scheduler and the old map
// scheme with an identical reservation stream — including bursts that
// overflow the ring window and periodic floor advances mid-burst — and
// demands grant-for-grant equality.
func TestPortSchedMatchesMapModel(t *testing.T) {
	for _, width := range []int{1, 2, 3} {
		s := newPortSched(width)
		ref := &mapSched{used: map[uint64]int{}, width: width}
		rng := uint64(0x9E3779B97F4A7C15)
		next := func(mod uint64) uint64 {
			rng = rng*6364136223846793005 + 1442695040888963407
			return (rng >> 33) % mod
		}
		cur := uint64(0)
		for i := 0; i < 300_000; i++ {
			cur += next(48)
			at := cur
			switch next(16) {
			case 0:
				// Far-future reservation: lands beyond the ring window and
				// must spill to the overflow map.
				at += portWindow + next(portWindow)
			case 1:
				// Below-floor request: exercises the clamp.
				at = cur / 2
			}
			got, want := s.reserve(at), ref.reserve(at)
			if got != want {
				t.Fatalf("width %d, step %d: reserve(%d) = %d, map model says %d",
					width, i, at, got, want)
			}
			if i%4096 == 0 {
				floor := uint64(0)
				if cur > 2048 {
					floor = cur - 2048
				}
				s.advance(floor)
				ref.advance(floor)
			}
		}
	}
}

// TestPortSchedAdvanceBeyondWindow covers the whole-ring reset path: a jump
// of more than the window must clear every slot and re-anchor the base.
func TestPortSchedAdvanceBeyondWindow(t *testing.T) {
	s := newPortSched(1)
	for i := uint64(0); i < 10; i++ {
		s.reserve(i)
	}
	far := uint64(5 * portWindow)
	s.advance(far)
	// Every cycle below the new base must be clamped up, and the window
	// must be empty: consecutive reservations get consecutive cycles.
	for i := uint64(0); i < 10; i++ {
		if got := s.reserve(100); got != far+i {
			t.Fatalf("after advance(%d): reservation %d granted %d, want %d", far, i, got, far+i)
		}
	}
}

func TestPortSchedWidthValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("newPortSched(0) did not panic")
		}
	}()
	newPortSched(0)
}
