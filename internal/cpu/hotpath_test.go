package cpu

import (
	"testing"

	"aos/internal/isa"
)

// TestBndstrDrainStaleness pins the PAC-reuse contract of the direct-indexed
// drain table: a bndstr's drain cycle may forward an immediately following
// check, but once simulated time has moved past it — further than the whole
// port-scheduler window, so the table entry is long stale — a reused PAC
// must take the full bounds-check path, not a spurious forward.
func TestBndstrDrainStaleness(t *testing.T) {
	c := New(DefaultConfig()) // forwarding enabled
	pac := uint16(7)
	row := uint64(0x3000_0000_0000)
	sign := func(in isa.Inst) isa.Inst {
		in.Signed = true
		in.PAC = pac
		in.AHC = 2
		in.HomeWay = 0
		in.Assoc = 1
		in.RowAddr = row
		return in
	}
	bnd := sign(isa.Inst{Op: isa.OpBndstr, PC: 0x400000, Addr: 0x2000_0000_0000,
		Dest: isa.RegNone, Src1: isa.RegNone, Src2: isa.RegNone})
	c.Emit(&bnd)
	st := sign(isa.Inst{Op: isa.OpStore, PC: 0x400004, Addr: 0x2000_0000_0000, Size: 8,
		Dest: isa.RegNone, Src1: isa.RegNone, Src2: isa.RegNone})
	c.Emit(&st)
	fresh := c.forwards
	if fresh == 0 {
		t.Fatal("control failed: check right behind its bndstr did not forward")
	}

	// Drag simulated time far past the drain cycle (and past the scheduler
	// window) with a DRAM-missing dependent load chain.
	for i := 0; i < 2000; i++ {
		in := isa.Inst{Op: isa.OpLoad, PC: 0x400000 + uint64(4*(i%64)),
			Addr: 0x4000_0000_0000 + uint64(i)*4096, Size: 8,
			Dest: 1, Src1: 1, Src2: isa.RegNone}
		c.Emit(&in)
	}
	if gap := c.lastCommit; gap < portWindow {
		t.Fatalf("chain advanced only %d cycles, need > %d for a stale-window gap", gap, portWindow)
	}

	boundsBefore := c.boundsAccess
	reuse := sign(isa.Inst{Op: isa.OpLoad, PC: 0x400008, Addr: 0x2000_0000_0000, Size: 8,
		Dest: 2, Src1: isa.RegNone, Src2: isa.RegNone})
	c.Emit(&reuse)
	if c.forwards != fresh {
		t.Errorf("stale drain entry forwarded a reused PAC: forwards %d -> %d", fresh, c.forwards)
	}
	if c.boundsAccess == boundsBefore {
		t.Error("reused-PAC check performed no bounds accesses; it must take the full path")
	}
}

// TestCoreEmitAllocsSteadyState is the zero-allocation guard for the timing
// hot path: once the core is warm, emitting instructions — loads, checked
// accesses, bounds ops, branches — must not allocate at all.
func TestCoreEmitAllocsSteadyState(t *testing.T) {
	c := New(DefaultConfig())
	batch := make([]isa.Inst, 0, 4096)
	for i := 0; i < 1024; i++ {
		pac := uint16(i % 48)
		row := 0x3000_0000_0000 + uint64(pac)*64
		addr := 0x2000_0000_0000 + uint64(pac)*4096 + uint64(i%8)*64
		batch = append(batch,
			isa.Inst{Op: isa.OpALU, PC: 0x400000 + uint64(4*(i%256)),
				Dest: uint8(1 + i%24), Src1: isa.RegNone, Src2: isa.RegNone},
			isa.Inst{Op: isa.OpLoad, PC: 0x400100 + uint64(4*(i%64)),
				Addr: addr, Size: 8, Signed: true, PAC: pac, AHC: 3,
				HomeWay: 0, Assoc: 1, RowAddr: row,
				Dest: uint8(1 + i%16), Src1: isa.RegNone, Src2: isa.RegNone},
			isa.Inst{Op: isa.OpBranch, PC: 0x400200 + uint64(4*(i%64)),
				BranchID: uint32(i % 8), Taken: i%3 != 0,
				Dest: isa.RegNone, Src1: isa.RegNone, Src2: isa.RegNone},
			isa.Inst{Op: isa.OpBndstr, PC: 0x400300, Addr: addr, Signed: true,
				PAC: pac, AHC: 3, HomeWay: 0, Assoc: 1, RowAddr: row,
				Dest: isa.RegNone, Src1: isa.RegNone, Src2: isa.RegNone})
	}
	emit := func() {
		for i := range batch {
			c.Emit(&batch[i])
		}
	}
	emit() // warm: caches, predictor and BWB populate their fixed structures
	if allocs := testing.AllocsPerRun(20, emit); allocs != 0 {
		t.Errorf("steady-state Emit allocates: %.1f allocs per %d-inst batch, want 0",
			allocs, len(batch))
	}
}
