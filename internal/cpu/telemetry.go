package cpu

import (
	"aos/internal/isa"
	"aos/internal/mcu"
	"aos/internal/telemetry"
)

// coreTelemetry is the timing core's flight-recorder wiring: the
// probes it registers plus the previous-sample snapshot used to turn
// the core's cumulative stats into per-window counter deltas.
//
// Everything here is off the critical path: hot-path integration
// points in Emit are single nil checks (or the one nextSample
// compare), and the heavier work — ring occupancy scans, rate
// computation — runs only at sample boundaries.
type coreTelemetry struct {
	tl *telemetry.Timeline

	// Sample-time derived counters (fed by deltas of the core's
	// cumulative stats, so ResetStats at the warmup boundary just
	// clears the snapshot below).
	insts       *telemetry.Counter
	cycles      *telemetry.Counter
	checked     *telemetry.Counter
	boundsAcc   *telemetry.Counter
	forwards    *telemetry.Counter
	retireDelay *telemetry.Counter
	bwbHits     *telemetry.Counter
	bwbMisses   *telemetry.Counter
	resizes     *telemetry.Counter

	// Hot-path counters (guarded adds in Emit).
	stallROB       *telemetry.Counter
	stallLQ        *telemetry.Counter
	stallSQ        *telemetry.Counter
	stallMCQ       *telemetry.Counter
	boundsPortWait *telemetry.Counter
	dataPortWait   *telemetry.Counter

	// Sample-time gauges.
	ipcMilli    *telemetry.Gauge
	mcqOcc      *telemetry.Gauge
	robOcc      *telemetry.Gauge
	lqOcc       *telemetry.Gauge
	sqOcc       *telemetry.Gauge
	dMSHROcc    *telemetry.Gauge
	bMSHROcc    *telemetry.Gauge
	bwbHitPct   *telemetry.Gauge
	probeDepthM *telemetry.Gauge

	// prev is the cumulative-stat snapshot at the previous sample.
	prev struct {
		cycle       uint64
		insts       uint64
		checked     uint64
		boundsAcc   uint64
		forwards    uint64
		retireDelay uint64
		bwb         mcu.BWBStats
		resizes     int
	}
}

func newCoreTelemetry(tl *telemetry.Timeline) *coreTelemetry {
	r := tl.Registry()
	return &coreTelemetry{
		tl:          tl,
		insts:       r.Counter("cpu_insts_total"),
		cycles:      r.Counter("cpu_cycles_total"),
		checked:     r.Counter("mcu_checked_ops_total"),
		boundsAcc:   r.Counter("mcu_bounds_accesses_total"),
		forwards:    r.Counter("mcu_forwards_total"),
		retireDelay: r.Counter("cpu_retire_delay_cycles_total"),
		bwbHits:     r.Counter("mcu_bwb_hits_total"),
		bwbMisses:   r.Counter("mcu_bwb_misses_total"),
		resizes:     r.Counter("hbt_resizes_total"),

		stallROB:       r.Counter("cpu_stall_rob_cycles_total"),
		stallLQ:        r.Counter("cpu_stall_lq_cycles_total"),
		stallSQ:        r.Counter("cpu_stall_sq_cycles_total"),
		stallMCQ:       r.Counter("cpu_stall_mcq_cycles_total"),
		boundsPortWait: r.Counter("mcu_bounds_port_wait_cycles_total"),
		dataPortWait:   r.Counter("cpu_data_port_wait_cycles_total"),

		ipcMilli:    r.Gauge("cpu_ipc_milli"),
		mcqOcc:      r.Gauge("cpu_mcq_occupancy"),
		robOcc:      r.Gauge("cpu_rob_occupancy"),
		lqOcc:       r.Gauge("cpu_lq_occupancy"),
		sqOcc:       r.Gauge("cpu_sq_occupancy"),
		dMSHROcc:    r.Gauge("cpu_data_mshr_occupancy"),
		bMSHROcc:    r.Gauge("mcu_bounds_mshr_occupancy"),
		bwbHitPct:   r.Gauge("mcu_bwb_hit_rate_pct"),
		probeDepthM: r.Gauge("mcu_probe_depth_milli"),
	}
}

// AttachTelemetry enables cycle-windowed sampling: the core registers
// its probes in the timeline's registry and drives Timeline.Sample
// from the commit path every timeline interval. Attach before
// emitting any instructions. With no timeline attached the only
// residue on the hot path is one integer compare against an
// unreachable sentinel, preserving both the zero-allocation
// steady-state contract and byte-identical results.
func (c *Core) AttachTelemetry(tl *telemetry.Timeline) {
	c.tel = newCoreTelemetry(tl)
	c.nextSample = tl.Next()
}

// ringOcc counts slots still held (freeing after the commit frontier).
func ringOcc(ring []uint64, now uint64) uint64 {
	n := uint64(0)
	for _, v := range ring {
		if v > now {
			n++
		}
	}
	return n
}

// takeSample records one telemetry row at the current commit cycle.
// Runs every sampling interval only; allocation here is fine (the
// zero-alloc contract covers the disabled path).
func (c *Core) takeSample() {
	t := c.tel
	now := c.lastCommit

	// Fold cumulative core stats into counters as deltas. ResetStats
	// (the warmup boundary) zeroes both the stats and the snapshot,
	// so windows never go negative.
	var bwb mcu.BWBStats
	if c.bwb != nil {
		bwb = c.bwb.Stats()
	}
	dBWB := bwb.Delta(t.prev.bwb)
	t.insts.Add(c.insts - t.prev.insts)
	t.cycles.Add(now - t.prev.cycle)
	t.checked.Add(c.checked - t.prev.checked)
	t.boundsAcc.Add(c.boundsAccess - t.prev.boundsAcc)
	t.forwards.Add(c.forwards - t.prev.forwards)
	t.retireDelay.Add(c.retireDelay - t.prev.retireDelay)
	t.bwbHits.Add(dBWB.Hits)
	t.bwbMisses.Add(dBWB.Misses)
	t.resizes.Add(uint64(c.resizes - t.prev.resizes))

	// Windowed rates as gauges.
	dCyc := now - t.prev.cycle
	dInsts := c.insts - t.prev.insts
	if dCyc > 0 {
		t.ipcMilli.Set(1000 * dInsts / dCyc)
	}
	if dBWB.Lookups() > 0 {
		t.bwbHitPct.Set(100 * dBWB.Hits / dBWB.Lookups())
	} else {
		t.bwbHitPct.Set(0)
	}
	dChecked := c.checked - t.prev.checked
	if dChecked > 0 {
		t.probeDepthM.Set(1000 * (c.boundsAccess - t.prev.boundsAcc) / dChecked)
	} else {
		t.probeDepthM.Set(0)
	}

	// Structural occupancy at the commit frontier.
	t.mcqOcc.Set(ringOcc(c.mcqRing, now))
	t.robOcc.Set(ringOcc(c.robRing, now))
	t.lqOcc.Set(ringOcc(c.lqRing, now))
	t.sqOcc.Set(ringOcc(c.sqRing, now))
	t.dMSHROcc.Set(ringOcc(c.dMSHR, now))
	t.bMSHROcc.Set(ringOcc(c.bMSHR, now))

	t.prev.cycle = now
	t.prev.insts = c.insts
	t.prev.checked = c.checked
	t.prev.boundsAcc = c.boundsAccess
	t.prev.forwards = c.forwards
	t.prev.retireDelay = c.retireDelay
	t.prev.bwb = bwb
	t.prev.resizes = c.resizes

	t.tl.Sample(now, c.insts)
	c.nextSample = t.tl.Next()
}

// onResetStats re-bases the delta snapshot when the core's cumulative
// stats are cleared at the warmup boundary. The cycle base stays at
// the commit frontier because lastCommit is monotonic across resets.
func (t *coreTelemetry) onResetStats(lastCommit uint64) {
	t.prev.cycle = lastCommit
	t.prev.insts = 0
	t.prev.checked = 0
	t.prev.boundsAcc = 0
	t.prev.forwards = 0
	t.prev.retireDelay = 0
	t.prev.bwb = mcu.BWBStats{}
	t.prev.resizes = 0
}

// telNoteDispatch attributes a structural dispatch stall to the
// back-pressuring structure (largest release cycle wins; the MCQ —
// the AOS-specific structure — takes ties). base is the
// front-end-only dispatch cycle, dispatch the structural result.
// Called from Emit only when telemetry is attached.
func (c *Core) telNoteDispatch(in *isa.Inst, base, dispatch uint64, usesMCQ bool) {
	if dispatch <= base {
		return
	}
	stall := dispatch - base
	target := c.tel.stallROB
	best := c.robRing[c.robIdx]
	if in.Op == isa.OpLoad && c.lqRing[c.lqIdx] > best {
		best = c.lqRing[c.lqIdx]
		target = c.tel.stallLQ
	}
	if in.Op == isa.OpStore && c.sqRing[c.sqIdx] > best {
		best = c.sqRing[c.sqIdx]
		target = c.tel.stallSQ
	}
	if usesMCQ && c.mcqRing[c.mcqIdx] >= best {
		target = c.tel.stallMCQ
	}
	target.Add(stall)
}

// telNoteResize records an HBT resize episode as a duration slice:
// the migration engine walks the old table at one line per cycle
// while the program keeps running (§IV-D's gradual resize), so the
// modeled episode spans oldBytes/64 cycles from the triggering
// bounds-store's issue.
func (c *Core) telNoteResize(in *isa.Inst, issue, oldBytes uint64) {
	c.tel.tl.AddSlice("hbt_resize", issue, oldBytes/64, map[string]uint64{
		"old_assoc":     uint64(in.Assoc) / 2,
		"new_assoc":     uint64(in.Assoc),
		"moved_bytes":   oldBytes,
		"traffic_bytes": 2 * oldBytes,
	})
}
