package cpu

import (
	"testing"

	"aos/internal/isa"
)

func alu(i int) isa.Inst {
	return isa.Inst{Op: isa.OpALU, PC: 0x400000 + uint64(4*(i%64)),
		Dest: uint8(1 + i%16), Src1: isa.RegNone, Src2: isa.RegNone}
}

func TestCryptoUnitQueues(t *testing.T) {
	// A dense burst of pacia ops must serialize on the half-pipelined
	// QARMA unit (one new operation every 2 cycles), while the same count
	// of ALU ops flows at width.
	mk := func(op isa.Op) []isa.Inst {
		insts := make([]isa.Inst, 2000)
		for i := range insts {
			insts[i] = isa.Inst{Op: op, PC: 0x400000 + uint64(4*(i%64)),
				Dest: uint8(1 + i%16), Src1: isa.RegNone, Src2: isa.RegNone}
		}
		return insts
	}
	run := func(insts []isa.Inst) uint64 {
		c := New(DefaultConfig())
		for i := range insts {
			c.Emit(&insts[i])
		}
		return c.Finalize().Cycles
	}
	aluCycles := run(mk(isa.OpALU))
	pacCycles := run(mk(isa.OpPacia))
	if pacCycles < 2*2000-100 {
		t.Errorf("2000 pacia ops in %d cycles; the crypto unit admits one per 2 cycles", pacCycles)
	}
	if pacCycles < aluCycles*4 {
		t.Errorf("crypto burst (%d) not markedly slower than ALU burst (%d)", pacCycles, aluCycles)
	}
}

func TestDataMSHRsLimitMissParallelism(t *testing.T) {
	// Independent DRAM-missing loads: with 2 MSHRs the run must be much
	// slower than with the default 10.
	mk := func() []isa.Inst {
		insts := make([]isa.Inst, 2000)
		for i := range insts {
			insts[i] = isa.Inst{Op: isa.OpLoad, PC: 0x400000 + uint64(4*(i%64)),
				Addr: 0x2000_0000_0000 + uint64(i)*4096, Size: 8,
				Dest: uint8(1 + i%16), Src1: isa.RegNone, Src2: isa.RegNone}
		}
		return insts
	}
	run := func(mshrs int) uint64 {
		cfg := DefaultConfig()
		cfg.DataMSHRs = mshrs
		c := New(cfg)
		for _, in := range mk() {
			in := in
			c.Emit(&in)
		}
		return c.Finalize().Cycles
	}
	narrow, wide := run(2), run(10)
	if narrow <= wide {
		t.Errorf("2-MSHR run (%d) not slower than 10-MSHR run (%d)", narrow, wide)
	}
}

func TestDataPortLimitsLoadThroughput(t *testing.T) {
	// L1-hitting independent loads: throughput must cap near the data-port
	// width (2/cycle), well below the 8-wide pipeline.
	insts := make([]isa.Inst, 20000)
	for i := range insts {
		insts[i] = isa.Inst{Op: isa.OpLoad, PC: 0x400000 + uint64(4*(i%64)),
			Addr: 0x2000_0000_0000 + uint64(i%64)*64, Size: 8,
			Dest: uint8(1 + i%16), Src1: isa.RegNone, Src2: isa.RegNone}
	}
	c := New(DefaultConfig())
	for i := range insts {
		c.Emit(&insts[i])
	}
	r := c.Finalize()
	perCycle := float64(r.Insts) / float64(r.Cycles)
	if perCycle > 2.3 {
		t.Errorf("load throughput %.2f/cycle exceeds the 2-port L1-D", perCycle)
	}
	if perCycle < 1.5 {
		t.Errorf("load throughput %.2f/cycle far below the port limit", perCycle)
	}
}

func TestNoL1BSharesDataPorts(t *testing.T) {
	// Checked loads at high rate: without an L1-B, bounds lookups displace
	// data-port slots, so the run must be at least as slow as with the
	// dedicated bounds port.
	mk := func() []isa.Inst {
		insts := make([]isa.Inst, 10000)
		for i := range insts {
			pac := uint16(i % 32)
			insts[i] = isa.Inst{Op: isa.OpLoad, PC: 0x400000 + uint64(4*(i%64)),
				Addr: 0x2000_0000_0000 + uint64(pac)*4096 + uint64(i%8)*64, Size: 8,
				Signed: true, PAC: pac, AHC: 3, HomeWay: 0, Assoc: 1,
				RowAddr: 0x3000_0000_0000 + uint64(pac)*64,
				Dest:    uint8(1 + i%16), Src1: isa.RegNone, Src2: isa.RegNone}
		}
		return insts
	}
	run := func(noL1B bool) uint64 {
		cfg := DefaultConfig()
		if noL1B {
			cfg.Caches.L1B = nil
		}
		c := New(cfg)
		for _, in := range mk() {
			in := in
			c.Emit(&in)
		}
		return c.Finalize().Cycles
	}
	with, without := run(false), run(true)
	if without < with {
		t.Errorf("no-L1B (%d cycles) faster than dedicated L1-B (%d)", without, with)
	}
}

func TestResetStatsStartsMeasurementWindow(t *testing.T) {
	c := New(DefaultConfig())
	for i := 0; i < 5000; i++ {
		in := alu(i)
		c.Emit(&in)
	}
	warm := c.LastCommit()
	c.ResetStats()
	for i := 0; i < 5000; i++ {
		in := alu(i)
		c.Emit(&in)
	}
	r := c.Finalize()
	if r.Insts != 5000 {
		t.Errorf("measured insts = %d, want 5000", r.Insts)
	}
	if r.Cycles >= warm {
		t.Errorf("measured cycles %d include the warmup (%d)", r.Cycles, warm)
	}
	if r.Cycles == 0 {
		t.Error("measured cycles = 0")
	}
	// Cache contents survived the reset: the I-lines are warm, so the
	// measured window has no I-cache misses.
	if r.L1I.Misses != 0 {
		t.Errorf("warm I-cache missed %d times after reset", r.L1I.Misses)
	}
}

func TestRedirectAfterMispredict(t *testing.T) {
	// One guaranteed mispredict: the next instruction's commit must come
	// at least the redirect penalty later than without it.
	run := func(taken bool) uint64 {
		c := New(DefaultConfig())
		// Train the predictor not-taken.
		for i := 0; i < 200; i++ {
			in := isa.Inst{Op: isa.OpBranch, PC: 0x400000, BranchID: 9, Taken: false,
				Dest: isa.RegNone, Src1: isa.RegNone, Src2: isa.RegNone}
			c.Emit(&in)
		}
		br := isa.Inst{Op: isa.OpBranch, PC: 0x400000, BranchID: 9, Taken: taken,
			Dest: isa.RegNone, Src1: isa.RegNone, Src2: isa.RegNone}
		c.Emit(&br)
		in := alu(0)
		c.Emit(&in)
		return c.Finalize().Cycles
	}
	good, bad := run(false), run(true)
	if bad < good+uint64(DefaultConfig().MispredictPenalty) {
		t.Errorf("mispredict cost only %d cycles, penalty is %d", bad-good, DefaultConfig().MispredictPenalty)
	}
}
