package cpu

import (
	"fmt"

	"aos/internal/bpred"
	"aos/internal/cache"
	"aos/internal/isa"
	"aos/internal/mcu"
)

// portSchedState is a deep copy of one port scheduler's reservation window.
type portSchedState struct {
	ring     []uint8
	base     uint64
	overflow map[uint64]uint8
}

func (s *portSched) snapshot() portSchedState {
	st := portSchedState{
		ring: append([]uint8(nil), s.ring...),
		base: s.base,
	}
	if len(s.overflow) != 0 {
		st.overflow = make(map[uint64]uint8, len(s.overflow))
		for c, n := range s.overflow { //aoslint:allow mapiter — order-free: builds an independent map, no order-dependent effects
			st.overflow[c] = n
		}
	}
	return st
}

func (s *portSched) restore(st portSchedState) {
	copy(s.ring, st.ring)
	s.base = st.base
	s.overflow = nil
	if len(st.overflow) != 0 {
		s.overflow = make(map[uint64]uint8, len(st.overflow))
		for c, n := range st.overflow { //aoslint:allow mapiter — order-free: builds an independent map, no order-dependent effects
			s.overflow[c] = n
		}
	}
}

// CoreState is a deep checkpoint of the timing model: the warmed memory
// system and predictor, every occupancy ring and clock, and the statistics
// counters. Runtime wiring — config, the wayScratch buffer, the observer,
// telemetry probes, and the consumption mode — is NOT captured; Restore
// keeps the target core's wiring.
type CoreState struct {
	hier *cache.HierarchyState
	bp   *bpred.State
	bwb  *mcu.BWBState // nil when the BWB is disabled

	fetchCycle uint64
	fetchCount int
	lastLine   uint64
	redirect   uint64

	regReady [isa.NumRegs]uint64

	robRing []uint64
	robIdx  int
	lqRing  []uint64
	lqIdx   int
	sqRing  []uint64
	sqIdx   int
	mcqRing []uint64
	mcqIdx  int

	lastCommit  uint64
	commitCycle uint64
	commitUsed  int

	port  portSchedState
	dPort portSchedState

	dMSHR    []uint64
	dMSHRIdx int
	bMSHR    []uint64
	bMSHRIdx int

	cryptoFree uint64

	bndstrDrain  []uint64
	checked      uint64
	boundsAccess uint64
	forwards     uint64
	resizes      int
	retireDelay  uint64

	insts      uint64
	statsSince uint64
}

// Snapshot deep-copies the core's simulated state (~1 MB, dominated by the
// bndstr drain table and the port windows). The snapshot is immutable and
// reusable for any number of Restores.
func (c *Core) Snapshot() *CoreState {
	s := &CoreState{
		hier:         c.hier.Snapshot(),
		bp:           c.bp.Snapshot(),
		fetchCycle:   c.fetchCycle,
		fetchCount:   c.fetchCount,
		lastLine:     c.lastLine,
		redirect:     c.redirect,
		regReady:     c.regReady,
		robRing:      append([]uint64(nil), c.robRing...),
		robIdx:       c.robIdx,
		lqRing:       append([]uint64(nil), c.lqRing...),
		lqIdx:        c.lqIdx,
		sqRing:       append([]uint64(nil), c.sqRing...),
		sqIdx:        c.sqIdx,
		mcqRing:      append([]uint64(nil), c.mcqRing...),
		mcqIdx:       c.mcqIdx,
		lastCommit:   c.lastCommit,
		commitCycle:  c.commitCycle,
		commitUsed:   c.commitUsed,
		port:         c.port.snapshot(),
		dPort:        c.dPort.snapshot(),
		dMSHR:        append([]uint64(nil), c.dMSHR...),
		dMSHRIdx:     c.dMSHRIdx,
		bMSHR:        append([]uint64(nil), c.bMSHR...),
		bMSHRIdx:     c.bMSHRIdx,
		cryptoFree:   c.cryptoFree,
		bndstrDrain:  append([]uint64(nil), c.bndstrDrain...),
		checked:      c.checked,
		boundsAccess: c.boundsAccess,
		forwards:     c.forwards,
		resizes:      c.resizes,
		retireDelay:  c.retireDelay,
		insts:        c.insts,
		statsSince:   c.statsSince,
	}
	if c.bwb != nil {
		s.bwb = c.bwb.Snapshot()
	}
	return s
}

// Restore rewinds the core to a snapshot taken from an identically
// configured core, keeping the target's runtime wiring (config, observer,
// telemetry, mode). The snapshot stays valid for further Restores.
func (c *Core) Restore(s *CoreState) error {
	if (c.bwb != nil) != (s.bwb != nil) {
		return fmt.Errorf("cpu: restore mismatch: BWB presence differs")
	}
	if len(s.robRing) != len(c.robRing) || len(s.lqRing) != len(c.lqRing) ||
		len(s.sqRing) != len(c.sqRing) || len(s.mcqRing) != len(c.mcqRing) ||
		len(s.dMSHR) != len(c.dMSHR) || len(s.bMSHR) != len(c.bMSHR) {
		return fmt.Errorf("cpu: restore mismatch: queue geometry differs")
	}
	if err := c.hier.Restore(s.hier); err != nil {
		return fmt.Errorf("cpu: %w", err)
	}
	c.bp.Restore(s.bp)
	if c.bwb != nil {
		c.bwb.Restore(s.bwb)
	}
	c.fetchCycle = s.fetchCycle
	c.fetchCount = s.fetchCount
	c.lastLine = s.lastLine
	c.redirect = s.redirect
	c.regReady = s.regReady
	copy(c.robRing, s.robRing)
	c.robIdx = s.robIdx
	copy(c.lqRing, s.lqRing)
	c.lqIdx = s.lqIdx
	copy(c.sqRing, s.sqRing)
	c.sqIdx = s.sqIdx
	copy(c.mcqRing, s.mcqRing)
	c.mcqIdx = s.mcqIdx
	c.lastCommit = s.lastCommit
	c.commitCycle = s.commitCycle
	c.commitUsed = s.commitUsed
	c.port.restore(s.port)
	c.dPort.restore(s.dPort)
	copy(c.dMSHR, s.dMSHR)
	c.dMSHRIdx = s.dMSHRIdx
	copy(c.bMSHR, s.bMSHR)
	c.bMSHRIdx = s.bMSHRIdx
	c.cryptoFree = s.cryptoFree
	copy(c.bndstrDrain, s.bndstrDrain)
	c.checked = s.checked
	c.boundsAccess = s.boundsAccess
	c.forwards = s.forwards
	c.resizes = s.resizes
	c.retireDelay = s.retireDelay
	c.insts = s.insts
	c.statsSince = s.statsSince
	return nil
}
