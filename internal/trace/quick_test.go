package trace

import (
	"bytes"
	"testing"
	"testing/quick"

	"aos/internal/isa"
)

// TestRoundTripProperty encodes arbitrary instructions and requires exact
// reconstruction (testing/quick drives the field values).
func TestRoundTripProperty(t *testing.T) {
	f := func(op uint8, dest, src1, src2 uint8, pc, addr, rowAddr uint64,
		size uint32, pac uint16, branchID uint32, ahc uint8, homeWay int8,
		assoc uint8, signed, taken, resize bool) bool {

		in := isa.Inst{
			Op: isa.Op(op), Dest: dest, Src1: src1, Src2: src2,
			PC: pc, Addr: addr, RowAddr: rowAddr, Size: size, PAC: pac,
			BranchID: branchID, AHC: ahc, HomeWay: homeWay, Assoc: assoc,
			Signed: signed, Taken: taken, Resize: resize,
		}
		var buf bytes.Buffer
		w, err := NewWriter(&buf)
		if err != nil {
			return false
		}
		w.Emit(&in)
		if err := w.Close(); err != nil {
			return false
		}
		r, err := NewReader(bytes.NewReader(buf.Bytes()))
		if err != nil {
			return false
		}
		var out isa.Inst
		if !r.Next(&out) {
			return false
		}
		return out == in
	}
	cfg := &quick.Config{MaxCount: 500}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
