// Package trace records and replays dynamic instruction streams in a
// compact binary format. Recording decouples the two simulation phases:
// one functional execution (allocator + PA + HBT) can be replayed through
// many timing configurations — the workflow used for parameter sweeps,
// and the shape of artifact a trace-driven simulator ships with.
//
// Format: a 16-byte header (magic, version, instruction count) followed by
// fixed-width 44-byte little-endian records. The encoding is
// self-contained and versioned; readers reject unknown versions.
package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"aos/internal/isa"
)

// Magic identifies a trace stream ("AOSTRACE" truncated into 4 bytes).
const Magic = 0x414F5354 // "AOST"

// Version is the current format version.
const Version = 1

// recordSize is the fixed per-instruction encoding size.
const recordSize = 44

// header layout: magic u32 | version u32 | count u64.
const headerSize = 16

// Writer serializes instructions to an io.Writer. It implements isa.Sink,
// so it can tee a live functional run to disk. Close must be called to
// flush and finalize the header count.
type Writer struct {
	w     *bufio.Writer
	seek  io.WriteSeeker // nil if the destination is not seekable
	count uint64
	err   error
	buf   [recordSize]byte
}

// NewWriter starts a trace on w. If w is also an io.WriteSeeker the final
// instruction count is patched into the header on Close; otherwise the
// count field is left zero and readers run until EOF.
func NewWriter(w io.Writer) (*Writer, error) {
	tw := &Writer{w: bufio.NewWriterSize(w, 1<<16)}
	if ws, ok := w.(io.WriteSeeker); ok {
		tw.seek = ws
	}
	var hdr [headerSize]byte
	binary.LittleEndian.PutUint32(hdr[0:], Magic)
	binary.LittleEndian.PutUint32(hdr[4:], Version)
	if _, err := tw.w.Write(hdr[:]); err != nil {
		return nil, err
	}
	return tw, nil
}

// EmitBatch implements isa.BatchSink: records are serialized in order,
// identically to scalar Emit calls.
func (t *Writer) EmitBatch(batch []isa.Inst) {
	for i := range batch {
		t.Emit(&batch[i])
	}
}

// Emit implements isa.Sink.
func (t *Writer) Emit(in *isa.Inst) {
	if t.err != nil {
		return
	}
	b := t.buf[:]
	b[0] = byte(in.Op)
	b[1] = in.Dest
	b[2] = in.Src1
	b[3] = in.Src2
	var flags byte
	if in.Signed {
		flags |= 1
	}
	if in.Taken {
		flags |= 2
	}
	if in.Resize {
		flags |= 4
	}
	b[4] = flags
	b[5] = byte(in.AHC)
	b[6] = byte(in.HomeWay)
	b[7] = in.Assoc
	binary.LittleEndian.PutUint64(b[8:], in.PC)
	binary.LittleEndian.PutUint64(b[16:], in.Addr)
	binary.LittleEndian.PutUint64(b[24:], in.RowAddr)
	binary.LittleEndian.PutUint32(b[32:], in.Size)
	binary.LittleEndian.PutUint16(b[36:], in.PAC)
	binary.LittleEndian.PutUint32(b[38:], in.BranchID)
	// b[42:44] reserved.
	if _, err := t.w.Write(b); err != nil {
		t.err = err
		return
	}
	t.count++
}

// Count returns the number of instructions written so far.
func (t *Writer) Count() uint64 { return t.count }

// Close flushes the stream and, when possible, patches the header count.
func (t *Writer) Close() error {
	if t.err != nil {
		return t.err
	}
	if err := t.w.Flush(); err != nil {
		return err
	}
	if t.seek != nil {
		if _, err := t.seek.Seek(8, io.SeekStart); err != nil {
			return err
		}
		var cnt [8]byte
		binary.LittleEndian.PutUint64(cnt[:], t.count)
		if _, err := t.seek.Write(cnt[:]); err != nil {
			return err
		}
		if _, err := t.seek.Seek(0, io.SeekEnd); err != nil {
			return err
		}
	}
	return nil
}

// Reader decodes a trace; it implements isa.Stream. Next returns false at
// the end of the stream OR on a decode failure — consult Err afterwards to
// distinguish a clean end from truncation or I/O trouble.
type Reader struct {
	r     *bufio.Reader
	count uint64 // 0 = unknown, read to EOF
	read  uint64
	err   error
	buf   [recordSize]byte
}

// NewReader validates the header and returns a streaming reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var hdr [headerSize]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: short header: %w", err)
	}
	if m := binary.LittleEndian.Uint32(hdr[0:]); m != Magic {
		return nil, fmt.Errorf("trace: bad magic %#x", m)
	}
	if v := binary.LittleEndian.Uint32(hdr[4:]); v != Version {
		return nil, fmt.Errorf("trace: unsupported version %d", v)
	}
	return &Reader{r: br, count: binary.LittleEndian.Uint64(hdr[8:])}, nil
}

// Count returns the header's instruction count (0 when unknown).
func (t *Reader) Count() uint64 { return t.count }

// Next implements isa.Stream.
func (t *Reader) Next(out *isa.Inst) bool {
	if t.err != nil {
		return false
	}
	if t.count != 0 && t.read >= t.count {
		return false
	}
	if _, err := io.ReadFull(t.r, t.buf[:]); err != nil {
		switch {
		case err == io.EOF && t.count == 0:
			// Headerless count: EOF on a record boundary is the clean end.
		case err == io.EOF:
			t.err = fmt.Errorf("trace: truncated: header promises %d records, stream ends after %d", t.count, t.read)
		case err == io.ErrUnexpectedEOF:
			t.err = fmt.Errorf("trace: truncated record %d: %w", t.read, err)
		default:
			t.err = fmt.Errorf("trace: read record %d: %w", t.read, err)
		}
		return false
	}
	b := t.buf[:]
	*out = isa.Inst{
		Op:       isa.Op(b[0]),
		Dest:     b[1],
		Src1:     b[2],
		Src2:     b[3],
		Signed:   b[4]&1 != 0,
		Taken:    b[4]&2 != 0,
		Resize:   b[4]&4 != 0,
		AHC:      b[5],
		HomeWay:  int8(b[6]),
		Assoc:    b[7],
		PC:       binary.LittleEndian.Uint64(b[8:]),
		Addr:     binary.LittleEndian.Uint64(b[16:]),
		RowAddr:  binary.LittleEndian.Uint64(b[24:]),
		Size:     binary.LittleEndian.Uint32(b[32:]),
		PAC:      binary.LittleEndian.Uint16(b[36:]),
		BranchID: binary.LittleEndian.Uint32(b[38:]),
	}
	t.read++
	return true
}

// Err reports why Next stopped: nil after a clean end of stream, otherwise
// the truncation or I/O error. Valid once Next has returned false.
func (t *Reader) Err() error { return t.err }

// Replay feeds every instruction of the stream into sink and returns how
// many were delivered.
func Replay(s isa.Stream, sink isa.Sink) uint64 {
	var in isa.Inst
	var n uint64
	for s.Next(&in) {
		sink.Emit(&in)
		n++
	}
	return n
}
