package trace

import (
	"bytes"
	"encoding/binary"
	"io"
	"testing"

	"aos/internal/isa"
)

// memSeeker is an in-memory io.WriteSeeker so the fuzz round trip exercises
// the header-count patch path without touching the filesystem.
type memSeeker struct {
	buf []byte
	pos int64
}

func (m *memSeeker) Write(p []byte) (int, error) {
	if grow := m.pos + int64(len(p)) - int64(len(m.buf)); grow > 0 {
		m.buf = append(m.buf, make([]byte, grow)...)
	}
	copy(m.buf[m.pos:], p)
	m.pos += int64(len(p))
	return len(p), nil
}

func (m *memSeeker) Seek(off int64, whence int) (int64, error) {
	switch whence {
	case io.SeekStart:
		m.pos = off
	case io.SeekCurrent:
		m.pos += off
	case io.SeekEnd:
		m.pos = int64(len(m.buf)) + off
	}
	return m.pos, nil
}

// validTraceBytes builds a small well-formed trace for seeding the corpus.
func validTraceBytes(tb testing.TB) []byte {
	ms := &memSeeker{}
	w, err := NewWriter(ms)
	if err != nil {
		tb.Fatal(err)
	}
	src := sampleInsts()
	for i := range src {
		w.Emit(&src[i])
	}
	if err := w.Close(); err != nil {
		tb.Fatal(err)
	}
	return ms.buf
}

// FuzzReader throws arbitrary bytes at the decoder. The contract: NewReader
// and Next never panic; a header that promises more records than the stream
// delivers must surface through Err, and the reader never yields more
// records than the header count.
func FuzzReader(f *testing.F) {
	valid := validTraceBytes(f)
	clone := func(b []byte) []byte { return append([]byte(nil), b...) }

	f.Add([]byte{})
	f.Add(valid)
	f.Add(valid[:headerSize-3])              // short header
	f.Add(valid[:headerSize+recordSize/2])   // truncated record
	f.Add(valid[:headerSize+recordSize*2+7]) // later record cut mid-way

	badMagic := clone(valid)
	badMagic[0] ^= 0xFF
	f.Add(badMagic)

	badVersion := clone(valid)
	badVersion[4] = 99
	f.Add(badVersion)

	overPromise := clone(valid)
	binary.LittleEndian.PutUint64(overPromise[8:], 1<<20)
	f.Add(overPromise)

	headerless := clone(valid) // count 0: read-to-EOF mode, cut mid-record
	binary.LittleEndian.PutUint64(headerless[8:], 0)
	f.Add(headerless[:len(headerless)-5])

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return // rejected header: the decoder's job is done
		}
		n := Replay(r, isa.NullSink{})
		if c := r.Count(); c != 0 {
			if n > c {
				t.Fatalf("yielded %d records, header promised %d", n, c)
			}
			if n < c && r.Err() == nil {
				t.Fatalf("stream ends after %d of %d promised records but Err() == nil", n, c)
			}
		}
	})
}

// FuzzRoundTrip encodes fuzzer-chosen instruction fields and requires the
// decode to reproduce them bit-for-bit, including the patched header count.
func FuzzRoundTrip(f *testing.F) {
	f.Add(uint8(4), uint8(3), uint8(1), uint8(0xFF), true, false, true,
		uint8(2), int8(-1), uint8(4), uint64(0x400000), uint64(0x2000_0000_1234),
		uint64(0x3000_0000_0000), uint32(64), uint16(0xBEEF), uint32(7), uint8(3))
	f.Add(uint8(0), uint8(0), uint8(0), uint8(0), false, false, false,
		uint8(0), int8(0), uint8(0), uint64(0), uint64(0), uint64(0),
		uint32(0), uint16(0), uint32(0), uint8(0))

	f.Fuzz(func(t *testing.T, op, dest, src1, src2 uint8, signed, taken, resize bool,
		ahc uint8, homeWay int8, assoc uint8, pc, addr, rowAddr uint64,
		size uint32, pac uint16, branchID uint32, n uint8) {
		in := isa.Inst{
			Op: isa.Op(op), Dest: dest, Src1: src1, Src2: src2,
			Signed: signed, Taken: taken, Resize: resize,
			AHC: ahc, HomeWay: homeWay, Assoc: assoc,
			PC: pc, Addr: addr, RowAddr: rowAddr,
			Size: size, PAC: pac, BranchID: branchID,
		}
		count := int(n%8) + 1
		ms := &memSeeker{}
		w, err := NewWriter(ms)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < count; i++ {
			rec := in
			rec.PC = pc + uint64(i)*4
			w.Emit(&rec)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}

		r, err := NewReader(bytes.NewReader(ms.buf))
		if err != nil {
			t.Fatalf("decode own encoding: %v", err)
		}
		if r.Count() != uint64(count) {
			t.Fatalf("header count %d, wrote %d", r.Count(), count)
		}
		var got isa.Inst
		for i := 0; i < count; i++ {
			if !r.Next(&got) {
				t.Fatalf("record %d: Next = false (Err: %v)", i, r.Err())
			}
			want := in
			want.PC = pc + uint64(i)*4
			if got != want {
				t.Fatalf("record %d mismatch:\n got %+v\nwant %+v", i, got, want)
			}
		}
		if r.Next(&got) {
			t.Fatal("reader yielded a record past the header count")
		}
		if err := r.Err(); err != nil {
			t.Fatalf("clean stream ended with Err: %v", err)
		}
	})
}

// TestReaderErrClassification pins the three Err outcomes: a short stream
// against a promising header, a mid-record cut in read-to-EOF mode, and a
// clean record-boundary EOF.
func TestReaderErrClassification(t *testing.T) {
	valid := validTraceBytes(t)

	t.Run("header promises more", func(t *testing.T) {
		r, err := NewReader(bytes.NewReader(valid[:headerSize+recordSize]))
		if err != nil {
			t.Fatal(err)
		}
		if n := Replay(r, isa.NullSink{}); n != 1 {
			t.Fatalf("replayed %d records", n)
		}
		if r.Err() == nil {
			t.Fatal("truncated stream reported no error")
		}
	})

	t.Run("mid-record cut, count unknown", func(t *testing.T) {
		raw := append([]byte(nil), valid[:headerSize+recordSize+9]...)
		binary.LittleEndian.PutUint64(raw[8:], 0)
		r, err := NewReader(bytes.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		Replay(r, isa.NullSink{})
		if r.Err() == nil {
			t.Fatal("partial record reported no error")
		}
	})

	t.Run("record-boundary EOF, count unknown", func(t *testing.T) {
		raw := append([]byte(nil), valid[:headerSize+2*recordSize]...)
		binary.LittleEndian.PutUint64(raw[8:], 0)
		r, err := NewReader(bytes.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		if n := Replay(r, isa.NullSink{}); n != 2 {
			t.Fatalf("replayed %d records", n)
		}
		if err := r.Err(); err != nil {
			t.Fatalf("clean EOF classified as error: %v", err)
		}
	})
}
