package trace

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"aos/internal/core"
	"aos/internal/cpu"
	"aos/internal/instrument"
	"aos/internal/isa"
	"aos/internal/workload"
)

func sampleInsts() []isa.Inst {
	return []isa.Inst{
		{Op: isa.OpALU, PC: 0x400000, Dest: 3, Src1: isa.RegNone, Src2: isa.RegNone},
		{Op: isa.OpLoad, PC: 0x400004, Addr: 0x2000_0000_1234, Size: 8, Dest: 4, Src1: 3, Src2: isa.RegNone,
			Signed: true, PAC: 0xBEEF, AHC: 2, HomeWay: 1, Assoc: 4, RowAddr: 0x3000_0000_0000},
		{Op: isa.OpBranch, PC: 0x400008, BranchID: 77, Taken: true, Dest: isa.RegNone, Src1: isa.RegNone, Src2: isa.RegNone},
		{Op: isa.OpBndstr, PC: 0x40000C, Addr: 0x2000_0000_2000, Size: 128, Signed: true,
			PAC: 0x1111, AHC: 3, HomeWay: 0, Assoc: 1, Resize: true, RowAddr: 0x3000_0000_4440,
			Dest: isa.RegNone, Src1: 5, Src2: isa.RegNone},
	}
}

func TestRoundTripBuffer(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	src := sampleInsts()
	for i := range src {
		w.Emit(&src[i])
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != uint64(len(src)) {
		t.Errorf("count = %d", w.Count())
	}

	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var got []isa.Inst
	var in isa.Inst
	for r.Next(&in) {
		got = append(got, in)
	}
	if len(got) != len(src) {
		t.Fatalf("decoded %d instructions, want %d", len(got), len(src))
	}
	for i := range src {
		if got[i] != src[i] {
			t.Errorf("record %d mismatch:\n got %+v\nwant %+v", i, got[i], src[i])
		}
	}
}

func TestRoundTripFileWithHeaderPatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.trace")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWriter(f)
	if err != nil {
		t.Fatal(err)
	}
	src := sampleInsts()
	for i := range src {
		w.Emit(&src[i])
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	rf, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer rf.Close()
	r, err := NewReader(rf)
	if err != nil {
		t.Fatal(err)
	}
	if r.Count() != uint64(len(src)) {
		t.Errorf("header count = %d, want %d (seekable writer must patch)", r.Count(), len(src))
	}
	n := Replay(r, isa.NullSink{})
	if n != uint64(len(src)) {
		t.Errorf("replayed %d", n)
	}
}

func TestReaderRejectsGarbage(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("not a trace at all..."))); err == nil {
		t.Error("accepted garbage header")
	}
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	_ = w.Close()
	raw := buf.Bytes()
	raw[4] = 99 // corrupt version
	if _, err := NewReader(bytes.NewReader(raw)); err == nil {
		t.Error("accepted unknown version")
	}
}

// TestRecordedReplayMatchesLiveTiming is the load-bearing property: replaying
// a recorded trace through a fresh timing core must produce the identical
// result as the live run that recorded it.
func TestRecordedReplayMatchesLiveTiming(t *testing.T) {
	p, _ := workload.ByName("astar")
	prof := *p
	prof.Instructions = 20_000

	// Live run: machine -> tee(core, trace writer).
	m, err := core.New(core.Config{Scheme: instrument.AOS, CodeFootprint: p.CodeFootprint})
	if err != nil {
		t.Fatal(err)
	}
	liveCore := cpu.New(cpu.DefaultConfig())
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	m.SetSink(isa.MultiSink{liveCore, w})
	if err := prof.Run(m, 5); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	live := liveCore.Finalize()

	// Replay run: trace -> fresh core.
	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	replayCore := cpu.New(cpu.DefaultConfig())
	n := Replay(r, replayCore)
	replay := replayCore.Finalize()

	if n != live.Insts {
		t.Fatalf("replayed %d instructions, live executed %d", n, live.Insts)
	}
	if replay.Cycles != live.Cycles {
		t.Errorf("cycles: replay %d != live %d", replay.Cycles, live.Cycles)
	}
	if replay.BoundsAccesses != live.BoundsAccesses {
		t.Errorf("bounds accesses: replay %d != live %d", replay.BoundsAccesses, live.BoundsAccesses)
	}
	if replay.Traffic != live.Traffic {
		t.Errorf("traffic: replay %+v != live %+v", replay.Traffic, live.Traffic)
	}
	if replay.Branch.Mispredicts != live.Branch.Mispredicts {
		t.Errorf("mispredicts: replay %d != live %d", replay.Branch.Mispredicts, live.Branch.Mispredicts)
	}
}

// TestReplayUnderDifferentConfig demonstrates the sweep workflow: one
// recording, multiple timing configurations.
func TestReplayUnderDifferentConfig(t *testing.T) {
	p, _ := workload.ByName("hmmer")
	prof := *p
	prof.Instructions = 20_000
	m, err := core.New(core.Config{Scheme: instrument.AOS})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	m.SetSink(w)
	if err := prof.Run(m, 5); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	run := func(mcq int) uint64 {
		r, err := NewReader(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		cfg := cpu.DefaultConfig()
		cfg.MCQSize = mcq
		c := cpu.New(cfg)
		Replay(r, c)
		return c.Finalize().Cycles
	}
	if small, big := run(4), run(48); small <= big {
		t.Errorf("MCQ=4 replay (%d) not slower than MCQ=48 (%d)", small, big)
	}
}

func BenchmarkWriterThroughput(b *testing.B) {
	insts := sampleInsts()
	var buf bytes.Buffer
	buf.Grow(recordSize * (b.N + 1))
	w, _ := NewWriter(&buf)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Emit(&insts[i%len(insts)])
	}
}
