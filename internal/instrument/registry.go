package instrument

// Descriptor bundles what the toolchain knows about one protection
// scheme: its canonical name (the String() rendering the figures use),
// accepted parse aliases, a one-line model summary, and the behavior
// flags the instrumentation rewriter, the functional machine
// (internal/core), the trace-contract sanitizer (internal/tracecheck)
// and the detection battery (internal/security) dispatch on.
//
// Adding a backend means adding a Scheme constant, a registry entry, a
// tracecheck contract for any new ops it emits, core-machine behavior
// keyed off its flags, and golden op-count rows — see DESIGN.md
// ("Scheme registry").
type Descriptor struct {
	// Name is the canonical rendering (what String returns and what the
	// figure columns are labeled with).
	Name string
	// Aliases are additional accepted spellings for ParseScheme; matching
	// is case-insensitive for Name and Aliases alike.
	Aliases []string
	// Summary is a one-line description of the protection model.
	Summary string

	// SignsDataPointers: malloc'd pointers carry a PAC+AHC, accesses are
	// MCU bounds-checked (AOS family).
	SignsDataPointers bool
	// HasWatchdogChecks: check micro-ops before accesses plus identifier
	// metadata propagation (Watchdog).
	HasWatchdogChecks bool
	// HasReturnAddressSigning: call/return pairs sign/authenticate the
	// link register (PA family).
	HasReturnAddressSigning bool
	// HasOnLoadAuth: pointer loads re-authenticate the loaded pointer.
	HasOnLoadAuth bool
	// UsesAutm: on-load auth is the cheap AHC check, not full autia.
	UsesAutm bool
	// UsesMemoryTagging: allocations are granule-rounded and tagged;
	// accesses compare pointer tag against memory tag (MTE).
	UsesMemoryTagging bool
	// HasHardenedAllocator: allocator-side hardening (quarantine,
	// canaries, poison/zero-on-free) with no hardware mechanism.
	HasHardenedAllocator bool
}

// registry holds one Descriptor per Scheme, indexed by the Scheme value.
// Order must match the constant block in instrument.go.
var registry = [numSchemes]Descriptor{
	Baseline: {
		Name:    "Baseline",
		Summary: "no security features",
	},
	Watchdog: {
		Name:              "Watchdog",
		Summary:           "hardware bounds+UAF checking via identifiers and check micro-ops [11]",
		HasWatchdogChecks: true,
	},
	PA: {
		Name:                    "PA",
		Summary:                 "PA-based code- and data-pointer integrity [21]",
		HasReturnAddressSigning: true,
		HasOnLoadAuth:           true,
	},
	AOS: {
		Name:              "AOS",
		Summary:           "always-on heap safety: PAC-signed data pointers, MCU-checked bounds",
		SignsDataPointers: true,
	},
	PAAOS: {
		Name:                    "PA+AOS",
		Aliases:                 []string{"PAAOS"},
		Summary:                 "AOS plus PA pointer integrity with autm on-load checks (§VII-B)",
		SignsDataPointers:       true,
		HasReturnAddressSigning: true,
		HasOnLoadAuth:           true,
		UsesAutm:                true,
	},
	MTE: {
		Name:              "MTE",
		Aliases:           []string{"MemTag"},
		Summary:           "4-bit lock-and-key memory tagging, 16 B granules, tag-check on access",
		UsesMemoryTagging: true,
	},
	HardenedAlloc: {
		Name:                 "HardenedAlloc",
		Aliases:              []string{"Hardened"},
		Summary:              "software hardened allocator: quarantine, canaries, poison/zero-on-free",
		HasHardenedAllocator: true,
	},
}

// Describe returns the registry entry for a valid scheme (ok=false for an
// out-of-range value).
func Describe(s Scheme) (Descriptor, bool) {
	if !s.Valid() {
		return Descriptor{}, false
	}
	return registry[s], true
}
