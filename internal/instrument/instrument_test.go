package instrument

import "testing"

func TestSchemeNamesRoundTrip(t *testing.T) {
	for _, s := range Schemes() {
		got, err := ParseScheme(s.String())
		if err != nil || got != s {
			t.Errorf("ParseScheme(%q) = %v, %v", s.String(), got, err)
		}
	}
	if _, err := ParseScheme("nonsense"); err == nil {
		t.Error("ParseScheme accepted garbage")
	}
	if Scheme(99).String() == "" {
		t.Error("out-of-range scheme must stringify")
	}
}

func TestSchemeProperties(t *testing.T) {
	cases := []struct {
		s                                Scheme
		signs, wd, retSign, onLoad, autm bool
	}{
		{Baseline, false, false, false, false, false},
		{Watchdog, false, true, false, false, false},
		{PA, false, false, true, true, false},
		{AOS, true, false, false, false, false},
		{PAAOS, true, false, true, true, true},
	}
	for _, c := range cases {
		if c.s.SignsDataPointers() != c.signs {
			t.Errorf("%v.SignsDataPointers() = %v", c.s, c.s.SignsDataPointers())
		}
		if c.s.HasWatchdogChecks() != c.wd {
			t.Errorf("%v.HasWatchdogChecks() = %v", c.s, c.s.HasWatchdogChecks())
		}
		if c.s.HasReturnAddressSigning() != c.retSign {
			t.Errorf("%v.HasReturnAddressSigning() = %v", c.s, c.s.HasReturnAddressSigning())
		}
		if c.s.HasOnLoadAuth() != c.onLoad {
			t.Errorf("%v.HasOnLoadAuth() = %v", c.s, c.s.HasOnLoadAuth())
		}
		if c.s.UsesAutm() != c.autm {
			t.Errorf("%v.UsesAutm() = %v", c.s, c.s.UsesAutm())
		}
	}
}

func TestMetadataSizes(t *testing.T) {
	// The paper's cache-pollution argument: Watchdog metadata is 24 bytes
	// vs 8 bytes for AOS compressed bounds.
	if WDMetaBytes != 24 || WDLockBytes != 8 {
		t.Error("Watchdog metadata constants diverge from the paper")
	}
}
