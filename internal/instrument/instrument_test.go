package instrument

import (
	"strings"
	"testing"
)

func TestSchemeNamesRoundTrip(t *testing.T) {
	for _, s := range AllSchemes() {
		got, err := ParseScheme(s.String())
		if err != nil || got != s {
			t.Errorf("ParseScheme(%q) = %v, %v", s.String(), got, err)
		}
	}
	if _, err := ParseScheme("nonsense"); err == nil {
		t.Error("ParseScheme accepted garbage")
	}
	if Scheme(99).String() == "" {
		t.Error("out-of-range scheme must stringify")
	}
}

func TestParseSchemeCaseAndAliases(t *testing.T) {
	cases := map[string]Scheme{
		"aos":           AOS,
		"AOS":           AOS,
		"Aos":           AOS,
		"pa+aos":        PAAOS,
		"PAAOS":         PAAOS,
		"paaos":         PAAOS,
		"baseline":      Baseline,
		"watchdog":      Watchdog,
		"pa":            PA,
		"mte":           MTE,
		"memtag":        MTE,
		"hardened":      HardenedAlloc,
		"hardenedalloc": HardenedAlloc,
	}
	for in, want := range cases {
		got, err := ParseScheme(in)
		if err != nil || got != want {
			t.Errorf("ParseScheme(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	// The error must enumerate the valid names, not fail opaquely.
	_, err := ParseScheme("bogus")
	if err == nil {
		t.Fatal("ParseScheme accepted bogus")
	}
	for _, name := range SchemeNames() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("parse error %q does not list %q", err, name)
		}
	}
}

func TestSchemeProperties(t *testing.T) {
	cases := []struct {
		s                                           Scheme
		signs, wd, retSign, onLoad, autm, mte, hard bool
	}{
		{Baseline, false, false, false, false, false, false, false},
		{Watchdog, false, true, false, false, false, false, false},
		{PA, false, false, true, true, false, false, false},
		{AOS, true, false, false, false, false, false, false},
		{PAAOS, true, false, true, true, true, false, false},
		{MTE, false, false, false, false, false, true, false},
		{HardenedAlloc, false, false, false, false, false, false, true},
	}
	if len(cases) != len(AllSchemes()) {
		t.Fatalf("property table covers %d schemes, registry has %d", len(cases), len(AllSchemes()))
	}
	for _, c := range cases {
		if c.s.SignsDataPointers() != c.signs {
			t.Errorf("%v.SignsDataPointers() = %v", c.s, c.s.SignsDataPointers())
		}
		if c.s.HasWatchdogChecks() != c.wd {
			t.Errorf("%v.HasWatchdogChecks() = %v", c.s, c.s.HasWatchdogChecks())
		}
		if c.s.HasReturnAddressSigning() != c.retSign {
			t.Errorf("%v.HasReturnAddressSigning() = %v", c.s, c.s.HasReturnAddressSigning())
		}
		if c.s.HasOnLoadAuth() != c.onLoad {
			t.Errorf("%v.HasOnLoadAuth() = %v", c.s, c.s.HasOnLoadAuth())
		}
		if c.s.UsesAutm() != c.autm {
			t.Errorf("%v.UsesAutm() = %v", c.s, c.s.UsesAutm())
		}
		if c.s.UsesMemoryTagging() != c.mte {
			t.Errorf("%v.UsesMemoryTagging() = %v", c.s, c.s.UsesMemoryTagging())
		}
		if c.s.HasHardenedAllocator() != c.hard {
			t.Errorf("%v.HasHardenedAllocator() = %v", c.s, c.s.HasHardenedAllocator())
		}
	}
}

func TestSchemesSplit(t *testing.T) {
	// Schemes() is the paper's five, in paper order — the shape every
	// figure, matrix document and cache key depends on. AllSchemes() is
	// the full registry.
	paper := Schemes()
	if len(paper) != 5 {
		t.Fatalf("Schemes() = %d entries, want the paper's 5", len(paper))
	}
	want := []Scheme{Baseline, Watchdog, PA, AOS, PAAOS}
	for i, s := range paper {
		if s != want[i] {
			t.Errorf("Schemes()[%d] = %v, want %v", i, s, want[i])
		}
	}
	all := AllSchemes()
	if len(all) <= len(paper) {
		t.Fatalf("AllSchemes() = %d entries, want more than the paper's %d", len(all), len(paper))
	}
	seen := map[Scheme]bool{}
	for _, s := range all {
		if !s.Valid() {
			t.Errorf("AllSchemes() contains invalid %v", s)
		}
		if seen[s] {
			t.Errorf("AllSchemes() repeats %v", s)
		}
		seen[s] = true
	}
}

func TestMetadataSizes(t *testing.T) {
	// The paper's cache-pollution argument: Watchdog metadata is 24 bytes
	// vs 8 bytes for AOS compressed bounds.
	if WDMetaBytes != 24 || WDLockBytes != 8 {
		t.Error("Watchdog metadata constants diverge from the paper")
	}
}

// TestParseSchemeErrorAndOrdering pins the two surfaces the static
// verifier leans on: the exact ParseScheme error text (aosverify's usage
// diagnostics echo it) and the AllSchemes registry order (protoverify's
// per-scheme reports stream in this order, so CI logs diff cleanly).
func TestParseSchemeErrorAndOrdering(t *testing.T) {
	_, err := ParseScheme("bogus")
	if err == nil {
		t.Fatal("ParseScheme accepted a bogus name")
	}
	want := `instrument: unknown scheme "bogus" (valid: Baseline, Watchdog, PA, AOS, PA+AOS, MTE, HardenedAlloc)`
	if err.Error() != want {
		t.Errorf("ParseScheme error:\ngot:  %s\nwant: %s", err, want)
	}

	order := []Scheme{Baseline, Watchdog, PA, AOS, PAAOS, MTE, HardenedAlloc}
	all := AllSchemes()
	if len(all) != len(order) {
		t.Fatalf("AllSchemes returned %d schemes, want %d", len(all), len(order))
	}
	for i, s := range order {
		if all[i] != s {
			t.Errorf("AllSchemes()[%d] = %v, want %v", i, all[i], s)
		}
	}
}
