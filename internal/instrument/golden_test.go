package instrument_test

// Golden per-scheme op-count tests: one fixed program, five schemes, exact
// counts for every protocol instruction class. The numbers are fully
// derivable from the instrumentation contract (package doc and Fig 7), so a
// drift in any scheme's inserted-op sequence fails here with the class name
// and the arithmetic that was violated.

import (
	"testing"

	"aos/internal/core"
	"aos/internal/instrument"
	"aos/internal/isa"
)

// opCounter tallies the emitted stream by instruction class.
type opCounter struct {
	byOp [isa.NumOps]uint64
}

func (c *opCounter) Emit(in *isa.Inst) {
	if int(in.Op) < isa.NumOps {
		c.byOp[in.Op]++
	}
}

// protocolOps are the instruction classes inserted by instrumentation (as
// opposed to the program's own compute, memory, and control traffic). The
// golden table pins an exact count for every one of them, so any class a
// scheme is not documented to emit is asserted to stay at zero.
var protocolOps = []isa.Op{
	isa.OpPacma, isa.OpXpacm, isa.OpAutm,
	isa.OpPacia, isa.OpAutia,
	isa.OpBndstr, isa.OpBndclr,
	isa.OpWDCheck, isa.OpWDMeta, isa.OpWDSetID, isa.OpWDClrID,
	isa.OpIRG, isa.OpSTG,
}

// runGoldenProgram drives the fixed allocation/access/call pattern:
//
//	3 mallocs (32, 64, 4096) ......... 3 Call/Ret pairs from the allocator
//	3 plain loads + 3 plain stores ... 6 checked accesses
//	1 pointer store + 1 pointer load . PA pre-store sign / on-load auth
//	1 pointer-arith + 1 load ......... Watchdog metadata propagation
//	1 explicit Call/Compute/Ret ...... 1 more Call/Ret pair
//	3 frees .......................... 3 more Call/Ret pairs
func runGoldenProgram(t *testing.T, scheme instrument.Scheme) *opCounter {
	t.Helper()
	m, err := core.New(core.Config{Scheme: scheme})
	if err != nil {
		t.Fatal(err)
	}
	cnt := &opCounter{}
	m.SetSink(cnt)

	p1, err := m.Malloc(32)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := m.Malloc(64)
	if err != nil {
		t.Fatal(err)
	}
	p3, err := m.Malloc(4096)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []core.Ptr{p1, p2, p3} {
		if err := m.Load(p, 0, core.AccessOpts{}); err != nil {
			t.Fatal(err)
		}
		if err := m.Store(p, 8, core.AccessOpts{}); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Store(p1, 16, core.AccessOpts{Pointer: true}); err != nil {
		t.Fatal(err)
	}
	if err := m.Load(p1, 16, core.AccessOpts{Pointer: true}); err != nil {
		t.Fatal(err)
	}
	q := m.PointerArith(p2, 8)
	if err := m.Load(q, 0, core.AccessOpts{}); err != nil {
		t.Fatal(err)
	}
	m.Call()
	m.Compute(4, core.DepFree)
	m.Ret()
	for _, p := range []core.Ptr{p1, p2, p3} {
		if err := m.Free(p); err != nil {
			t.Fatal(err)
		}
	}
	return cnt
}

// The fixed program's event counts the goldens derive from.
const (
	allocs    = 3
	frees     = 3
	accesses  = 9 // 6 plain + 1 ptr store + 1 ptr load + 1 post-arith load
	callPairs = allocs + frees + 1

	// granules is the total 16-byte tag granules over the three
	// allocations (32, 64, 4096 B): 2 + 4 + 256. MTE retags each granule
	// once at malloc and once (back to 0) at free.
	granules = 32/instrument.TagGranule + 64/instrument.TagGranule + 4096/instrument.TagGranule
)

func TestGoldenOpCounts(t *testing.T) {
	// golden[scheme][op]: exact expected count; absent op = must be zero.
	golden := map[instrument.Scheme]map[isa.Op]uint64{
		instrument.Baseline: {},
		instrument.Watchdog: {
			isa.OpWDCheck: accesses, // one check micro-op per memory access
			isa.OpWDMeta:  1,        // identifier propagation on pointer arithmetic
			isa.OpWDSetID: allocs,   // lock allocate at malloc
			isa.OpWDClrID: frees,    // lock invalidate at free
		},
		instrument.PA: {
			isa.OpPacia: callPairs + 1, // RAS on every call + pre-store data sign
			isa.OpAutia: callPairs + 1, // RAS on every return + on-load data auth
		},
		instrument.AOS: {
			isa.OpPacma:  allocs + frees, // sign at malloc + re-sign lock at free
			isa.OpBndstr: allocs,
			isa.OpBndclr: frees,
			isa.OpXpacm:  frees, // strip before the allocator touches the chunk
		},
		instrument.PAAOS: {
			isa.OpPacma:  allocs + frees,
			isa.OpBndstr: allocs,
			isa.OpBndclr: frees,
			isa.OpXpacm:  frees,
			isa.OpPacia:  callPairs, // RAS only: pacma already signed data pointers
			isa.OpAutia:  callPairs,
			isa.OpAutm:   1, // cheap AHC check replaces autia on pointer load (Fig 13)
		},
		instrument.MTE: {
			isa.OpIRG: allocs,       // one tag choice per malloc
			isa.OpSTG: 2 * granules, // retag every granule at malloc and at free
		},
		// The hardened allocator needs no new instrumentation: its cost is
		// allocator-side work (canary/fill/quarantine accesses) that drains
		// through the ordinary load/store replay.
		instrument.HardenedAlloc: {},
	}

	for _, scheme := range instrument.AllSchemes() {
		scheme := scheme
		t.Run(scheme.String(), func(t *testing.T) {
			want, ok := golden[scheme]
			if !ok {
				t.Fatalf("no golden table for scheme %v", scheme)
			}
			cnt := runGoldenProgram(t, scheme)
			for _, op := range protocolOps {
				if got := cnt.byOp[op]; got != want[op] {
					t.Errorf("%v count = %d, want %d", op, got, want[op])
				}
			}
			// Every scheme funnels the same program structure: the explicit
			// pair plus one per allocator entry (malloc and free).
			if got := cnt.byOp[isa.OpCall]; got != callPairs {
				t.Errorf("call count = %d, want %d", got, callPairs)
			}
			if got := cnt.byOp[isa.OpRet]; got != callPairs {
				t.Errorf("ret count = %d, want %d", got, callPairs)
			}
			if cnt.byOp[isa.OpLoad] == 0 || cnt.byOp[isa.OpStore] == 0 {
				t.Error("program emitted no memory traffic")
			}
		})
	}
}

// TestGoldenSchemeIsolation asserts the complement: an op documented for
// exactly one scheme family never leaks into another. This is what the
// tracecheck sanitizer's TC01 whitelist enforces at run time; the golden
// keeps the static table honest.
func TestGoldenSchemeIsolation(t *testing.T) {
	owners := map[isa.Op]func(instrument.Scheme) bool{
		isa.OpPacma:   instrument.Scheme.SignsDataPointers,
		isa.OpBndstr:  instrument.Scheme.SignsDataPointers,
		isa.OpBndclr:  instrument.Scheme.SignsDataPointers,
		isa.OpXpacm:   instrument.Scheme.SignsDataPointers,
		isa.OpWDCheck: instrument.Scheme.HasWatchdogChecks,
		isa.OpWDMeta:  instrument.Scheme.HasWatchdogChecks,
		isa.OpWDSetID: instrument.Scheme.HasWatchdogChecks,
		isa.OpWDClrID: instrument.Scheme.HasWatchdogChecks,
		isa.OpAutm:    instrument.Scheme.UsesAutm,
		isa.OpIRG:     instrument.Scheme.UsesMemoryTagging,
		isa.OpSTG:     instrument.Scheme.UsesMemoryTagging,
	}
	for _, scheme := range instrument.AllSchemes() {
		cnt := runGoldenProgram(t, scheme)
		for op, belongs := range owners {
			if !belongs(scheme) && cnt.byOp[op] != 0 {
				t.Errorf("%v: %v emitted %d times but the scheme does not document it",
					scheme, op, cnt.byOp[op])
			}
		}
	}
}
