// Package instrument defines the protection schemes the evaluation
// compares (§VIII) and what each one inserts into the dynamic instruction
// stream — the role the paper's LLVM passes (AOS-opt-pass and
// AOS-backend-pass, §IV-B) and the baselines' instrumentation play:
//
//   - Baseline: nothing.
//   - Watchdog: a check micro-op before every memory access, identifier
//     metadata propagation on pointer arithmetic, shadow-metadata accesses
//     on pointer loads/stores, and lock allocate/invalidate at
//     malloc/free (Fig 5a).
//   - PA: return-address signing on every call/return plus on-load
//     authentication for code/data pointer integrity (Liljestrand et al.).
//   - AOS: pacma+bndstr after malloc, bndclr+xpacm before free and pacma
//     after it (Fig 7), with checking done implicitly by the MCU.
//   - PAAOS: AOS plus the PA pointer-integrity extension, with autm
//     replacing data-pointer re-authentication (Fig 13).
//
// Beyond the paper's five system configurations, the registry carries two
// comparison backends used by the security-evaluation matrix:
//
//   - MTE: ARM-style 4-bit lock-and-key memory tagging — allocations are
//     rounded to 16-byte tag granules, granules are retagged at malloc and
//     free (irg + one stg per granule), and every access checks the
//     pointer's tag against the granule's tag (Serebryany et al.).
//   - HardenedAlloc: a software-only hardened allocator — quarantine,
//     canaries, poison-on-free and zero-on-free as allocator-side state
//     plus extra plain instrumentation ops, with no MCU hardware.
//
// Each scheme is described by a Descriptor in the registry; the functional
// machine (internal/core), the trace sanitizer (internal/tracecheck) and
// the security battery (internal/security) all key their scheme-specific
// behavior off the Scheme value and the Descriptor's behavior flags.
package instrument

import (
	"fmt"
	"strings"
)

// Scheme selects the protection mechanism being simulated.
type Scheme int

// The five evaluated system configurations (§VIII) plus the two
// comparison backends of the extended security matrix.
const (
	// Baseline has no security features.
	Baseline Scheme = iota
	// Watchdog is the hardware bounds+UAF checking baseline [11].
	Watchdog
	// PA is PA-based code- and data-pointer integrity [21].
	PA
	// AOS is the paper's mechanism.
	AOS
	// PAAOS is AOS integrated with PA pointer integrity (§VII-B).
	PAAOS
	// MTE is ARM-style 4-bit lock-and-key memory tagging.
	MTE
	// HardenedAlloc is a software-only hardened allocator (quarantine,
	// canaries, poison-on-free, zero-on-free).
	HardenedAlloc
	numSchemes
)

// Memory-tagging model constants (MTE backend).
const (
	// TagGranule is the MTE tagging granule: allocations are rounded up
	// to this size and tags are stored per granule.
	TagGranule = 16
	// TagBits is the width of a memory tag.
	TagBits = 4
	// NumTags is the tag space (one value, 0, is reserved for untagged /
	// freed memory, leaving 15 allocation tags).
	NumTags = 1 << TagBits
)

// String names the scheme as the paper's figures do.
func (s Scheme) String() string {
	if s.Valid() {
		return registry[s].Name
	}
	return fmt.Sprintf("Scheme(%d)", int(s))
}

// Valid reports whether s is a registered scheme. Scheme values cross
// process boundaries as raw ints (JSON specs, flags), so range-check
// before trusting one.
func (s Scheme) Valid() bool { return s >= 0 && s < numSchemes }

// ParseScheme parses a scheme name, case-insensitively, accepting the
// canonical String() rendering and any registered alias. The error lists
// every valid name so a typo in a spec or -scheme flag is self-explaining.
func ParseScheme(name string) (Scheme, error) {
	for s := Scheme(0); s < numSchemes; s++ {
		d := &registry[s]
		if strings.EqualFold(name, d.Name) {
			return s, nil
		}
		for _, a := range d.Aliases {
			if strings.EqualFold(name, a) {
				return s, nil
			}
		}
	}
	return 0, fmt.Errorf("instrument: unknown scheme %q (valid: %s)", name, strings.Join(SchemeNames(), ", "))
}

// SchemeNames lists the canonical names of every registered scheme, in
// registry order.
func SchemeNames() []string {
	names := make([]string, numSchemes)
	for s := Scheme(0); s < numSchemes; s++ {
		names[s] = registry[s].Name
	}
	return names
}

// Schemes lists the paper's evaluated schemes in presentation order. The
// overhead figures (Fig 14/18) and their cached service matrices are
// pinned to exactly this set; use AllSchemes for the extended
// security-evaluation surface.
func Schemes() []Scheme { return []Scheme{Baseline, Watchdog, PA, AOS, PAAOS} }

// AllSchemes lists every registered scheme — the paper's five plus the
// comparison backends — in registry order.
func AllSchemes() []Scheme {
	all := make([]Scheme, numSchemes)
	for s := Scheme(0); s < numSchemes; s++ {
		all[s] = s
	}
	return all
}

// SignsDataPointers reports whether malloc'd pointers carry a PAC+AHC and
// accesses through them are MCU-checked.
func (s Scheme) SignsDataPointers() bool { return s.Valid() && registry[s].SignsDataPointers }

// HasWatchdogChecks reports whether Watchdog-style check micro-ops and
// metadata propagation are inserted.
func (s Scheme) HasWatchdogChecks() bool { return s.Valid() && registry[s].HasWatchdogChecks }

// HasReturnAddressSigning reports whether call/return pairs sign and
// authenticate the link register (Fig 3).
func (s Scheme) HasReturnAddressSigning() bool {
	return s.Valid() && registry[s].HasReturnAddressSigning
}

// HasOnLoadAuth reports whether pointer loads are authenticated when they
// arrive from memory (data-pointer integrity).
func (s Scheme) HasOnLoadAuth() bool { return s.Valid() && registry[s].HasOnLoadAuth }

// UsesAutm reports whether on-load authentication uses the cheap autm
// AHC check instead of a full cryptographic autia (Fig 13): under PA+AOS,
// data pointers were signed by pacma over their base address, so
// recomputing the PAC at an interior address would fail — autm checks only
// that the AHC is nonzero.
func (s Scheme) UsesAutm() bool { return s.Valid() && registry[s].UsesAutm }

// UsesMemoryTagging reports whether allocations are tag-granule rounded
// and every access carries a pointer-tag vs memory-tag check (MTE).
func (s Scheme) UsesMemoryTagging() bool { return s.Valid() && registry[s].UsesMemoryTagging }

// HasHardenedAllocator reports whether the allocator runs with hardening
// features (quarantine, canaries, poison/zero-on-free) instead of any
// hardware mechanism.
func (s Scheme) HasHardenedAllocator() bool { return s.Valid() && registry[s].HasHardenedAllocator }

// Watchdog metadata model constants (§III, challenge discussion): each
// tracked object has a 24-byte metadata record (base, bound, key) reached
// through a lock-location pointer, and an 8-byte lock location holding the
// allocation identifier.
const (
	// WDMetaBytes is Watchdog's per-object metadata footprint (vs 8 bytes
	// in AOS) — the cache-pollution disadvantage Fig 18 shows.
	WDMetaBytes = 24
	// WDLockBytes is one lock location.
	WDLockBytes = 8
)
