// Package instrument defines the protection schemes the evaluation
// compares (§VIII) and what each one inserts into the dynamic instruction
// stream — the role the paper's LLVM passes (AOS-opt-pass and
// AOS-backend-pass, §IV-B) and the baselines' instrumentation play:
//
//   - Baseline: nothing.
//   - Watchdog: a check micro-op before every memory access, identifier
//     metadata propagation on pointer arithmetic, shadow-metadata accesses
//     on pointer loads/stores, and lock allocate/invalidate at
//     malloc/free (Fig 5a).
//   - PA: return-address signing on every call/return plus on-load
//     authentication for code/data pointer integrity (Liljestrand et al.).
//   - AOS: pacma+bndstr after malloc, bndclr+xpacm before free and pacma
//     after it (Fig 7), with checking done implicitly by the MCU.
//   - PAAOS: AOS plus the PA pointer-integrity extension, with autm
//     replacing data-pointer re-authentication (Fig 13).
package instrument

import "fmt"

// Scheme selects the protection mechanism being simulated.
type Scheme int

// The five evaluated system configurations (§VIII).
const (
	// Baseline has no security features.
	Baseline Scheme = iota
	// Watchdog is the hardware bounds+UAF checking baseline [11].
	Watchdog
	// PA is PA-based code- and data-pointer integrity [21].
	PA
	// AOS is the paper's mechanism.
	AOS
	// PAAOS is AOS integrated with PA pointer integrity (§VII-B).
	PAAOS
	numSchemes
)

var schemeNames = [numSchemes]string{"Baseline", "Watchdog", "PA", "AOS", "PA+AOS"}

// String names the scheme as the paper's figures do.
func (s Scheme) String() string {
	if s >= 0 && int(s) < len(schemeNames) {
		return schemeNames[s]
	}
	return fmt.Sprintf("Scheme(%d)", int(s))
}

// ParseScheme parses a scheme name (case-sensitive, as printed).
func ParseScheme(name string) (Scheme, error) {
	for i, n := range schemeNames {
		if n == name {
			return Scheme(i), nil
		}
	}
	return 0, fmt.Errorf("instrument: unknown scheme %q", name)
}

// Schemes lists all evaluated schemes in the paper's presentation order.
func Schemes() []Scheme { return []Scheme{Baseline, Watchdog, PA, AOS, PAAOS} }

// SignsDataPointers reports whether malloc'd pointers carry a PAC+AHC and
// accesses through them are MCU-checked.
func (s Scheme) SignsDataPointers() bool { return s == AOS || s == PAAOS }

// HasWatchdogChecks reports whether Watchdog-style check micro-ops and
// metadata propagation are inserted.
func (s Scheme) HasWatchdogChecks() bool { return s == Watchdog }

// HasReturnAddressSigning reports whether call/return pairs sign and
// authenticate the link register (Fig 3).
func (s Scheme) HasReturnAddressSigning() bool { return s == PA || s == PAAOS }

// HasOnLoadAuth reports whether pointer loads are authenticated when they
// arrive from memory (data-pointer integrity).
func (s Scheme) HasOnLoadAuth() bool { return s == PA || s == PAAOS }

// UsesAutm reports whether on-load authentication uses the cheap autm
// AHC check instead of a full cryptographic autia (Fig 13): under PA+AOS,
// data pointers were signed by pacma over their base address, so
// recomputing the PAC at an interior address would fail — autm checks only
// that the AHC is nonzero.
func (s Scheme) UsesAutm() bool { return s == PAAOS }

// Watchdog metadata model constants (§III, challenge discussion): each
// tracked object has a 24-byte metadata record (base, bound, key) reached
// through a lock-location pointer, and an 8-byte lock location holding the
// allocation identifier.
const (
	// WDMetaBytes is Watchdog's per-object metadata footprint (vs 8 bytes
	// in AOS) — the cache-pollution disadvantage Fig 18 shows.
	WDMetaBytes = 24
	// WDLockBytes is one lock location.
	WDLockBytes = 8
)
