package bpred

import (
	"reflect"
	"testing"
)

// TestSnapshotRestoreDeterminism: a predictor restored at branch N must
// produce the same prediction sequence as the original from N on.
func TestSnapshotRestoreDeterminism(t *testing.T) {
	train := func(p *TAGE, from, to int) []bool {
		var preds []bool
		for i := from; i < to; i++ {
			pc := uint32(i*7) % 512
			taken := (i*i)%3 == 0
			preds = append(preds, p.Predict(pc))
			p.Update(pc, taken)
		}
		return preds
	}
	a := NewTAGE()
	train(a, 0, 10_000)
	s := a.Snapshot()
	want := train(a, 10_000, 30_000)

	b := NewTAGE()
	b.Restore(s)
	got := train(b, 10_000, 30_000)
	if !reflect.DeepEqual(got, want) {
		t.Fatal("restored predictor diverged from straight-line execution")
	}
	if a.stats != b.stats {
		t.Fatalf("stats diverged: %+v vs %+v", a.stats, b.stats)
	}
	// The snapshot survived both continuations: two fresh restores agree.
	c, d := NewTAGE(), NewTAGE()
	c.Restore(s)
	d.Restore(s)
	if !reflect.DeepEqual(c, d) {
		t.Fatal("snapshot mutated by a restored predictor's continuation")
	}
}

// TestTAGESnapshotComplete is the reflection guard against fields escaping
// the snapshot.
func TestTAGESnapshotComplete(t *testing.T) {
	covered := map[string]bool{
		"base": true, "banks": true, "ghist": true,
		"rng": true, "ticks": true, "stats": true,
	}
	typ := reflect.TypeOf(TAGE{})
	for i := 0; i < typ.NumField(); i++ {
		if !covered[typ.Field(i).Name] {
			t.Errorf("bpred.TAGE field %q is not covered by Snapshot/Restore; update snapshot.go and this test", typ.Field(i).Name)
		}
	}
	st := reflect.TypeOf(State{})
	if st.NumField() != len(covered) {
		t.Errorf("bpred.State has %d fields, covered set has %d; keep them in sync", st.NumField(), len(covered))
	}
}
