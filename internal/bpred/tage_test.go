package bpred

import (
	"math/rand"
	"testing"
)

// train runs a branch stream and returns the misprediction rate.
func train(t *TAGE, stream func(i int) (pc uint32, taken bool), n int) float64 {
	start := t.Stats()
	for i := 0; i < n; i++ {
		pc, taken := stream(i)
		t.Update(pc, taken)
	}
	end := t.Stats()
	return float64(end.Mispredicts-start.Mispredicts) / float64(end.Lookups-start.Lookups)
}

func TestAlwaysTakenLearned(t *testing.T) {
	p := NewTAGE()
	rate := train(p, func(i int) (uint32, bool) { return 0x40, true }, 10000)
	if rate > 0.01 {
		t.Errorf("always-taken mispredict rate = %.3f, want < 0.01", rate)
	}
}

func TestAlternatingPatternLearned(t *testing.T) {
	p := NewTAGE()
	// Warm up, then measure: TAGE must capture a T/NT alternation through
	// its history-indexed banks (bimodal alone cannot).
	train(p, func(i int) (uint32, bool) { return 0x80, i%2 == 0 }, 5000)
	rate := train(p, func(i int) (uint32, bool) { return 0x80, i%2 == 0 }, 5000)
	if rate > 0.05 {
		t.Errorf("alternating-pattern mispredict rate = %.3f, want < 0.05", rate)
	}
}

func TestLongPeriodicPatternLearned(t *testing.T) {
	p := NewTAGE()
	pattern := []bool{true, true, false, true, false, false, true, false}
	stream := func(i int) (uint32, bool) { return 0x100, pattern[i%len(pattern)] }
	train(p, stream, 20000)
	rate := train(p, stream, 10000)
	if rate > 0.05 {
		t.Errorf("period-8 pattern mispredict rate = %.3f, want < 0.05", rate)
	}
}

func TestCorrelatedBranches(t *testing.T) {
	p := NewTAGE()
	// Branch B's outcome equals branch A's previous outcome.
	rng := rand.New(rand.NewSource(5))
	last := false
	stream := func(i int) (uint32, bool) {
		if i%2 == 0 {
			last = rng.Intn(2) == 0
			return 0x200, last
		}
		return 0x204, last
	}
	train(p, stream, 40000)
	// Measure only branch B.
	var lookups, miss int
	for i := 0; i < 20000; i++ {
		pc, taken := stream(i)
		if pc == 0x204 {
			lookups++
			if p.Predict(pc) != taken {
				miss++
			}
		}
		p.Update(pc, taken)
	}
	rate := float64(miss) / float64(lookups)
	if rate > 0.10 {
		t.Errorf("correlated-branch mispredict rate = %.3f, want < 0.10", rate)
	}
}

func TestRandomBranchesNearHalf(t *testing.T) {
	p := NewTAGE()
	rng := rand.New(rand.NewSource(17))
	rate := train(p, func(i int) (uint32, bool) {
		return uint32(0x300 + 4*(i%16)), rng.Intn(2) == 0
	}, 50000)
	if rate < 0.35 || rate > 0.65 {
		t.Errorf("random-branch mispredict rate = %.3f, want ~0.5", rate)
	}
}

func TestManyBranchSitesBiased(t *testing.T) {
	p := NewTAGE()
	// 256 branch sites, each strongly biased: rate should end well below
	// the bias noise floor.
	rng := rand.New(rand.NewSource(23))
	bias := make([]bool, 256)
	for i := range bias {
		bias[i] = rng.Intn(2) == 0
	}
	stream := func(i int) (uint32, bool) {
		s := i % 256
		taken := bias[s]
		if rng.Intn(100) < 2 { // 2% noise
			taken = !taken
		}
		return uint32(0x1000 + 4*s), taken
	}
	train(p, stream, 100000)
	rate := train(p, stream, 50000)
	if rate > 0.08 {
		t.Errorf("biased-sites mispredict rate = %.3f, want < 0.08", rate)
	}
}

func TestStatsAccumulate(t *testing.T) {
	p := NewTAGE()
	for i := 0; i < 100; i++ {
		p.Update(0x10, true)
	}
	s := p.Stats()
	if s.Lookups != 100 {
		t.Errorf("Lookups = %d, want 100", s.Lookups)
	}
	if s.Rate() < 0 || s.Rate() > 1 {
		t.Errorf("Rate = %v out of range", s.Rate())
	}
	var zero Stats
	if zero.Rate() != 0 {
		t.Error("zero stats Rate != 0")
	}
}

func BenchmarkTAGEUpdate(b *testing.B) {
	p := NewTAGE()
	rng := rand.New(rand.NewSource(1))
	pcs := make([]uint32, 1024)
	outs := make([]bool, 1024)
	for i := range pcs {
		pcs[i] = uint32(rng.Intn(4096)) * 4
		outs[i] = rng.Intn(3) > 0
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Update(pcs[i%1024], outs[i%1024])
	}
}
