package bpred

// State is a deep copy of a TAGE predictor, taken by Snapshot. TAGE state
// is a fixed ~25 KiB (bimodal table + 4 tagged banks), so checkpoints copy
// it outright.
type State struct {
	base  []int8
	banks [numBanks][]tagEntry
	ghist [4]uint64
	rng   uint32
	ticks uint64
	stats Stats
}

// Snapshot deep-copies the predictor.
func (t *TAGE) Snapshot() *State {
	s := &State{
		base:  append([]int8(nil), t.base...),
		ghist: t.ghist,
		rng:   t.rng,
		ticks: t.ticks,
		stats: t.stats,
	}
	for b := range t.banks {
		s.banks[b] = append([]tagEntry(nil), t.banks[b]...)
	}
	return s
}

// Restore rewinds the predictor to a snapshot. The snapshot stays valid.
func (t *TAGE) Restore(s *State) {
	copy(t.base, s.base)
	for b := range t.banks {
		copy(t.banks[b], s.banks[b])
	}
	t.ghist = s.ghist
	t.rng = s.rng
	t.ticks = s.ticks
	t.stats = s.stats
}
