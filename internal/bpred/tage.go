// Package bpred implements a TAGE-style conditional branch predictor, the
// class of predictor (L-TAGE, Seznec) configured in the paper's evaluation
// platform (Table IV). The timing simulator consults it for every dynamic
// branch; mispredictions cost a pipeline redirect.
//
// The implementation is a standard TAGE: a bimodal base predictor plus N
// partially-tagged banks indexed by geometrically longer global-history
// folds, with provider/alternate selection, useful counters, and
// allocation on misprediction.
package bpred

// Predictor is the interface the core uses.
type Predictor interface {
	// Predict returns the predicted direction for the branch at pc.
	Predict(pc uint32) bool
	// Update trains the predictor with the resolved outcome.
	Update(pc uint32, taken bool)
}

const (
	numBanks   = 4
	bankBits   = 10 // 1024 entries per bank
	tagBits    = 11
	baseBits   = 13 // 8192-entry bimodal
	ctrMax     = 3  // 3-bit signed counter range [-4,3]
	ctrMin     = -4
	usefulMax  = 3
	resetEvery = 1 << 18
)

// History lengths per bank (geometric, L-TAGE style).
var histLens = [numBanks]uint{5, 15, 44, 130}

type tagEntry struct {
	tag    uint16
	ctr    int8
	useful uint8
}

// TAGE is a deterministic TAGE predictor. The zero value is not usable;
// call NewTAGE.
type TAGE struct {
	base  []int8 // bimodal 2-bit counters [-2,1]
	banks [numBanks][]tagEntry

	ghist [4]uint64 // 256 bits of global history, bit 0 = most recent
	rng   uint32    // LFSR for allocation tie-breaking
	ticks uint64

	stats Stats
}

// Stats counts prediction outcomes.
type Stats struct {
	Lookups     uint64
	Mispredicts uint64
}

// Rate returns the misprediction rate.
func (s Stats) Rate() float64 {
	if s.Lookups == 0 {
		return 0
	}
	return float64(s.Mispredicts) / float64(s.Lookups)
}

// NewTAGE returns a fresh predictor.
func NewTAGE() *TAGE {
	t := &TAGE{base: make([]int8, 1<<baseBits), rng: 0xACE1}
	for i := range t.banks {
		t.banks[i] = make([]tagEntry, 1<<bankBits)
	}
	return t
}

// Stats returns a copy of the counters.
func (t *TAGE) Stats() Stats { return t.stats }

// ResetStats clears the counters, keeping the trained predictor state.
func (t *TAGE) ResetStats() { t.stats = Stats{} }

// foldHistory folds the first n history bits into width bits.
func (t *TAGE) foldHistory(n, width uint) uint32 {
	var folded uint32
	var acc uint32
	var accBits uint
	for i := uint(0); i < n; i++ {
		bit := uint32(t.ghist[i/64]>>(i%64)) & 1
		acc |= bit << accBits
		accBits++
		if accBits == width {
			folded ^= acc
			acc, accBits = 0, 0
		}
	}
	folded ^= acc
	return folded
}

func (t *TAGE) bankIndex(pc uint32, b int) uint32 {
	h := t.foldHistory(histLens[b], bankBits)
	return (pc ^ pc>>bankBits ^ h ^ uint32(b)<<3) & (1<<bankBits - 1)
}

func (t *TAGE) bankTag(pc uint32, b int) uint16 {
	h := t.foldHistory(histLens[b], tagBits)
	h2 := t.foldHistory(histLens[b], tagBits-1)
	return uint16((pc ^ h ^ h2<<1) & (1<<tagBits - 1))
}

func (t *TAGE) baseIndex(pc uint32) uint32 { return pc & (1<<baseBits - 1) }

// lookup finds the provider (longest matching bank) and the alternate.
func (t *TAGE) lookup(pc uint32) (provider int, altPred, provPred bool) {
	provider = -1
	alt := -1
	for b := numBanks - 1; b >= 0; b-- {
		e := &t.banks[b][t.bankIndex(pc, b)]
		if e.tag == t.bankTag(pc, b) {
			if provider < 0 {
				provider = b
			} else {
				alt = b
				break
			}
		}
	}
	basePred := t.base[t.baseIndex(pc)] >= 0
	altPred = basePred
	if alt >= 0 {
		altPred = t.banks[alt][t.bankIndex(pc, alt)].ctr >= 0
	}
	provPred = basePred
	if provider >= 0 {
		provPred = t.banks[provider][t.bankIndex(pc, provider)].ctr >= 0
	}
	return provider, altPred, provPred
}

// Predict implements Predictor.
func (t *TAGE) Predict(pc uint32) bool {
	_, _, pred := t.lookup(pc)
	return pred
}

func (t *TAGE) nextRand() uint32 {
	// 16-bit Galois LFSR: deterministic allocation tie-breaking.
	lsb := t.rng & 1
	t.rng >>= 1
	if lsb != 0 {
		t.rng ^= 0xB400
	}
	return t.rng
}

func bump(c int8, up bool, lo, hi int8) int8 {
	if up && c < hi {
		return c + 1
	}
	if !up && c > lo {
		return c - 1
	}
	return c
}

// Update implements Predictor. It must be called once per Predict, with
// the same pc, in program order.
func (t *TAGE) Update(pc uint32, taken bool) {
	provider, altPred, pred := t.lookup(pc)
	t.stats.Lookups++
	if pred != taken {
		t.stats.Mispredicts++
	}

	// Update the provider (or the base predictor).
	if provider >= 0 {
		e := &t.banks[provider][t.bankIndex(pc, provider)]
		e.ctr = bump(e.ctr, taken, ctrMin, ctrMax)
		provCorrect := (e.ctr >= 0) == taken // after update; close enough
		if provCorrect && altPred != taken && e.useful < usefulMax {
			e.useful++
		}
		if !provCorrect && altPred == taken && e.useful > 0 {
			e.useful--
		}
	} else {
		i := t.baseIndex(pc)
		t.base[i] = bump(t.base[i], taken, -2, 1)
	}

	// Allocate a new entry in a longer bank on misprediction.
	if pred != taken && provider < numBanks-1 {
		start := provider + 1
		allocated := false
		for b := start; b < numBanks; b++ {
			e := &t.banks[b][t.bankIndex(pc, b)]
			if e.useful == 0 {
				e.tag = t.bankTag(pc, b)
				e.useful = 0
				if taken {
					e.ctr = 0
				} else {
					e.ctr = -1
				}
				allocated = true
				break
			}
		}
		if !allocated {
			// Decay a candidate so the future allocation can succeed.
			b := start + int(t.nextRand())%(numBanks-start)
			e := &t.banks[b][t.bankIndex(pc, b)]
			if e.useful > 0 {
				e.useful--
			}
		}
	}

	// Push the outcome into global history.
	carry := uint64(0)
	if taken {
		carry = 1
	}
	for i := 0; i < len(t.ghist); i++ {
		next := t.ghist[i] >> 63
		t.ghist[i] = t.ghist[i]<<1 | carry
		carry = next
	}

	// Graceful useful-bit aging.
	t.ticks++
	if t.ticks%resetEvery == 0 {
		for b := range t.banks {
			for i := range t.banks[b] {
				t.banks[b][i].useful >>= 1
			}
		}
	}
}
