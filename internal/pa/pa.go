// Package pa models the Arm pointer-authentication primitives that AOS
// builds on, extended with the AOS data-pointer instructions (§IV-A):
// pacma/pacmb (sign with PAC + AHC), xpacm (strip), and autm (authenticate
// the AHC). It also provides the classic pacia/autia pair used by the PA
// baseline for return-address and pointer-integrity signing.
//
// Pointer layout (modeled): a 64-bit virtual address with
//
//	bits [63:48] — 16-bit PAC
//	bits [47:46] — 2-bit AHC (nonzero means "signed by AOS")
//	bits [45:0]  — virtual address (VABits = 46)
//
// The paper uses 16-bit PACs under a typical AArch64 VA scheme; the exact
// upper-bit positions depend on the TCR configuration and are immaterial to
// the mechanism.
package pa

import (
	"fmt"

	"aos/internal/qarma"
)

// Pointer bit-layout constants.
const (
	// VABits is the modeled virtual-address width.
	VABits = 46
	// VAMask extracts the raw virtual address.
	VAMask = (uint64(1) << VABits) - 1
	// AHCShift is the bit position of the 2-bit AHC field.
	AHCShift = 46
	// AHCMask extracts the AHC field (in place).
	AHCMask = uint64(3) << AHCShift
	// PACShift is the bit position of the 16-bit PAC field.
	PACShift = 48
	// PACBits is the modeled PAC width.
	PACBits = 16
	// PACSpace is the number of distinct PAC values (HBT row count).
	PACSpace = 1 << PACBits
)

// AHC values produced by Algorithm 1. A zero AHC means "not signed".
const (
	// AHCNone marks an unsigned pointer.
	AHCNone uint8 = 0
	// AHCSmall marks a chunk whose addresses vary only in the low 7 bits
	// (≈64-byte objects).
	AHCSmall uint8 = 1
	// AHCMedium marks a chunk whose addresses vary only in the low 10 bits
	// (≈256-byte objects).
	AHCMedium uint8 = 2
	// AHCLarge marks everything bigger.
	AHCLarge uint8 = 3
)

// VA returns the raw virtual address of ptr (PAC and AHC stripped).
func VA(ptr uint64) uint64 { return ptr & VAMask }

// PAC returns the PAC field of ptr.
func PAC(ptr uint64) uint16 { return uint16(ptr >> PACShift) }

// AHC returns the AHC field of ptr.
func AHC(ptr uint64) uint8 { return uint8((ptr >> AHCShift) & 3) }

// IsSigned reports whether ptr carries a nonzero AHC, i.e. was signed by
// AOS. The MCU uses exactly this test to decide whether an access needs
// bounds checking (Fig 6).
func IsSigned(ptr uint64) bool { return ptr&AHCMask != 0 }

// Compose builds a signed pointer from a raw address, PAC and AHC.
func Compose(va uint64, pac uint16, ahc uint8) uint64 {
	return (va & VAMask) | (uint64(ahc&3) << AHCShift) | (uint64(pac) << PACShift)
}

// ComputeAHC implements Algorithm 1: classify the chunk [addr, addr+size)
// by which address bits are invariant across it.
func ComputeAHC(addr, size uint64) uint8 {
	if size == 0 {
		size = 1
	}
	tAddr := addr ^ (addr + size - 1)
	switch {
	case tAddr>>7 == 0:
		return AHCSmall
	case tAddr>>10 == 0:
		return AHCMedium
	default:
		return AHCLarge
	}
}

// Key identifies which PA key register a signing operation uses.
type Key int

// The PA key registers modeled. AOS uses the data keys for pacma/pacmb and
// the instruction key A for return-address signing in the PA baseline.
const (
	KeyIA Key = iota
	KeyIB
	KeyDA
	KeyDB
	numKeys
)

// KeyPair is one 128-bit PA key (w0||k0 halves of the QARMA key).
type KeyPair struct {
	W0, K0 uint64
}

// Unit models the per-process PA state: the key registers and the cipher.
// Keys live in system registers invisible to user space (threat model §III-D).
type Unit struct {
	ciphers [numKeys]*qarma.Cipher
}

// DefaultKeys are the keys the AOS paper uses in its §VI study: the QARMA
// reference key 0x84be85ce9804e94b_ec2802d4e0a488e9 for every register.
func DefaultKeys() [4]KeyPair {
	k := KeyPair{W0: 0x84be85ce9804e94b, K0: 0xec2802d4e0a488e9}
	return [4]KeyPair{k, k, k, k}
}

// NewUnit builds a PA unit with the given four key registers
// (IA, IB, DA, DB order).
func NewUnit(keys [4]KeyPair) *Unit {
	u := &Unit{}
	for i, kp := range keys {
		u.ciphers[i] = qarma.MustNew(qarma.Sigma1, qarma.Rounds, kp.W0, kp.K0)
	}
	return u
}

// NewDefaultUnit builds a PA unit with DefaultKeys.
func NewDefaultUnit() *Unit { return NewUnit(DefaultKeys()) }

// ComputePAC computes the truncated QARMA MAC of (va, modifier) under key k.
func (u *Unit) ComputePAC(k Key, va, modifier uint64) uint16 {
	return uint16(u.ciphers[k].Encrypt(va, modifier))
}

// SignData implements pacma/pacmb: sign a data pointer returned by the
// allocator. The PAC is computed over the chunk's base address with the
// given modifier (the paper uses SP); size feeds Algorithm 1 to produce the
// AHC. A zero size (the xzr re-signing in AOS-free, Fig 7b) yields AHCLarge
// so the pointer stays marked as signed ("locked") but matches no bounds.
func (u *Unit) SignData(k Key, ptr, modifier, size uint64) uint64 {
	va := VA(ptr)
	pac := u.ComputePAC(k, va, modifier)
	ahc := AHCLarge
	if size > 0 {
		ahc = ComputeAHC(va, size)
	}
	return Compose(va, pac, ahc)
}

// Strip implements xpacm: remove both PAC and AHC.
func Strip(ptr uint64) uint64 { return VA(ptr) }

// ErrAuthFailed is returned when autm sees a zero AHC, i.e. a pointer that
// should have been AOS-signed but is not (Fig 13).
var ErrAuthFailed = fmt.Errorf("pa: autm authentication failed (zero AHC)")

// AutM implements autm: authenticate that the pointer carries a nonzero
// AHC. It does not strip the AHC. A zero AHC means the pointer was
// corrupted or forged, and the authentication fails.
func AutM(ptr uint64) (uint64, error) {
	if !IsSigned(ptr) {
		return ptr, ErrAuthFailed
	}
	return ptr, nil
}

// SignCode implements pacia-style signing of a code/return address: the PAC
// is placed in the upper bits; no AHC is set (AHC is an AOS data-pointer
// concept).
func (u *Unit) SignCode(k Key, ptr, modifier uint64) uint64 {
	va := VA(ptr)
	pac := u.ComputePAC(k, va, modifier)
	return va | uint64(pac)<<PACShift
}

// AuthCode implements autia-style authentication: recompute the PAC and
// compare. On success the stripped pointer is returned; on mismatch an
// error (the hardware would poison the pointer so its use faults).
func (u *Unit) AuthCode(k Key, ptr, modifier uint64) (uint64, error) {
	va := VA(ptr)
	want := u.ComputePAC(k, va, modifier)
	if PAC(ptr) != want {
		return ptr, fmt.Errorf("pa: autia authentication failed for %#x", ptr)
	}
	return va, nil
}

// Latency constants (cycles) per Table IV.
const (
	// SignAuthLatency is the QARMA sign/authenticate latency.
	SignAuthLatency = 4
	// StripLatency is the xpacm latency.
	StripLatency = 1
)
