package pa

import (
	"testing"
	"testing/quick"
)

func TestPointerFieldRoundTrip(t *testing.T) {
	f := func(va uint64, pac uint16, ahcRaw uint8) bool {
		va &= VAMask
		ahc := ahcRaw & 3
		p := Compose(va, pac, ahc)
		return VA(p) == va && PAC(p) == pac && AHC(p) == ahc
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIsSigned(t *testing.T) {
	if IsSigned(0x2000_0000_0000) {
		t.Error("raw VA reported as signed")
	}
	if !IsSigned(Compose(0x2000_0000_0000, 0xABCD, AHCSmall)) {
		t.Error("signed pointer reported as unsigned")
	}
	// A PAC alone without an AHC is not an AOS-signed pointer.
	if IsSigned(Compose(0x2000_0000_0000, 0xABCD, AHCNone)) {
		t.Error("pointer with zero AHC reported as signed")
	}
}

func TestComputeAHC(t *testing.T) {
	// A 64-byte chunk aligned to 64 bytes varies only in the low 6 bits.
	if got := ComputeAHC(0x2000_0000_0000, 64); got != AHCSmall {
		t.Errorf("64B chunk: AHC = %d, want %d", got, AHCSmall)
	}
	if got := ComputeAHC(0x2000_0000_0040, 64); got != AHCSmall {
		t.Errorf("64B chunk within one 128B frame: AHC = %d, want %d", got, AHCSmall)
	}
	// ~256-byte chunks.
	if got := ComputeAHC(0x2000_0000_0000, 256); got != AHCMedium {
		t.Errorf("256B chunk: AHC = %d, want %d", got, AHCMedium)
	}
	// Large chunks.
	if got := ComputeAHC(0x2000_0000_0000, 4096); got != AHCLarge {
		t.Errorf("4KB chunk: AHC = %d, want %d", got, AHCLarge)
	}
	// A small chunk straddling a 128-byte boundary flips higher bits.
	if got := ComputeAHC(0x2000_0000_0078, 32); got != AHCMedium {
		t.Errorf("straddling small chunk: AHC = %d, want %d", got, AHCMedium)
	}
	// Zero size treated as one byte.
	if got := ComputeAHC(0x2000_0000_0000, 0); got != AHCSmall {
		t.Errorf("zero-size: AHC = %d, want %d", got, AHCSmall)
	}
}

func TestComputeAHCNeverZero(t *testing.T) {
	f := func(addr, size uint64) bool {
		addr &= VAMask
		size = size%(1<<32) + 1
		return ComputeAHC(addr, size) != AHCNone
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSignDataStripRoundTrip(t *testing.T) {
	u := NewDefaultUnit()
	f := func(vaRaw, mod uint64, sizeRaw uint32) bool {
		va := vaRaw & VAMask
		size := uint64(sizeRaw) + 1
		p := u.SignData(KeyDA, va, mod, size)
		return IsSigned(p) && Strip(p) == va
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSignDataDeterministic(t *testing.T) {
	u := NewDefaultUnit()
	a := u.SignData(KeyDA, 0x2000_0000_1000, 0x7000, 64)
	b := u.SignData(KeyDA, 0x2000_0000_1000, 0x7000, 64)
	if a != b {
		t.Errorf("signing is not deterministic: %#x != %#x", a, b)
	}
}

func TestSignDataKeySeparation(t *testing.T) {
	keys := DefaultKeys()
	keys[KeyDB] = KeyPair{W0: 1, K0: 2}
	u := NewUnit(keys)
	a := u.SignData(KeyDA, 0x2000_0000_1000, 0x7000, 64)
	b := u.SignData(KeyDB, 0x2000_0000_1000, 0x7000, 64)
	if PAC(a) == PAC(b) {
		t.Error("different keys produced identical PACs (possible but vanishingly unlikely)")
	}
}

func TestSignDataModifierSeparation(t *testing.T) {
	u := NewDefaultUnit()
	a := u.SignData(KeyDA, 0x2000_0000_1000, 0x7000, 64)
	b := u.SignData(KeyDA, 0x2000_0000_1000, 0x7008, 64)
	if PAC(a) == PAC(b) {
		t.Error("different modifiers produced identical PACs (possible but vanishingly unlikely)")
	}
}

func TestSignDataZeroSizeLocksPointer(t *testing.T) {
	// The re-signing after free() passes xzr as size; the pointer must stay
	// signed (locked) so later dereferences are bounds-checked and fail.
	u := NewDefaultUnit()
	p := u.SignData(KeyDA, 0x2000_0000_1000, 0x7000, 0)
	if !IsSigned(p) {
		t.Error("zero-size signing produced an unsigned pointer")
	}
	if AHC(p) != AHCLarge {
		t.Errorf("zero-size signing AHC = %d, want AHCLarge", AHC(p))
	}
}

func TestAutM(t *testing.T) {
	u := NewDefaultUnit()
	signed := u.SignData(KeyDA, 0x2000_0000_1000, 0x7000, 64)
	if _, err := AutM(signed); err != nil {
		t.Errorf("AutM(signed) = %v, want nil", err)
	}
	if _, err := AutM(Strip(signed)); err == nil {
		t.Error("AutM(stripped) succeeded, want ErrAuthFailed")
	}
	// Forging the AHC to zero while keeping the PAC must fail autm.
	forged := signed &^ AHCMask
	if _, err := AutM(forged); err == nil {
		t.Error("AutM(AHC-forged) succeeded, want ErrAuthFailed")
	}
}

func TestSignAuthCode(t *testing.T) {
	u := NewDefaultUnit()
	ret := uint64(0x0000_0040_1234)
	sp := uint64(0x3FFF_FFFF_0000)
	signed := u.SignCode(KeyIA, ret, sp)
	got, err := u.AuthCode(KeyIA, signed, sp)
	if err != nil || got != ret {
		t.Fatalf("AuthCode = %#x, %v; want %#x, nil", got, err, ret)
	}
	// Corrupting the address must fail authentication.
	if _, err := u.AuthCode(KeyIA, signed^0x10, sp); err == nil {
		t.Error("AuthCode accepted a corrupted pointer")
	}
	// Wrong modifier must fail authentication.
	if _, err := u.AuthCode(KeyIA, signed, sp+16); err == nil {
		t.Error("AuthCode accepted a wrong modifier")
	}
}

func TestPACDistributionIsReasonable(t *testing.T) {
	// Sanity version of Fig 11: PACs of sequential chunk addresses should
	// spread across the space, not cluster.
	u := NewDefaultUnit()
	const n = 1 << 14
	seen := make(map[uint16]int)
	addr := uint64(0x2000_0000_0000)
	for i := 0; i < n; i++ {
		pac := u.ComputePAC(KeyDA, addr, 0x477d469dec0b8762)
		seen[pac]++
		addr += 64
	}
	if len(seen) < n/4 {
		t.Errorf("PACs collapse onto %d distinct values out of %d signings", len(seen), n)
	}
	for pac, c := range seen {
		if c > 20 {
			t.Errorf("PAC %04x occurs %d times; distribution badly skewed", pac, c)
		}
	}
}
