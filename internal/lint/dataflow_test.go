package lint_test

import (
	"fmt"
	"path/filepath"
	"testing"

	"aos/internal/lint"
)

// golden renders diagnostics with the temp-dir prefix stripped so fixture
// expectations pin the full diagnostic byte-for-byte.
func golden(diags []lint.Diagnostic) []string {
	var out []string
	for _, d := range diags {
		out = append(out, fmt.Sprintf("%s:%d:%d: [%s] %s",
			filepath.Base(d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message))
	}
	return out
}

func assertGolden(t *testing.T, got []lint.Diagnostic, want []string) {
	t.Helper()
	gs := golden(got)
	if len(gs) != len(want) {
		t.Fatalf("got %d diagnostics, want %d:\ngot:  %q\nwant: %q", len(gs), len(want), gs, want)
	}
	for i := range gs {
		if gs[i] != want[i] {
			t.Errorf("diagnostic %d:\ngot:  %s\nwant: %s", i, gs[i], want[i])
		}
	}
}

// hotpathCleanFixture is a package whose hot closure allocates nothing:
// the commit loop reuses preallocated storage, and the allocation-heavy
// setup lives in functions unreachable from the hot root.
const hotpathCleanFixture = `package fixture

type event struct{ pc, addr uint64 }

type ring struct {
	buf  []event
	head int
}

// commit is the per-instruction hot edge.
//
//aoslint:hotpath
func (r *ring) commit(pc, addr uint64) {
	slot := &r.buf[r.head]
	slot.pc = pc
	slot.addr = addr
	r.head++
	if r.head == len(r.buf) {
		r.flush()
	}
}

func (r *ring) flush() {
	r.head = 0
}

// newRing is cold setup: it may allocate freely because it is not
// reachable from the hot root.
func newRing(n int) *ring {
	return &ring{buf: make([]event, n)}
}
`

// hotpathDirtyFixture seeds one instance of every construct the analyzer
// flags, spread across the root and a transitively-hot helper.
const hotpathDirtyFixture = `package fixture

type sink interface{ emit(v uint64) }

type core struct {
	out  sink
	ways []uint8
}

// step is the per-cycle hot edge.
//
//aoslint:hotpath
func (c *core) step(pc uint64) {
	buf := make([]byte, 8)
	_ = buf
	c.ways = append(c.ways, 1)
	f := func() uint64 { return pc }
	_ = f
	c.helper(pc)
}

func (c *core) helper(pc uint64) {
	v := pc
	c.record(&v)
	c.out.emit(pc)
}

func (c *core) record(p *uint64) {
	box := &core{}
	_ = box
	_ = p
}
`

func TestHotPathAllocFixtures(t *testing.T) {
	t.Run("clean", func(t *testing.T) {
		files := map[string]string{"internal/fixture/fixture.go": hotpathCleanFixture}
		assertGolden(t, findingsOf(runLint(t, files), "hotpathalloc"), nil)
	})
	t.Run("dirty", func(t *testing.T) {
		files := map[string]string{"internal/fixture/fixture.go": hotpathDirtyFixture}
		got := findingsOf(runLint(t, files), "hotpathalloc")
		assertGolden(t, got, []string{
			"fixture.go:14:9: [hotpathalloc] make in hot path core.step allocates",
			"fixture.go:16:11: [hotpathalloc] append in hot path core.step may grow its backing array",
			"fixture.go:17:7: [hotpathalloc] closure in hot path core.step allocates when it captures variables",
			"fixture.go:24:11: [hotpathalloc] address of local passed to call in hot path core.helper may force a heap escape",
			"fixture.go:29:9: [hotpathalloc] heap-escaping composite literal in hot path core.record",
		})
	})
}

// lockbalanceCleanFixture mirrors the internal/service idiom: Lock with
// deferred Unlock guarding refcount mutations, a balanced read path, and
// an early return covered by the defer.
const lockbalanceCleanFixture = `package fixture

import "sync"

type job struct{ refs int }

type table struct {
	mu   sync.RWMutex
	jobs map[uint64]*job
}

func (t *table) acquire(id uint64) *job {
	t.mu.Lock()
	defer t.mu.Unlock()
	j := t.jobs[id]
	if j == nil {
		return nil
	}
	j.refs++
	return j
}

func (t *table) release(j *job) {
	t.mu.Lock()
	j.refs--
	t.mu.Unlock()
}

func (t *table) size() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.jobs)
}
`

// lockbalanceDirtyFixture seeds the four defect classes: a branch that
// returns with the lock held, an unlock without a lock, a re-lock
// self-deadlock, and a refcount mutation outside any lock.
const lockbalanceDirtyFixture = `package fixture

import "sync"

type job struct{ refs int }

type table struct {
	mu   sync.Mutex
	jobs map[uint64]*job
}

func (t *table) leakyGet(id uint64) *job {
	t.mu.Lock()
	j := t.jobs[id]
	if j == nil {
		return nil
	}
	t.mu.Unlock()
	return j
}

func (t *table) doubleUnlock() {
	t.mu.Unlock()
}

func (t *table) deadlock() {
	t.mu.Lock()
	t.mu.Lock()
	t.mu.Unlock()
	t.mu.Unlock()
}

func (t *table) unguarded(j *job) {
	j.refs++
}
`

func TestLockBalanceFixtures(t *testing.T) {
	t.Run("clean", func(t *testing.T) {
		files := map[string]string{"internal/fixture/fixture.go": lockbalanceCleanFixture}
		assertGolden(t, findingsOf(runLint(t, files), "lockbalance"), nil)
	})
	t.Run("dirty", func(t *testing.T) {
		files := map[string]string{"internal/fixture/fixture.go": lockbalanceDirtyFixture}
		got := findingsOf(runLint(t, files), "lockbalance")
		assertGolden(t, got, []string{
			"fixture.go:13:2: [lockbalance] t.mu locked here is still held when the function returns on some path",
			"fixture.go:23:2: [lockbalance] t.mu.Unlock() on a path where it is not held",
			"fixture.go:28:2: [lockbalance] t.mu.Lock() while already held on this path (self-deadlock)",
			"fixture.go:34:2: [lockbalance] refcount field mutated with no lock held on this path",
		})
	})
}
