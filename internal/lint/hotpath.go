package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"aos/internal/stats"
)

// hotRootFuncs are the per-package built-in hot-path roots: the timing
// core's per-instruction commit surface. Keys are package import paths,
// values are "Receiver.Method" (or bare function) names. A function can
// also opt in anywhere with an `//aoslint:hotpath` doc-comment line.
var hotRootFuncs = map[string][]string{
	"aos/internal/cpu":  {"Core.Emit", "Core.EmitBatch"},
	"aos/internal/core": {"Machine.emit", "Machine.emitScalar", "Machine.Flush"},
}

// HotPathAlloc flags allocation-prone constructs — make/new, append
// growth, closures, heap-escaping composites and address-taking,
// interface boxing — inside functions reachable (intra-package) from the
// hot-path roots. It is the static companion of the runtime
// zero-allocation guard (TestCoreEmitAllocsSteadyState): the runtime test
// proves the steady state clean for one workload, this analyzer pins
// every path of the commit closure. True positives that are provably
// amortized or cold carry an //aoslint:allow with the argument why.
var HotPathAlloc = &Analyzer{
	Name: "hotpathalloc",
	Doc:  "no allocation-prone constructs in functions reachable from hot-path roots (cpu.Core/core.Machine commit, //aoslint:hotpath)",
	Run: func(p *Pass) {
		decls, graph := packageCallGraph(p.Pkg)
		hot := hotFunctions(p.Pkg, decls, graph)
		// Deterministic report order: functions sorted by name.
		for _, name := range stats.SortedKeys(hot) {
			checkHotFunc(p, decls[name], name)
		}
	},
}

// funcKey names a declaration "Recv.Method" for methods (receiver base
// type name) or bare "Func" for functions.
func funcKey(d *ast.FuncDecl) string {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return d.Name.Name
	}
	t := d.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name + "." + d.Name.Name
	}
	return d.Name.Name
}

// packageCallGraph indexes the package's declarations and their
// intra-package call edges. Method calls resolve through the typechecker
// when the receiver type is known; otherwise they fall back to matching
// by method name alone — over-approximating reachability, which errs
// toward analyzing more functions, never fewer.
func packageCallGraph(pkg *Package) (map[string]*ast.FuncDecl, map[string][]string) {
	decls := map[string]*ast.FuncDecl{}
	methodsByName := map[string][]string{}
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			key := funcKey(fd)
			decls[key] = fd
			if fd.Recv != nil {
				methodsByName[fd.Name.Name] = append(methodsByName[fd.Name.Name], key)
			}
		}
	}
	graph := map[string][]string{}
	for _, key := range stats.SortedKeys(decls) {
		fd := decls[key]
		seen := map[string]bool{}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			for _, callee := range resolveCallees(pkg, call, decls, methodsByName) {
				if !seen[callee] {
					seen[callee] = true
					graph[key] = append(graph[key], callee)
				}
			}
			return true
		})
		sort.Strings(graph[key])
	}
	return decls, graph
}

// resolveCallees maps one call expression to same-package declaration keys.
func resolveCallees(pkg *Package, call *ast.CallExpr, decls map[string]*ast.FuncDecl, methodsByName map[string][]string) []string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if _, ok := decls[fun.Name]; ok {
			return []string{fun.Name}
		}
	case *ast.SelectorExpr:
		name := fun.Sel.Name
		if pkg.Info != nil {
			if t := pkg.Info.TypeOf(fun.X); t != nil {
				if ptr, ok := t.(*types.Pointer); ok {
					t = ptr.Elem()
				}
				if named, ok := t.(*types.Named); ok {
					key := named.Obj().Name() + "." + name
					if _, ok := decls[key]; ok {
						return []string{key}
					}
					return nil // resolved to a type without that method here
				}
			}
		}
		// Unresolvable receiver: every same-named method may be the callee.
		return methodsByName[name]
	}
	return nil
}

// hotFunctions BFSes the call graph from the package's roots.
func hotFunctions(pkg *Package, decls map[string]*ast.FuncDecl, graph map[string][]string) map[string]bool {
	var queue []string
	hot := map[string]bool{}
	push := func(key string) {
		if key != "" && !hot[key] && decls[key] != nil {
			hot[key] = true
			queue = append(queue, key)
		}
	}
	for _, key := range hotRootFuncs[pkg.Path] {
		push(key)
	}
	for _, key := range stats.SortedKeys(decls) {
		if hasHotPathDirective(decls[key]) {
			push(key)
		}
	}
	for len(queue) > 0 {
		key := queue[0]
		queue = queue[1:]
		for _, callee := range graph[key] {
			push(callee)
		}
	}
	return hot
}

// hasHotPathDirective scans the raw doc-comment list: //aoslint:hotpath is
// a directive comment (no space after //), which CommentGroup.Text()
// strips, so the check must not go through Text().
func hasHotPathDirective(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.Contains(c.Text, "aoslint:hotpath") {
			return true
		}
	}
	return false
}

// checkHotFunc reports allocation-prone constructs in one hot function.
func checkHotFunc(p *Pass, fd *ast.FuncDecl, name string) {
	info := p.Pkg.Info
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			p.Reportf(n.Pos(), "closure in hot path %s allocates when it captures variables", name)
			return true // its body is still hot code
		case *ast.UnaryExpr:
			if n.Op.String() == "&" {
				if _, ok := n.X.(*ast.CompositeLit); ok {
					p.Reportf(n.Pos(), "heap-escaping composite literal in hot path %s", name)
				}
			}
		case *ast.CallExpr:
			checkHotCall(p, info, n, name)
		}
		return true
	})
}

func checkHotCall(p *Pass, info *types.Info, call *ast.CallExpr, name string) {
	if id, ok := call.Fun.(*ast.Ident); ok {
		switch id.Name {
		case "make", "new":
			p.Reportf(call.Pos(), "%s in hot path %s allocates", id.Name, name)
			return
		case "append":
			p.Reportf(call.Pos(), "append in hot path %s may grow its backing array", name)
			return
		}
	}
	// Address of a plain local passed to a call: the callee may retain the
	// pointer, so the compiler moves the local to the heap (the classic
	// sink.Emit(&in) hidden allocation). Addresses of slice elements or
	// fields (&batch[i], &s.f) point into existing storage and are free.
	for _, arg := range call.Args {
		if u, ok := arg.(*ast.UnaryExpr); ok && u.Op.String() == "&" {
			if _, isIdent := u.X.(*ast.Ident); isIdent {
				p.Reportf(u.Pos(), "address of local passed to call in hot path %s may force a heap escape", name)
			}
		}
	}
	// Interface boxing: a concrete value passed where the (resolvable)
	// signature takes an interface is wrapped in a heap-allocated pair.
	if info == nil {
		return
	}
	sig, ok := info.TypeOf(call.Fun).(*types.Signature)
	if !ok || sig == nil {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		if sig.Variadic() && i >= params.Len()-1 {
			if slice, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
				pt = slice.Elem()
			}
		} else if i < params.Len() {
			pt = params.At(i).Type()
		}
		if pt == nil || !types.IsInterface(pt) {
			continue
		}
		at := info.TypeOf(arg)
		if at == nil || types.IsInterface(at) {
			continue
		}
		if b, ok := at.(*types.Basic); ok && b.Kind() == types.UntypedNil {
			continue
		}
		p.Reportf(arg.Pos(), "concrete value boxed into interface parameter in hot path %s", name)
	}
}
