package lint

import (
	"go/ast"
	"go/token"
	"strings"

	"aos/internal/stats"
)

// LockBalance verifies, per function and per syntactic lock key ("s.mu",
// "j.events.mu"), that mutex operations balance on every control-flow
// path: no Unlock of a lock not held, no second Lock of a held mutex (a
// self-deadlock), no lock still held at a return that does not schedule a
// deferred release, and no refcount-field mutation (x.refs++/--) outside
// any held lock — the internal/service job-table idiom ahead of the
// distributed-aosd work.
//
// Keys are tracked may-alias-free: if a key's root identifier is ever
// assigned in the function, every key rooted there is dropped for the
// whole function (the syntactic name no longer denotes one lock).
// Function literals are analyzed as separate functions; a literal that
// locks what its enclosing function releases (or vice versa) is beyond an
// intra-procedural analysis and needs an //aoslint:allow annotation.
// sync.Once use is not modeled.
var LockBalance = &Analyzer{
	Name: "lockbalance",
	Doc:  "mutex Lock/Unlock (and RLock/RUnlock) must balance on every path; refcount mutations need a held lock",
	Run: func(p *Pass) {
		for _, f := range p.Pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.FuncDecl:
					if n.Body != nil {
						analyzeLockBalance(p, n.Body)
					}
				case *ast.FuncLit:
					analyzeLockBalance(p, n.Body)
					return false // the recursive Inspect above handles nesting
				}
				return true
			})
		}
	},
}

// lockOp is one lock-relevant operation extracted from a block.
type lockOp struct {
	kind lockOpKind
	key  string // "" for refMut
	pos  token.Pos
}

type lockOpKind uint8

const (
	opLock lockOpKind = iota
	opUnlock
	opRLock
	opRUnlock
	opDeferUnlock
	opDeferRUnlock
	opRefMut
)

// refCountFields are the spellings of manual-refcount struct fields.
var refCountFields = map[string]bool{
	"refs": true, "refcount": true, "refCount": true, "refcnt": true,
}

func analyzeLockBalance(p *Pass, body *ast.BlockStmt) {
	poisoned := assignedRoots(body)
	g := buildCFG(body)

	// Extract the lock-relevant ops of every block up front.
	ops := map[*cfgBlock][]lockOp{}
	any := false
	for _, blk := range g.blocks {
		for _, s := range blk.stmts {
			for _, op := range lockOpsIn(s, poisoned) {
				ops[blk] = append(ops[blk], op)
				any = true
			}
		}
	}
	if !any {
		return
	}

	reported := map[token.Pos]string{}
	report := func(pos token.Pos, format string, args ...interface{}) {
		// One finding per site per message, however many paths reach it.
		msg := format
		if prev, ok := reported[pos]; ok && prev == msg {
			return
		}
		reported[pos] = msg
		p.Reportf(pos, format, args...)
	}

	complete := g.eachPath(func(path []*cfgBlock) {
		held := map[string]int{}
		heldAt := map[string]token.Pos{}
		totalHeld := 0
		var deferred []lockOp
		for _, blk := range path {
			for _, op := range ops[blk] {
				switch op.kind {
				case opLock:
					if held[op.key] > 0 {
						report(op.pos, "%s.Lock() while already held on this path (self-deadlock)", op.key)
					}
					held[op.key]++
					heldAt[op.key] = op.pos
					totalHeld++
				case opRLock:
					held[op.key+"#R"]++
					heldAt[op.key+"#R"] = op.pos
					totalHeld++
				case opUnlock:
					if held[op.key] == 0 {
						report(op.pos, "%s.Unlock() on a path where it is not held", op.key)
					} else {
						held[op.key]--
						totalHeld--
					}
				case opRUnlock:
					if held[op.key+"#R"] == 0 {
						report(op.pos, "%s.RUnlock() on a path where it is not read-held", op.key)
					} else {
						held[op.key+"#R"]--
						totalHeld--
					}
				case opDeferUnlock, opDeferRUnlock:
					deferred = append(deferred, op)
				case opRefMut:
					if totalHeld == 0 {
						report(op.pos, "refcount field mutated with no lock held on this path")
					}
				}
			}
		}
		// Function exit: run the deferred releases scheduled on this path
		// (LIFO, though order is immaterial to counting), then anything
		// still held leaks past the return.
		for i := len(deferred) - 1; i >= 0; i-- {
			op := deferred[i]
			key := op.key
			if op.kind == opDeferRUnlock {
				key += "#R"
			}
			if held[key] == 0 {
				report(op.pos, "deferred %s release on a path where it is not held at return", op.key)
			} else {
				held[key]--
			}
		}
		for _, key := range stats.SortedKeys(held) {
			if held[key] > 0 {
				name, _, _ := strings.Cut(key, "#")
				report(heldAt[key], "%s locked here is still held when the function returns on some path", name)
			}
		}
	})
	if !complete {
		// Path cap hit: silently skip — soundness over noise on generated
		// or pathological functions.
		return
	}
}

// lockOpsIn extracts the lock operations syntactically present in one
// statement, skipping nested function literals (analyzed separately).
func lockOpsIn(s ast.Stmt, poisoned map[string]bool) []lockOp {
	var ops []lockOp
	if d, ok := s.(*ast.DeferStmt); ok {
		if kind, key, ok := lockCall(d.Call, poisoned); ok {
			switch kind {
			case opUnlock:
				ops = append(ops, lockOp{kind: opDeferUnlock, key: key, pos: d.Pos()})
			case opRUnlock:
				ops = append(ops, lockOp{kind: opDeferRUnlock, key: key, pos: d.Pos()})
			case opLock, opRLock:
				// defer mu.Lock() is almost certainly a typo'd release.
				ops = append(ops, lockOp{kind: kind, key: key, pos: d.Pos()})
			}
		}
		return ops
	}
	ast.Inspect(s, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.DeferStmt:
			return false // handled at statement level when top-level
		case *ast.GoStmt:
			return false // async; not part of this function's discipline
		case *ast.CallExpr:
			if kind, key, ok := lockCall(n, poisoned); ok {
				ops = append(ops, lockOp{kind: kind, key: key, pos: n.Pos()})
			}
		case *ast.IncDecStmt:
			if sel, ok := n.X.(*ast.SelectorExpr); ok && refCountFields[sel.Sel.Name] {
				ops = append(ops, lockOp{kind: opRefMut, pos: n.Pos()})
			}
		}
		return true
	})
	return ops
}

// lockCall classifies a call as a tracked mutex operation and derives its
// syntactic key. Calls through poisoned roots or non-selector paths are
// untracked.
func lockCall(call *ast.CallExpr, poisoned map[string]bool) (lockOpKind, string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || len(call.Args) != 0 {
		return 0, "", false
	}
	var kind lockOpKind
	switch sel.Sel.Name {
	case "Lock":
		kind = opLock
	case "Unlock":
		kind = opUnlock
	case "RLock":
		kind = opRLock
	case "RUnlock":
		kind = opRUnlock
	default:
		return 0, "", false
	}
	key, root, ok := selectorPath(sel.X)
	if !ok || poisoned[root] {
		return 0, "", false
	}
	return kind, key, true
}

// selectorPath renders a pure ident-selector chain ("s.cache.mu") and its
// root identifier. Anything else (calls, indexing, dereferences) is not a
// stable name.
func selectorPath(e ast.Expr) (path, root string, ok bool) {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name, e.Name, true
	case *ast.SelectorExpr:
		p, r, ok := selectorPath(e.X)
		if !ok {
			return "", "", false
		}
		return p + "." + e.Sel.Name, r, true
	case *ast.ParenExpr:
		return selectorPath(e.X)
	}
	return "", "", false
}

// assignedRoots collects every identifier assigned anywhere in the body
// (=, :=, ++/--, range binding, address-escape via unary &): keys rooted
// at one of these may alias and are not tracked.
func assignedRoots(body *ast.BlockStmt) map[string]bool {
	roots := map[string]bool{}
	mark := func(e ast.Expr) {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			roots[id.Name] = true
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				mark(lhs)
			}
		case *ast.RangeStmt:
			if n.Key != nil {
				mark(n.Key)
			}
			if n.Value != nil {
				mark(n.Value)
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				mark(n.X)
			}
		}
		return true
	})
	return roots
}
