// Package lint is a self-contained go/analysis-style framework plus the
// repo's custom analyzers. It deliberately mirrors the golang.org/x/tools
// analysis API shape (Analyzer, Pass, Diagnostic) while depending only on
// the standard library's go/ast, go/parser and go/types — the module is
// dependency-free and stays that way.
//
// The analyzers encode invariants the compiler cannot check:
//
//   - exhaustive: every switch over instrument.Scheme or isa.Op covers all
//     members or carries a default clause, so adding a scheme or op class
//     fails the lint until every dispatch site is revisited.
//   - mapiter: no order-dependent iteration over maps — the determinism
//     the parallel runner guarantees (byte-identical -j1 vs -jN output)
//     dies the moment a result path ranges over a map unsorted.
//   - detrand: no time.Now/time.Since/time.Until or math/rand outside the
//     allowlisted runner/workload seeding sites; wall-clock and global
//     randomness are the other classic determinism leaks.
//   - statstable: stats.Table rows must match the header arity declared at
//     NewTable, statically preventing the misrendered-column class of bug.
//   - probename: telemetry probe registrations use constant lower_snake
//     names with a known subsystem prefix (cpu, mcu, hbt, heap), each
//     registered at most once per function — the probe namespace stays
//     grep-auditable and the registry's runtime panic is caught at lint
//     time instead.
//
// A finding is suppressed by an annotation comment on the same line or the
// line above: //aoslint:allow <analyzer> — reason.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Analyzer is one lint check.
type Analyzer struct {
	// Name is the identifier used in reports and allow-annotations.
	Name string
	// Doc is a one-line description.
	Doc string
	// Run inspects one package through the pass.
	Run func(*Pass)
}

// Diagnostic is one finding.
type Diagnostic struct {
	// Analyzer is the reporting analyzer's name.
	Analyzer string
	// Pos locates the finding.
	Pos token.Position
	// Message explains it.
	Message string
}

// String renders the finding in the familiar path:line:col style.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Pass carries one (package, analyzer) execution.
type Pass struct {
	// Analyzer is the running check.
	Analyzer *Analyzer
	// Pkg is the package under inspection.
	Pkg *Package

	diags *[]Diagnostic
	// allowLines caches, per filename, the lines covered by an
	// //aoslint:allow annotation for this analyzer.
	allowLines map[string]map[int]bool
}

// Reportf records a finding unless an allow-annotation covers its line.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	position := p.Pkg.Fset.Position(pos)
	if p.allowedAt(position) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      position,
		Message:  fmt.Sprintf(format, args...),
	})
}

// allowedAt reports whether //aoslint:allow <analyzer> covers the position:
// the annotation suppresses findings on its own line and the line below.
func (p *Pass) allowedAt(pos token.Position) bool {
	lines, ok := p.allowLines[pos.Filename]
	if !ok {
		lines = map[int]bool{}
		marker := "aoslint:allow " + p.Analyzer.Name
		for _, f := range p.Pkg.Files {
			if p.Pkg.Fset.Position(f.Pos()).Filename != pos.Filename {
				continue
			}
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if strings.Contains(c.Text, marker) {
						line := p.Pkg.Fset.Position(c.Pos()).Line
						lines[line] = true
						lines[line+1] = true
					}
				}
			}
		}
		if p.allowLines == nil {
			p.allowLines = map[string]map[int]bool{}
		}
		p.allowLines[pos.Filename] = lines
	}
	return lines[pos.Line]
}

// All returns the repo's analyzer suite.
func All() []*Analyzer {
	return []*Analyzer{Exhaustive, MapIter, DetRand, StatsTable, ProbeName, HotPathAlloc, LockBalance}
}

// Run applies the analyzers to the packages and returns the findings
// sorted by position (deterministic output regardless of load order).
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{Analyzer: a, Pkg: pkg, diags: &diags}
			a.Run(pass)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}

// inspectAll walks every file of the pass's package.
func inspectAll(p *Pass, fn func(ast.Node) bool) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, fn)
	}
}
