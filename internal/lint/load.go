package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Package is one parsed and typechecked module package.
type Package struct {
	// Path is the import path (module path + relative directory).
	Path string
	// Dir is the directory relative to the module root ("." for the root).
	Dir string
	// Fset is the file set shared by every package of the load.
	Fset *token.FileSet
	// Files are the parsed non-test sources, in filename order.
	Files []*ast.File
	// Types is the typechecked package object. Typechecking runs with stub
	// imports for out-of-module packages, so it is usually partial: objects
	// and expression types rooted in the standard library may be missing.
	// Analyzers must tolerate nil results from Info lookups.
	Types *types.Package
	// Info holds the typechecker's maps for the package's files.
	Info *types.Info
}

// FindModuleRoot walks up from dir to the directory containing go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// modulePath extracts the module declaration from go.mod.
func modulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			rest = strings.TrimSpace(rest)
			if p, err := strconv.Unquote(rest); err == nil {
				return p, nil
			}
			return rest, nil
		}
	}
	return "", fmt.Errorf("lint: no module declaration in %s/go.mod", root)
}

// skipDir reports whether a directory never contributes module packages.
func skipDir(name string) bool {
	return name == "testdata" || name == "vendor" ||
		strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")
}

// Load parses and typechecks the module rooted at root. Patterns select
// packages by their root-relative directory: "./..." matches everything,
// "./x/..." a subtree, "./x" one directory, "." the root package. Test
// files are excluded — they may form external test packages and routinely
// use time/rand legitimately.
//
// Out-of-module imports resolve to empty stub packages; the resulting type
// errors are swallowed and typechecking continues, so in-module types,
// constants and map types resolve fully while stdlib-rooted expressions
// may lack type info.
func Load(root string, patterns ...string) ([]*Package, error) {
	modPath, err := modulePath(root)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()

	// Discover every package directory and parse its sources.
	parsed := map[string]*Package{} // import path -> package
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		if path != root && skipDir(d.Name()) {
			return filepath.SkipDir
		}
		entries, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		var files []*ast.File
		for _, e := range entries {
			name := e.Name()
			if e.IsDir() || !strings.HasSuffix(name, ".go") ||
				strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
				continue
			}
			f, err := parser.ParseFile(fset, filepath.Join(path, name), nil, parser.ParseComments)
			if err != nil {
				return fmt.Errorf("lint: parse %s: %w", filepath.Join(path, name), err)
			}
			files = append(files, f)
		}
		if len(files) == 0 {
			return nil
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		rel = filepath.ToSlash(rel)
		imp := modPath
		if rel != "." {
			imp = modPath + "/" + rel
		}
		parsed[imp] = &Package{Path: imp, Dir: rel, Fset: fset, Files: files}
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Typecheck in dependency order so in-module imports resolve to real
	// packages. Valid Go has no import cycles; a cycle would surface as a
	// stubbed (partial) import, not an infinite loop.
	im := &importerState{modPkgs: parsed, done: map[string]*types.Package{}, stubs: map[string]*types.Package{}}
	order := make([]string, 0, len(parsed))
	for p := range parsed { //aoslint:allow mapiter — sorted before use
		order = append(order, p)
	}
	sort.Strings(order)
	for _, imp := range order {
		im.check(imp)
	}

	// Select by pattern.
	selected := make([]*Package, 0, len(order))
	for _, imp := range order {
		if matchesAny(parsed[imp].Dir, patterns) {
			selected = append(selected, parsed[imp])
		}
	}
	return selected, nil
}

// matchesAny applies the root-relative directory patterns.
func matchesAny(dir string, patterns []string) bool {
	if len(patterns) == 0 {
		return true
	}
	for _, p := range patterns {
		p = strings.TrimPrefix(filepath.ToSlash(p), "./")
		switch {
		case p == "..." || p == "":
			return true
		case strings.HasSuffix(p, "/..."):
			base := strings.TrimSuffix(p, "/...")
			if dir == base || strings.HasPrefix(dir, base+"/") {
				return true
			}
		case p == ".":
			if dir == "." {
				return true
			}
		default:
			if dir == p {
				return true
			}
		}
	}
	return false
}

// importerState typechecks module packages on demand and stubs everything
// else.
type importerState struct {
	modPkgs map[string]*Package
	done    map[string]*types.Package
	stubs   map[string]*types.Package
	busy    map[string]bool
}

// check typechecks one module package (memoized).
func (im *importerState) check(path string) *types.Package {
	if p, ok := im.done[path]; ok {
		return p
	}
	pkg := im.modPkgs[path]
	if im.busy == nil {
		im.busy = map[string]bool{}
	}
	if im.busy[path] {
		return nil // import cycle: let the typechecker report it
	}
	im.busy[path] = true
	defer delete(im.busy, path)

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	cfg := types.Config{
		Importer:    importerFunc(func(p string) (*types.Package, error) { return im.resolve(p), nil }),
		FakeImportC: true,
		// Stubbed stdlib imports produce a stream of "undefined" errors;
		// swallow them and keep whatever type info still resolves.
		Error: func(error) {},
	}
	tpkg, _ := cfg.Check(path, pkg.Fset, pkg.Files, info)
	pkg.Types, pkg.Info = tpkg, info
	im.done[path] = tpkg
	return tpkg
}

// resolve returns a real module package or a stub for everything else.
func (im *importerState) resolve(path string) *types.Package {
	if path == "unsafe" {
		return types.Unsafe
	}
	if _, ok := im.modPkgs[path]; ok {
		if p := im.check(path); p != nil {
			return p
		}
	}
	if p, ok := im.stubs[path]; ok {
		return p
	}
	name := path
	if i := strings.LastIndex(name, "/"); i >= 0 {
		name = name[i+1:]
	}
	p := types.NewPackage(path, name)
	p.MarkComplete()
	im.stubs[path] = p
	return p
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
