package lint_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"aos/internal/lint"
)

// writeModule materializes a throwaway module named "aos" (the analyzers
// key enum and allowlist paths off the real module name).
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	files["go.mod"] = "module aos\n\ngo 1.22\n"
	for name, src := range files {
		path := filepath.Join(root, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

// miniEnums are minimal isa/instrument/stats packages matching the real
// import paths.
func miniEnums() map[string]string {
	return map[string]string{
		"internal/isa/isa.go": `package isa

type Op uint8

const (
	OpNop Op = iota
	OpLoad
	OpStore

	opCount
)
`,
		"internal/instrument/instrument.go": `package instrument

type Scheme int

const (
	Baseline Scheme = iota
	Watchdog
	AOS

	numSchemes
)
`,
		"internal/stats/stats.go": `package stats

type Table struct{ header []string; rows [][]interface{} }

func NewTable(header ...string) *Table { return &Table{header: header} }

func (t *Table) AddRow(cells ...interface{}) { t.rows = append(t.rows, cells) }
`,
		"internal/telemetry/telemetry.go": `package telemetry

type Counter struct{ v uint64 }
type Gauge struct{ v uint64 }
type Histogram struct{ n uint64 }

type Registry struct{ names []string }

func NewRegistry() *Registry { return &Registry{} }

func (r *Registry) Counter(name string) *Counter { r.names = append(r.names, name); return new(Counter) }
func (r *Registry) Gauge(name string) *Gauge { r.names = append(r.names, name); return new(Gauge) }
func (r *Registry) Histogram(name string, bounds []uint64) *Histogram { r.names = append(r.names, name); return new(Histogram) }
`,
	}
}

func runLint(t *testing.T, files map[string]string, patterns ...string) []lint.Diagnostic {
	t.Helper()
	root := writeModule(t, files)
	pkgs, err := lint.Load(root, patterns...)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) == 0 {
		t.Fatal("no packages loaded")
	}
	return lint.Run(pkgs, lint.All())
}

// wantFinding asserts exactly one diagnostic from the given analyzer whose
// message contains each fragment.
func findingsOf(diags []lint.Diagnostic, analyzer string) []lint.Diagnostic {
	var out []lint.Diagnostic
	for _, d := range diags {
		if d.Analyzer == analyzer {
			out = append(out, d)
		}
	}
	return out
}

func TestExhaustiveSwitch(t *testing.T) {
	files := miniEnums()
	files["internal/use/use.go"] = `package use

import (
	"aos/internal/instrument"
	"aos/internal/isa"
)

func Bad(s instrument.Scheme) int {
	switch s {
	case instrument.Baseline:
		return 0
	case instrument.Watchdog:
		return 1
	}
	return 2
}

func GoodDefault(s instrument.Scheme) int {
	switch s {
	case instrument.Baseline:
		return 0
	default:
		return 1
	}
}

func GoodComplete(o isa.Op) int {
	switch o {
	case isa.OpNop, isa.OpLoad:
		return 0
	case isa.OpStore:
		return 1
	}
	return 2
}

func BadOp(o isa.Op) int {
	switch o {
	case isa.OpLoad:
		return 0
	}
	return 1
}
`
	got := findingsOf(runLint(t, files), "exhaustive")
	if len(got) != 2 {
		t.Fatalf("want 2 exhaustive findings, got %v", got)
	}
	if !strings.Contains(got[0].Message, "missing AOS") {
		t.Errorf("scheme finding = %v", got[0])
	}
	if !strings.Contains(got[1].Message, "missing OpNop, OpStore") {
		t.Errorf("op finding = %v", got[1])
	}
}

func TestMapIter(t *testing.T) {
	files := miniEnums()
	files["internal/agg/agg.go"] = `package agg

import "fmt"

func Bad(m map[string]int) {
	for k := range m {
		fmt.Println(k)
	}
}

func GoodFold(m map[string]float64, out map[string]float64) {
	for k, v := range m {
		out[k] = v * 2
	}
}

func GoodCount(m map[string]int, hist map[int]int) {
	for _, v := range m {
		hist[v]++
	}
}

func Allowed(m map[string]int) int {
	n := 0
	for _, v := range m { //aoslint:allow mapiter — commutative sum
		n += v
	}
	return n
}
`
	got := findingsOf(runLint(t, files), "mapiter")
	if len(got) != 1 || got[0].Pos.Line != 6 {
		t.Fatalf("want exactly the Bad finding (folds and annotated sums pass), got %v", got)
	}
}

func TestMapIterExact(t *testing.T) {
	// The sum in Allowed writes to a plain variable — order-free in fact
	// but not provably by the fold rule, hence the annotation; Bad has no
	// annotation. Verify the finding lands on Bad only when Allowed is
	// annotated.
	files := miniEnums()
	files["internal/agg/agg.go"] = `package agg

import "fmt"

func Bad(m map[string]int) {
	for k := range m {
		fmt.Println(k)
	}
}

func Allowed(m map[string]int) int {
	n := 0
	//aoslint:allow mapiter — commutative sum
	for _, v := range m {
		n += v
	}
	return n
}
`
	got := findingsOf(runLint(t, files), "mapiter")
	if len(got) != 1 || !strings.Contains(got[0].Pos.Filename, "agg.go") || got[0].Pos.Line != 6 {
		t.Fatalf("want exactly the Bad finding at line 6, got %v", got)
	}
}

func TestDetRand(t *testing.T) {
	files := miniEnums()
	files["internal/out/out.go"] = `package out

import (
	"math/rand"
	"time"
)

func Bad() int64 {
	start := time.Now()
	_ = rand.Int()
	return time.Since(start).Nanoseconds()
}

func Allowed(deadline time.Time) time.Duration {
	start := time.Now() //aoslint:allow detrand — metadata only
	_ = start

	return time.Until(deadline)
}
`
	// The runner/workload packages are allowlisted wholesale.
	files["internal/runner/runner.go"] = `package runner

import "time"

func Wall() time.Time { return time.Now() }
`
	files["internal/workload/workload.go"] = `package workload

import "math/rand"

func Seed(s int64) *rand.Rand { return rand.New(rand.NewSource(s)) }
`
	got := findingsOf(runLint(t, files), "detrand")
	// Expect: the math/rand import, time.Now in Bad, time.Since in Bad,
	// time.Until in Allowed (only Now is annotated).
	if len(got) != 4 {
		t.Fatalf("want 4 detrand findings, got %v", got)
	}
	for _, d := range got {
		if strings.Contains(d.Pos.Filename, "runner") || strings.Contains(d.Pos.Filename, "workload") {
			t.Fatalf("allowlisted package flagged: %v", d)
		}
	}
}

func TestStatsTable(t *testing.T) {
	files := miniEnums()
	files["internal/render/render.go"] = `package render

import "aos/internal/stats"

func Bad() *stats.Table {
	t := stats.NewTable("a", "b", "c")
	t.AddRow(1, 2, 3)
	t.AddRow(1, 2) // too short
	t.AddRow(1, 2, 3, 4) // too long
	return t
}

func GoodSpread(cells []interface{}) *stats.Table {
	t := stats.NewTable("a", "b")
	t.AddRow(cells...)
	return t
}
`
	got := findingsOf(runLint(t, files), "statstable")
	if len(got) != 2 {
		t.Fatalf("want 2 statstable findings, got %v", got)
	}
	for _, d := range got {
		if !strings.Contains(d.Message, "3 header columns") {
			t.Errorf("unexpected message: %v", d)
		}
	}
}

func TestPatternSelection(t *testing.T) {
	files := miniEnums()
	files["internal/out/out.go"] = `package out

import "time"

func Bad() time.Time { return time.Now() }
`
	root := writeModule(t, files)
	pkgs, err := lint.Load(root, "./internal/isa")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 || pkgs[0].Path != "aos/internal/isa" {
		t.Fatalf("pattern selected %v", pkgs)
	}
	pkgs, err = lint.Load(root, "./internal/...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 5 {
		t.Fatalf("subtree pattern selected %d packages, want 5", len(pkgs))
	}
}

func TestProbeName(t *testing.T) {
	files := miniEnums()
	files["internal/flight/flight.go"] = `package flight

import "aos/internal/telemetry"

const hitName = "mcu_bwb_hits_total"

func Good(r *telemetry.Registry) {
	r.Counter("cpu_insts_total")
	r.Gauge("hbt_live_entries")
	r.Histogram("heap_alloc_bytes", []uint64{16, 64})
	r.Counter(hitName) // named constants are fine
}

func SeparateScope(r *telemetry.Registry) {
	r.Counter("cpu_insts_total") // same name, different function: fine
}

func BadStyle(r *telemetry.Registry) {
	r.Counter("cpuInstsTotal")
	r.Gauge("cycles")
}

func BadPrefix(r *telemetry.Registry) {
	r.Counter("tlb_misses_total")
}

func BadDynamic(r *telemetry.Registry, name string) {
	r.Counter(name)
}

func BadDup(r *telemetry.Registry) {
	r.Counter("mcu_forwards_total")
	r.Counter("mcu_forwards_total")
}

func Allowed(r *telemetry.Registry) {
	r.Counter("rng_draws_total") //aoslint:allow probename — prototype probe
}

type other struct{}

func (other) Counter(name string) {}

func NotARegistry(o other) {
	o.Counter("whatever") // different receiver type: ignored
}
`
	got := findingsOf(runLint(t, files), "probename")
	if len(got) != 5 {
		t.Fatalf("want 5 probename findings, got %v", got)
	}
	wantFragments := []string{
		"not lower_snake_case",      // cpuInstsTotal
		"not lower_snake_case",      // cycles (single segment)
		"unknown subsystem \"tlb\"", // tlb_misses_total
		"must be a constant string", // dynamic name
		"already registered",        // duplicate
	}
	for i, frag := range wantFragments {
		if !strings.Contains(got[i].Message, frag) {
			t.Errorf("finding %d = %v, want fragment %q", i, got[i], frag)
		}
	}
}

// TestSpanName checks the probename analyzer's span-name arm:
// tracespan.Trace.StartSpan takes constant lower_snake names whose first
// token is a known layer (service, runner, experiments); dynamic names,
// camelCase and unknown layers are flagged, and unrelated StartSpan
// methods are ignored.
func TestSpanName(t *testing.T) {
	files := miniEnums()
	files["internal/tracespan/tracespan.go"] = `package tracespan

type Trace struct{}
type Span struct{}

func (t *Trace) StartSpan(name string) *Span { return new(Span) }
`
	files["internal/handlers/handlers.go"] = `package handlers

import "aos/internal/tracespan"

const execName = "runner_execute"

func Good(tr *tracespan.Trace) {
	tr.StartSpan("service_cache_lookup")
	tr.StartSpan("experiments_compose")
	tr.StartSpan(execName) // named constants are fine
}

func BadStyle(tr *tracespan.Trace) {
	tr.StartSpan("serviceIngress")
}

func BadLayer(tr *tracespan.Trace) {
	tr.StartSpan("cache_lookup")
}

func BadDynamic(tr *tracespan.Trace, name string) {
	tr.StartSpan(name)
}

func Allowed(tr *tracespan.Trace) {
	tr.StartSpan("scratch_probe") //aoslint:allow probename — prototype span
}

type other struct{}

func (other) StartSpan(name string) {}

func NotATrace(o other) {
	o.StartSpan("whatever") // different receiver type: ignored
}
`
	got := findingsOf(runLint(t, files), "probename")
	if len(got) != 3 {
		t.Fatalf("want 3 span findings, got %v", got)
	}
	wantFragments := []string{
		"not lower_snake_case",      // serviceIngress
		"unknown layer \"cache\"",   // cache_lookup
		"must be a constant string", // dynamic name
	}
	for i, frag := range wantFragments {
		if !strings.Contains(got[i].Message, frag) {
			t.Errorf("finding %d = %v, want fragment %q", i, got[i], frag)
		}
	}
}

// TestRepoIsClean runs the full suite over the real repository: the lint
// gate that CI enforces, enforced from go test as well so a seeded
// violation fails both.
func TestRepoIsClean(t *testing.T) {
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root, err := lint.FindModuleRoot(cwd)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := lint.Load(root, "./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("loaded only %d packages from the real module", len(pkgs))
	}
	diags := lint.Run(pkgs, lint.All())
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
