package lint_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"aos/internal/lint"
)

// writeModule materializes a throwaway module named "aos" (the analyzers
// key enum and allowlist paths off the real module name).
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	files["go.mod"] = "module aos\n\ngo 1.22\n"
	for name, src := range files {
		path := filepath.Join(root, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

// miniEnums are minimal isa/instrument/stats packages matching the real
// import paths.
func miniEnums() map[string]string {
	return map[string]string{
		"internal/isa/isa.go": `package isa

type Op uint8

const (
	OpNop Op = iota
	OpLoad
	OpStore

	opCount
)
`,
		"internal/instrument/instrument.go": `package instrument

type Scheme int

const (
	Baseline Scheme = iota
	Watchdog
	AOS

	numSchemes
)
`,
		"internal/stats/stats.go": `package stats

type Table struct{ header []string; rows [][]interface{} }

func NewTable(header ...string) *Table { return &Table{header: header} }

func (t *Table) AddRow(cells ...interface{}) { t.rows = append(t.rows, cells) }
`,
	}
}

func runLint(t *testing.T, files map[string]string, patterns ...string) []lint.Diagnostic {
	t.Helper()
	root := writeModule(t, files)
	pkgs, err := lint.Load(root, patterns...)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) == 0 {
		t.Fatal("no packages loaded")
	}
	return lint.Run(pkgs, lint.All())
}

// wantFinding asserts exactly one diagnostic from the given analyzer whose
// message contains each fragment.
func findingsOf(diags []lint.Diagnostic, analyzer string) []lint.Diagnostic {
	var out []lint.Diagnostic
	for _, d := range diags {
		if d.Analyzer == analyzer {
			out = append(out, d)
		}
	}
	return out
}

func TestExhaustiveSwitch(t *testing.T) {
	files := miniEnums()
	files["internal/use/use.go"] = `package use

import (
	"aos/internal/instrument"
	"aos/internal/isa"
)

func Bad(s instrument.Scheme) int {
	switch s {
	case instrument.Baseline:
		return 0
	case instrument.Watchdog:
		return 1
	}
	return 2
}

func GoodDefault(s instrument.Scheme) int {
	switch s {
	case instrument.Baseline:
		return 0
	default:
		return 1
	}
}

func GoodComplete(o isa.Op) int {
	switch o {
	case isa.OpNop, isa.OpLoad:
		return 0
	case isa.OpStore:
		return 1
	}
	return 2
}

func BadOp(o isa.Op) int {
	switch o {
	case isa.OpLoad:
		return 0
	}
	return 1
}
`
	got := findingsOf(runLint(t, files), "exhaustive")
	if len(got) != 2 {
		t.Fatalf("want 2 exhaustive findings, got %v", got)
	}
	if !strings.Contains(got[0].Message, "missing AOS") {
		t.Errorf("scheme finding = %v", got[0])
	}
	if !strings.Contains(got[1].Message, "missing OpNop, OpStore") {
		t.Errorf("op finding = %v", got[1])
	}
}

func TestMapIter(t *testing.T) {
	files := miniEnums()
	files["internal/agg/agg.go"] = `package agg

import "fmt"

func Bad(m map[string]int) {
	for k := range m {
		fmt.Println(k)
	}
}

func GoodFold(m map[string]float64, out map[string]float64) {
	for k, v := range m {
		out[k] = v * 2
	}
}

func GoodCount(m map[string]int, hist map[int]int) {
	for _, v := range m {
		hist[v]++
	}
}

func Allowed(m map[string]int) int {
	n := 0
	for _, v := range m { //aoslint:allow mapiter — commutative sum
		n += v
	}
	return n
}
`
	got := findingsOf(runLint(t, files), "mapiter")
	if len(got) != 1 || got[0].Pos.Line != 6 {
		t.Fatalf("want exactly the Bad finding (folds and annotated sums pass), got %v", got)
	}
}

func TestMapIterExact(t *testing.T) {
	// The sum in Allowed writes to a plain variable — order-free in fact
	// but not provably by the fold rule, hence the annotation; Bad has no
	// annotation. Verify the finding lands on Bad only when Allowed is
	// annotated.
	files := miniEnums()
	files["internal/agg/agg.go"] = `package agg

import "fmt"

func Bad(m map[string]int) {
	for k := range m {
		fmt.Println(k)
	}
}

func Allowed(m map[string]int) int {
	n := 0
	//aoslint:allow mapiter — commutative sum
	for _, v := range m {
		n += v
	}
	return n
}
`
	got := findingsOf(runLint(t, files), "mapiter")
	if len(got) != 1 || !strings.Contains(got[0].Pos.Filename, "agg.go") || got[0].Pos.Line != 6 {
		t.Fatalf("want exactly the Bad finding at line 6, got %v", got)
	}
}

func TestDetRand(t *testing.T) {
	files := miniEnums()
	files["internal/out/out.go"] = `package out

import (
	"math/rand"
	"time"
)

func Bad() int64 {
	start := time.Now()
	_ = rand.Int()
	return time.Since(start).Nanoseconds()
}

func Allowed(deadline time.Time) time.Duration {
	start := time.Now() //aoslint:allow detrand — metadata only
	_ = start

	return time.Until(deadline)
}
`
	// The runner/workload packages are allowlisted wholesale.
	files["internal/runner/runner.go"] = `package runner

import "time"

func Wall() time.Time { return time.Now() }
`
	files["internal/workload/workload.go"] = `package workload

import "math/rand"

func Seed(s int64) *rand.Rand { return rand.New(rand.NewSource(s)) }
`
	got := findingsOf(runLint(t, files), "detrand")
	// Expect: the math/rand import, time.Now in Bad, time.Since in Bad,
	// time.Until in Allowed (only Now is annotated).
	if len(got) != 4 {
		t.Fatalf("want 4 detrand findings, got %v", got)
	}
	for _, d := range got {
		if strings.Contains(d.Pos.Filename, "runner") || strings.Contains(d.Pos.Filename, "workload") {
			t.Fatalf("allowlisted package flagged: %v", d)
		}
	}
}

func TestStatsTable(t *testing.T) {
	files := miniEnums()
	files["internal/render/render.go"] = `package render

import "aos/internal/stats"

func Bad() *stats.Table {
	t := stats.NewTable("a", "b", "c")
	t.AddRow(1, 2, 3)
	t.AddRow(1, 2) // too short
	t.AddRow(1, 2, 3, 4) // too long
	return t
}

func GoodSpread(cells []interface{}) *stats.Table {
	t := stats.NewTable("a", "b")
	t.AddRow(cells...)
	return t
}
`
	got := findingsOf(runLint(t, files), "statstable")
	if len(got) != 2 {
		t.Fatalf("want 2 statstable findings, got %v", got)
	}
	for _, d := range got {
		if !strings.Contains(d.Message, "3 header columns") {
			t.Errorf("unexpected message: %v", d)
		}
	}
}

func TestPatternSelection(t *testing.T) {
	files := miniEnums()
	files["internal/out/out.go"] = `package out

import "time"

func Bad() time.Time { return time.Now() }
`
	root := writeModule(t, files)
	pkgs, err := lint.Load(root, "./internal/isa")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 || pkgs[0].Path != "aos/internal/isa" {
		t.Fatalf("pattern selected %v", pkgs)
	}
	pkgs, err = lint.Load(root, "./internal/...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 4 {
		t.Fatalf("subtree pattern selected %d packages, want 4", len(pkgs))
	}
}

// TestRepoIsClean runs the full suite over the real repository: the lint
// gate that CI enforces, enforced from go test as well so a seeded
// violation fails both.
func TestRepoIsClean(t *testing.T) {
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root, err := lint.FindModuleRoot(cwd)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := lint.Load(root, "./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("loaded only %d packages from the real module", len(pkgs))
	}
	diags := lint.Run(pkgs, lint.All())
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
