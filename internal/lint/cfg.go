package lint

import "go/ast"

// This file is the dataflow substrate the hotpathalloc and lockbalance
// analyzers share: a compact intra-procedural control-flow graph over
// ast.FuncDecl (and ast.FuncLit) bodies. It is deliberately approximate in
// the directions that keep analyses sound-ish without a full SSA package:
//
//   - loops contribute two edges (skip and one traversal), so path
//     enumeration terminates without widening;
//   - break/continue/goto/fallthrough end their block conservatively by
//     edging to the function exit (an analysis never reasons past them on
//     the wrong path);
//   - defer statements are collected per function, not modeled as edges —
//     analyses apply them at every exit.
type cfgBlock struct {
	// stmts are the straight-line statements of the block, in order.
	// Control statements (if/for/switch/...) never appear here; their
	// conditions and bodies are split into successor blocks.
	stmts []ast.Stmt
	succs []*cfgBlock
	// ret is the ReturnStmt terminating the block, if any.
	ret *ast.ReturnStmt
	// terminal marks a block with no fallthrough successor (return, panic,
	// or a conservatively-ended branch statement).
	terminal bool
}

type funcCFG struct {
	entry  *cfgBlock
	blocks []*cfgBlock
	// defers are every DeferStmt in the body, in source order.
	defers []*ast.DeferStmt
}

type cfgBuilder struct {
	g   *funcCFG
	cur *cfgBlock
}

// buildCFG constructs the graph for one function body.
func buildCFG(body *ast.BlockStmt) *funcCFG {
	b := &cfgBuilder{g: &funcCFG{}}
	b.cur = b.newBlock()
	b.g.entry = b.cur
	b.stmtList(body.List)
	return b.g
}

func (b *cfgBuilder) newBlock() *cfgBlock {
	blk := &cfgBlock{}
	b.g.blocks = append(b.g.blocks, blk)
	return blk
}

// startBlock begins a fresh block that the current one falls through to.
func (b *cfgBuilder) startBlock() *cfgBlock {
	blk := b.newBlock()
	if !b.cur.terminal {
		b.cur.succs = append(b.cur.succs, blk)
	}
	b.cur = blk
	return blk
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)
	case *ast.LabeledStmt:
		b.stmt(s.Stmt)
	case *ast.IfStmt:
		if s.Init != nil {
			b.cur.stmts = append(b.cur.stmts, s.Init)
		}
		// The condition is evaluated in the current block; record it so
		// analyses see calls inside it.
		b.cur.stmts = append(b.cur.stmts, &ast.ExprStmt{X: s.Cond})
		cond := b.cur
		thenB := b.newBlock()
		cond.succs = append(cond.succs, thenB)
		b.cur = thenB
		b.stmtList(s.Body.List)
		thenEnd := b.cur
		var elseEnd *cfgBlock
		if s.Else != nil {
			elseB := b.newBlock()
			cond.succs = append(cond.succs, elseB)
			b.cur = elseB
			b.stmt(s.Else)
			elseEnd = b.cur
		}
		join := b.newBlock()
		if !thenEnd.terminal {
			thenEnd.succs = append(thenEnd.succs, join)
		}
		if s.Else == nil {
			cond.succs = append(cond.succs, join)
		} else if !elseEnd.terminal {
			elseEnd.succs = append(elseEnd.succs, join)
		}
		b.cur = join
	case *ast.ForStmt:
		if s.Init != nil {
			b.cur.stmts = append(b.cur.stmts, s.Init)
		}
		if s.Cond != nil {
			b.cur.stmts = append(b.cur.stmts, &ast.ExprStmt{X: s.Cond})
		}
		head := b.cur
		bodyB := b.newBlock()
		head.succs = append(head.succs, bodyB)
		b.cur = bodyB
		b.stmtList(s.Body.List)
		if s.Post != nil {
			b.cur.stmts = append(b.cur.stmts, s.Post)
		}
		after := b.newBlock()
		if !b.cur.terminal {
			b.cur.succs = append(b.cur.succs, after)
		}
		if s.Cond != nil || s.Init != nil || s.Post != nil {
			// Conditional loop: may execute zero times.
			head.succs = append(head.succs, after)
		}
		b.cur = after
	case *ast.RangeStmt:
		b.cur.stmts = append(b.cur.stmts, &ast.ExprStmt{X: s.X})
		head := b.cur
		bodyB := b.newBlock()
		head.succs = append(head.succs, bodyB)
		b.cur = bodyB
		b.stmtList(s.Body.List)
		after := b.newBlock()
		if !b.cur.terminal {
			b.cur.succs = append(b.cur.succs, after)
		}
		head.succs = append(head.succs, after) // zero iterations
		b.cur = after
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		b.branching(s)
	case *ast.ReturnStmt:
		b.cur.stmts = append(b.cur.stmts, s)
		b.cur.ret = s
		b.cur.terminal = true
		b.startBlockDetached()
	case *ast.BranchStmt:
		// break/continue/goto/fallthrough: end the block conservatively.
		b.cur.terminal = true
		b.startBlockDetached()
	case *ast.DeferStmt:
		b.g.defers = append(b.g.defers, s)
		b.cur.stmts = append(b.cur.stmts, s)
	case *ast.GoStmt:
		b.cur.stmts = append(b.cur.stmts, s)
	default:
		b.cur.stmts = append(b.cur.stmts, s)
	}
}

// branching handles switch/type-switch/select uniformly: every case body
// is a branch from the current block, all joining afterwards; a missing
// default adds a skip edge.
func (b *cfgBuilder) branching(s ast.Stmt) {
	var tag []ast.Stmt
	var bodies [][]ast.Stmt
	hasDefault := false
	collect := func(list []ast.Stmt) {
		for _, cs := range list {
			switch cs := cs.(type) {
			case *ast.CaseClause:
				if cs.List == nil {
					hasDefault = true
				}
				bodies = append(bodies, cs.Body)
			case *ast.CommClause:
				if cs.Comm == nil {
					hasDefault = true
				} else {
					bodies = append(bodies, append([]ast.Stmt{cs.Comm}, cs.Body...))
					continue
				}
				bodies = append(bodies, cs.Body)
			}
		}
	}
	switch s := s.(type) {
	case *ast.SwitchStmt:
		if s.Init != nil {
			tag = append(tag, s.Init)
		}
		if s.Tag != nil {
			tag = append(tag, &ast.ExprStmt{X: s.Tag})
		}
		collect(s.Body.List)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			tag = append(tag, s.Init)
		}
		tag = append(tag, s.Assign)
		collect(s.Body.List)
	case *ast.SelectStmt:
		collect(s.Body.List)
	}
	b.cur.stmts = append(b.cur.stmts, tag...)
	head := b.cur
	join := b.newBlock()
	for _, body := range bodies {
		blk := b.newBlock()
		head.succs = append(head.succs, blk)
		b.cur = blk
		b.stmtList(body)
		if !b.cur.terminal {
			b.cur.succs = append(b.cur.succs, join)
		}
	}
	if !hasDefault || len(bodies) == 0 {
		head.succs = append(head.succs, join)
	}
	b.cur = join
}

// startBlockDetached begins a fresh, unreachable block for statements
// following a terminator (dead code still gets parsed, not analyzed).
func (b *cfgBuilder) startBlockDetached() {
	b.cur = b.newBlock()
}

// maxPaths caps path enumeration per function; beyond it the function is
// skipped rather than analyzed partially (soundness over coverage).
const maxPaths = 4096

// eachPath enumerates acyclic-ish paths (every block visited at most once
// per path — loop bodies contribute one traversal via their skip/once
// edges) from entry to every terminal or dead-end block, invoking visit
// with the block sequence. Returns false if the cap was hit.
func (g *funcCFG) eachPath(visit func(path []*cfgBlock)) bool {
	count := 0
	var path []*cfgBlock
	onPath := map[*cfgBlock]bool{}
	var walk func(blk *cfgBlock) bool
	walk = func(blk *cfgBlock) bool {
		if onPath[blk] {
			return true // cycle: this path already covered one traversal
		}
		path = append(path, blk)
		onPath[blk] = true
		defer func() {
			path = path[:len(path)-1]
			onPath[blk] = false
		}()
		advanced := false
		for _, s := range blk.succs {
			if onPath[s] {
				continue
			}
			advanced = true
			if !walk(s) {
				return false
			}
		}
		if !advanced {
			count++
			if count > maxPaths {
				return false
			}
			visit(path)
		}
		return true
	}
	return walk(g.entry)
}
