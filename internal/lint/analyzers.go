package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// enumTypes are the named types whose switches must be exhaustive. Members
// are discovered from the defining package's scope (exported constants of
// the exact type), so adding a scheme or op class automatically tightens
// every dispatch site.
var enumTypes = map[string]bool{
	"aos/internal/isa.Op":            true,
	"aos/internal/instrument.Scheme": true,
	"aos/internal/security.Class":    true,
}

// Exhaustive checks that switches over the configured enum types either
// cover every member or declare a default clause.
var Exhaustive = &Analyzer{
	Name: "exhaustive",
	Doc:  "switches over instrument.Scheme and isa.Op must cover all members or have a default",
	Run: func(p *Pass) {
		info := p.Pkg.Info
		if info == nil {
			return
		}
		inspectAll(p, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			named, ok := info.TypeOf(sw.Tag).(*types.Named)
			if !ok || named.Obj().Pkg() == nil {
				return true
			}
			key := named.Obj().Pkg().Path() + "." + named.Obj().Name()
			if !enumTypes[key] {
				return true
			}
			members := enumMembers(named)
			covered := map[string]bool{}
			hasDefault := false
			for _, stmt := range sw.Body.List {
				cc, ok := stmt.(*ast.CaseClause)
				if !ok {
					continue
				}
				if cc.List == nil {
					hasDefault = true
					continue
				}
				for _, e := range cc.List {
					v := info.Types[e].Value
					if v == nil {
						continue
					}
					for _, m := range members {
						if constant.Compare(v, token.EQL, m.val) {
							covered[m.name] = true
						}
					}
				}
			}
			if hasDefault {
				return true
			}
			var missing []string
			for _, m := range members {
				if !covered[m.name] {
					missing = append(missing, m.name)
				}
			}
			if len(missing) > 0 {
				p.Reportf(sw.Pos(), "switch over %s not exhaustive: missing %s (add the cases or a default)",
					key, strings.Join(missing, ", "))
			}
			return true
		})
	},
}

type enumMember struct {
	name string
	val  constant.Value
}

// enumMembers lists the exported constants of exactly the named type,
// declared in its defining package, sorted by name for stable reports.
func enumMembers(named *types.Named) []enumMember {
	scope := named.Obj().Pkg().Scope()
	var members []enumMember
	for _, name := range scope.Names() { // Names() is sorted
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !c.Exported() || !types.Identical(c.Type(), named) {
			continue
		}
		members = append(members, enumMember{name: name, val: c.Val()})
	}
	return members
}

// MapIter flags range statements over maps unless the loop body is an
// order-free fold (every statement only assigns through map-index
// expressions, so iteration order cannot be observed) or the site carries
// an //aoslint:allow mapiter annotation. Deterministic alternatives:
// iterate stats.SortedKeys(m), or collect-and-sort explicitly.
var MapIter = &Analyzer{
	Name: "mapiter",
	Doc:  "no order-dependent iteration over maps (sort keys first)",
	Run: func(p *Pass) {
		info := p.Pkg.Info
		if info == nil {
			return
		}
		inspectAll(p, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := info.TypeOf(rng.X)
			if t == nil {
				return true
			}
			if _, ok := t.Underlying().(*types.Map); !ok {
				return true
			}
			if orderFreeFold(info, rng.Body) {
				return true
			}
			p.Reportf(rng.For,
				"iteration order over this map is observable; sort the keys (stats.SortedKeys) or annotate //aoslint:allow mapiter")
			return true
		})
	},
}

// orderFreeFold reports whether every statement in the body only writes
// through map-index expressions (or blank), making the loop's effect
// independent of iteration order.
func orderFreeFold(info *types.Info, body *ast.BlockStmt) bool {
	for _, stmt := range body.List {
		switch s := stmt.(type) {
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				if !mapIndexOrBlank(info, lhs) {
					return false
				}
			}
		case *ast.IncDecStmt:
			if !mapIndexOrBlank(info, s.X) {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// mapIndexOrBlank reports whether e is m[k] for a map m, or the blank
// identifier.
func mapIndexOrBlank(info *types.Info, e ast.Expr) bool {
	if id, ok := e.(*ast.Ident); ok {
		return id.Name == "_"
	}
	ix, ok := e.(*ast.IndexExpr)
	if !ok {
		return false
	}
	t := info.TypeOf(ix.X)
	if t == nil {
		return false
	}
	_, isMap := t.Underlying().(*types.Map)
	return isMap
}

// detrandAllowedPkgs may use wall-clock time and math/rand: the runner
// reports wall durations, the workload generator is the one seeded
// randomness source, and the serving layer measures job wall time for its
// metrics histogram (wall time is operational metadata, never part of a
// simulation result).
var detrandAllowedPkgs = map[string]bool{
	"aos/internal/runner":   true,
	"aos/internal/workload": true,
	"aos/internal/service":  true,
	// Spans are timestamped operational metadata (the trace layer never
	// feeds a simulation); the load generator measures request latency
	// and draws its request schedule from a seeded source.
	"aos/internal/tracespan": true,
	"aos/internal/loadgen":   true,
}

// DetRand flags nondeterminism sources outside the allowlisted packages:
// math/rand imports and time.Now/Since/Until calls. Simulated results must
// be pure functions of (workload, scheme, seed).
var DetRand = &Analyzer{
	Name: "detrand",
	Doc:  "no time.Now/math/rand outside runner/workload seeding sites",
	Run: func(p *Pass) {
		if detrandAllowedPkgs[p.Pkg.Path] {
			return
		}
		info := p.Pkg.Info
		for _, f := range p.Pkg.Files {
			for _, imp := range f.Imports {
				path := strings.Trim(imp.Path.Value, `"`)
				if path == "math/rand" || path == "math/rand/v2" {
					p.Reportf(imp.Pos(), "import of %s outside the allowlisted seeding sites (runner, workload)", path)
				}
			}
		}
		if info == nil {
			return
		}
		inspectAll(p, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			x, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := info.Uses[x].(*types.PkgName)
			if !ok || pn.Imported().Path() != "time" {
				return true
			}
			switch sel.Sel.Name {
			case "Now", "Since", "Until":
				p.Reportf(call.Pos(), "time.%s leaks wall-clock nondeterminism; results must be pure in (workload, scheme, seed)", sel.Sel.Name)
			}
			return true
		})
	},
}

// StatsTable checks that every stats.Table.AddRow call passes exactly as
// many cells as the table's NewTable header declared (a longer row would
// misalign — historically even panic — the rendered table). Calls spreading
// a slice (AddRow(cells...)) are skipped: their arity is dynamic.
var StatsTable = &Analyzer{
	Name: "statstable",
	Doc:  "stats.Table rows must match the header arity declared at NewTable",
	Run: func(p *Pass) {
		info := p.Pkg.Info
		if info == nil {
			return
		}
		// First pass: tables created in this package, keyed by the variable
		// object they are assigned to. Header arity -1 means unknown.
		headers := map[types.Object]int{}
		inspectAll(p, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
				return true
			}
			call, ok := as.Rhs[0].(*ast.CallExpr)
			if !ok || !isStatsNewTable(info, call.Fun) {
				return true
			}
			id, ok := as.Lhs[0].(*ast.Ident)
			if !ok {
				return true
			}
			obj := info.Defs[id]
			if obj == nil {
				obj = info.Uses[id]
			}
			if obj == nil {
				return true
			}
			if call.Ellipsis.IsValid() {
				headers[obj] = -1
			} else {
				headers[obj] = len(call.Args)
			}
			return true
		})
		if len(headers) == 0 {
			return
		}
		inspectAll(p, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "AddRow" {
				return true
			}
			x, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			obj := info.Uses[x]
			want, tracked := headers[obj]
			if !tracked || want < 0 || call.Ellipsis.IsValid() {
				return true
			}
			if len(call.Args) != want {
				p.Reportf(call.Pos(), "AddRow passes %d cells to a table with %d header columns", len(call.Args), want)
			}
			return true
		})
	},
}

// probeStyleRE is the probe-name style the telemetry registry enforces at
// runtime (it panics on violations); the analyzer enforces the same shape
// statically so a misnamed probe fails the lint gate, not a live run.
var probeStyleRE = regexp.MustCompile(`^[a-z][a-z0-9]*(_[a-z0-9]+)+$`)

// probeSubsystems are the subsystem prefixes a probe name may start with.
// Extending the simulator with a new instrumented subsystem means adding
// its prefix here — deliberately, in review — rather than minting ad-hoc
// namespaces.
var probeSubsystems = map[string]bool{
	"cpu":  true,
	"mcu":  true,
	"hbt":  true,
	"heap": true,
}

// spanSubsystems are the layer prefixes a trace span name may start
// with, mirroring probeSubsystems for the serving path: spans narrate
// which layer owns each segment of a job's life, so the first token is
// the layer. Extending the span vocabulary to a new layer means adding
// it here, in review.
var spanSubsystems = map[string]bool{
	"service":     true,
	"runner":      true,
	"experiments": true,
}

// ProbeName checks telemetry.Registry registrations (Counter, Gauge,
// Histogram): the probe name must be a constant string in
// lower_snake_case with a known subsystem prefix, and no name may be
// registered twice within one function body. Constant names keep the
// probe namespace statically auditable (grep finds every series a
// dashboard can reference); the duplicate check catches the
// copy-paste-and-forget-to-rename bug before the registry's runtime
// panic does. tracespan.Trace.StartSpan names are held to the same
// shape with the layer allowlist (service, runner, experiments) — a
// trace is only navigable when its span vocabulary is flat and grepable.
var ProbeName = &Analyzer{
	Name: "probename",
	Doc:  "telemetry probe and trace span names are constant lower_snake strings with a known subsystem prefix",
	Run: func(p *Pass) {
		info := p.Pkg.Info
		if info == nil {
			return
		}
		for _, f := range p.Pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				checkProbeRegistrations(p, fd.Body)
			}
		}
	},
}

// checkProbeRegistrations audits every Registry registration inside one
// function body. Duplicate detection is scoped per function: separate
// functions build separate registries, so the same name appearing in two
// attach routines is fine, while the same name twice in one routine is
// the bug the runtime panic exists for.
func checkProbeRegistrations(p *Pass, body *ast.BlockStmt) {
	info := p.Pkg.Info
	seen := map[string]token.Pos{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		if isSpanStart(info, sel) {
			checkSpanName(p, call)
			return true
		}
		if !isRegistryRegistration(info, sel) {
			return true
		}
		v := info.Types[call.Args[0]].Value
		if v == nil || v.Kind() != constant.String {
			p.Reportf(call.Args[0].Pos(),
				"probe name passed to Registry.%s must be a constant string (dynamic names defeat the static probe audit)",
				sel.Sel.Name)
			return true
		}
		name := constant.StringVal(v)
		if !probeStyleRE.MatchString(name) {
			p.Reportf(call.Args[0].Pos(),
				"probe name %q is not lower_snake_case with a subsystem prefix (want e.g. cpu_insts_total)", name)
			return true
		}
		if prefix := name[:strings.IndexByte(name, '_')]; !probeSubsystems[prefix] {
			p.Reportf(call.Args[0].Pos(),
				"probe name %q starts with unknown subsystem %q (known: cpu, mcu, hbt, heap; extend the lint allowlist to add one)",
				name, prefix)
			return true
		}
		if prev, dup := seen[name]; dup {
			p.Reportf(call.Pos(), "probe %q already registered in this function (line %d); the registry will panic at runtime",
				name, p.Pkg.Fset.Position(prev).Line)
			return true
		}
		seen[name] = call.Pos()
		return true
	})
}

// checkSpanName audits one Trace.StartSpan call: constant string,
// lower_snake shape, first token a known layer.
func checkSpanName(p *Pass, call *ast.CallExpr) {
	info := p.Pkg.Info
	v := info.Types[call.Args[0]].Value
	if v == nil || v.Kind() != constant.String {
		p.Reportf(call.Args[0].Pos(),
			"span name passed to Trace.StartSpan must be a constant string (dynamic names defeat the static span audit)")
		return
	}
	name := constant.StringVal(v)
	if !probeStyleRE.MatchString(name) {
		p.Reportf(call.Args[0].Pos(),
			"span name %q is not lower_snake_case with a layer prefix (want e.g. service_cache_lookup)", name)
		return
	}
	if prefix := name[:strings.IndexByte(name, '_')]; !spanSubsystems[prefix] {
		p.Reportf(call.Args[0].Pos(),
			"span name %q starts with unknown layer %q (known: service, runner, experiments; extend the lint allowlist to add one)",
			name, prefix)
	}
}

// isSpanStart matches StartSpan method calls whose receiver is
// aos/internal/tracespan.Trace (or a pointer to it).
func isSpanStart(info *types.Info, sel *ast.SelectorExpr) bool {
	if sel.Sel.Name != "StartSpan" {
		return false
	}
	t := info.TypeOf(sel.X)
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Name() == "Trace" && named.Obj().Pkg().Path() == "aos/internal/tracespan"
}

// isRegistryRegistration matches Counter/Gauge/Histogram method calls
// whose receiver is aos/internal/telemetry.Registry (or a pointer to it).
func isRegistryRegistration(info *types.Info, sel *ast.SelectorExpr) bool {
	switch sel.Sel.Name {
	case "Counter", "Gauge", "Histogram":
	default:
		return false
	}
	t := info.TypeOf(sel.X)
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Name() == "Registry" && named.Obj().Pkg().Path() == "aos/internal/telemetry"
}

// isStatsNewTable matches stats.NewTable (qualified) and NewTable inside
// the stats package itself.
func isStatsNewTable(info *types.Info, fun ast.Expr) bool {
	switch f := fun.(type) {
	case *ast.SelectorExpr:
		x, ok := f.X.(*ast.Ident)
		if !ok || f.Sel.Name != "NewTable" {
			return false
		}
		pn, ok := info.Uses[x].(*types.PkgName)
		return ok && pn.Imported().Path() == "aos/internal/stats"
	case *ast.Ident:
		obj := info.Uses[f]
		return obj != nil && obj.Name() == "NewTable" &&
			obj.Pkg() != nil && obj.Pkg().Path() == "aos/internal/stats"
	}
	return false
}
