// Package isa defines the dynamic-instruction representation shared by the
// functional machine (internal/core) and the timing simulator (internal/cpu).
//
// The reproduction is trace-driven: the functional phase executes a workload
// against the simulated heap, pointer-authentication unit and hashed bounds
// table, and emits a stream of dynamic instructions annotated with
// everything the timing model needs (effective addresses, signedness, the
// HBT way holding the pointer's bounds, branch outcomes, dependency
// registers). The timing phase replays that stream through an out-of-order
// core model.
package isa

import "fmt"

// Op is a dynamic instruction class. The set mirrors the AArch64 subset that
// matters to the AOS evaluation plus the new instructions AOS introduces
// (§IV-A) and the extra operations of the Watchdog and PA baselines.
type Op uint8

const (
	// OpNop is an instruction with no effect (used for padding).
	OpNop Op = iota
	// OpALU is a 1-cycle integer operation.
	OpALU
	// OpMul is a 3-cycle integer multiply (also covers long-latency int ops).
	OpMul
	// OpFP is a 4-cycle floating-point operation.
	OpFP
	// OpLoad is a memory load.
	OpLoad
	// OpStore is a memory store.
	OpStore
	// OpBranch is a conditional branch with a recorded outcome.
	OpBranch
	// OpCall is a function call (unconditional control transfer).
	OpCall
	// OpRet is a function return.
	OpRet

	// OpPacma is the AOS pacma/pacmb instruction: computes a PAC and a 2-bit
	// AHC and inserts both into a data pointer (4-cycle crypto latency).
	OpPacma
	// OpXpacm strips PAC and AHC from a pointer (1 cycle).
	OpXpacm
	// OpAutm authenticates that a pointer carries a nonzero AHC (1 cycle).
	OpAutm
	// OpPacia/OpAutia are Arm PA sign/authenticate used by the PA baseline
	// for return addresses and code/data pointer integrity (4 cycles).
	OpPacia
	// OpAutia authenticates a PA-signed pointer (4 cycles).
	OpAutia
	// OpBndstr stores compressed bounds metadata into the HBT (handled by
	// the MCU; the store itself issues after commit).
	OpBndstr
	// OpBndclr clears the bounds metadata associated with a pointer.
	OpBndclr

	// OpWDCheck is Watchdog's check micro-op inserted before every memory
	// access: it loads the pointer's lock location and compares identifiers.
	OpWDCheck
	// OpWDMeta is a Watchdog metadata-propagation instruction inserted on
	// pointer arithmetic (Fig 5a, cases 5 and 6).
	OpWDMeta
	// OpWDSetID / OpWDClrID are Watchdog's allocation-time identifier
	// assignment and deallocation-time invalidation operations.
	OpWDSetID
	// OpWDClrID invalidates a Watchdog identifier on free.
	OpWDClrID

	// OpIRG is MTE's insert-random-tag instruction: picks an allocation
	// tag and inserts it into the pointer's tag bits (1 cycle).
	OpIRG
	// OpSTG is MTE's store-allocation-tag instruction: writes one tag
	// granule's memory tag. It drains through the store path after commit
	// like a store, but targets the tag shadow, not program data.
	OpSTG

	opCount
)

// NumOps is the number of defined instruction classes; op bytes at or above
// it are outside the ISA (corrupt traces).
const NumOps = int(opCount)

var opNames = [opCount]string{
	"nop", "alu", "mul", "fp", "load", "store", "branch", "call", "ret",
	"pacma", "xpacm", "autm", "pacia", "autia", "bndstr", "bndclr",
	"wdcheck", "wdmeta", "wdsetid", "wdclrid",
	"irg", "stg",
}

// String returns the mnemonic for the op.
func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// IsMem reports whether the op accesses program memory through the LSU.
func (o Op) IsMem() bool { return o == OpLoad || o == OpStore || o == OpWDCheck }

// IsBoundsOp reports whether the op is an HBT-management instruction that is
// issued directly to the MCU.
func (o Op) IsBoundsOp() bool { return o == OpBndstr || o == OpBndclr }

// IsBranch reports whether the op is a control-flow instruction.
func (o Op) IsBranch() bool { return o == OpBranch || o == OpCall || o == OpRet }

// IsPA reports whether the op executes on the PA crypto unit.
func (o Op) IsPA() bool {
	return o == OpPacma || o == OpXpacm || o == OpAutm || o == OpPacia || o == OpAutia
}

// NumRegs is the number of logical registers used for dependency modeling.
const NumRegs = 32

// RegNone marks an unused register slot.
const RegNone uint8 = 0xFF

// Inst is one dynamic instruction. It is a plain value type; slices of Inst
// stream from the functional machine to the timing core.
type Inst struct {
	// Op is the instruction class.
	Op Op
	// PC is the synthetic program counter (drives I-cache behaviour).
	PC uint64
	// Dest is the destination register, or RegNone.
	Dest uint8
	// Src1, Src2 are source registers, or RegNone.
	Src1, Src2 uint8

	// Addr is the effective virtual address for memory and bounds ops. For
	// loads/stores it may carry PAC/AHC bits in its upper bits.
	Addr uint64
	// Size is the access size in bytes (or the chunk size for OpPacma /
	// OpBndstr).
	Size uint32

	// Signed marks a memory access through an AOS-signed pointer; the MCU
	// must bounds-check it before it may retire.
	Signed bool
	// PAC is the pointer authentication code embedded in Addr (valid when
	// Signed, and for bounds ops).
	PAC uint16
	// AHC is the 2-bit address hashing code (valid when Signed).
	AHC uint8

	// HomeWay is the HBT way where this access's bounds currently reside
	// (resolved by the functional phase). -1 means no valid bounds exist,
	// i.e. the access faults after searching every way.
	HomeWay int8
	// Assoc is the HBT associativity at the time of the access (the number
	// of ways a failing search must visit).
	Assoc uint8
	// RowAddr is the virtual address of way 0 of this PAC's HBT row.
	RowAddr uint64

	// BranchID identifies the static branch site; Taken is its outcome.
	BranchID uint32
	// Taken is the branch outcome (valid when Op is a branch).
	Taken bool

	// Resize marks a bndstr that triggered an HBT resize (insertion
	// failure); the timing model charges the migration.
	Resize bool
}

// String renders a compact human-readable form, mainly for tests and debug.
func (in Inst) String() string {
	switch {
	case in.Op.IsMem() || in.Op.IsBoundsOp():
		s := fmt.Sprintf("%s 0x%x", in.Op, in.Addr)
		if in.Signed {
			s += fmt.Sprintf(" [signed pac=%04x ahc=%d way=%d]", in.PAC, in.AHC, in.HomeWay)
		}
		return s
	case in.Op == OpBranch:
		return fmt.Sprintf("%s b%d taken=%v", in.Op, in.BranchID, in.Taken)
	default:
		return in.Op.String()
	}
}

// Stream is a pull-based source of dynamic instructions. Next returns false
// when the stream is exhausted.
type Stream interface {
	Next(*Inst) bool
}

// Sink consumes dynamic instructions as the functional machine emits them.
// The timing core is a Sink, as are statistics collectors; this keeps the
// two simulation phases streaming without materializing traces.
type Sink interface {
	Emit(in *Inst)
}

// BatchSink is an optional Sink extension: a consumer that can accept a
// whole batch of instructions in one call, amortizing interface dispatch
// and improving locality on the simulation hot path. The batch slice is
// only valid for the duration of the call — the producer reuses its
// backing array — so implementations must not retain it (or pointers into
// it) after EmitBatch returns.
//
// EmitBatch must be observationally identical to calling Emit once per
// element in order; producers are free to pick either path.
type BatchSink interface {
	Sink
	EmitBatch(batch []Inst)
}

// EmitAll delivers a batch to any Sink: through EmitBatch when the sink
// supports batching, one Emit per instruction otherwise. It is the adapter
// that keeps one-at-a-time sinks usable behind the batched emission path.
func EmitAll(s Sink, batch []Inst) {
	if bs, ok := s.(BatchSink); ok {
		bs.EmitBatch(batch)
		return
	}
	for i := range batch {
		s.Emit(&batch[i])
	}
}

// MultiSink fans one stream out to several sinks.
type MultiSink []Sink

// Emit implements Sink.
func (ms MultiSink) Emit(in *Inst) {
	for _, s := range ms {
		s.Emit(in)
	}
}

// EmitBatch implements BatchSink: each sink receives the whole batch in
// turn (per-sink instruction order is identical to the scalar path; only
// the interleaving *across* sinks differs, which no sink may depend on).
func (ms MultiSink) EmitBatch(batch []Inst) {
	for _, s := range ms {
		EmitAll(s, batch)
	}
}

// CountSink adapts Counts to the Sink interface.
type CountSink struct{ Counts }

// Emit implements Sink.
func (c *CountSink) Emit(in *Inst) { c.Add(in) }

// EmitBatch implements BatchSink.
func (c *CountSink) EmitBatch(batch []Inst) {
	for i := range batch {
		c.Add(&batch[i])
	}
}

// NullSink discards everything (functional-only runs).
type NullSink struct{}

// Emit implements Sink.
func (NullSink) Emit(*Inst) {}

// EmitBatch implements BatchSink.
func (NullSink) EmitBatch([]Inst) {}

// SliceStream adapts a materialized trace to the Stream interface.
type SliceStream struct {
	insts []Inst
	pos   int
}

// NewSliceStream returns a Stream over insts.
func NewSliceStream(insts []Inst) *SliceStream { return &SliceStream{insts: insts} }

// Next implements Stream.
func (s *SliceStream) Next(out *Inst) bool {
	if s.pos >= len(s.insts) {
		return false
	}
	*out = s.insts[s.pos]
	s.pos++
	return true
}

// Reset rewinds the stream to the beginning.
func (s *SliceStream) Reset() { s.pos = 0 }

// Counts tallies dynamic instructions by class, with the signed/unsigned
// memory split the paper reports in Fig 16.
type Counts struct {
	Total         uint64
	ByOp          [opCount]uint64
	SignedLoads   uint64
	UnsignedLoads uint64
	SignedStores  uint64
	UnsignedStore uint64
}

// Add tallies one instruction.
func (c *Counts) Add(in *Inst) {
	c.Total++
	c.ByOp[in.Op]++
	switch in.Op {
	case OpLoad:
		if in.Signed {
			c.SignedLoads++
		} else {
			c.UnsignedLoads++
		}
	case OpStore:
		if in.Signed {
			c.SignedStores++
		} else {
			c.UnsignedStore++
		}
	default:
		// Non-memory classes carry no signedness split.
	}
}

// Of returns the count for one op class.
func (c *Counts) Of(op Op) uint64 { return c.ByOp[op] }

// PAOps returns the total count of PA-unit operations
// (pac*/aut*/xpac* in Fig 16).
func (c *Counts) PAOps() uint64 {
	return c.ByOp[OpPacma] + c.ByOp[OpXpacm] + c.ByOp[OpAutm] + c.ByOp[OpPacia] + c.ByOp[OpAutia]
}

// BoundsOps returns the bndstr+bndclr count (Fig 16).
func (c *Counts) BoundsOps() uint64 { return c.ByOp[OpBndstr] + c.ByOp[OpBndclr] }
