package isa

import "testing"

func TestOpPredicates(t *testing.T) {
	cases := []struct {
		op                          Op
		mem, bounds, branch, paUnit bool
	}{
		{OpNop, false, false, false, false},
		{OpALU, false, false, false, false},
		{OpLoad, true, false, false, false},
		{OpStore, true, false, false, false},
		{OpWDCheck, true, false, false, false},
		{OpBranch, false, false, true, false},
		{OpCall, false, false, true, false},
		{OpRet, false, false, true, false},
		{OpBndstr, false, true, false, false},
		{OpBndclr, false, true, false, false},
		{OpPacma, false, false, false, true},
		{OpXpacm, false, false, false, true},
		{OpAutm, false, false, false, true},
		{OpPacia, false, false, false, true},
		{OpAutia, false, false, false, true},
	}
	for _, c := range cases {
		if c.op.IsMem() != c.mem {
			t.Errorf("%v.IsMem() = %v", c.op, c.op.IsMem())
		}
		if c.op.IsBoundsOp() != c.bounds {
			t.Errorf("%v.IsBoundsOp() = %v", c.op, c.op.IsBoundsOp())
		}
		if c.op.IsBranch() != c.branch {
			t.Errorf("%v.IsBranch() = %v", c.op, c.op.IsBranch())
		}
		if c.op.IsPA() != c.paUnit {
			t.Errorf("%v.IsPA() = %v", c.op, c.op.IsPA())
		}
	}
}

func TestOpString(t *testing.T) {
	if OpLoad.String() != "load" || OpBndstr.String() != "bndstr" {
		t.Error("unexpected mnemonics")
	}
	if Op(200).String() == "" {
		t.Error("out-of-range op must still stringify")
	}
}

func TestSliceStream(t *testing.T) {
	insts := []Inst{{Op: OpALU}, {Op: OpLoad, Addr: 0x1000}, {Op: OpBranch, Taken: true}}
	s := NewSliceStream(insts)
	var got []Inst
	var in Inst
	for s.Next(&in) {
		got = append(got, in)
	}
	if len(got) != 3 || got[1].Addr != 0x1000 || !got[2].Taken {
		t.Errorf("stream replay mismatch: %+v", got)
	}
	if s.Next(&in) {
		t.Error("exhausted stream returned true")
	}
	s.Reset()
	if !s.Next(&in) || in.Op != OpALU {
		t.Error("Reset did not rewind")
	}
}

func TestCounts(t *testing.T) {
	var c Counts
	add := func(in Inst) { c.Add(&in) }
	add(Inst{Op: OpLoad, Signed: true})
	add(Inst{Op: OpLoad})
	add(Inst{Op: OpStore, Signed: true})
	add(Inst{Op: OpStore})
	add(Inst{Op: OpBndstr})
	add(Inst{Op: OpBndclr})
	add(Inst{Op: OpPacma})
	add(Inst{Op: OpXpacm})
	add(Inst{Op: OpAutm})
	add(Inst{Op: OpALU})

	if c.Total != 10 {
		t.Errorf("Total = %d", c.Total)
	}
	if c.SignedLoads != 1 || c.UnsignedLoads != 1 || c.SignedStores != 1 || c.UnsignedStore != 1 {
		t.Errorf("mem split wrong: %+v", c)
	}
	if c.BoundsOps() != 2 {
		t.Errorf("BoundsOps = %d", c.BoundsOps())
	}
	if c.PAOps() != 3 {
		t.Errorf("PAOps = %d", c.PAOps())
	}
	if c.Of(OpALU) != 1 {
		t.Errorf("Of(OpALU) = %d", c.Of(OpALU))
	}
}

func TestInstString(t *testing.T) {
	in := Inst{Op: OpLoad, Addr: 0x2000, Signed: true, PAC: 0xABCD, AHC: 1, HomeWay: 2}
	if s := in.String(); s == "" {
		t.Error("empty String for signed load")
	}
	br := Inst{Op: OpBranch, BranchID: 7, Taken: true}
	if s := br.String(); s == "" {
		t.Error("empty String for branch")
	}
	if (Inst{Op: OpALU}).String() != "alu" {
		t.Error("plain op String mismatch")
	}
}
