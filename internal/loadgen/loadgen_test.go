package loadgen

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"aos/internal/service"
)

// TestHistQuantiles checks the HDR-style histogram brackets known
// distributions within one bucket's relative error.
func TestHistQuantiles(t *testing.T) {
	var h hist
	for i := 1; i <= 100; i++ {
		h.observe(float64(i) * 1e-3) // 1ms..100ms uniform
	}
	if h.total != 100 {
		t.Fatalf("total = %d", h.total)
	}
	p50 := h.quantile(0.50)
	if p50 < 0.040 || p50 > 0.070 {
		t.Errorf("p50 = %g, want ~0.05 within bucket error", p50)
	}
	p99 := h.quantile(0.99)
	if p99 < 0.090 || p99 > 0.130 {
		t.Errorf("p99 = %g, want ~0.1 within bucket error", p99)
	}
	if h.max != 0.1 {
		t.Errorf("max = %g, want exact 0.1", h.max)
	}
	if m := h.mean(); m < 0.050 || m > 0.051 {
		t.Errorf("mean = %g, want 0.0505", m)
	}
	// Sub-minimum and overflow land in the end buckets, not out of range.
	h.observe(1e-9)
	h.observe(1e9)
	if h.quantile(1.0) != h.max {
		t.Errorf("q(1.0) = %g, want max %g", h.quantile(1.0), h.max)
	}
}

// TestRunAgainstStub drives the generator against a canned handler and
// checks the report's accounting: counts add up, statuses are
// classified, the verdict passes on a healthy server, and the JSON
// document carries the pinned schema.
func TestRunAgainstStub(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.Write([]byte(`{}`))
	}))
	defer ts.Close()

	rep, err := Run(context.Background(), Config{
		BaseURL:      ts.URL,
		Mix:          MixMixed,
		Rate:         200,
		Duration:     300 * time.Millisecond,
		MaxInFlight:  32,
		WarmRatio:    0.5,
		Seed:         42,
		Instructions: 20000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != "aosload/report/v1" {
		t.Errorf("schema = %q", rep.Schema)
	}
	if rep.Sent == 0 || rep.Completed != rep.Sent {
		t.Fatalf("sent %d / completed %d on a healthy stub", rep.Sent, rep.Completed)
	}
	if int64(rep.Completed) != hits.Load() {
		t.Errorf("completed %d but server saw %d", rep.Completed, hits.Load())
	}
	if rep.Status["2xx"] != rep.Completed {
		t.Errorf("status classification: %v, completed %d", rep.Status, rep.Completed)
	}
	if rep.Warm+rep.Cold != rep.Sent {
		t.Errorf("warm %d + cold %d != sent %d", rep.Warm, rep.Cold, rep.Sent)
	}
	if rep.Warm == 0 || rep.Cold == 0 {
		t.Errorf("warm ratio 0.5 produced warm=%d cold=%d", rep.Warm, rep.Cold)
	}
	if !rep.SLO.Pass || len(rep.SLO.Reasons) != 0 {
		t.Errorf("healthy run failed SLO: %v", rep.SLO.Reasons)
	}
	if rep.Availability != 1 {
		t.Errorf("availability = %g, want 1", rep.Availability)
	}
	if rep.LatencySeconds.P99 <= 0 || rep.LatencySeconds.Max <= 0 {
		t.Errorf("latency percentiles unpopulated: %+v", rep.LatencySeconds)
	}

	b, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"schema":"aosload/report/v1"`) {
		t.Errorf("marshalled report missing schema: %s", b)
	}
}

// TestRunMixURLs pins the request populations: each mix must only touch
// its own endpoints, warm requests repeat the base seed, cold seeds are
// unique.
func TestRunMixURLs(t *testing.T) {
	for _, mix := range Mixes() {
		var pmu sync.Mutex
		var paths []string
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			pmu.Lock()
			paths = append(paths, r.URL.Path+"?"+r.URL.RawQuery)
			pmu.Unlock()
			w.Write([]byte(`{}`))
		}))
		rep, err := Run(context.Background(), Config{
			BaseURL: ts.URL, Mix: mix, Rate: 300, Duration: 100 * time.Millisecond, Seed: 7,
		})
		ts.Close()
		if err != nil {
			t.Fatalf("%s: %v", mix, err)
		}
		if rep.Sent == 0 {
			t.Fatalf("%s: nothing sent", mix)
		}
		seen := map[string]bool{}
		for _, p := range paths {
			switch {
			case strings.HasPrefix(p, "/v1/results?"):
				seen["single"] = true
			case strings.HasPrefix(p, "/v1/experiments/fig14?"):
				seen["fig14"] = true
			case strings.HasPrefix(p, "/v1/experiments/fig18?"):
				seen["fig18"] = true
			case strings.HasPrefix(p, "/v1/experiments/attacks?"):
				seen["attacks"] = true
			default:
				t.Errorf("%s: unexpected request %s", mix, p)
			}
		}
		switch mix {
		case MixMixed:
			if !seen["single"] {
				t.Errorf("mixed: no single-cell requests in %d", len(paths))
			}
		default:
			if len(seen) != 1 || !seen[mix] {
				t.Errorf("%s: request kinds %v, want only %s", mix, seen, mix)
			}
		}
	}
}

// TestSLOFailures checks the graded verdicts: a 5xx-heavy server fails
// availability, a slow server fails the p99 gate, and 429 shed load
// fails neither.
func TestSLOFailures(t *testing.T) {
	t.Run("availability", func(t *testing.T) {
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			http.Error(w, "boom", http.StatusInternalServerError)
		}))
		defer ts.Close()
		rep, err := Run(context.Background(), Config{BaseURL: ts.URL, Rate: 200, Duration: 100 * time.Millisecond, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		if rep.SLO.Pass || rep.Availability != 0 {
			t.Fatalf("all-5xx run passed (availability %g)", rep.Availability)
		}
	})
	t.Run("p99", func(t *testing.T) {
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			time.Sleep(20 * time.Millisecond)
			w.Write([]byte(`{}`))
		}))
		defer ts.Close()
		rep, err := Run(context.Background(), Config{
			BaseURL: ts.URL, Rate: 100, Duration: 200 * time.Millisecond, Seed: 1,
			SLOP99: time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		if rep.SLO.Pass {
			t.Fatalf("20ms server passed a 1ms p99 gate: %+v", rep.LatencySeconds)
		}
	})
	t.Run("shed is not an error", func(t *testing.T) {
		var n atomic.Int64
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if n.Add(1)%2 == 0 {
				w.Header().Set("Retry-After", "1")
				http.Error(w, "full", http.StatusTooManyRequests)
				return
			}
			w.Write([]byte(`{}`))
		}))
		defer ts.Close()
		rep, err := Run(context.Background(), Config{BaseURL: ts.URL, Rate: 200, Duration: 100 * time.Millisecond, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Status["429"] == 0 {
			t.Fatal("stub shed nothing")
		}
		if !rep.SLO.Pass || rep.Availability != 1 {
			t.Fatalf("shed load burned the budget: pass=%v availability=%g reasons=%v",
				rep.SLO.Pass, rep.Availability, rep.SLO.Reasons)
		}
	})
}

// TestBurstSchedule checks the burst overlay raises the issued request
// count above the base schedule.
func TestBurstSchedule(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{}`))
	}))
	defer ts.Close()
	base, err := Run(context.Background(), Config{BaseURL: ts.URL, Rate: 100, Duration: 300 * time.Millisecond, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	burst, err := Run(context.Background(), Config{
		BaseURL: ts.URL, Rate: 100, Duration: 300 * time.Millisecond, Seed: 1,
		Burst: &BurstSpec{Every: 100 * time.Millisecond, Len: 50 * time.Millisecond, Factor: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if burst.Sent <= base.Sent {
		t.Errorf("burst sent %d <= base %d", burst.Sent, base.Sent)
	}
}

// TestRunAgainstService drives single-cell traffic against a real
// in-process aosd: every generated request must be well-formed (no 4xx —
// this pins URL escaping of the PA+AOS scheme) and the healthy daemon
// must not 5xx. 429 backpressure is allowed and not an error. The mixed
// population's figure compositions are covered by the CI soak, where the
// wall-clock budget is real; here single cells keep the suite fast.
func TestRunAgainstService(t *testing.T) {
	svc, err := service.New(service.Config{QueueDepth: 256, Tracing: true})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	defer func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		svc.Close(ctx)
	}()

	rep, err := Run(context.Background(), Config{
		BaseURL: ts.URL, Mix: MixSingle, Rate: 40, Duration: 1500 * time.Millisecond,
		WarmRatio: 0.5, Seed: 42, Instructions: 5000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sent == 0 {
		t.Fatal("nothing sent")
	}
	if rep.Status["4xx"] != 0 {
		t.Errorf("%d malformed requests (4xx) from the generator", rep.Status["4xx"])
	}
	if rep.Status["5xx"] != 0 || rep.TransportErrors != 0 {
		t.Errorf("healthy daemon errored: %v transport=%d", rep.Status, rep.TransportErrors)
	}
	if !rep.SLO.Pass {
		t.Errorf("SLO failed: %v", rep.SLO.Reasons)
	}
}

// TestRejectsBadConfig pins the input validation.
func TestRejectsBadConfig(t *testing.T) {
	if _, err := Run(context.Background(), Config{}); err == nil {
		t.Error("empty BaseURL accepted")
	}
	if _, err := Run(context.Background(), Config{BaseURL: "http://x", Mix: "nope"}); err == nil {
		t.Error("unknown mix accepted")
	}
}
