// Package loadgen is aosload's engine: an open-loop HTTP traffic
// generator for the aosd serving API with deterministic request mixes,
// cold-vs-warm cache ratios, burst schedules, an HDR-style latency
// histogram and an SLO pass/fail verdict.
//
// Open loop means the request schedule is fixed by the target rate, not
// by response times: a slow server does not slow the generator down, it
// accumulates in-flight requests (bounded by MaxInFlight) — the honest
// way to measure latency under load, closed-loop generators hide queueing
// delay by self-throttling (coordinated omission).
package loadgen

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"sync"
	"time"

	"aos/internal/experiments"
	"aos/internal/instrument"
)

// Mixes. Each names a deterministic request population over the aosd API.
const (
	MixSingle  = "single"  // GET /v1/results, one cell per request
	MixFig14   = "fig14"   // GET /v1/experiments/fig14 (16x5 composition)
	MixFig18   = "fig18"   // GET /v1/experiments/fig18
	MixAttacks = "attacks" // GET /v1/experiments/attacks
	MixMixed   = "mixed"   // 70% single, 10% each figure, 10% attacks
)

// Mixes lists the valid -mix values.
func Mixes() []string { return []string{MixSingle, MixFig14, MixFig18, MixAttacks, MixMixed} }

// BurstSpec overlays a square-wave burst schedule on the base rate:
// every Every, the rate multiplies by Factor for Len.
type BurstSpec struct {
	Every  time.Duration
	Len    time.Duration
	Factor float64
}

// Config parameterises one load run.
type Config struct {
	// BaseURL is the daemon root, e.g. http://127.0.0.1:8080.
	BaseURL string
	// Mix selects the request population (see Mixes; "" = single).
	Mix string
	// Rate is the open-loop target in requests/second (<= 0 uses 10).
	Rate float64
	// Duration bounds the run (<= 0 uses 10s).
	Duration time.Duration
	// MaxInFlight bounds concurrent requests (<= 0 uses 64). A tick that
	// finds every slot busy is counted as client shed, not sent.
	MaxInFlight int
	// WarmRatio in [0,1] is the fraction of requests re-using the base
	// seed — repeat specs the daemon answers from cache. The rest get
	// unique seeds (cold: every one is a fresh simulation). Default 0
	// (all cold).
	WarmRatio float64
	// Instructions is the per-cell budget for simulation specs (<= 0
	// uses 20000 — interactive scale).
	Instructions uint64
	// Seed makes the request schedule reproducible: mix selection,
	// warm/cold choice and cold-seed assignment all derive from it.
	Seed int64
	// Burst, when non-nil, overlays a burst schedule on Rate.
	Burst *BurstSpec
	// SLOAvailability is the pass/fail availability objective
	// (<= 0 uses 0.99); SLOP99 the p99 latency objective (0 = ungated).
	SLOAvailability float64
	SLOP99          time.Duration
	// Client overrides the HTTP client (nil uses a 2-minute-timeout one).
	Client *http.Client
}

// Run drives the configured load against the daemon and returns the
// graded report. ctx aborts the run early (the partial report is still
// returned with an error == nil; ctx errors are not transport errors).
func Run(ctx context.Context, cfg Config) (*Report, error) {
	if cfg.BaseURL == "" {
		return nil, fmt.Errorf("loadgen: BaseURL is required")
	}
	mix := cfg.Mix
	if mix == "" {
		mix = MixSingle
	}
	valid := false
	for _, m := range Mixes() {
		if m == mix {
			valid = true
			break
		}
	}
	if !valid {
		return nil, fmt.Errorf("loadgen: unknown mix %q (have %v)", cfg.Mix, Mixes())
	}
	rate := cfg.Rate
	if rate <= 0 {
		rate = 10
	}
	dur := cfg.Duration
	if dur <= 0 {
		dur = 10 * time.Second
	}
	inFlight := cfg.MaxInFlight
	if inFlight <= 0 {
		inFlight = 64
	}
	insts := cfg.Instructions
	if insts == 0 {
		insts = 20000
	}
	avail := cfg.SLOAvailability
	if avail <= 0 || avail >= 1 {
		avail = 0.99
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: 2 * time.Minute}
	}

	r := &runner{
		cfg:    cfg,
		mix:    mix,
		insts:  insts,
		client: client,
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		sem:    make(chan struct{}, inFlight),
	}
	rep := &Report{
		Schema:          Schema,
		Mix:             mix,
		TargetRPS:       rate,
		DurationSeconds: dur.Seconds(),
		WarmRatio:       cfg.WarmRatio,
		Status:          map[string]uint64{"2xx": 0, "429": 0, "4xx": 0, "5xx": 0},
	}

	var wg sync.WaitGroup
	start := time.Now()
	next := start
	for {
		elapsed := time.Since(start)
		if elapsed >= dur || ctx.Err() != nil {
			break
		}
		cur := rate
		if b := cfg.Burst; b != nil && b.Every > 0 && b.Factor > 0 && elapsed%b.Every < b.Len {
			cur = rate * b.Factor
		}
		// The schedule is absolute (next accumulates ideal intervals), so
		// a slow tick is caught up with back-to-back sends instead of
		// silently stretching the test — open loop, no coordinated omission.
		next = next.Add(time.Duration(float64(time.Second) / cur))
		if d := time.Until(next); d > 0 {
			select {
			case <-time.After(d):
			case <-ctx.Done():
			}
		}
		url, warm := r.nextRequest()
		select {
		case r.sem <- struct{}{}:
		default:
			r.mu.Lock()
			rep.ClientShed++
			r.mu.Unlock()
			continue
		}
		r.mu.Lock()
		rep.Sent++
		if warm {
			rep.Warm++
		} else {
			rep.Cold++
		}
		r.mu.Unlock()
		wg.Add(1)
		go func(url string) {
			defer wg.Done()
			defer func() { <-r.sem }()
			r.do(ctx, url, rep)
		}(url)
	}
	wg.Wait()
	wall := time.Since(start)

	r.mu.Lock()
	rep.ThroughputRPS = float64(rep.Completed) / wall.Seconds()
	attempts := rep.Completed + rep.TransportErrors
	if attempts > 0 {
		rep.Availability = 1 - float64(rep.Status["5xx"]+rep.TransportErrors)/float64(attempts)
	}
	rep.LatencySeconds = Percentiles{
		P50:  r.lat.quantile(0.50),
		P90:  r.lat.quantile(0.90),
		P99:  r.lat.quantile(0.99),
		Max:  r.lat.max,
		Mean: r.lat.mean(),
	}
	r.mu.Unlock()
	rep.grade(avail, cfg.SLOP99.Seconds())
	return rep, nil
}

// runner is one Run invocation's mutable state. The scheduler goroutine
// owns rng and coldSeq; mu guards the report counters and histogram the
// request goroutines write.
type runner struct {
	cfg    Config
	mix    string
	insts  uint64
	client *http.Client
	rng    *rand.Rand
	sem    chan struct{}

	coldSeq int64

	mu  sync.Mutex
	lat hist
}

// nextRequest picks the next URL from the mix (scheduler goroutine only).
func (r *runner) nextRequest() (target string, warm bool) {
	kind := r.mix
	if kind == MixMixed {
		switch p := r.rng.Float64(); {
		case p < 0.70:
			kind = MixSingle
		case p < 0.80:
			kind = MixFig14
		case p < 0.90:
			kind = MixFig18
		default:
			kind = MixAttacks
		}
	}
	warm = r.rng.Float64() < r.cfg.WarmRatio
	seed := r.cfg.Seed
	if !warm {
		// Unique seed -> unique spec hash -> guaranteed cache miss.
		r.coldSeq++
		seed = r.cfg.Seed + r.coldSeq
	}
	switch kind {
	case MixFig14, MixFig18:
		return fmt.Sprintf("%s/v1/experiments/%s?insts=%d&seed=%d", r.cfg.BaseURL, kind, r.insts, seed), warm
	case MixAttacks:
		// Attack grading is per-program work: 2 programs/cell keeps a cold
		// attacks request comparable to a single simulation cell.
		return fmt.Sprintf("%s/v1/experiments/attacks?programs=2&seed=%d", r.cfg.BaseURL, uint64(seed)), warm
	default:
		benches := experiments.MatrixBenchmarks()
		schemes := instrument.Schemes()
		b := benches[r.rng.Intn(len(benches))]
		s := schemes[r.rng.Intn(len(schemes))]
		q := url.Values{}
		q.Set("benchmark", b)
		// QueryEscape matters: the PA+AOS scheme would otherwise decode
		// server-side as "PA AOS".
		q.Set("scheme", s.String())
		q.Set("insts", fmt.Sprint(r.insts))
		q.Set("seed", fmt.Sprint(seed))
		return r.cfg.BaseURL + "/v1/results?" + q.Encode(), warm
	}
}

// do issues one request and records its outcome.
func (r *runner) do(ctx context.Context, url string, rep *Report) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		r.mu.Lock()
		rep.TransportErrors++
		r.mu.Unlock()
		return
	}
	start := time.Now()
	resp, err := r.client.Do(req)
	if err == nil {
		// Latency includes draining the body: a composition document is
		// hundreds of KB and the client hasn't "got the answer" until the
		// last byte.
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	elapsed := time.Since(start)
	r.mu.Lock()
	defer r.mu.Unlock()
	if err != nil {
		if ctx.Err() != nil {
			return // aborted by the caller, not a server failure
		}
		rep.TransportErrors++
		return
	}
	rep.Completed++
	r.lat.observe(elapsed.Seconds())
	switch {
	case resp.StatusCode == http.StatusTooManyRequests:
		rep.Status["429"]++
	case resp.StatusCode >= 500:
		rep.Status["5xx"]++
	case resp.StatusCode >= 400:
		rep.Status["4xx"]++
	default:
		rep.Status["2xx"]++
	}
}
