package loadgen

import "fmt"

// Schema identifies the report document version. Consumers (the CI soak
// gate, dashboards) select on it; additive changes keep v1, breaking
// changes bump it.
const Schema = "aosload/report/v1"

// Percentiles summarises the completed-request latency distribution in
// seconds. Values are HDR-style bucket bounds (~12% relative error)
// except Max, which is exact.
type Percentiles struct {
	P50  float64 `json:"p50"`
	P90  float64 `json:"p90"`
	P99  float64 `json:"p99"`
	Max  float64 `json:"max"`
	Mean float64 `json:"mean"`
}

// Verdict is the SLO gate's outcome: the objectives the run was graded
// against and the reasons it failed, empty when it passed.
type Verdict struct {
	AvailabilityObjective float64  `json:"availability_objective"`
	P99ObjectiveSeconds   float64  `json:"p99_objective_seconds,omitempty"`
	Pass                  bool     `json:"pass"`
	Reasons               []string `json:"reasons,omitempty"`
}

// Report is the generator's result document (schema aosload/report/v1).
//
// Counting rules: Sent counts requests put on the wire; Completed those
// that got any HTTP response. Shed load — HTTP 429 from the daemon's
// bounded queue, plus ClientShed ticks skipped because MaxInFlight was
// exhausted — is visible but is NOT an availability error; only 5xx
// responses and transport failures burn the budget, mirroring the
// daemon's own aosd_slo_error_budget_burn accounting.
type Report struct {
	Schema          string  `json:"schema"`
	Mix             string  `json:"mix"`
	TargetRPS       float64 `json:"target_rps"`
	DurationSeconds float64 `json:"duration_seconds"`
	WarmRatio       float64 `json:"warm_ratio"`

	Sent            uint64            `json:"sent"`
	Completed       uint64            `json:"completed"`
	Status          map[string]uint64 `json:"status"` // 2xx / 429 / 4xx / 5xx
	TransportErrors uint64            `json:"transport_errors"`
	ClientShed      uint64            `json:"client_shed"`
	Warm            uint64            `json:"warm_requests"`
	Cold            uint64            `json:"cold_requests"`

	ThroughputRPS  float64     `json:"throughput_rps"`
	Availability   float64     `json:"availability"`
	LatencySeconds Percentiles `json:"latency_seconds"`

	SLO Verdict `json:"slo"`
}

// grade fills the report's verdict from the configured objectives.
func (r *Report) grade(availObjective float64, p99Objective float64) {
	r.SLO = Verdict{AvailabilityObjective: availObjective, P99ObjectiveSeconds: p99Objective, Pass: true}
	fail := func(format string, args ...any) {
		r.SLO.Pass = false
		r.SLO.Reasons = append(r.SLO.Reasons, fmt.Sprintf(format, args...))
	}
	if r.Completed == 0 {
		fail("no request completed")
		return
	}
	if r.Availability < availObjective {
		fail("availability %.6f below objective %.6f", r.Availability, availObjective)
	}
	if r.TransportErrors > 0 {
		fail("%d transport errors (connection refused/reset)", r.TransportErrors)
	}
	if p99Objective > 0 && r.LatencySeconds.P99 > p99Objective {
		fail("p99 latency %.4fs above objective %.4fs", r.LatencySeconds.P99, p99Objective)
	}
}
