package loadgen

import "math"

// The latency histogram is HDR-style: geometric buckets growing by
// histFactor from histMin seconds, so relative error is bounded (~12%)
// across six decades — 50µs interactive cache hits to minute-long cold
// figure compositions land in meaningfully-sized buckets. 64 buckets
// reach ~64s; slower responses fall into the overflow slot and are
// reported via Max (tracked exactly).
const (
	histMin     = 50e-6
	histFactor  = 1.25
	histBuckets = 64
)

// hist accumulates request latencies. Not goroutine-safe; the runner
// guards it with its own mutex.
type hist struct {
	counts [histBuckets + 1]uint64
	total  uint64
	sum    float64
	max    float64
}

func (h *hist) observe(seconds float64) {
	i := 0
	if seconds > histMin {
		i = int(math.Ceil(math.Log(seconds/histMin) / math.Log(histFactor)))
		if i > histBuckets {
			i = histBuckets
		}
	}
	h.counts[i]++
	h.total++
	h.sum += seconds
	if seconds > h.max {
		h.max = seconds
	}
}

// bound returns bucket i's upper latency bound in seconds.
func (h *hist) bound(i int) float64 {
	return histMin * math.Pow(histFactor, float64(i))
}

// quantile returns the upper bound of the bucket containing the q-th
// latency (0 < q <= 1), capped at the exact observed max. Zero when
// nothing was observed.
func (h *hist) quantile(q float64) float64 {
	if h.total == 0 {
		return 0
	}
	rank := uint64(q * float64(h.total))
	if rank >= h.total {
		rank = h.total - 1
	}
	cum := uint64(0)
	for i := range h.counts {
		cum += h.counts[i]
		if cum > rank {
			if i == histBuckets {
				return h.max // overflow bucket: its bound means nothing
			}
			b := h.bound(i)
			if b > h.max {
				b = h.max
			}
			return b
		}
	}
	return h.max
}

func (h *hist) mean() float64 {
	if h.total == 0 {
		return 0
	}
	return h.sum / float64(h.total)
}
