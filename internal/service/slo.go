package service

import (
	"fmt"
	"io"
	"net/http"
	"time"
)

// sloBuckets are the per-endpoint request-latency histogram bounds in
// seconds. Pinned: dashboards and the aosload SLO verdict interpolate
// percentiles from these exact boundaries, so changing them is a
// breaking change to every recorded burn-rate panel (the golden metrics
// test will fail loudly if they drift).
var sloBuckets = []float64{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30}

// defaultSLOAvailability is the availability objective used when the
// config leaves it zero: 99% of requests answered without a 5xx.
const defaultSLOAvailability = 0.99

// sloEndpoints is the fixed endpoint vocabulary, in exposition order.
// Every routed handler observes under exactly one of these labels; an
// unknown label is a programming error and is folded into "other" so a
// typo cannot grow unbounded series.
var sloEndpoints = []string{
	"submit", "job", "events", "job_trace", "trace",
	"results", "experiment", "healthz", "metrics", "other",
}

// statusClasses label HTTP status families on aosd_http_requests_total.
var statusClasses = []string{"2xx", "3xx", "4xx", "5xx"}

// endpointStats accumulates one endpoint's SLO series. Guarded by the
// owning metrics mutex.
type endpointStats struct {
	classes [4]uint64 // index (code/100)-2, clamped
	buckets []uint64  // len(sloBuckets)+1, last is +Inf overflow
	sum     float64
	count   uint64
}

func (e *endpointStats) observe(code int, seconds float64) {
	cls := code/100 - 2
	if cls < 0 {
		cls = 0
	}
	if cls > 3 {
		cls = 3
	}
	e.classes[cls]++
	if e.buckets == nil {
		e.buckets = make([]uint64, len(sloBuckets)+1)
	}
	i := 0
	for i < len(sloBuckets) && seconds > sloBuckets[i] {
		i++
	}
	e.buckets[i]++
	e.sum += seconds
	e.count++
}

// errorRate is the 5xx fraction (0 for an untouched endpoint).
func (e *endpointStats) errorRate() float64 {
	if e.count == 0 {
		return 0
	}
	return float64(e.classes[3]) / float64(e.count)
}

// observeHTTP records one finished request for the SLO layer.
func (m *metrics) observeHTTP(endpoint string, code int, elapsed time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.http == nil {
		m.http = make(map[string]*endpointStats, len(sloEndpoints))
	}
	known := false
	for _, ep := range sloEndpoints {
		if ep == endpoint {
			known = true
			break
		}
	}
	if !known {
		endpoint = "other"
	}
	e := m.http[endpoint]
	if e == nil {
		e = &endpointStats{}
		m.http[endpoint] = e
	}
	e.observe(code, elapsed.Seconds())
}

// renderSLO writes the per-endpoint request series: status-class
// counters, the pinned-bucket latency histogram, and the availability /
// error-budget-burn gauges the soak job gates on. Only endpoints that
// have seen traffic are emitted (in fixed vocabulary order), so the
// exposition stays deterministic without carrying ~200 zero lines on an
// idle daemon. Caller holds m.mu.
func (m *metrics) renderSLO(w io.Writer) {
	objective := m.sloObjective
	if objective <= 0 || objective >= 1 {
		objective = defaultSLOAvailability
	}
	var active []string
	for _, ep := range sloEndpoints {
		if e := m.http[ep]; e != nil && e.count > 0 {
			active = append(active, ep)
		}
	}
	if len(active) == 0 {
		return
	}

	fmt.Fprintf(w, "# HELP aosd_http_requests_total HTTP requests by endpoint and status class.\n")
	fmt.Fprintf(w, "# TYPE aosd_http_requests_total counter\n")
	for _, ep := range active {
		for i, cls := range statusClasses {
			fmt.Fprintf(w, "aosd_http_requests_total{endpoint=%q,class=%q} %d\n", ep, cls, m.http[ep].classes[i])
		}
	}

	fmt.Fprintf(w, "# HELP aosd_http_request_seconds Request latency by endpoint (pinned buckets).\n")
	fmt.Fprintf(w, "# TYPE aosd_http_request_seconds histogram\n")
	for _, ep := range active {
		e := m.http[ep]
		cum := uint64(0)
		for i, le := range sloBuckets {
			cum += e.buckets[i]
			fmt.Fprintf(w, "aosd_http_request_seconds_bucket{endpoint=%q,le=\"%g\"} %d\n", ep, le, cum)
		}
		cum += e.buckets[len(sloBuckets)]
		fmt.Fprintf(w, "aosd_http_request_seconds_bucket{endpoint=%q,le=\"+Inf\"} %d\n", ep, cum)
		fmt.Fprintf(w, "aosd_http_request_seconds_sum{endpoint=%q} %g\n", ep, e.sum)
		fmt.Fprintf(w, "aosd_http_request_seconds_count{endpoint=%q} %d\n", ep, e.count)
	}

	fmt.Fprintf(w, "# HELP aosd_http_availability Fraction of requests answered without a 5xx, since start.\n")
	fmt.Fprintf(w, "# TYPE aosd_http_availability gauge\n")
	for _, ep := range active {
		fmt.Fprintf(w, "aosd_http_availability{endpoint=%q} %g\n", ep, 1-m.http[ep].errorRate())
	}

	fmt.Fprintf(w, "# HELP aosd_slo_error_budget_burn Error rate over the availability error budget (1.0 = burning exactly the budget).\n")
	fmt.Fprintf(w, "# TYPE aosd_slo_error_budget_burn gauge\n")
	for _, ep := range active {
		fmt.Fprintf(w, "aosd_slo_error_budget_burn{endpoint=%q} %g\n", ep, m.http[ep].errorRate()/(1-objective))
	}
}

// statusWriter captures the response status for SLO accounting while
// passing streaming capabilities (http.Flusher, for SSE) through.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// Flush forwards to the underlying writer when it streams; the SSE
// handler asserts for http.Flusher, so the wrapper must expose it.
func (w *statusWriter) Flush() {
	if fl, ok := w.ResponseWriter.(http.Flusher); ok {
		fl.Flush()
	}
}

// status returns the recorded code (200 when the handler never wrote).
func (w *statusWriter) status() int {
	if w.code == 0 {
		return http.StatusOK
	}
	return w.code
}
