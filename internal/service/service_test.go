package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"aos/internal/experiments"
	"aos/internal/instrument"
	"aos/internal/telemetry"
)

// newTestServer builds a Server plus an httptest front end; both are torn
// down with the test.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		svc.Close(ctx)
	})
	return svc, ts
}

// stubRunSpec swaps the simulation entry point for the test's lifetime.
// The stub keeps the simple (ctx, spec) signature most tests want; the
// wrapper adapts it to the full entry point (no telemetry, no progress).
func stubRunSpec(t *testing.T, fn func(ctx context.Context, spec experiments.SimSpec) (*experiments.SimResult, error)) {
	t.Helper()
	stubRunSpecFull(t, func(ctx context.Context, spec experiments.SimSpec, _ experiments.RunConfig) (*experiments.SimResult, *telemetry.Timeline, error) {
		res, err := fn(ctx, spec)
		return res, nil, err
	})
}

// stubRunSpecFull swaps the full simulation entry point (telemetry and
// progress config included) for the test's lifetime.
func stubRunSpecFull(t *testing.T, fn func(ctx context.Context, spec experiments.SimSpec, cfg experiments.RunConfig) (*experiments.SimResult, *telemetry.Timeline, error)) {
	t.Helper()
	orig := runSpecFull
	runSpecFull = fn
	t.Cleanup(func() { runSpecFull = orig })
}

// fakeResult builds a deterministic synthetic result for a spec, with
// per-scheme cycle/traffic ratios so figure normalization is predictable.
func fakeResult(spec experiments.SimSpec) *experiments.SimResult {
	ratios := map[string]uint64{
		instrument.Baseline.String(): 100,
		instrument.Watchdog.String(): 170,
		instrument.PA.String():       112,
		instrument.AOS.String():      108,
		instrument.PAAOS.String():    119,
	}
	r := ratios[spec.Scheme]
	return &experiments.SimResult{
		Spec:         spec,
		Cycles:       10 * r,
		Instructions: spec.Instructions,
		TrafficBytes: 1000 * r,
		HeapAllocs:   42,
	}
}

func postJob(t *testing.T, ts *httptest.Server, body string) (*http.Response, jobDoc) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc jobDoc
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted {
		if err := json.Unmarshal(raw, &doc); err != nil {
			t.Fatalf("bad job doc %s: %v", raw, err)
		}
	}
	return resp, doc
}

// pollJob polls GET /v1/jobs/{id} until the job leaves queued/running.
func pollJob(t *testing.T, ts *httptest.Server, id string) jobDoc {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var doc jobDoc
		if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if doc.Status != statusQueued && doc.Status != statusRunning {
			return doc
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never finished", id)
	return jobDoc{}
}

func getMetrics(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return string(b)
}

// metricValue extracts a sample value from Prometheus text exposition.
func metricValue(t *testing.T, text, name string) float64 {
	t.Helper()
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, name+" ") {
			var v float64
			if _, err := fmt.Sscanf(line[len(name)+1:], "%g", &v); err != nil {
				t.Fatalf("bad sample %q: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("metric %s missing from:\n%s", name, text)
	return 0
}

// TestSubmitPollCachedResubmit is the acceptance path: a real (tiny)
// simulation is submitted, polled to completion, and resubmitted — the
// resubmit must return byte-identical cached bytes without re-running,
// and /metrics must report the cache hit.
func TestSubmitPollCachedResubmit(t *testing.T) {
	var runs atomic.Int64
	stubRunSpec(t, func(ctx context.Context, spec experiments.SimSpec) (*experiments.SimResult, error) {
		runs.Add(1)
		return experiments.RunSpec(ctx, spec)
	})
	_, ts := newTestServer(t, Config{Workers: 2, QueueDepth: 8})

	const body = `{"benchmark": "mcf", "scheme": "AOS", "instructions": 15000}`
	resp, doc := postJob(t, ts, body)
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		t.Fatalf("submit status = %d", resp.StatusCode)
	}
	if doc.ID == "" || doc.Spec.Seed != 1 {
		t.Fatalf("job doc = %+v", doc)
	}
	done := pollJob(t, ts, doc.ID)
	if done.Status != statusDone {
		t.Fatalf("job finished %s (%s)", done.Status, done.Error)
	}
	if len(done.Result) == 0 {
		t.Fatal("done job has no result")
	}
	if runs.Load() != 1 {
		t.Fatalf("%d simulations for one job", runs.Load())
	}

	// Resubmit the identical spec: cached, byte-identical, no second run.
	resp2, doc2 := postJob(t, ts, body)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("resubmit status = %d, want 200", resp2.StatusCode)
	}
	if !doc2.Cached {
		t.Error("resubmit not marked cached")
	}
	if !bytes.Equal(doc2.Result, done.Result) {
		t.Fatalf("cached result differs:\n%s\n%s", doc2.Result, done.Result)
	}
	if runs.Load() != 1 {
		t.Fatalf("resubmit re-ran the simulation (%d runs)", runs.Load())
	}

	// The synchronous endpoint serves the raw cached bytes on a hit; two
	// hits must be byte-identical (jobDoc responses re-indent the embedded
	// result, so compare those in compact form).
	fetch := func() (string, []byte) {
		rresp, err := http.Get(ts.URL + "/v1/results?benchmark=mcf&scheme=AOS&insts=15000")
		if err != nil {
			t.Fatal(err)
		}
		defer rresp.Body.Close()
		b, _ := io.ReadAll(rresp.Body)
		return rresp.Header.Get("X-Cache"), b
	}
	xc, raw1 := fetch()
	if xc != "hit" {
		t.Errorf("X-Cache = %q, want hit", xc)
	}
	_, raw2 := fetch()
	if !bytes.Equal(raw1, raw2) {
		t.Fatalf("cache hits not byte-identical:\n%s\n%s", raw1, raw2)
	}
	var compact bytes.Buffer
	if err := json.Compact(&compact, done.Result); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw1, compact.Bytes()) {
		t.Fatalf("/v1/results bytes differ from the job result:\n%s\n%s", raw1, compact.Bytes())
	}
	if runs.Load() != 1 {
		t.Fatalf("results endpoint re-ran the simulation (%d runs)", runs.Load())
	}

	m := getMetrics(t, ts)
	if hits := metricValue(t, m, "aosd_cache_hits_total"); hits < 2 {
		t.Errorf("aosd_cache_hits_total = %g, want >= 2", hits)
	}
	if v := metricValue(t, m, `aosd_jobs_total{status="done"}`); v != 1 {
		t.Errorf(`aosd_jobs_total{status="done"} = %g, want 1`, v)
	}
	if v := metricValue(t, m, "aosd_job_wall_seconds_count"); v != 1 {
		t.Errorf("wall histogram count = %g, want 1", v)
	}
}

func TestSubmitValidation(t *testing.T) {
	stubRunSpec(t, func(ctx context.Context, spec experiments.SimSpec) (*experiments.SimResult, error) {
		return fakeResult(spec), nil
	})
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4, MaxInstructions: 100_000})

	for name, body := range map[string]string{
		"bad json":          `{`,
		"unknown field":     `{"benchmark": "mcf", "scheme": "AOS", "bogus": 1}`,
		"unknown benchmark": `{"benchmark": "nonesuch", "scheme": "AOS"}`,
		"unknown scheme":    `{"benchmark": "mcf", "scheme": "nonesuch"}`,
		"over budget limit": `{"benchmark": "mcf", "scheme": "AOS", "instructions": 200000}`,
	} {
		resp, _ := postJob(t, ts, body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", name, resp.StatusCode)
		}
	}

	resp, err := http.Get(ts.URL + "/v1/jobs/no-such-id")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: status = %d, want 404", resp.StatusCode)
	}
}

// TestBackpressure429 saturates a 1-worker, 1-slot queue and expects the
// third submission to be refused with 429 + Retry-After, then accepted
// once the queue drains.
func TestBackpressure429(t *testing.T) {
	started := make(chan string, 8)
	release := make(chan struct{})
	stubRunSpec(t, func(ctx context.Context, spec experiments.SimSpec) (*experiments.SimResult, error) {
		started <- spec.Benchmark
		select {
		case <-release:
			return fakeResult(spec), nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	})
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1})

	submit := func(bench string) int {
		resp, _ := postJob(t, ts, fmt.Sprintf(`{"benchmark": %q, "scheme": "AOS", "instructions": 1000}`, bench))
		return resp.StatusCode
	}

	if code := submit("mcf"); code != http.StatusAccepted {
		t.Fatalf("first submit = %d", code)
	}
	<-started // the only worker is now busy with mcf
	if code := submit("gcc"); code != http.StatusAccepted {
		t.Fatalf("second submit = %d", code)
	}
	// Worker busy + queue slot taken: the next distinct spec must bounce.
	resp, _ := http.Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"benchmark": "milc", "scheme": "AOS", "instructions": 1000}`))
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated submit = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 missing Retry-After")
	}
	m := getMetrics(t, ts)
	if v := metricValue(t, m, "aosd_queue_depth"); v != 1 {
		t.Errorf("queue depth = %g, want 1", v)
	}
	if v := metricValue(t, m, "aosd_inflight_jobs"); v != 1 {
		t.Errorf("inflight = %g, want 1", v)
	}

	close(release)
	<-started // gcc reaches the worker
	deadline := time.Now().Add(10 * time.Second)
	for {
		if code := submit("milc"); code == http.StatusAccepted || code == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("queue never drained")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestSchemeSpecValidation covers the scheme-input paths through the
// spec decoder: raw ordinals are accepted when in range (and normalized
// to the canonical name), rejected with a 400 when out of range, and
// names parse case-insensitively.
func TestSchemeSpecValidation(t *testing.T) {
	stubRunSpec(t, func(_ context.Context, spec experiments.SimSpec) (*experiments.SimResult, error) {
		return fakeResult(spec), nil
	})
	_, ts := newTestServer(t, Config{Workers: 1})

	resp, doc := postJob(t, ts, `{"benchmark": "mcf", "scheme": 3, "instructions": 1000}`)
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		t.Fatalf("in-range ordinal submit = %d", resp.StatusCode)
	}
	if doc.Spec.Scheme != instrument.AOS.String() {
		t.Errorf("ordinal 3 normalized to %q, want %q", doc.Spec.Scheme, instrument.AOS.String())
	}

	resp, doc = postJob(t, ts, `{"benchmark": "mcf", "scheme": "pa+aos", "instructions": 1000}`)
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		t.Fatalf("lower-case name submit = %d", resp.StatusCode)
	}
	if doc.Spec.Scheme != instrument.PAAOS.String() {
		t.Errorf("\"pa+aos\" normalized to %q, want %q", doc.Spec.Scheme, instrument.PAAOS.String())
	}

	// Out of range: one past the last registered scheme must bounce with a
	// spec error, not flow through as Scheme(n) and misrender.
	bad := fmt.Sprintf(`{"benchmark": "mcf", "scheme": %d, "instructions": 1000}`, len(instrument.AllSchemes()))
	r2, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(bad))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(r2.Body)
	r2.Body.Close()
	if r2.StatusCode != http.StatusBadRequest {
		t.Fatalf("out-of-range ordinal = %d, want 400 (body %s)", r2.StatusCode, body)
	}
	if !strings.Contains(string(body), "out of range") {
		t.Errorf("400 body %s does not name the range error", body)
	}
}

// TestExperimentBackpressure429: a saturated queue bounces the
// figure-composition endpoints too, and the Retry-After hint scales
// with the backlog instead of always saying 1.
func TestExperimentBackpressure429(t *testing.T) {
	started := make(chan string, 8)
	release := make(chan struct{})
	stubRunSpec(t, func(ctx context.Context, spec experiments.SimSpec) (*experiments.SimResult, error) {
		started <- spec.Benchmark
		select {
		case <-release:
			return fakeResult(spec), nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	})
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1})

	if resp, _ := postJob(t, ts, `{"benchmark": "mcf", "scheme": "AOS", "instructions": 1000}`); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit = %d", resp.StatusCode)
	}
	<-started // the only worker is now busy with mcf
	if resp, _ := postJob(t, ts, `{"benchmark": "gcc", "scheme": "AOS", "instructions": 1000}`); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("second submit = %d", resp.StatusCode)
	}

	// Worker busy + queue slot taken: composing a figure must bounce on
	// its first cell submission.
	resp, err := http.Get(ts.URL + "/v1/experiments/fig14?insts=1000")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated experiment GET = %d, want 429", resp.StatusCode)
	}
	// Queue full (1/1): the hint must reflect the backlog, not the old
	// hardcoded "1".
	if got := resp.Header.Get("Retry-After"); got != "30" {
		t.Errorf("Retry-After = %q, want 30 with a full queue", got)
	}

	close(release)
}

// TestClientDisconnectCancels: abandoning a synchronous /v1/results wait
// cancels the underlying job (no other waiters, not pinned).
func TestClientDisconnectCancels(t *testing.T) {
	started := make(chan struct{}, 1)
	stubRunSpec(t, func(ctx context.Context, spec experiments.SimSpec) (*experiments.SimResult, error) {
		started <- struct{}{}
		<-ctx.Done() // hold the worker until the client abandons us
		return nil, ctx.Err()
	})
	svc, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4})

	reqCtx, cancelReq := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(reqCtx, http.MethodGet,
		ts.URL+"/v1/results?benchmark=mcf&scheme=AOS&insts=1000", nil)
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		errc <- err
	}()
	<-started // the job is running and the client is waiting
	cancelReq()
	if err := <-errc; err == nil {
		t.Fatal("canceled request succeeded")
	}

	spec, err := (experiments.SimSpec{Benchmark: "mcf", Scheme: "AOS", Instructions: 1000}).Normalize()
	if err != nil {
		t.Fatal(err)
	}
	doc := pollJob(t, ts, spec.Hash())
	if doc.Status != statusCanceled {
		t.Fatalf("abandoned job ended %s (%s), want canceled", doc.Status, doc.Error)
	}
	m := getMetrics(t, ts)
	if v := metricValue(t, m, `aosd_jobs_total{status="canceled"}`); v != 1 {
		t.Errorf(`canceled jobs = %g, want 1`, v)
	}

	// A fresh submit of the same spec replaces the canceled job.
	release := make(chan struct{})
	close(release)
	stubRunSpec(t, func(ctx context.Context, spec experiments.SimSpec) (*experiments.SimResult, error) {
		return fakeResult(spec), nil
	})
	resp, doc2 := postJob(t, ts, `{"benchmark": "mcf", "scheme": "AOS", "instructions": 1000}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("resubmit of canceled job = %d", resp.StatusCode)
	}
	if final := pollJob(t, ts, doc2.ID); final.Status != statusDone {
		t.Fatalf("replacement job ended %s", final.Status)
	}
	_ = svc
}

// TestJobTimeout: a job exceeding Config.JobTimeout finishes canceled.
func TestJobTimeout(t *testing.T) {
	stubRunSpec(t, func(ctx context.Context, spec experiments.SimSpec) (*experiments.SimResult, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	})
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4, JobTimeout: 30 * time.Millisecond})

	_, doc := postJob(t, ts, `{"benchmark": "mcf", "scheme": "AOS", "instructions": 1000}`)
	if final := pollJob(t, ts, doc.ID); final.Status != statusCanceled {
		t.Fatalf("timed-out job ended %s", final.Status)
	}
}

// TestFig14Endpoint composes the full 16x5 figure from synthetic cells and
// verifies the second request is served entirely from cache.
func TestFig14Endpoint(t *testing.T) {
	var runs atomic.Int64
	stubRunSpec(t, func(ctx context.Context, spec experiments.SimSpec) (*experiments.SimResult, error) {
		runs.Add(1)
		return fakeResult(spec), nil
	})
	_, ts := newTestServer(t, Config{Workers: 4, QueueDepth: 8})

	get := func() figDoc {
		resp, err := http.Get(ts.URL + "/v1/experiments/fig14?insts=1000")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b, _ := io.ReadAll(resp.Body)
			t.Fatalf("fig14 status = %d: %s", resp.StatusCode, b)
		}
		var doc figDoc
		if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
			t.Fatal(err)
		}
		return doc
	}

	doc := get()
	nBench := len(experiments.MatrixBenchmarks())
	nCells := nBench * len(instrument.Schemes())
	if doc.Cells != nCells || len(doc.Rows) != nBench {
		t.Fatalf("cells = %d rows = %d, want %d/%d", doc.Cells, len(doc.Rows), nCells, nBench)
	}
	if runs.Load() != int64(nCells) {
		t.Fatalf("%d simulations for %d cells", runs.Load(), nCells)
	}
	for _, row := range doc.Rows {
		if row.Normalized[instrument.Baseline.String()] != 1 {
			t.Fatalf("%s baseline normalized to %g", row.Benchmark, row.Normalized[instrument.Baseline.String()])
		}
		// fakeResult: AOS/Baseline = 108/100 for every benchmark.
		if got := row.Normalized[instrument.AOS.String()]; got != 1.08 {
			t.Fatalf("%s AOS normalized = %g, want 1.08", row.Benchmark, got)
		}
	}
	if got := doc.Geomean[instrument.AOS.String()]; got < 1.079 || got > 1.081 {
		t.Fatalf("AOS geomean = %g, want ~1.08", got)
	}
	if _, ok := doc.Geomean[instrument.Baseline.String()]; ok {
		t.Error("geomean includes the baseline itself")
	}

	// Warm daemon: the same figure again touches no simulator.
	doc2 := get()
	if runs.Load() != int64(nCells) {
		t.Fatalf("warm fig14 re-ran cells (%d runs)", runs.Load())
	}
	if doc2.CachedCells != nCells {
		t.Errorf("cached_cells = %d, want %d", doc2.CachedCells, nCells)
	}

	// fig18 normalizes traffic with the same ratios.
	resp, err := http.Get(ts.URL + "/v1/experiments/fig18?insts=1000")
	if err != nil {
		t.Fatal(err)
	}
	var doc18 figDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc18); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if doc18.CachedCells != nCells {
		t.Errorf("fig18 cached_cells = %d, want %d (shares fig14's cells)", doc18.CachedCells, nCells)
	}

	// Guard rails: unknown figure and fixed-parameter override.
	for url, want := range map[string]int{
		"/v1/experiments/fig99":               http.StatusNotFound,
		"/v1/experiments/fig14?benchmark=mcf": http.StatusBadRequest,
	} {
		resp, err := http.Get(ts.URL + url)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Errorf("%s: status = %d, want %d", url, resp.StatusCode, want)
		}
	}
}

// TestDiskCacheSurvivesRestart: a second server over the same -cachedir
// answers from disk without re-running.
func TestDiskCacheSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	var runs atomic.Int64
	stub := func(ctx context.Context, spec experiments.SimSpec) (*experiments.SimResult, error) {
		runs.Add(1)
		return fakeResult(spec), nil
	}

	stubRunSpec(t, stub)
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4, CacheDir: dir})
	_, doc := postJob(t, ts, `{"benchmark": "mcf", "scheme": "AOS", "instructions": 1000}`)
	first := pollJob(t, ts, doc.ID)
	if first.Status != statusDone {
		t.Fatalf("job ended %s", first.Status)
	}
	ts.Close()

	_, ts2 := newTestServer(t, Config{Workers: 1, QueueDepth: 4, CacheDir: dir})
	resp, doc2 := postJob(t, ts2, `{"benchmark": "mcf", "scheme": "AOS", "instructions": 1000}`)
	if resp.StatusCode != http.StatusOK || !doc2.Cached {
		t.Fatalf("restart resubmit: status = %d cached = %v", resp.StatusCode, doc2.Cached)
	}
	if !bytes.Equal(doc2.Result, first.Result) {
		t.Fatalf("restart result differs:\n%s\n%s", doc2.Result, first.Result)
	}
	if runs.Load() != 1 {
		t.Fatalf("restart re-ran the simulation (%d runs)", runs.Load())
	}
}

func TestHealthz(t *testing.T) {
	stubRunSpec(t, func(ctx context.Context, spec experiments.SimSpec) (*experiments.SimResult, error) {
		return fakeResult(spec), nil
	})
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}
	var doc map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if doc["status"] != "ok" {
		t.Errorf("healthz doc = %v", doc)
	}
}

// TestCloseDrains: Close with a generous deadline lets queued jobs finish.
func TestCloseDrains(t *testing.T) {
	var runs atomic.Int64
	stubRunSpec(t, func(ctx context.Context, spec experiments.SimSpec) (*experiments.SimResult, error) {
		runs.Add(1)
		time.Sleep(10 * time.Millisecond)
		return fakeResult(spec), nil
	})
	svc, err := New(Config{Workers: 1, QueueDepth: 8})
	if err != nil {
		t.Fatal(err)
	}
	specs := []string{"mcf", "gcc", "milc"}
	for _, b := range specs {
		spec, err := (experiments.SimSpec{Benchmark: b, Scheme: "AOS", Instructions: 1000}).Normalize()
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := svc.getOrSubmit(spec, true, nil); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	svc.Close(ctx)
	if runs.Load() != int64(len(specs)) {
		t.Fatalf("drain completed %d of %d jobs", runs.Load(), len(specs))
	}
}
