package service

import (
	"encoding/json"
	"net/http"
	"sync"
)

// jobEvent is one frame of a job's SSE progress stream.
type jobEvent struct {
	// Type is progress (instruction progress), status (lifecycle
	// transition) or done (terminal frame, stream ends after it).
	Type   string `json:"type"`
	Status string `json:"status,omitempty"`
	// Done/Total are program instructions (warmup included).
	Done    uint64  `json:"done,omitempty"`
	Total   uint64  `json:"total,omitempty"`
	Percent float64 `json:"percent,omitempty"`
	Error   string  `json:"error,omitempty"`
	// WallSeconds rides on the terminal frame.
	WallSeconds float64 `json:"wall_seconds,omitempty"`
}

// broadcaster fans a job's event stream out to its SSE subscribers.
// Publishes come from the simulation goroutine and must never block
// on a slow client, so per-subscriber channels are buffered and a
// full buffer drops the frame — progress is monotonic, and the
// terminal frame is delivered out of band (the job's done channel),
// so dropped intermediate frames cost nothing but granularity.
type broadcaster struct {
	mu      sync.Mutex
	subs    map[chan jobEvent]struct{}
	last    *jobEvent
	closed  bool
	dropped uint64
	// onDrop, when non-nil, is called (outside the lock) once per frame
	// dropped on a full subscriber buffer — the service counts these on
	// aosd_sse_dropped_frames_total.
	onDrop func()
}

func newBroadcaster(onDrop func()) *broadcaster {
	return &broadcaster{subs: make(map[chan jobEvent]struct{}), onDrop: onDrop}
}

// publish fans ev out without blocking and remembers it for late
// subscribers. No-op after close.
func (b *broadcaster) publish(ev jobEvent) {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.last = &ev
	drops := 0
	//aoslint:allow mapiter — frame delivery order across independent subscribers is unobservable
	for ch := range b.subs {
		select {
		case ch <- ev:
		default: // slow client: drop the frame, keep the stream live
			drops++
		}
	}
	b.dropped += uint64(drops)
	onDrop := b.onDrop
	b.mu.Unlock()
	if onDrop != nil {
		for i := 0; i < drops; i++ {
			onDrop()
		}
	}
}

// Dropped reports frames discarded on full subscriber buffers.
func (b *broadcaster) Dropped() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.dropped
}

// subscribe registers a new stream and returns it with the most
// recent frame (nil when none yet). On a closed broadcaster the
// returned channel is already closed.
func (b *broadcaster) subscribe() (chan jobEvent, *jobEvent) {
	b.mu.Lock()
	defer b.mu.Unlock()
	ch := make(chan jobEvent, 16)
	if b.closed {
		close(ch)
		return ch, b.last
	}
	b.subs[ch] = struct{}{}
	return ch, b.last
}

// unsubscribe detaches and closes a stream. Safe after close (the
// broadcaster already removed and closed every channel).
func (b *broadcaster) unsubscribe(ch chan jobEvent) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.subs[ch]; ok {
		delete(b.subs, ch)
		close(ch)
	}
}

// close ends the stream: every subscriber channel is closed and
// future publishes are dropped. Idempotent.
func (b *broadcaster) close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.closed = true
	//aoslint:allow mapiter — close order across independent subscribers is unobservable
	for ch := range b.subs {
		close(ch)
	}
	b.subs = nil
}

// writeSSE writes one named server-sent event with a JSON payload.
func writeSSE(w http.ResponseWriter, name string, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return err
	}
	if _, err := w.Write([]byte("event: " + name + "\ndata: ")); err != nil {
		return err
	}
	if _, err := w.Write(data); err != nil {
		return err
	}
	_, err = w.Write([]byte("\n\n"))
	return err
}
