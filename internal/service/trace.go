package service

import (
	"context"
	"net/http"
	"time"

	"aos/internal/telemetry"
	"aos/internal/tracespan"
)

// maxTraces bounds the server's completed-trace ring: the most recent
// traces stay retrievable through GET /v1/traces/{id}, older ones are
// evicted FIFO. Job-attached traces additionally live as long as their
// job does (GET /v1/jobs/{id}/trace reads the job, not the ring).
const maxTraces = 256

// parentKey carries the parsed incoming traceparent from the routing
// middleware to the handler that decides to start a trace.
type parentKey struct{}

// route wraps an endpoint handler with the serving path's edge
// instrumentation: per-endpoint SLO accounting (latency histogram,
// status-class counters) and W3C trace-context extraction. The endpoint
// label must come from the sloEndpoints vocabulary.
func (s *Server) route(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		if s.cfg.Tracing {
			if tp := r.Header.Get(tracespan.Header); tp != "" {
				if sc, err := tracespan.ParseTraceparent(tp); err == nil {
					r = r.WithContext(context.WithValue(r.Context(), parentKey{}, sc))
				}
			}
		}
		sw := &statusWriter{ResponseWriter: w}
		h(sw, r)
		s.metrics.observeHTTP(endpoint, sw.status(), time.Since(start))
	}
}

// traceFor starts (and registers) a trace for the request, joining the
// incoming traceparent when the middleware parsed one. With tracing
// disabled it returns nil — the nil *Trace/*Span no-op contract makes
// every downstream instrumentation site free in that case.
func (s *Server) traceFor(r *http.Request) *tracespan.Trace {
	if !s.cfg.Tracing {
		return nil
	}
	var parent tracespan.SpanContext
	if sc, ok := r.Context().Value(parentKey{}).(tracespan.SpanContext); ok {
		parent = sc
	}
	tr := tracespan.New(parent)
	s.mu.Lock()
	if s.traces == nil {
		s.traces = make(map[string]*tracespan.Trace, maxTraces)
	}
	id := tr.TraceID().String()
	if _, dup := s.traces[id]; !dup {
		s.traces[id] = tr
		s.traceIDs = append(s.traceIDs, id)
		if len(s.traceIDs) > maxTraces {
			delete(s.traces, s.traceIDs[0])
			s.traceIDs = s.traceIDs[1:]
		}
	}
	s.mu.Unlock()
	return tr
}

// echoTraceparent advertises the request's root span in the response,
// so a client can follow its request into GET /v1/traces/{id} (and
// chain further spans under it). Must run before the first write.
func echoTraceparent(w http.ResponseWriter, tr *tracespan.Trace) {
	if tr == nil {
		return
	}
	w.Header().Set(tracespan.Header, tr.Context().Traceparent())
}

// handleJobTrace serves the merged Perfetto timeline for one job: the
// serving-path span tree (queue wait, cache lookup, execution) on the
// jobs thread plus the flight recorder's counter tracks and sim slices
// when the run recorded telemetry. The document passes
// telemetry.ValidateTraceJSON — the same validator CI runs on
// simulator timelines.
func (s *Server) handleJobTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	j, ok := s.jobs[id]
	var tr *tracespan.Trace
	var tl *telemetry.Timeline
	if ok {
		tr = j.trace
		tl = j.timeline
	}
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, "no such job %q", id)
		return
	}
	spans := tr.PerfettoSpans()
	if tl == nil && len(spans) == 0 {
		writeError(w, http.StatusNotFound,
			"no trace recorded for job %q (enable tracing and/or telemetry and resubmit)", id)
		return
	}
	short := id
	if len(short) > 12 {
		short = short[:12]
	}
	w.Header().Set("Content-Type", "application/json")
	_ = telemetry.WriteMergedTrace(w, "aosd job "+short, tl, spans)
}

// handleTraceByID serves the span tree of any recent trace (job-bound
// or not — cache hits and figure compositions trace too) as a Perfetto
// document.
func (s *Server) handleTraceByID(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	tr := s.traces[id]
	s.mu.Unlock()
	if tr == nil {
		writeError(w, http.StatusNotFound, "no such trace %q (tracing off, or evicted past the %d-trace ring)", id, maxTraces)
		return
	}
	spans := tr.PerfettoSpans()
	if len(spans) == 0 {
		writeError(w, http.StatusNotFound, "trace %q recorded no spans", id)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = telemetry.WriteMergedTrace(w, "aosd trace "+id, nil, spans)
}
