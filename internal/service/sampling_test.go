package service

import (
	"context"
	"net/http"
	"sync/atomic"
	"testing"

	"aos/internal/experiments"
	"aos/internal/telemetry"
)

// TestResultsSampledQuery drives the sampled-simulation path end to end:
// sample_* query params become a normalized Sampling block on the spec,
// the job runs with the daemon's checkpoint store attached, and the
// sampled cell is cached at its own address (distinct from exact runs).
func TestResultsSampledQuery(t *testing.T) {
	var specs atomic.Int64
	var lastSpec atomic.Pointer[experiments.SimSpec]
	stubRunSpecFull(t, func(ctx context.Context, spec experiments.SimSpec, cfg experiments.RunConfig) (*experiments.SimResult, *telemetry.Timeline, error) {
		specs.Add(1)
		lastSpec.Store(&spec)
		if cfg.Checkpoints == nil {
			t.Error("job ran without the daemon checkpoint store")
		}
		return experiments.RunSpecFull(ctx, spec, cfg)
	})
	svc, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4})

	const url = "/v1/results?benchmark=mcf&scheme=AOS&insts=60000&sample=1&sample_windows=4&sample_detail=1000&sample_window=4000"
	resp, err := http.Get(ts.URL + url)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sampled results status = %d", resp.StatusCode)
	}
	if resp.Header.Get("X-Cache") != "miss" {
		t.Fatalf("X-Cache = %q, want miss", resp.Header.Get("X-Cache"))
	}
	spec := lastSpec.Load()
	if spec == nil || spec.Sampling == nil {
		t.Fatalf("job spec lost the sampling block: %+v", spec)
	}
	if spec.Sampling.Windows != 4 || spec.Sampling.Detail != 1_000 ||
		spec.Sampling.Window != 4_000 || spec.Sampling.Gap == 0 {
		t.Fatalf("sampling block not normalized from query: %+v", spec.Sampling)
	}
	if _, misses, _ := svc.checkpoints.Stats(); misses == 0 {
		t.Error("sampled run did not populate the daemon checkpoint store")
	}

	// Same query again: served from cache, no second simulation.
	resp2, err := http.Get(ts.URL + url)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.Header.Get("X-Cache") != "hit" {
		t.Fatalf("repeat X-Cache = %q, want hit", resp2.Header.Get("X-Cache"))
	}
	if specs.Load() != 1 {
		t.Fatalf("repeat sampled query re-ran the simulation (%d runs)", specs.Load())
	}

	// The exact cell is a different address: dropping sample params must
	// miss the cache and run a fresh (exact) simulation.
	resp3, err := http.Get(ts.URL + "/v1/results?benchmark=mcf&scheme=AOS&insts=60000")
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.Header.Get("X-Cache") != "miss" {
		t.Fatalf("exact X-Cache = %q, want miss", resp3.Header.Get("X-Cache"))
	}
	if spec := lastSpec.Load(); spec.Sampling != nil {
		t.Fatalf("exact query carried a sampling block: %+v", spec.Sampling)
	}
}
