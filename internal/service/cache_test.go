package service

import (
	"bytes"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
)

func TestCacheBasic(t *testing.T) {
	c, err := NewCache(1<<20, "")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get("k1"); ok {
		t.Fatal("empty cache returned a value")
	}
	c.Put("k1", []byte("v1"))
	got, ok := c.Get("k1")
	if !ok || string(got) != "v1" {
		t.Fatalf("Get(k1) = %q, %v", got, ok)
	}
	c.Put("k1", []byte("v1-updated"))
	got, _ = c.Get("k1")
	if string(got) != "v1-updated" {
		t.Fatalf("update lost: %q", got)
	}
	s := c.Stats()
	if s.Hits != 2 || s.Misses != 1 || s.Entries != 1 {
		t.Errorf("stats = %+v, want 2 hits, 1 miss, 1 entry", s)
	}
	if s.Bytes != int64(len("v1-updated")) {
		t.Errorf("bytes = %d after update, want %d", s.Bytes, len("v1-updated"))
	}
	if got, want := s.HitRate(), 2.0/3.0; got != want {
		t.Errorf("hit rate = %g, want %g", got, want)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c, err := NewCache(100, "")
	if err != nil {
		t.Fatal(err)
	}
	val := bytes.Repeat([]byte("x"), 40)
	c.Put("a", val)
	c.Put("b", val)
	c.Get("a") // refresh a; b is now the LRU victim
	c.Put("c", val)

	if _, ok := c.Get("b"); ok {
		t.Error("LRU victim b survived")
	}
	for _, k := range []string{"a", "c"} {
		if _, ok := c.Get(k); !ok {
			t.Errorf("%s evicted, want resident", k)
		}
	}
	s := c.Stats()
	if s.Evictions != 1 {
		t.Errorf("evictions = %d, want 1", s.Evictions)
	}
	if s.Bytes > 100 {
		t.Errorf("bytes = %d over budget 100", s.Bytes)
	}

	// An entry larger than the whole budget is still kept (newest wins).
	huge := bytes.Repeat([]byte("y"), 500)
	c.Put("huge", huge)
	if got, ok := c.Get("huge"); !ok || !bytes.Equal(got, huge) {
		t.Error("oversized newest entry dropped")
	}
}

func TestCacheDiskSpill(t *testing.T) {
	dir := t.TempDir()
	c, err := NewCache(100, dir)
	if err != nil {
		t.Fatal(err)
	}
	val := bytes.Repeat([]byte("z"), 80)
	c.Put("deadbeef", val)
	c.Put("cafebabe", val) // evicts deadbeef from memory; disk copy remains

	got, ok := c.Get("deadbeef")
	if !ok || !bytes.Equal(got, val) {
		t.Fatal("evicted entry not recovered from disk")
	}
	s := c.Stats()
	if s.DiskHits != 1 || s.Hits != 1 {
		t.Errorf("stats = %+v, want 1 disk hit", s)
	}

	// A fresh cache over the same directory sees the results (restart).
	c2, err := NewCache(1<<20, dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"deadbeef", "cafebabe"} {
		if got, ok := c2.Get(k); !ok || !bytes.Equal(got, val) {
			t.Errorf("restart lost %s", k)
		}
	}

	// No stray temp files left behind.
	if m, _ := filepath.Glob(filepath.Join(dir, "*.tmp")); len(m) != 0 {
		t.Errorf("leftover temp files: %v", m)
	}
}

// TestCacheKeySafety: keys that could escape the spill directory are never
// used as paths (they stay memory-only).
func TestCacheKeySafety(t *testing.T) {
	dir := t.TempDir()
	c, err := NewCache(1<<20, dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"../escape", "a/b", `a\b`, "dot.file", ""} {
		c.Put(k, []byte("v"))
		if k != "" {
			if got, ok := c.Get(k); !ok || string(got) != "v" {
				t.Errorf("memory copy of %q lost", k)
			}
		}
	}
	if m, _ := filepath.Glob(filepath.Join(dir, "*")); len(m) != 0 {
		t.Errorf("unsafe keys reached disk: %v", m)
	}
	if _, ok := c.Get("never-put"); ok {
		t.Error("phantom disk entry")
	}
}

// TestCacheHammer drives concurrent mixed Put/Get traffic over a tiny
// budget (forcing constant eviction) so `go test -race` can catch any
// locking mistake, and checks counter consistency afterwards.
func TestCacheHammer(t *testing.T) {
	dir := t.TempDir()
	c, err := NewCache(4<<10, dir)
	if err != nil {
		t.Fatal(err)
	}
	const (
		workers = 8
		ops     = 400
		keys    = 50
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < ops; i++ {
				k := fmt.Sprintf("key%02d", (w*13+i*7)%keys)
				if (w+i)%3 == 0 {
					c.Put(k, bytes.Repeat([]byte{byte(w)}, 256))
				} else if v, ok := c.Get(k); ok {
					// Values are immutable views; length is the invariant.
					if len(v) != 256 {
						t.Errorf("corrupt value for %s: %d bytes", k, len(v))
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	s := c.Stats()
	if s.Hits+s.Misses == 0 {
		t.Fatal("no lookups recorded")
	}
	if s.Bytes > 4<<10 && s.Entries > 1 {
		t.Errorf("budget exceeded with %d entries resident (%d bytes)", s.Entries, s.Bytes)
	}
}
