package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"

	"aos/internal/experiments"
	"aos/internal/instrument"
	"aos/internal/security"
)

// attacksDoc is the detection-rate matrix composed from per-cell cached
// results — figDoc's shape for the adversarial harness.
type attacksDoc struct {
	Schema      string                    `json:"schema"`
	Programs    int                       `json:"programs"`
	Seed        uint64                    `json:"seed"`
	Cells       int                       `json:"cells"`
	CachedCells int                       `json:"cached_cells"`
	Rows        []*experiments.AttackCell `json:"rows"`
}

// handleAttacks composes the scheme x attack-class detection-rate matrix
// cell by cell. Each cell is content-addressed by its AttackSpec hash:
// cached cells are free (a cache hit in /metrics), missing ones are
// graded inline — cells are dozens of tiny machine runs, far below the
// job queue's granularity — and stored, so a repeat request touches no
// generator at all.
func (s *Server) handleAttacks(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	for _, p := range []string{"benchmark", "scheme", "insts", "sanitize"} {
		if q.Get(p) != "" {
			writeError(w, http.StatusBadRequest,
				"attacks takes programs/seed only; %q is fixed by the matrix", p)
			return
		}
	}
	base := experiments.AttackSpec{}
	if v := q.Get("programs"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad programs %q", v)
			return
		}
		base.Programs = n
	}
	if v := q.Get("seed"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad seed %q", v)
			return
		}
		base.Seed = n
	}

	doc := attacksDoc{Schema: "aosd/attacks/v1"}
	for _, class := range security.Classes() {
		for _, scheme := range instrument.AllSchemes() {
			spec := base
			spec.Scheme = scheme.String()
			spec.Class = class.String()
			spec, err := spec.Normalize()
			if err != nil {
				writeError(w, http.StatusBadRequest, "%v", err)
				return
			}
			doc.Programs = spec.Programs
			doc.Seed = spec.Seed

			key := spec.Hash()
			if b, ok := s.cache.Get(key); ok {
				var cell experiments.AttackCell
				if err := json.Unmarshal(b, &cell); err != nil {
					writeError(w, http.StatusInternalServerError, "corrupt cached attack cell: %v", err)
					return
				}
				doc.Rows = append(doc.Rows, &cell)
				doc.CachedCells++
				continue
			}
			cell, err := experiments.RunAttackSpec(r.Context(), spec)
			if err != nil {
				writeError(w, http.StatusInternalServerError, "%v", err)
				return
			}
			b, err := cell.JSON()
			if err != nil {
				writeError(w, http.StatusInternalServerError, "%v", err)
				return
			}
			s.cache.Put(key, b)
			doc.Rows = append(doc.Rows, cell)
		}
	}
	doc.Cells = len(doc.Rows)
	s.log.Info("attacks matrix served",
		"cells", doc.Cells, "cached", doc.CachedCells,
		"programs", doc.Programs, "seed", fmt.Sprint(doc.Seed))
	writeJSON(w, http.StatusOK, doc)
}
