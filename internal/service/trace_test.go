package service

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"aos/internal/telemetry"
	"aos/internal/tracespan"
)

// getBody fetches a URL and returns status plus body bytes.
func getBody(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, b
}

// TestTracingOffIsInert pins the zero-cost contract from the outside:
// a daemon with tracing disabled serves results byte-identical to a
// traced daemon (instrumentation never leaks into simulation output),
// echoes no traceparent, and puts no trace_id in job documents. Real
// simulations, no stubs — the comparison covers the whole pipeline.
func TestTracingOffIsInert(t *testing.T) {
	_, plain := newTestServer(t, Config{Workers: 2, QueueDepth: 8})
	_, traced := newTestServer(t, Config{Workers: 2, QueueDepth: 8, Tracing: true})

	const q = "/v1/results?benchmark=mcf&scheme=AOS&insts=20000&seed=7"
	codeP, bodyP := getBody(t, plain.URL+q)
	codeT, bodyT := getBody(t, traced.URL+q)
	if codeP != http.StatusOK || codeT != http.StatusOK {
		t.Fatalf("results status = %d (plain), %d (traced)", codeP, codeT)
	}
	if string(bodyP) != string(bodyT) {
		t.Fatalf("tracing changed the simulation result:\nplain:  %s\ntraced: %s", bodyP, bodyT)
	}

	resp, doc := postJob(t, plain, `{"benchmark": "mcf", "scheme": "AOS", "instructions": 20000, "seed": 7}`)
	if got := resp.Header.Get(tracespan.Header); got != "" {
		t.Errorf("untraced daemon echoed traceparent %q", got)
	}
	if doc.TraceID != "" {
		t.Errorf("untraced job doc carries trace_id %q", doc.TraceID)
	}
}

// TestTraceparentPropagation drives a traced submission end to end: the
// client's traceparent is joined (same trace id echoed back and recorded
// in the job document), and the span tree is retrievable from
// /v1/traces/{id} as a valid Perfetto document carrying the serving-path
// span names.
func TestTraceparentPropagation(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 8, Tracing: true})

	const parent = "00-11223344556677889900aabbccddeeff-aaaaaaaaaaaaaaaa-01"
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs",
		strings.NewReader(`{"benchmark": "mcf", "scheme": "AOS", "instructions": 20000}`))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(tracespan.Header, parent)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()

	echo := resp.Header.Get(tracespan.Header)
	sc, err := tracespan.ParseTraceparent(echo)
	if err != nil {
		t.Fatalf("bad echoed traceparent %q: %v", echo, err)
	}
	if got := sc.TraceID.String(); got != "11223344556677889900aabbccddeeff" {
		t.Fatalf("echoed trace id = %s, want the client's", got)
	}
	if sc.SpanID.String() == "aaaaaaaaaaaaaaaa" {
		t.Fatal("echo repeats the client's span id; want the server's root span")
	}
	var doc jobDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("bad job doc %s: %v", raw, err)
	}
	if doc.TraceID != "11223344556677889900aabbccddeeff" {
		t.Fatalf("job doc trace_id = %q, want the joined trace", doc.TraceID)
	}
	pollJob(t, ts, doc.ID)

	code, body := getBody(t, ts.URL+"/v1/traces/"+doc.TraceID)
	if code != http.StatusOK {
		t.Fatalf("GET /v1/traces/%s = %d: %s", doc.TraceID, code, body)
	}
	st, err := telemetry.ValidateTraceJSON(body)
	if err != nil {
		t.Fatalf("trace document invalid: %v", err)
	}
	for _, name := range []string{"service_ingress", "service_cache_lookup", "service_queue_wait", "runner_execute", "experiments_run"} {
		found := false
		for _, s := range st.SliceNames {
			if s == name {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("span %q missing from trace (have %v)", name, st.SliceNames)
		}
	}
}

// TestJobTraceMergesSpansAndTimeline is the tentpole acceptance check: a
// sampled, telemetry-recording job served by a traced daemon exposes ONE
// Perfetto document at /v1/jobs/{id}/trace that carries both the job's
// span tree and the flight recorder's counter tracks plus sim/* mode
// slices — and that document passes the in-tree validator CI uses.
func TestJobTraceMergesSpansAndTimeline(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 8, Tracing: true, TelemetryInterval: 2000})

	_, doc := postJob(t, ts, `{"benchmark": "mcf", "scheme": "AOS", "instructions": 40000,
		"sampling": {"windows": 4, "detail": 4000, "window": 2000, "gap": 4000}}`)
	final := pollJob(t, ts, doc.ID)
	if final.Status != statusDone {
		t.Fatalf("job = %s (%s)", final.Status, final.Error)
	}

	code, body := getBody(t, ts.URL+"/v1/jobs/"+doc.ID+"/trace")
	if code != http.StatusOK {
		t.Fatalf("GET /v1/jobs/{id}/trace = %d: %s", code, body)
	}
	st, err := telemetry.ValidateTraceJSON(body)
	if err != nil {
		t.Fatalf("merged document invalid: %v", err)
	}
	if st.SimSlices == 0 {
		t.Error("merged document has no sim/* mode slices")
	}
	if len(st.CounterTracks) == 0 {
		t.Error("merged document has no counter tracks")
	}
	have := map[string]bool{}
	for _, s := range st.SliceNames {
		have[s] = true
	}
	for _, name := range []string{"service_queue_wait", "runner_execute", "experiments_run"} {
		if !have[name] {
			t.Errorf("job span %q missing from merged document (have %v)", name, st.SliceNames)
		}
	}
	if !strings.Contains(string(body), `"jobs"`) {
		t.Error("merged document missing the jobs thread metadata")
	}
}

// TestMetricsExposesSLOSeries checks the live endpoint: after a handful
// of requests the per-endpoint SLO series (status-class counters, pinned
// latency histogram, availability and burn gauges) are scraped from
// /metrics.
func TestMetricsExposesSLOSeries(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 8})
	if code, _ := getBody(t, ts.URL+"/healthz"); code != http.StatusOK {
		t.Fatal("healthz failed")
	}
	text := getMetrics(t, ts) // observes healthz; the second scrape below sees metrics itself too
	if !strings.Contains(text, `aosd_http_requests_total{endpoint="healthz",class="2xx"} 1`) {
		t.Errorf("missing healthz request counter:\n%s", text)
	}
	text = getMetrics(t, ts)
	for _, want := range []string{
		`aosd_http_request_seconds_bucket{endpoint="metrics",le="+Inf"}`,
		`aosd_http_availability{endpoint="healthz"} 1`,
		`aosd_slo_error_budget_burn{endpoint="healthz"} 0`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("missing %q in /metrics", want)
		}
	}
}
