package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"aos/internal/experiments"
	"aos/internal/telemetry"
)

// sseFrame is one parsed server-sent event.
type sseFrame struct {
	Event string
	Data  map[string]any
}

// readSSE consumes an SSE stream until the terminal done frame (or EOF),
// returning the frames in order.
func readSSE(t *testing.T, body *bufio.Reader) []sseFrame {
	t.Helper()
	var frames []sseFrame
	var cur sseFrame
	for {
		line, err := body.ReadString('\n')
		if err != nil {
			return frames
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case strings.HasPrefix(line, "event: "):
			cur.Event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.Data = map[string]any{}
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &cur.Data); err != nil {
				t.Fatalf("bad SSE data %q: %v", line, err)
			}
		case line == "":
			if cur.Event != "" {
				frames = append(frames, cur)
				if cur.Event == "done" {
					return frames
				}
				cur = sseFrame{}
			}
		}
	}
}

// TestJobEventsSSE drives a stubbed run that reports progress and
// telemetry, and checks the SSE stream delivers progress frames and a
// terminal done frame carrying the flight-recorder summary.
func TestJobEventsSSE(t *testing.T) {
	release := make(chan struct{})
	stubRunSpecFull(t, func(ctx context.Context, spec experiments.SimSpec, cfg experiments.RunConfig) (*experiments.SimResult, *telemetry.Timeline, error) {
		cfg.OnProgress(5_000, 10_000)
		<-release
		cfg.OnProgress(10_000, 10_000)
		tl := telemetry.NewTimeline(telemetry.NewRegistry(), 64)
		tl.Registry().Counter("cpu_insts_total").Add(10_000)
		tl.Sample(64, 10_000)
		return fakeResult(spec), tl, nil
	})
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 8, TelemetryInterval: 64})

	_, doc := postJob(t, ts, `{"benchmark": "mcf", "scheme": "AOS", "instructions": 10000}`)
	if doc.ID == "" {
		t.Fatal("no job id")
	}

	resp, err := http.Get(ts.URL + "/v1/jobs/" + doc.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q, want text/event-stream", ct)
	}
	close(release)
	frames := readSSE(t, bufio.NewReader(resp.Body))
	if len(frames) == 0 {
		t.Fatal("no SSE frames")
	}
	last := frames[len(frames)-1]
	if last.Event != "done" {
		t.Fatalf("last frame = %q, want done", last.Event)
	}
	if last.Data["status"] != statusDone {
		t.Fatalf("done frame status = %v", last.Data["status"])
	}
	tel, ok := last.Data["telemetry"].(map[string]any)
	if !ok {
		t.Fatalf("done frame carries no telemetry summary: %v", last.Data)
	}
	if tel["samples"].(float64) != 1 {
		t.Errorf("telemetry samples = %v, want 1", tel["samples"])
	}
	var sawProgress bool
	for _, f := range frames {
		if f.Event == "progress" {
			sawProgress = true
			if f.Data["total"].(float64) != 10_000 {
				t.Errorf("progress total = %v", f.Data["total"])
			}
		}
	}
	if !sawProgress {
		t.Error("stream delivered no progress frames")
	}

	// The job document now carries the same summary, and the stream of
	// an already-finished job answers immediately with the done frame.
	final := pollJob(t, ts, doc.ID)
	if final.Telemetry == nil || final.Telemetry.Samples != 1 {
		t.Fatalf("job doc telemetry = %+v", final.Telemetry)
	}
	if final.Telemetry.Final["cpu_insts_total"] != 10_000 {
		t.Errorf("summary final counters = %v", final.Telemetry.Final)
	}
	resp2, err := http.Get(ts.URL + "/v1/jobs/" + doc.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	frames2 := readSSE(t, bufio.NewReader(resp2.Body))
	if len(frames2) != 1 || frames2[0].Event != "done" {
		t.Fatalf("finished-job stream = %+v, want single done frame", frames2)
	}
}

// TestSSEDropOnFullKeepsStreamLive pins the backpressure contract of the
// event fan-out: a subscriber that never drains its 16-frame buffer loses
// intermediate progress frames (counted on Dropped() and the
// aosd_sse_dropped_frames_total metric) but the stream stays live — a
// healthy HTTP subscriber still receives the terminal done frame. Run
// with -race this also exercises concurrent publish/subscribe/drain.
func TestSSEDropOnFullKeepsStreamLive(t *testing.T) {
	const frames = 100
	attached := make(chan struct{})
	stubRunSpecFull(t, func(ctx context.Context, spec experiments.SimSpec, cfg experiments.RunConfig) (*experiments.SimResult, *telemetry.Timeline, error) {
		<-attached
		for i := 1; i <= frames; i++ {
			cfg.OnProgress(uint64(i*100), frames*100)
		}
		return fakeResult(spec), nil, nil
	})
	svc, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 8})

	_, doc := postJob(t, ts, `{"benchmark": "mcf", "scheme": "AOS", "instructions": 10000}`)
	svc.mu.Lock()
	j := svc.jobs[doc.ID]
	svc.mu.Unlock()
	if j == nil || j.events == nil {
		t.Fatal("job has no broadcaster")
	}
	// The slow client: subscribes, never reads. Its buffer fills after 16
	// frames and every further publish must drop rather than block.
	slow, _ := j.events.subscribe()
	defer j.events.unsubscribe(slow)

	resp, err := http.Get(ts.URL + "/v1/jobs/" + doc.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	close(attached)

	got := readSSE(t, bufio.NewReader(resp.Body))
	if len(got) == 0 || got[len(got)-1].Event != "done" {
		t.Fatalf("healthy subscriber lost the terminal frame: %+v", got)
	}
	if got[len(got)-1].Data["status"] != statusDone {
		t.Fatalf("done frame status = %v", got[len(got)-1].Data["status"])
	}

	dropped := j.events.Dropped()
	if want := uint64(frames - 16); dropped < want {
		t.Fatalf("Dropped() = %d, want >= %d (slow subscriber holds 16 frames)", dropped, want)
	}
	if v := metricValue(t, getMetrics(t, ts), "aosd_sse_dropped_frames_total"); uint64(v) != dropped {
		t.Errorf("aosd_sse_dropped_frames_total = %g, want %d", v, dropped)
	}
}

// TestJobPanicFinalize pins the crash contract: a run body that panics
// mid-flight (an in-progress telemetry flush, say) must finish as a
// failed job — SSE subscribers get the done frame, pollers see the
// error, nothing deadlocks or double-closes, and /metrics counts it.
func TestJobPanicFinalize(t *testing.T) {
	armed := make(chan struct{})
	stubRunSpecFull(t, func(ctx context.Context, spec experiments.SimSpec, cfg experiments.RunConfig) (*experiments.SimResult, *telemetry.Timeline, error) {
		cfg.OnProgress(1, 2)
		<-armed
		panic("telemetry flush exploded")
	})
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 8})

	_, doc := postJob(t, ts, `{"benchmark": "mcf", "scheme": "AOS", "instructions": 10000}`)

	// Attach a live SSE subscriber before the panic fires.
	resp, err := http.Get(ts.URL + "/v1/jobs/" + doc.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	close(armed)
	frames := readSSE(t, bufio.NewReader(resp.Body))
	if len(frames) == 0 {
		t.Fatal("no SSE frames from panicking job")
	}
	last := frames[len(frames)-1]
	if last.Event != "done" || last.Data["status"] != statusFailed {
		t.Fatalf("terminal frame = %+v, want done/failed", last)
	}
	if !strings.Contains(fmt.Sprint(last.Data["error"]), "panicked") {
		t.Errorf("terminal frame error = %v", last.Data["error"])
	}

	final := pollJob(t, ts, doc.ID)
	if final.Status != statusFailed || !strings.Contains(final.Error, "panicked") {
		t.Fatalf("job = %s (%s), want failed panic", final.Status, final.Error)
	}
	if v := metricValue(t, getMetrics(t, ts), "aosd_job_panics_total"); v != 1 {
		t.Errorf("aosd_job_panics_total = %g, want 1", v)
	}

	// The pool worker survived: a healthy job still runs to completion.
	stubRunSpec(t, func(ctx context.Context, spec experiments.SimSpec) (*experiments.SimResult, error) {
		return fakeResult(spec), nil
	})
	_, doc2 := postJob(t, ts, `{"benchmark": "gcc", "scheme": "AOS", "instructions": 10000}`)
	if d := pollJob(t, ts, doc2.ID); d.Status != statusDone {
		t.Fatalf("post-panic job = %s (%s)", d.Status, d.Error)
	}
}

// TestHealthzBuildInfo checks the liveness document carries the build
// identity and uptime alongside the pinned "status": "ok" marker that
// deploy smoke tests grep for.
func TestHealthzBuildInfo(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if !bytes.Contains(raw, []byte(`"status": "ok"`)) {
		t.Fatalf("healthz missing literal status marker:\n%s", raw)
	}
	var doc struct {
		Status        string            `json:"status"`
		UptimeSeconds float64           `json:"uptime_seconds"`
		Build         map[string]string `json:"build"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Status != "ok" {
		t.Errorf("status = %q", doc.Status)
	}
	if doc.UptimeSeconds < 0 {
		t.Errorf("uptime_seconds = %g", doc.UptimeSeconds)
	}
	if doc.Build["go"] == "" {
		t.Errorf("build info missing go version: %v", doc.Build)
	}
	if doc.Build["version"] == "" {
		t.Errorf("build info missing module version: %v", doc.Build)
	}
}

// TestMetricsGolden pins the Prometheus text exposition byte-for-byte
// for a fixed sequence of observations, so accidental format or series
// drift (which breaks scrapers and dashboards) fails loudly.
func TestMetricsGolden(t *testing.T) {
	// The 0.5 objective keeps the burn gauge an exact binary fraction
	// (error budget 0.5), so the golden text stays platform-independent.
	m := &metrics{sloObjective: 0.5}
	m.observeJob(statusDone, 30*time.Millisecond, 1_000_000)
	m.observeJob(statusDone, 700*time.Millisecond, 2_500_000)
	m.observeJob(statusFailed, 10*time.Millisecond, 0)
	m.observeJob(statusCanceled, 2*time.Second, 0)
	m.observePanic()
	m.observeProgress()
	m.observeProgress()
	m.observeProgress()
	m.observeTelemetry(120)
	m.sseStart()
	m.observeSSEDrop()
	m.observeSSEDrop()
	// SLO traffic: the vocabulary-unknown endpoint folds into "other", the
	// 500 burns the submit error budget, the 429 does not count against it.
	m.observeHTTP("submit", 202, 2*time.Millisecond)
	m.observeHTTP("submit", 200, 40*time.Millisecond)
	m.observeHTTP("submit", 500, 100*time.Millisecond)
	m.observeHTTP("submit", 429, 4*time.Millisecond)
	m.observeHTTP("metrics", 200, 500*time.Microsecond)
	m.observeHTTP("bogus", 404, time.Millisecond)

	var buf bytes.Buffer
	m.render(&buf, 3, 8, 2, CacheStats{Hits: 7, DiskHits: 2, Misses: 5, Evictions: 1, Entries: 4, Bytes: 2048, BudgetBytes: 1 << 20})

	const golden = `# HELP aosd_queue_depth Simulation jobs waiting for a worker.
# TYPE aosd_queue_depth gauge
aosd_queue_depth 3
# HELP aosd_queue_capacity Configured pending-job queue bound.
# TYPE aosd_queue_capacity gauge
aosd_queue_capacity 8
# HELP aosd_inflight_jobs Simulation jobs currently executing.
# TYPE aosd_inflight_jobs gauge
aosd_inflight_jobs 2
# HELP aosd_jobs_total Finished jobs by outcome.
# TYPE aosd_jobs_total counter
aosd_jobs_total{status="done"} 2
aosd_jobs_total{status="failed"} 1
aosd_jobs_total{status="canceled"} 1
# HELP aosd_cache_hits_total Result-cache hits (including disk hits).
# TYPE aosd_cache_hits_total counter
aosd_cache_hits_total 7
# HELP aosd_cache_disk_hits_total Result-cache hits served from the spill directory.
# TYPE aosd_cache_disk_hits_total counter
aosd_cache_disk_hits_total 2
# HELP aosd_cache_misses_total Result-cache misses.
# TYPE aosd_cache_misses_total counter
aosd_cache_misses_total 5
# HELP aosd_cache_evictions_total Entries evicted from the in-memory LRU.
# TYPE aosd_cache_evictions_total counter
aosd_cache_evictions_total 1
# HELP aosd_cache_entries Entries resident in memory.
# TYPE aosd_cache_entries gauge
aosd_cache_entries 4
# HELP aosd_cache_bytes Bytes resident in memory.
# TYPE aosd_cache_bytes gauge
aosd_cache_bytes 2048
# HELP aosd_cache_budget_bytes Configured in-memory LRU byte budget.
# TYPE aosd_cache_budget_bytes gauge
aosd_cache_budget_bytes 1048576
# HELP aosd_cache_hit_rate Hits over lookups since start.
# TYPE aosd_cache_hit_rate gauge
aosd_cache_hit_rate 0.5833333333333334
# HELP aosd_sim_cycles_total Simulated cycles computed by fresh runs.
# TYPE aosd_sim_cycles_total counter
aosd_sim_cycles_total 3500000
# HELP aosd_job_panics_total Run bodies that panicked (recovered into failed jobs).
# TYPE aosd_job_panics_total counter
aosd_job_panics_total 1
# HELP aosd_progress_events_total Progress frames published to job event streams.
# TYPE aosd_progress_events_total counter
aosd_progress_events_total 3
# HELP aosd_telemetry_samples_total Flight-recorder rows captured by sampled jobs.
# TYPE aosd_telemetry_samples_total counter
aosd_telemetry_samples_total 120
# HELP aosd_sse_streams Live job event streams.
# TYPE aosd_sse_streams gauge
aosd_sse_streams 1
# HELP aosd_sse_dropped_frames_total Frames dropped on full subscriber buffers.
# TYPE aosd_sse_dropped_frames_total counter
aosd_sse_dropped_frames_total 2
# HELP aosd_job_wall_seconds Wall time of finished jobs.
# TYPE aosd_job_wall_seconds histogram
aosd_job_wall_seconds_bucket{le="0.005"} 0
aosd_job_wall_seconds_bucket{le="0.01"} 1
aosd_job_wall_seconds_bucket{le="0.025"} 1
aosd_job_wall_seconds_bucket{le="0.05"} 2
aosd_job_wall_seconds_bucket{le="0.1"} 2
aosd_job_wall_seconds_bucket{le="0.25"} 2
aosd_job_wall_seconds_bucket{le="0.5"} 2
aosd_job_wall_seconds_bucket{le="1"} 3
aosd_job_wall_seconds_bucket{le="2.5"} 4
aosd_job_wall_seconds_bucket{le="5"} 4
aosd_job_wall_seconds_bucket{le="10"} 4
aosd_job_wall_seconds_bucket{le="30"} 4
aosd_job_wall_seconds_bucket{le="60"} 4
aosd_job_wall_seconds_bucket{le="120"} 4
aosd_job_wall_seconds_bucket{le="+Inf"} 4
aosd_job_wall_seconds_sum 2.74
aosd_job_wall_seconds_count 4
# HELP aosd_http_requests_total HTTP requests by endpoint and status class.
# TYPE aosd_http_requests_total counter
aosd_http_requests_total{endpoint="submit",class="2xx"} 2
aosd_http_requests_total{endpoint="submit",class="3xx"} 0
aosd_http_requests_total{endpoint="submit",class="4xx"} 1
aosd_http_requests_total{endpoint="submit",class="5xx"} 1
aosd_http_requests_total{endpoint="metrics",class="2xx"} 1
aosd_http_requests_total{endpoint="metrics",class="3xx"} 0
aosd_http_requests_total{endpoint="metrics",class="4xx"} 0
aosd_http_requests_total{endpoint="metrics",class="5xx"} 0
aosd_http_requests_total{endpoint="other",class="2xx"} 0
aosd_http_requests_total{endpoint="other",class="3xx"} 0
aosd_http_requests_total{endpoint="other",class="4xx"} 1
aosd_http_requests_total{endpoint="other",class="5xx"} 0
# HELP aosd_http_request_seconds Request latency by endpoint (pinned buckets).
# TYPE aosd_http_request_seconds histogram
aosd_http_request_seconds_bucket{endpoint="submit",le="0.001"} 0
aosd_http_request_seconds_bucket{endpoint="submit",le="0.0025"} 1
aosd_http_request_seconds_bucket{endpoint="submit",le="0.005"} 2
aosd_http_request_seconds_bucket{endpoint="submit",le="0.01"} 2
aosd_http_request_seconds_bucket{endpoint="submit",le="0.025"} 2
aosd_http_request_seconds_bucket{endpoint="submit",le="0.05"} 3
aosd_http_request_seconds_bucket{endpoint="submit",le="0.1"} 4
aosd_http_request_seconds_bucket{endpoint="submit",le="0.25"} 4
aosd_http_request_seconds_bucket{endpoint="submit",le="0.5"} 4
aosd_http_request_seconds_bucket{endpoint="submit",le="1"} 4
aosd_http_request_seconds_bucket{endpoint="submit",le="2.5"} 4
aosd_http_request_seconds_bucket{endpoint="submit",le="5"} 4
aosd_http_request_seconds_bucket{endpoint="submit",le="10"} 4
aosd_http_request_seconds_bucket{endpoint="submit",le="30"} 4
aosd_http_request_seconds_bucket{endpoint="submit",le="+Inf"} 4
aosd_http_request_seconds_sum{endpoint="submit"} 0.14600000000000002
aosd_http_request_seconds_count{endpoint="submit"} 4
aosd_http_request_seconds_bucket{endpoint="metrics",le="0.001"} 1
aosd_http_request_seconds_bucket{endpoint="metrics",le="0.0025"} 1
aosd_http_request_seconds_bucket{endpoint="metrics",le="0.005"} 1
aosd_http_request_seconds_bucket{endpoint="metrics",le="0.01"} 1
aosd_http_request_seconds_bucket{endpoint="metrics",le="0.025"} 1
aosd_http_request_seconds_bucket{endpoint="metrics",le="0.05"} 1
aosd_http_request_seconds_bucket{endpoint="metrics",le="0.1"} 1
aosd_http_request_seconds_bucket{endpoint="metrics",le="0.25"} 1
aosd_http_request_seconds_bucket{endpoint="metrics",le="0.5"} 1
aosd_http_request_seconds_bucket{endpoint="metrics",le="1"} 1
aosd_http_request_seconds_bucket{endpoint="metrics",le="2.5"} 1
aosd_http_request_seconds_bucket{endpoint="metrics",le="5"} 1
aosd_http_request_seconds_bucket{endpoint="metrics",le="10"} 1
aosd_http_request_seconds_bucket{endpoint="metrics",le="30"} 1
aosd_http_request_seconds_bucket{endpoint="metrics",le="+Inf"} 1
aosd_http_request_seconds_sum{endpoint="metrics"} 0.0005
aosd_http_request_seconds_count{endpoint="metrics"} 1
aosd_http_request_seconds_bucket{endpoint="other",le="0.001"} 1
aosd_http_request_seconds_bucket{endpoint="other",le="0.0025"} 1
aosd_http_request_seconds_bucket{endpoint="other",le="0.005"} 1
aosd_http_request_seconds_bucket{endpoint="other",le="0.01"} 1
aosd_http_request_seconds_bucket{endpoint="other",le="0.025"} 1
aosd_http_request_seconds_bucket{endpoint="other",le="0.05"} 1
aosd_http_request_seconds_bucket{endpoint="other",le="0.1"} 1
aosd_http_request_seconds_bucket{endpoint="other",le="0.25"} 1
aosd_http_request_seconds_bucket{endpoint="other",le="0.5"} 1
aosd_http_request_seconds_bucket{endpoint="other",le="1"} 1
aosd_http_request_seconds_bucket{endpoint="other",le="2.5"} 1
aosd_http_request_seconds_bucket{endpoint="other",le="5"} 1
aosd_http_request_seconds_bucket{endpoint="other",le="10"} 1
aosd_http_request_seconds_bucket{endpoint="other",le="30"} 1
aosd_http_request_seconds_bucket{endpoint="other",le="+Inf"} 1
aosd_http_request_seconds_sum{endpoint="other"} 0.001
aosd_http_request_seconds_count{endpoint="other"} 1
# HELP aosd_http_availability Fraction of requests answered without a 5xx, since start.
# TYPE aosd_http_availability gauge
aosd_http_availability{endpoint="submit"} 0.75
aosd_http_availability{endpoint="metrics"} 1
aosd_http_availability{endpoint="other"} 1
# HELP aosd_slo_error_budget_burn Error rate over the availability error budget (1.0 = burning exactly the budget).
# TYPE aosd_slo_error_budget_burn gauge
aosd_slo_error_budget_burn{endpoint="submit"} 0.5
aosd_slo_error_budget_burn{endpoint="metrics"} 0
aosd_slo_error_budget_burn{endpoint="other"} 0
`
	if got := buf.String(); got != golden {
		t.Fatalf("metrics exposition drifted.\n--- got ---\n%s\n--- want ---\n%s", got, golden)
	}
}

// TestMetricsEndpointServesNewSeries is the end-to-end complement of
// the golden test: the live endpoint exposes the observability series.
func TestMetricsEndpointServesNewSeries(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1})
	text := getMetrics(t, ts)
	for _, name := range []string{
		"aosd_job_panics_total", "aosd_progress_events_total",
		"aosd_telemetry_samples_total", "aosd_sse_streams",
	} {
		metricValue(t, text, name) // fatals if missing
	}
}
