package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"aos/internal/instrument"
	"aos/internal/security"
)

// getAttacks fetches the attacks matrix and returns both the decoded doc
// and the raw response bytes (for byte-identity checks across requests).
func getAttacks(t *testing.T, ts *httptest.Server, query string) (attacksDoc, []byte) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/experiments/attacks" + query)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("attacks status = %d: %s", resp.StatusCode, raw)
	}
	var doc attacksDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	return doc, raw
}

// TestAttacksEndpoint composes the full scheme x class detection matrix
// from tiny per-cell batches and verifies the second request is served
// entirely from the content-addressed cache.
func TestAttacksEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, QueueDepth: 4})

	doc, raw := getAttacks(t, ts, "?programs=4&seed=1")
	nCells := len(security.Classes()) * len(instrument.AllSchemes())
	if doc.Schema != "aosd/attacks/v1" {
		t.Fatalf("schema = %q", doc.Schema)
	}
	if doc.Cells != nCells || len(doc.Rows) != nCells {
		t.Fatalf("cells = %d rows = %d, want %d", doc.Cells, len(doc.Rows), nCells)
	}
	if doc.Programs != 4 || doc.Seed != 1 {
		t.Fatalf("programs/seed = %d/%d, want 4/1", doc.Programs, doc.Seed)
	}
	if doc.CachedCells != 0 {
		t.Fatalf("cold request reports %d cached cells", doc.CachedCells)
	}
	for _, cell := range doc.Rows {
		if got := cell.Detected + cell.Bypassed + cell.Escaped; got != 4 {
			t.Fatalf("%s/%s verdicts sum to %d, want 4", cell.Spec.Scheme, cell.Spec.Class, got)
		}
		// The served matrix must agree with the documented detection
		// model: deterministic cells catch everything, never cells catch
		// nothing.
		s, err := instrument.ParseScheme(cell.Spec.Scheme)
		if err != nil {
			t.Fatal(err)
		}
		c, err := security.ParseClass(cell.Spec.Class)
		if err != nil {
			t.Fatal(err)
		}
		switch security.Expected(s, c) {
		case security.Deterministic:
			if cell.Detected != 4 {
				t.Errorf("%s/%s: deterministic cell detected %d/4", s, c, cell.Detected)
			}
		case security.Never:
			if cell.Escaped != 4 {
				t.Errorf("%s/%s: never cell escaped %d/4", s, c, cell.Escaped)
			}
		}
	}

	// Warm daemon: every cell comes from the cache and the body is
	// byte-identical to the cold request.
	doc2, raw2 := getAttacks(t, ts, "?programs=4&seed=1")
	if doc2.CachedCells != nCells {
		t.Fatalf("warm cached_cells = %d, want %d", doc2.CachedCells, nCells)
	}
	raw = bytes.Replace(raw, []byte(`"cached_cells": 0`),
		[]byte(fmt.Sprintf(`"cached_cells": %d`, nCells)), 1)
	if !bytes.Equal(raw, raw2) {
		t.Fatalf("warm matrix differs from cold:\n%s\n%s", raw, raw2)
	}
	m := getMetrics(t, ts)
	if hits := metricValue(t, m, "aosd_cache_hits_total"); hits < float64(nCells) {
		t.Errorf("aosd_cache_hits_total = %g, want >= %d", hits, nCells)
	}

	// A different seed shares nothing with the warm cells.
	doc3, _ := getAttacks(t, ts, "?programs=4&seed=2")
	if doc3.CachedCells != 0 {
		t.Errorf("seed=2 reused %d cells from seed=1", doc3.CachedCells)
	}

	// Defaults apply when the knobs are elided.
	doc4, _ := getAttacks(t, ts, "?programs=4")
	if doc4.Seed != 1 {
		t.Errorf("default seed = %d, want 1", doc4.Seed)
	}
	if doc4.CachedCells != nCells {
		t.Errorf("elided seed missed the seed=1 cache (%d cached)", doc4.CachedCells)
	}
}

// TestAttacksEndpointRejects covers the parameter surface: simulation
// knobs are fixed by the matrix and malformed values are 400s, and the
// experiment is listed in the unknown-figure error.
func TestAttacksEndpointRejects(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4})

	get := func(query string) (int, string) {
		resp, err := http.Get(ts.URL + query)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}

	for _, q := range []string{
		"?benchmark=mcf",
		"?scheme=AOS",
		"?insts=1000",
		"?sanitize=true",
		"?programs=x",
		"?programs=-1",
		"?seed=banana",
	} {
		if code, body := get("/v1/experiments/attacks" + q); code != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400 (%s)", q, code, body)
		}
	}

	code, body := get("/v1/experiments/nosuchfig")
	if code != http.StatusNotFound || !strings.Contains(body, "attacks") {
		t.Errorf("unknown figure: status = %d body = %s, want 404 naming attacks", code, body)
	}
}
