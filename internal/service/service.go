// Package service is the aosd serving layer: a stdlib-only JSON HTTP API
// that turns the one-shot evaluation harness into a queryable, memoized
// simulation service. Jobs (benchmark, scheme, budget, seed, sanitize)
// are scheduled on a persistent internal/runner pool behind a bounded
// queue with explicit backpressure (429 + Retry-After when full), and
// results are memoized in a content-addressed cache keyed by the SHA-256
// of the spec's canonical JSON (internal/experiments.SimSpec). Because
// simulations are pure functions of their spec, a warm cache answers
// repeat requests — including whole-figure compositions — without
// re-simulating anything.
//
// Endpoints:
//
//	POST /v1/jobs                  submit a spec; 202 while scheduled, 200 from cache
//	GET  /v1/jobs/{id}             poll a job (id = spec hash)
//	GET  /v1/results?...           synchronous cached lookup (runs on miss)
//	GET  /v1/experiments/fig14     figure composed from per-cell cached results
//	GET  /v1/experiments/fig18     traffic figure, same cells
//	GET  /healthz                  liveness
//	GET  /metrics                  Prometheus text exposition
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"aos/internal/experiments"
	"aos/internal/instrument"
	"aos/internal/runner"
	"aos/internal/stats"
)

// Job lifecycle states.
const (
	statusQueued   = "queued"
	statusRunning  = "running"
	statusDone     = "done"
	statusFailed   = "failed"
	statusCanceled = "canceled"
)

// runSpec is the simulation entry point, indirected so tests can inject
// slow or counting run bodies.
var runSpec = experiments.RunSpec

// Config sizes the service.
type Config struct {
	// Workers bounds concurrent simulations (<= 0 uses GOMAXPROCS).
	Workers int
	// QueueDepth bounds the pending-job queue (<= 0 uses 64). A full
	// queue is surfaced as HTTP 429 with a Retry-After hint.
	QueueDepth int
	// CacheBytes is the in-memory result-cache budget (<= 0 uses 64 MiB).
	CacheBytes int64
	// CacheDir, when non-empty, spills every result to disk so the cache
	// survives restarts and memory-pressure evictions.
	CacheDir string
	// JobTimeout caps each job's run time (0 = unlimited). Timed-out jobs
	// finish as canceled.
	JobTimeout time.Duration
	// MaxInstructions rejects specs whose normalized instruction budget
	// exceeds it (0 = unlimited) — the service's overload guard against
	// full-paper-scale runs on an interactive daemon.
	MaxInstructions uint64
	// BaseContext is the daemon lifetime; async jobs run under it (nil =
	// context.Background()).
	BaseContext context.Context
}

// job is one scheduled simulation, identified by its spec hash. Fields
// after the immutable header are guarded by Server.mu.
type job struct {
	id   string
	spec experiments.SimSpec

	status  string
	errMsg  string
	result  []byte // canonical SimResult JSON when done
	wall    time.Duration
	done    chan struct{}
	cancel  context.CancelFunc
	refs    int  // live sync waiters
	pinned  bool // an async submitter wants the result regardless of waiters
}

// Server is the aosd daemon core, embeddable in tests via Handler.
type Server struct {
	cfg     Config
	pool    *runner.Pool
	cache   *Cache
	metrics *metrics
	mux     *http.ServeMux

	baseCtx    context.Context
	baseCancel context.CancelFunc

	mu   sync.Mutex
	jobs map[string]*job
}

// New builds a Server (starting its worker pool) from cfg.
func New(cfg Config) (*Server, error) {
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	cache, err := NewCache(cfg.CacheBytes, cfg.CacheDir)
	if err != nil {
		return nil, err
	}
	base := cfg.BaseContext
	if base == nil {
		base = context.Background()
	}
	baseCtx, baseCancel := context.WithCancel(base)
	s := &Server{
		cfg:        cfg,
		pool:       runner.NewPool(cfg.Workers, cfg.QueueDepth),
		cache:      cache,
		metrics:    &metrics{},
		baseCtx:    baseCtx,
		baseCancel: baseCancel,
		jobs:       make(map[string]*job),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/results", s.handleResults)
	mux.HandleFunc("GET /v1/experiments/{fig}", s.handleExperiment)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux = mux
	return s, nil
}

// Handler returns the HTTP handler tree.
func (s *Server) Handler() http.Handler { return s.mux }

// Close drains the service: no new tasks are accepted and queued plus
// in-flight jobs run to completion. If ctx expires first, the remaining
// jobs are canceled and Close waits for the workers to observe it.
func (s *Server) Close(ctx context.Context) {
	done := make(chan struct{})
	go func() { s.pool.Close(); close(done) }()
	select {
	case <-done:
	case <-ctx.Done():
		s.baseCancel() // cancel every job context; bodies return promptly
		<-done
	}
	s.baseCancel()
}

// CacheStats exposes the cache counters (smoke tests, introspection).
func (s *Server) CacheStats() CacheStats { return s.cache.Stats() }

// ---------- scheduling ----------

// normalize validates a spec against the service limits.
func (s *Server) normalize(spec experiments.SimSpec) (experiments.SimSpec, error) {
	spec, err := spec.Normalize()
	if err != nil {
		return spec, err
	}
	if s.cfg.MaxInstructions > 0 && spec.Instructions > s.cfg.MaxInstructions {
		return spec, fmt.Errorf("spec: instruction budget %d exceeds the service limit %d (pass a smaller \"instructions\")",
			spec.Instructions, s.cfg.MaxInstructions)
	}
	return spec, nil
}

// getOrSubmit returns the job for a normalized spec, scheduling a fresh
// one when none is live; fresh reports whether this call scheduled it.
// pinned marks an async submitter (POST /v1/jobs): the job then runs to
// completion even with no waiter attached. A cached result short-circuits
// into an already-done job. Failed or canceled jobs are replaced on
// resubmission (retry semantics). The caller must pair a non-pinned
// acquisition with release().
func (s *Server) getOrSubmit(spec experiments.SimSpec, pinned bool) (j *job, fresh bool, err error) {
	id := spec.Hash()
	s.mu.Lock()
	defer s.mu.Unlock()
	if j, ok := s.jobs[id]; ok && j.status != statusFailed && j.status != statusCanceled {
		if j.status == statusDone {
			// Route the lookup through the cache so the hit is counted
			// and the entry's LRU position refreshed; the cache holds the
			// same bytes runJob stored (the job keeps its own copy in
			// case the entry was evicted meanwhile).
			if b, hit := s.cache.Get(id); hit {
				j.result = b
			}
		}
		if pinned {
			j.pinned = true
		} else {
			j.refs++
		}
		return j, false, nil
	}
	if b, ok := s.cache.Get(id); ok {
		j := &job{id: id, spec: spec, status: statusDone, result: b, done: make(chan struct{})}
		close(j.done)
		s.jobs[id] = j
		return j, false, nil
	}
	ctx, cancel := context.WithCancel(s.baseCtx)
	if s.cfg.JobTimeout > 0 {
		inner := ctx
		var tcancel context.CancelFunc
		inner, tcancel = context.WithTimeout(inner, s.cfg.JobTimeout)
		prev := cancel
		cancel = func() { tcancel(); prev() }
		ctx = inner
	}
	j = &job{id: id, spec: spec, status: statusQueued, done: make(chan struct{}), cancel: cancel, pinned: pinned}
	if !pinned {
		j.refs = 1
	}
	if err := s.pool.Submit(runner.Task{
		Label: spec.Benchmark + "/" + spec.Scheme,
		Ctx:   ctx,
		Run:   func(ctx context.Context) { s.runJob(ctx, j) },
	}); err != nil {
		cancel()
		return nil, false, err
	}
	s.jobs[id] = j
	return j, true, nil
}

// release detaches a sync waiter. When the last waiter leaves an unpinned,
// unfinished job, its context is canceled: nobody wants the result, so the
// worker (or the queue slot) is handed back — the client-abandon path.
func (s *Server) release(j *job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if j.refs > 0 {
		j.refs--
	}
	if j.refs == 0 && !j.pinned && j.status != statusDone && j.status != statusFailed && j.status != statusCanceled {
		j.cancel()
	}
}

// runJob is the pool task body: run the simulation, cache and record the
// outcome, wake the waiters.
func (s *Server) runJob(ctx context.Context, j *job) {
	s.mu.Lock()
	j.status = statusRunning
	s.mu.Unlock()

	start := time.Now()
	res, err := runSpec(ctx, j.spec)
	wall := time.Since(start)

	status := statusDone
	var msg string
	var body []byte
	var cycles uint64
	if err != nil {
		status = statusFailed
		if ctx.Err() != nil || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			status = statusCanceled
		}
		msg = err.Error()
	} else if body, err = res.JSON(); err != nil {
		status = statusFailed
		msg = err.Error()
	} else {
		s.cache.Put(j.id, body)
		cycles = res.Cycles
	}

	s.mu.Lock()
	j.status = status
	j.errMsg = msg
	j.result = body
	j.wall = wall
	if j.cancel != nil {
		j.cancel() // release the timeout timer
	}
	s.mu.Unlock()
	s.metrics.observeJob(status, wall, cycles)
	close(j.done)
}

// snapshot copies a job's mutable state under the lock.
func (s *Server) snapshot(j *job) (status, errMsg string, result []byte, wall time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return j.status, j.errMsg, j.result, j.wall
}

// ---------- HTTP plumbing ----------

type jobDoc struct {
	ID          string              `json:"id"`
	Spec        experiments.SimSpec `json:"spec"`
	Status      string              `json:"status"`
	Cached      bool                `json:"cached,omitempty"`
	Error       string              `json:"error,omitempty"`
	WallSeconds float64             `json:"wall_seconds,omitempty"`
	Result      json.RawMessage     `json:"result,omitempty"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// writeBackpressure is the explicit 429 path for a saturated queue.
func writeBackpressure(w http.ResponseWriter) {
	w.Header().Set("Retry-After", "1")
	writeError(w, http.StatusTooManyRequests, "job queue full; retry later")
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":   "ok",
		"queued":   s.pool.Queued(),
		"inflight": s.pool.InFlight(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.metrics.render(w, s.pool.Queued(), s.pool.InFlight(), s.cache.Stats())
}

// handleSubmit accepts a job spec and schedules it (or answers from
// cache). 200 done (cached), 202 scheduled, 400 bad spec, 429 queue full.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec experiments.SimSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "bad job spec: %v", err)
		return
	}
	spec, err := s.normalize(spec)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	j, fresh, err := s.getOrSubmit(spec, true)
	if errors.Is(err, runner.ErrQueueFull) || errors.Is(err, runner.ErrPoolClosed) {
		writeBackpressure(w)
		return
	}
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	status, errMsg, result, wall := s.snapshot(j)
	doc := jobDoc{ID: j.id, Spec: j.spec, Status: status, Error: errMsg, WallSeconds: wall.Seconds()}
	code := http.StatusAccepted
	if status == statusDone {
		code = http.StatusOK
		doc.Cached = !fresh
		doc.Result = result
	}
	writeJSON(w, code, doc)
}

// handleJob reports a job's state; the result rides along once done.
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, "no such job %q", id)
		return
	}
	status, errMsg, result, wall := s.snapshot(j)
	writeJSON(w, http.StatusOK, jobDoc{
		ID: j.id, Spec: j.spec, Status: status, Error: errMsg,
		WallSeconds: wall.Seconds(), Result: result,
	})
}

// specFromQuery builds a SimSpec from URL parameters.
func specFromQuery(r *http.Request) (experiments.SimSpec, error) {
	q := r.URL.Query()
	spec := experiments.SimSpec{
		Benchmark: q.Get("benchmark"),
		Scheme:    q.Get("scheme"),
	}
	if v := q.Get("insts"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			return spec, fmt.Errorf("bad insts %q", v)
		}
		spec.Instructions = n
	}
	if v := q.Get("seed"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return spec, fmt.Errorf("bad seed %q", v)
		}
		spec.Seed = n
	}
	if v := q.Get("sanitize"); v != "" {
		b, err := strconv.ParseBool(v)
		if err != nil {
			return spec, fmt.Errorf("bad sanitize %q", v)
		}
		spec.Sanitize = b
	}
	return spec, nil
}

// handleResults is the synchronous path: cache hit returns immediately
// (X-Cache: hit); a miss schedules the job and waits. The waiter's request
// context is the job's client-abandon signal.
func (s *Server) handleResults(w http.ResponseWriter, r *http.Request) {
	spec, err := specFromQuery(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	spec, err = s.normalize(spec)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	id := spec.Hash()
	if b, ok := s.cache.Get(id); ok {
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("X-Cache", "hit")
		_, _ = w.Write(b)
		return
	}
	j, _, err := s.getOrSubmit(spec, false)
	if errors.Is(err, runner.ErrQueueFull) || errors.Is(err, runner.ErrPoolClosed) {
		writeBackpressure(w)
		return
	}
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	defer s.release(j)
	select {
	case <-j.done:
	case <-r.Context().Done():
		// Client gone; release (deferred) cancels the job if unwanted.
		return
	}
	status, errMsg, result, _ := s.snapshot(j)
	switch status {
	case statusDone:
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("X-Cache", "miss")
		_, _ = w.Write(result)
	case statusCanceled:
		writeError(w, http.StatusServiceUnavailable, "job canceled: %s", errMsg)
	default:
		writeError(w, http.StatusInternalServerError, "job failed: %s", errMsg)
	}
}

// ---------- figure composition ----------

// figDoc is a figure assembled from per-cell cached results.
type figDoc struct {
	Schema       string             `json:"schema"`
	Instructions uint64             `json:"instructions"`
	Seed         int64              `json:"seed"`
	Cells        int                `json:"cells"`
	CachedCells  int                `json:"cached_cells"`
	Rows         []figRow           `json:"rows"`
	Geomean      map[string]float64 `json:"geomean"`
}

type figRow struct {
	Benchmark  string             `json:"benchmark"`
	Normalized map[string]float64 `json:"normalized"`
}

// handleExperiment composes fig14 (normalized execution time) or fig18
// (normalized traffic) from the 16x5 evaluation matrix, cell by cell:
// cached cells are free, missing cells are scheduled on the pool with
// queue-aware pacing. Repeating the request against a warm daemon touches
// no simulator at all.
func (s *Server) handleExperiment(w http.ResponseWriter, r *http.Request) {
	fig := r.PathValue("fig")
	var metric func(*experiments.SimResult) float64
	switch fig {
	case "fig14":
		metric = func(res *experiments.SimResult) float64 { return float64(res.Cycles) }
	case "fig18":
		metric = func(res *experiments.SimResult) float64 { return float64(res.TrafficBytes) }
	default:
		writeError(w, http.StatusNotFound, "unknown experiment %q (have fig14, fig18)", fig)
		return
	}
	base, err := specFromQuery(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if base.Benchmark != "" || base.Scheme != "" {
		writeError(w, http.StatusBadRequest, "experiments take insts/seed/sanitize only; benchmark and scheme are fixed by the matrix")
		return
	}

	var specs []experiments.SimSpec
	for _, p := range experiments.MatrixBenchmarks() {
		for _, scheme := range instrument.Schemes() {
			spec := base
			spec.Benchmark = p
			spec.Scheme = scheme.String()
			spec, err := s.normalize(spec)
			if err != nil {
				writeError(w, http.StatusBadRequest, "%v", err)
				return
			}
			specs = append(specs, spec)
		}
	}
	cells, cachedCells, err := s.collect(r.Context(), specs)
	if errors.Is(err, runner.ErrQueueFull) || errors.Is(err, runner.ErrPoolClosed) {
		writeBackpressure(w)
		return
	}
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}

	doc := figDoc{
		Schema:       "aosd/" + fig + "/v1",
		Instructions: specs[0].Instructions,
		Seed:         specs[0].Seed,
		Cells:        len(specs),
		CachedCells:  cachedCells,
		Geomean:      map[string]float64{},
	}
	series := map[string][]float64{}
	baselineName := instrument.Baseline.String()
	for _, p := range experiments.MatrixBenchmarks() {
		baseRes := cells[cellKey(p, baselineName)]
		baseVal := metric(baseRes)
		if baseVal == 0 {
			writeError(w, http.StatusInternalServerError, "%s: %s baseline is zero; cannot normalize", fig, p)
			return
		}
		row := figRow{Benchmark: p, Normalized: map[string]float64{}}
		for _, scheme := range instrument.Schemes() {
			n := metric(cells[cellKey(p, scheme.String())]) / baseVal
			row.Normalized[scheme.String()] = n
			if scheme != instrument.Baseline {
				series[scheme.String()] = append(series[scheme.String()], n)
			}
		}
		doc.Rows = append(doc.Rows, row)
	}
	for _, k := range stats.SortedKeys(series) {
		doc.Geomean[k] = stats.Geomean(series[k])
	}
	writeJSON(w, http.StatusOK, doc)
}

func cellKey(benchmark, scheme string) string { return benchmark + "/" + scheme }

// collect gathers one SimResult per spec: from cache when possible,
// otherwise scheduled on the pool. Backpressure-aware: when the queue is
// full it waits for one of its own pending cells before submitting more,
// and only reports ErrQueueFull once it has nothing left to wait on (the
// queue is saturated by other clients). ctx abandons the whole collection.
func (s *Server) collect(ctx context.Context, specs []experiments.SimSpec) (map[string]*experiments.SimResult, int, error) {
	out := make(map[string]*experiments.SimResult, len(specs))
	cached := 0
	var pending []*job
	defer func() {
		for _, j := range pending {
			s.release(j)
		}
	}()

	decode := func(b []byte) (*experiments.SimResult, error) {
		var res experiments.SimResult
		if err := json.Unmarshal(b, &res); err != nil {
			return nil, fmt.Errorf("corrupt cached result: %w", err)
		}
		return &res, nil
	}

	waitIdx := 0
	for _, spec := range specs {
		if b, ok := s.cache.Get(spec.Hash()); ok {
			res, err := decode(b)
			if err != nil {
				return nil, 0, err
			}
			out[cellKey(spec.Benchmark, spec.Scheme)] = res
			cached++
			continue
		}
		for {
			j, _, err := s.getOrSubmit(spec, false)
			if err == nil {
				pending = append(pending, j)
				break
			}
			if !errors.Is(err, runner.ErrQueueFull) {
				return nil, 0, err
			}
			if waitIdx >= len(pending) {
				return nil, 0, err // saturated by other clients
			}
			select {
			case <-pending[waitIdx].done:
				waitIdx++
			case <-ctx.Done():
				return nil, 0, ctx.Err()
			}
		}
	}
	for _, j := range pending {
		select {
		case <-j.done:
		case <-ctx.Done():
			return nil, 0, ctx.Err()
		}
		status, errMsg, result, _ := s.snapshot(j)
		if status != statusDone {
			return nil, 0, fmt.Errorf("cell %s/%s %s: %s", j.spec.Benchmark, j.spec.Scheme, status, errMsg)
		}
		res, err := decode(result)
		if err != nil {
			return nil, 0, err
		}
		out[cellKey(j.spec.Benchmark, j.spec.Scheme)] = res
	}
	return out, cached, nil
}
