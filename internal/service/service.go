// Package service is the aosd serving layer: a stdlib-only JSON HTTP API
// that turns the one-shot evaluation harness into a queryable, memoized
// simulation service. Jobs (benchmark, scheme, budget, seed, sanitize)
// are scheduled on a persistent internal/runner pool behind a bounded
// queue with explicit backpressure (429 + Retry-After when full), and
// results are memoized in a content-addressed cache keyed by the SHA-256
// of the spec's canonical JSON (internal/experiments.SimSpec). Because
// simulations are pure functions of their spec, a warm cache answers
// repeat requests — including whole-figure compositions — without
// re-simulating anything.
//
// Endpoints:
//
//	POST /v1/jobs                  submit a spec; 202 while scheduled, 200 from cache
//	GET  /v1/jobs/{id}             poll a job (id = spec hash)
//	GET  /v1/jobs/{id}/events      SSE progress stream
//	GET  /v1/jobs/{id}/trace       merged Perfetto doc: job spans + sim timeline
//	GET  /v1/traces/{id}           span tree of any recent trace
//	GET  /v1/results?...           synchronous cached lookup (runs on miss)
//	GET  /v1/experiments/fig14     figure composed from per-cell cached results
//	GET  /v1/experiments/fig18     traffic figure, same cells
//	GET  /healthz                  liveness
//	GET  /metrics                  Prometheus text exposition (incl. per-endpoint SLO series)
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"runtime/debug"
	"strconv"
	"sync"
	"time"

	"aos/internal/experiments"
	"aos/internal/instrument"
	"aos/internal/runner"
	"aos/internal/sampling"
	"aos/internal/stats"
	"aos/internal/telemetry"
	"aos/internal/tracespan"
)

// Job lifecycle states.
const (
	statusQueued   = "queued"
	statusRunning  = "running"
	statusDone     = "done"
	statusFailed   = "failed"
	statusCanceled = "canceled"
)

// runSpecFull is the simulation entry point, indirected so tests can
// inject slow, counting or panicking run bodies.
var runSpecFull = experiments.RunSpecFull

// Config sizes the service.
type Config struct {
	// Workers bounds concurrent simulations (<= 0 uses GOMAXPROCS).
	Workers int
	// QueueDepth bounds the pending-job queue (<= 0 uses 64). A full
	// queue is surfaced as HTTP 429 with a Retry-After hint.
	QueueDepth int
	// CacheBytes is the in-memory result-cache budget (<= 0 uses 64 MiB).
	CacheBytes int64
	// CacheDir, when non-empty, spills every result to disk so the cache
	// survives restarts and memory-pressure evictions.
	CacheDir string
	// JobTimeout caps each job's run time (0 = unlimited). Timed-out jobs
	// finish as canceled.
	JobTimeout time.Duration
	// MaxInstructions rejects specs whose normalized instruction budget
	// exceeds it (0 = unlimited) — the service's overload guard against
	// full-paper-scale runs on an interactive daemon.
	MaxInstructions uint64
	// BaseContext is the daemon lifetime; async jobs run under it (nil =
	// context.Background()).
	BaseContext context.Context
	// TelemetryInterval attaches the flight recorder to every fresh run
	// (commit-cycle sampling cadence; 0 disables). Sampled jobs carry a
	// telemetry summary in their job document; results themselves are
	// byte-identical either way, so cache entries stay address-stable.
	TelemetryInterval uint64
	// Logger receives the service's structured logs; every job-scoped
	// record carries the job's correlation ID. Nil discards.
	Logger *slog.Logger
	// Tracing enables the distributed-tracing layer: W3C traceparent
	// propagation at the HTTP edge and per-job span trees (queue wait,
	// cache lookup, execution, composition) served as Perfetto documents
	// from /v1/jobs/{id}/trace and /v1/traces/{id}. Disabled (false),
	// the instrumentation is a nil-pointer no-op: results are
	// byte-identical and the span call sites never allocate.
	Tracing bool
	// SLOAvailability is the availability objective the error-budget
	// burn gauges are computed against (0 uses 0.99). Availability
	// counts 5xx responses as errors; shed load (429) is not an error.
	SLOAvailability float64
}

// job is one scheduled simulation, identified by its spec hash. Fields
// after the immutable header are guarded by Server.mu.
type job struct {
	id   string
	spec experiments.SimSpec

	status  string
	errMsg  string
	result  []byte // canonical SimResult JSON when done
	wall    time.Duration
	summary *telemetry.Summary // per-job flight-recorder digest (sampled runs)
	done    chan struct{}
	cancel  context.CancelFunc
	refs    int  // live sync waiters
	pinned  bool // an async submitter wants the result regardless of waiters

	// events streams lifecycle and instruction progress to SSE
	// subscribers (nil for jobs materialized from cache). finish
	// guards the terminal transition — publish the done frame, close
	// events, close done — so a panicking run body and the normal
	// path can never double-close.
	events *broadcaster
	finish sync.Once

	// trace is the job's span tree (nil with tracing off — every span
	// call site is then a no-op); queueSpan is the admission-to-worker
	// wait span, open from submission until runJob starts. timeline is
	// the run's flight-recorder timeline when telemetry was on, kept so
	// /v1/jobs/{id}/trace can merge spans and sim slices.
	trace     *tracespan.Trace
	queueSpan *tracespan.Span
	timeline  *telemetry.Timeline
}

// Server is the aosd daemon core, embeddable in tests via Handler.
type Server struct {
	cfg     Config
	pool    *runner.Pool
	cache   *Cache
	metrics *metrics
	mux     *http.ServeMux
	// checkpoints is the daemon-lifetime store for sampled jobs: window
	// checkpoints populated by one sampled run are resumed by every later
	// sampled run of the same cell (results are byte-identical either
	// way, so the store never changes what the cache sees).
	checkpoints *sampling.Store

	baseCtx    context.Context
	baseCancel context.CancelFunc
	log        *slog.Logger
	start      time.Time

	mu   sync.Mutex
	jobs map[string]*job
	// traces is the recent-trace ring (trace.go): traceIDs keeps FIFO
	// order for eviction at maxTraces.
	traces   map[string]*tracespan.Trace
	traceIDs []string
}

// New builds a Server (starting its worker pool) from cfg.
func New(cfg Config) (*Server, error) {
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	cache, err := NewCache(cfg.CacheBytes, cfg.CacheDir)
	if err != nil {
		return nil, err
	}
	base := cfg.BaseContext
	if base == nil {
		base = context.Background()
	}
	baseCtx, baseCancel := context.WithCancel(base)
	logger := cfg.Logger
	if logger == nil {
		logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	s := &Server{
		cfg:         cfg,
		pool:        runner.NewPool(cfg.Workers, cfg.QueueDepth),
		cache:       cache,
		metrics:     &metrics{sloObjective: cfg.SLOAvailability},
		baseCtx:     baseCtx,
		baseCancel:  baseCancel,
		log:         logger,
		start:       time.Now(),
		jobs:        make(map[string]*job),
		checkpoints: sampling.NewStore(),
	}
	// Pool workers bracket every task with records carrying the job's
	// correlation id, continuing the trail the service layer starts.
	s.pool.SetLogger(logger)
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.route("submit", s.handleSubmit))
	mux.HandleFunc("GET /v1/jobs/{id}", s.route("job", s.handleJob))
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.route("events", s.handleJobEvents))
	mux.HandleFunc("GET /v1/jobs/{id}/trace", s.route("job_trace", s.handleJobTrace))
	mux.HandleFunc("GET /v1/traces/{id}", s.route("trace", s.handleTraceByID))
	mux.HandleFunc("GET /v1/results", s.route("results", s.handleResults))
	mux.HandleFunc("GET /v1/experiments/{fig}", s.route("experiment", s.handleExperiment))
	mux.HandleFunc("GET /healthz", s.route("healthz", s.handleHealthz))
	mux.HandleFunc("GET /metrics", s.route("metrics", s.handleMetrics))
	s.mux = mux
	return s, nil
}

// Handler returns the HTTP handler tree.
func (s *Server) Handler() http.Handler { return s.mux }

// Close drains the service: no new tasks are accepted and queued plus
// in-flight jobs run to completion. If ctx expires first, the remaining
// jobs are canceled and Close waits for the workers to observe it.
func (s *Server) Close(ctx context.Context) {
	done := make(chan struct{})
	go func() { s.pool.Close(); close(done) }()
	select {
	case <-done:
	case <-ctx.Done():
		s.baseCancel() // cancel every job context; bodies return promptly
		<-done
	}
	s.baseCancel()
}

// CacheStats exposes the cache counters (smoke tests, introspection).
func (s *Server) CacheStats() CacheStats { return s.cache.Stats() }

// ---------- scheduling ----------

// normalize validates a spec against the service limits.
func (s *Server) normalize(spec experiments.SimSpec) (experiments.SimSpec, error) {
	spec, err := spec.Normalize()
	if err != nil {
		return spec, err
	}
	if s.cfg.MaxInstructions > 0 && spec.Instructions > s.cfg.MaxInstructions {
		return spec, fmt.Errorf("spec: instruction budget %d exceeds the service limit %d (pass a smaller \"instructions\")",
			spec.Instructions, s.cfg.MaxInstructions)
	}
	return spec, nil
}

// getOrSubmit returns the job for a normalized spec, scheduling a fresh
// one when none is live; fresh reports whether this call scheduled it.
// pinned marks an async submitter (POST /v1/jobs): the job then runs to
// completion even with no waiter attached. A cached result short-circuits
// into an already-done job. Failed or canceled jobs are replaced on
// resubmission (retry semantics). The caller must pair a non-pinned
// acquisition with release().
//
// tr, when non-nil, is the submitting request's trace: the admission
// decision is recorded as a cache-lookup span (hit attribute included),
// and a freshly scheduled job adopts the trace — its queue wait and
// execution spans then land in the same tree. The first submitter's
// trace wins; joins of a live job only record their lookup span.
func (s *Server) getOrSubmit(spec experiments.SimSpec, pinned bool, tr *tracespan.Trace) (j *job, fresh bool, err error) {
	id := spec.Hash()
	s.mu.Lock()
	defer s.mu.Unlock()
	lookup := tr.StartSpan("service_cache_lookup")
	defer lookup.End()
	if j, ok := s.jobs[id]; ok && j.status != statusFailed && j.status != statusCanceled {
		if j.status == statusDone {
			// Route the lookup through the cache so the hit is counted
			// and the entry's LRU position refreshed; the cache holds the
			// same bytes runJob stored (the job keeps its own copy in
			// case the entry was evicted meanwhile).
			if b, hit := s.cache.Get(id); hit {
				j.result = b
			}
		}
		lookup.SetAttr("hit", 1)
		lookup.SetAttrStr("job", id)
		if pinned {
			j.pinned = true
		} else {
			j.refs++
		}
		return j, false, nil
	}
	if b, ok := s.cache.Get(id); ok {
		lookup.SetAttr("hit", 1)
		lookup.SetAttrStr("job", id)
		j := &job{id: id, spec: spec, status: statusDone, result: b, done: make(chan struct{})}
		close(j.done)
		s.jobs[id] = j
		return j, false, nil
	}
	lookup.SetAttr("hit", 0)
	lookup.SetAttrStr("job", id)
	ctx, cancel := context.WithCancel(s.baseCtx)
	if s.cfg.JobTimeout > 0 {
		inner := ctx
		var tcancel context.CancelFunc
		inner, tcancel = context.WithTimeout(inner, s.cfg.JobTimeout)
		prev := cancel
		cancel = func() { tcancel(); prev() }
		ctx = inner
	}
	j = &job{id: id, spec: spec, status: statusQueued, done: make(chan struct{}), cancel: cancel, pinned: pinned,
		events: newBroadcaster(s.metrics.observeSSEDrop), trace: tr}
	j.queueSpan = tr.StartSpan("service_queue_wait")
	if !pinned {
		j.refs = 1
	}
	if err := s.pool.Submit(runner.Task{
		ID:    id,
		Label: spec.Benchmark + "/" + spec.Scheme,
		Ctx:   ctx,
		Run:   func(ctx context.Context) { s.runJob(ctx, j) },
	}); err != nil {
		cancel()
		j.queueSpan.End()
		return nil, false, err
	}
	s.jobs[id] = j
	return j, true, nil
}

// release detaches a sync waiter. When the last waiter leaves an unpinned,
// unfinished job, its context is canceled: nobody wants the result, so the
// worker (or the queue slot) is handed back — the client-abandon path.
func (s *Server) release(j *job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if j.refs > 0 {
		j.refs--
	}
	if j.refs == 0 && !j.pinned && j.status != statusDone && j.status != statusFailed && j.status != statusCanceled {
		j.cancel()
	}
}

// jobLogger returns the job-scoped logger: every record carries the
// job's correlation ID (the spec hash) plus its identity fields.
func (s *Server) jobLogger(j *job) *slog.Logger {
	return s.log.With("job", j.id, "benchmark", j.spec.Benchmark, "scheme", j.spec.Scheme)
}

// runJob is the pool task body: run the simulation, cache and record the
// outcome, wake the waiters. A panicking run body is converted into a
// failed job here — the finish guard closes the done channel and the
// event stream exactly once, so waiters and SSE subscribers never hang
// behind a crashed simulation.
func (s *Server) runJob(ctx context.Context, j *job) {
	log := s.jobLogger(j)
	s.mu.Lock()
	j.status = statusRunning
	queueSpan := j.queueSpan
	s.mu.Unlock()
	queueSpan.End() // admission-to-worker wait is over
	j.events.publish(jobEvent{Type: "status", Status: statusRunning})
	log.Info("job started", "instructions", j.spec.Instructions, "seed", j.spec.Seed)

	execSpan := j.trace.StartSpan("runner_execute")
	execSpan.SetAttrStr("benchmark", j.spec.Benchmark)
	execSpan.SetAttrStr("scheme", j.spec.Scheme)

	start := time.Now()
	defer func() {
		if v := recover(); v != nil {
			s.metrics.observePanic()
			log.Error("job panicked", "panic", fmt.Sprint(v))
			s.finishJob(j, statusFailed, fmt.Sprintf("internal error: job panicked: %v", v),
				nil, time.Since(start), 0, nil, nil)
		}
	}()

	runSpan := j.trace.StartSpan("experiments_run")
	res, tl, err := runSpecFull(ctx, j.spec, experiments.RunConfig{
		TelemetryInterval: s.cfg.TelemetryInterval,
		Checkpoints:       s.checkpoints,
		JobID:             j.id,
		OnProgress: func(done, total uint64) {
			ev := jobEvent{Type: "progress", Done: done, Total: total}
			if total > 0 {
				ev.Percent = 100 * float64(done) / float64(total)
			}
			j.events.publish(ev)
			s.metrics.observeProgress()
		},
	})
	runSpan.End()
	wall := time.Since(start)

	status := statusDone
	var msg string
	var body []byte
	var cycles uint64
	if err != nil {
		status = statusFailed
		if ctx.Err() != nil || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			status = statusCanceled
		}
		msg = err.Error()
	} else if body, err = res.JSON(); err != nil {
		status = statusFailed
		msg = err.Error()
	} else {
		s.cache.Put(j.id, body)
		cycles = res.Cycles
	}
	execSpan.SetAttrStr("status", status)
	execSpan.SetAttr("cycles", cycles)
	sum := tl.Summarize()
	if sum != nil {
		s.metrics.observeTelemetry(sum.Samples)
	}
	s.finishJob(j, status, msg, body, wall, cycles, sum, tl)
	if j.trace != nil {
		log = log.With("trace", j.trace.TraceID().String())
	}
	switch status {
	case statusDone:
		log.Info("job finished", "wall", wall, "cycles", cycles)
	default:
		log.Warn("job "+status, "wall", wall, "error", msg)
	}
}

// finishJob records a job's terminal state and wakes everyone exactly
// once: sync waiters via the done channel, SSE subscribers via the
// terminal event frame. Safe to reach from both the normal path and
// the panic recovery path.
func (s *Server) finishJob(j *job, status, msg string, body []byte, wall time.Duration, cycles uint64, sum *telemetry.Summary, tl *telemetry.Timeline) {
	s.mu.Lock()
	j.status = status
	j.errMsg = msg
	j.result = body
	j.wall = wall
	j.summary = sum
	if tl != nil {
		j.timeline = tl
	}
	if j.cancel != nil {
		j.cancel() // release the timeout timer
	}
	s.mu.Unlock()
	// Sweep open spans (panic and cancellation paths cannot be trusted
	// to End cleanly) so the exported tree never carries open spans.
	j.trace.EndOpen()
	s.metrics.observeJob(status, wall, cycles)
	j.finish.Do(func() {
		j.events.publish(jobEvent{Type: "done", Status: status, Error: msg, WallSeconds: wall.Seconds()})
		j.events.close()
		close(j.done)
	})
}

// snapshot copies a job's mutable state under the lock.
func (s *Server) snapshot(j *job) (status, errMsg string, result []byte, wall time.Duration, sum *telemetry.Summary) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return j.status, j.errMsg, j.result, j.wall, j.summary
}

// ---------- HTTP plumbing ----------

type jobDoc struct {
	ID          string              `json:"id"`
	Spec        experiments.SimSpec `json:"spec"`
	Status      string              `json:"status"`
	Cached      bool                `json:"cached,omitempty"`
	Error       string              `json:"error,omitempty"`
	WallSeconds float64             `json:"wall_seconds,omitempty"`
	Result      json.RawMessage     `json:"result,omitempty"`
	// Telemetry is the flight-recorder digest for sampled fresh runs
	// (absent when telemetry is off or the result came from cache).
	Telemetry *telemetry.Summary `json:"telemetry,omitempty"`
	// TraceID identifies the job's span tree when tracing is on; fetch
	// the merged Perfetto document from /v1/jobs/{id}/trace.
	TraceID string `json:"trace_id,omitempty"`
}

// jobTraceID snapshots the job's trace id, "" when untraced.
func (s *Server) jobTraceID(j *job) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if j.trace == nil {
		return ""
	}
	return j.trace.TraceID().String()
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// writeBackpressure is the explicit 429 path for a saturated queue. The
// Retry-After hint scales with how backed up the queue is — a client
// bouncing off a briefly-full queue retries in a second, one hitting a
// deeply backlogged server backs off proportionally (capped at 30 s).
func (s *Server) writeBackpressure(w http.ResponseWriter) {
	retry := 1
	if depth := s.cfg.QueueDepth; depth > 0 {
		retry += 29 * s.pool.Queued() / depth
		if retry > 30 {
			retry = 30
		}
	}
	w.Header().Set("Retry-After", strconv.Itoa(retry))
	writeError(w, http.StatusTooManyRequests, "job queue full; retry later")
}

// buildInfo resolves the serving binary's identity once: the main
// module version plus the VCS revision when the build recorded one.
var buildInfo = sync.OnceValue(func() map[string]string {
	info := map[string]string{"go": "", "version": "(devel)", "revision": ""}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return info
	}
	info["go"] = bi.GoVersion
	if bi.Main.Version != "" {
		info["version"] = bi.Main.Version
	}
	for _, kv := range bi.Settings {
		switch kv.Key {
		case "vcs.revision":
			info["revision"] = kv.Value
		case "vcs.modified":
			info["modified"] = kv.Value
		}
	}
	return info
})

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":         "ok",
		"queued":         s.pool.Queued(),
		"inflight":       s.pool.InFlight(),
		"uptime_seconds": time.Since(s.start).Seconds(),
		"build":          buildInfo(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.metrics.render(w, s.pool.Queued(), s.cfg.QueueDepth, s.pool.InFlight(), s.cache.Stats())
}

// handleSubmit accepts a job spec and schedules it (or answers from
// cache). 200 done (cached), 202 scheduled, 400 bad spec, 429 queue full.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec experiments.SimSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "bad job spec: %v", err)
		return
	}
	spec, err := s.normalize(spec)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	tr := s.traceFor(r)
	ingress := tr.StartSpan("service_ingress")
	ingress.SetAttrStr("endpoint", "submit")
	defer ingress.End()
	echoTraceparent(w, tr)
	j, fresh, err := s.getOrSubmit(spec, true, tr)
	if errors.Is(err, runner.ErrQueueFull) || errors.Is(err, runner.ErrPoolClosed) {
		s.writeBackpressure(w)
		return
	}
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	status, errMsg, result, wall, sum := s.snapshot(j)
	doc := jobDoc{ID: j.id, Spec: j.spec, Status: status, Error: errMsg, WallSeconds: wall.Seconds(),
		Telemetry: sum, TraceID: s.jobTraceID(j)}
	code := http.StatusAccepted
	if status == statusDone {
		code = http.StatusOK
		doc.Cached = !fresh
		doc.Result = result
	}
	writeJSON(w, code, doc)
}

// handleJob reports a job's state; the result rides along once done.
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, "no such job %q", id)
		return
	}
	status, errMsg, result, wall, sum := s.snapshot(j)
	writeJSON(w, http.StatusOK, jobDoc{
		ID: j.id, Spec: j.spec, Status: status, Error: errMsg,
		WallSeconds: wall.Seconds(), Result: result, Telemetry: sum,
		TraceID: s.jobTraceID(j),
	})
}

// handleJobEvents streams a job's lifecycle as server-sent events:
// status transitions, instruction progress frames, and a terminal done
// frame, after which the stream ends. Already-finished jobs get the
// terminal frame immediately.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, "no such job %q", id)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported by this connection")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	s.metrics.sseStart()
	defer s.metrics.sseEnd()

	// terminal composes the final frame from the job's settled state
	// (richer than the broadcast frame: it carries the telemetry digest).
	terminal := func() {
		status, errMsg, _, wall, sum := s.snapshot(j)
		ev := struct {
			jobEvent
			Telemetry *telemetry.Summary `json:"telemetry,omitempty"`
		}{
			jobEvent:  jobEvent{Type: "done", Status: status, Error: errMsg, WallSeconds: wall.Seconds()},
			Telemetry: sum,
		}
		_ = writeSSE(w, "done", ev)
		fl.Flush()
	}

	var sub chan jobEvent
	if j.events != nil {
		var last *jobEvent
		sub, last = j.events.subscribe()
		defer j.events.unsubscribe(sub)
		if last != nil && last.Type != "done" {
			if err := writeSSE(w, last.Type, last); err != nil {
				return
			}
			fl.Flush()
		}
	}
	for {
		select {
		case ev, ok := <-sub:
			if !ok {
				// Stream closed by the job's terminal transition; fall
				// through to the done channel for the settled state.
				sub = nil // a nil channel blocks forever
				continue
			}
			if ev.Type == "done" {
				// Settled state (summary included) comes from terminal().
				continue
			}
			if err := writeSSE(w, ev.Type, ev); err != nil {
				return
			}
			fl.Flush()
		case <-j.done:
			terminal()
			return
		case <-r.Context().Done():
			return
		}
	}
}

// specFromQuery builds a SimSpec from URL parameters.
func specFromQuery(r *http.Request) (experiments.SimSpec, error) {
	q := r.URL.Query()
	spec := experiments.SimSpec{
		Benchmark: q.Get("benchmark"),
		Scheme:    q.Get("scheme"),
	}
	if v := q.Get("insts"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			return spec, fmt.Errorf("bad insts %q", v)
		}
		spec.Instructions = n
	}
	if v := q.Get("seed"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return spec, fmt.Errorf("bad seed %q", v)
		}
		spec.Seed = n
	}
	if v := q.Get("sanitize"); v != "" {
		b, err := strconv.ParseBool(v)
		if err != nil {
			return spec, fmt.Errorf("bad sanitize %q", v)
		}
		spec.Sanitize = b
	}
	// sample=1 opts the job into SMARTS sampled simulation (defaults from
	// Normalize); the sample_* knobs refine the schedule and imply sample.
	sampled := false
	var sb experiments.SamplingSpec
	if v := q.Get("sample"); v != "" {
		b, err := strconv.ParseBool(v)
		if err != nil {
			return spec, fmt.Errorf("bad sample %q", v)
		}
		sampled = b
	}
	for _, p := range []struct {
		name string
		dst  *uint64
	}{
		{"sample_detail", &sb.Detail},
		{"sample_window", &sb.Window},
		{"sample_gap", &sb.Gap},
	} {
		if v := q.Get(p.name); v != "" {
			n, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				return spec, fmt.Errorf("bad %s %q", p.name, v)
			}
			*p.dst = n
			sampled = true
		}
	}
	if v := q.Get("sample_windows"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			return spec, fmt.Errorf("bad sample_windows %q", v)
		}
		sb.Windows = n
		sampled = true
	}
	if sampled {
		spec.Sampling = &sb
	}
	return spec, nil
}

// handleResults is the synchronous path: cache hit returns immediately
// (X-Cache: hit); a miss schedules the job and waits. The waiter's request
// context is the job's client-abandon signal.
func (s *Server) handleResults(w http.ResponseWriter, r *http.Request) {
	spec, err := specFromQuery(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	spec, err = s.normalize(spec)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	tr := s.traceFor(r)
	ingress := tr.StartSpan("service_ingress")
	ingress.SetAttrStr("endpoint", "results")
	defer ingress.End()
	echoTraceparent(w, tr)
	id := spec.Hash()
	if b, ok := s.cache.Get(id); ok {
		lookup := tr.StartSpan("service_cache_lookup")
		lookup.SetAttr("hit", 1)
		lookup.SetAttrStr("job", id)
		lookup.End()
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("X-Cache", "hit")
		_, _ = w.Write(b)
		return
	}
	j, _, err := s.getOrSubmit(spec, false, tr)
	if errors.Is(err, runner.ErrQueueFull) || errors.Is(err, runner.ErrPoolClosed) {
		s.writeBackpressure(w)
		return
	}
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	defer s.release(j)
	select {
	case <-j.done:
	case <-r.Context().Done():
		// Client gone; release (deferred) cancels the job if unwanted.
		return
	}
	status, errMsg, result, _, _ := s.snapshot(j)
	switch status {
	case statusDone:
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("X-Cache", "miss")
		_, _ = w.Write(result)
	case statusCanceled:
		writeError(w, http.StatusServiceUnavailable, "job canceled: %s", errMsg)
	default:
		writeError(w, http.StatusInternalServerError, "job failed: %s", errMsg)
	}
}

// ---------- figure composition ----------

// figDoc is a figure assembled from per-cell cached results.
type figDoc struct {
	Schema       string             `json:"schema"`
	Instructions uint64             `json:"instructions"`
	Seed         int64              `json:"seed"`
	Cells        int                `json:"cells"`
	CachedCells  int                `json:"cached_cells"`
	Rows         []figRow           `json:"rows"`
	Geomean      map[string]float64 `json:"geomean"`
	// TraceID names the composition's span tree when tracing is on
	// (GET /v1/traces/{trace_id} serves it).
	TraceID string `json:"trace_id,omitempty"`
}

type figRow struct {
	Benchmark  string             `json:"benchmark"`
	Normalized map[string]float64 `json:"normalized"`
}

// handleExperiment composes fig14 (normalized execution time) or fig18
// (normalized traffic) from the 16x5 evaluation matrix, cell by cell:
// cached cells are free, missing cells are scheduled on the pool with
// queue-aware pacing. Repeating the request against a warm daemon touches
// no simulator at all.
func (s *Server) handleExperiment(w http.ResponseWriter, r *http.Request) {
	fig := r.PathValue("fig")
	var metric func(*experiments.SimResult) float64
	switch fig {
	case "fig14":
		metric = func(res *experiments.SimResult) float64 { return float64(res.Cycles) }
	case "fig18":
		metric = func(res *experiments.SimResult) float64 { return float64(res.TrafficBytes) }
	case "attacks":
		s.handleAttacks(w, r)
		return
	default:
		writeError(w, http.StatusNotFound, "unknown experiment %q (have fig14, fig18, attacks)", fig)
		return
	}
	base, err := specFromQuery(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if base.Benchmark != "" || base.Scheme != "" {
		writeError(w, http.StatusBadRequest, "experiments take insts/seed/sanitize only; benchmark and scheme are fixed by the matrix")
		return
	}
	tr := s.traceFor(r)
	ingress := tr.StartSpan("service_ingress")
	ingress.SetAttrStr("endpoint", "experiment")
	ingress.SetAttrStr("fig", fig)
	defer ingress.End()
	echoTraceparent(w, tr)

	var specs []experiments.SimSpec
	for _, p := range experiments.MatrixBenchmarks() {
		for _, scheme := range instrument.Schemes() {
			spec := base
			spec.Benchmark = p
			spec.Scheme = scheme.String()
			spec, err := s.normalize(spec)
			if err != nil {
				writeError(w, http.StatusBadRequest, "%v", err)
				return
			}
			specs = append(specs, spec)
		}
	}
	compose := tr.StartSpan("experiments_compose")
	compose.SetAttrStr("fig", fig)
	compose.SetAttr("cells", uint64(len(specs)))
	cells, cachedCells, err := s.collect(r.Context(), specs)
	if errors.Is(err, runner.ErrQueueFull) || errors.Is(err, runner.ErrPoolClosed) {
		compose.End()
		s.writeBackpressure(w)
		return
	}
	if err != nil {
		compose.End()
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	compose.SetAttr("cached_cells", uint64(cachedCells))
	compose.End()

	doc := figDoc{
		Schema:       "aosd/" + fig + "/v1",
		Instructions: specs[0].Instructions,
		Seed:         specs[0].Seed,
		Cells:        len(specs),
		CachedCells:  cachedCells,
		Geomean:      map[string]float64{},
	}
	if tr != nil {
		doc.TraceID = tr.TraceID().String()
	}
	series := map[string][]float64{}
	baselineName := instrument.Baseline.String()
	for _, p := range experiments.MatrixBenchmarks() {
		baseRes := cells[cellKey(p, baselineName)]
		baseVal := metric(baseRes)
		if baseVal == 0 {
			writeError(w, http.StatusInternalServerError, "%s: %s baseline is zero; cannot normalize", fig, p)
			return
		}
		row := figRow{Benchmark: p, Normalized: map[string]float64{}}
		for _, scheme := range instrument.Schemes() {
			n := metric(cells[cellKey(p, scheme.String())]) / baseVal
			row.Normalized[scheme.String()] = n
			if scheme != instrument.Baseline {
				series[scheme.String()] = append(series[scheme.String()], n)
			}
		}
		doc.Rows = append(doc.Rows, row)
	}
	for _, k := range stats.SortedKeys(series) {
		doc.Geomean[k] = stats.Geomean(series[k])
	}
	writeJSON(w, http.StatusOK, doc)
}

func cellKey(benchmark, scheme string) string { return benchmark + "/" + scheme }

// collect gathers one SimResult per spec: from cache when possible,
// otherwise scheduled on the pool. Backpressure-aware: when the queue is
// full it waits for one of its own pending cells before submitting more,
// and only reports ErrQueueFull once it has nothing left to wait on (the
// queue is saturated by other clients). ctx abandons the whole collection.
func (s *Server) collect(ctx context.Context, specs []experiments.SimSpec) (map[string]*experiments.SimResult, int, error) {
	out := make(map[string]*experiments.SimResult, len(specs))
	cached := 0
	var pending []*job
	defer func() {
		for _, j := range pending {
			s.release(j)
		}
	}()

	decode := func(b []byte) (*experiments.SimResult, error) {
		var res experiments.SimResult
		if err := json.Unmarshal(b, &res); err != nil {
			return nil, fmt.Errorf("corrupt cached result: %w", err)
		}
		return &res, nil
	}

	waitIdx := 0
	for _, spec := range specs {
		if b, ok := s.cache.Get(spec.Hash()); ok {
			res, err := decode(b)
			if err != nil {
				return nil, 0, err
			}
			out[cellKey(spec.Benchmark, spec.Scheme)] = res
			cached++
			continue
		}
		for {
			// Cell jobs run untraced: a 16x5 composition would blow the
			// request trace's span budget; the compose span carries the
			// aggregate instead.
			j, _, err := s.getOrSubmit(spec, false, nil)
			if err == nil {
				pending = append(pending, j)
				break
			}
			if !errors.Is(err, runner.ErrQueueFull) {
				return nil, 0, err
			}
			if waitIdx >= len(pending) {
				return nil, 0, err // saturated by other clients
			}
			select {
			case <-pending[waitIdx].done:
				waitIdx++
			case <-ctx.Done():
				return nil, 0, ctx.Err()
			}
		}
	}
	for _, j := range pending {
		select {
		case <-j.done:
		case <-ctx.Done():
			return nil, 0, ctx.Err()
		}
		status, errMsg, result, _, _ := s.snapshot(j)
		if status != statusDone {
			return nil, 0, fmt.Errorf("cell %s/%s %s: %s", j.spec.Benchmark, j.spec.Scheme, status, errMsg)
		}
		res, err := decode(result)
		if err != nil {
			return nil, 0, err
		}
		out[cellKey(j.spec.Benchmark, j.spec.Scheme)] = res
	}
	return out, cached, nil
}
