package service

import (
	"container/list"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
)

// CacheStats is a point-in-time snapshot of the cache counters. Hits
// includes DiskHits (a disk hit is a miss in memory but a hit for the
// service — the simulation is not re-run either way).
type CacheStats struct {
	Hits      uint64
	DiskHits  uint64
	Misses    uint64
	Evictions uint64
	Entries   int
	Bytes     int64
	// BudgetBytes is the configured in-memory byte budget the LRU trims
	// to — the denominator dashboards need next to Bytes.
	BudgetBytes int64
}

// HitRate returns Hits/(Hits+Misses), or 0 for an untouched cache.
func (s CacheStats) HitRate() float64 {
	t := s.Hits + s.Misses
	if t == 0 {
		return 0
	}
	return float64(s.Hits) / float64(t)
}

// Cache is the content-addressed result store: values are keyed by the
// SHA-256 of their job spec's canonical encoding, so identical specs
// address identical bytes. In memory it is an LRU bounded by a byte
// budget; with a spill directory configured, every entry is also written
// to disk, evictions keep their disk copy, and a memory miss re-promotes
// the disk copy — results then survive both memory pressure and restarts.
type Cache struct {
	mu     sync.Mutex
	budget int64
	dir    string // "" = memory only

	ll    *list.List               // front = most recently used
	byKey map[string]*list.Element // key -> element holding *centry
	bytes int64

	hits, diskHits, misses, evictions uint64
}

type centry struct {
	key string
	val []byte
}

// NewCache builds a cache with the given in-memory byte budget (<= 0 uses
// 64 MiB) and optional spill directory (created if missing).
func NewCache(budget int64, dir string) (*Cache, error) {
	if budget <= 0 {
		budget = 64 << 20
	}
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("cache: spill dir: %w", err)
		}
	}
	return &Cache{
		budget: budget,
		dir:    dir,
		ll:     list.New(),
		byKey:  make(map[string]*list.Element),
	}, nil
}

// validKey guards the disk path: keys are hex hashes, never path elements.
func validKey(key string) bool {
	if key == "" || strings.ContainsAny(key, "/\\.") {
		return false
	}
	return filepath.Base(key) == key
}

// Get returns the cached value for key. Callers must treat the returned
// bytes as immutable (they are shared with the cache).
func (c *Cache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		return el.Value.(*centry).val, true
	}
	if c.dir != "" && validKey(key) {
		if val, err := os.ReadFile(filepath.Join(c.dir, key)); err == nil {
			c.hits++
			c.diskHits++
			c.insertLocked(key, val)
			return val, true
		}
	}
	c.misses++
	return nil, false
}

// Put stores val under key, evicting least-recently-used entries from
// memory to stay under the byte budget (the newest entry is always kept,
// even when it alone exceeds the budget). With a spill directory, the
// value is also persisted (atomically, via rename) before eviction can
// drop the memory copy.
func (c *Cache) Put(key string, val []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		e := el.Value.(*centry)
		c.bytes += int64(len(val)) - int64(len(e.val))
		e.val = val
		c.ll.MoveToFront(el)
	} else {
		c.insertLocked(key, val)
	}
	if c.dir != "" && validKey(key) {
		c.spillLocked(key, val)
	}
}

// insertLocked adds a fresh entry at the LRU front and trims to budget.
func (c *Cache) insertLocked(key string, val []byte) {
	c.byKey[key] = c.ll.PushFront(&centry{key: key, val: val})
	c.bytes += int64(len(val))
	for c.bytes > c.budget && c.ll.Len() > 1 {
		back := c.ll.Back()
		victim := back.Value.(*centry)
		c.ll.Remove(back)
		delete(c.byKey, victim.key)
		c.bytes -= int64(len(victim.val))
		c.evictions++
	}
}

// spillLocked writes val to the spill directory. Spill failures are
// deliberately silent: the cache is an optimization, and the in-memory
// copy is already in place.
func (c *Cache) spillLocked(key string, val []byte) {
	path := filepath.Join(c.dir, key)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, val, 0o644); err != nil {
		return
	}
	if err := os.Rename(tmp, path); err != nil {
		_ = os.Remove(tmp)
	}
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:        c.hits,
		DiskHits:    c.diskHits,
		Misses:      c.misses,
		Evictions:   c.evictions,
		Entries:     c.ll.Len(),
		Bytes:       c.bytes,
		BudgetBytes: c.budget,
	}
}
